// Command overcastd is the long-running allocator daemon: it owns a root
// overcast.Allocator over a generated (or custom-seeded) topology and serves
// Join/Leave/Rebalance/Snapshot/Fault/Stats over a local unix admin socket
// (newline-delimited JSON RPC, protocol v1 — see internal/admin).
//
// The daemon adds what the library cannot: serialized mutation with
// concurrent snapshot reads, periodic state snapshots to disk for crash
// recovery (restart with the same -state path restores the session
// population by replaying warm joins and serves the persisted allocation
// bit-identically until the next refresh), graceful drain on SIGTERM/SIGINT
// (a final state snapshot is persisted before exit), and admission control
// (-max-sessions, -max-congestion, and -strict-admission with a positive
// -budget).
//
// Usage:
//
//	overcastd -socket /run/overcast/admin.sock -state /var/lib/overcast/state.json \
//	          [-nodes N] [-capacity C] [-seed S] [-routing ip|arbitrary]
//	          [-mu MU] [-epsilon E] [-workers W] [-budget PHASES]
//	          [-snapshot-every DUR] [-max-sessions N] [-max-congestion C]
//	          [-strict-admission] [-drain-timeout DUR]
//
// Drive it with cmd/overcastctl (ping, join, leave, rebalance, snapshot,
// stats, metrics, fault, drain) speaking the same protocol. The fault op
// injects underlay events (link-down/link-up/drift) into the live allocator;
// each effective fault advances the epoch and fans one frame out to watch
// streams. Fault state lives in the allocator only — it is NOT persisted in
// state snapshots, so a restarted daemon starts from healthy capacities.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"overcast"
	"overcast/internal/admin"
)

func main() {
	socket := flag.String("socket", "overcastd.sock", "unix admin socket path")
	state := flag.String("state", "", "state snapshot path for crash recovery (empty disables persistence)")
	snapshotEvery := flag.Duration("snapshot-every", 30*time.Second, "periodic state-snapshot cadence")
	nodes := flag.Int("nodes", 100, "topology size (BRITE-style Waxman)")
	capacity := flag.Float64("capacity", 100, "uniform link capacity")
	seed := flag.Uint64("seed", 1, "topology seed")
	routingFlag := flag.String("routing", "ip", "ip | arbitrary")
	mu := flag.Float64("mu", 30, "online step size")
	epsilon := flag.Float64("epsilon", 0.1, "FPTAS error parameter for snapshot/rebalance allocations")
	workers := flag.Int("workers", 0, "solver worker-pool size (0 = GOMAXPROCS)")
	budget := flag.Int("budget", 0, "warm RepairPhaseBudget in session-phases (0 = unbounded, <0 = always cold)")
	maxSessions := flag.Int("max-sessions", 0, "admission: reject joins beyond this many active sessions (0 = unlimited)")
	maxCongestion := flag.Float64("max-congestion", 0, "admission: reject joins pushing online congestion above this (0 = unlimited)")
	strict := flag.Bool("strict-admission", false, "admission: reject joins warm repair cannot absorb within -budget")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "how long a drain waits for idle connections")
	flag.Parse()

	if err := run(*socket, *state, *snapshotEvery, *nodes, *capacity, *seed, *routingFlag,
		*mu, *epsilon, *workers, *budget, *maxSessions, *maxCongestion, *strict, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "overcastd:", err)
		os.Exit(1)
	}
}

func run(socket, state string, snapshotEvery time.Duration, nodes int, capacity float64, seed uint64,
	routingFlag string, mu, epsilon float64, workers, budget, maxSessions int, maxCongestion float64,
	strict bool, drainTimeout time.Duration) error {

	logger := log.New(os.Stderr, "overcastd: ", log.LstdFlags)

	net, err := overcast.WaxmanNetwork(nodes, capacity, seed)
	if err != nil {
		return err
	}
	routing := overcast.RoutingIP
	if routingFlag == "arbitrary" {
		routing = overcast.RoutingArbitrary
	}
	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{
		Mu: mu, Epsilon: epsilon, Routing: routing, Workers: workers,
		RepairPhaseBudget: budget,
	})
	if err != nil {
		return err
	}
	defer alloc.Close()

	srv, err := admin.NewServer(alloc, admin.Options{
		SocketPath:      socket,
		StatePath:       state,
		SnapshotEvery:   snapshotEvery,
		MaxSessions:     maxSessions,
		MaxCongestion:   maxCongestion,
		StrictAdmission: strict,
		DrainTimeout:    drainTimeout,
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}
	restored, err := srv.Restore()
	if err != nil {
		return err
	}
	if restored > 0 {
		logger.Printf("recovered %d sessions from %s", restored, state)
	}
	if err := srv.Listen(); err != nil {
		return err
	}
	logger.Printf("serving on %s (%s, %d nodes, %d links, %s routing, protocol v%d)",
		socket, net.Name(), net.Nodes(), net.Links(), routingFlag, admin.ProtocolVersion)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		got := <-sig
		logger.Printf("received %v, draining", got)
		srv.Drain()
	}()

	// Serve returns nil after a graceful drain — SIGTERM or a drain RPC —
	// with the final state snapshot already persisted.
	return srv.Serve()
}
