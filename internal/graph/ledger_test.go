package graph

import (
	"math/rand"
	"testing"
)

func ledgerFixture(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(i, (i+3)%n, 2); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestLedgerTouchedExact is the ledger property test: after an arbitrary
// mutation sequence, Touched(since) must name exactly the edges whose
// lengths moved after `since` — no false positives, no false negatives —
// for every epoch the journal still covers. The reference is a brute-force
// diff of value snapshots.
func TestLedgerTouchedExact(t *testing.T) {
	g := ledgerFixture(t, 32)
	s := NewLengthStore(g, 1)
	rng := rand.New(rand.NewSource(7))

	snapshots := []Lengths{s.Values().Clone()} // snapshots[e] = values at epoch e
	epochs := []Epoch{0}
	for step := 0; step < 500; step++ {
		e := rng.Intn(g.NumEdges())
		if rng.Intn(10) == 0 {
			s.Set(e, 0.5+rng.Float64())
		} else {
			// Factors strictly above 1 so every Bump moves the value.
			s.Bump(e, 1+0.1*(1+rng.Float64()))
		}
		snapshots = append(snapshots, s.Values().Clone())
		epochs = append(epochs, s.Epoch())
	}
	if got, want := s.Epoch(), Epoch(500); got != want {
		t.Fatalf("epoch %d after 500 mutations, want %d", got, want)
	}
	for _, sinceIdx := range []int{0, 1, 17, 250, 499, 500} {
		since := epochs[sinceIdx]
		touched, ok := s.Touched(since)
		if !ok {
			t.Fatalf("journal no longer covers epoch %d (window too small for test)", since)
		}
		want := map[EdgeID]bool{}
		for e := range snapshots[sinceIdx] {
			if snapshots[sinceIdx][e] != snapshots[len(snapshots)-1][e] {
				want[e] = true
			}
		}
		got := map[EdgeID]bool{}
		for _, e := range touched {
			if got[e] {
				t.Fatalf("Touched(%d) repeats edge %d", since, e)
			}
			got[e] = true
		}
		for e := range want {
			if !got[e] {
				t.Errorf("Touched(%d) misses edge %d whose length moved", since, e)
			}
		}
		for e := range got {
			if !want[e] {
				t.Errorf("Touched(%d) reports edge %d whose length did not move", since, e)
			}
		}
	}
}

// TestLedgerTouchedReportsShrinks is the non-monotone half of the journal
// property: a mutation sequence dominated by shrinks (Set below current,
// Bump with factor < 1, Raise that lowers) must still journal every touch,
// so Touched(since) == brute-force snapshot diff and ForEachTouched replays
// the exact mutation order. Underlay fault recovery depends on this — a
// link-up mirrors as a length shrink, and a replica that missed it would
// keep routing around a healthy link.
func TestLedgerTouchedReportsShrinks(t *testing.T) {
	g := ledgerFixture(t, 24)
	s := NewLengthStore(g, 4)
	rng := rand.New(rand.NewSource(11))

	snapshots := []Lengths{s.Values().Clone()}
	epochs := []Epoch{0}
	var order []EdgeID // reference journal: edge touched at each step
	for step := 0; step < 400; step++ {
		e := rng.Intn(g.NumEdges())
		switch rng.Intn(4) {
		case 0:
			s.Set(e, 0.25+rng.Float64()) // near-certain shrink from 4
		case 1:
			s.Bump(e, 0.5+0.4*rng.Float64()) // shrinking bump
		case 2:
			s.Raise(e, s.At(e)*(0.5+rng.Float64())) // Raise may lower
		default:
			s.Bump(e, 1.0001+rng.Float64())
		}
		order = append(order, e)
		snapshots = append(snapshots, s.Values().Clone())
		epochs = append(epochs, s.Epoch())
	}
	if s.MonotoneSince(0) {
		t.Fatal("shrink-heavy sequence cannot be monotone")
	}
	for _, sinceIdx := range []int{0, 3, 111, 399, 400} {
		since := epochs[sinceIdx]
		touched, ok := s.Touched(since)
		if !ok {
			t.Fatalf("journal lost epoch %d", since)
		}
		want := map[EdgeID]bool{}
		for e := range snapshots[sinceIdx] {
			if snapshots[sinceIdx][e] != snapshots[len(snapshots)-1][e] {
				want[e] = true
			}
		}
		got := map[EdgeID]bool{}
		for _, e := range touched {
			got[e] = true
		}
		// Every moved edge must be reported. (The converse can miss: a
		// shrink followed by a growth back to the exact old value is still
		// journaled — that is correct over-reporting, never under.)
		for e := range want {
			if !got[e] {
				t.Errorf("Touched(%d) misses shrunk edge %d", since, e)
			}
		}
		// ForEachTouched must replay the exact mutation order.
		var replay []EdgeID
		if !s.ForEachTouched(since, func(e EdgeID) bool {
			replay = append(replay, e)
			return false
		}) {
			t.Fatalf("ForEachTouched lost epoch %d", since)
		}
		wantOrder := order[sinceIdx:]
		if len(replay) != len(wantOrder) {
			t.Fatalf("ForEachTouched(%d) replayed %d touches, want %d", since, len(replay), len(wantOrder))
		}
		for i := range replay {
			if replay[i] != wantOrder[i] {
				t.Fatalf("ForEachTouched(%d) order diverges at %d: %d vs %d", since, i, replay[i], wantOrder[i])
			}
		}
	}
}

// TestLedgerJournalRangeGuards pins the out-of-range contract: a `since`
// beyond the current epoch (e.g. an epoch taken from a different ledger
// after a fault resync swapped stores) reports ok=false instead of
// panicking or fabricating an empty diff.
func TestLedgerJournalRangeGuards(t *testing.T) {
	g := ledgerFixture(t, 8)
	s := NewLengthStore(g, 1)
	s.Bump(0, 2)
	if _, ok := s.Touched(s.Epoch() + 1); ok {
		t.Fatal("Touched must reject a future epoch")
	}
	if s.ForEachTouched(s.Epoch()+5, func(EdgeID) bool { return false }) {
		t.Fatal("ForEachTouched must reject a future epoch")
	}
	if _, ok := s.Touched(s.Epoch()); !ok {
		t.Fatal("Touched at the current epoch is an empty, answerable diff")
	}
}

// TestLedgerLastTouchedAndMonotone pins the per-edge stamps and the
// monotonicity tracking the plane repair check relies on.
func TestLedgerLastTouchedAndMonotone(t *testing.T) {
	g := ledgerFixture(t, 8)
	s := NewLengthStore(g, 2)
	if s.Epoch() != 0 || !s.MonotoneSince(0) {
		t.Fatalf("fresh store: epoch %d monotone %v", s.Epoch(), s.MonotoneSince(0))
	}
	s.Bump(3, 1.5)
	if s.LastTouched(3) != 1 || s.LastTouched(0) != 0 {
		t.Fatalf("stamps: %d, %d", s.LastTouched(3), s.LastTouched(0))
	}
	if !s.MonotoneSince(0) {
		t.Fatal("growth marked non-monotone")
	}
	if s.At(3) != 3 {
		t.Fatalf("At(3) = %v", s.At(3))
	}
	s.Bump(4, 0.5) // shrink
	if s.MonotoneSince(1) {
		t.Fatal("shrinking bump not flagged")
	}
	if !s.MonotoneSince(2) {
		t.Fatal("MonotoneSince after the shrink epoch must hold")
	}
	s.Set(5, 9)
	if s.MonotoneSince(2) {
		t.Fatal("Set must count as non-monotone")
	}
	if s.TouchedCount(0) != 3 {
		t.Fatalf("TouchedCount(0) = %d", s.TouchedCount(0))
	}
}

// TestLedgerJournalWindow drives the journal past its bound and checks the
// sliding-window contract: old epochs report ok=false, recent ones stay
// exact, and the per-edge stamps survive compaction untouched.
func TestLedgerJournalWindow(t *testing.T) {
	g := ledgerFixture(t, 8)
	s := NewLengthStoreFrom(NewLengths(g, 1))
	total := maxJournal + maxJournal/2
	for i := 0; i < total; i++ {
		s.Bump(i%g.NumEdges(), 1.0000001)
	}
	if s.Epoch() != Epoch(total) {
		t.Fatalf("epoch %d, want %d", s.Epoch(), total)
	}
	if _, ok := s.Touched(0); ok {
		t.Fatal("epoch 0 should have slid out of the journal window")
	}
	if !s.ForEachTouched(s.Epoch()-1, func(EdgeID) bool { return false }) {
		t.Fatal("most recent epoch must stay covered")
	}
	visited := 0
	s.ForEachTouched(s.Epoch()-10, func(EdgeID) bool { visited++; return visited == 3 })
	if visited != 3 {
		t.Fatalf("early exit visited %d entries, want 3", visited)
	}
	recent, ok := s.Touched(s.Epoch() - Epoch(g.NumEdges()))
	if !ok || len(recent) != g.NumEdges() {
		t.Fatalf("recent window: ok=%v edges=%d, want all %d", ok, len(recent), g.NumEdges())
	}
	for e := 0; e < g.NumEdges(); e++ {
		if s.LastTouched(e) <= 0 {
			t.Fatalf("stamp for edge %d lost in compaction", e)
		}
	}
}
