package exact

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/lp"
	"overcast/internal/overlay"
)

// This file implements column generation for the paper's reformulated
// programs M1'/M2' (Sec. II-D): instead of enumerating the exponential tree
// sets, a restricted master LP is solved over a small working set of trees,
// and the minimum-overlay-spanning-tree oracle — priced with the master's
// dual values — either proves optimality or supplies an improving column.
// This is exactly the separation-oracle argument the paper uses to show
// M1/M2 are polynomially solvable, realized with the simplex instead of the
// ellipsoid method. Unlike the enumeration solver it scales to sessions far
// beyond |S| = 6 and works with both routing oracles.

// CGOptions configures the column-generation solvers.
type CGOptions struct {
	// MaxRounds bounds pricing rounds (0 = 200 + 50·k).
	MaxRounds int
	// Tol is the pricing tolerance: a column must improve the reduced cost
	// by more than Tol to be added (default 1e-9).
	Tol float64
}

func (o *CGOptions) normalize(k int) {
	if o.MaxRounds == 0 {
		o.MaxRounds = 200 + 50*k
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
}

// CGResult is the outcome of a column-generation solve.
type CGResult struct {
	// Value is the optimal objective (weighted flow for M1, lambda for M2).
	Value float64
	// SessionRates[i] is the total optimal rate of session i.
	SessionRates []float64
	// Trees[i] and Rates[i] describe the supporting trees (only those in
	// the final working set; zero-rate columns may appear).
	Trees [][]*overlay.Tree
	Rates [][]float64
	// Rounds is the number of pricing rounds performed; Columns the final
	// working-set size.
	Rounds, Columns int
	// Optimal reports whether pricing proved optimality (false if MaxRounds
	// was exhausted first).
	Optimal bool
}

// master carries the growing restricted LP.
type master struct {
	g       *graph.Graph
	oracles []overlay.TreeOracle
	weights []float64 // objective weight per session (M1) — nil for M2

	// columns
	trees   [][]*overlay.Tree
	keys    []map[string]bool
	session []int // owning session per column, in insertion order
	flat    []*overlay.Tree
}

func newMaster(g *graph.Graph, oracles []overlay.TreeOracle, weights []float64) *master {
	m := &master{g: g, oracles: oracles, weights: weights}
	m.trees = make([][]*overlay.Tree, len(oracles))
	m.keys = make([]map[string]bool, len(oracles))
	for i := range m.keys {
		m.keys[i] = make(map[string]bool)
	}
	return m
}

// add inserts a column if new; reports whether it was added.
func (m *master) add(i int, t *overlay.Tree) bool {
	if m.keys[i][t.Key()] {
		return false
	}
	m.keys[i][t.Key()] = true
	m.trees[i] = append(m.trees[i], t)
	m.session = append(m.session, i)
	m.flat = append(m.flat, t)
	return true
}

// solveM1 solves the restricted M1 master and returns the LP result.
func (m *master) solveM1() (*lp.Result, error) {
	n := len(m.flat)
	p := lp.Problem{C: make([]float64, n), A: make([][]float64, m.g.NumEdges()), B: make([]float64, m.g.NumEdges())}
	for j, t := range m.flat {
		p.C[j] = m.weights[m.session[j]]
		_ = t
	}
	for e := 0; e < m.g.NumEdges(); e++ {
		p.A[e] = make([]float64, n)
		p.B[e] = m.g.Edges[e].Capacity
	}
	for j, t := range m.flat {
		for _, u := range t.Use() {
			p.A[u.Edge][j] = float64(u.Count)
		}
	}
	return lp.Solve(p)
}

// MaxMulticommodityFlowCG solves M1 exactly (over the oracle's route model)
// by column generation.
func MaxMulticommodityFlowCG(g *graph.Graph, oracles []overlay.TreeOracle, opts CGOptions) (*CGResult, error) {
	k := len(oracles)
	if k == 0 {
		return nil, fmt.Errorf("exact: no oracles")
	}
	opts.normalize(k)
	smax := 0
	for _, o := range oracles {
		if r := o.Session().Receivers(); r > smax {
			smax = r
		}
	}
	weights := make([]float64, k)
	for i, o := range oracles {
		weights[i] = float64(o.Session().Receivers()) / float64(smax)
	}
	m := newMaster(g, oracles, weights)
	// Seed: one MOST per session under uniform lengths.
	unit := graph.NewLengths(g, 1)
	for i, o := range oracles {
		t, err := o.MinTree(unit)
		if err != nil {
			return nil, fmt.Errorf("exact: CG seed session %d: %w", i, err)
		}
		m.add(i, t)
	}

	var res *lp.Result
	rounds := 0
	optimal := false
	for ; rounds < opts.MaxRounds; rounds++ {
		var err error
		res, err = m.solveM1()
		if err != nil {
			return nil, fmt.Errorf("exact: CG master round %d: %w", rounds, err)
		}
		// Pricing: session i improves iff min_t sum_e n_e(t)·y_e < w_i.
		y := graph.Lengths(res.Duals)
		improved := false
		for i, o := range oracles {
			t, err := o.MinTree(y)
			if err != nil {
				return nil, fmt.Errorf("exact: CG pricing session %d: %w", i, err)
			}
			if t.LengthUnder(y) < weights[i]-opts.Tol {
				if m.add(i, t) {
					improved = true
				}
			}
		}
		if !improved {
			optimal = true
			break
		}
	}
	return m.finish(res, rounds, optimal, res.Value), nil
}

// MaxConcurrentFlowCG solves M2 exactly (over the oracle's route model) by
// column generation. The master has one extra lambda variable and one
// demand-coverage row per session; the dual of session i's row prices its
// trees.
func MaxConcurrentFlowCG(g *graph.Graph, oracles []overlay.TreeOracle, opts CGOptions) (*CGResult, error) {
	k := len(oracles)
	if k == 0 {
		return nil, fmt.Errorf("exact: no oracles")
	}
	opts.normalize(k)
	m := newMaster(g, oracles, nil)
	unit := graph.NewLengths(g, 1)
	for i, o := range oracles {
		t, err := o.MinTree(unit)
		if err != nil {
			return nil, fmt.Errorf("exact: CG seed session %d: %w", i, err)
		}
		m.add(i, t)
	}

	numEdges := g.NumEdges()
	solve := func() (*lp.Result, error) {
		n := len(m.flat) + 1
		lambdaVar := len(m.flat)
		p := lp.Problem{C: make([]float64, n)}
		p.C[lambdaVar] = 1
		p.A = make([][]float64, numEdges+k)
		p.B = make([]float64, numEdges+k)
		for e := 0; e < numEdges; e++ {
			p.A[e] = make([]float64, n)
			p.B[e] = g.Edges[e].Capacity
		}
		for j, t := range m.flat {
			for _, u := range t.Use() {
				p.A[u.Edge][j] = float64(u.Count)
			}
		}
		for i, o := range oracles {
			row := make([]float64, n)
			row[lambdaVar] = o.Session().Demand
			for j, t := range m.flat {
				if m.session[j] == i {
					_ = t
					row[j] = -1
				}
			}
			p.A[numEdges+i] = row
			p.B[numEdges+i] = 0
		}
		return lp.Solve(p)
	}

	var res *lp.Result
	rounds := 0
	optimal := false
	for ; rounds < opts.MaxRounds; rounds++ {
		var err error
		res, err = solve()
		if err != nil {
			return nil, fmt.Errorf("exact: CG master round %d: %w", rounds, err)
		}
		y := graph.Lengths(res.Duals[:numEdges])
		improved := false
		for i, o := range oracles {
			li := res.Duals[numEdges+i]
			t, err := o.MinTree(y)
			if err != nil {
				return nil, fmt.Errorf("exact: CG pricing session %d: %w", i, err)
			}
			// Column reduced cost: 0 - (sum n_e y_e - l_i); improving iff
			// tree length < l_i.
			if t.LengthUnder(y) < li-opts.Tol {
				if m.add(i, t) {
					improved = true
				}
			}
		}
		if !improved {
			optimal = true
			break
		}
	}
	lambda := res.X[len(res.X)-1]
	return m.finish(res, rounds, optimal, lambda), nil
}

// finish packages the master state into a CGResult. For M2 the lambda
// column (last) is excluded from per-session rates automatically because it
// belongs to no session.
func (m *master) finish(res *lp.Result, rounds int, optimal bool, value float64) *CGResult {
	out := &CGResult{
		Value:   value,
		Rounds:  rounds,
		Columns: len(m.flat),
		Optimal: optimal,
	}
	out.SessionRates = make([]float64, len(m.oracles))
	out.Trees = m.trees
	out.Rates = make([][]float64, len(m.oracles))
	idx := make([]int, len(m.oracles))
	for i := range m.oracles {
		out.Rates[i] = make([]float64, len(m.trees[i]))
	}
	for j := range m.flat {
		i := m.session[j]
		rate := res.X[j]
		out.Rates[i][idx[i]] = rate
		idx[i]++
		out.SessionRates[i] += rate
	}
	return out
}
