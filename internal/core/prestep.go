package core

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// This file implements the MCF beta prestep: beta_i = the single-session
// maximum flow of session i, used to pre-scale demands so the scaled optimum
// lands in [1, k] (Sec. III-C). The k subproblems are independent
// Garg–Könemann runs over the *same* physical topology, which used to make
// the prestep the last place in arbitrary-mode MCF where identical Dijkstras
// were recomputed: every subproblem's first oracle round runs one Dijkstra
// per member under its uniform initial lengths, and Zipf-hot scenarios put
// the same members in many sessions.
//
// The batched formulation removes that duplication without giving up
// bit-identity to the isolated solves:
//
//   - Subproblems are grouped by their initial length function. A
//     subproblem's initial lengths are uniform delta(eps, |S_i|-1, U_i)
//     (maxFlowDelta), so the group key is the (receivers, U) pair — equal
//     pairs mean bitwise-equal initial length vectors.
//   - Each multi-subproblem group gets one *seed plane*: the union of the
//     group's member sources, Dijkstra'd once under the shared initial
//     lengths across the worker pool. Every subproblem's solver copies its
//     first-round rows from the seed (O(n) per row) instead of recomputing
//     them (overlay.BatchOptions.Seed) — identical bits, k times fewer
//     Dijkstras.
//   - After the first routing the subproblems' length functions diverge, so
//     no further cross-subproblem sharing is sound; from there each
//     subproblem's own persistent plane with ledger-driven dirty-source
//     repair keeps skipping the sources its routed trees did not touch.
//
// The per-session runs remain independent given their seed, so they still
// fan across the worker pool with i-indexed result slots; betas, MSTOps, and
// errors are folded in session order, identical to a sequential pass.

// prestepBetas computes the per-session maximum flows of p. It returns the
// betas, the total spanning-tree operations, and the aggregated plane
// counters (seed fills count as PlaneSources; rows subproblems copied from a
// seed count as PlaneSeeded).
func prestepBetas(p *Problem, eps float64, workers int, opts MaxConcurrentFlowOptions) ([]float64, int, overlay.Metrics, error) {
	k := p.K()
	var prestepPlane overlay.Metrics
	seeds := make([]*overlay.Plane, k) // per-session seed (shared pointers within a group)
	if !opts.DisablePlane && !opts.DisableRepair {
		prestepPlane = buildPrestepSeeds(p, eps, workers, seeds)
	}

	betas := make([]float64, k)
	perSessionOps := make([]int, k)
	perSessionPlane := make([]overlay.Metrics, k)
	prestepErrs := make([]error, k)
	parallelFor(workers, k, func(i int) {
		sub := singleSessionProblem(p, i)
		mf, err := MaxFlow(sub, MaxFlowOptions{
			Epsilon: eps, Workers: 1,
			DisablePlane:         opts.DisablePlane,
			DisableRepair:        opts.DisableRepair,
			DisableSubtreeRepair: opts.DisableSubtreeRepair,
			seedPlane:            seeds[i],
		})
		if err != nil {
			prestepErrs[i] = fmt.Errorf("core: beta prestep session %d: %w", i, err)
			return
		}
		betas[i] = mf.SessionRate(0)
		perSessionOps[i] = mf.MSTOps
		perSessionPlane[i] = mf.Plane
		if betas[i] <= 0 {
			prestepErrs[i] = fmt.Errorf("core: session %d has zero max flow", i)
		}
	})
	prestepOps := 0
	for i := 0; i < k; i++ {
		if prestepErrs[i] != nil {
			return nil, 0, overlay.Metrics{}, prestepErrs[i]
		}
		prestepOps += perSessionOps[i]
		prestepPlane.Merge(perSessionPlane[i])
	}
	return betas, prestepOps, prestepPlane, nil
}

// buildPrestepSeeds groups p's plane-aware subproblems by initial length
// function and fills one seed plane per multi-subproblem group, writing each
// session's seed (nil when it has none) into seeds. Returns the seed-fill
// metrics: one PlaneRounds per seed, the computed union rows as
// PlaneSources, and the group's total member count as PlaneRequests.
func buildPrestepSeeds(p *Problem, eps float64, workers int, seeds []*overlay.Plane) overlay.Metrics {
	var metrics overlay.Metrics
	// Group by (receivers, U): the two inputs of maxFlowDelta besides eps.
	type deltaKey struct{ receivers, u int }
	groups := make(map[deltaKey][]int)
	order := make([]deltaKey, 0, 4)
	for i, o := range p.Oracles {
		if _, ok := o.(overlay.PlaneOracle); !ok {
			return overlay.Metrics{} // mixed or fixed-routing: no seeding
		}
		key := deltaKey{receivers: p.Sessions[i].Receivers(), u: maxInt(o.MaxRouteHops(), 1)}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	for _, key := range order {
		members := groups[key]
		if len(members) < 2 {
			continue // nothing to share
		}
		seed := overlay.NewPlane(p.G)
		requests := 0
		for _, i := range members {
			srcs := p.Oracles[i].(overlay.PlaneOracle).PlaneSources()
			requests += len(srcs)
			for _, s := range srcs {
				seed.Stage(s)
			}
		}
		if seed.NumSources() == 0 {
			continue
		}
		// The shared snapshot: the group's exact initial lengths. Each
		// subproblem's MaxFlow starts from NewLengthStore(g, delta) with the
		// same delta, so copied rows are bitwise what its own first-round
		// Dijkstras would produce.
		delta := maxFlowDelta(eps, key.receivers, key.u)
		seed.Fill(graph.NewLengths(p.G, delta), workers)
		for _, i := range members {
			seeds[i] = seed
		}
		metrics.PlaneRounds++
		metrics.PlaneSources += seed.NumSources()
		metrics.PlaneRequests += requests
	}
	return metrics
}

// singleSessionProblem projects p onto session i, reusing its oracle.
func singleSessionProblem(p *Problem, i int) *Problem {
	return &Problem{
		G:            p.G,
		Sessions:     []*overlay.Session{p.Sessions[i]},
		Oracles:      []overlay.TreeOracle{p.Oracles[i]},
		Mode:         p.Mode,
		MaxReceivers: p.Sessions[i].Receivers(),
		U:            maxInt(p.Oracles[i].MaxRouteHops(), 1),
	}
}
