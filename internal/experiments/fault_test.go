package experiments

import (
	"fmt"
	"testing"
)

// TestFaultSolveBitIdenticalAcrossToggles is the tentpole acceptance gate at
// the runner layer: one fault scenario (link-down, recovery shrink, drift,
// and a journal-flooding fault storm) replayed across workers x shards x
// plane/repair toggles must produce bit-identical output fingerprints, while
// the robustness counters prove the degradation paths actually ran —
// non-monotone plane refills on the plane+repair runs, fault-forced snapshot
// resyncs on the sharded runs.
func TestFaultSolveBitIdenticalAcrossToggles(t *testing.T) {
	base := FaultSolveConfig{
		Nodes: 48, Sessions: 4, SessionSize: 4, TwoLevelASes: 4,
		Rounds: 8, FailRound: 2, RecoverRound: 4, DriftRound: 5,
		FaultStorm: true,
	}
	type toggles struct {
		workers, shards             int
		disablePlane, disableRepair bool
	}
	var cases []toggles
	for _, w := range []int{1, 2, 8} {
		for _, s := range []int{0, 1, 4} {
			cases = append(cases, toggles{workers: w, shards: s})
		}
	}
	// The plane/repair toggles only need one worker/shard point each: the
	// cross product above already pins scheduling.
	cases = append(cases,
		toggles{workers: 2, shards: 0, disablePlane: true},
		toggles{workers: 2, shards: 0, disableRepair: true},
		toggles{workers: 2, shards: 4, disablePlane: true},
	)

	want := ""
	wantEvents := 0
	for _, tc := range cases {
		cfg := base
		cfg.Workers, cfg.Shards = tc.workers, tc.shards
		cfg.DisablePlane, cfg.DisableRepair = tc.disablePlane, tc.disableRepair
		label := fmt.Sprintf("w%d_s%d_plane%v_repair%v", tc.workers, tc.shards, !tc.disablePlane, !tc.disableRepair)
		rep, err := FaultSolveRun(11, cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want == "" {
			want, wantEvents = rep.Fingerprint, rep.UnderlayEvents
		}
		if rep.Fingerprint != want {
			t.Fatalf("%s: fingerprint %s, want %s — fault replay is toggle-dependent", label, rep.Fingerprint, want)
		}
		if rep.UnderlayEvents != wantEvents {
			t.Fatalf("%s: %d underlay events, want %d", label, rep.UnderlayEvents, wantEvents)
		}
		// Non-vacuity: the recovery and drift shrinks must degrade plane rows
		// on every run with the plane and repair active.
		if !tc.disablePlane && !tc.disableRepair && rep.Plane.PlaneNonMonotone == 0 {
			t.Fatalf("%s: zero non-monotone plane refills — the shrink path never ran", label)
		}
		// The fault storm floods the journal between the two final rounds, so
		// every sharded run must take the fault-resync path.
		if tc.shards > 0 && rep.FaultResyncs == 0 {
			t.Fatalf("%s: zero fault resyncs despite the journal-flooding storm", label)
		}
		if tc.shards == 0 && rep.FaultResyncs != 0 {
			t.Fatalf("%s: unsharded run reported %d fault resyncs", label, rep.FaultResyncs)
		}
	}
	if wantEvents != 3 {
		t.Fatalf("scenario applied %d underlay events, want 3 (down, up, drift)", wantEvents)
	}
}

// TestFaultSolveDeterministicReplay: same seed and config, same fingerprint;
// different seed, different fingerprint (the scenario actually depends on the
// instance).
func TestFaultSolveDeterministicReplay(t *testing.T) {
	cfg := FaultSolveConfig{Nodes: 32, Sessions: 3, Rounds: 6}
	a, err := FaultSolveRun(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSolveRun(5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("replay fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	c, err := FaultSolveRun(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

// TestFaultChurnDampingBoundsRepairWork is the damping satellite's acceptance
// gate: under an oscillating flap trace, the damped replay must suppress
// recoveries and deliver strictly fewer fault events to the allocator than
// the undamped replay — bounding the fault-forced cold re-solve work — while
// both replays survive the full trace and end with a verified allocation.
func TestFaultChurnDampingBoundsRepairWork(t *testing.T) {
	cfg := FaultChurnConfig{
		Nodes: 32, ArrivalRate: 1.5, MeanLifetime: 5, Horizon: 10,
		SnapshotEvery: 4,
		// A hard-oscillating regime: 4 links flapping ~3x per time unit.
		FaultEdges: 4, FailRate: 3, MeanRepair: 0.2,
	}
	undamped, damped, err := FaultChurnPair(21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if undamped.TraceFaults != damped.TraceFaults || undamped.TraceFaults == 0 {
		t.Fatalf("trace sizes differ: %d vs %d", undamped.TraceFaults, damped.TraceFaults)
	}
	if undamped.UnderlayEvents == 0 {
		t.Fatal("undamped replay applied no effective fault events — the scenario is vacuous")
	}
	if damped.Suppressed == 0 {
		t.Fatal("damper suppressed nothing under a hard oscillation")
	}
	if damped.AppliedFaults >= undamped.AppliedFaults {
		t.Fatalf("damping did not reduce delivered events: %d vs %d", damped.AppliedFaults, undamped.AppliedFaults)
	}
	if damped.UnderlayEvents >= undamped.UnderlayEvents {
		t.Fatalf("damping did not reduce effective events: %d vs %d", damped.UnderlayEvents, undamped.UnderlayEvents)
	}
	if damped.ColdSolves > undamped.ColdSolves {
		t.Fatalf("damping increased cold solves: %d vs %d", damped.ColdSolves, undamped.ColdSolves)
	}
	for _, rep := range []*FaultChurnReport{undamped, damped} {
		if rep.Snapshots == 0 || rep.Throughput <= 0 {
			t.Fatalf("replay produced no usable allocation: %+v", rep)
		}
	}
}
