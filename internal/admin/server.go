package admin

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"overcast"
)

// Options configures a Server.
type Options struct {
	// SocketPath is the unix socket the daemon serves on (required). A
	// stale socket file at the path is removed at Listen.
	SocketPath string
	// StatePath enables crash recovery: the daemon periodically persists
	// its session population and last materialized allocation there
	// (atomically, via rename), and writes a final snapshot on drain.
	// Empty disables persistence.
	StatePath string
	// SnapshotEvery is the periodic persistence cadence (default 30s;
	// only meaningful with StatePath set).
	SnapshotEvery time.Duration
	// MaxSessions rejects joins beyond this many active sessions (0 =
	// unlimited).
	MaxSessions int
	// MaxCongestion rejects joins that would push the online max link
	// congestion above this threshold; the join is rolled back exactly
	// (0 = unlimited). Congestion is the online-placement bound on how
	// much repair restoring ε-feasibility needs, so this is the cheap
	// admission proxy.
	MaxCongestion float64
	// StrictAdmission, with a positive Allocator RepairPhaseBudget,
	// probes a refresh after each join once the allocator is anchored:
	// when warm repair cannot restore ε-feasibility within the budget
	// (the refresh fell back to a cold solve mid-repair), the join is
	// rolled back and rejected.
	StrictAdmission bool
	// DrainTimeout bounds how long a drain waits for idle client
	// connections before force-closing them (default 5s).
	DrainTimeout time.Duration
	// WatchBuffer is the per-watcher event buffer (default 64). A watch
	// client that falls more than this many epoch changes behind is
	// disconnected with ErrCodeSlowConsumer instead of back-pressuring
	// mutations.
	WatchBuffer int
	// Logf receives daemon log lines (nil = silent).
	Logf func(format string, args ...any)
}

// sessionEntry is the daemon's record of one live session.
type sessionEntry struct {
	id      overcast.SessionID
	members []int
	demand  float64
}

// Server owns a root Allocator and serves the admin protocol over a unix
// socket. All allocator mutations (join, leave, rebalance, refreshing
// snapshots) are serialized under one lock; cached-snapshot reads, pings,
// and frame handling run concurrently. See the package comment for the wire
// protocol.
type Server struct {
	alloc *overcast.Allocator
	opts  Options
	start time.Time

	mu        sync.Mutex // serializes allocator access and the session table
	sessions  map[uint64]*sessionEntry
	order     []uint64 // active tokens in admission order (= allocator dense order)
	nextToken uint64
	rejects   int
	saves     int
	restored  bool

	snapMu sync.RWMutex
	cur    *SnapshotResult // last materialized allocation (nil before the first)

	statMu sync.Mutex
	rpcs   map[string]int

	watchMu  sync.Mutex // nested inside s.mu (registration and notification)
	watchers map[*watcher]struct{}

	ln         net.Listener
	connMu     sync.Mutex
	conns      map[net.Conn]struct{}
	connWG     sync.WaitGroup
	draining   atomic.Bool
	drainOnce  sync.Once
	drainStart chan struct{} // closed when a drain begins (terminates watch streams)
	drained    chan struct{}
}

// watcher is one subscribed watch stream's server-side endpoint. Events are
// fanned out non-blocking: an overflowing buffer closes dead, and serveWatch
// terminates the stream with ErrCodeSlowConsumer.
type watcher struct {
	ch   chan *WatchEvent
	dead chan struct{}
}

// NewServer wraps alloc (which the server takes ownership of: it must not be
// used concurrently elsewhere) in an admin server.
func NewServer(alloc *overcast.Allocator, opts Options) (*Server, error) {
	if alloc == nil {
		return nil, fmt.Errorf("admin: nil allocator")
	}
	if opts.SocketPath == "" {
		return nil, fmt.Errorf("admin: Options.SocketPath is required")
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 30 * time.Second
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	if opts.WatchBuffer <= 0 {
		opts.WatchBuffer = 64
	}
	return &Server{
		alloc:      alloc,
		opts:       opts,
		start:      time.Now(),
		sessions:   make(map[uint64]*sessionEntry),
		rpcs:       make(map[string]int),
		conns:      make(map[net.Conn]struct{}),
		watchers:   make(map[*watcher]struct{}),
		drainStart: make(chan struct{}),
		drained:    make(chan struct{}),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Restore loads the state snapshot from Options.StatePath, if one exists,
// and replays its active sessions through warm joins so the allocator's
// population matches the pre-crash daemon's. The persisted allocation is
// served as the current snapshot (bit-identical to what the pre-crash daemon
// last persisted) until the next refresh recomputes it. Returns the number
// of sessions restored; a missing state file restores zero and is not an
// error. Must be called before Listen.
func (s *Server) Restore() (int, error) {
	if s.opts.StatePath == "" {
		return 0, nil
	}
	raw, err := os.ReadFile(s.opts.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("admin: restore: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return 0, fmt.Errorf("admin: restore: malformed state file %s: %w", s.opts.StatePath, err)
	}
	if st.V != ProtocolVersion {
		return 0, fmt.Errorf("admin: restore: state file version %d, want %d", st.V, ProtocolVersion)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ps := range st.Sessions {
		if ps.Token == 0 || s.sessions[ps.Token] != nil {
			return 0, fmt.Errorf("admin: restore: invalid or duplicate session token %d", ps.Token)
		}
		p, err := s.alloc.Join(overcast.Session{Members: ps.Members, Demand: ps.Demand})
		if err != nil {
			return 0, fmt.Errorf("admin: restore: rejoin session %d: %w", ps.Token, err)
		}
		s.sessions[ps.Token] = &sessionEntry{id: p.Session, members: append([]int(nil), ps.Members...), demand: ps.Demand}
		s.order = append(s.order, ps.Token)
	}
	s.nextToken = st.NextToken
	s.restored = true
	if st.Snapshot != nil {
		s.snapMu.Lock()
		s.cur = st.Snapshot
		s.snapMu.Unlock()
	}
	s.logf("restored %d active sessions from %s", len(st.Sessions), s.opts.StatePath)
	return len(st.Sessions), nil
}

// Listen creates the unix socket, removing a stale socket file first.
func (s *Server) Listen() error {
	if err := os.Remove(s.opts.SocketPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("admin: remove stale socket: %w", err)
	}
	ln, err := net.Listen("unix", s.opts.SocketPath)
	if err != nil {
		return fmt.Errorf("admin: listen: %w", err)
	}
	s.ln = ln
	return nil
}

// Serve accepts and serves admin connections until a drain completes. It
// returns nil after a graceful drain (the final state snapshot is on disk by
// then) and the listener's error otherwise. Listen must have succeeded.
func (s *Server) Serve() error {
	if s.ln == nil {
		return fmt.Errorf("admin: Serve before Listen")
	}
	stopSaver := make(chan struct{})
	if s.opts.StatePath != "" {
		go s.periodicSave(stopSaver)
	}
	defer close(stopSaver)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				<-s.drained
				return nil
			}
			return fmt.Errorf("admin: accept: %w", err)
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Drain initiates graceful shutdown: the listener closes, in-flight requests
// finish (idle connections are force-closed after Options.DrainTimeout), a
// final state snapshot is persisted, and Serve returns nil. Idempotent and
// safe from any goroutine (including RPC handlers and signal handlers).
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainStart) // watch streams send a final draining frame and close
		go s.finishDrain()
	})
}

func (s *Server) finishDrain() {
	if s.ln != nil {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		s.logf("drain: force-closing idle connections after %v", s.opts.DrainTimeout)
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.saveStateLocked()
	s.mu.Unlock()
	s.logf("drain complete: %d active sessions persisted", s.activeCount())
	close(s.drained)
}

func (s *Server) activeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// periodicSave persists the daemon state every Options.SnapshotEvery until
// stopped.
func (s *Server) periodicSave(stop chan struct{}) {
	t := time.NewTicker(s.opts.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.mu.Lock()
			err := s.saveStateLocked()
			s.mu.Unlock()
			if err != nil {
				s.logf("periodic state save failed: %v", err)
			}
		}
	}
}

// persistedSession and persistedState are the on-disk crash-recovery format:
// the active session population (tokens are stable across restarts) plus the
// last materialized allocation, versioned like the wire protocol.
type persistedSession struct {
	Token   uint64  `json:"token"`
	Members []int   `json:"members"`
	Demand  float64 `json:"demand"`
}

type persistedState struct {
	V         int                `json:"v"`
	NextToken uint64             `json:"next_token"`
	Sessions  []persistedSession `json:"sessions"`
	Snapshot  *SnapshotResult    `json:"snapshot,omitempty"`
}

// saveStateLocked persists the session table and cached allocation
// atomically (temp file + rename). Caller holds s.mu.
func (s *Server) saveStateLocked() error {
	if s.opts.StatePath == "" {
		return nil
	}
	st := persistedState{V: ProtocolVersion, NextToken: s.nextToken}
	for _, tok := range s.order {
		e := s.sessions[tok]
		st.Sessions = append(st.Sessions, persistedSession{Token: tok, Members: e.members, Demand: e.demand})
	}
	s.snapMu.RLock()
	st.Snapshot = s.cur
	s.snapMu.RUnlock()
	raw, err := json.Marshal(&st)
	if err != nil {
		return fmt.Errorf("admin: save state: %w", err)
	}
	tmp := s.opts.StatePath + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("admin: save state: %w", err)
	}
	if err := os.Rename(tmp, s.opts.StatePath); err != nil {
		return fmt.Errorf("admin: save state: %w", err)
	}
	s.saves++
	return nil
}

// handleConn serves one client connection: newline-delimited request frames
// in, one response frame per request out. Decode failures produce error
// responses without closing the connection (frames re-sync at the next
// newline); connections close once the daemon drains.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		s.connWG.Done()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), MaxFrameBytes)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		resp, startDrain, watch := s.dispatch(sc.Bytes())
		if watch != nil {
			// The connection becomes a one-way event stream; serveWatch
			// writes every remaining frame and the loop never resumes.
			s.serveWatch(w, watch.id, watch.params)
			return
		}
		frame, err := EncodeFrame(resp)
		if err != nil {
			// A result too large to frame must not kill the connection
			// silently; degrade to an error response.
			frame, _ = EncodeFrame(&Response{V: ProtocolVersion, ID: resp.ID, Code: ErrCodeInternal, Error: err.Error()})
		}
		if _, err := w.Write(frame); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if startDrain {
			s.Drain()
		}
		if s.draining.Load() {
			return
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		// Oversized or torn frame: report once, then drop the connection
		// (the stream offset is unrecoverable).
		frame, _ := EncodeFrame(&Response{V: ProtocolVersion, Code: ErrCodeBadFrame, Error: fmt.Sprintf("unreadable frame: %v", err)})
		conn.Write(frame)
	}
}

// watchStart asks handleConn to hand the connection over to serveWatch.
type watchStart struct {
	id     uint64
	params *WatchParams
}

// dispatch decodes and executes one request frame, returning the response,
// whether a drain should start after it is written, and a non-nil watchStart
// when the request converts the connection into a watch stream (the response
// is nil then; serveWatch writes the initial frame itself).
func (s *Server) dispatch(line []byte) (*Response, bool, *watchStart) {
	req, err := DecodeRequest(line)
	if err != nil {
		var fe *FrameError
		if errors.As(err, &fe) {
			s.countRPC("invalid")
			return errResp(fe.ID, fe.Code, fe.Msg), false, nil
		}
		s.countRPC("invalid")
		return errResp(0, ErrCodeBadFrame, err.Error()), false, nil
	}
	s.countRPC(req.Op)
	resp := &Response{V: ProtocolVersion, ID: req.ID, OK: true}
	switch req.Op {
	case OpPing:
		resp.Ping = &PingResult{Protocol: ProtocolVersion, Draining: s.draining.Load()}
	case OpJoin:
		res, code, err := s.handleJoin(req.Join)
		if err != nil {
			return errResp(req.ID, code, err.Error()), false, nil
		}
		resp.Join = res
	case OpLeave:
		res, code, err := s.handleLeave(req.Leave)
		if err != nil {
			return errResp(req.ID, code, err.Error()), false, nil
		}
		resp.Leave = res
	case OpRebalance:
		res, code, err := s.handleRebalance()
		if err != nil {
			return errResp(req.ID, code, err.Error()), false, nil
		}
		resp.Rebalance = res
	case OpSnapshot:
		refresh := req.Snapshot != nil && req.Snapshot.Refresh
		res, code, err := s.handleSnapshot(refresh)
		if err != nil {
			return errResp(req.ID, code, err.Error()), false, nil
		}
		resp.Snapshot = res
	case OpFault:
		res, code, err := s.handleFault(req.Fault)
		if err != nil {
			return errResp(req.ID, code, err.Error()), false, nil
		}
		resp.Fault = res
	case OpStats:
		resp.Stats = s.handleStats()
	case OpMetrics:
		resp.Metrics = &MetricsResult{Text: PrometheusText(s.handleStats())}
	case OpWatch:
		if s.draining.Load() {
			return errResp(req.ID, ErrCodeDraining, "daemon is draining"), false, nil
		}
		return nil, false, &watchStart{id: req.ID, params: req.Watch}
	case OpDrain:
		if s.draining.Load() {
			return errResp(req.ID, ErrCodeDraining, "daemon is already draining"), false, nil
		}
		resp.Drain = &DrainResult{Active: s.activeCount()}
		return resp, true, nil
	}
	return resp, false, nil
}

func errResp(id uint64, code, msg string) *Response {
	return &Response{V: ProtocolVersion, ID: id, Code: code, Error: msg}
}

func (s *Server) countRPC(op string) {
	s.statMu.Lock()
	s.rpcs[op]++
	s.statMu.Unlock()
}

// wireTree converts an immutable OverlayTree into its wire form (private
// copies — wire frames must not alias allocator-owned slices).
func wireTree(t overcast.OverlayTree) WireTree {
	pairs := make([][2]int, len(t.Pairs()))
	copy(pairs, t.Pairs())
	return WireTree{Pairs: pairs, Rate: t.Rate(), Hops: t.PhysicalHops()}
}

func wirePlacement(tok uint64, members []int, p overcast.Placement) WirePlacement {
	wp := WirePlacement{
		Session: tok,
		Epoch:   p.Epoch,
		Rate:    p.Rate,
		Members: append([]int(nil), members...),
		Tree:    wireTree(p.Tree),
	}
	for _, t := range p.Trees {
		wp.Trees = append(wp.Trees, wireTree(t))
	}
	return wp
}

// handleJoin admits a session through the admission policy. Every rejection
// leaves the allocator exactly as it was (joins are rolled back via the
// exact Leave rollback).
func (s *Server) handleJoin(params *JoinParams) (*JoinResult, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrCodeDraining, fmt.Errorf("daemon is draining")
	}
	if s.opts.MaxSessions > 0 && len(s.order) >= s.opts.MaxSessions {
		s.rejects++
		return nil, ErrCodeAdmission, fmt.Errorf("admission rejected: %d active sessions at MaxSessions limit", len(s.order))
	}
	p, err := s.alloc.Join(overcast.Session{Members: params.Members, Demand: params.Demand})
	if err != nil {
		return nil, ErrCodeBadParams, err
	}
	// Admit provisionally — admission rejections below roll the join back
	// exactly (the allocator's Leave rollback) and remove the entry again.
	s.nextToken++
	tok := s.nextToken
	s.sessions[tok] = &sessionEntry{id: p.Session, members: append([]int(nil), params.Members...), demand: params.Demand}
	s.order = append(s.order, tok)
	reject := func(why error) (*JoinResult, string, error) {
		if err := s.alloc.Leave(p.Session); err != nil {
			return nil, ErrCodeInternal, fmt.Errorf("admission rollback failed: %v", err)
		}
		delete(s.sessions, tok)
		s.order = s.order[:len(s.order)-1]
		s.nextToken--
		s.rejects++
		return nil, ErrCodeAdmission, why
	}
	if s.opts.MaxCongestion > 0 {
		if c := s.alloc.MaxCongestion(); c > s.opts.MaxCongestion {
			return reject(fmt.Errorf("admission rejected: online congestion %.4f exceeds MaxCongestion %.4f", c, s.opts.MaxCongestion))
		}
	}
	if s.opts.StrictAdmission && s.alloc.Stats().ColdSolves > 0 {
		// Probe: can warm repair restore ε-feasibility for the grown
		// population within the configured RepairPhaseBudget? A fallback
		// to cold mid-repair means it could not.
		before := s.alloc.Stats().WarmFallbacks
		snap, err := s.alloc.Snapshot()
		if err != nil {
			return nil, ErrCodeInternal, fmt.Errorf("admission probe refresh: %v", err)
		}
		if s.alloc.Stats().WarmFallbacks > before {
			return reject(fmt.Errorf("admission rejected: warm repair exceeded RepairPhaseBudget restoring feasibility"))
		}
		// The probe paid for a fresh allocation; publish it.
		s.publishSnapshotLocked(snap, s.order)
	}
	s.notifyWatchersLocked()
	return &JoinResult{Placement: wirePlacement(tok, params.Members, p)}, "", nil
}

func (s *Server) handleLeave(params *LeaveParams) (*LeaveResult, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrCodeDraining, fmt.Errorf("daemon is draining")
	}
	e := s.sessions[params.Session]
	if e == nil {
		return nil, ErrCodeUnknownSession, fmt.Errorf("no live session with token %d", params.Session)
	}
	if err := s.alloc.Leave(e.id); err != nil {
		return nil, ErrCodeInternal, err
	}
	delete(s.sessions, params.Session)
	for i, tok := range s.order {
		if tok == params.Session {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.notifyWatchersLocked()
	return &LeaveResult{Session: params.Session, Active: len(s.order)}, "", nil
}

// handleFault injects one underlay fault event into the allocator. An
// effective fault (one that changes the link's capacity) advances the
// allocator epoch, so watch streams see one frame per fault; a redundant
// event (link-up on a healthy link, nested recovery) is a no-op and notifies
// nobody. The materialized snapshot is NOT refreshed here — the post-fault
// allocation is recomputed lazily by the next refreshing read, exactly like
// joins.
func (s *Server) handleFault(params *FaultParams) (*FaultResult, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrCodeDraining, fmt.Errorf("daemon is draining")
	}
	lf := overcast.LinkFault{From: params.From, To: params.To, Factor: params.Factor}
	switch params.Kind {
	case FaultLinkDown:
		lf.Kind = overcast.FaultLinkDown
	case FaultLinkUp:
		lf.Kind = overcast.FaultLinkUp
	case FaultDrift:
		lf.Kind = overcast.FaultDrift
	}
	before := s.alloc.Epoch()
	cap, err := s.alloc.Fault(lf)
	if err != nil {
		return nil, ErrCodeBadParams, err
	}
	if s.alloc.Epoch() != before {
		s.notifyWatchersLocked()
	}
	return &FaultResult{
		From:           params.From,
		To:             params.To,
		Kind:           params.Kind,
		Capacity:       cap,
		Epoch:          s.alloc.Epoch(),
		UnderlayEvents: s.alloc.Stats().UnderlayEvents,
	}, "", nil
}

func (s *Server) handleRebalance() (*RebalanceResult, string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrCodeDraining, fmt.Errorf("daemon is draining")
	}
	if len(s.order) == 0 {
		return nil, ErrCodeInternal, fmt.Errorf("no active sessions to rebalance")
	}
	ps, err := s.alloc.Rebalance()
	if err != nil {
		return nil, ErrCodeInternal, err
	}
	res := &RebalanceResult{Epoch: s.alloc.Epoch()}
	for i, p := range ps {
		tok := s.order[i]
		res.Placements = append(res.Placements, wirePlacement(tok, s.sessions[tok].members, p))
	}
	// The refresh behind Rebalance already did the solve work; materialize
	// the same allocation for concurrent snapshot readers.
	snap, err := s.alloc.Snapshot()
	if err != nil {
		return nil, ErrCodeInternal, err
	}
	s.publishSnapshotLocked(snap, s.order)
	s.notifyWatchersLocked()
	return res, "", nil
}

// publishSnapshotLocked converts the allocation (dense arrival order) into a
// wire snapshot under the given token order and installs it as the cached
// current allocation. Caller holds s.mu; tokens[i] must be the session at
// dense index i.
func (s *Server) publishSnapshotLocked(a *overcast.Allocation, tokens []uint64) {
	res := &SnapshotResult{Epoch: s.alloc.Epoch(), Sessions: []WireAllocation{}}
	for i, tok := range tokens {
		e := s.sessions[tok]
		wa := WireAllocation{Session: tok, Rate: a.SessionRate(i)}
		if e != nil {
			wa.Demand = e.demand
			wa.Members = append([]int(nil), e.members...)
		}
		for _, t := range a.Trees(i) {
			wa.Trees = append(wa.Trees, WireTree{Pairs: t.Pairs, Rate: t.Rate, Hops: t.PhysicalHops})
		}
		res.Sessions = append(res.Sessions, wa)
	}
	res.Throughput = a.OverallThroughput()
	res.MinRate = a.MinSessionRate()
	res.MaxCongestion = a.MaxCongestion()
	s.snapMu.Lock()
	s.cur = res
	s.snapMu.Unlock()
}

func (s *Server) handleSnapshot(refresh bool) (*SnapshotResult, string, error) {
	if !refresh {
		s.snapMu.RLock()
		cur := s.cur
		s.snapMu.RUnlock()
		if cur != nil {
			return cur, "", nil
		}
		// Nothing materialized yet: fall through to a refreshing read.
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrCodeDraining, fmt.Errorf("daemon is draining")
	}
	if len(s.order) == 0 {
		return nil, ErrCodeInternal, fmt.Errorf("no active sessions to snapshot")
	}
	snap, err := s.alloc.Snapshot()
	if err != nil {
		return nil, ErrCodeInternal, err
	}
	s.publishSnapshotLocked(snap, s.order)
	s.snapMu.RLock()
	cur := s.cur
	s.snapMu.RUnlock()
	return cur, "", nil
}

func (s *Server) handleStats() *StatsResult {
	s.mu.Lock()
	res := &StatsResult{
		Active:        len(s.order),
		Admitted:      s.alloc.Admitted(),
		Epoch:         s.alloc.Epoch(),
		MaxCongestion: s.alloc.MaxCongestion(),
		Allocator:     s.alloc.Stats(),
		Daemon: DaemonStats{
			AdmissionRejected: s.rejects,
			SnapshotsSaved:    s.saves,
			Restored:          s.restored,
			UptimeSeconds:     time.Since(s.start).Seconds(),
			Draining:          s.draining.Load(),
		},
	}
	s.mu.Unlock()
	res.Daemon.RPCs = make(map[string]int)
	s.statMu.Lock()
	for op, n := range s.rpcs {
		res.Daemon.RPCs[op] = n
	}
	s.statMu.Unlock()
	return res
}

// notifyWatchersLocked fans the current epoch + materialized allocation out
// to every watch stream after a successful mutation. Caller holds s.mu, so
// events are enqueued in mutation order with distinct, increasing epochs.
// The send never blocks: a watcher whose buffer is full is disconnected
// (slow consumers must not back-pressure mutations).
func (s *Server) notifyWatchersLocked() {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if len(s.watchers) == 0 {
		return
	}
	ev := &WatchEvent{Epoch: s.alloc.Epoch()}
	s.snapMu.RLock()
	ev.Snapshot = s.cur
	s.snapMu.RUnlock()
	for w := range s.watchers {
		select {
		case w.ch <- ev:
		default:
			close(w.dead)
			delete(s.watchers, w)
		}
	}
}

// serveWatch owns the connection's write side for the rest of its life: the
// initial snapshot frame, one frame per epoch change, heartbeats when idle,
// and a terminal error frame (draining or slow-consumer) before close. Seq
// is assigned per-stream here, so shared fan-out events stay immutable.
func (s *Server) serveWatch(w *bufio.Writer, id uint64, params *WatchParams) {
	heartbeat := 30 * time.Second
	if params != nil && params.HeartbeatSeconds > 0 {
		heartbeat = time.Duration(params.HeartbeatSeconds * float64(time.Second))
	}
	wt := &watcher{ch: make(chan *WatchEvent, s.opts.WatchBuffer), dead: make(chan struct{})}

	// Register under s.mu so the initial frame's epoch and the queued
	// events form one gapless, duplicate-free sequence: every mutation
	// either committed before the epoch read here or enqueues an event.
	s.mu.Lock()
	first := &WatchEvent{Seq: 1, Epoch: s.alloc.Epoch()}
	s.snapMu.RLock()
	first.Snapshot = s.cur
	s.snapMu.RUnlock()
	s.watchMu.Lock()
	s.watchers[wt] = struct{}{}
	s.watchMu.Unlock()
	s.mu.Unlock()
	defer func() {
		s.watchMu.Lock()
		delete(s.watchers, wt)
		s.watchMu.Unlock()
	}()

	write := func(ev *WatchEvent) bool {
		frame, err := EncodeFrame(&Response{V: ProtocolVersion, ID: id, OK: true, Watch: ev})
		if err != nil {
			frame, _ = EncodeFrame(errResp(id, ErrCodeInternal, err.Error()))
		}
		if _, err := w.Write(frame); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	writeFinal := func(code, msg string) {
		if frame, err := EncodeFrame(errResp(id, code, msg)); err == nil {
			w.Write(frame)
			w.Flush()
		}
	}

	if !write(first) {
		return
	}
	seq, lastEpoch, lastSnap := first.Seq, first.Epoch, first.Snapshot
	t := time.NewTicker(heartbeat)
	defer t.Stop()
	for {
		select {
		case ev := <-wt.ch:
			seq++
			out := *ev
			out.Seq = seq
			lastEpoch, lastSnap = out.Epoch, out.Snapshot
			if !write(&out) {
				return
			}
			t.Reset(heartbeat)
		case <-t.C:
			seq++
			if !write(&WatchEvent{Seq: seq, Epoch: lastEpoch, Heartbeat: true, Snapshot: lastSnap}) {
				return
			}
		case <-wt.dead:
			writeFinal(ErrCodeSlowConsumer,
				fmt.Sprintf("watch stream fell more than %d events behind; reconnect and resync", s.opts.WatchBuffer))
			return
		case <-s.drainStart:
			writeFinal(ErrCodeDraining, "daemon is draining")
			return
		}
	}
}
