package topology

import (
	"testing"
	"testing/quick"

	"overcast/internal/rng"
)

func TestWaxmanConnectedAndSized(t *testing.T) {
	for _, n := range []int{1, 2, 5, 50, 100} {
		net, err := Waxman(DefaultWaxman(n), rng.New(42))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.Graph.NumNodes() != n {
			t.Fatalf("n=%d: got %d nodes", n, net.Graph.NumNodes())
		}
		if !net.Graph.Connected() {
			t.Fatalf("n=%d: disconnected Waxman graph", n)
		}
		for _, e := range net.Graph.Edges {
			if e.Capacity != 100 {
				t.Fatalf("capacity %v != 100", e.Capacity)
			}
		}
	}
}

func TestWaxmanDeterministicPerSeed(t *testing.T) {
	a, err := Waxman(DefaultWaxman(60), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(DefaultWaxman(60), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != b.Graph.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c, err := Waxman(DefaultWaxman(60), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() {
		same := true
		for i := range a.Graph.Edges {
			if a.Graph.Edges[i] != c.Graph.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestWaxmanEdgeBudget(t *testing.T) {
	// Incremental mode with m=2 adds at most 2 edges per node.
	net, err := Waxman(DefaultWaxman(100), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if e := net.Graph.NumEdges(); e > 2*100 || e < 99 {
		t.Fatalf("unexpected edge count %d", e)
	}
}

func TestWaxmanRejectsBadN(t *testing.T) {
	if _, err := Waxman(WaxmanConfig{N: 0}, rng.New(1)); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	net, err := BarabasiAlbert(80, 2, 10, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Graph.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Preferential attachment should produce at least one hub whose degree
	// is well above m.
	maxDeg := 0
	for v := 0; v < net.Graph.NumNodes(); v++ {
		if d := net.Graph.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 6 {
		t.Fatalf("no hub emerged, max degree %d", maxDeg)
	}
	if _, err := BarabasiAlbert(0, 2, 10, rng.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestTwoLevel(t *testing.T) {
	cfg := DefaultTwoLevel(4, 10)
	net, err := TwoLevel(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.NumNodes() != 40 {
		t.Fatalf("node count %d != 40", net.Graph.NumNodes())
	}
	if !net.Graph.Connected() {
		t.Fatal("two-level graph disconnected")
	}
	if len(net.ASOf) != 40 {
		t.Fatal("ASOf missing")
	}
	for v, a := range net.ASOf {
		if want := v / 10; a != want {
			t.Fatalf("ASOf[%d]=%d want %d", v, a, want)
		}
	}
	// There must exist at least one inter-AS edge per AS-level edge.
	inter := 0
	for _, e := range net.Graph.Edges {
		if net.ASOf[e.U] != net.ASOf[e.V] {
			inter++
		}
	}
	if inter < 3 {
		t.Fatalf("too few inter-AS links: %d", inter)
	}
}

func TestTwoLevelRejectsBadConfig(t *testing.T) {
	if _, err := TwoLevel(TwoLevelConfig{ASes: 0, RoutersPerAS: 5}, rng.New(1)); err == nil {
		t.Fatal("0 ASes accepted")
	}
}

func TestSyntheticTopologies(t *testing.T) {
	ring, err := Ring(6, 10)
	if err != nil || ring.Graph.NumEdges() != 6 || !ring.Graph.Connected() {
		t.Fatalf("ring: %v edges=%d", err, ring.Graph.NumEdges())
	}
	star, err := Star(5, 10)
	if err != nil || star.Graph.NumEdges() != 4 || star.Graph.Degree(0) != 4 {
		t.Fatalf("star wrong: %v", err)
	}
	grid, err := Grid(3, 4, 10)
	if err != nil || grid.Graph.NumNodes() != 12 || grid.Graph.NumEdges() != 3*3+2*4 {
		t.Fatalf("grid wrong: %v edges=%d", err, grid.Graph.NumEdges())
	}
	k5, err := Complete(5, 10)
	if err != nil || k5.Graph.NumEdges() != 10 {
		t.Fatalf("complete wrong: %v", err)
	}
	db, err := Dumbbell(3, 10, 1)
	if err != nil || db.Graph.NumNodes() != 6 || db.Graph.NumEdges() != 2*3+1 {
		t.Fatalf("dumbbell wrong: %v", err)
	}
	if id, ok := db.Graph.EdgeBetween(0, 3); !ok || db.Graph.Edges[id].Capacity != 1 {
		t.Fatal("dumbbell bottleneck missing")
	}
	p, err := Path(4, 10)
	if err != nil || p.Graph.NumEdges() != 3 {
		t.Fatalf("path wrong: %v", err)
	}
}

func TestSyntheticRejectBadSizes(t *testing.T) {
	if _, err := Ring(2, 1); err == nil {
		t.Error("ring(2) accepted")
	}
	if _, err := Star(1, 1); err == nil {
		t.Error("star(1) accepted")
	}
	if _, err := Grid(0, 3, 1); err == nil {
		t.Error("grid(0,3) accepted")
	}
	if _, err := Complete(1, 1); err == nil {
		t.Error("complete(1) accepted")
	}
	if _, err := Dumbbell(1, 1, 1); err == nil {
		t.Error("dumbbell(1) accepted")
	}
	if _, err := Path(1, 1); err == nil {
		t.Error("path(1) accepted")
	}
}

func TestWaxmanAlwaysConnectedProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		net, err := Waxman(DefaultWaxman(n), rng.New(seed))
		if err != nil {
			return false
		}
		return net.Graph.Connected() && net.Graph.NumNodes() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaxman100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Waxman(DefaultWaxman(100), rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoLevel(b *testing.B) {
	cfg := DefaultTwoLevel(10, 30)
	for i := 0; i < b.N; i++ {
		if _, err := TwoLevel(cfg, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
