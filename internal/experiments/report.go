package experiments

// The per-scenario report is the first cut of the ROADMAP "which allocation
// wins where" sweep: for every workload scenario, solve the same instance
// with both allocation objectives — MaxFlow (M1, weighted aggregate
// throughput) and MaxConcurrentFlow (M2, weighted max-min fairness) — and
// tabulate the axes the paper argues about: link utilization, the minimum
// session rate, and rate fairness. MF should win utilization/throughput,
// MCF min-rate and fairness; the table quantifies by how much per workload
// mix, at a small and a medium tier.

import (
	"fmt"
	"strings"

	"overcast/internal/core"
	"overcast/internal/workload"
)

// ReportTier names one instance size of the MF-vs-MCF report.
type ReportTier struct {
	Name     string
	Nodes    int
	Sessions int
}

// DefaultReportTiers returns the small and medium tiers: sized so the full
// 5-scenario x 2-solver sweep stays in CI-friendly territory while being
// large enough for the scenarios' distributions to show.
func DefaultReportTiers() []ReportTier {
	return []ReportTier{
		{Name: "small", Nodes: 300, Sessions: 12},
		{Name: "medium", Nodes: 600, Sessions: 24},
	}
}

// ReportRow is one (scenario, tier, solver) result of the MF-vs-MCF report.
type ReportRow struct {
	Scenario string
	Tier     string
	Edges    int
	Solver   string // "maxflow" or "mcf"
	// Throughput is the overall receiving rate Σ_i (|S_i|-1)·rate_i.
	Throughput float64
	// MinRatio is min_i rate_i/dem(i), the demand-satisfaction floor (the
	// M2 objective; for MaxFlow it shows what aggregate optimization costs
	// the weakest session).
	MinRatio float64
	// MeanUtil is the mean utilization over links carrying traffic (the
	// paper's link-utilization plots count only covered links).
	MeanUtil float64
	// Fairness is Jain's index over the demand-satisfaction ratios
	// rate_i/dem(i): 1 = perfectly proportional, 1/k = one session takes
	// all. Computed on ratios, not raw rates, so heterogeneous demands do
	// not masquerade as unfairness.
	Fairness float64
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) of xs (1 when xs
// is empty or all-zero, by convention 0 length -> 1).
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// reportRow summarizes one solved instance into a row.
func reportRow(scenario, tier, solver string, si *ScaleInstance, sol *core.Solution) ReportRow {
	ratios := make([]float64, len(si.Sessions))
	minRatio := -1.0
	for i, s := range si.Sessions {
		ratios[i] = sol.SessionRate(i) / s.Demand
		if minRatio < 0 || ratios[i] < minRatio {
			minRatio = ratios[i]
		}
	}
	utils := sol.Utilizations()
	meanUtil := 0.0
	for _, u := range utils {
		meanUtil += u
	}
	if len(utils) > 0 {
		meanUtil /= float64(len(utils))
	}
	return ReportRow{
		Scenario: scenario, Tier: tier, Edges: si.Net.Graph.NumEdges(), Solver: solver,
		Throughput: sol.OverallThroughput(), MinRatio: minRatio,
		MeanUtil: meanUtil, Fairness: JainFairness(ratios),
	}
}

// ReportSolverOptions carries the wall-clock-only solver knobs into every
// instance of an MF-vs-MCF report. Rows are bit-identical for every value
// (the determinism gate sweeps them).
type ReportSolverOptions struct {
	Workers              int
	DisablePlane         bool
	DisableRepair        bool
	DisableSubtreeRepair bool
	// Shards runs each instance's solvers on price-exchanging shards (see
	// core.MaxFlowOptions.Shards); 0 = unsharded.
	Shards int
}

// MFvsMCFReport builds one instance per (scenario, tier), solves it with
// both objectives, and returns two rows per instance (MaxFlow first). Seeds
// derive from the base seed, the scenario's position in the *registry* (not
// in the requested list — so a single-scenario invocation reproduces the
// exact rows of the full table), and the tier index; the report is fully
// deterministic (it is part of the detdump fingerprint). An empty scenario
// list means every registered scenario.
func MFvsMCFReport(seed uint64, eps float64, solver ReportSolverOptions, scenarios []string, tiers []ReportTier) ([]ReportRow, error) {
	if len(scenarios) == 0 {
		scenarios = workload.Names()
	}
	if len(tiers) == 0 {
		tiers = DefaultReportTiers()
	}
	registryIndex := make(map[string]int, len(workload.Names()))
	for i, name := range workload.Names() {
		registryIndex[name] = i
	}
	var rows []ReportRow
	for _, name := range scenarios {
		if _, err := workload.Get(name); err != nil {
			return nil, err
		}
		sci := registryIndex[name]
		for ti, tier := range tiers {
			si, err := NewScaleInstance(seed+uint64(100*sci+ti), ScaleConfig{
				Nodes: tier.Nodes, Sessions: tier.Sessions, Scenario: name,
				Workers: solver.Workers, DisablePlane: solver.DisablePlane,
				DisableRepair:        solver.DisableRepair,
				DisableSubtreeRepair: solver.DisableSubtreeRepair,
				Shards:               solver.Shards,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: report %s/%s: %w", name, tier.Name, err)
			}
			mf, err := si.MaxFlow(eps, true)
			if err != nil {
				return nil, fmt.Errorf("experiments: report %s/%s maxflow: %w", name, tier.Name, err)
			}
			rows = append(rows, reportRow(name, tier.Name, "maxflow", si, mf))
			mcf, err := si.MCF(eps, true)
			if err != nil {
				return nil, fmt.Errorf("experiments: report %s/%s mcf: %w", name, tier.Name, err)
			}
			rows = append(rows, reportRow(name, tier.Name, "mcf", si, mcf.Solution))
		}
	}
	return rows, nil
}

// RenderReport renders the rows as an aligned MF-vs-MCF table, pairing the
// two solvers of each instance on consecutive lines.
func RenderReport(rows []ReportRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-13s %-7s %-7s %-8s %12s %10s %9s %9s\n",
		"scenario", "tier", "|E|", "solver", "throughput", "min-ratio", "meanutil", "fairness")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-13s %-7s %-7d %-8s %12.2f %10.4f %9.4f %9.4f\n",
			r.Scenario, r.Tier, r.Edges, r.Solver, r.Throughput, r.MinRatio, r.MeanUtil, r.Fairness)
	}
	return sb.String()
}
