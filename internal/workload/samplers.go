// Package workload generates the stochastic ingredients of a scenario: link
// capacities, session demands, session sizes, and member popularity. The
// paper evaluates only uniform capacity 100 with a handful of fixed-size
// sessions; measurement studies of deployed overlays (MON, P2P VoD traces)
// show heavy-tailed capacities and demands and strongly skewed session
// popularity, and those regimes change which allocation wins. Every sampler
// here draws from the splittable overcast RNG, so a scenario instance is a
// pure function of its seed.
package workload

import (
	"fmt"
	"math"
	"sort"

	"overcast/internal/rng"
)

// Sampler draws positive float64 values (capacities, demands).
type Sampler interface {
	Sample(r *rng.RNG) float64
	String() string
}

// Constant always returns its value.
type Constant float64

// Sample implements Sampler.
func (c Constant) Sample(*rng.RNG) float64 { return float64(c) }

func (c Constant) String() string { return fmt.Sprintf("const(%g)", float64(c)) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Sampler.
func (u Uniform) Sample(r *rng.RNG) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// Pareto draws from a Pareto distribution with tail index Shape and minimum
// Scale via inverse-transform sampling: x = Scale * u^(-1/Shape). Shape <= 1
// has infinite mean; the scenarios use Shape in (1, 2], whose mean
// Shape*Scale/(Shape-1) is finite but whose variance may not be — the
// classic heavy-tailed regime.
type Pareto struct{ Shape, Scale float64 }

// Sample implements Sampler.
func (p Pareto) Sample(r *rng.RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Scale * math.Pow(u, -1/p.Shape)
		}
	}
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(a=%g,xm=%g)", p.Shape, p.Scale) }

// Lognormal draws exp(Mu + Sigma*N(0,1)); the median is exp(Mu).
type Lognormal struct{ Mu, Sigma float64 }

// Sample implements Sampler.
func (l Lognormal) Sample(r *rng.RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

func (l Lognormal) String() string {
	return fmt.Sprintf("lognormal(med=%.3g,s=%g)", math.Exp(l.Mu), l.Sigma)
}

// LognormalMedian builds a Lognormal from its median instead of Mu, which
// reads better in scenario definitions.
func LognormalMedian(median, sigma float64) Lognormal {
	return Lognormal{Mu: math.Log(median), Sigma: sigma}
}

// Clamp restricts an inner sampler to [Lo, Hi], keeping heavy tails from
// producing values that destroy solver numerics (a 1e8 capacity next to a
// 1e0 one makes the Garg-Koenemann length updates useless).
type Clamp struct {
	S      Sampler
	Lo, Hi float64
}

// Sample implements Sampler.
func (c Clamp) Sample(r *rng.RNG) float64 {
	v := c.S.Sample(r)
	if v < c.Lo {
		return c.Lo
	}
	if v > c.Hi {
		return c.Hi
	}
	return v
}

func (c Clamp) String() string { return fmt.Sprintf("%v|[%g,%g]", c.S, c.Lo, c.Hi) }

// Zipf samples ranks 0..n-1 with P(k) proportional to 1/(k+1)^s, via a
// cumulative table and binary search. Building the table is O(n) once;
// each Sample is O(log n), allocation-free, and deterministic.
type Zipf struct {
	cum []float64
	s   float64
}

// NewZipf precomputes the rank table. It panics for n < 1 or s < 0
// (s = 0 degenerates to the uniform distribution, which is allowed).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("workload: Zipf needs s >= 0")
	}
	z := &Zipf{cum: make([]float64, n), s: s}
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		z.cum[k] = total
	}
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws one rank in [0, N).
func (z *Zipf) Sample(r *rng.RNG) int {
	x := r.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, x)
}
