// Command benchjson converts `go test -bench` output into a stable JSON
// document (benchmark name -> ns/op, B/op, allocs/op) and optionally
// compares it against a previous document, so CI can upload every run's
// numbers as an artifact and print the perf trajectory against the
// committed baseline.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkScale -benchmem ./... | \
//	    go run ./cmd/benchjson -out BENCH_scale.json -compare BENCH_scale.json
//
// With -compare, the previous file is read before -out is written, so the
// two flags may name the same path (the local "update the committed
// baseline" workflow).
//
// With -maxregress P (a percentage, e.g. 35), the comparison becomes a
// regression gate: the exit status is non-zero when any benchmark present in
// both documents regressed its ns/op by more than P percent. Shared CI
// runners are noisy, so the threshold is deliberately loose; the CI step
// that invokes it is a hard gate since the clean-run window elapsed (see
// README "Bench regression gate").
//
// When the baseline document's recorded core count differs from this run's,
// both the comparison table and the gate are skipped with a warning: the
// worker-sweep benchmarks collapse to the sequential baseline on small
// runners, so cross-core deltas are machine differences, not a perf
// trajectory. Re-record the baseline on the current runner to re-arm the
// gate (`make bench-scale-json`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's figures. Zero-valued fields were absent from
// the input (e.g. no -benchmem).
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Document is the BENCH_*.json schema. Cores records the recording machine's
// logical CPU count (GOMAXPROCS at conversion time): the worker-sweep
// benchmarks (BenchmarkScaleParallel*) collapse to the sequential baseline on
// single-core runners, so a trajectory entry is only comparable to baselines
// recorded at a similar core count — see the ROADMAP multicore caveat.
type Document struct {
	Schema     string            `json:"schema"`
	Cores      int               `json:"cores,omitempty"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// cpuSuffix strips the trailing GOMAXPROCS marker (`-8`) benchmark names
// carry, so documents from machines with different core counts compare.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON output file (default stdout)")
	compare := flag.String("compare", "", "previous JSON document to diff against (missing file = no comparison)")
	maxRegress := flag.Float64("maxregress", 0, "fail (exit 1) when any ns/op regresses by more than this percentage vs -compare (0 = informational only)")
	note := flag.String("note", "", "free-form annotation recorded in the document (e.g. runner caveats)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	doc.Cores = runtime.GOMAXPROCS(0)
	doc.Note = *note

	var prev *Document
	if *compare != "" {
		if data, err := os.ReadFile(*compare); err == nil {
			prev = &Document{}
			if err := json.Unmarshal(data, prev); err != nil {
				fatal(fmt.Errorf("parse %s: %w", *compare, err))
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}

	if prev != nil {
		if prev.Cores != 0 && prev.Cores != doc.Cores {
			// Cross-core-count comparisons move the worker-sweep benchmarks
			// for machine reasons alone (see the Document doc comment):
			// deltas against such a baseline are machine noise posing as a
			// perf trajectory, and a hard gate would fail spuriously or mask
			// real regressions. Warn and skip both the comparison table and
			// the gate instead of silently comparing.
			fmt.Fprintf(os.Stderr, "benchjson: baseline recorded on %d cores, this run on %d — comparison and regression gate skipped (re-record the baseline on this runner: make bench-scale-json)\n",
				prev.Cores, doc.Cores)
			return
		}
		printComparison(os.Stdout, prev, doc)
		if *maxRegress > 0 {
			if bad := regressions(prev, doc, *maxRegress); len(bad) > 0 {
				fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed ns/op by more than %.0f%%:\n", len(bad), *maxRegress)
				for _, line := range bad {
					fmt.Fprintln(os.Stderr, "  "+line)
				}
				os.Exit(1)
			}
			fmt.Printf("\nregression gate passed: no ns/op regression above %.0f%%\n", *maxRegress)
		}
	}
}

// regressions lists benchmarks present in both documents whose ns/op grew by
// more than maxPct percent, sorted by name.
func regressions(prev, cur *Document, maxPct float64) []string {
	var bad []string
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		or, had := prev.Benchmarks[name]
		if !had || or.NsPerOp <= 0 {
			continue
		}
		nr := cur.Benchmarks[name]
		if pct := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp; pct > maxPct {
			bad = append(bad, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", name, or.NsPerOp, nr.NsPerOp, pct))
		}
	}
	return bad
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse extracts `BenchmarkName-N  iters  1234 ns/op [5678 B/op 9 allocs/op]`
// lines, ignoring everything else (goos/pkg headers, PASS, test log output).
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Schema: "overcast-bench/v1", Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, ok = v, true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		doc.Benchmarks[name] = res
	}
	return doc, sc.Err()
}

// printComparison renders the old-vs-new trajectory, sorted by name, with
// adds/removes called out.
func printComparison(w io.Writer, prev, cur *Document) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-38s %14s %14s %8s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		nr := cur.Benchmarks[name]
		or, had := prev.Benchmarks[name]
		if !had {
			fmt.Fprintf(w, "%-38s %14s %14.0f %8s %12.0f\n", name, "(new)", nr.NsPerOp, "", nr.AllocsPerOp)
			continue
		}
		delta := "n/a"
		if or.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(nr.NsPerOp-or.NsPerOp)/or.NsPerOp)
		}
		fmt.Fprintf(w, "%-38s %14.0f %14.0f %8s %12.0f\n", name, or.NsPerOp, nr.NsPerOp, delta, nr.AllocsPerOp)
	}
	var absent []string
	for name := range prev.Benchmarks {
		if _, still := cur.Benchmarks[name]; !still {
			absent = append(absent, name)
		}
	}
	sort.Strings(absent)
	for _, name := range absent {
		fmt.Fprintf(w, "%-38s (absent from this run)\n", name)
	}
}
