// Command experiments regenerates the paper's tables and figures, plus the
// large-instance scale tier.
//
// Usage:
//
//	experiments [-scale small|paper|large] [-seed N] [-trials N] [-maxpts N]
//	            [-nodes N -sessions K -sessionsize S] [-scenario names]
//	            [-workers W] [exp ...]
//
// where each exp is one of table2, fig2, table4, fig3, fig4, fig5, fig6,
// table7, fig7, table8, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
// fig15, fig16, fig17, fig18, fig19, scale, churn, warmchurn, daemonchurn,
// faultchurn, report, or "all". With no
// arguments the Setting-A experiments (table2..fig11) run; with -scale
// large the scale tier runs.
//
// -workers sets the solvers' oracle worker-pool size (0 = GOMAXPROCS for
// the scale tier, sequential solves for the sweep tiers, which already
// parallelize across rows/cells/trials). Solver outputs are bit-identical
// for every worker count — the knob moves wall-clock only. -plane=false
// disables the shared SSSP plane on the scale/churn/report tiers, and
// -repair=false its cross-round dirty-source repair (outputs are
// plane- and repair-independent too; scale/churn rows print the plane's
// dedup factor and repair skip rate when they fired).
//
// The report experiment prints the per-scenario MF-vs-MCF comparison table
// (overall throughput, demand-satisfaction floor, mean link utilization,
// Jain fairness over satisfaction ratios) at a small and a medium tier —
// the "which allocation wins where" sweep:
//
//	experiments report
//	experiments -scenario cdn,livestream report
//
// The churn experiment replays a scenario-driven arrival/departure trace
// through the online allocator (sizes, demands, and member popularity from
// the -scenario workload mixes; all scenarios when the flag is empty), with
// per-session oracles prefabricated across the worker pool:
//
//	experiments -scenario cdn churn
//	experiments -nodes 2000 -workers 8 churn
//
// The warmchurn experiment replays an arrival/departure trace through the
// v2 Allocator with a periodic Snapshot cadence, once warm-started and once
// with every refresh forced cold, and prints the steady-state fair
// allocations/sec both sustain plus the warm-start speedup:
//
//	experiments warmchurn
//	experiments -nodes 400 -workers 8 warmchurn
//
// The faultchurn experiment replays the same kind of churn trace
// interleaved with a seeded link flap trace (Poisson failures, exponential
// repairs) through the v2 Allocator's public Fault surface — once raw and
// once filtered through the route-flap damper — and prints both rows plus
// the damper's suppression bound on fault-forced cold re-solves:
//
//	experiments faultchurn
//	experiments -nodes 600 -workers 8 faultchurn
//
// The daemonchurn experiment boots an in-process overcastd admin server on
// a unix socket and replays the same kind of trace through a concurrent
// synthetic client fleet speaking the wire protocol (joins, leaves, cached
// and refreshing snapshot reads), printing the sustained admin ops/sec —
// the daemon-path counterpart of warmchurn:
//
//	experiments daemonchurn
//	experiments -nodes 400 -workers 8 daemonchurn
//
// -scale small (default) runs reduced instances in seconds; -scale paper
// reproduces the paper's instance sizes (100-node Waxman, 10x100 two-level
// topology, ratio sweep 0.90..0.99) and can take hours for the Sec. VI
// grid; -scale large runs the north-star regime the BenchmarkScale*
// benchmarks measure — Waxman topologies at 2,000-10,000 nodes with 64-256
// competing sessions under both routing models (minutes to hours). The
// "scale" experiment honours -nodes/-sessions/-sessionsize to solve one
// custom instance instead of the built-in suite.
//
// -scenario selects named workload scenarios for the scale tier
// (comma-separated; "all" sweeps every registered scenario, "list" prints
// the catalogue): heterogeneous capacity/demand distributions and session
// mixes from internal/workload, generated on the grid-accelerated Waxman
// topology. For example:
//
//	experiments -scenario list
//	experiments -scenario heavytail scale
//	experiments -scale large -scenario livestream,cdn scale
//	experiments -scenario cdn -nodes 5000 -sessions 128 scale
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"overcast/internal/experiments"
	"overcast/internal/stats"
	"overcast/internal/workload"
)

func main() {
	scale := flag.String("scale", "small", "instance scale: small, paper, or large")
	seed := flag.Uint64("seed", 2004, "experiment seed")
	trials := flag.Int("trials", 0, "override trial count for averaged sweeps (0 = scale default)")
	maxpts := flag.Int("maxpts", 12, "max points printed per curve")
	nodes := flag.Int("nodes", 0, "scale experiment: custom topology size (0 = built-in suite)")
	sessions := flag.Int("sessions", 64, "scale experiment: custom session count")
	sessionSize := flag.Int("sessionsize", 6, "scale experiment: custom members per session")
	scenario := flag.String("scenario", "", "scale experiment: workload scenarios, comma-separated (all | list | names)")
	workers := flag.Int("workers", 0, "solver oracle worker-pool size (0 = auto); outputs are worker-count independent")
	shards := flag.Int("shards", 0, "solver shard count behind the price-exchange boundary (settingB/scale/warmchurn/report tiers; 0 = unsharded); outputs are shard-count independent")
	plane := flag.Bool("plane", true, "enable the solve-scoped shared SSSP plane (scale/churn/report tiers); outputs are plane-independent")
	repair := flag.Bool("repair", true, "enable the plane's cross-round dirty-source repair; outputs are repair-independent")
	subtree := flag.Bool("subtree", true, "enable repair's incremental subtree path; outputs are subtree-independent")
	flag.Parse()

	if *scenario == "list" {
		fmt.Println("Registered workload scenarios:")
		for _, name := range workload.Names() {
			sc, _ := workload.Get(name)
			fmt.Printf("  %-13s %s\n                (%s; capacity %v, demand %v, %v, popularity s=%g)\n",
				name, sc.Description, sc.Regime, sc.Capacity, sc.Demand, sc.Size, sc.PopularityExp)
		}
		return
	}

	exps := flag.Args()
	if len(exps) == 0 {
		if *scale == "large" || *scenario != "" {
			exps = []string{"scale"}
		} else {
			exps = []string{"table2", "fig2", "table4", "fig3", "fig4", "fig5", "fig6",
				"table7", "fig7", "table8", "fig8", "fig9", "fig10", "fig11"}
		}
	}
	if len(exps) == 1 && exps[0] == "all" {
		exps = []string{"table2", "fig2", "table4", "fig3", "fig4", "fig5", "fig6",
			"table7", "fig7", "table8", "fig8", "fig9", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
			"scale", "churn", "warmchurn", "daemonchurn", "faultchurn", "report"}
	}

	r := runner{scale: *scale, seed: *seed, trials: *trials, maxpts: *maxpts,
		nodes: *nodes, sessions: *sessions, sessionSize: *sessionSize, scenario: *scenario,
		workers: *workers, shards: *shards, disablePlane: !*plane, disableRepair: !*repair,
		disableSubtree: !*subtree}
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "sessionsize" {
			r.sessionSizeSet = true
		}
	})
	for _, e := range exps {
		start := time.Now()
		if err := r.run(e); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", e, time.Since(start).Round(time.Millisecond))
	}
}

type runner struct {
	scale          string
	seed           uint64
	trials         int
	maxpts         int
	nodes          int
	sessions       int
	sessionSize    int
	sessionSizeSet bool // -sessionsize given explicitly (conflicts with -scenario)
	scenario       string
	workers        int
	shards         int
	disablePlane   bool
	disableRepair  bool
	disableSubtree bool

	settingA *experiments.SettingA
	settingB *experiments.SettingB
}

// scenarioNames resolves the -scenario flag into registry names (nil, from
// "all", means every registered scenario). Whitespace and empty entries
// from stray commas are dropped, so "cdn," cannot silently select the
// legacy empty-scenario construction; a value that is nothing but
// separators is an error, not a full-registry sweep.
func (r *runner) scenarioNames() ([]string, error) {
	if r.scenario == "all" {
		return nil, nil
	}
	var names []string
	for _, name := range strings.Split(r.scenario, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-scenario %q names no scenario (have all | %s)",
			r.scenario, strings.Join(workload.Names(), " | "))
	}
	return names, nil
}

func (r *runner) ratios() []float64 {
	if r.scale == "paper" {
		return experiments.PaperRatios
	}
	return []float64{0.90, 0.93, 0.95}
}

func (r *runner) a() (*experiments.SettingA, error) {
	if r.settingA != nil {
		return r.settingA, nil
	}
	cfg := experiments.DefaultSettingA()
	if r.scale != "paper" {
		cfg = experiments.SettingAConfig{Nodes: 60, SessionSizes: []int{6, 4}, Demand: 100, Capacity: 100}
	}
	a, err := experiments.NewSettingA(r.seed, cfg)
	if err != nil {
		return nil, err
	}
	a.SolverWorkers = r.workers
	r.settingA = a
	return a, nil
}

func (r *runner) b() (*experiments.SettingB, error) {
	if r.settingB != nil {
		return r.settingB, nil
	}
	cfg := experiments.DefaultSettingB()
	if r.scale != "paper" {
		cfg = experiments.SettingBConfig{ASes: 3, RoutersPerAS: 12, Capacity: 100}
	}
	b, err := experiments.NewSettingB(r.seed, cfg)
	if err != nil {
		return nil, err
	}
	b.SolverWorkers = r.workers
	b.SolverShards = r.shards
	r.settingB = b
	return b, nil
}

func (r *runner) gridCfg() experiments.GridConfig {
	if r.scale == "paper" {
		return experiments.DefaultGrid()
	}
	return experiments.GridConfig{
		SessionCounts: []int{1, 2, 3},
		SessionSizes:  []int{4, 8, 12},
		Ratio:         0.93,
		Demand:        1,
	}
}

func (r *runner) treeLimitCfg(arbitrary bool) experiments.TreeLimitConfig {
	cfg := experiments.DefaultTreeLimit()
	cfg.Arbitrary = arbitrary
	if r.scale != "paper" {
		cfg.MaxTrees = []int{1, 2, 5, 10, 15, 20}
		cfg.Mus = []float64{10, 30, 100}
		cfg.Trials = 10
		cfg.BaseRatio = 0.93
	}
	if r.trials > 0 {
		cfg.Trials = r.trials
	}
	return cfg
}

func (r *runner) onlineTrials() int {
	if r.trials > 0 {
		return r.trials
	}
	if r.scale == "paper" {
		return 100
	}
	return 5
}

func (r *runner) run(exp string) error {
	switch exp {
	case "table2", "table7":
		arb := exp == "table7"
		a, err := r.a()
		if err != nil {
			return err
		}
		rows, _, err := a.MaxFlowSweep(r.ratios(), arb)
		if err != nil {
			return err
		}
		title := "Table II: MaxFlow (fixed IP routing)"
		if arb {
			title = "Table VII: MaxFlow (arbitrary routing)"
		}
		fmt.Print(experiments.RenderFlowTable(title, rows))
	case "fig2", "fig7":
		arb := exp == "fig7"
		a, err := r.a()
		if err != nil {
			return err
		}
		ratios := r.ratios()
		_, sols, err := a.MaxFlowSweep(ratios, arb)
		if err != nil {
			return err
		}
		for ri, sol := range sols {
			curves := experiments.RateCDFs(sol)
			labels := make([]string, len(curves))
			for i := range labels {
				labels[i] = fmt.Sprintf("session %d", i+1)
			}
			fmt.Print(experiments.RenderCDFFamily(
				fmt.Sprintf("%s: tree-rate CDF at ratio %.2f", exp, ratios[ri]), labels, curves, r.maxpts))
		}
	case "table4", "table8":
		arb := exp == "table8"
		a, err := r.a()
		if err != nil {
			return err
		}
		rows, _, err := a.MCFSweep(r.ratios(), arb)
		if err != nil {
			return err
		}
		title := "Table IV: MaxConcurrentFlow (fixed IP routing)"
		if arb {
			title = "Table VIII: MaxConcurrentFlow (arbitrary routing)"
		}
		fmt.Print(experiments.RenderMCFTable(title, rows))
	case "fig3", "fig8":
		arb := exp == "fig8"
		a, err := r.a()
		if err != nil {
			return err
		}
		ratios := r.ratios()
		_, sols, err := a.MCFSweep(ratios, arb)
		if err != nil {
			return err
		}
		for ri, sol := range sols {
			curves := experiments.RateCDFs(sol)
			labels := make([]string, len(curves))
			for i := range labels {
				labels[i] = fmt.Sprintf("session %d", i+1)
			}
			fmt.Print(experiments.RenderCDFFamily(
				fmt.Sprintf("%s: MCF tree-rate CDF at ratio %.2f", exp, ratios[ri]), labels, curves, r.maxpts))
		}
	case "fig4", "fig9":
		arb := exp == "fig9"
		a, err := r.a()
		if err != nil {
			return err
		}
		_, mf, err := a.MaxFlowSweep([]float64{0.95}, arb)
		if err != nil {
			return err
		}
		_, mcf, err := a.MCFSweep([]float64{0.95}, arb)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCDFFamily(exp+": link utilization",
			[]string{"MaxFlow", "MaxConcurrentFlow"},
			[][]stats.Point{experiments.LinkUtilizationCDF(mf[0]), experiments.LinkUtilizationCDF(mcf[0])},
			r.maxpts))
	case "fig5", "fig6", "fig10", "fig11":
		arb := exp == "fig10" || exp == "fig11"
		a, err := r.a()
		if err != nil {
			return err
		}
		res, err := a.TreeLimitSweep(r.treeLimitCfg(arb))
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTreeLimit(res))
	case "fig12", "fig13", "fig14", "fig15", "fig16", "fig17":
		b, err := r.b()
		if err != nil {
			return err
		}
		grid, err := b.Grid(r.gridCfg())
		if err != nil {
			return err
		}
		switch exp {
		case "fig12":
			fmt.Println("Fig 12: overall throughput (MaxFlow)")
			fmt.Print(grid.Throughput.Render())
		case "fig13":
			fmt.Println("Fig 13: physical edges per node")
			fmt.Print(grid.EdgesPerNode.Render())
		case "fig14":
			fmt.Println("Fig 14: link utilization panels")
			keys := make([][2]int, 0, len(grid.Cells))
			for k := range grid.Cells {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i][0] != keys[j][0] {
					return keys[i][0] < keys[j][0]
				}
				return keys[i][1] < keys[j][1]
			})
			for _, k := range keys {
				cell := grid.Cells[k]
				fmt.Print(experiments.RenderCDFFamily(
					fmt.Sprintf("sessions=%d size=%d", cell.Sessions, cell.Size),
					[]string{"MaxConcurrentFlow", "MaxFlow"},
					[][]stats.Point{cell.MCFUtilCDF, cell.MFUtilCDF}, r.maxpts))
			}
		case "fig15":
			fmt.Println("Fig 15: minimum session rate (MaxConcurrentFlow)")
			fmt.Print(grid.MinRate.Render())
		case "fig16":
			fmt.Println("Fig 16: throughput ratio MCF/MF")
			fmt.Print(grid.ThroughputRatio.Render())
		case "fig17":
			fmt.Println("Fig 17: tree-rate CDF vs session size (single session, MaxFlow)")
			for _, k := range sortedKeys(grid) {
				cell := grid.Cells[k]
				if cell.Sessions != 1 {
					continue
				}
				fmt.Printf("-- size %d\n%s", cell.Size, stats.RenderCurve(cell.MFTreeRateCDF, r.maxpts))
			}
		}
	case "fig18", "fig19":
		b, err := r.b()
		if err != nil {
			return err
		}
		limits := []int{5, 60}
		if r.scale != "paper" {
			limits = []int{5, 15}
		}
		res, err := b.OnlineGrid(r.gridCfg(), limits, 10, r.onlineTrials())
		if err != nil {
			return err
		}
		for _, l := range limits {
			if exp == "fig18" {
				fmt.Printf("Fig 18: online/MaxFlow throughput ratio, %d trees\n", l)
				fmt.Print(res.ThroughputRatio[l].Render())
			} else {
				fmt.Printf("Fig 19: online/MCF min-rate ratio, %d trees\n", l)
				fmt.Print(res.MinRateRatio[l].Render())
			}
		}
	case "scale":
		var cfgs []experiments.ScaleConfig
		switch {
		case r.scenario != "":
			names, err := r.scenarioNames()
			if err != nil {
				return err
			}
			if r.sessionSizeSet {
				// Scenario session sizes come from the workload's size mix.
				fmt.Fprintln(os.Stderr, "experiments: warning: -sessionsize is ignored with -scenario (the scenario's session-size mix applies)")
			}
			switch {
			case r.nodes > 0:
				if names == nil {
					names = workload.Names()
				}
				for _, name := range names {
					if _, err := workload.Get(name); err != nil {
						return err
					}
					cfgs = append(cfgs,
						experiments.ScaleConfig{Nodes: r.nodes, Sessions: r.sessions, Scenario: name},
						experiments.ScaleConfig{Nodes: r.nodes, Sessions: r.sessions, Scenario: name, Arbitrary: true},
					)
				}
			case r.scale == "paper" || r.scale == "large":
				cfgs, err = experiments.ScenarioScaleSuite(names)
			default:
				cfgs, err = experiments.SmallScenarioSuite(names)
			}
			if err != nil {
				return err
			}
		case r.nodes > 0:
			cfgs = []experiments.ScaleConfig{
				{Nodes: r.nodes, Sessions: r.sessions, SessionSize: r.sessionSize},
				{Nodes: r.nodes, Sessions: r.sessions, SessionSize: r.sessionSize, Arbitrary: true},
			}
		case r.scale == "paper" || r.scale == "large":
			cfgs = experiments.DefaultScaleSuite()
		default:
			cfgs = experiments.SmallScaleSuite()
		}
		for ci := range cfgs {
			cfgs[ci].Workers = r.workers
			cfgs[ci].Shards = r.shards
			cfgs[ci].DisablePlane = r.disablePlane
			cfgs[ci].DisableRepair = r.disableRepair
			cfgs[ci].DisableSubtreeRepair = r.disableSubtree
		}
		rows, err := experiments.ScaleSuite(r.seed, 0.3, true, cfgs)
		if err != nil {
			return err
		}
		fmt.Println("Scale tier: large-instance solver throughput")
		for _, row := range rows {
			fmt.Println(row.String())
		}
	case "report":
		var names []string
		if r.scenario != "" {
			var err error
			if names, err = r.scenarioNames(); err != nil {
				return err
			}
		}
		rows, err := experiments.MFvsMCFReport(r.seed, 0.3, experiments.ReportSolverOptions{
			Workers: r.workers, DisablePlane: r.disablePlane, DisableRepair: r.disableRepair,
			DisableSubtreeRepair: r.disableSubtree, Shards: r.shards,
		}, names, nil)
		if err != nil {
			return err
		}
		fmt.Println("Report tier: MF vs MCF per workload scenario (which allocation wins where)")
		fmt.Print(experiments.RenderReport(rows))
	case "warmchurn":
		nodes := r.nodes
		if nodes == 0 {
			nodes = 120
			if r.scale == "paper" || r.scale == "large" {
				nodes = 600
			}
		}
		cfg := experiments.WarmChurnConfig{
			Nodes: nodes, Workers: r.workers, Shards: r.shards,
			DisablePlane: r.disablePlane, DisableRepair: r.disableRepair,
			DisableSubtreeRepair: r.disableSubtree,
		}
		warm, cold, err := experiments.WarmChurnPair(r.seed, cfg)
		if err != nil {
			return err
		}
		fmt.Println("Warm-churn tier: Allocator v2 steady-state fair allocations under churn (warm-start vs cold re-solve)")
		fmt.Println(warm.String())
		fmt.Println(cold.String())
		if cold.AllocationsPerSec > 0 {
			fmt.Printf("warm-start steady-state speedup: %.2fx allocations/sec\n",
				warm.AllocationsPerSec/cold.AllocationsPerSec)
		}
		if q := experiments.WarmQuality(warm, cold); q > 0 {
			fmt.Printf("warm-start mean snapshot quality: %.4f of cold throughput (FPTAS band >= %.4f)\n",
				q, 1/(1+warm.Config.Epsilon))
		}
	case "faultchurn":
		nodes := r.nodes
		if nodes == 0 {
			nodes = 120
			if r.scale == "paper" || r.scale == "large" {
				nodes = 600
			}
		}
		cfg := experiments.FaultChurnConfig{
			Nodes: nodes, Workers: r.workers, Shards: r.shards,
		}
		undamped, damped, err := experiments.FaultChurnPair(r.seed, cfg)
		if err != nil {
			return err
		}
		fmt.Println("Fault-churn tier: session churn under underlay link flaps (raw vs flap-damped)")
		fmt.Println(undamped.String())
		fmt.Println(damped.String())
		if undamped.ColdSolves > 0 {
			fmt.Printf("flap damping: %d/%d fault events suppressed, cold re-solves %d -> %d (%.2fx)\n",
				damped.Suppressed, undamped.TraceFaults,
				undamped.ColdSolves, damped.ColdSolves,
				float64(undamped.ColdSolves)/float64(max(damped.ColdSolves, 1)))
		}
	case "daemonchurn":
		nodes := r.nodes
		if nodes == 0 {
			nodes = 120
			if r.scale == "paper" || r.scale == "large" {
				nodes = 600
			}
		}
		rep, err := experiments.DaemonChurnRun(r.seed, experiments.DaemonChurnConfig{
			Nodes: nodes, Workers: r.workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("Daemon-churn tier: overcastd admin socket throughput under a synthetic client fleet")
		fmt.Println(rep.String())
	case "churn":
		var names []string
		if r.scenario != "" {
			var err error
			if names, err = r.scenarioNames(); err != nil {
				return err
			}
		}
		nodes := r.nodes
		if nodes == 0 {
			nodes = 300
			if r.scale == "paper" || r.scale == "large" {
				nodes = 2000
			}
		}
		reports, err := experiments.ChurnSuite(r.seed, nodes, r.workers, r.disablePlane, names)
		if err != nil {
			return err
		}
		fmt.Println("Churn tier: scenario-driven online allocation under arrivals/departures")
		for _, rep := range reports {
			fmt.Println(rep.String())
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func sortedKeys(grid *experiments.GridResult) [][2]int {
	keys := make([][2]int, 0, len(grid.Cells))
	for k := range grid.Cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
