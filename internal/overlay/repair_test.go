package overlay

import (
	"testing"

	"overcast/internal/graph"
)

// bumpTreeEdges applies a MaxFlow-style monotone inflation to every edge of
// t, journaled on ls.
func bumpTreeEdges(ls *graph.LengthStore, t *Tree) {
	for _, use := range t.Use() {
		ls.Bump(use.Edge, 1+0.05*float64(use.Count))
	}
}

// TestRepairSkipsUntouchedRows drives the persistent plane through the
// MaxFlow pattern — evaluate all, inflate one tree's edges, evaluate again —
// and pins both halves of the repair contract: rows do get skipped, and
// every slot stays bitwise identical to a direct MinTree call under the
// mutated lengths.
func TestRepairSkipsUntouchedRows(t *testing.T) {
	g, oracles := arbBatchFixture(t, 7)
	for _, workers := range []int{1, 4} {
		r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: true})
		ls := graph.NewLengthStore(g, 1)
		for round := 0; round < 6; round++ {
			results := r.MinTreesLen(ls, nil)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("workers=%d round %d oracle %d: %v", workers, round, i, res.Err)
				}
				want, err := oracles[i].MinTree(ls.Values())
				if err != nil {
					t.Fatal(err)
				}
				if res.Tree.Key() != want.Key() {
					t.Fatalf("workers=%d round %d oracle %d: repaired tree differs from direct call", workers, round, i)
				}
				if res.Len != want.LengthUnder(ls.Values()) {
					t.Fatalf("workers=%d round %d oracle %d: len %v != %v", workers, round, i, res.Len, want.LengthUnder(ls.Values()))
				}
			}
			// Inflate one session's tree, like a routed MaxFlow iteration.
			bumpTreeEdges(ls, results[round%len(results)].Tree)
		}
		m := r.Metrics()
		if m.PlaneSkipped == 0 {
			t.Fatalf("workers=%d: no refill was ever skipped (%+v)", workers, m)
		}
		if m.PlaneRepaired == 0 {
			t.Fatalf("workers=%d: no row was ever repaired — bumps never hit a read path? (%+v)", workers, m)
		}
		r.Close()
	}
}

// TestRepairLedgerSwapInvalidates pins the ledger-identity guard: a runner
// fed a *different* LengthStore must drop every persistent row (their
// epochs are meaningless under the new ledger) and still answer exactly.
func TestRepairLedgerSwapInvalidates(t *testing.T) {
	g, oracles := arbBatchFixture(t, 5)
	r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 1, SharedPlane: true})
	defer r.Close()

	lsA := graph.NewLengthStore(g, 1)
	r.MinTrees(lsA, nil)
	sourcesAfterA := r.Metrics().PlaneSources

	// A fresh ledger with different contents but the same epoch counter (0):
	// trusting epochs across stores would wrongly skip every refill here.
	lsB := graph.NewLengthStoreFrom(lengthsFor(g, 3))
	results := r.MinTrees(lsB, nil)
	for i, res := range results {
		want, err := oracles[i].MinTree(lsB.Values())
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil || res.Tree.Key() != want.Key() {
			t.Fatalf("oracle %d: stale row served across a ledger swap", i)
		}
	}
	m := r.Metrics()
	if m.PlaneSkipped != 0 || m.PlaneSources <= sourcesAfterA {
		t.Fatalf("ledger swap must refill everything, got %+v (sources after A: %d)", m, sourcesAfterA)
	}
}

// TestRepairRoundAllocs is the allocation gate for the repair hot path:
// under the same bump-one-tree round pattern, repaired rounds must allocate
// no more than full-refill rounds do — the dirty checks, skip bookkeeping,
// and tree cache all run on pooled state.
func TestRepairRoundAllocs(t *testing.T) {
	g, oracles := arbBatchFixture(t, 6)
	measure := func(disableRepair bool) float64 {
		r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 1, SharedPlane: true, DisableRepair: disableRepair})
		defer r.Close()
		ls := graph.NewLengthStore(g, 1)
		res := r.MinTrees(ls, nil) // warm up rows and caches
		bumpTreeEdges(ls, res[0].Tree)
		round := 0
		return testing.AllocsPerRun(50, func() {
			res := r.MinTrees(ls, nil)
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
			bumpTreeEdges(ls, res[round%len(res)].Tree)
			round++
		})
	}
	repaired, full := measure(false), measure(true)
	if repaired > full {
		t.Fatalf("repaired rounds allocate %.1f/round vs %.1f/round with repair off — repair state is not pooled", repaired, full)
	}
}

// TestSeedPlaneCopiesFirstBatch pins the prestep seeding contract: a runner
// whose Seed was filled under the ledger's exact epoch-0 lengths must copy
// its first-batch rows (PlaneSeeded, no Dijkstras for seeded sources) and
// still produce bitwise the seedless results.
func TestSeedPlaneCopiesFirstBatch(t *testing.T) {
	g, oracles := arbBatchFixture(t, 5)
	const init = 1.25
	seed := NewPlane(g)
	for _, o := range oracles {
		for _, s := range o.(PlaneOracle).PlaneSources() {
			seed.Stage(s)
		}
	}
	seed.Fill(graph.NewLengths(g, init), 2)

	seeded := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 1, SharedPlane: true, Seed: seed})
	defer seeded.Close()
	plain := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 1, SharedPlane: true})
	defer plain.Close()

	lsA, lsB := graph.NewLengthStore(g, init), graph.NewLengthStore(g, init)
	for round := 0; round < 3; round++ {
		got := seeded.MinTreesLen(lsA, nil)
		want := plain.MinTreesLen(lsB, nil)
		for i := range got {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("round %d oracle %d: %v / %v", round, i, got[i].Err, want[i].Err)
			}
			if got[i].Tree.Key() != want[i].Tree.Key() || got[i].Len != want[i].Len {
				t.Fatalf("round %d oracle %d: seeded result differs from plain", round, i)
			}
		}
		// Advance both ledgers identically.
		bumpTreeEdges(lsA, want[round%len(want)].Tree)
		bumpTreeEdges(lsB, want[round%len(want)].Tree)
	}
	ms, mp := seeded.Metrics(), plain.Metrics()
	if ms.PlaneSeeded == 0 {
		t.Fatalf("seed plane never fired: %+v", ms)
	}
	if ms.PlaneSources >= mp.PlaneSources {
		t.Fatalf("seeding saved no Dijkstras: %d vs %d", ms.PlaneSources, mp.PlaneSources)
	}
}

// TestTreeCacheServesIdenticalTrees pins the tree cache: when nothing moved
// between two batches on one ledger, the second batch serves every slot
// from the cache (PlaneTreeHits) with trees bitwise equal to a direct call.
func TestTreeCacheServesIdenticalTrees(t *testing.T) {
	g, oracles := arbBatchFixture(t, 6)
	r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 2, SharedPlane: true})
	defer r.Close()
	ls := graph.NewLengthStore(g, 1)
	first := r.MinTrees(ls, nil)
	firstKeys := make([]string, len(first))
	for i, res := range first {
		firstKeys[i] = res.Tree.Key()
	}
	if r.Metrics().PlaneTreeHits != 0 {
		t.Fatalf("cold batch reported tree hits: %+v", r.Metrics())
	}
	second := r.MinTrees(ls, nil)
	for i, res := range second {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Tree.Key() != firstKeys[i] {
			t.Fatalf("oracle %d: cached tree differs", i)
		}
		want, err := oracles[i].MinTree(ls.Values())
		if err != nil {
			t.Fatal(err)
		}
		if res.Tree.Key() != want.Key() {
			t.Fatalf("oracle %d: cached tree differs from direct call", i)
		}
	}
	if hits := r.Metrics().PlaneTreeHits; hits != len(oracles) {
		t.Fatalf("tree cache hits %d, want %d (every slot)", hits, len(oracles))
	}
}
