package overlay

import (
	"runtime"
	"sort"
	"sync"

	"overcast/internal/graph"
)

// BatchResult is one oracle's minimum overlay spanning tree with its raw
// (unnormalized) length under the batch's length function. Len is filled by
// MinTreesLen only (MinTrees leaves it zero): the extra O(tree edges) pass
// is measurable in length-oblivious phase loops like MaxConcurrentFlow's.
//
// Aliasing contract: the []BatchResult slice a runner returns is reused — the
// next MinTrees/MinTreesLen call on the same runner overwrites every slot in
// place. Consume (or copy) the results before rebatching; holding the slice
// across calls observes the *next* batch's trees. The Tree objects are never
// mutated after they are returned, so trees extracted from a batch stay
// valid (and bitwise intact) indefinitely; with cross-round repair enabled a
// later batch may return the *same* Tree pointer again when the length
// ledger proves the recomputation would be identical (the tree cache) —
// callers must not rely on pointer freshness, only on immutability
// (TestBatchResultSliceReusedAcrossCalls pins the slice half of this
// contract, TestTreeCacheServesIdenticalTrees the tree half).
type BatchResult struct {
	Tree *Tree
	Len  float64
	Err  error
}

// BatchOptions configures a BatchRunner beyond the oracle set.
type BatchOptions struct {
	// Workers is the worker-pool size: <= 0 means GOMAXPROCS. The pool is
	// clamped to the oracle count unless the shared plane is active (plane
	// rows can outnumber oracles, so extra workers still help stage 1).
	Workers int
	// SharedPlane enables the solve-scoped shared SSSP plane: each batch
	// first ensures one Dijkstra row per *distinct* member source of its
	// plane-aware oracles, then assembles every plane-aware oracle's tree
	// from those rows. Outputs are bitwise identical with the plane on or
	// off (identical Dijkstras over the identical snapshot, whichever stage
	// runs them); the toggle exists for the determinism gate and perf
	// comparisons. It is a no-op for oracle sets without a PlaneOracle
	// (e.g. all fixed-routing).
	SharedPlane bool
	// DisableRepair turns off cross-round dirty-source repair: with repair
	// on (the default when the plane is active), rows persist across batches
	// and are refilled only when the length ledger shows a touched edge
	// inside the row's stored SSSP tree — unaffected sources skip their
	// Dijkstra entirely. Sound because the solvers' length updates are
	// monotone growths (LengthStore.MonotoneSince guards the rest): growing
	// an edge outside a shortest-path tree cannot change any distance, and
	// the deterministic tie-breaks resolve identically, so the stored row is
	// bitwise what a refill would produce. Outputs are bit-identical with
	// repair on or off; the toggle exists for the determinism gate and perf
	// comparisons.
	DisableRepair bool
	// DisableSubtreeRepair turns off the third per-row classification
	// outcome, subtree repair, leaving the original skip-or-full-refill
	// behavior: with it on (the default when repair is active), a row whose
	// stored tree took touched edges is repaired by resuming Dijkstra over
	// only the affected subtrees (routing.RepairSubtreesInto) whenever the
	// bit-identity certificate holds — monotone ledger window, strictly
	// positive lengths (LengthStore.AllPositive), an exact (never
	// serviceable-skipped) row, and a known dirty-root set — and falls back
	// to a full refill otherwise. Outputs are bit-identical with the toggle
	// on or off (the repaired region is provably what a refill would
	// produce); the toggle exists for the determinism gate and perf
	// comparisons. No-op when DisableRepair is set.
	DisableSubtreeRepair bool
	// Seed optionally names a read-only plane whose rows were filled under
	// lengths bitwise identical to the epoch-0 contents of the ledgers this
	// runner will see. Rows first staged while the ledger is monotone-clean
	// since epoch 0 are copied from the seed (O(n)) instead of computed
	// (O((n+m)log n)) — the MCF beta prestep shares one seed across all
	// same-delta subproblems this way. The seed must not be mutated while
	// any runner holds it.
	Seed *Plane
	// Dynamic declares that the oracle set will grow after construction via
	// AddOracle (the warm-start allocator admits sessions over the runner's
	// lifetime). It keeps the worker pool at the requested size instead of
	// clamping it to the (possibly empty) initial oracle count, and — when
	// SharedPlane is set — creates the plane eagerly, since a plane-aware
	// oracle may arrive later even if none exists yet.
	Dynamic bool
}

// BatchRunner evaluates many oracles' MinTree under a shared length ledger
// with a persistent worker pool and one Scratch per worker. The paper's phase
// loops query the same oracle set thousands of times; a runner amortizes both
// the goroutines and the scratch buffers across all of those batches instead
// of rebuilding them per call.
//
// The reduction is deterministic by construction: result slot j of a batch
// always holds oracle ids[j]'s tree, computed under the batch's immutable
// length snapshot, so neither the worker count nor goroutine scheduling can
// change what a caller observes. Oracles must be safe for concurrent reads
// (both built-in oracles are: MinTreeWith touches only the per-call Scratch).
//
// With the shared plane enabled (BatchOptions.SharedPlane; the default of
// NewBatchRunner) each batch runs as two stages. Stage 1 walks the distinct
// member sources of the batch's plane-aware oracles — in batch order, so row
// assignment is canonical — and classifies each row: already proven current
// (cross-round repair skip), copyable from a prestep seed, or needing a
// fill; the fills fan across the worker pool, each worker using pooled
// Dijkstra buffers. Stage 2 evaluates the batch slots as before, except
// plane-aware oracles assemble their overlay weights and routes from the
// plane rows instead of re-running per-member Dijkstras. The WaitGroup
// barrier between the stages orders all row writes before any stage-2 read.
type BatchRunner struct {
	g       *graph.Graph
	oracles []TreeOracle
	workers int

	// Inline scratch: the whole batch when workers == 1, single-slot batches
	// otherwise (lazily created; avoids channel round-trips for one job).
	seq *Scratch

	// Shared SSSP plane (nil when disabled or no oracle can use it).
	// planeLive marks that the current batch staged and filled rows, so
	// eval may read them; filling flips the meaning of a job from "evaluate
	// batch slot" to "fill plane row". All these fields are written by the
	// batch goroutine only, between the pool's channel/WaitGroup barriers.
	plane     *Plane
	planeLive bool
	filling   bool
	repair    bool
	subtree   bool
	seed      *Plane
	// walkedTo is the ledger epoch up to which the per-batch journal walk has
	// fanned touches through the plane's inverted index (stagePlane replays
	// (walkedTo, cur] once per batch, for all rows at once).
	walkedTo graph.Epoch
	// minLen is the batch ledger's MinLengthLB snapshot, taken at staging and
	// passed to RepairRow for the post-repair scale-separation re-check.
	minLen float64
	// targets[src] is the static set of co-members whose reads row src
	// serves; the dirty-source repair check walks exactly these stored
	// paths. Built once at construction (nil when the plane is off).
	targets map[graph.NodeID][]graph.NodeID
	// cache[i] is oracle i's last plane-assembled tree with the ledger epoch
	// it was built at (nil tree = empty). When every member row of the
	// oracle still has DijkstraEpoch <= the entry's epoch, the rows are
	// bitwise unchanged since the tree was assembled, so the identical tree
	// is returned without re-running Prim or route extraction. useCache is
	// the per-batch-slot decision, precomputed sequentially in stagePlane so
	// the metrics stay single-writer.
	cache    []treeCacheEntry
	useCache []bool
	metrics  Metrics
	// ls is the ledger of the current batch; lastStore remembers the ledger
	// of the previous batch so a ledger swap (a different solve phase, a
	// test driving rounds with fresh stores) invalidates every persistent
	// row instead of trusting stale epochs. curEpoch is the batch's ledger
	// epoch, published before the jobs fan out.
	lastStore *graph.LengthStore
	curEpoch  graph.Epoch
	// staged/toFill/toRepair are per-batch scratch: rows referenced by this
	// batch, the subset needing a full Dijkstra, and the subset taking a
	// subtree repair. repairRoots[k] aliases the plane's pending dirty-root
	// list for toRepair[k]; repairOut[k]/repairOK[k] are that slot's repaired
	// node set and outcome, written by the worker that ran it and folded into
	// metrics/index sequentially after the fill barrier.
	staged      []int32
	toFill      []int32
	toRepair    []int32
	repairRoots [][]graph.NodeID
	repairOut   [][]graph.NodeID
	repairOK    []bool

	// Parallel mode: persistent workers fed per-batch via jobs. d, ids and
	// out describe the current batch; they are published before the job sends
	// and read by workers via the channel's happens-before edge, and the
	// WaitGroup barrier orders all slot writes before the caller's reads.
	jobs    chan int
	wg      sync.WaitGroup
	d       graph.Lengths
	ids     []int
	wantLen bool
	out     []BatchResult
}

// NewBatchRunner builds a runner over oracles with the requested worker-pool
// size, the shared SSSP plane enabled (a no-op for oracle sets that cannot
// use it), and cross-round repair on; see NewBatchRunnerOpts for the full
// contract.
func NewBatchRunner(g *graph.Graph, oracles []TreeOracle, workers int) *BatchRunner {
	return NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: true})
}

// NewBatchRunnerOpts builds a runner over oracles. Workers <= 0 means
// GOMAXPROCS, and the pool is never larger than the oracle set unless the
// plane is active. With one worker the runner degrades to a single-scratch
// sequential path with zero goroutines; results are identical either way —
// and identical with the plane or repair on or off.
func NewBatchRunnerOpts(g *graph.Graph, oracles []TreeOracle, opts BatchOptions) *BatchRunner {
	var plane *Plane
	if opts.SharedPlane {
		if opts.Dynamic {
			plane = NewPlane(g)
		} else {
			for _, o := range oracles {
				if _, ok := o.(PlaneOracle); ok {
					plane = NewPlane(g)
					break
				}
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if plane == nil && !opts.Dynamic && workers > len(oracles) {
		workers = len(oracles)
	}
	if workers < 1 {
		workers = 1
	}
	r := &BatchRunner{
		g: g, oracles: oracles, workers: workers,
		plane: plane, repair: !opts.DisableRepair,
		subtree: !opts.DisableRepair && !opts.DisableSubtreeRepair,
		seed:    opts.Seed,
		out:     make([]BatchResult, len(oracles)),
	}
	if plane != nil && r.repair {
		r.targets = planeTargets(oracles)
		r.cache = make([]treeCacheEntry, len(oracles))
		r.useCache = make([]bool, len(oracles))
		if r.subtree {
			// The inverted edge->rows index only serves subtree
			// classification; full-refill mode keeps the cheaper per-row
			// journal-replay check and pays nothing for index maintenance.
			plane.EnableIndex()
		}
	}
	if workers == 1 {
		r.seq = NewScratch(g)
		return r
	}
	r.jobs = make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			sc := NewScratch(g)
			for pos := range r.jobs {
				if r.filling {
					r.fillJob(pos, sc)
				} else {
					r.eval(pos, sc)
				}
				r.wg.Done()
			}
		}()
	}
	return r
}

// fillJob runs one stage-1 job: positions below len(toFill) are full row
// fills, the rest are subtree repairs. Each job writes only its own row's
// arrays and its own repairOut/repairOK slot, so jobs parallelize freely.
func (r *BatchRunner) fillJob(pos int, sc *Scratch) {
	if pos < len(r.toFill) {
		r.plane.FillRow(int(r.toFill[pos]), r.d, sc.dijkstra())
		return
	}
	k := pos - len(r.toFill)
	r.repairOut[k], r.repairOK[k] = r.plane.RepairRow(
		int(r.toRepair[k]), r.d, sc.dijkstra(), r.minLen, r.repairRoots[k], r.repairOut[k][:0])
}

// Workers returns the resolved worker-pool size.
func (r *BatchRunner) Workers() int { return r.workers }

// AddOracle appends an oracle to the runner's set and returns its id (usable
// in the ids argument of MinTrees/MinTreesLen). It must be called between
// batches, from the same goroutine that runs them — never while a batch is in
// flight. Growing the set never invalidates existing plane rows or cached
// trees: the new oracle's member sources only *add* read targets, and a
// stored row that was current for a superset of targets is current for the
// old ones too (the repair check just walks a few more stored paths).
func (r *BatchRunner) AddOracle(o TreeOracle) int {
	id := len(r.oracles)
	r.oracles = append(r.oracles, o)
	r.out = append(r.out, BatchResult{})
	if r.cache != nil {
		r.cache = append(r.cache, treeCacheEntry{})
		r.useCache = append(r.useCache, false)
	}
	if r.plane != nil && r.targets != nil {
		if po, ok := o.(PlaneOracle); ok {
			mergePlaneTargets(r.targets, po.PlaneSources())
		}
	}
	return id
}

// Metrics returns a snapshot of the runner's shared-plane counters. Call it
// between batches (the counters are updated while a batch is staged).
func (r *BatchRunner) Metrics() Metrics { return r.metrics }

// treeCacheEntry is one oracle's last plane-assembled tree and the ledger
// epoch its input rows carried.
type treeCacheEntry struct {
	tree  *Tree
	epoch graph.Epoch
}

// eval computes the tree of the oracle in batch slot pos.
func (r *BatchRunner) eval(pos int, sc *Scratch) {
	i := pos
	if r.ids != nil {
		i = r.ids[pos]
	}
	var t *Tree
	var err error
	if r.planeLive {
		if po, ok := r.oracles[i].(PlaneOracle); ok {
			if r.useCache != nil && r.useCache[pos] {
				t = r.cache[i].tree
			} else {
				t, err = po.MinTreeFromPlane(r.d, r.plane, sc)
				if err == nil && r.cache != nil {
					r.cache[i] = treeCacheEntry{tree: t, epoch: r.curEpoch}
				}
			}
		}
	}
	if t == nil && err == nil {
		t, err = MinTreeWith(r.oracles[i], r.d, sc)
	}
	if err != nil {
		r.out[pos] = BatchResult{Err: err}
		return
	}
	res := BatchResult{Tree: t}
	if r.wantLen {
		res.Len = t.LengthUnder(r.d)
	}
	r.out[pos] = res
}

// rowCurrent reports whether the stored content of row is provably
// interchangeable with a fresh Dijkstra under ls's current lengths for
// every read any oracle can make of it — the dirty-source repair check.
//
// The oracles never read a whole row: MinTreeFromPlane reads, for the row
// rooted at member i, only dist[m_j] (overlay weights) and the stored
// parent chains m_j -> m_i (route extraction) for the co-members j > i of
// the sessions containing the source. Those targets are static (member sets
// never change), precomputed per source at construction (planeTargets). The
// row therefore stays serviceable iff
//
//	(a) every ledger mutation since the row's fill epoch was a monotone
//	    growth (LengthStore.MonotoneSince), and
//	(b) no edge on a stored source->target path was touched since then
//	    (established either by replaying the ledger's touched-edge journal
//	    against the row's stored parent tree — the fast path, which when
//	    clean proves the whole row current — or by walking the stored
//	    target paths against the per-edge LastTouched stamps).
//
// Why that is bit-exact: growing edges can never lower any distance, so an
// untouched stored shortest path keeps both its length and its optimality —
// dist[target] is unchanged. And the deterministic relaxation replay
// resolves the parent chain identically: every node on the untouched path
// still pops at the same relative position (competitors' keys only grew),
// still receives its stored winning offer first (the offer is untouched),
// and competing offers only became more losing. Touched edges elsewhere in
// the row's SSSP tree may well change the parts nobody reads; the row is
// then stale-but-serviceable, which is why a skip advances the row's epoch:
// path cleanliness composes ((fill,cur] clean and (cur,cur'] clean iff
// (fill,cur'] clean) precisely because the checked target set is static.
func (r *BatchRunner) rowCurrent(ls *graph.LengthStore, row int) bool {
	fill := r.plane.FillEpoch(row)
	if fill < 0 {
		return false
	}
	if fill == ls.Epoch() {
		return true
	}
	if !ls.MonotoneSince(fill) {
		// Some length shrank since this row was filled (an underlay recovery
		// or downward drift mirrored into the ledger): a shrunk edge outside
		// the stored tree can re-route shortest paths, so no touched-edge
		// argument applies — degrade deterministically to a full refill.
		// Single-writer: rowCurrent only runs on stagePlane's sequential
		// classify pass.
		r.metrics.PlaneNonMonotone++
		return false
	}
	parents := r.plane.ParentRow(row)
	// Journal fast path: when the mutation window since fill is short,
	// replay it and test each touched edge against the row's *whole* stored
	// SSSP tree — an edge is a parent edge iff it is the stored parent of
	// one of its own two endpoints, so each probe is O(1). No touched tree
	// edge at all is the original full-row argument: the entire row (not
	// just the read paths) is bitwise what a recompute would produce. A tree
	// hit is merely inconclusive (the touched edge may sit outside every
	// read path), so fall through to the exact walk below.
	if cnt := ls.TouchedCount(fill); cnt < graph.Epoch(len(parents)) {
		clean := true
		if ls.ForEachTouched(fill, func(e graph.EdgeID) bool {
			edge := r.g.Edges[e]
			if parents[edge.U] == e || parents[edge.V] == e {
				clean = false
			}
			return !clean
		}) && clean {
			return true
		}
	}
	return r.rowServiceable(ls, row)
}

// rowServiceable is the exact target-path walk of the dirty-source check: it
// reports whether every stored source->target path of row is untouched since
// the row's fill epoch (LastTouched stamps are complete history, so this
// needs no journal window). True proves the read-visible parts of the row
// bitwise current — but not the whole row: unread parts may be stale, which
// is why a skip validated only by this walk demotes the row from exact to
// serviceable (subtree repair must not seed from its frontier afterwards).
func (r *BatchRunner) rowServiceable(ls *graph.LengthStore, row int) bool {
	fill := r.plane.FillEpoch(row)
	parents := r.plane.ParentRow(row)
	src := r.plane.Source(row)
	for _, t := range r.targets[src] {
		for v := t; v != src; {
			e := parents[v]
			if e < 0 || ls.LastTouched(e) > fill {
				return false
			}
			edge := r.g.Edges[e]
			if v == edge.U {
				v = edge.V
			} else {
				v = edge.U
			}
		}
	}
	return true
}

// planeTargets precomputes, for every distinct plane source, the union of
// co-members whose distance/route reads are served from that source's row
// (the co-members with a larger member index, over all sessions — see
// ArbitraryOracle.MinTreeFromPlane's weight orientation), deduplicated and
// sorted. The sets are static because session member lists are immutable.
func planeTargets(oracles []TreeOracle) map[graph.NodeID][]graph.NodeID {
	targets := make(map[graph.NodeID][]graph.NodeID)
	for _, o := range oracles {
		po, ok := o.(PlaneOracle)
		if !ok {
			continue
		}
		mergePlaneTargets(targets, po.PlaneSources())
	}
	return targets
}

// mergePlaneTargets folds one oracle's member list into the per-source target
// sets, keeping each set sorted and deduplicated.
func mergePlaneTargets(targets map[graph.NodeID][]graph.NodeID, members []graph.NodeID) {
	for i, s := range members {
		ts := append(targets[s], members[i+1:]...)
		sort.Ints(ts)
		dedup := ts[:0]
		for j, t := range ts {
			if j == 0 || t != ts[j-1] {
				dedup = append(dedup, t)
			}
		}
		targets[s] = dedup
	}
}

// stagePlane runs stage 1 of a batch: with subtree repair enabled, replay the
// ledger journal once through the plane's inverted edge->rows index
// (accumulating per-row dirty subtree roots); walk the distinct member
// sources of the batch's plane-aware oracles (in batch order — canonical row
// assignment), classify each stored row — current (skip),
// subtree-repairable, seedable (copy), or needing a full fill — and fan the
// fills and repairs across the worker pool in parallel mode. With subtree
// repair disabled the index is never maintained and classification falls
// back to the per-row journal-replay check. No-op when the plane is disabled
// or the batch has no plane-aware oracle.
func (r *BatchRunner) stagePlane(ls *graph.LengthStore, n int) {
	r.planeLive = false
	if r.plane == nil {
		return
	}
	if ls != r.lastStore {
		// A different ledger: every persistent row's epoch (and every cached
		// tree derived from its rows) is meaningless.
		r.plane.Reset()
		for i := range r.cache {
			r.cache[i] = treeCacheEntry{}
		}
		r.lastStore = ls
		r.walkedTo = ls.Epoch()
	}
	r.plane.BeginBatch()
	cur := ls.Epoch()
	r.curEpoch = cur
	r.minLen = ls.MinLengthLB()
	if r.subtree && r.walkedTo < cur {
		// The per-batch journal walk: fan each touch in (walkedTo, cur]
		// through the index to the rows whose stored trees use the edge —
		// O(touched x affected rows) for the whole batch, replacing the old
		// per-referenced-row journal replay. Rows filled this batch clear
		// their dirt after the fill, so accumulated dirt always describes
		// history since the row's last content write.
		if !ls.ForEachTouched(r.walkedTo, func(e graph.EdgeID) bool {
			r.plane.MarkTouched(e)
			return false
		}) {
			// The journal window no longer covers the walk position (a fault
			// burst, or rounds without a staged batch): per-row dirt is
			// unknowable, so latch every row onto the conservative target-
			// walk path until its next content write.
			r.plane.loseAllDirty()
		}
		r.walkedTo = cur
	}
	requests := 0
	r.staged = r.staged[:0]
	for pos := 0; pos < n; pos++ {
		i := pos
		if r.ids != nil {
			i = r.ids[pos]
		}
		po, ok := r.oracles[i].(PlaneOracle)
		if !ok {
			continue
		}
		srcs := po.PlaneSources()
		requests += len(srcs)
		for _, s := range srcs {
			if row, first := r.plane.Reference(s); first {
				r.staged = append(r.staged, int32(row))
			}
		}
	}
	if len(r.staged) == 0 {
		return
	}
	r.planeLive = true
	r.metrics.PlaneRounds++
	r.metrics.PlaneRequests += requests

	// Classify: current (skip), subtree-repairable, seedable (copy), or fill.
	r.toFill = r.toFill[:0]
	r.toRepair = r.toRepair[:0]
	r.repairRoots = r.repairRoots[:0]
	for _, row32 := range r.staged {
		row := int(row32)
		fill := r.plane.FillEpoch(row)
		if fill < 0 {
			// New this batch. A seed row is the epoch-0 content; it is
			// current iff nothing has shrunk and nothing in its tree grew
			// since epoch 0 — which the pre-index check verifies after the
			// copy (fill==0 vs cur). The index never saw the copied tree, so
			// its dirt state says nothing about it: a row accepted via the
			// target walk is only serviceable, hence exact stays false and
			// subtree repair waits for the row's first real fill.
			if r.seed != nil && r.plane.CopyRow(row, r.seed, r.plane.Source(row)) {
				r.plane.SetFillEpoch(row, 0)
				if cur == 0 || (r.repair && r.rowCurrent(ls, row)) {
					r.plane.SetFillEpoch(row, cur)
					r.plane.SetDijkstraEpoch(row, cur)
					r.plane.setExact(row, cur == 0)
					r.plane.clearDirty(row)
					r.plane.indexRow(row)
					r.metrics.PlaneSeeded++
					continue
				}
				// Seed content is stale under these lengths: recompute.
				r.plane.SetFillEpoch(row, -1)
			}
			r.toFill = append(r.toFill, int32(row))
			continue
		}
		if !r.repair {
			r.toFill = append(r.toFill, int32(row))
			continue
		}
		if fill == cur {
			r.plane.Validate(row)
			r.metrics.PlaneSkipped++
			continue
		}
		if !r.subtree {
			// No index maintained: classify with the pre-index per-row check
			// (journal replay against the whole stored tree, else the exact
			// target-path walk). Skip/refill decisions may differ from the
			// indexed path's, but both only skip provably current content, so
			// outputs are bitwise identical either way.
			if r.rowCurrent(ls, row) {
				r.plane.SetFillEpoch(row, cur)
				r.plane.Validate(row)
				r.metrics.PlaneSkipped++
				continue
			}
			r.metrics.PlaneRepaired++
			r.toFill = append(r.toFill, int32(row))
			continue
		}
		if !ls.MonotoneSince(fill) {
			// Some length shrank since this row was filled (an underlay
			// recovery or downward drift mirrored into the ledger): a shrunk
			// edge outside the stored tree can re-route shortest paths, so no
			// touched-edge argument applies — degrade deterministically to a
			// full refill.
			r.metrics.PlaneNonMonotone++
			r.metrics.PlaneRepaired++
			r.toFill = append(r.toFill, int32(row))
			continue
		}
		if !r.plane.dirtyNew(row) {
			// No touched edge has entered the row's stored tree since its
			// last validation (the index walk would have recorded it), so the
			// whole stored row — or, for a row demoted to serviceable, its
			// read-visible paths — is bitwise what a recompute would produce.
			// Epoch advance composes exactly as the old per-row journal
			// check: (fill,prev] accounted + (prev,cur] clean.
			r.plane.SetFillEpoch(row, cur)
			r.plane.Validate(row)
			r.metrics.PlaneSkipped++
			continue
		}
		if r.rowServiceable(ls, row) {
			// Touched tree edges, but none on a stored read path: the row
			// stays serviceable (unread parts may now be stale, so it is no
			// longer exact). The walk just verified every read path clean up
			// to cur, and read paths are a subset of the stored tree the
			// index watches, so the accounted dirt can be dropped outright:
			// the row skips in O(1) until MarkTouched records a new touch
			// inside its stored tree. The walk-skip stays ahead of subtree
			// repair on purpose — it leaves the row's Dijkstra epoch (and
			// with it the tree cache) untouched, where a repair would force
			// downstream tree reassembly for rows whose reads never change.
			r.plane.SetFillEpoch(row, cur)
			r.plane.Validate(row)
			r.plane.setExact(row, false)
			r.plane.clearDirty(row)
			r.metrics.PlaneSkipped++
			continue
		}
		if r.subtree && r.plane.rowExact(row) && !r.plane.dirtyLost[row] && ls.AllPositive() &&
			scaleSafe(ls.MinLengthLB(), r.plane.maxDist[row]) {
			// A read path is dirty, so the row must be recomputed — exactly
			// where the old classification hit its repair floor with a full
			// refill. The bit-identity certificate holds (monotone window
			// checked above, exact content, complete dirty-root set, strictly
			// positive lengths, and lengths large enough relative to the
			// row's distances that every relaxation strictly grows its float
			// key — without that an underflowing length behaves like a
			// zero-length edge and ties can flip): resume Dijkstra over just
			// the dirty subtrees. Epochs advance now so decideTreeCache sees
			// the recompute; the repair itself runs with the fills.
			r.toRepair = append(r.toRepair, int32(row))
			r.repairRoots = append(r.repairRoots, r.plane.dirtyRoots[row])
			r.plane.SetFillEpoch(row, cur)
			r.plane.SetDijkstraEpoch(row, cur)
			continue
		}
		r.metrics.PlaneRepaired++
		r.toFill = append(r.toFill, int32(row))
	}
	nf, nr := len(r.toFill), len(r.toRepair)
	r.metrics.PlaneSources += nf + nr
	for _, row := range r.toFill {
		r.plane.SetFillEpoch(int(row), cur)
		r.plane.SetDijkstraEpoch(int(row), cur)
	}
	r.decideTreeCache(n)
	if nf+nr == 0 {
		return
	}
	for len(r.repairOut) < nr {
		r.repairOut = append(r.repairOut, nil)
		r.repairOK = append(r.repairOK, false)
	}
	if r.workers == 1 || nf+nr == 1 {
		if r.seq == nil {
			r.seq = NewScratch(r.g)
		}
		sp := r.seq.dijkstra()
		for _, row := range r.toFill {
			r.plane.FillRow(int(row), r.d, sp)
		}
		for k, row := range r.toRepair {
			r.repairOut[k], r.repairOK[k] = r.plane.RepairRow(
				int(row), r.d, sp, r.minLen, r.repairRoots[k], r.repairOut[k][:0])
		}
	} else {
		r.filling = true
		r.wg.Add(nf + nr)
		for pos := 0; pos < nf+nr; pos++ {
			r.jobs <- pos
		}
		r.wg.Wait()
		r.filling = false
	}
	// Post-barrier bookkeeping, single-writer again: fold repair outcomes
	// into the metrics, register the rewritten parent edges in the index, and
	// reset consumed dirt (every row below just became exact content).
	for _, row := range r.toFill {
		r.plane.clearDirty(int(row))
		r.plane.setExact(int(row), true)
		r.plane.indexRow(int(row))
	}
	for k, row32 := range r.toRepair {
		row := int(row32)
		if r.repairOK[k] {
			r.metrics.PlaneSubtreeRepaired++
			r.metrics.PlaneSubtreeNodes += len(r.repairOut[k])
			r.plane.indexNodes(row, r.repairOut[k])
		} else {
			// The subtree path bailed (oversized S or a defensive invariant
			// miss) and RepairRow ran the fallback refill.
			r.metrics.PlaneRepaired++
			r.plane.indexRow(row)
		}
		r.plane.clearDirty(row)
		r.plane.setExact(row, true)
	}
}

// decideTreeCache precomputes, per batch slot, whether the oracle's cached
// tree is still bitwise exact: every member row's last actual Dijkstra must
// predate (or coincide with) the epoch the tree was assembled at. Runs
// sequentially before the eval fan-out so the metrics stay single-writer and
// the workers only read the decisions.
func (r *BatchRunner) decideTreeCache(n int) {
	if r.cache == nil {
		return
	}
	for pos := 0; pos < n; pos++ {
		r.useCache[pos] = false
		i := pos
		if r.ids != nil {
			i = r.ids[pos]
		}
		po, ok := r.oracles[i].(PlaneOracle)
		if !ok {
			continue
		}
		ce := r.cache[i]
		if ce.tree == nil {
			continue
		}
		current := true
		for _, s := range po.PlaneSources() {
			row := r.plane.Row(s)
			if row < 0 || r.plane.DijkstraEpoch(row) > ce.epoch {
				current = false
				break
			}
		}
		if current {
			r.useCache[pos] = true
			r.metrics.PlaneTreeHits++
		}
	}
}

// MinTrees evaluates the oracles named by ids (nil = all oracles) under ls's
// current lengths and returns one result per id, in id-list order, with Len
// left zero. ls must not be mutated until MinTrees returns. The returned
// slice is reused by the next call — consume it first. Trees in the results
// do not alias runner state and stay valid indefinitely.
func (r *BatchRunner) MinTrees(ls *graph.LengthStore, ids []int) []BatchResult {
	return r.run(ls, ids, false)
}

// MinTreesLen is MinTrees with each result's Len filled with the tree's raw
// length under the snapshot (computed on the workers, so the extra pass
// parallelizes).
func (r *BatchRunner) MinTreesLen(ls *graph.LengthStore, ids []int) []BatchResult {
	return r.run(ls, ids, true)
}

func (r *BatchRunner) run(ls *graph.LengthStore, ids []int, wantLen bool) []BatchResult {
	n := len(r.oracles)
	if ids != nil {
		n = len(ids)
	}
	r.d, r.ids, r.wantLen = ls.Values(), ids, wantLen
	r.stagePlane(ls, n)
	if r.workers == 1 || n == 1 {
		// Single slot or single worker: evaluate inline. The parallel
		// variant's scratch lives in its workers, so the inline path keeps
		// its own; results are identical (Scratch state never leaks into
		// outputs).
		if r.seq == nil {
			r.seq = NewScratch(r.g)
		}
		for pos := 0; pos < n; pos++ {
			r.eval(pos, r.seq)
		}
		return r.out[:n]
	}
	r.wg.Add(n)
	for pos := 0; pos < n; pos++ {
		r.jobs <- pos
	}
	r.wg.Wait()
	return r.out[:n]
}

// Close releases the worker pool. The runner must not be used afterwards;
// Close is idempotent.
func (r *BatchRunner) Close() {
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
}
