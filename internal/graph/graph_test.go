package graph

import (
	"testing"
	"testing/quick"

	"overcast/internal/rng"
)

func mustBuild(t *testing.T, n int, edges [][3]float64) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return b.Build()
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		u, v int
		c    float64
		name string
	}{
		{0, 0, 1, "self loop"},
		{0, 3, 1, "out of range"},
		{-1, 1, 1, "negative node"},
		{0, 1, 0, "zero capacity"},
		{0, 1, -2, "negative capacity"},
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.c); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := b.AddEdge(0, 1, 5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0, 5); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestBuilderNegativeNodeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestEdgeIDsDeterministicAcrossInsertionOrder(t *testing.T) {
	b1 := NewBuilder(4)
	b2 := NewBuilder(4)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	for _, e := range edges {
		if err := b1.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := len(edges) - 1; i >= 0; i-- {
		if err := b2.AddEdge(edges[i][1], edges[i][0], 1); err != nil {
			t.Fatal(err)
		}
	}
	g1, g2 := b1.Build(), b2.Build()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, g1.Edges[i], g2.Edges[i])
		}
	}
}

func TestAdjacencyAndDegrees(t *testing.T) {
	g := mustBuild(t, 4, [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 4}, {1, 3, 5}})
	wantDeg := []int{2, 3, 2, 3}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("degree(%d) = %d, want %d", v, got, want)
		}
	}
	for v := 0; v < 4; v++ {
		for _, id := range g.Adj(v) {
			e := g.Edges[id]
			if e.U != v && e.V != v {
				t.Errorf("edge %v in adj(%d)", e, v)
			}
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	g := mustBuild(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 2}})
	if id, ok := g.EdgeBetween(2, 1); !ok || g.Edges[id].Capacity != 2 {
		t.Fatalf("EdgeBetween(2,1) = %d,%v", id, ok)
	}
	if _, ok := g.EdgeBetween(0, 2); ok {
		t.Fatal("EdgeBetween found non-existent edge")
	}
}

func TestEdgeOtherPanicsOnNonEndpoint(t *testing.T) {
	e := Edge{U: 1, V: 2, Capacity: 1}
	if e.Other(1) != 2 || e.Other(2) != 1 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other(3) did not panic")
		}
	}()
	e.Other(3)
}

func TestCapacityAggregates(t *testing.T) {
	g := mustBuild(t, 3, [][3]float64{{0, 1, 4}, {1, 2, 2.5}})
	if got := g.MinCapacity(); got != 2.5 {
		t.Errorf("MinCapacity = %v", got)
	}
	if got := g.TotalCapacity(); got != 6.5 {
		t.Errorf("TotalCapacity = %v", got)
	}
	empty := NewBuilder(2).Build()
	if empty.MinCapacity() != 0 {
		t.Error("empty MinCapacity should be 0")
	}
}

func TestConnected(t *testing.T) {
	if !NewBuilder(0).Build().Connected() {
		t.Error("empty graph should be connected")
	}
	if !NewBuilder(1).Build().Connected() {
		t.Error("single node should be connected")
	}
	g := mustBuild(t, 4, [][3]float64{{0, 1, 1}, {2, 3, 1}})
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g2 := mustBuild(t, 4, [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}})
	if !g2.Connected() {
		t.Error("path graph reported disconnected")
	}
}

func TestLengths(t *testing.T) {
	g := mustBuild(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	l := NewLengths(g, 0.5)
	if got := l.PathLength([]EdgeID{0, 1}); got != 1.0 {
		t.Errorf("PathLength = %v", got)
	}
	c := l.Clone()
	c[0] = 99
	if l[0] == 99 {
		t.Error("Clone aliases original")
	}
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("initial count %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) {
		t.Fatal("fresh unions returned false")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeated union returned true")
	}
	if uf.Count() != 3 {
		t.Fatalf("count after two unions = %d", uf.Count())
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	uf.Union(1, 3)
	if !uf.Connected(0, 2) {
		t.Fatal("transitive connectivity wrong")
	}
	uf.Reset()
	if uf.Count() != 5 || uf.Connected(0, 1) {
		t.Fatal("Reset did not restore singletons")
	}
}

func TestUnionFindAgainstNaive(t *testing.T) {
	// Property test: UnionFind matches a naive label-propagation model
	// under random union sequences.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 30
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		for step := 0; step < 60; step++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			uf.Union(a, b)
			la, lb := labels[a], labels[b]
			if la != lb {
				for i := range labels {
					if labels[i] == lb {
						labels[i] = la
					}
				}
			}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if uf.Connected(i, j) != (labels[i] == labels[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapOrdering(t *testing.T) {
	h := NewIndexedHeap(10)
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 0, 4, 6}
	for i, k := range keys {
		h.Push(i, k)
	}
	prev := -1.0
	for h.Len() > 0 {
		_, k := h.Pop()
		if k < prev {
			t.Fatalf("heap popped out of order: %v after %v", k, prev)
		}
		prev = k
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := NewIndexedHeap(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if item, k := h.Pop(); item != 2 || k != 5 {
		t.Fatalf("Pop after DecreaseKey = (%d,%v)", item, k)
	}
	if changed := h.PushOrDecrease(1, 25); changed {
		t.Fatal("PushOrDecrease with larger key reported change")
	}
	if changed := h.PushOrDecrease(1, 7); !changed {
		t.Fatal("PushOrDecrease with smaller key reported no change")
	}
	if item, _ := h.Pop(); item != 1 {
		t.Fatalf("expected item 1, got %d", item)
	}
}

func TestIndexedHeapDeterministicTieBreak(t *testing.T) {
	h := NewIndexedHeap(5)
	for i := 4; i >= 0; i-- {
		h.Push(i, 1.0)
	}
	for want := 0; want < 5; want++ {
		if item, _ := h.Pop(); item != want {
			t.Fatalf("tie-break popped %d, want %d", item, want)
		}
	}
}

func TestIndexedHeapPanics(t *testing.T) {
	h := NewIndexedHeap(2)
	h.Push(0, 1)
	func() {
		defer func() { _ = recover() }()
		h.Push(0, 2)
		t.Error("double Push did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		h.DecreaseKey(1, 0)
		t.Error("DecreaseKey on absent item did not panic")
	}()
	func() {
		defer func() { _ = recover() }()
		h.DecreaseKey(0, 100)
		t.Error("DecreaseKey with larger key did not panic")
	}()
	h.Pop()
	func() {
		defer func() { _ = recover() }()
		h.Pop()
		t.Error("Pop on empty heap did not panic")
	}()
}

func TestIndexedHeapReset(t *testing.T) {
	h := NewIndexedHeap(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("Reset did not clear heap")
	}
	h.Push(0, 3) // must not panic after reset
}

func TestIndexedHeapRandomAgainstSort(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 50
		h := NewIndexedHeap(n)
		want := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			k := r.Float64()
			h.Push(i, k)
			want = append(want, k)
		}
		// Randomly decrease some keys.
		for j := 0; j < 20; j++ {
			i := r.Intn(n)
			if h.Contains(i) {
				nk := h.Key(i) * r.Float64()
				h.DecreaseKey(i, nk)
				want[i] = nk
			}
		}
		prev := -1.0
		popped := 0
		for h.Len() > 0 {
			_, k := h.Pop()
			if k < prev {
				return false
			}
			prev = k
			popped++
		}
		return popped == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexedHeapPushPop(b *testing.B) {
	r := rng.New(1)
	const n = 1024
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewIndexedHeap(n)
		for j := 0; j < n; j++ {
			h.Push(j, keys[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}

func BenchmarkUnionFind(b *testing.B) {
	r := rng.New(1)
	const n = 4096
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(n), r.Intn(n)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uf := NewUnionFind(n)
		for _, p := range pairs {
			if p[0] != p[1] {
				uf.Union(p[0], p[1])
			}
		}
	}
}
