// Daemon: run an overcastd admin server in-process and drive it through the
// wire protocol — join sessions, read a fair-allocation snapshot, inspect
// live counters, and drain gracefully. The same admin.Client calls work
// against a real `overcastd` process; only the server setup here would move
// to the daemon's command line (see README "Running overcastd").
//
// Run with: go run ./examples/daemon
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"overcast"
	"overcast/internal/admin"
)

func main() {
	// The daemon side: a root Allocator wrapped in an admin server on a
	// unix socket, with crash-recovery persistence to state.json.
	net, err := overcast.WaxmanNetwork(100, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer alloc.Close()

	dir, err := os.MkdirTemp("", "overcastd-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	socket := filepath.Join(dir, "admin.sock")
	srv, err := admin.NewServer(alloc, admin.Options{
		SocketPath: socket,
		StatePath:  filepath.Join(dir, "state.json"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.Restore(); err != nil { // no-op on the first start
		log.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	// The client side: everything below is what a real client does against
	// a running overcastd.
	c, err := admin.Dial(socket, 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	pong, err := c.Ping()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected: protocol v%d\n", pong.Protocol)

	// Join two sessions; the returned token names the session from now on
	// (stable across daemon restarts, unlike in-process handles).
	p1, err := c.Join([]int{3, 17, 29, 41, 53}, 100)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := c.Join([]int{5, 25, 55, 75, 95}, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted session %d (online rate %.1f) and session %d (online rate %.1f)\n",
		p1.Session, p1.Rate, p2.Session, p2.Rate)

	// A refreshing snapshot re-solves the ε-feasible max-min-fair
	// allocation incrementally; snap.Sessions lists it per token.
	snap, err := c.Snapshot(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair allocation at epoch %d: throughput %.1f, min rate %.2f\n",
		snap.Epoch, snap.Throughput, snap.MinRate)
	for _, sa := range snap.Sessions {
		fmt.Printf("  session %d: rate %.2f over %d trees\n", sa.Session, sa.Rate, len(sa.Trees))
	}

	// Cached reads serve the materialized allocation without blocking
	// behind mutations — the cheap polling path.
	if _, err := c.Snapshot(false); err != nil {
		log.Fatal(err)
	}

	if _, err := c.Leave(p1.Session); err != nil {
		log.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counters: %d active, %d joins, %d warm refreshes, plane dedup %.1fx\n",
		st.Active, st.Allocator.Joins, st.Allocator.WarmRefreshes, st.Allocator.Plane.Dedup())

	// Drain: the daemon persists a final state snapshot and Serve returns
	// nil. Restarting with the same StatePath would replay the surviving
	// session and serve the persisted allocation bit-identically.
	if _, err := c.Drain(); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon drained cleanly")
}
