package experiments

import (
	"fmt"
	"strings"

	"overcast/internal/stats"
)

// RenderFlowTable prints MaxFlow sweep rows in the paper's Table II/VII
// layout: one column per approximation ratio.
func RenderFlowTable(title string, rows []FlowRow) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	writeCells(&sb, "Approximation Ratio", rows, func(r FlowRow) string { return fmt.Sprintf("%.2f", r.Ratio) })
	if len(rows) > 0 {
		for i := range rows[0].SessionRates {
			i := i
			writeCells(&sb, fmt.Sprintf("Rate of Session %d", i+1), rows, func(r FlowRow) string {
				return fmt.Sprintf("%.2f", r.SessionRates[i])
			})
		}
	}
	writeCells(&sb, "Overall Throughput", rows, func(r FlowRow) string { return fmt.Sprintf("%.2f", r.Throughput) })
	if len(rows) > 0 {
		for i := range rows[0].TreeCounts {
			i := i
			writeCells(&sb, fmt.Sprintf("Trees in Session %d", i+1), rows, func(r FlowRow) string {
				return fmt.Sprintf("%d", r.TreeCounts[i])
			})
		}
	}
	writeCells(&sb, "Running Time (MST ops)", rows, func(r FlowRow) string { return fmt.Sprintf("%d", r.MSTOps) })
	return sb.String()
}

// RenderMCFTable prints MaxConcurrentFlow sweep rows in the paper's Table
// IV/VIII layout, with the two-part running time (main + beta prestep).
func RenderMCFTable(title string, rows []MCFRow) string {
	var sb strings.Builder
	flowRows := make([]FlowRow, len(rows))
	for i, r := range rows {
		flowRows[i] = r.FlowRow
	}
	sb.WriteString(RenderFlowTable(title, flowRows))
	writeCells(&sb, "  + Prestep (MST ops)", rows2flow(rows), func(r FlowRow) string { return fmt.Sprintf("%d", r.MSTOps) })
	writeCellsMCF(&sb, "Lambda (min rate/dem)", rows, func(r MCFRow) string { return fmt.Sprintf("%.4f", r.Lambda) })
	return sb.String()
}

// rows2flow projects the prestep op counts into FlowRows for rendering.
func rows2flow(rows []MCFRow) []FlowRow {
	out := make([]FlowRow, len(rows))
	for i, r := range rows {
		out[i] = FlowRow{Ratio: r.Ratio, MSTOps: r.PrestepOps}
	}
	return out
}

func writeCells(sb *strings.Builder, label string, rows []FlowRow, cell func(FlowRow) string) {
	fmt.Fprintf(sb, "%-26s", label)
	for _, r := range rows {
		fmt.Fprintf(sb, "%12s", cell(r))
	}
	sb.WriteByte('\n')
}

func writeCellsMCF(sb *strings.Builder, label string, rows []MCFRow, cell func(MCFRow) string) {
	fmt.Fprintf(sb, "%-26s", label)
	for _, r := range rows {
		fmt.Fprintf(sb, "%12s", cell(r))
	}
	sb.WriteByte('\n')
}

// RenderTreeLimit prints the Fig. 5/6 sweeps as aligned tables.
func RenderTreeLimit(res *TreeLimitResult) string {
	var sb strings.Builder
	sb.WriteString("Fig 5a/6: random algorithm\n")
	fmt.Fprintf(&sb, "%-10s%14s%14s%14s%12s%12s\n", "maxTrees", "throughput", "rate(s1)", "rate(s2)", "trees(s1)", "trees(s2)")
	for j, n := range res.MaxTrees {
		pt := res.Random[j]
		fmt.Fprintf(&sb, "%-10d%14.2f%14.2f%14.2f%12.2f%12.2f\n",
			n, pt.Throughput, at(pt.SessionRates, 0), at(pt.SessionRates, 1), at(pt.TreesUsed, 0), at(pt.TreesUsed, 1))
	}
	for mu, pts := range res.Online {
		fmt.Fprintf(&sb, "Fig 5/6: online algorithm (mu=%.0f)\n", mu)
		fmt.Fprintf(&sb, "%-10s%14s%14s%14s%12s%12s\n", "maxTrees", "throughput", "rate(s1)", "rate(s2)", "trees(s1)", "trees(s2)")
		for j, n := range res.MaxTrees {
			pt := pts[j]
			fmt.Fprintf(&sb, "%-10d%14.2f%14.2f%14.2f%12.2f%12.2f\n",
				n, pt.Throughput, at(pt.SessionRates, 0), at(pt.SessionRates, 1), at(pt.TreesUsed, 0), at(pt.TreesUsed, 1))
		}
	}
	return sb.String()
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

// RenderCDFFamily prints a labeled family of distribution curves.
func RenderCDFFamily(title string, labels []string, curves [][]stats.Point, maxPts int) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	for i, c := range curves {
		label := fmt.Sprintf("series %d", i)
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&sb, "-- %s\n", label)
		sb.WriteString(stats.RenderCurve(c, maxPts))
	}
	return sb.String()
}
