package core

import (
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/shard"
)

// MaxConcurrentFlowOptions configures the Table III FPTAS.
type MaxConcurrentFlowOptions struct {
	// Epsilon is the error parameter; the returned concurrent ratio is
	// within (1-eps)^3 of the M2 optimum (the paper reports 1-3eps). Must
	// be in (0, 0.5].
	Epsilon float64
	// Parallel fans oracle computations across CPUs where possible: the
	// beta prestep batches its independent per-session maximum flows and
	// the phase loop fans each round of pending-session oracle calls out to
	// a persistent worker pool.
	Parallel bool
	// Workers sets the oracle worker-pool size explicitly: 0 defers to
	// Parallel (GOMAXPROCS when set, 1 otherwise); any positive value is
	// used as given, so Workers=1 forces the sequential path. Outputs are
	// bit-identical for every worker count.
	Workers int
	// DisablePlane turns off the solve-scoped shared SSSP plane in every
	// batched oracle round (phase loop, beta prestep, surplus pass); see
	// MaxFlowOptions.DisablePlane. Outputs are bit-identical either way.
	DisablePlane bool
	// DisableRepair turns off cross-round dirty-source repair on every
	// plane this solve creates (phase loop, beta prestep subsolves, surplus
	// pass) and the beta prestep's cross-subproblem seed plane; see
	// MaxFlowOptions.DisableRepair. Outputs are bit-identical either way.
	DisableRepair bool
	// DisableSubtreeRepair turns off the planes' incremental subtree repair
	// everywhere this solve evaluates oracles (phase loop, beta prestep
	// subsolves, surplus pass); see MaxFlowOptions.DisableSubtreeRepair.
	// Outputs are bit-identical either way.
	DisableSubtreeRepair bool
	// Shards splits the phase loop's oracle rounds (and the surplus pass's)
	// across per-AS shard goroutines behind an explicit price-message
	// boundary; see MaxFlowOptions.Shards. 0 = unsharded; outputs are
	// bit-identical for every shard count. The beta prestep stays unsharded
	// (its subproblems are single-session).
	Shards int
	// ShardLabels optionally assigns every node a partition label; see
	// MaxFlowOptions.ShardLabels.
	ShardLabels []int
	// SurplusPass, when set, routes additional MaxFlow-style traffic on the
	// residual capacities after the fair share is secured. The paper's
	// Table IV rates exceed lambda·dem(i) for the larger session, which is
	// exactly the behaviour of such a pass: max-min fairness first, then
	// capacity back-filling ("further lowering the rate of session 1 does
	// not help increasing the rate of session 2").
	SurplusPass bool
	// SurplusEpsilon is the epsilon for the surplus pass (default: Epsilon).
	SurplusEpsilon float64
	// MaxPhases overrides the phase safety bound (0 = automatic).
	MaxPhases int

	// capture, when non-nil, receives the solve's internal state at the
	// moment the phase loop stops (before the feasibility rescale): the live
	// length ledger, the epoch-0 base lengths, the pre-scale per-session
	// flows, the per-session multiplicative bump attribution, the final
	// scaled demands, the dual objective D, and the phase count. It is the
	// seed a Warm allocator resumes from; package-internal because the
	// captured ledger aliases live solver state. Incompatible with
	// SurplusPass (the surplus flows have no bump attribution).
	capture *warmCapture
}

// warmBump is one multiplicative length update a session applied during the
// phase loop, recorded so a warm allocator can roll it back exactly on Leave.
type warmBump struct {
	edge   graph.EdgeID
	factor float64
}

// warmCapture receives a MaxConcurrentFlow run's internal state; see
// MaxConcurrentFlowOptions.capture.
type warmCapture struct {
	ledger *graph.LengthStore
	base   graph.Lengths // epoch-0 lengths delta/c_e
	raw    [][]TreeFlow  // pre-scale flows (Tree pointers shared with the Solution)
	bumps  [][]warmBump  // per session, in application order
	dem    []float64     // final scaled per-phase demands
	bigD   float64       // dual objective at stop
	phases int
}

// MCFRatioToEpsilon converts a target approximation ratio (e.g. 0.95) to the
// MaxConcurrentFlow epsilon with ratio = (1-eps)^3.
func MCFRatioToEpsilon(ratio float64) float64 {
	return 1 - math.Cbrt(ratio)
}

// MCFResult carries the MaxConcurrentFlow solution plus its diagnostics.
type MCFResult struct {
	*Solution
	// Lambda is min_i rate_i/dem(i) of the (pre-surplus) fair solution.
	Lambda float64
	// PrestepMSTOps counts the spanning-tree operations spent computing the
	// per-session maximum flows beta_i used for demand scaling — the second
	// running-time component reported in Table IV.
	PrestepMSTOps int
	// PrestepPlane aggregates the beta prestep's plane counters — the
	// cross-subproblem seed fills (PlaneRounds/Sources/Requests of the seed
	// planes), each subproblem's seed copies (PlaneSeeded) and cross-round
	// repair skips (PlaneSkipped/PlaneRepaired) — kept apart from
	// Solution.Plane: a prestep subproblem has one session, whose
	// *within-batch* dedup is exactly 1.0, so folding these in would dilute
	// the phase loop's cross-session dedup ratio.
	PrestepPlane overlay.Metrics
	// Betas are the single-session maximum flow values.
	Betas []float64
	// Shards carries the phase loop's price-exchange and reduce counters
	// when the solve ran sharded (Shards zero-valued otherwise). The surplus
	// pass's own sharded MaxFlow is not folded in (its Solution surface has
	// no shard stats), and the prestep never shards.
	Shards shard.Stats
}

// MaxConcurrentFlow runs the Table III FPTAS: phase-structured routing of
// each session's demand along successive minimum overlay spanning trees,
// with multiplicative length updates, demand pre-scaling via single-session
// maximum flows, and demand doubling when the optimum is still large
// (Sec. III-C). The returned solution is exactly feasible.
//
// Each phase is processed in rounds: every session with remaining (scaled)
// demand has its oracle evaluated against the round's length snapshot — the
// calls are independent given the lengths, so they fan out across the worker
// pool — and the resulting trees are applied in ascending session order,
// each routing up to its bottleneck capacity before the lengths move on.
// The reduction order is canonical, so outputs are a bit-identical function
// of the problem and epsilon for every worker count.
//
// A tree applied later in a round was minimum under the round snapshot, not
// necessarily under the lengths at its routing instant (earlier sessions in
// the round may have inflated shared edges by up to 1+eps each). Table III
// proper re-queries the oracle per routing step; the round-snapshot variant
// trades that per-step minimality for batchability, and its solutions
// therefore differ from the strictly sequential loop's for the same seed.
// The (1-3eps) bound is pinned empirically against the exact LP in
// TestMCFMatchesExactM2SmallInstances rather than inherited verbatim from
// the paper's analysis.
func MaxConcurrentFlow(p *Problem, opts MaxConcurrentFlowOptions) (*MCFResult, error) {
	eps := opts.Epsilon
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("core: MaxConcurrentFlow epsilon %v outside (0, 0.5]", eps)
	}
	if opts.capture != nil && opts.SurplusPass {
		return nil, fmt.Errorf("core: MaxConcurrentFlow capture is incompatible with the surplus pass")
	}
	k := p.K()
	workers := resolveWorkers(opts.Parallel, opts.Workers)

	// Pre-step: beta_i = single-session maximum flow, for demand scaling.
	// See prestep.go for the batched formulation (cross-subproblem seed
	// plane + per-subproblem persistent planes).
	betas, prestepOps, prestepPlane, err := prestepBetas(p, eps, workers, opts)
	if err != nil {
		return nil, err
	}
	// zeta = min_i beta_i/dem(i) upper-bounds lambda*; scaling demands by
	// zeta/k puts the scaled optimum in [1, k].
	zeta := math.Inf(1)
	for i, s := range p.Sessions {
		if v := betas[i] / s.Demand; v < zeta {
			zeta = v
		}
	}
	dem := make([]float64, k)
	for i, s := range p.Sessions {
		dem[i] = s.Demand * zeta / float64(k)
	}

	m := float64(p.G.NumEdges())
	// delta = (m/(1-eps))^(-1/eps), floored against float64 underflow at
	// extreme accuracy targets (see deltaFloor).
	delta := math.Pow(m/(1-eps), -1/eps)
	if delta < deltaFloor {
		delta = deltaFloor
	}
	vals := graph.NewLengths(p.G, 0)
	bigD := 0.0 // D = sum_e c_e d_e, the dual objective / stop criterion
	for e := range vals {
		vals[e] = delta / p.G.Edges[e].Capacity
		bigD += delta
	}
	// The ledger wraps the initial assignment as its epoch-0 contents, so
	// every phase-loop inflation below is journaled as a monotone growth and
	// the plane's cross-round repair can skip untouched sources.
	if opts.capture != nil {
		opts.capture.base = append(graph.Lengths(nil), vals...)
		opts.capture.bumps = make([][]warmBump, k)
	}
	d := graph.NewLengthStoreFrom(vals)

	acc := newFlowAccumulator(p)
	// Phase budget per doubling round (Lemma 6): t <= 1 + lambda·log_{1+eps}(1/delta)
	// with log_{1+eps}(1/delta) = (1/eps)·log_{1+eps}(m/(1-eps)); the
	// algorithm must stop within T = 2·log_{1+eps}(1/delta) phases while
	// lambda_scaled <= 2 (allowing slack for the approximate betas).
	budget := int(2.5*math.Log(m/(1-eps))/math.Log(1+eps)/eps) + 2
	maxPhases := opts.MaxPhases
	if maxPhases == 0 {
		// At most ~log2(k)+1 doubling rounds of `budget` phases each.
		maxPhases = budget * (bits(k) + 2)
	}

	// The phase loop fans each round of pending-session oracle calls out to
	// the persistent worker pool (per-worker scratch); the pool outlives all
	// phases, so goroutines and buffers are built exactly once per solve.
	runner := newOracleRunner(p.G, p.Oracles, overlay.BatchOptions{
		Workers:              workers,
		SharedPlane:          !opts.DisablePlane,
		DisableRepair:        opts.DisableRepair,
		DisableSubtreeRepair: opts.DisableSubtreeRepair,
	}, opts.Shards, opts.ShardLabels)
	defer runner.Close()
	rem := make([]float64, k)
	pending := make([]int, 0, k)
	phases := 0
	sinceDoubling := 0
	doublings := 0
	for bigD < 1 {
		if phases >= maxPhases {
			return nil, fmt.Errorf("core: MaxConcurrentFlow exceeded %d phases", maxPhases)
		}
		if sinceDoubling >= budget {
			// lambda_scaled > 2: double demands to halve it (Sec. III-C).
			for i := range dem {
				dem[i] *= 2
			}
			doublings++
			sinceDoubling = 0
			if doublings > bits(k)+8 {
				return nil, fmt.Errorf("core: demand doubling diverged after %d rounds", doublings)
			}
		}
		// One phase: route every session's scaled demand. Each round batches
		// the pending sessions' min-tree computations against the current
		// lengths, then applies them in ascending session order; a session
		// whose tree bottleneck is below its remaining demand stays pending
		// and gets a fresh tree (under the moved lengths) next round. Almost
		// always the bottleneck exceeds the scaled demand and a phase is a
		// single round.
		pending = pending[:0]
		for i := 0; i < k; i++ {
			rem[i] = dem[i]
			pending = append(pending, i)
		}
		for len(pending) > 0 && bigD < 1 {
			results := runner.MinTrees(d, pending)
			acc.sol.MSTOps += len(pending)
			// next reuses pending's backing array: position pos is read
			// before any write can reach index pos (one append per
			// processed position), so the in-place filter is safe.
			next := pending[:0]
			for pos := 0; pos < len(pending) && bigD < 1; pos++ {
				i := pending[pos]
				if results[pos].Err != nil {
					return nil, fmt.Errorf("core: MCF oracle %d: %w", i, results[pos].Err)
				}
				t := results[pos].Tree
				c := rem[i]
				for _, use := range t.Use() {
					if v := p.G.Edges[use.Edge].Capacity / float64(use.Count); v < c {
						c = v
					}
				}
				acc.add(i, t, c)
				rem[i] -= c
				for _, use := range t.Use() {
					ce := p.G.Edges[use.Edge].Capacity
					grow := 1 + eps*float64(use.Count)*c/ce
					bigD += ce * d.At(use.Edge) * (grow - 1)
					d.Bump(use.Edge, grow)
					if opts.capture != nil {
						opts.capture.bumps[i] = append(opts.capture.bumps[i], warmBump{edge: use.Edge, factor: grow})
					}
				}
				if rem[i] > 1e-15 {
					next = append(next, i)
				}
			}
			pending = next
		}
		phases++
		sinceDoubling++
	}

	sol := acc.sol
	sol.Phases = phases
	// Phase-loop counters only: the beta prestep's single-session planes
	// dedup exactly 1.0 by construction (members within a session are
	// distinct), so merging them here would drag the reported dedup factor
	// toward 1 and hide the cross-session sharing the metric exists to
	// surface. They are reported separately on MCFResult.PrestepPlane.
	sol.Plane = runner.Metrics()
	if c := opts.capture; c != nil {
		// Pre-scale flows: the warm allocator accumulates further raw flow at
		// this level and rescales to exact feasibility itself on Snapshot.
		c.raw = make([][]TreeFlow, k)
		for i, fs := range sol.Flows {
			c.raw[i] = append([]TreeFlow(nil), fs...)
		}
		c.ledger, c.dem, c.bigD, c.phases = d, dem, bigD, phases
	}
	// Exact feasibility scaling, uniform across sessions (preserves the
	// fairness ratios); upper-bounded by the Lemma 4 factor
	// log_{1+eps}(1/delta).
	if cong := sol.MaxCongestion(); cong > 0 {
		sol.Scale(1 / cong)
	}
	res := &MCFResult{Solution: sol, PrestepMSTOps: prestepOps, PrestepPlane: prestepPlane, Betas: betas}
	if g, ok := runner.(*shard.Group); ok {
		res.Shards = g.Stats()
	}
	res.Lambda = sol.ConcurrentRatio()

	if opts.SurplusPass {
		seps := opts.SurplusEpsilon
		if seps == 0 {
			seps = eps
		}
		if err := addSurplus(p, sol, seps, opts); err != nil {
			return nil, err
		}
		sol.ScaleToFeasible()
	}
	return res, nil
}

// addSurplus runs a MaxFlow pass on the residual capacities left by sol and
// merges the extra flow into sol. Edge identities are preserved because the
// residual graph has the same (sorted) edge set.
func addSurplus(p *Problem, sol *Solution, eps float64, opts MaxConcurrentFlowOptions) error {
	load := sol.LinkFlows()
	b := graph.NewBuilder(p.G.NumNodes())
	const floorCap = 1e-9 // builder requires positive capacities
	for e, edge := range p.G.Edges {
		residual := edge.Capacity - load[e]
		if residual < floorCap {
			residual = floorCap
		}
		if err := b.AddEdge(edge.U, edge.V, residual); err != nil {
			return fmt.Errorf("core: surplus residual graph: %w", err)
		}
	}
	rg := b.Build()
	rp, err := NewProblemWeighted(rg, p.Sessions, p.Mode, p.RouteWeights)
	if err != nil {
		return fmt.Errorf("core: surplus problem: %w", err)
	}
	extra, err := MaxFlow(rp, MaxFlowOptions{
		Epsilon: eps, Parallel: opts.Parallel, Workers: opts.Workers,
		DisablePlane: opts.DisablePlane, DisableRepair: opts.DisableRepair,
		DisableSubtreeRepair: opts.DisableSubtreeRepair,
		Shards:               opts.Shards, ShardLabels: opts.ShardLabels,
	})
	if err != nil {
		return fmt.Errorf("core: surplus pass: %w", err)
	}
	sol.MSTOps += extra.MSTOps
	sol.Plane.Merge(extra.Plane)
	// Trees from the residual problem reference identical edge ids; merge.
	acc := &flowAccumulator{sol: sol, index: make([]map[uint64]int, len(sol.Flows))}
	for i := range acc.index {
		acc.index[i] = make(map[uint64]int, len(sol.Flows[i]))
		for pos, tf := range sol.Flows[i] {
			acc.index[i][tf.Tree.KeyHash()] = pos
		}
	}
	for i, flows := range extra.Flows {
		for _, tf := range flows {
			if tf.Rate > 0 {
				acc.add(i, tf.Tree, tf.Rate)
			}
		}
	}
	return nil
}

func bits(k int) int {
	b := 0
	for v := k; v > 0; v >>= 1 {
		b++
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
