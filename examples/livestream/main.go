// Livestream: the intro scenario the paper motivates — live media sessions
// join a shared overlay one after another, each needing a dissemination tree
// immediately, with no rerouting of the sessions already streaming. The
// online allocator (Table VI) admits each arrival on the spot; its length
// function steers later sessions around loaded links, keeping congestion
// within O(log links) of the clairvoyant optimum.
//
// Run with: go run ./examples/livestream
package main

import (
	"fmt"
	"log"

	"overcast"
	"overcast/internal/rng"
)

func main() {
	net, err := overcast.WaxmanNetwork(120, 100, 77)
	if err != nil {
		log.Fatal(err)
	}

	on, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}

	// Ten streaming channels join over time, each with a source and a
	// random audience of 3-6 receivers.
	r := rng.New(99)
	var audiences [][]int
	for ch := 0; ch < 10; ch++ {
		size := 4 + r.Intn(4)
		audiences = append(audiences, r.Sample(net.Nodes(), size))
	}

	fmt.Println("channel  members  tree-links  max-congestion-after-join")
	for ch, members := range audiences {
		pairs, err := on.Join(overcast.Session{Members: members, Demand: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %7d  %10d  %25.3f\n", ch, len(members), len(pairs), on.MaxCongestion())
	}

	// Finalize: every channel's streaming rate is its demand scaled by the
	// congestion its tree actually sees — an exactly feasible allocation.
	alloc, err := on.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nfinal feasible streaming rates:")
	for ch := range audiences {
		fmt.Printf("  channel %d: %.2f\n", ch, alloc.SessionRate(ch))
	}
	fmt.Printf("aggregate receiver throughput: %.2f\n", alloc.OverallThroughput())

	// How far from the clairvoyant optimum that knew all arrivals upfront?
	var sessions []overcast.Session
	for _, m := range audiences {
		sessions = append(sessions, overcast.Session{Members: m, Demand: 1})
	}
	sys, err := overcast.NewSystem(net, sessions, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := sys.MaxFlow(0.93)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline multi-tree optimum: %.2f (online achieved %.1f%%)\n",
		opt.OverallThroughput(), 100*alloc.OverallThroughput()/opt.OverallThroughput())
}
