package routing

import (
	"testing"
	"testing/quick"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func TestWeightedRoutesFollowWeights(t *testing.T) {
	// Square 0-1-2-3-0 with a heavy edge 0-1: weighted route 0->1 must
	// detour via 3 and 2.
	net, _ := topology.Ring(4, 10)
	g := net.Graph
	w := graph.NewLengths(g, 1)
	e01, _ := g.EdgeBetween(0, 1)
	w[e01] = 10
	rt := NewWeightedIPRoutes(g, []graph.NodeID{0, 1}, w)
	p, err := rt.Route(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 3 {
		t.Fatalf("weighted route took %d hops, want detour of 3", p.Hops())
	}
	if rt.Hops(0, 1) != 3 {
		t.Fatalf("Hops reports %d, want 3", rt.Hops(0, 1))
	}
}

func TestWeightedRoutesSymmetric(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(40), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	w := net.LinkDelays()
	rt := NewWeightedIPRoutes(g, allNodes(g), w)
	for u := 0; u < 40; u += 4 {
		for v := u + 1; v < 40; v += 7 {
			puv, err1 := rt.Route(u, v)
			pvu, err2 := rt.Route(v, u)
			if err1 != nil || err2 != nil {
				t.Fatalf("route error: %v %v", err1, err2)
			}
			rev := pvu.Reverse()
			if len(puv.Edges) != len(rev.Edges) {
				t.Fatalf("asymmetric weighted routes %d vs %d", len(puv.Edges), len(rev.Edges))
			}
			for i := range puv.Edges {
				if puv.Edges[i] != rev.Edges[i] {
					t.Fatalf("weighted route(%d,%d) not reverse of (%d,%d)", u, v, v, u)
				}
			}
		}
	}
}

func TestWeightedRoutesMatchBFSOnUnitWeights(t *testing.T) {
	check := func(seed uint64) bool {
		net, err := topology.Waxman(topology.DefaultWaxman(25), rng.New(seed))
		if err != nil {
			return false
		}
		g := net.Graph
		unit := graph.NewLengths(g, 1)
		wrt := NewWeightedIPRoutes(g, allNodes(g), unit)
		brt := NewIPRoutes(g, allNodes(g))
		for v := 1; v < g.NumNodes(); v++ {
			if wrt.Hops(0, v) != brt.Hops(0, v) {
				return false
			}
			p, err := wrt.Route(0, v)
			if err != nil || p.Validate(g) != nil {
				return false
			}
			if p.Hops() != brt.Hops(0, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRoutesAreWeightShortest(t *testing.T) {
	// The total weight of every returned route must equal the Dijkstra
	// distance.
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	w := net.LinkDelays()
	rt := NewWeightedIPRoutes(g, allNodes(g), w)
	dist, _ := ShortestPaths(g, 0, w)
	for v := 1; v < g.NumNodes(); v++ {
		p, err := rt.Route(0, v)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, e := range p.Edges {
			total += w[e]
		}
		if diff := total - dist[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("route 0->%d weight %v != shortest %v", v, total, dist[v])
		}
	}
}

func TestWeightedRoutesUnreachableAndSelf(t *testing.T) {
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	w := graph.NewLengths(g, 1)
	rt := NewWeightedIPRoutes(g, []graph.NodeID{0, 2}, w)
	if _, err := rt.Route(0, 2); err == nil {
		t.Fatal("cross-component weighted route did not error")
	}
	if rt.Hops(0, 2) != -1 {
		t.Fatal("unreachable weighted hops should be -1")
	}
	p, err := rt.Route(2, 2)
	if err != nil || p.Hops() != 0 {
		t.Fatal("self route wrong")
	}
}

func TestWeightedRoutesPanicsOnSizeMismatch(t *testing.T) {
	net, _ := topology.Ring(4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("short weight vector did not panic")
		}
	}()
	NewWeightedIPRoutes(net.Graph, []graph.NodeID{0}, graph.Lengths{1})
}

func TestLinkDelaysFallbackWithoutPositions(t *testing.T) {
	net, _ := topology.Ring(5, 10) // synthetic: no positions
	w := net.LinkDelays()
	for _, v := range w {
		if v != 1 {
			t.Fatalf("expected unit fallback, got %v", v)
		}
	}
	wax, err := topology.Waxman(topology.DefaultWaxman(10), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	dw := wax.LinkDelays()
	varies := false
	for _, v := range dw[1:] {
		if v != dw[0] {
			varies = true
		}
	}
	if !varies {
		t.Fatal("positioned network should have varying delays")
	}
}

// TestWeightedIPRoutesFromTreesMatchesDirect pins the shared-tree
// constructor's contract: assembled from externally computed Dijkstra trees
// (exactly what the overlay SSSP plane hands the churn prefabricator), the
// table must agree with NewWeightedIPRoutes on every route and hop count —
// node for node, edge for edge.
func TestWeightedIPRoutesFromTreesMatchesDirect(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(50), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	w := net.LinkDelays()
	members := []graph.NodeID{2, 7, 7, 13, 29, 41} // duplicate source on purpose
	want := NewWeightedIPRoutes(g, members, w)

	trees := map[graph.NodeID][]graph.EdgeID{}
	for _, s := range members {
		if _, ok := trees[s]; !ok {
			_, parent := ShortestPaths(g, s, w)
			trees[s] = parent
		}
	}
	got := NewWeightedIPRoutesFromTrees(g, members, func(s graph.NodeID) []graph.EdgeID {
		return trees[s]
	})

	for i, u := range members {
		for _, v := range members[i:] {
			if gh, wh := got.Hops(u, v), want.Hops(u, v); gh != wh {
				t.Fatalf("hops(%d,%d) = %d, want %d", u, v, gh, wh)
			}
			gp, err := got.Route(u, v)
			if err != nil {
				t.Fatal(err)
			}
			wp, err := want.Route(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if len(gp.Nodes) != len(wp.Nodes) || len(gp.Edges) != len(wp.Edges) {
				t.Fatalf("route(%d,%d) shape differs", u, v)
			}
			for k := range gp.Nodes {
				if gp.Nodes[k] != wp.Nodes[k] {
					t.Fatalf("route(%d,%d) node %d: %d != %d", u, v, k, gp.Nodes[k], wp.Nodes[k])
				}
			}
			for k := range gp.Edges {
				if gp.Edges[k] != wp.Edges[k] {
					t.Fatalf("route(%d,%d) edge %d: %d != %d", u, v, k, gp.Edges[k], wp.Edges[k])
				}
			}
			if err := gp.Validate(g); err != nil {
				t.Fatal(err)
			}
		}
	}
}
