package overlay

import (
	"sync"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// Plane is a shared store of single-source shortest-path (SSSP) rows — one
// Dijkstra distance/parent array pair per source node — computed once under an
// immutable length snapshot and then read by many consumers. It exists
// because the paper's Sec. V arbitrary-routing oracle runs one Dijkstra per
// session member per MinTree call, while the batched phase rounds (PR 3)
// evaluate every pending session under a *single* length snapshot: when Zipf
// node popularity puts the same hot nodes in many sessions, the per-session
// oracles recompute identical SSSP trees dozens of times per round. Staging
// the union of the round's member sources on a plane converts that
// O(sessions x members) Dijkstra cost into O(distinct members).
//
// Determinism: a row's content is a pure function of (graph, source, length
// snapshot) — DijkstraScratch.ShortestPathsInto has deterministic tie-breaks
// and no shared mutable state — so distances and parent edges are bitwise
// identical whether a row is filled by stage-1 plane workers, by the
// sequential path, or inside a plane-oblivious MinTreeWith call. Plane
// on/off and worker count therefore never change solver outputs.
//
// Lifecycle: Reset, Stage each source, fill every row (FillRow per row or
// Fill for the standalone one-shot case), then read via Lookup. Staging and
// filling are single-goroutine operations except for FillRow, which may run
// concurrently for distinct rows; once filled, the plane is safe for any
// number of concurrent readers until the next Reset. Row storage is pooled
// across Reset cycles, so a round-loop reuses its buffers.
type Plane struct {
	g *graph.Graph
	// rowOf maps a node id to its row index in the current cycle (-1 when the
	// node is not staged). Only entries named by sources are ever non-negative,
	// so Reset clears in O(staged sources), not O(nodes).
	rowOf   []int32
	sources []graph.NodeID
	dists   [][]float64
	parents [][]graph.EdgeID
}

// NewPlane returns an empty plane over g. Row storage grows on first use and
// is retained across Reset cycles.
func NewPlane(g *graph.Graph) *Plane {
	rowOf := make([]int32, g.NumNodes())
	for i := range rowOf {
		rowOf[i] = -1
	}
	return &Plane{g: g, rowOf: rowOf}
}

// Reset forgets the current cycle's sources, keeping row storage for reuse.
func (p *Plane) Reset() {
	for _, s := range p.sources {
		p.rowOf[s] = -1
	}
	p.sources = p.sources[:0]
}

// Stage registers src as a source of the current cycle, assigning it the next
// row, and reports whether it was new (false = already staged, the
// deduplication hit). Rows are assigned in first-staging order, which callers
// keep deterministic by staging in a canonical order.
func (p *Plane) Stage(src graph.NodeID) bool {
	if p.rowOf[src] >= 0 {
		return false
	}
	row := len(p.sources)
	if row == len(p.dists) {
		n := p.g.NumNodes()
		p.dists = append(p.dists, make([]float64, n))
		p.parents = append(p.parents, make([]graph.EdgeID, n))
	}
	p.rowOf[src] = int32(row)
	p.sources = append(p.sources, src)
	return true
}

// NumSources returns the number of staged sources in the current cycle.
func (p *Plane) NumSources() int { return len(p.sources) }

// FillRow computes row's SSSP arrays under d with sp's pooled heap. Distinct
// rows may be filled concurrently (each touches only its own arrays); sp must
// be private to the calling goroutine.
func (p *Plane) FillRow(row int, d graph.Lengths, sp *routing.DijkstraScratch) {
	sp.ShortestPathsInto(p.g, p.sources[row], d, p.dists[row], p.parents[row])
}

// Fill computes every staged row under d, fanning across at most workers
// goroutines (<=1 runs inline). It is the standalone entry point for
// one-shot consumers like the churn harness's oracle prefabrication;
// BatchRunner drives FillRow from its own persistent pool instead.
func (p *Plane) Fill(d graph.Lengths, workers int) {
	ns := len(p.sources)
	if ns == 0 {
		return
	}
	if workers > ns {
		workers = ns
	}
	if workers <= 1 {
		sp := routing.NewDijkstraScratch(p.g)
		for row := 0; row < ns; row++ {
			p.FillRow(row, d, sp)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := routing.NewDijkstraScratch(p.g)
			for row := range jobs {
				p.FillRow(row, d, sp)
			}
		}()
	}
	for row := 0; row < ns; row++ {
		jobs <- row
	}
	close(jobs)
	wg.Wait()
}

// Lookup returns the filled SSSP row rooted at src, or ok=false when src was
// not staged this cycle. The returned slices are plane-owned: valid until the
// next Reset/Fill cycle and must not be mutated.
func (p *Plane) Lookup(src graph.NodeID) (dist []float64, parent []graph.EdgeID, ok bool) {
	row := p.rowOf[src]
	if row < 0 {
		return nil, nil, false
	}
	return p.dists[row], p.parents[row], true
}

// Metrics aggregates shared-SSSP-plane counters over a consumer's lifetime
// (a BatchRunner's rounds, a churn prefabrication pass). The interesting
// ratio is PlaneRequests/PlaneSources — how many per-member SSSP reads each
// computed Dijkstra row served; 1.0 means no cross-session sharing, Zipf-hot
// scenarios reach well above 2.
type Metrics struct {
	// PlaneRounds counts batch rounds that staged at least one plane row.
	PlaneRounds int
	// PlaneSources counts SSSP rows actually computed (distinct sources,
	// summed over rounds) — the misses.
	PlaneSources int
	// PlaneRequests counts per-member SSSP reads served from the plane
	// (every member of every plane-aware oracle evaluated in a round).
	PlaneRequests int
}

// PlaneDedup returns PlaneRequests/PlaneSources, the average number of oracle
// member reads served per Dijkstra computed (1 when the plane never fired).
func (m Metrics) PlaneDedup() float64 {
	if m.PlaneSources == 0 {
		return 1
	}
	return float64(m.PlaneRequests) / float64(m.PlaneSources)
}

// PlaneHitRate returns the fraction of member reads that reused an
// already-computed row: 1 - sources/requests (0 when the plane never fired).
func (m Metrics) PlaneHitRate() float64 {
	if m.PlaneRequests == 0 {
		return 0
	}
	return 1 - float64(m.PlaneSources)/float64(m.PlaneRequests)
}

// Merge adds o's counters into m (for folding per-subsolve metrics into an
// aggregate, e.g. the MCF beta prestep's per-session MaxFlows).
func (m *Metrics) Merge(o Metrics) {
	m.PlaneRounds += o.PlaneRounds
	m.PlaneSources += o.PlaneSources
	m.PlaneRequests += o.PlaneRequests
}
