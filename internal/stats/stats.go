// Package stats computes the distribution summaries the paper's figures
// plot: accumulative tree-rate distributions (Figs. 2/3/7/8/17),
// link-utilization distributions (Figs. 4/9/14), fairness indices, and
// simple surface grids for the Sec. VI session-size sweeps.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a distribution curve.
type Point struct{ X, Y float64 }

// AccumulativeRateCDF converts a set of tree rates into the paper's
// "accumulative rate distribution versus normalized tree rank" curve: rates
// are sorted descending; point i is (rank fraction, fraction of total rate
// carried by the top i trees). An empty input yields an empty curve.
func AccumulativeRateCDF(rates []float64) []Point {
	if len(rates) == 0 {
		return nil
	}
	sorted := append([]float64(nil), rates...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := 0.0
	for _, r := range sorted {
		total += r
	}
	if total <= 0 {
		return nil
	}
	out := make([]Point, len(sorted))
	cum := 0.0
	for i, r := range sorted {
		cum += r
		out[i] = Point{X: float64(i+1) / float64(len(sorted)), Y: cum / total}
	}
	return out
}

// TopShareFraction returns the smallest fraction of trees (by rank) that
// carries at least `share` of the total rate — e.g. the paper's observation
// that 90% of throughput concentrates in <10% of trees reads
// TopShareFraction(rates, 0.9) < 0.1.
func TopShareFraction(rates []float64, share float64) float64 {
	curve := AccumulativeRateCDF(rates)
	for _, p := range curve {
		if p.Y >= share-1e-12 {
			return p.X
		}
	}
	if len(curve) == 0 {
		return 1
	}
	return 1
}

// UtilizationCDF converts per-edge utilization ratios into the paper's
// "utilization ratio distribution versus normalized edge rank" curve:
// utilizations sorted descending, x = rank fraction, y = utilization.
func UtilizationCDF(utils []float64) []Point {
	if len(utils) == 0 {
		return nil
	}
	sorted := append([]float64(nil), utils...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	out := make([]Point, len(sorted))
	for i, u := range sorted {
		out[i] = Point{X: float64(i+1) / float64(len(sorted)), Y: u}
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) in (0,1]; 1 means
// perfectly equal. Empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sumsq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Gini returns the Gini coefficient in [0,1); 0 means perfectly equal. It
// measures the asymmetry of the tree-rate distribution.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// Quantile returns the q-quantile (0<=q<=1) by linear interpolation; NaN for
// empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Surface is a 2-D grid of values indexed by (row, col) parameter values,
// used for the Sec. VI surfaces (sessions x session-size).
type Surface struct {
	RowLabel, ColLabel string
	Rows, Cols         []int       // parameter values
	Z                  [][]float64 // Z[r][c]
}

// NewSurface allocates a zeroed surface over the given parameter axes.
func NewSurface(rowLabel string, rows []int, colLabel string, cols []int) *Surface {
	z := make([][]float64, len(rows))
	for i := range z {
		z[i] = make([]float64, len(cols))
	}
	return &Surface{RowLabel: rowLabel, ColLabel: colLabel, Rows: rows, Cols: cols, Z: z}
}

// Set stores a value by axis values (not indices). Unknown axis values
// panic, which indicates harness misconfiguration.
func (s *Surface) Set(row, col int, v float64) {
	s.Z[s.rowIdx(row)][s.colIdx(col)] = v
}

// At reads a value by axis values.
func (s *Surface) At(row, col int) float64 {
	return s.Z[s.rowIdx(row)][s.colIdx(col)]
}

func (s *Surface) rowIdx(row int) int {
	for i, r := range s.Rows {
		if r == row {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown row value %d", row))
}

func (s *Surface) colIdx(col int) int {
	for i, c := range s.Cols {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("stats: unknown col value %d", col))
}

// Render pretty-prints the surface as an aligned table.
func (s *Surface) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", s.RowLabel+"\\"+s.ColLabel)
	for _, c := range s.Cols {
		fmt.Fprintf(&sb, "%12d", c)
	}
	sb.WriteByte('\n')
	for i, r := range s.Rows {
		fmt.Fprintf(&sb, "%-12d", r)
		for j := range s.Cols {
			fmt.Fprintf(&sb, "%12.2f", s.Z[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderCurve pretty-prints a distribution curve, sampling at most maxPts
// evenly spaced points.
func RenderCurve(curve []Point, maxPts int) string {
	if len(curve) == 0 {
		return "(empty)\n"
	}
	step := 1
	if maxPts > 0 && len(curve) > maxPts {
		step = (len(curve) + maxPts - 1) / maxPts
	}
	var sb strings.Builder
	for i := 0; i < len(curve); i += step {
		fmt.Fprintf(&sb, "%.4f\t%.4f\n", curve[i].X, curve[i].Y)
	}
	last := curve[len(curve)-1]
	if (len(curve)-1)%step != 0 {
		fmt.Fprintf(&sb, "%.4f\t%.4f\n", last.X, last.Y)
	}
	return sb.String()
}
