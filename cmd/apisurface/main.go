// Command apisurface prints the exported API surface of the root overcast
// package as one sorted line per declaration — every exported func, method,
// type, struct field, interface method, const, and var, with full signatures
// rendered by go/printer. The output is a pure function of the source, so a
// committed copy (API_SURFACE.txt) turns into an API-compatibility gate:
//
//	apisurface            # print the current surface
//	apisurface -write     # rewrite API_SURFACE.txt from the current tree
//	apisurface -check     # diff current surface vs API_SURFACE.txt; exit 1
//	                      # and print the +/- lines on any drift
//
// CI runs -check so an exported-surface change (rename, signature change,
// removal) fails the build unless API_SURFACE.txt is updated in the same
// commit — the lightweight apidiff equivalent for a repo that must not grow
// dependencies. Additive changes also fail; that is deliberate: the gate's
// job is to make every surface change show up in review as a one-line diff
// of the committed inventory, not to judge compatibility classes.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to inventory")
	file := flag.String("file", "API_SURFACE.txt", "committed surface inventory")
	write := flag.Bool("write", false, "rewrite the inventory from the current tree")
	check := flag.Bool("check", false, "fail when the current surface differs from the inventory")
	flag.Parse()

	lines, err := surface(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisurface:", err)
		os.Exit(2)
	}
	cur := strings.Join(lines, "\n") + "\n"

	switch {
	case *write:
		if err := os.WriteFile(*file, []byte(cur), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apisurface:", err)
			os.Exit(2)
		}
		fmt.Printf("apisurface: wrote %d declarations to %s\n", len(lines), *file)
	case *check:
		want, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apisurface:", err)
			os.Exit(2)
		}
		if diff := diffLines(strings.Split(strings.TrimRight(string(want), "\n"), "\n"), lines); len(diff) > 0 {
			fmt.Fprintf(os.Stderr, "apisurface: exported surface drifted from %s (run `go run ./cmd/apisurface -write` and commit the diff):\n", *file)
			for _, d := range diff {
				fmt.Fprintln(os.Stderr, d)
			}
			os.Exit(1)
		}
		fmt.Printf("apisurface: %d declarations match %s\n", len(lines), *file)
	default:
		fmt.Print(cur)
	}
}

// surface parses the package in dir (tests excluded) and returns its sorted
// exported declaration lines.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			// Methods on unexported receivers are not surface.
			if !ast.IsExported(receiverTypeName(d.Recv)) {
				return nil
			}
			return []string{fmt.Sprintf("method (%s) %s%s", render(fset, d.Recv.List[0].Type), d.Name.Name, signature(fset, d.Type))}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, signature(fset, d.Type))}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				out = append(out, typeLines(fset, s)...)
			case *ast.ValueSpec:
				kw := "const"
				if d.Tok == token.VAR {
					kw = "var"
				}
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					line := kw + " " + name.Name
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	if !s.Name.IsExported() {
		return nil
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + s.Name.Name + " struct"}
		for _, field := range t.Fields.List {
			ft := render(fset, field.Type)
			if len(field.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimPrefix(ft, "*")) {
					out = append(out, fmt.Sprintf("field %s.%s (embedded)", s.Name.Name, ft))
				}
				continue
			}
			for _, name := range field.Names {
				if name.IsExported() {
					out = append(out, fmt.Sprintf("field %s.%s %s", s.Name.Name, name.Name, ft))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + s.Name.Name + " interface"}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				out = append(out, fmt.Sprintf("ifacemethod %s: embeds %s", s.Name.Name, render(fset, m.Type)))
				continue
			}
			for _, name := range m.Names {
				if name.IsExported() {
					out = append(out, fmt.Sprintf("ifacemethod %s.%s%s", s.Name.Name, name.Name, signature(fset, m.Type.(*ast.FuncType))))
				}
			}
		}
		return out
	default:
		eq := " "
		if s.Assign.IsValid() {
			eq = " = "
		}
		return []string{"type " + s.Name.Name + eq + render(fset, s.Type)}
	}
}

func receiverTypeName(recv *ast.FieldList) string {
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// signature renders a FuncType as "(params) (results)" without the "func"
// keyword go/printer would emit.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	return strings.TrimPrefix(render(fset, ft), "func")
}

func render(fset *token.FileSet, node ast.Node) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, node); err != nil {
		return fmt.Sprintf("<!%v>", err)
	}
	// Surface lines must be one line each; multi-line literals (anonymous
	// structs etc.) collapse to single-space separated tokens.
	return strings.Join(strings.Fields(b.String()), " ")
}

// diffLines returns set-style +/- lines between two sorted slices.
func diffLines(want, got []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(want) || j < len(got) {
		switch {
		case i >= len(want):
			out = append(out, "+ "+got[j])
			j++
		case j >= len(got):
			out = append(out, "- "+want[i])
			i++
		case want[i] == got[j]:
			i, j = i+1, j+1
		case want[i] < got[j]:
			out = append(out, "- "+want[i])
			i++
		default:
			out = append(out, "+ "+got[j])
			j++
		}
	}
	return out
}
