// Package lp implements a dense primal simplex solver for linear programs of
// the form
//
//	maximize   c·x
//	subject to A·x <= b,  x >= 0,  b >= 0
//
// which is exactly the shape of the paper's M1/M2 programs once the tree
// sets are enumerated explicitly (capacity rows have b = c_e > 0; M2's
// demand-coverage rows rearrange to b = 0). Because b >= 0 the all-slack
// basis is feasible and no phase-1 is needed; Bland's rule guarantees
// termination under the degeneracy that b = 0 rows introduce.
//
// The solver exists to provide *exact* optima on small instances — the role
// the paper assigns to the ellipsoid method — against which the FPTAS
// implementations are validated. It is O(rows·cols) per pivot and dense, so
// keep instances small (a few thousand variables).
package lp

import (
	"fmt"
	"math"
)

// Problem is a max c·x s.t. Ax <= b, x >= 0 instance. All rows of A must
// have len(C) entries and B must be componentwise >= 0.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Result holds the optimum of a Problem.
type Result struct {
	X     []float64 // optimal primal solution
	Value float64   // optimal objective value
	// Duals are the optimal dual variables, one per constraint row (the
	// shadow price of each b_i). They drive the column-generation solver's
	// pricing step.
	Duals []float64
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

const tol = 1e-9

// Solve runs the simplex method on p. It returns an error for malformed
// input, unbounded problems, or iteration-limit exhaustion (which would
// indicate a bug, since Bland's rule precludes cycling).
func Solve(p Problem) (*Result, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m {
		return nil, fmt.Errorf("lp: %d rows but %d bounds", m, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return nil, fmt.Errorf("lp: row %d has %d entries, want %d", i, len(row), n)
		}
		if p.B[i] < 0 {
			return nil, fmt.Errorf("lp: negative bound b[%d]=%v (standard-form solver needs b>=0)", i, p.B[i])
		}
	}
	if n == 0 {
		return &Result{X: nil, Value: 0}, nil
	}

	// Tableau: m rows x (n + m + 1) columns. Columns 0..n-1 are structural
	// variables, n..n+m-1 slacks, last column the RHS. Row m is the
	// objective row (reduced costs), stored negated so that optimality is
	// "no negative entries".
	width := n + m + 1
	tab := make([][]float64, m+1)
	for i := 0; i < m; i++ {
		row := make([]float64, width)
		copy(row, p.A[i])
		row[n+i] = 1
		row[width-1] = p.B[i]
		tab[i] = row
	}
	obj := make([]float64, width)
	for j := 0; j < n; j++ {
		obj[j] = -p.C[j]
	}
	tab[m] = obj

	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	maxIter := 50 * (n + m + 10)
	iters := 0
	for ; iters < maxIter; iters++ {
		// Bland's rule: entering variable = smallest index with negative
		// reduced cost.
		enter := -1
		for j := 0; j < n+m; j++ {
			if tab[m][j] < -tol {
				enter = j
				break
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test; Bland tie-break on smallest basis variable index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > tol {
				ratio := tab[i][width-1] / a
				if ratio < bestRatio-tol || (ratio < bestRatio+tol && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil, fmt.Errorf("lp: problem is unbounded (column %d)", enter)
		}
		pivot(tab, leave, enter)
		basis[leave] = enter
	}
	if iters >= maxIter {
		return nil, fmt.Errorf("lp: iteration limit %d exceeded", maxIter)
	}

	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = tab[i][width-1]
		}
	}
	value := 0.0
	for j := 0; j < n; j++ {
		value += p.C[j] * x[j]
	}
	// At optimality the reduced cost of slack column i equals the dual
	// price y_i (slack columns form the identity in A, and the objective
	// row holds c_B B^{-1} A - c with c_slack = 0).
	duals := make([]float64, m)
	for i := 0; i < m; i++ {
		d := tab[m][n+i]
		if d < 0 {
			d = 0 // clip numerical noise; duals of <= rows are nonnegative
		}
		duals[i] = d
	}
	return &Result{X: x, Value: value, Duals: duals, Iterations: iters}, nil
}

// pivot performs Gauss-Jordan elimination around tab[row][col].
func pivot(tab [][]float64, row, col int) {
	width := len(tab[row])
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1 // avoid drift
	for i := range tab {
		if i == row {
			continue
		}
		factor := tab[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= factor * tab[row][j]
		}
		tab[i][col] = 0
	}
}
