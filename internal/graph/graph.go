// Package graph implements the capacitated undirected physical network used
// throughout the library: nodes are routers/end hosts, edges carry a capacity
// c_e and a mutable length d_e (the dual variable of the Garg–Könemann
// framework). The representation is adjacency lists over a flat edge array so
// that edge state (capacity, length, flow) can be addressed by a stable
// integer EdgeID from every algorithm.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex of the physical network.
type NodeID = int

// EdgeID indexes into Graph.Edges. An undirected edge has a single EdgeID no
// matter which endpoint it is traversed from.
type EdgeID = int

// Edge is one undirected physical link.
type Edge struct {
	U, V     NodeID  // endpoints, U < V by construction
	Capacity float64 // c_e > 0
}

// Other returns the endpoint of e opposite to n. It panics if n is not an
// endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge (%d,%d)", n, e.U, e.V))
}

// Graph is a simple undirected graph with per-edge capacities. It is built
// once via NewBuilder/AddEdge/Build and is immutable afterwards; algorithms
// keep their own per-edge state (lengths, flows) in parallel slices indexed
// by EdgeID.
//
// Adjacency is a flat CSR (compressed sparse row) layout: incident edge ids
// and opposite endpoints for node v occupy slots offsets[v]..offsets[v+1] of
// two parallel arrays. Compared to per-node slices plus a map edge index,
// this keeps the Dijkstra/BFS/Prim inner loops on contiguous memory with no
// pointer chasing and makes edge lookup an allocation-free binary search.
type Graph struct {
	n     int
	Edges []Edge
	// offsets has n+1 entries; node v's incident slots are
	// [offsets[v], offsets[v+1]).
	offsets []int
	// incident holds the edge ids of each node's slots, in ascending EdgeID
	// order within a node (the deterministic scan order every algorithm
	// relies on for tie-breaking).
	incident []EdgeID
	// adjTo[i] is the endpoint opposite to the owning node for slot i,
	// parallel to incident; it saves the Edge.Other branch on hot paths.
	adjTo []NodeID
	// uStart has n+1 entries; edges with U==u occupy Edges[uStart[u]:
	// uStart[u+1]] (Edges are sorted by (U,V)), enabling binary-search
	// EdgeBetween.
	uStart []int
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Adj returns the edges incident to v in ascending EdgeID order. The
// returned slice aliases the graph's CSR storage and must not be modified.
func (g *Graph) Adj(v NodeID) []EdgeID {
	return g.incident[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// Neighbors returns, for node v, the incident edge ids and the parallel
// slice of opposite endpoints (Neighbors(v)[1][i] is the node reached via
// edge Neighbors(v)[0][i]). Both slices alias CSR storage and must not be
// modified; iteration order matches Adj.
func (g *Graph) Neighbors(v NodeID) ([]EdgeID, []NodeID) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.incident[lo:hi:hi], g.adjTo[lo:hi:hi]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v NodeID) int { return g.offsets[v+1] - g.offsets[v] }

// EdgeBetween returns the edge joining u and v, if one exists. It is a
// binary search over u's sorted edge range — O(log deg), no allocation.
func (g *Graph) EdgeBetween(u, v NodeID) (EdgeID, bool) {
	if u > v {
		u, v = v, u
	}
	if u < 0 || v >= g.n {
		return 0, false
	}
	lo, hi := g.uStart[u], g.uStart[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if g.Edges[mid].V < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.uStart[u+1] && g.Edges[lo].V == v {
		return lo, true
	}
	return 0, false
}

// MinCapacity returns the smallest edge capacity, or 0 for an edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.Edges) == 0 {
		return 0
	}
	min := g.Edges[0].Capacity
	for _, e := range g.Edges[1:] {
		if e.Capacity < min {
			min = e.Capacity
		}
	}
	return min
}

// TotalCapacity returns Σ_e c_e.
func (g *Graph) TotalCapacity() float64 {
	total := 0.0
	for _, e := range g.Edges {
		total += e.Capacity
	}
	return total
}

// Connected reports whether the graph is connected (the empty graph and the
// single-node graph are connected).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		_, tos := g.Neighbors(v)
		for _, w := range tos {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are rejected at AddEdge time so that every downstream
// algorithm can assume a simple graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[[2]NodeID]bool
}

// NewBuilder creates a builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, seen: make(map[[2]NodeID]bool)}
}

// AddEdge adds the undirected edge {u,v} with the given capacity. It returns
// an error for out-of-range endpoints, self-loops, duplicate edges, and
// non-positive capacities.
func (b *Builder) AddEdge(u, v NodeID, capacity float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: endpoint out of range: (%d,%d) with n=%d", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if capacity <= 0 {
		return fmt.Errorf("graph: non-positive capacity %v on edge (%d,%d)", capacity, u, v)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]NodeID{u, v}
	if b.seen[key] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[key] = true
	b.edges = append(b.edges, Edge{U: u, V: v, Capacity: capacity})
	return nil
}

// HasEdge reports whether {u,v} has already been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	return b.seen[[2]NodeID{u, v}]
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph into its CSR form. Edges are sorted by endpoints
// so that EdgeIDs are a deterministic function of the edge set, independent
// of insertion order; each node's incident slots are filled in ascending
// EdgeID order, preserving the deterministic neighbour scan order.
func (b *Builder) Build() *Graph {
	edges := append([]Edge(nil), b.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	m := len(edges)
	g := &Graph{
		n:        b.n,
		Edges:    edges,
		offsets:  make([]int, b.n+1),
		incident: make([]EdgeID, 2*m),
		adjTo:    make([]NodeID, 2*m),
		uStart:   make([]int, b.n+1),
	}
	// Degree counting pass, then prefix sums.
	for _, e := range edges {
		g.offsets[e.U+1]++
		g.offsets[e.V+1]++
		g.uStart[e.U+1]++
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] += g.offsets[v]
		g.uStart[v+1] += g.uStart[v]
	}
	// Fill pass in EdgeID order; cursor starts at each node's offset.
	cursor := make([]int, b.n)
	for v := range cursor {
		cursor[v] = g.offsets[v]
	}
	for id, e := range edges {
		g.incident[cursor[e.U]] = id
		g.adjTo[cursor[e.U]] = e.V
		cursor[e.U]++
		g.incident[cursor[e.V]] = id
		g.adjTo[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	return g
}

// Lengths is a per-edge length assignment d_e, the dual variable of the
// Garg–Könemann scheme. It is kept separate from Graph so that concurrent
// solvers can own independent length functions over one shared graph.
type Lengths []float64

// NewLengths returns a length function over g initialized to init on every
// edge.
func NewLengths(g *Graph, init float64) Lengths {
	l := make(Lengths, g.NumEdges())
	for i := range l {
		l[i] = init
	}
	return l
}

// Clone returns an independent copy.
func (l Lengths) Clone() Lengths {
	return append(Lengths(nil), l...)
}

// PathLength returns Σ d_e over the given edge ids.
func (l Lengths) PathLength(edges []EdgeID) float64 {
	total := 0.0
	for _, id := range edges {
		total += l[id]
	}
	return total
}
