package graph

// IndexedHeap is a binary min-heap over items 0..n-1 keyed by float64
// priorities, with DecreaseKey support. It backs Prim's minimum spanning
// tree and Dijkstra's shortest paths, the two inner loops of every solver in
// this library, so it avoids interface dispatch and allocation on the hot
// path.
type IndexedHeap struct {
	keys []float64 // key per item id
	heap []int     // heap of item ids
	pos  []int     // pos[item] = index in heap, -1 if absent
}

// NewIndexedHeap creates an empty heap over item ids [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		keys: make([]float64, n),
		heap: make([]int, 0, n),
		pos:  make([]int, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *IndexedHeap) Len() int { return len(h.heap) }

// Contains reports whether item is currently queued.
func (h *IndexedHeap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the current key of item. Only meaningful if Contains(item) or
// item was previously popped (its last key is retained).
func (h *IndexedHeap) Key(item int) float64 { return h.keys[item] }

// Push inserts item with the given key. It panics if the item is already
// queued.
func (h *IndexedHeap) Push(item int, key float64) {
	if h.pos[item] >= 0 {
		panic("graph: IndexedHeap.Push of queued item")
	}
	h.keys[item] = key
	h.pos[item] = len(h.heap)
	h.heap = append(h.heap, item)
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers item's key. It panics if the item is not queued or the
// new key is larger than the current one.
func (h *IndexedHeap) DecreaseKey(item int, key float64) {
	i := h.pos[item]
	if i < 0 {
		panic("graph: DecreaseKey of absent item")
	}
	if key > h.keys[item] {
		panic("graph: DecreaseKey with larger key")
	}
	h.keys[item] = key
	h.up(i)
}

// PushOrDecrease inserts item, or lowers its key if already queued and the
// new key is smaller. It reports whether the heap changed.
func (h *IndexedHeap) PushOrDecrease(item int, key float64) bool {
	if h.pos[item] < 0 {
		h.Push(item, key)
		return true
	}
	if key < h.keys[item] {
		h.DecreaseKey(item, key)
		return true
	}
	return false
}

// Pop removes and returns the item with the smallest key. Ties break toward
// the smaller item id so that the heap's observable behaviour is
// deterministic. It panics on an empty heap.
func (h *IndexedHeap) Pop() (item int, key float64) {
	if len(h.heap) == 0 {
		panic("graph: Pop from empty IndexedHeap")
	}
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, h.keys[top]
}

// Reset empties the heap without reallocating.
func (h *IndexedHeap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

// less orders heap slots i, j by (key, item id).
func (h *IndexedHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b
}

func (h *IndexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
