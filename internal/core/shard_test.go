package core_test

import (
	"testing"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// shardCounts is the sweep the CI determinism gate runs detdump -shards at.
var shardCounts = []int{1, 2, 4}

// twoLevelSweepProblem builds a contended instance on the paper's two-level
// AS/router topology — the partition the sharded solver is designed for —
// with sessions spanning AS boundaries so trees cross the cut set.
func twoLevelSweepProblem(t *testing.T, mode core.RoutingMode) (*core.Problem, []int) {
	t.Helper()
	r := rng.New(99)
	net, err := topology.TwoLevel(topology.DefaultTwoLevel(6, 10), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(net.Graph.NumNodes())
	sets := [][]graph.NodeID{perm[0:5], perm[5:9], perm[9:14], perm[14:17], perm[17:20]}
	p := buildProblem(t, net.Graph, sets, []float64{100, 50, 80, 120, 60}, mode)
	return p, net.ASOf
}

// TestMaxFlowBitIdenticalAcrossShardCounts pins the tentpole invariant for
// M1: partitioning oracle evaluation across price-exchanging shards moves
// wall-clock and memory locality only, never output bits — for any shard ×
// worker combination, against the unsharded baseline.
func TestMaxFlowBitIdenticalAcrossShardCounts(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p, labels := twoLevelSweepProblem(t, mode)
		base, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts {
			for _, w := range []int{1, 8} {
				sol, err := core.MaxFlow(p, core.MaxFlowOptions{
					Epsilon: 0.1, Parallel: true, Workers: w,
					Shards: shards, ShardLabels: labels,
				})
				if err != nil {
					t.Fatalf("mode=%v shards=%d workers=%d: %v", mode, shards, w, err)
				}
				sameSolution(t, mode.String(), base, sol)
			}
		}
	}
}

// TestMCFBitIdenticalAcrossShardCounts pins the same invariant for M2 —
// phase loop, surplus pass, plus the plane and repair toggles on the sharded
// path (each shard's replica plane must behave like the unsharded one).
func TestMCFBitIdenticalAcrossShardCounts(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p, labels := twoLevelSweepProblem(t, mode)
		base, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
			Epsilon: 0.12, Workers: 1, SurplusPass: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		check := func(label string, res *core.MCFResult) {
			t.Helper()
			if res.Lambda != base.Lambda {
				t.Fatalf("%s: lambda %.17g != %.17g", label, res.Lambda, base.Lambda)
			}
			sameSolution(t, label, base.Solution, res.Solution)
		}
		for _, shards := range shardCounts {
			for _, w := range []int{1, 8} {
				res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
					Epsilon: 0.12, Parallel: true, Workers: w, SurplusPass: true,
					Shards: shards, ShardLabels: labels,
				})
				if err != nil {
					t.Fatalf("mode=%v shards=%d workers=%d: %v", mode, shards, w, err)
				}
				if res.Shards.Shards != shards || res.Shards.ExchangeRounds == 0 {
					t.Fatalf("mode=%v shards=%d: exchange stats %+v", mode, shards, res.Shards)
				}
				check(mode.String(), res)
			}
		}
		// Plane/repair toggles on the sharded path reproduce the same bits.
		for _, opt := range []core.MaxConcurrentFlowOptions{
			{Epsilon: 0.12, Workers: 2, SurplusPass: true, Shards: 4, ShardLabels: labels, DisablePlane: true},
			{Epsilon: 0.12, Workers: 2, SurplusPass: true, Shards: 4, ShardLabels: labels, DisableRepair: true},
		} {
			res, err := core.MaxConcurrentFlow(p, opt)
			if err != nil {
				t.Fatalf("mode=%v toggles %+v: %v", mode, opt, err)
			}
			check(mode.String()+"-toggle", res)
		}
	}
}

// TestWarmShardedBitIdentical replays a join/leave churn script through warm
// allocators at shard counts 0/2/4 and requires bitwise identical snapshots
// throughout — the warm repair runner, the rollback path, and the cold
// re-anchors all run through the shard boundary — and that the sharded runs
// actually exchanged prices.
func TestWarmShardedBitIdentical(t *testing.T) {
	r := rng.New(321)
	net, err := topology.TwoLevel(topology.DefaultTwoLevel(4, 10), r)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	perm := r.Perm(g.NumNodes())
	spans := [][2]int{{0, 4}, {4, 7}, {7, 11}, {11, 14}, {14, 18}, {18, 21}}
	demands := []float64{100, 60, 80, 40, 120, 90}

	runScript := func(shards int) ([]*core.Solution, core.WarmStats) {
		t.Helper()
		var labels []int
		if shards > 0 {
			labels = net.ASOf
		}
		w, err := core.NewWarm(g, core.RoutingArbitrary, nil, core.WarmOptions{
			Epsilon: 0.15, Workers: 2, Shards: shards, ShardLabels: labels,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		join := func(slot int) {
			t.Helper()
			s, err := overlay.NewSession(slot, perm[spans[slot][0]:spans[slot][1]], demands[slot])
			if err != nil {
				t.Fatal(err)
			}
			o, err := overlay.NewArbitraryOracle(g, s)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Join(s, o); err != nil {
				t.Fatal(err)
			}
		}
		var sols []*core.Solution
		snap := func() {
			t.Helper()
			sol, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			sols = append(sols, sol)
		}
		join(0)
		join(1)
		join(2)
		snap() // cold anchor
		join(3)
		snap() // warm join catch-up
		if err := w.Leave(1); err != nil {
			t.Fatal(err)
		}
		join(4)
		snap() // rollback + join in one refresh
		join(5)
		if err := w.Leave(0); err != nil {
			t.Fatal(err)
		}
		snap()
		return sols, w.Stats()
	}

	base, baseStats := runScript(0)
	if baseStats.Shards.ExchangeRounds != 0 {
		t.Fatalf("unsharded run reported shard stats: %+v", baseStats.Shards)
	}
	for _, shards := range []int{2, 4} {
		sols, stats := runScript(shards)
		if len(sols) != len(base) {
			t.Fatalf("shards=%d: %d snapshots vs %d", shards, len(sols), len(base))
		}
		for i := range sols {
			sameSolution(t, "warm-sharded", base[i], sols[i])
		}
		if stats.Shards.Shards != shards || stats.Shards.ExchangeRounds == 0 || stats.Shards.Msgs == 0 {
			t.Fatalf("shards=%d: exchange stats %+v", shards, stats.Shards)
		}
		if stats.ColdSolves != baseStats.ColdSolves || stats.WarmRefreshes != baseStats.WarmRefreshes {
			t.Fatalf("shards=%d: warm/cold split %d/%d vs %d/%d", shards,
				stats.ColdSolves, stats.WarmRefreshes, baseStats.ColdSolves, baseStats.WarmRefreshes)
		}
	}
}
