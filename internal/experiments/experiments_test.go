package experiments

import (
	"math"
	"strings"
	"testing"

	"overcast/internal/stats"
)

// smallA builds a scaled-down Setting A quickly for tests.
func smallA(t testing.TB) *SettingA {
	t.Helper()
	a, err := NewSettingA(7, SettingAConfig{Nodes: 40, SessionSizes: []int{5, 4}, Demand: 100, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSettingAValidation(t *testing.T) {
	if _, err := NewSettingA(1, SettingAConfig{Nodes: 2, SessionSizes: []int{5}}); err == nil {
		t.Error("tiny topology accepted")
	}
	if _, err := NewSettingA(1, SettingAConfig{Nodes: 10, SessionSizes: []int{8, 8}, Demand: 1}); err == nil {
		t.Error("member overflow accepted")
	}
}

func TestSettingADeterministic(t *testing.T) {
	a1 := smallA(t)
	a2 := smallA(t)
	if a1.Net.Graph.NumEdges() != a2.Net.Graph.NumEdges() {
		t.Fatal("topology differs across identical seeds")
	}
	for i := range a1.Sessions {
		for j := range a1.Sessions[i].Members {
			if a1.Sessions[i].Members[j] != a2.Sessions[i].Members[j] {
				t.Fatal("sessions differ across identical seeds")
			}
		}
	}
}

func TestMaxFlowSweepShape(t *testing.T) {
	a := smallA(t)
	ratios := []float64{0.90, 0.95}
	rows, sols, err := a.MaxFlowSweep(ratios, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(sols) != 2 {
		t.Fatal("row count wrong")
	}
	// Tighter ratio must cost more MST ops and not lose meaningful value.
	if rows[1].MSTOps <= rows[0].MSTOps {
		t.Fatalf("MST ops did not grow with ratio: %d -> %d", rows[0].MSTOps, rows[1].MSTOps)
	}
	if rows[1].Throughput < rows[0].Throughput*0.97 {
		t.Fatalf("throughput degraded sharply: %v -> %v", rows[0].Throughput, rows[1].Throughput)
	}
	for i, row := range rows {
		if err := sols[i].CheckFeasible(1e-9); err != nil {
			t.Fatal(err)
		}
		// Overall throughput consistency: sum of receivers x rate.
		want := 0.0
		for s, rate := range row.SessionRates {
			want += float64(a.Sessions[s].Receivers()) * rate
		}
		if math.Abs(want-row.Throughput) > 1e-6 {
			t.Fatalf("throughput inconsistent: %v vs %v", want, row.Throughput)
		}
	}
	// MaxFlow favors the larger session (paper's Table II observation).
	if rows[1].SessionRates[0] < rows[1].SessionRates[1] {
		t.Logf("note: larger session rate %v < smaller %v (topology-dependent)",
			rows[1].SessionRates[0], rows[1].SessionRates[1])
	}
}

func TestMCFSweepShape(t *testing.T) {
	a := smallA(t)
	rows, sols, err := a.MCFSweep([]float64{0.92}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sols[0].CheckFeasible(1e-6); err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if row.Lambda <= 0 {
		t.Fatal("lambda not positive")
	}
	if row.PrestepOps <= 0 || row.MSTOps <= 0 {
		t.Fatalf("runtime parts not recorded: %d + %d", row.MSTOps, row.PrestepOps)
	}
	// Each session must get at least its fair share lambda*dem.
	for i, rate := range row.SessionRates {
		if rate < row.Lambda*a.Sessions[i].Demand-1e-6 {
			t.Fatalf("session %d rate %v below fair share %v", i, rate, row.Lambda*a.Sessions[i].Demand)
		}
	}
}

func TestFairnessComparisonMFvsMCF(t *testing.T) {
	// The central Table II vs IV comparison: MCF raises the smaller
	// session's rate; MaxFlow has the higher throughput.
	a := smallA(t)
	mfRows, _, err := a.MaxFlowSweep([]float64{0.93}, false)
	if err != nil {
		t.Fatal(err)
	}
	mcfRows, _, err := a.MCFSweep([]float64{0.93}, false)
	if err != nil {
		t.Fatal(err)
	}
	mf, mcf := mfRows[0], mcfRows[0]
	minMF := math.Min(mf.SessionRates[0], mf.SessionRates[1])
	minMCF := math.Min(mcf.SessionRates[0], mcf.SessionRates[1])
	if minMCF < minMF*0.9 {
		t.Fatalf("MCF min rate %v below MaxFlow min rate %v", minMCF, minMF)
	}
	if mf.Throughput < mcf.Throughput*0.95 {
		t.Fatalf("MaxFlow throughput %v not dominating MCF %v", mf.Throughput, mcf.Throughput)
	}
}

func TestArbitraryRoutingDominatesIP(t *testing.T) {
	// Sec. V-C claims arbitrary routing changes throughput by <1%. On our
	// BRITE-style instances the gain is substantial (1.5-2.2x; see
	// EXPERIMENTS.md) — the claim does not reproduce. What must hold is the
	// direction: dynamic routing only widens the feasible set, so the
	// arbitrary-routing optimum is never meaningfully below the IP one.
	a := smallA(t)
	ipRows, _, err := a.MaxFlowSweep([]float64{0.93}, false)
	if err != nil {
		t.Fatal(err)
	}
	arbRows, _, err := a.MaxFlowSweep([]float64{0.93}, true)
	if err != nil {
		t.Fatal(err)
	}
	ratio := arbRows[0].Throughput / ipRows[0].Throughput
	if ratio < 0.90 {
		t.Fatalf("arbitrary routing lost throughput vs IP: ratio %v", ratio)
	}
	if ratio > 4 {
		t.Fatalf("arbitrary/IP ratio %v implausibly high — likely a feasibility bug", ratio)
	}
}

func TestRateCDFAsymmetry(t *testing.T) {
	// Fig. 2's observation on small sessions: most of the rate concentrates
	// in a minority of trees.
	a := smallA(t)
	_, sols, err := a.MaxFlowSweep([]float64{0.95}, false)
	if err != nil {
		t.Fatal(err)
	}
	cdfs := RateCDFs(sols[0])
	if len(cdfs) != 2 {
		t.Fatal("expected 2 session curves")
	}
	rates := sols[0].RateDistribution(0)
	if frac := stats.TopShareFraction(rates, 0.9); frac > 0.6 {
		t.Fatalf("rate distribution too flat: top-90%% fraction = %v", frac)
	}
	util := LinkUtilizationCDF(sols[0])
	if len(util) == 0 {
		t.Fatal("no utilization curve")
	}
}

func TestTreeLimitSweepSmall(t *testing.T) {
	a := smallA(t)
	cfg := TreeLimitConfig{
		MaxTrees:  []int{1, 5, 15},
		Mus:       []float64{30},
		Trials:    6,
		BaseRatio: 0.92,
	}
	res, err := a.TreeLimitSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Diminishing-return shape: throughput grows with the tree limit.
	if res.Random[2].Throughput < res.Random[0].Throughput {
		t.Fatalf("random throughput not growing: %v -> %v",
			res.Random[0].Throughput, res.Random[2].Throughput)
	}
	on := res.Online[30]
	if on[2].Throughput < on[0].Throughput {
		t.Fatalf("online throughput not growing: %v -> %v", on[0].Throughput, on[2].Throughput)
	}
	// Tree usage is bounded by the limit.
	for j, n := range cfg.MaxTrees {
		for i := range a.Sessions {
			if res.Random[j].TreesUsed[i] > float64(n)+1e-9 {
				t.Fatalf("random used %v trees at limit %d", res.Random[j].TreesUsed[i], n)
			}
			if on[j].TreesUsed[i] > float64(n)+1e-9 {
				t.Fatalf("online used %v trees at limit %d", on[j].TreesUsed[i], n)
			}
		}
	}
	if _, err := a.TreeLimitSweep(TreeLimitConfig{MaxTrees: []int{1}, Trials: 0, BaseRatio: 0.9}); err == nil {
		t.Fatal("Trials=0 accepted")
	}
}

func TestSettingBGridSmall(t *testing.T) {
	b, err := NewSettingB(11, SettingBConfig{ASes: 3, RoutersPerAS: 12, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	cfg := GridConfig{SessionCounts: []int{1, 3}, SessionSizes: []int{4, 8}, Ratio: 0.92, Demand: 1}
	res, err := b.Grid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells", len(res.Cells))
	}
	for key, cell := range res.Cells {
		if cell.MFThroughput <= 0 {
			t.Fatalf("cell %v throughput %v", key, cell.MFThroughput)
		}
		if cell.MCFMinRate <= 0 {
			t.Fatalf("cell %v min rate %v", key, cell.MCFMinRate)
		}
		if cell.EdgesPerNode <= 0 {
			t.Fatalf("cell %v edges/node %v", key, cell.EdgesPerNode)
		}
		ratio := cell.MCFThroughput / cell.MFThroughput
		if ratio > 1.05 {
			t.Fatalf("cell %v MCF throughput exceeds MF: ratio %v", key, ratio)
		}
		if len(cell.MFUtilCDF) == 0 || len(cell.MFTreeRateCDF) == 0 {
			t.Fatalf("cell %v missing curves", key)
		}
	}
	// Fig. 12 shape: throughput grows with session size for a single
	// session (more receivers).
	if res.Throughput.At(1, 8) <= res.Throughput.At(1, 4)*0.8 {
		t.Fatalf("single-session throughput did not scale with size: %v vs %v",
			res.Throughput.At(1, 4), res.Throughput.At(1, 8))
	}
	// Fig. 16 shape: MCF conserves most of MF's throughput.
	for _, c := range cfg.SessionCounts {
		for _, s := range cfg.SessionSizes {
			if r := res.ThroughputRatio.At(c, s); r < 0.5 {
				t.Fatalf("MCF/MF ratio %v at (%d,%d) implausibly low", r, c, s)
			}
		}
	}
}

func TestSettingBOnlineGridSmall(t *testing.T) {
	b, err := NewSettingB(13, SettingBConfig{ASes: 3, RoutersPerAS: 10, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	cfg := GridConfig{SessionCounts: []int{2}, SessionSizes: []int{4}, Ratio: 0.92, Demand: 1}
	res, err := b.OnlineGrid(cfg, []int{2, 10}, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo := res.ThroughputRatio[2].At(2, 4)
	hi := res.ThroughputRatio[10].At(2, 4)
	if lo <= 0 || hi <= 0 {
		t.Fatalf("ratios not positive: %v %v", lo, hi)
	}
	if hi < lo*0.8 {
		t.Fatalf("more trees should not hurt much: %v -> %v", lo, hi)
	}
	if hi > 1.05 {
		t.Fatalf("online exceeded offline optimum: %v", hi)
	}
	if mr := res.MinRateRatio[10].At(2, 4); mr <= 0 || mr > 1.2 {
		t.Fatalf("min-rate ratio %v implausible", mr)
	}
	if _, err := b.OnlineGrid(cfg, []int{1}, 10, 0); err == nil {
		t.Fatal("trials=0 accepted")
	}
}

func TestRenderers(t *testing.T) {
	a := smallA(t)
	rows, sols, err := a.MaxFlowSweep([]float64{0.9}, false)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFlowTable("Table II", rows)
	for _, want := range []string{"Table II", "Approximation Ratio", "Overall Throughput", "Trees in Session 1", "MST ops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flow table missing %q:\n%s", want, out)
		}
	}
	mcfRows, _, err := a.MCFSweep([]float64{0.9}, false)
	if err != nil {
		t.Fatal(err)
	}
	mout := RenderMCFTable("Table IV", mcfRows)
	if !strings.Contains(mout, "Prestep") || !strings.Contains(mout, "Lambda") {
		t.Fatalf("MCF table missing runtime parts:\n%s", mout)
	}
	cd := RenderCDFFamily("Fig 2", []string{"s1", "s2"}, RateCDFs(sols[0]), 10)
	if !strings.Contains(cd, "s1") || !strings.Contains(cd, "0.") {
		t.Fatalf("CDF render wrong:\n%s", cd)
	}
	tl, err := a.TreeLimitSweep(TreeLimitConfig{MaxTrees: []int{1, 3}, Mus: []float64{20}, Trials: 2, BaseRatio: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	tout := RenderTreeLimit(tl)
	if !strings.Contains(tout, "random algorithm") || !strings.Contains(tout, "mu=20") {
		t.Fatalf("tree-limit render wrong:\n%s", tout)
	}
}
