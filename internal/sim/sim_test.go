package sim

import (
	"math"
	"testing"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func solved(t testing.TB, seed uint64, sizes []int) (*core.Problem, *core.Solution) {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(40)
	var sessions []*overlay.Session
	off := 0
	for i, sz := range sizes {
		s, err := overlay.NewSession(i, perm[off:off+sz], 100)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		off += sz
	}
	p, err := core.NewProblem(net.Graph, sessions, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	return p, sol
}

func TestConfigValidation(t *testing.T) {
	_, sol := solved(t, 1, []int{3})
	if _, err := Run(sol, Config{Steps: 0, DT: 1}); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, err := Run(sol, Config{Steps: 1, DT: 0}); err == nil {
		t.Error("DT=0 accepted")
	}
}

func TestFeasibleAllocationDeliversInFull(t *testing.T) {
	// A feasible solution must be delivered without loss: the simulator's
	// measured rates equal the allocated rates, and no link exceeds its
	// capacity.
	p, sol := solved(t, 2, []int{5, 4})
	rep, err := Run(sol, Config{Steps: 50, DT: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Sessions {
		if math.Abs(rep.DeliveredRate[i]-rep.OfferedRate[i]) > 1e-9 {
			t.Fatalf("session %d delivered %v of offered %v",
				i, rep.DeliveredRate[i], rep.OfferedRate[i])
		}
		if math.Abs(rep.OfferedRate[i]-sol.SessionRate(i)) > 1e-9 {
			t.Fatalf("offered rate mismatch for session %d", i)
		}
	}
	if rep.PeakLinkUtilization > 1+1e-9 {
		t.Fatalf("feasible allocation overloaded a link: %v", rep.PeakLinkUtilization)
	}
	if math.Abs(rep.OverallDelivered-sol.OverallThroughput()) > 1e-6 {
		t.Fatalf("overall delivered %v != allocated %v", rep.OverallDelivered, sol.OverallThroughput())
	}
}

func TestOverloadedAllocationIsThrottled(t *testing.T) {
	// Doubling all rates makes the allocation infeasible: the simulator
	// must observe loss and a peak utilization of ~2.
	_, sol := solved(t, 3, []int{5, 4})
	over := &core.Solution{G: sol.G, Sessions: sol.Sessions, Flows: make([][]core.TreeFlow, len(sol.Flows))}
	for i, flows := range sol.Flows {
		for _, tf := range flows {
			over.Flows[i] = append(over.Flows[i], core.TreeFlow{Tree: tf.Tree, Rate: tf.Rate * 2})
		}
	}
	rep, err := Run(over, Config{Steps: 20, DT: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	lost := false
	for i := range rep.OfferedRate {
		if rep.DeliveredRate[i] < rep.OfferedRate[i]-1e-9 {
			lost = true
		}
		if rep.DeliveredRate[i] > rep.OfferedRate[i]+1e-9 {
			t.Fatalf("delivered more than offered for session %d", i)
		}
	}
	if !lost {
		t.Fatal("no loss observed despite 2x overload")
	}
	if rep.PeakLinkUtilization < 1.5 {
		t.Fatalf("peak utilization %v, expected ~2", rep.PeakLinkUtilization)
	}
}

func TestBottleneckThrottleIsExact(t *testing.T) {
	// Hand-built scenario: path 0-1-2 with capacity 10; a single-tree
	// session {0,2} sending at 15 must deliver exactly 10.
	net, _ := topology.Path(3, 10)
	g := net.Graph
	s, _ := overlay.NewSession(0, []graph.NodeID{0, 2}, 1)
	p, err := core.NewProblem(g, []*overlay.Session{s}, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	unit := graph.NewLengths(g, 1)
	tree, err := p.Oracles[0].MinTree(unit)
	if err != nil {
		t.Fatal(err)
	}
	sol := &core.Solution{G: g, Sessions: p.Sessions, Flows: [][]core.TreeFlow{{{Tree: tree, Rate: 15}}}}
	rep, err := Run(sol, Config{Steps: 10, DT: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DeliveredRate[0]-10) > 1e-9 {
		t.Fatalf("delivered %v, want 10", rep.DeliveredRate[0])
	}
	if math.Abs(rep.PeakLinkUtilization-1.5) > 1e-9 {
		t.Fatalf("peak %v, want 1.5", rep.PeakLinkUtilization)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	_, sol := solved(t, 4, []int{6, 3})
	var base *Report
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := Run(sol, Config{Steps: 25, DT: 0.2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			continue
		}
		for i := range rep.DeliveredRate {
			if math.Abs(rep.DeliveredRate[i]-base.DeliveredRate[i]) > 1e-9 {
				t.Fatalf("workers=%d changed session %d delivery: %v vs %v",
					workers, i, rep.DeliveredRate[i], base.DeliveredRate[i])
			}
		}
		if math.Abs(rep.OverallDelivered-base.OverallDelivered) > 1e-9 {
			t.Fatalf("workers=%d changed overall delivery", workers)
		}
	}
}

func TestEmptySolutionRuns(t *testing.T) {
	net, _ := topology.Path(3, 10)
	s, _ := overlay.NewSession(0, []graph.NodeID{0, 2}, 1)
	sol := &core.Solution{G: net.Graph, Sessions: []*overlay.Session{s}, Flows: make([][]core.TreeFlow, 1)}
	rep, err := Run(sol, Config{Steps: 5, DT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveredRate[0] != 0 || rep.OverallDelivered != 0 {
		t.Fatal("empty solution delivered traffic")
	}
}

func BenchmarkSimulate(b *testing.B) {
	_, sol := solved(b, 5, []int{7, 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(sol, Config{Steps: 20, DT: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
