package overlay

import (
	"math/rand"
	"testing"

	"overcast/internal/graph"
)

// liveRefs collects the deduplicated live entry set of p's inverted index:
// every (edge, row, child) whose entry self-validates against the stored
// parent arrays. Dead and duplicate entries are ignored, mirroring what
// MarkTouched can ever act on.
func liveRefs(p *Plane) map[[3]int32]bool {
	out := map[[3]int32]bool{}
	for e, refs := range p.idx.edgeRows {
		for _, ref := range refs {
			if p.parents[ref.row][ref.child] == graph.EdgeID(e) {
				out[[3]int32{int32(e), ref.row, ref.child}] = true
			}
		}
	}
	return out
}

// TestInvertedIndexMatchesRebuild drives a runner through mixed rounds
// (fills, skips, subtree repairs, serviceable demotions) and, at every round,
// checks the incrementally maintained index against a from-scratch rebuild:
// the live deduplicated entry sets must be equal. Completeness (no live
// parent edge missing from the index) is the soundness half — a missing
// entry would silently skip a dirty row; the rebuild provides exactly the
// live set, so set equality covers both directions.
func TestInvertedIndexMatchesRebuild(t *testing.T) {
	g, oracles := arbBatchFixture(t, 7)
	r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 2, SharedPlane: true})
	defer r.Close()
	ls := graph.NewLengthStore(g, 1)
	rnd := rand.New(rand.NewSource(99))
	for round := 0; round < 60; round++ {
		results := r.MinTreesLen(ls, nil)
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("round %d oracle %d: %v", round, i, res.Err)
			}
		}
		p := r.plane
		got := liveRefs(p)

		// Reference: the live set derived straight from the parent arrays.
		want := map[[3]int32]bool{}
		for row := range p.sources {
			for child, e := range p.parents[row] {
				if e >= 0 {
					want[[3]int32{int32(e), int32(row), int32(child)}] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: maintained index has %d live entries, parent arrays imply %d", round, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("round %d: live entry edge=%d row=%d child=%d missing from maintained index", round, k[0], k[1], k[2])
			}
		}

		// A from-scratch rebuild must reproduce the same live set (and the
		// runner must keep working on the rebuilt index afterwards).
		p.rebuildIndex()
		rebuilt := liveRefs(p)
		if len(rebuilt) != len(want) {
			t.Fatalf("round %d: rebuilt index has %d live entries, want %d", round, len(rebuilt), len(want))
		}
		for k := range want {
			if !rebuilt[k] {
				t.Fatalf("round %d: rebuilt index lost entry edge=%d row=%d child=%d", round, k[0], k[1], k[2])
			}
		}

		if rnd.Intn(4) > 0 {
			bumpTreeEdges(ls, results[rnd.Intn(len(results))].Tree)
		} else {
			for j := 0; j < 1+rnd.Intn(5); j++ {
				ls.Bump(rnd.Intn(g.NumEdges()), 1+rnd.Float64()*0.3)
			}
		}
	}
	m := r.Metrics()
	if m.PlaneSubtreeRepaired == 0 {
		t.Fatalf("fixture never took the subtree path — the interesting index writes were not exercised (%+v)", m)
	}
}
