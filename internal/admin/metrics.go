package admin

import (
	"fmt"
	"sort"
	"strings"
)

// PrometheusText renders a stats snapshot in the Prometheus text exposition
// format (version 0.0.4): one gauge or counter per daemon/allocator/plane
// counter, deterministically ordered so two identical snapshots render to
// identical bytes. The daemon serves this through the OpMetrics RPC; a
// sidecar (or overcastctl metrics piped to a textfile collector) turns it
// into a scrape target without the daemon growing an HTTP listener.
func PrometheusText(st *StatsResult) string {
	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}

	gauge("overcastd_active_sessions", "Admitted sessions that have not left.", float64(st.Active))
	counter("overcastd_admitted_sessions_total", "Sessions ever admitted.", float64(st.Admitted))
	gauge("overcastd_epoch", "Allocator epoch (advances on join, leave, rebalance).", float64(st.Epoch))
	gauge("overcastd_max_congestion", "Online max link load/capacity ratio at full demands.", st.MaxCongestion)

	a := st.Allocator
	counter("overcastd_joins_total", "Successfully processed joins.", float64(a.Joins))
	counter("overcastd_leaves_total", "Successfully processed leaves.", float64(a.Leaves))
	counter("overcastd_cold_solves_total", "Full MaxConcurrentFlow re-solves behind refreshes.", float64(a.ColdSolves))
	counter("overcastd_warm_refreshes_total", "Refreshes served by warm-start incremental repair.", float64(a.WarmRefreshes))
	counter("overcastd_warm_fallbacks_total", "Warm repairs that fell back to a cold solve mid-way.", float64(a.WarmFallbacks))
	counter("overcastd_repair_phases_total", "Session-phases routed by warm repair.", float64(a.RepairPhases))
	counter("overcastd_mst_ops_total", "Spanning-tree computations (the paper's running-time unit).", float64(a.MSTOps))

	p := a.Plane
	counter("overcastd_plane_rounds_total", "Batch rounds that staged at least one shared-SSSP-plane row.", float64(p.Rounds))
	counter("overcastd_plane_sources_total", "SSSP rows computed by Dijkstra (plane misses).", float64(p.Sources))
	counter("overcastd_plane_requests_total", "Per-member SSSP reads served from the plane.", float64(p.Requests))
	counter("overcastd_plane_repaired_total", "Row refills forced by the cross-round dirty-source check.", float64(p.Repaired))
	counter("overcastd_plane_skipped_total", "Row refills the dirty-source check proved unnecessary.", float64(p.Skipped))
	counter("overcastd_plane_subtree_repaired_total", "Row refills downgraded to incremental subtree repairs (resumed Dijkstra over the dirty subtrees only).", float64(p.SubtreeRepaired))
	counter("overcastd_plane_subtree_nodes_total", "Nodes resettled by subtree repairs (divide by subtree_repaired for the mean repaired-region size).", float64(p.SubtreeNodes))
	counter("overcastd_plane_seeded_total", "Rows copied from a prestep seed plane.", float64(p.Seeded))
	counter("overcastd_plane_tree_hits_total", "Whole oracle evaluations served from the tree cache.", float64(p.TreeHits))
	gauge("overcastd_plane_dedup_ratio", "Member reads served per Dijkstra computed.", p.Dedup())
	gauge("overcastd_plane_repair_skip_ratio", "Fraction of row revalidations resolved without a Dijkstra.", p.RepairRate())

	sh := a.Shards
	gauge("overcastd_shards", "AS shards behind the price-exchange boundary (0 = unsharded).", float64(sh.Shards))
	counter("overcastd_shard_exchange_rounds_total", "Solver rounds that shipped a price batch to the shards.", float64(sh.ExchangeRounds))
	counter("overcastd_shard_price_msgs_total", "Price messages delivered to shard replicas.", float64(sh.Msgs))
	counter("overcastd_shard_cut_price_msgs_total", "Price messages for cut edges (inter-AS exchange traffic).", float64(sh.CutMsgs))
	counter("overcastd_shard_exchange_bytes_total", "Wire-equivalent bytes of delivered price messages.", float64(sh.ExchangeBytes))
	counter("overcastd_shard_resyncs_total", "Full ledger-snapshot resyncs (journal window lost or ledger swapped).", float64(sh.Resyncs))
	counter("overcastd_shard_reduce_seconds_total", "Time spent in the coordinator's sequential reduce.", sh.ReduceTime.Seconds())

	counter("overcastd_underlay_events_total", "Effective underlay fault events applied (link down/up, capacity drift).", float64(a.UnderlayEvents))
	counter("overcastd_plane_nonmonotone_refills_total", "Plane rows degraded from skip/repair to full refill by non-monotone length moves.", float64(p.NonMonotoneRefills))
	counter("overcastd_shard_fault_resyncs_total", "Shard snapshot resyncs forced by fault bursts exceeding the ledger journal window.", float64(sh.FaultResyncs))

	d := st.Daemon
	counter("overcastd_admission_rejected_total", "Joins refused by the admission policy.", float64(d.AdmissionRejected))
	counter("overcastd_state_snapshots_saved_total", "State snapshots persisted to disk.", float64(d.SnapshotsSaved))
	gauge("overcastd_restored", "1 when this process recovered from a state snapshot.", boolGauge(d.Restored))
	gauge("overcastd_uptime_seconds", "Seconds since the daemon started serving.", d.UptimeSeconds)
	gauge("overcastd_draining", "1 while the daemon drains.", boolGauge(d.Draining))

	fmt.Fprintf(&b, "# HELP overcastd_rpcs_total Served admin RPCs by op (failures included).\n# TYPE overcastd_rpcs_total counter\n")
	ops := make([]string, 0, len(d.RPCs))
	for op := range d.RPCs {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Fprintf(&b, "overcastd_rpcs_total{op=%q} %d\n", op, d.RPCs[op])
	}
	return b.String()
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
