package core

import (
	"runtime"
	"sync"
)

// resolveWorkers turns the (Parallel, Workers) option pair into a concrete
// oracle worker-pool size. An explicit Workers value always wins (1 forces
// the sequential path even with Parallel set, which is what the detdump
// cross-worker determinism gate sweeps); Workers == 0 falls back to
// GOMAXPROCS when Parallel is set and to 1 otherwise.
func resolveWorkers(parallel bool, workers int) int {
	if workers > 0 {
		return workers
	}
	if parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// parallelFor runs fn(i) for i in [0,n) across at most workers goroutines
// and blocks until all complete. fn must be safe to run concurrently for
// distinct i and must write only to i-indexed slots, so results are
// independent of scheduling. workers <= 1 degrades to an inline loop.
// Used by the MCF beta prestep to fan the per-session MaxFlows out.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
