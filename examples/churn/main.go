// Churn: overlay sessions are not static — they join, live for a while, and
// leave ("topological variability" in the paper). This example drives the v2
// Allocator with a Poisson-arrival / exponential-lifetime workload: every
// arrival is admitted immediately with a cheap online tree, every departure
// is rolled back exactly by its opaque session handle, and the periodically
// refreshed ε-feasible fair allocation is re-solved *incrementally* — a
// warm refresh repairs only the churned demand share instead of re-running
// the FPTAS for the whole population.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"overcast"
	"overcast/internal/churn"
	"overcast/internal/rng"
)

func main() {
	net, err := overcast.WaxmanNetwork(100, 100, 5)
	if err != nil {
		log.Fatal(err)
	}

	workload, err := churn.Generate(churn.Config{
		Nodes:        net.Nodes(),
		ArrivalRate:  1.5, // sessions per time unit
		MeanLifetime: 4,
		Horizon:      30,
		SizeMin:      3,
		SizeMax:      8,
		Demand:       1,
	}, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d sessions over %d events, peak concurrency %d\n",
		len(workload.Sessions), len(workload.Events), workload.PeakConcurrency())

	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer alloc.Close()

	// Replay the trace. Workload session index -> opaque session handle;
	// handles stay valid no matter how many earlier arrivals depart (the
	// deprecated index-based surface shifted meaning here).
	ids := make(map[int]overcast.SessionID, len(workload.Sessions))
	peakCongestion := 0.0
	for i, ev := range workload.Events {
		spec := workload.Sessions[ev.Session]
		switch ev.Kind {
		case churn.Join:
			p, err := alloc.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand})
			if err != nil {
				log.Fatal(err)
			}
			ids[ev.Session] = p.Session
		case churn.Leave:
			// Departures clipped to the horizon are sessions still alive at
			// trace end; keep them admitted so the final rebalance describes
			// the surviving population.
			if spec.Depart >= 30 {
				continue
			}
			if err := alloc.Leave(ids[ev.Session]); err != nil {
				log.Fatal(err)
			}
		}
		if c := alloc.MaxCongestion(); c > peakCongestion {
			peakCongestion = c
		}
		// Every few events, refresh the fair allocation. The refresh is
		// warm-started: catch-up for new arrivals, exact rollback for
		// departures, repair phases proportional to the churned demand.
		if (i+1)%8 == 0 && alloc.Active() > 0 {
			snap, err := alloc.Snapshot()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  event %3d: %2d active, fair throughput %8.2f\n",
				i+1, alloc.Active(), snap.OverallThroughput())
		}
	}
	fmt.Printf("replayed trace: peak link congestion at full demands %.3f\n", peakCongestion)
	fmt.Printf("sessions still active at the horizon: %d\n", alloc.Active())

	// Rebalance hands every surviving session its refreshed multi-tree set,
	// stamped with the allocator epoch it was computed at.
	placements, err := alloc.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range placements[:min(3, len(placements))] {
		fmt.Printf("  %v: fair rate %.3f across %d trees (epoch %d)\n",
			p.Session, p.Rate, len(p.Trees), p.Epoch)
	}
	st := alloc.Stats()
	fmt.Printf("refreshes: %d warm, %d cold (%d repair session-phases)\n",
		st.WarmRefreshes, st.ColdSolves, st.RepairPhases)

	// A second run that never processes departures shows what exact
	// rollback buys: congestion keeps piling up.
	noLeave, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer noLeave.Close()
	for _, ev := range workload.Events {
		if ev.Kind != churn.Join {
			continue
		}
		spec := workload.Sessions[ev.Session]
		if _, err := noLeave.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("without departures the same trace ends at congestion %.3f (%.1fx the churn run's peak)\n",
		noLeave.MaxCongestion(), noLeave.MaxCongestion()/peakCongestion)
}
