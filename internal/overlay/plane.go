package overlay

import (
	"sync"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// Plane is a shared store of single-source shortest-path (SSSP) rows — one
// Dijkstra distance/parent array pair per source node — computed under a
// length snapshot and read by many consumers. It exists because the paper's
// Sec. V arbitrary-routing oracle runs one Dijkstra per session member per
// MinTree call, while the batched phase rounds (PR 3) evaluate every pending
// session under a *single* length snapshot: when Zipf node popularity puts
// the same hot nodes in many sessions, the per-session oracles recompute
// identical SSSP trees dozens of times per round. Staging the union of the
// round's member sources on a plane converts that O(sessions x members)
// Dijkstra cost into O(distinct members).
//
// Since the length-ledger refactor the plane is additionally *persistent*
// across rounds: rows carry the ledger epoch they were filled at
// (FillEpoch/SetFillEpoch), and a batch driver holding a graph.LengthStore
// can prove a stored row is still exact without recomputing it — see
// BatchRunner's dirty-source repair. The proof obligation lives with the
// driver; the plane itself only stores the rows and their epochs.
//
// Determinism: a row's content is a pure function of (graph, source, length
// snapshot) — DijkstraScratch.ShortestPathsInto has deterministic tie-breaks
// and no shared mutable state — so distances and parent edges are bitwise
// identical whether a row is filled by stage-1 plane workers, by the
// sequential path, or inside a plane-oblivious MinTreeWith call. Plane
// on/off, repair on/off, and worker count therefore never change solver
// outputs.
//
// Lifecycle (one-shot consumers like the churn prefabrication): Reset, Stage
// each source, Fill, then read via Lookup. Staging and filling are
// single-goroutine operations except for FillRow, which may run concurrently
// for distinct rows; once filled, the plane is safe for any number of
// concurrent readers until the next mutation. Row storage is pooled across
// Reset cycles, so a round-loop reuses its buffers.
type Plane struct {
	g *graph.Graph
	// rowOf maps a node id to its row index in the current cycle (-1 when the
	// node is not staged). Only entries named by sources are ever non-negative,
	// so Reset clears in O(staged sources), not O(nodes).
	rowOf   []int32
	sources []graph.NodeID
	dists   [][]float64
	parents [][]graph.EdgeID
	// fillEpoch[row] is the ledger epoch the row's content corresponds to;
	// maintained by the batch driver (Fill/FillRow leave it to the caller,
	// which knows which ledger — if any — the lengths came from).
	fillEpoch []graph.Epoch
	// dijkstraEpoch[row] is the ledger epoch of the row's last *actual*
	// (re)computation — unlike fillEpoch it does not advance on repair
	// skips, so a consumer caching values derived from row reads (the batch
	// runner's tree cache) can tell "content provably unchanged" from
	// "content recomputed and possibly different".
	dijkstraEpoch []graph.Epoch
	// valid[row] marks the batch stamp the row was last filled or proven
	// current at; Lookup serves only rows validated in the current stamp, so
	// stale persistent rows can never leak into an oracle read.
	valid []uint32
	// refStamp[row] marks the batch stamp the row was last referenced at, so
	// Reference deduplicates within a batch in O(1).
	refStamp []uint32
	stamp    uint32

	// Inverted edge->rows index and the per-row dirt/exactness state it
	// feeds (see plane_index.go); idx is nil until EnableIndex. exact,
	// dirtyRoots and dirtyLost are maintained unconditionally
	// (they are cheap) but only consulted by index-driven classification.
	idx        *planeIndex
	exact      []bool
	dirtyRoots [][]graph.NodeID
	dirtyLost  []bool
	// maxDist[row] is the largest finite stored distance in the row (0 when
	// nothing reachable), maintained by every content write. It is the row
	// side of the subtree-repair scale-separation certificate: repair is
	// bit-exact only while every edge length exceeds the largest distance by
	// enough that float addition strictly grows every key (see
	// graph.LengthStore.MinLengthLB and rowScaleSafe).
	maxDist []float64
}

// NewPlane returns an empty plane over g. Row storage grows on first use and
// is retained across Reset cycles.
func NewPlane(g *graph.Graph) *Plane {
	rowOf := make([]int32, g.NumNodes())
	for i := range rowOf {
		rowOf[i] = -1
	}
	return &Plane{g: g, rowOf: rowOf, stamp: 1}
}

// Reset forgets every staged source, keeping row storage for reuse. With the
// inverted index enabled it additionally drops every index entry — row slots
// are reused across cycles, so a leftover entry could self-validate against a
// re-staged row's stale parent array. That makes Reset O(edges) instead of
// O(staged sources) for index-enabled planes; the only indexed consumer (the
// batch runner) resets solely on a ledger swap, where a full reclassification
// is due anyway.
func (p *Plane) Reset() {
	for _, s := range p.sources {
		p.rowOf[s] = -1
	}
	p.sources = p.sources[:0]
	if p.idx != nil {
		p.idx.clear()
	}
}

// BeginBatch opens a new validation stamp: rows validated before this call
// stop being served by Lookup until revalidated (Validate) or refilled.
// Persistent drivers call it once per batch; one-shot consumers never need
// it (Fill validates under the current stamp).
func (p *Plane) BeginBatch() {
	p.stamp++
	if p.stamp == 0 { // wrapped: no row may claim validity by accident
		for i := range p.valid {
			p.valid[i] = 0
		}
		p.stamp = 1
	}
}

// Stage registers src as a source, assigning it the next row, and reports
// whether it was new (false = already staged, the deduplication hit). Rows
// are assigned in first-staging order, which callers keep deterministic by
// staging in a canonical order. New rows start invalid with FillEpoch -1.
func (p *Plane) Stage(src graph.NodeID) bool {
	if p.rowOf[src] >= 0 {
		return false
	}
	row := len(p.sources)
	if row == len(p.dists) {
		n := p.g.NumNodes()
		p.dists = append(p.dists, make([]float64, n))
		p.parents = append(p.parents, make([]graph.EdgeID, n))
		p.fillEpoch = append(p.fillEpoch, -1)
		p.dijkstraEpoch = append(p.dijkstraEpoch, -1)
		p.valid = append(p.valid, 0)
		p.refStamp = append(p.refStamp, 0)
		p.exact = append(p.exact, false)
		p.dirtyRoots = append(p.dirtyRoots, nil)
		p.dirtyLost = append(p.dirtyLost, false)
		p.maxDist = append(p.maxDist, 0)
	}
	p.rowOf[src] = int32(row)
	p.sources = append(p.sources, src)
	p.fillEpoch[row] = -1
	p.dijkstraEpoch[row] = -1
	p.valid[row] = 0
	p.refStamp[row] = p.stamp
	p.exact[row] = false
	p.dirtyRoots[row] = p.dirtyRoots[row][:0]
	p.dirtyLost[row] = false
	p.maxDist[row] = 0
	return true
}

// Reference stages src if needed and reports its row plus whether this is
// the first reference within the current batch stamp — the batch driver's
// O(1) within-batch deduplication.
func (p *Plane) Reference(src graph.NodeID) (row int, first bool) {
	if p.rowOf[src] < 0 {
		p.Stage(src)
		return int(p.rowOf[src]), true
	}
	row = int(p.rowOf[src])
	if p.refStamp[row] == p.stamp {
		return row, false
	}
	p.refStamp[row] = p.stamp
	return row, true
}

// Row returns src's row index, or -1 if not staged.
func (p *Plane) Row(src graph.NodeID) int {
	return int(p.rowOf[src])
}

// Source returns the source node of row.
func (p *Plane) Source(row int) graph.NodeID { return p.sources[row] }

// NumSources returns the number of staged sources.
func (p *Plane) NumSources() int { return len(p.sources) }

// FillEpoch returns the ledger epoch row was filled at (-1 = never filled).
func (p *Plane) FillEpoch(row int) graph.Epoch { return p.fillEpoch[row] }

// SetFillEpoch records the ledger epoch row's content corresponds to. The
// batch driver advances it both on refill and when a repair check proves the
// content unchanged up to the current epoch.
func (p *Plane) SetFillEpoch(row int, epoch graph.Epoch) { p.fillEpoch[row] = epoch }

// DijkstraEpoch returns the ledger epoch of row's last actual computation
// (-1 = never computed under the current ledger).
func (p *Plane) DijkstraEpoch(row int) graph.Epoch { return p.dijkstraEpoch[row] }

// SetDijkstraEpoch records that row's content was (re)computed at epoch.
func (p *Plane) SetDijkstraEpoch(row int, epoch graph.Epoch) { p.dijkstraEpoch[row] = epoch }

// Validate marks row as current for the present stamp without refilling it —
// the repair fast path, only sound when the driver has proven the stored
// content equals what a fresh fill would produce.
func (p *Plane) Validate(row int) { p.valid[row] = p.stamp }

// ParentRow returns row's stored parent-edge array (the SSSP tree rooted at
// its source), for the driver's dirty-source intersection checks. The slice
// is plane-owned and must not be mutated.
func (p *Plane) ParentRow(row int) []graph.EdgeID { return p.parents[row] }

// FillRow computes row's SSSP arrays under d with sp's pooled heap and marks
// the row valid for the current stamp. Distinct rows may be filled
// concurrently (each touches only its own arrays); sp must be private to the
// calling goroutine. Validity stamps are written here (not content): each
// row's stamp slot is row-private, so concurrent fills do not race.
func (p *Plane) FillRow(row int, d graph.Lengths, sp *routing.DijkstraScratch) {
	sp.ShortestPathsInto(p.g, p.sources[row], d, p.dists[row], p.parents[row])
	p.maxDist[row] = maxFiniteDist(p.dists[row])
	p.valid[row] = p.stamp
}

// unreachableDist mirrors the routing package's unreachable sentinel: stored
// distances are either strictly below it (reachable) or exactly it.
const unreachableDist = 1e308

func maxFiniteDist(dist []float64) float64 {
	m := 0.0
	for _, v := range dist {
		if v > m && v < unreachableDist {
			m = v
		}
	}
	return m
}

// RepairRow incrementally repairs row's stored SSSP arrays under d by
// resuming Dijkstra over the stored subtrees below roots
// (routing.RepairSubtreesInto — the batch driver supplies the pending dirty
// roots and certifies the bit-identity preconditions), falling back to a full
// FillRow when the repair bails. minLen is the ledger's MinLengthLB: the
// driver gates repair on the scale-separation certificate against the
// distances the row held *before* the repair, but resettled subtrees only
// grow, so the certificate is re-checked here against the post-repair
// distances and the fallback refill runs if the grown row broke it. Either
// way the row ends valid for the current stamp and bitwise identical to a
// fresh fill. It returns the repaired node set appended to out and whether
// the subtree path succeeded (false = the fallback refill ran). Concurrency
// contract is FillRow's: distinct rows may repair concurrently, sp must be
// goroutine-private.
func (p *Plane) RepairRow(row int, d graph.Lengths, sp *routing.DijkstraScratch, minLen float64, roots, out []graph.NodeID) ([]graph.NodeID, bool) {
	repaired, ok := sp.RepairSubtreesInto(p.g, p.sources[row], d, p.dists[row], p.parents[row], roots, out)
	if ok {
		m := p.maxDist[row]
		for _, v := range repaired {
			if dv := p.dists[row][v]; dv > m && dv < unreachableDist {
				m = dv
			}
		}
		if scaleSafe(minLen, m) {
			p.maxDist[row] = m
		} else {
			ok = false
		}
	}
	if !ok {
		sp.ShortestPathsInto(p.g, p.sources[row], d, p.dists[row], p.parents[row])
		p.maxDist[row] = maxFiniteDist(p.dists[row])
	}
	p.valid[row] = p.stamp
	return repaired, ok
}

// scaleSafe is the scale-separation certificate: with every edge length at
// least minLen and every relevant key at most maxDist, minLen > maxDist*2^-50
// keeps each length at least a few ulps of any key it is added to, so every
// relaxation strictly grows its float key. That restores the equal-key
// determinism argument (routing.RepairSubtreesInto, step 3) that strict
// positivity alone cannot give: a length below half an ulp of a distance
// rounds away (dist+len == dist bitwise) and behaves like a zero-length edge.
func scaleSafe(minLen, maxDist float64) bool {
	return minLen > maxDist*0x1p-50
}

// CopyRow copies src's row content from seed (which must have it staged and
// filled) into row, marking it valid for the current stamp. It is the
// prestep seeding path: an O(n) memcpy instead of an O((n+m)log n) Dijkstra,
// sound exactly when the seed's rows were computed under bitwise-identical
// lengths. seed is only read, so many planes may copy from one seed
// concurrently.
func (p *Plane) CopyRow(row int, seed *Plane, src graph.NodeID) bool {
	srow := seed.rowOf[src]
	if srow < 0 {
		return false
	}
	copy(p.dists[row], seed.dists[srow])
	copy(p.parents[row], seed.parents[srow])
	p.maxDist[row] = seed.maxDist[srow]
	p.valid[row] = p.stamp
	return true
}

// Fill computes every staged row under d, fanning across at most workers
// goroutines (<=1 runs inline). It is the standalone entry point for
// one-shot consumers like the churn harness's oracle prefabrication;
// BatchRunner drives FillRow from its own persistent pool instead.
func (p *Plane) Fill(d graph.Lengths, workers int) {
	ns := len(p.sources)
	if ns == 0 {
		return
	}
	if workers > ns {
		workers = ns
	}
	if workers <= 1 {
		sp := routing.NewDijkstraScratch(p.g)
		for row := 0; row < ns; row++ {
			p.FillRow(row, d, sp)
		}
		return
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := routing.NewDijkstraScratch(p.g)
			for row := range jobs {
				p.FillRow(row, d, sp)
			}
		}()
	}
	for row := 0; row < ns; row++ {
		jobs <- row
	}
	close(jobs)
	wg.Wait()
}

// Lookup returns the SSSP row rooted at src, or ok=false when src is not
// staged or its row has not been filled/validated under the current stamp
// (so persistent-but-stale rows never serve a read). The returned slices are
// plane-owned: valid until the row is next refilled and must not be mutated.
func (p *Plane) Lookup(src graph.NodeID) (dist []float64, parent []graph.EdgeID, ok bool) {
	row := p.rowOf[src]
	if row < 0 || p.valid[row] != p.stamp {
		return nil, nil, false
	}
	return p.dists[row], p.parents[row], true
}

// Metrics aggregates shared-SSSP-plane counters over a consumer's lifetime
// (a BatchRunner's rounds, a churn prefabrication pass). The interesting
// ratios: PlaneRequests/PlaneSources (PlaneDedup) — how many per-member SSSP
// reads each *computed* Dijkstra row served; and PlaneSkipped relative to
// PlaneSkipped+PlaneSources — how often cross-round dirty-source repair
// proved a stored row current and skipped the Dijkstra entirely.
type Metrics struct {
	// PlaneRounds counts batch rounds that staged at least one plane row.
	PlaneRounds int
	// PlaneSources counts SSSP rows actually computed by Dijkstra (first
	// fills plus repairs, summed over rounds) — the misses.
	PlaneSources int
	// PlaneRequests counts per-member SSSP reads served from the plane
	// (every member of every plane-aware oracle evaluated in a round).
	PlaneRequests int
	// PlaneRepaired counts refills forced by the dirty-source check: a
	// ledger-touched edge intersected the row's stored SSSP tree, so the row
	// was recomputed. A subset of PlaneSources.
	PlaneRepaired int
	// PlaneSkipped counts refills avoided across rounds: the ledger proved
	// no touched edge could alter the row, so the stored content was served
	// as-is (no Dijkstra at all).
	PlaneSkipped int
	// PlaneSeeded counts rows copied from a prestep seed plane (shared
	// cross-subproblem rows under the common initial lengths) instead of
	// computed.
	PlaneSeeded int
	// PlaneTreeHits counts whole oracle evaluations served from the tree
	// cache: every member row of the session was proven unchanged since the
	// tree was assembled, so Prim and route extraction were skipped along
	// with the Dijkstras.
	PlaneTreeHits int
	// PlaneNonMonotone counts rows degraded from the skip/repair fast path
	// to a full refill because the ledger reported a non-monotone window
	// (MonotoneSince=false): some length shrank since the row's fill epoch —
	// an underlay recovery or drift-down mirrored into the ledger — so the
	// stored SSSP tree cannot be proven exact by touched-edge intersection
	// alone and is recomputed from scratch.
	PlaneNonMonotone int
	// PlaneSubtreeRepaired counts rows repaired by subtree-scoped Dijkstra
	// resumption (routing.RepairSubtreesInto) instead of a full refill: only
	// the stored subtrees below the touched tree edges were recomputed, the
	// rest of the row was certified bitwise exact in place. Counted toward
	// PlaneSources (a resumed Dijkstra still ran), disjoint from
	// PlaneRepaired (full refills, including subtree bail-outs).
	PlaneSubtreeRepaired int
	// PlaneSubtreeNodes sums the invalidated-subtree sizes |S| over all
	// subtree repairs; PlaneSubtreeNodes / (PlaneSubtreeRepaired x n) is the
	// fraction of a row an average subtree repair actually recomputed.
	PlaneSubtreeNodes int
}

// PlaneDedup returns PlaneRequests/PlaneSources, the average number of oracle
// member reads served per Dijkstra computed (1 when the plane never fired).
func (m Metrics) PlaneDedup() float64 {
	if m.PlaneSources == 0 {
		return 1
	}
	return float64(m.PlaneRequests) / float64(m.PlaneSources)
}

// PlaneHitRate returns the fraction of member reads that did not trigger a
// Dijkstra: 1 - sources/requests (0 when the plane never fired).
func (m Metrics) PlaneHitRate() float64 {
	if m.PlaneRequests == 0 {
		return 0
	}
	return 1 - float64(m.PlaneSources)/float64(m.PlaneRequests)
}

// RepairRate returns the fraction of cross-round row revalidations resolved
// without a full Dijkstra: (skipped+subtree)/(skipped+subtree+repaired)
// (0 when repair never ran). Subtree repairs count as resolved — the full
// refill was avoided — even though a partial Dijkstra ran.
func (m Metrics) RepairRate() float64 {
	resolved := m.PlaneSkipped + m.PlaneSubtreeRepaired
	if resolved+m.PlaneRepaired == 0 {
		return 0
	}
	return float64(resolved) / float64(resolved+m.PlaneRepaired)
}

// Merge adds o's counters into m (for folding per-subsolve metrics into an
// aggregate, e.g. the MCF beta prestep's per-session MaxFlows).
func (m *Metrics) Merge(o Metrics) {
	m.PlaneRounds += o.PlaneRounds
	m.PlaneSources += o.PlaneSources
	m.PlaneRequests += o.PlaneRequests
	m.PlaneRepaired += o.PlaneRepaired
	m.PlaneSkipped += o.PlaneSkipped
	m.PlaneSeeded += o.PlaneSeeded
	m.PlaneTreeHits += o.PlaneTreeHits
	m.PlaneNonMonotone += o.PlaneNonMonotone
	m.PlaneSubtreeRepaired += o.PlaneSubtreeRepaired
	m.PlaneSubtreeNodes += o.PlaneSubtreeNodes
}
