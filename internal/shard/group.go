package shard

import (
	"sync"
	"time"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// Options configures a Group beyond the oracle set.
type Options struct {
	// Shards is the shard count; values below 1 are clamped to 1.
	Shards int
	// Labels optionally assigns each node a partition label (e.g.
	// topology.Network.ASOf); shards group whole labels via ByLabels. Nil
	// falls back to contiguous node ranges (ByRange).
	Labels []int
	// Workers is each shard's oracle worker-pool size (the per-shard
	// overlay.BatchOptions.Workers); a Group therefore runs up to
	// Shards×Workers oracle workers in total.
	Workers int
	// SharedPlane/DisableRepair/DisableSubtreeRepair/Dynamic forward to
	// every shard's BatchRunner (see overlay.BatchOptions). Each shard owns
	// its own plane over its own ledger replica, so dirty-source repair —
	// including subtree repair — stays shard-local.
	SharedPlane          bool
	DisableRepair        bool
	DisableSubtreeRepair bool
	Dynamic              bool
	// Trace, when set, observes every cut-edge PriceMsg in delivery order —
	// the exchange-sequence hook the golden boundary test pins. Called on
	// the coordinator goroutine, between batches.
	Trace func(PriceMsg)
}

// roundReq is one coordinator→shard message: a replica synchronization
// payload (price messages diffed from the authoritative journal, or a full
// snapshot when the diff is unavailable) plus the implicit instruction to
// evaluate the shard's pre-published batch slice.
type roundReq struct {
	msgs     []PriceMsg
	snapshot graph.Lengths // non-nil: rebuild the replica from this
	wantLen  bool
}

// shardWorker is one shard: a goroutine owning a full-graph length replica
// and a BatchRunner over the oracles homed to the shard. Only msgs/snapshot
// cross the channel; ids and res are published around it via the Group's
// WaitGroup barrier.
type shardWorker struct {
	group   *Group
	runner  *overlay.BatchRunner
	replica *graph.LengthStore
	req     chan roundReq

	// Per-round, written by the coordinator before the req send: the
	// runner-local oracle ids to evaluate and their global batch positions.
	ids []int
	pos []int
	// res is the shard's result slice for the round (aliases the runner's
	// reused slice), written by the worker and read by the coordinator after
	// the round barrier.
	res []overlay.BatchResult
}

func (w *shardWorker) loop() {
	for req := range w.req {
		if req.snapshot != nil {
			vals := make(graph.Lengths, len(req.snapshot))
			copy(vals, req.snapshot)
			w.replica = graph.NewLengthStoreFrom(vals)
		} else {
			for _, m := range req.msgs {
				// Raise journals the sync as monotone unless the price
				// actually shrank, so the shard plane's repair window
				// survives the exchange (see graph.LengthStore.Raise).
				w.replica.Raise(m.CutEdge, m.Length)
			}
		}
		if len(w.ids) > 0 {
			if req.wantLen {
				w.res = w.runner.MinTreesLen(w.replica, w.ids)
			} else {
				w.res = w.runner.MinTrees(w.replica, w.ids)
			}
		} else {
			w.res = nil
		}
		w.group.wg.Done()
	}
	w.runner.Close()
}

// Group evaluates oracle batches across per-AS shards behind an explicit
// price-message boundary. It exposes the same batch surface as
// overlay.BatchRunner (MinTrees/MinTreesLen/AddOracle/Metrics/Close,
// including the result-slice reuse contract), so the core phase loops treat
// the two interchangeably.
//
// Determinism: every shard evaluates its oracles against a replica holding
// bitwise the authoritative prices (absolute-value PriceMsg sync), each
// oracle's result lands in its fixed batch slot, and the coordinator reduces
// shard results in canonical (shard, session-id) order behind a WaitGroup
// barrier — so neither the shard count nor scheduling can change what a
// caller observes, and sharded output is bit-identical to unsharded.
type Group struct {
	g       *graph.Graph
	layout  *Layout
	workers []*shardWorker
	opts    Options

	// homes[i] is global oracle i's shard (the home of its session's first
	// member); local[i] its runner-local id within that shard.
	homes []int
	local []int

	// out is the group-owned batch result slice, reused per round like
	// BatchRunner's.
	out []overlay.BatchResult

	// Authoritative-ledger diff state: the ledger and epoch of the previous
	// sync, plus a per-edge round stamp used to deduplicate the journal into
	// final-value messages in first-touch order.
	lastStore *graph.LengthStore
	lastSync  graph.Epoch
	seen      []int
	round     int
	msgs      []PriceMsg

	wg     sync.WaitGroup
	stats  Stats
	closed bool
}

// NewGroup builds a sharded group over oracles. Each oracle is homed to the
// shard of its session's first member; shard evaluation replicates the full
// graph, so sessions spanning ASes still route globally — only the oracle
// *evaluation* is partitioned.
func NewGroup(g *graph.Graph, oracles []overlay.TreeOracle, opts Options) *Group {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	var part Partition
	if len(opts.Labels) == g.NumNodes() && g.NumNodes() > 0 {
		part = ByLabels(opts.Labels, opts.Shards)
	} else {
		part = ByRange(g.NumNodes(), opts.Shards)
	}
	gp := &Group{
		g:      g,
		layout: NewLayout(g, part),
		opts:   opts,
		seen:   make([]int, len(g.Edges)),
		out:    make([]overlay.BatchResult, len(oracles)),
	}
	gp.stats.Shards = opts.Shards
	gp.stats.Rounds = make([]int, opts.Shards)
	perShard := make([][]overlay.TreeOracle, opts.Shards)
	gp.homes = make([]int, len(oracles))
	gp.local = make([]int, len(oracles))
	for i, o := range oracles {
		s := part.Of[o.Session().Members[0]]
		gp.homes[i] = s
		gp.local[i] = len(perShard[s])
		perShard[s] = append(perShard[s], o)
	}
	gp.workers = make([]*shardWorker, opts.Shards)
	for s := range gp.workers {
		w := &shardWorker{
			group: gp,
			runner: overlay.NewBatchRunnerOpts(g, perShard[s], overlay.BatchOptions{
				Workers:              opts.Workers,
				SharedPlane:          opts.SharedPlane,
				DisableRepair:        opts.DisableRepair,
				DisableSubtreeRepair: opts.DisableSubtreeRepair,
				Dynamic:              opts.Dynamic,
			}),
			req: make(chan roundReq),
		}
		gp.workers[s] = w
		go w.loop()
	}
	return gp
}

// Shards returns the shard count.
func (gp *Group) Shards() int { return gp.opts.Shards }

// Workers returns the per-shard worker-pool size requested at construction.
func (gp *Group) Workers() int { return gp.opts.Workers }

// Layout returns the group's partition layout (read-only).
func (gp *Group) Layout() *Layout { return gp.layout }

// AddOracle appends an oracle, homing it to its session's shard, and returns
// its group-wide id. Same contract as BatchRunner.AddOracle: call between
// batches only.
func (gp *Group) AddOracle(o overlay.TreeOracle) int {
	id := len(gp.homes)
	s := gp.layout.Part.Of[o.Session().Members[0]]
	gp.homes = append(gp.homes, s)
	gp.local = append(gp.local, gp.workers[s].runner.AddOracle(o))
	gp.out = append(gp.out, overlay.BatchResult{})
	return id
}

// MinTrees evaluates the oracles named by ids (nil = all) under ls's current
// lengths; see overlay.BatchRunner.MinTrees for the result contract (the
// returned slice is reused by the next call; trees are immutable).
func (gp *Group) MinTrees(ls *graph.LengthStore, ids []int) []overlay.BatchResult {
	return gp.run(ls, ids, false)
}

// MinTreesLen is MinTrees with each result's Len filled.
func (gp *Group) MinTreesLen(ls *graph.LengthStore, ids []int) []overlay.BatchResult {
	return gp.run(ls, ids, true)
}

func (gp *Group) run(ls *graph.LengthStore, ids []int, wantLen bool) []overlay.BatchResult {
	n := len(gp.homes)
	if ids != nil {
		n = len(ids)
	}

	// Diff the authoritative journal since the last sync into final-value
	// price messages, deduplicated in first-touch order (deterministic). A
	// ledger swap or a lost journal window downgrades to a full snapshot
	// resync; replicas then start a fresh store, which also resets their
	// planes (BatchRunner's ledger-swap detection).
	req := roundReq{wantLen: wantLen}
	full := ls != gp.lastStore
	if !full {
		gp.round++
		gp.msgs = gp.msgs[:0]
		if !ls.ForEachTouched(gp.lastSync, func(e graph.EdgeID) bool {
			if gp.seen[e] != gp.round {
				gp.seen[e] = gp.round
				gp.msgs = append(gp.msgs, PriceMsg{Epoch: ls.LastTouched(e), CutEdge: e, Length: ls.At(e)})
			}
			return false
		}) {
			// The journal window no longer covers the last sync epoch: a
			// mutation burst (an underlay fault sweep) outran the window, so
			// the diff is unreplayable and every replica must resync from a
			// full snapshot.
			full = true
			gp.stats.FaultResyncs += len(gp.workers)
		}
	}
	cut := 0
	if full {
		req.snapshot = ls.Values()
		gp.stats.Resyncs += len(gp.workers)
	} else {
		req.msgs = gp.msgs
		for _, m := range gp.msgs {
			if gp.layout.Owner[m.CutEdge] < 0 {
				cut++
				if gp.opts.Trace != nil {
					gp.opts.Trace(m)
				}
			}
		}
	}
	gp.stats.ExchangeRounds++
	gp.stats.Msgs += len(req.msgs) * len(gp.workers)
	gp.stats.CutMsgs += cut * len(gp.workers)
	gp.stats.ExchangeBytes += int64(cut*len(gp.workers)) * priceMsgWireBytes

	// Assign batch slots to shards in batch order, so each shard's slice —
	// and hence the reduce below — is ordered by (shard, session id).
	for _, w := range gp.workers {
		w.ids = w.ids[:0]
		w.pos = w.pos[:0]
	}
	for pos := 0; pos < n; pos++ {
		i := pos
		if ids != nil {
			i = ids[pos]
		}
		w := gp.workers[gp.homes[i]]
		w.ids = append(w.ids, gp.local[i])
		w.pos = append(w.pos, pos)
	}
	for s, w := range gp.workers {
		if len(w.ids) > 0 {
			gp.stats.Rounds[s]++
		}
	}

	// Every shard gets the sync (idle replicas stay current, keeping the
	// next diff bounded); the WaitGroup is the round barrier.
	gp.wg.Add(len(gp.workers))
	for _, w := range gp.workers {
		w.req <- req
	}
	gp.wg.Wait()

	// Reduce: merge shard results back into batch order. The loop visits
	// shards ascending and each shard's slots ascending — canonical (shard,
	// session-id) order — so the merge is schedule-independent.
	start := time.Now()
	for _, w := range gp.workers {
		for j, pos := range w.pos {
			gp.out[pos] = w.res[j]
		}
	}
	gp.stats.ReduceNanos += time.Since(start).Nanoseconds()

	gp.lastStore = ls
	gp.lastSync = ls.Epoch()
	return gp.out[:n]
}

// Metrics returns the per-shard plane counters summed across shards.
func (gp *Group) Metrics() overlay.Metrics {
	var m overlay.Metrics
	for _, w := range gp.workers {
		m.Merge(w.runner.Metrics())
	}
	return m
}

// Stats returns a snapshot of the group's exchange/reduce counters.
func (gp *Group) Stats() Stats {
	s := gp.stats
	s.Rounds = append([]int(nil), gp.stats.Rounds...)
	return s
}

// Close shuts the shard goroutines down (each closes its own runner). The
// group must not be used afterwards; Close is idempotent.
func (gp *Group) Close() {
	if gp.closed {
		return
	}
	gp.closed = true
	for _, w := range gp.workers {
		close(w.req)
	}
}
