package overcast

import (
	"fmt"
	"time"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/routing"
	"overcast/internal/underlay"
)

// SessionID is an opaque handle for a session admitted by an Allocator. The
// zero value is invalid; handles are never reused, so a departed session's
// handle keeps failing cleanly instead of silently addressing a later
// arrival (the failure mode of the deprecated arrival-index surface).
type SessionID struct {
	n uint64 // 1 + arrival slot; 0 = invalid
}

// Valid reports whether the handle was issued by an Allocator.
func (id SessionID) Valid() bool { return id.n != 0 }

// String renders the handle for logs.
func (id SessionID) String() string {
	if id.n == 0 {
		return "session(invalid)"
	}
	return fmt.Sprintf("session(%d)", id.n-1)
}

// AllocatorOptions configures an Allocator. The zero value is usable: hop- or
// delay-based fixed IP routing, mu=30, epsilon=0.1, GOMAXPROCS workers,
// shared SSSP plane and cross-round repair on, unbounded repair budget.
type AllocatorOptions struct {
	// Mu is the online step size (Table VI); 0 means 30, negative is an
	// error. Values near the expected per-session rate work well.
	Mu float64
	// Epsilon is the FPTAS error parameter for Snapshot/Rebalance
	// allocations, in (0, 0.5]; 0 means 0.1.
	Epsilon float64
	// Routing selects fixed IP routes or arbitrary (dynamic shortest-path)
	// routing for every session's trees.
	Routing Routing
	// Workers sets the solver worker-pool size (0 = GOMAXPROCS). Outputs
	// are bit-identical for every worker count.
	Workers int
	// DisablePlane turns off the shared SSSP plane; DisableRepair turns off
	// its cross-round dirty-source repair; DisableSubtreeRepair turns off
	// repair's incremental subtree path, leaving the original
	// skip-or-full-refill behavior. Outputs are bit-identical either way;
	// the toggles exist for the determinism gate and perf comparisons.
	DisablePlane         bool
	DisableRepair        bool
	DisableSubtreeRepair bool
	// RepairPhaseBudget bounds the warm repair work per Snapshot/Rebalance,
	// in session-phases: 0 = unbounded (a warm refresh always completes),
	// positive = fall back to a cold re-solve when exceeded, negative =
	// always re-solve cold (the baseline warm-start is measured against).
	RepairPhaseBudget int
	// Shards runs Snapshot/Rebalance oracle rounds on that many solver
	// shards behind an explicit price-exchange boundary, partitioned by the
	// network's AS labels when it has them (two-level topologies) and by
	// contiguous node ranges otherwise. 0 = unsharded. Outputs are
	// bit-identical for every shard count; the boundary exists for memory
	// locality and for a future distributed transport. Workers sizes each
	// shard's oracle pool.
	Shards int
}

// OverlayTree is an immutable view of one overlay tree with its allocated
// rate.
//
// Aliasing contract (mirroring overlay.BatchResult): the slices returned by
// Pairs and Members are owned by the OverlayTree and must not be modified;
// they stay valid (and bitwise intact) indefinitely. Successive calls may
// return the same backing arrays — callers needing a private copy must make
// one.
type OverlayTree struct {
	pairs   [][2]int
	members []int
	rate    float64
	hops    int
}

// Pairs returns the overlay edges as (i,j) member-index pairs with i<j,
// sorted lexicographically. The slice must not be modified.
func (t OverlayTree) Pairs() [][2]int { return t.pairs }

// Members returns the session's member nodes; pair indices index this slice,
// and Members()[0] is the source. The slice must not be modified.
func (t OverlayTree) Members() []int { return t.members }

// Rate returns the flow carried by this tree.
func (t OverlayTree) Rate() float64 { return t.rate }

// PhysicalHops returns the total physical link traversals Σ_e n_e(t).
func (t OverlayTree) PhysicalHops() int { return t.hops }

// Placement is the epoch-stamped outcome of a Join or Rebalance for one
// session: the tree(s) it is assigned and its current feasible rate.
type Placement struct {
	// Session identifies the placed session.
	Session SessionID
	// Epoch is the allocator epoch the placement was computed at; a
	// placement with a lower epoch than another is stale relative to it.
	Epoch uint64
	// Tree is the session's primary tree: the online placement tree at
	// Join, the highest-rate tree of the refreshed allocation at Rebalance.
	Tree OverlayTree
	// Trees lists every tree carrying flow for the session (just Tree at
	// Join; the refreshed multi-tree set at Rebalance).
	Trees []OverlayTree
	// Rate is the session's feasible rate under the placement.
	Rate float64
}

// PlaneStats exposes the shared-SSSP-plane counters of the solver stack (the
// internal overlay metrics plane) on the public surface, so daemons and
// library users can read cache effectiveness without internal imports. All
// counters accumulate over the allocator's lifetime.
type PlaneStats struct {
	// Rounds counts batch rounds that staged at least one plane row.
	Rounds int
	// Sources counts SSSP rows actually computed by Dijkstra (first fills
	// plus repairs) — the misses.
	Sources int
	// Requests counts per-member SSSP reads served from the plane.
	Requests int
	// Repaired counts row refills forced by the cross-round dirty-source
	// check; Skipped counts refills it proved unnecessary (no Dijkstra at
	// all); Seeded counts rows copied from a prestep seed plane.
	Repaired, Skipped, Seeded int
	// SubtreeRepaired counts rows revalidated by an incremental subtree
	// repair (a resumed Dijkstra over just the dirty subtrees) instead of a
	// full refill; SubtreeNodes totals the nodes those repairs resettled —
	// SubtreeNodes/SubtreeRepaired is the mean repaired-region size.
	SubtreeRepaired, SubtreeNodes int
	// TreeHits counts whole oracle evaluations served from the tree cache.
	TreeHits int
	// NonMonotoneRefills counts rows degraded from the skip/repair fast path
	// to a full refill because a length shrink (an underlay recovery or
	// downward drift mirrored into the length ledger) made the cached content
	// unprovable.
	NonMonotoneRefills int
}

// Dedup returns Requests/Sources, the average number of member reads served
// per Dijkstra computed (1 when the plane never fired).
func (p PlaneStats) Dedup() float64 {
	if p.Sources == 0 {
		return 1
	}
	return float64(p.Requests) / float64(p.Sources)
}

// HitRate returns the fraction of member reads that did not trigger a
// Dijkstra (0 when the plane never fired).
func (p PlaneStats) HitRate() float64 {
	if p.Requests == 0 {
		return 0
	}
	return 1 - float64(p.Sources)/float64(p.Requests)
}

// RepairRate returns the fraction of cross-round row revalidations resolved
// without a full Dijkstra — skipped outright or subtree-repaired:
// (Skipped+SubtreeRepaired)/(Skipped+SubtreeRepaired+Repaired) (0 when
// repair never ran).
func (p PlaneStats) RepairRate() float64 {
	resolved := p.Skipped + p.SubtreeRepaired
	if resolved+p.Repaired == 0 {
		return 0
	}
	return float64(resolved) / float64(resolved+p.Repaired)
}

// ShardStats exposes the sharded solver's price-exchange counters (zero when
// AllocatorOptions.Shards is 0). All counters accumulate over the allocator's
// lifetime.
type ShardStats struct {
	// Shards is the configured shard count.
	Shards int
	// Rounds[s] counts the oracle-evaluation rounds shard s actually ran
	// (rounds where at least one of its homed sessions was in the batch).
	Rounds []int
	// ExchangeRounds counts price-synchronization rounds (one per oracle
	// batch).
	ExchangeRounds int
	// Msgs counts price messages applied to shard replicas; CutMsgs is the
	// subset concerning partition-cut edges — the messages a distributed
	// transport would actually have to ship.
	Msgs, CutMsgs int
	// ExchangeBytes estimates the encoded size of the cut-edge traffic.
	ExchangeBytes int64
	// Resyncs counts full-snapshot replica rebuilds.
	Resyncs int
	// FaultResyncs is the subset of Resyncs forced by journal window loss: a
	// mutation burst (e.g. an underlay fault sweep) outran the ledger journal
	// between exchange rounds, so the diff was unreplayable and replicas were
	// rebuilt from full snapshots.
	FaultResyncs int
	// ReduceTime is the time spent merging shard results back into
	// canonical (shard, session-id) order.
	ReduceTime time.Duration
}

// AllocatorStats counts an Allocator's work.
type AllocatorStats struct {
	// Joins and Leaves count successfully processed events.
	Joins, Leaves int
	// ColdSolves counts full MaxConcurrentFlow re-solves behind
	// Snapshot/Rebalance; WarmRefreshes counts refreshes served by
	// warm-start incremental repair instead.
	ColdSolves, WarmRefreshes int
	// WarmFallbacks counts refreshes that attempted warm repair and fell
	// back to a cold solve mid-way (RepairPhaseBudget exhausted, or every
	// anchored session departed). Scheduled re-anchors are not fallbacks.
	WarmFallbacks int
	// RepairPhases counts session-phases routed by warm repair.
	RepairPhases int
	// MSTOps counts spanning-tree computations across joins, anchors and
	// repair (the paper's running-time unit).
	MSTOps int
	// UnderlayEvents counts underlay fault mutations (link failure/recovery,
	// capacity drift) applied through Fault. Each one latches a cold re-solve
	// for the next Snapshot/Rebalance.
	UnderlayEvents int
	// Plane aggregates the shared-SSSP-plane counters across anchors, warm
	// repair, and online joins.
	Plane PlaneStats
	// Shards aggregates the sharded solver's price-exchange counters (zero
	// when sharding is off).
	Shards ShardStats
}

// Allocator is the v2 session-handle surface over the online + warm-start
// allocation stack. Join admits a session immediately with a single online
// tree (Table VI — cheap, never reroutes incumbents); Snapshot and Rebalance
// maintain a competing ε-feasible MaxConcurrentFlow allocation that is
// re-solved incrementally under churn: joins are caught up to the anchored
// fair share and departures are rolled back exactly, with a bounded number
// of repair phases restoring the Garg–Könemann stop criterion, falling back
// to a cold solve only when the repair budget is exhausted or the length
// ledger reports non-monotone drift.
//
// An Allocator is not safe for concurrent use. Close releases the repair
// worker pool when the allocator is no longer needed.
type Allocator struct {
	net     *Network
	opts    AllocatorOptions
	weights graph.Lengths
	online  *core.Online
	warm    *core.Warm
	faults  *underlay.State // lazily created on the first Fault
	nextID  int
	demands []float64
	epoch   uint64
	closed  bool
}

// NewAllocator creates an allocator over net.
func NewAllocator(net *Network, opts AllocatorOptions) (*Allocator, error) {
	if net == nil {
		return nil, fmt.Errorf("overcast: nil network")
	}
	if opts.Mu < 0 {
		return nil, fmt.Errorf("overcast: online step size mu=%v must be positive", opts.Mu)
	}
	if opts.Mu == 0 {
		opts.Mu = 30
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.1
	}
	if opts.Epsilon < 0 || opts.Epsilon > 0.5 {
		return nil, fmt.Errorf("overcast: epsilon %v outside (0, 0.5]", opts.Epsilon)
	}
	online, err := core.NewOnline(net.inner.Graph, opts.Mu)
	if err != nil {
		return nil, err
	}
	var weights graph.Lengths
	if len(net.inner.Pos) == net.inner.Graph.NumNodes() && len(net.inner.Pos) > 0 {
		weights = net.inner.LinkDelays()
	}
	mode := core.RoutingIP
	if opts.Routing == RoutingArbitrary {
		mode = core.RoutingArbitrary
	}
	warm, err := core.NewWarm(net.inner.Graph, mode, weights, core.WarmOptions{
		Epsilon: opts.Epsilon, Workers: opts.Workers,
		DisablePlane: opts.DisablePlane, DisableRepair: opts.DisableRepair,
		DisableSubtreeRepair: opts.DisableSubtreeRepair,
		RepairPhaseBudget:    opts.RepairPhaseBudget,
		Shards:               opts.Shards, ShardLabels: net.inner.ASOf,
	})
	if err != nil {
		return nil, err
	}
	return &Allocator{net: net, opts: opts, weights: weights, online: online, warm: warm}, nil
}

// slot resolves a handle to its arrival slot, without liveness checks.
func (a *Allocator) slot(id SessionID) (int, error) {
	if id.n == 0 || int(id.n) > a.nextID {
		return -1, fmt.Errorf("overcast: %v was not issued by this allocator", id)
	}
	return int(id.n) - 1, nil
}

// Join admits a session: it is assigned a single overlay tree immediately
// and permanently under the online algorithm (incumbents are never
// rerouted), and becomes part of the next Snapshot/Rebalance allocation.
// The returned placement carries the session's handle, the online tree, and
// the session's current feasible rate under the online population.
func (a *Allocator) Join(s Session) (Placement, error) {
	if a.closed {
		return Placement{}, fmt.Errorf("overcast: allocator is closed")
	}
	os, err := overlay.NewSession(a.nextID, s.Members, s.Demand)
	if err != nil {
		return Placement{}, err
	}
	g := a.net.inner.Graph
	var oracle overlay.TreeOracle
	if a.opts.Routing == RoutingArbitrary {
		// The dynamic oracle routes under the allocator's lengths; building a
		// fixed route table for it would be wasted Dijkstra work per join.
		oracle, err = overlay.NewArbitraryOracle(g, os)
	} else {
		var rt *routing.IPRoutes
		if a.weights != nil {
			rt = routing.NewWeightedIPRoutes(g, os.Members, a.weights)
		} else {
			rt = routing.NewIPRoutes(g, os.Members)
		}
		oracle, err = overlay.NewFixedOracle(g, rt, os)
	}
	if err != nil {
		return Placement{}, err
	}
	tree, err := a.online.Join(oracle)
	if err != nil {
		return Placement{}, err
	}
	if err := a.warm.Join(os, oracle); err != nil {
		return Placement{}, err
	}
	slot := a.nextID
	a.nextID++
	a.demands = append(a.demands, s.Demand)
	a.epoch++
	id := SessionID{n: uint64(slot) + 1}
	rate, _ := a.SessionRate(id)
	ot := a.overlayTree(tree.Pairs, os.Members, rate, tree.TotalHops())
	return Placement{Session: id, Epoch: a.epoch, Tree: ot, Trees: []OverlayTree{ot}, Rate: rate}, nil
}

// overlayTree builds an immutable tree view with private copies.
func (a *Allocator) overlayTree(pairs [][2]int, members []graph.NodeID, rate float64, hops int) OverlayTree {
	p := make([][2]int, len(pairs))
	copy(p, pairs)
	m := make([]int, len(members))
	copy(m, members)
	return OverlayTree{pairs: p, members: m, rate: rate, hops: hops}
}

// Leave removes a session by handle: its online tree is torn down with the
// length inflation rolled back exactly, and the warm allocation releases
// (and later re-packs) its flow. Departed or foreign handles are errors.
func (a *Allocator) Leave(id SessionID) error {
	if a.closed {
		return fmt.Errorf("overcast: allocator is closed")
	}
	slot, err := a.slot(id)
	if err != nil {
		return err
	}
	if err := a.online.Leave(slot); err != nil {
		return err
	}
	if err := a.warm.Leave(slot); err != nil {
		return err
	}
	a.epoch++
	return nil
}

// SessionRate returns the feasible rate of the session under the current
// online population: demand divided by the session's maximum link
// congestion. Rates shrink as competing sessions join and recover when they
// leave. A departed or foreign handle is an error.
func (a *Allocator) SessionRate(id SessionID) (float64, error) {
	slot, err := a.slot(id)
	if err != nil {
		return 0, err
	}
	if !a.warm.Active(slot) {
		return 0, fmt.Errorf("overcast: %v has left", id)
	}
	if l := a.online.SessionMaxCongestion(slot); l > 0 {
		return a.demands[slot] / l, nil
	}
	return a.demands[slot], nil
}

// Snapshot returns the current ε-feasible max-min fair allocation over the
// active sessions (reindexed densely in arrival order), refreshing it
// incrementally first: warm-start catch-up and repair phases when the ledger
// allows, a cold re-solve otherwise. Calling Snapshot with no active
// sessions is an error.
func (a *Allocator) Snapshot() (*Allocation, error) {
	if a.closed {
		return nil, fmt.Errorf("overcast: allocator is closed")
	}
	sol, err := a.warm.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Allocation{sol: sol}, nil
}

// Rebalance refreshes the fair allocation (exactly like Snapshot) and
// returns one epoch-stamped placement per active session, in arrival order:
// the refreshed multi-tree set, the highest-rate tree as the primary, and
// the session's fair rate.
func (a *Allocator) Rebalance() ([]Placement, error) {
	if a.closed {
		return nil, fmt.Errorf("overcast: allocator is closed")
	}
	sol, err := a.warm.Snapshot()
	if err != nil {
		return nil, err
	}
	a.epoch++
	out := make([]Placement, 0, len(sol.Sessions))
	dense := 0
	for slot := 0; slot < a.nextID; slot++ {
		if !a.warm.Active(slot) {
			continue
		}
		sess := sol.Sessions[dense]
		trees := make([]OverlayTree, 0, len(sol.Flows[dense]))
		best := 0
		for _, tf := range sol.Flows[dense] {
			if tf.Rate <= 0 {
				continue
			}
			trees = append(trees, a.overlayTree(tf.Tree.Pairs, sess.Members, tf.Rate, tf.Tree.TotalHops()))
			if tf.Rate > trees[best].rate {
				best = len(trees) - 1
			}
		}
		p := Placement{
			Session: SessionID{n: uint64(slot) + 1},
			Epoch:   a.epoch,
			Rate:    sol.SessionRate(dense),
		}
		if len(trees) > 0 {
			p.Tree = trees[best]
			p.Trees = trees
		}
		out = append(out, p)
		dense++
	}
	return out, nil
}

// FaultKind selects the underlay mutation a LinkFault applies.
type FaultKind int

const (
	// FaultLinkDown fails a link: its capacity collapses to a vanishing
	// fraction of the healthy value (it stays routable at effectively zero
	// rate, keeping dual prices finite). Overlapping failures nest: a link
	// downed twice needs two recoveries.
	FaultLinkDown FaultKind = iota
	// FaultLinkUp recovers a previously failed link, restoring the capacity
	// implied by its healthy base and accumulated drift. Recovering a healthy
	// link is a no-op.
	FaultLinkUp
	// FaultDrift multiplies the link's healthy capacity by Factor (> 0),
	// modelling available-bandwidth drift. Drift composes with failures: it
	// adjusts the capacity the next recovery restores.
	FaultDrift
)

// String names the kind for logs.
func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultDrift:
		return "drift"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// LinkFault is one underlay fault event addressed by physical link endpoints.
type LinkFault struct {
	// From and To name the link's endpoint nodes (order-insensitive).
	From, To int
	// Kind selects the mutation; Factor is only read for FaultDrift.
	Kind   FaultKind
	Factor float64
}

// Fault applies an underlay fault to the network and returns the link's
// resulting capacity. The capacity change is mirrored onto the live length
// ledger (capacity and dual price move inversely: a failure is a monotone
// price growth, a recovery a non-monotone shrink, which downstream consumers
// detect via the ledger's monotonicity tracking), and the next
// Snapshot/Rebalance re-solves from cold — fault arithmetic invalidates the
// warm anchor. A redundant event (recovering a healthy link) still returns
// the current capacity but mutates nothing. Unknown links are errors.
func (a *Allocator) Fault(f LinkFault) (float64, error) {
	if a.closed {
		return 0, fmt.Errorf("overcast: allocator is closed")
	}
	g := a.net.inner.Graph
	e, ok := g.EdgeBetween(f.From, f.To)
	if !ok {
		return 0, fmt.Errorf("overcast: no link between nodes %d and %d", f.From, f.To)
	}
	ev := underlay.Event{Edge: e}
	switch f.Kind {
	case FaultLinkDown:
		ev.Kind = underlay.LinkDown
	case FaultLinkUp:
		ev.Kind = underlay.LinkUp
	case FaultDrift:
		if f.Factor <= 0 {
			return 0, fmt.Errorf("overcast: drift factor %v must be positive", f.Factor)
		}
		ev.Kind, ev.Factor = underlay.Drift, f.Factor
	default:
		return 0, fmt.Errorf("overcast: unknown fault kind %d", int(f.Kind))
	}
	if a.faults == nil {
		a.faults = underlay.NewState(g)
	}
	factor, changed := a.faults.Apply(ev)
	if !changed {
		return g.Edges[e].Capacity, nil
	}
	if err := a.warm.Fault(e, factor); err != nil {
		return 0, err
	}
	a.epoch++
	return g.Edges[e].Capacity, nil
}

// OnlineAllocation produces the exactly feasible allocation implied by the
// online trees alone (each session scaled by its own maximum congestion) —
// the deprecated OnlineAllocator.Finalize view, kept for wrapper
// compatibility and for comparing the online placement against
// Snapshot's re-solved allocation.
func (a *Allocator) OnlineAllocation() (*Allocation, error) {
	sol, err := a.online.Finalize()
	if err != nil {
		return nil, err
	}
	return &Allocation{sol: sol}, nil
}

// Admitted returns the number of sessions ever admitted (including departed
// ones; see Active).
func (a *Allocator) Admitted() int { return a.nextID }

// Active returns the number of admitted sessions that have not left.
func (a *Allocator) Active() int { return a.online.ActiveSessions() }

// IsActive reports whether the handle names a session that has not left.
func (a *Allocator) IsActive(id SessionID) bool {
	slot, err := a.slot(id)
	return err == nil && a.warm.Active(slot)
}

// Epoch returns the allocator epoch: it advances on every Join, Leave and
// Rebalance, and stamps the placements they return.
func (a *Allocator) Epoch() uint64 { return a.epoch }

// MaxCongestion returns the current maximum link congestion if every active
// session sent at its full demand along its online tree.
func (a *Allocator) MaxCongestion() float64 { return a.online.MaxCongestion() }

// Stats returns a snapshot of the allocator's work counters.
func (a *Allocator) Stats() AllocatorStats {
	ws := a.warm.Stats()
	return AllocatorStats{
		Joins: ws.Joins, Leaves: ws.Leaves,
		ColdSolves: ws.ColdSolves, WarmRefreshes: ws.WarmRefreshes,
		WarmFallbacks:  ws.WarmFallbacks,
		RepairPhases:   ws.RepairPhases,
		MSTOps:         ws.MSTOps + a.online.MSTOps(),
		UnderlayEvents: ws.UnderlayEvents,
		Plane: PlaneStats{
			Rounds: ws.Plane.PlaneRounds, Sources: ws.Plane.PlaneSources,
			Requests: ws.Plane.PlaneRequests, Repaired: ws.Plane.PlaneRepaired,
			Skipped: ws.Plane.PlaneSkipped, Seeded: ws.Plane.PlaneSeeded,
			SubtreeRepaired:    ws.Plane.PlaneSubtreeRepaired,
			SubtreeNodes:       ws.Plane.PlaneSubtreeNodes,
			TreeHits:           ws.Plane.PlaneTreeHits,
			NonMonotoneRefills: ws.Plane.PlaneNonMonotone,
		},
		Shards: ShardStats{
			Shards: ws.Shards.Shards, Rounds: append([]int(nil), ws.Shards.Rounds...),
			ExchangeRounds: ws.Shards.ExchangeRounds,
			Msgs:           ws.Shards.Msgs, CutMsgs: ws.Shards.CutMsgs,
			ExchangeBytes: ws.Shards.ExchangeBytes, Resyncs: ws.Shards.Resyncs,
			FaultResyncs: ws.Shards.FaultResyncs,
			ReduceTime:   time.Duration(ws.Shards.ReduceNanos),
		},
	}
}

// Close releases the allocator's worker pool. The allocator must not be
// used afterwards; Close is idempotent.
func (a *Allocator) Close() {
	a.warm.Close()
	a.closed = true
}
