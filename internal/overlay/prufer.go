package overlay

import (
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// This file implements the Prüfer-sequence bijection between labeled trees
// on n vertices and sequences in [0,n)^(n-2) (Cayley's theorem, the
// |T_i| = |S_i|^{|S_i|-2} count the paper cites). It powers the exact
// reference solver, which enumerates every overlay tree of a small session
// and solves M1/M2 as an explicit LP.

// CayleyTreeCount returns n^(n-2), the number of labeled spanning trees on n
// vertices, or 0 if the count overflows int64.
func CayleyTreeCount(n int) int64 {
	if n < 1 {
		return 0
	}
	if n <= 2 {
		return 1
	}
	count := int64(1)
	for i := 0; i < n-2; i++ {
		if count > math.MaxInt64/int64(n) {
			return 0
		}
		count *= int64(n)
	}
	return count
}

// PruferDecode converts a Prüfer sequence over labels [0,n) into the edge
// set of the corresponding labeled tree on n vertices. len(seq) must be n-2
// (or 0 when n == 2).
func PruferDecode(seq []int, n int) ([][2]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("overlay: Prüfer decode needs n>=2, got %d", n)
	}
	if len(seq) != n-2 {
		return nil, fmt.Errorf("overlay: Prüfer sequence length %d for n=%d", len(seq), n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("overlay: Prüfer label %d out of range", v)
		}
		degree[v]++
	}
	edges := make([][2]int, 0, n-1)
	// ptr scans for the smallest leaf; leaf tracks the current leaf,
	// giving the classic O(n) decode.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		edges = append(edges, orient(leaf, v))
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// The last edge joins the remaining leaf with n-1.
	edges = append(edges, orient(leaf, n-1))
	return edges, nil
}

// PruferEncode converts a labeled tree's edge set back into its Prüfer
// sequence (the inverse of PruferDecode); used to property-test the
// bijection.
func PruferEncode(edges [][2]int, n int) ([]int, error) {
	if len(edges) != n-1 {
		return nil, fmt.Errorf("overlay: %d edges for n=%d", len(edges), n)
	}
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	uf := graph.NewUnionFind(n)
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("overlay: bad edge %v", e)
		}
		if !uf.Union(e[0], e[1]) {
			return nil, fmt.Errorf("overlay: edge %v repeats or closes a cycle", e)
		}
		adj[e[0]][e[1]] = true
		adj[e[1]][e[0]] = true
	}
	if uf.Count() != 1 {
		return nil, fmt.Errorf("overlay: edge set is not connected")
	}
	seq := make([]int, 0, n-2)
	degree := make([]int, n)
	for v := range adj {
		degree[v] = len(adj[v])
	}
	ptr := 0
	for ptr < n && degree[ptr] != 1 {
		ptr++
	}
	if ptr == n {
		return nil, fmt.Errorf("overlay: edge set is not a tree")
	}
	leaf := ptr
	for i := 0; i < n-2; i++ {
		var parent int
		for p := range adj[leaf] {
			parent = p
		}
		seq = append(seq, parent)
		delete(adj[parent], leaf)
		degree[parent]--
		degree[leaf] = 0
		if degree[parent] == 1 && parent < ptr {
			leaf = parent
		} else {
			ptr++
			for ptr < n && degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq, nil
}

func orient(a, b int) [2]int {
	if a > b {
		return [2]int{b, a}
	}
	return [2]int{a, b}
}

// EnumerateTrees calls fn with the member-pair edge set of every labeled
// spanning tree on the session's members (n^(n-2) trees), in lexicographic
// Prüfer order. fn must not retain the slice. It returns an error if the
// tree count does not fit in memory-practical bounds (n > maxN).
func EnumerateTrees(n, maxN int, fn func(pairs [][2]int) error) error {
	if n < 2 {
		return fmt.Errorf("overlay: EnumerateTrees needs n>=2, got %d", n)
	}
	if n > maxN {
		return fmt.Errorf("overlay: refusing to enumerate %d^%d trees (n=%d > maxN=%d)", n, n-2, n, maxN)
	}
	seq := make([]int, n-2)
	for {
		pairs, err := PruferDecode(seq, n)
		if err != nil {
			return err
		}
		if err := fn(pairs); err != nil {
			return err
		}
		// Increment seq as a base-n counter.
		i := len(seq) - 1
		for ; i >= 0; i-- {
			seq[i]++
			if seq[i] < n {
				break
			}
			seq[i] = 0
		}
		if i < 0 {
			return nil
		}
	}
}

// TreeFromPairs materializes an overlay Tree from member-pair edges using
// the fixed routes of a FixedOracle.
func TreeFromPairs(o *FixedOracle, pairs [][2]int) *Tree {
	routes := make([]routing.Path, len(pairs))
	for k, p := range pairs {
		i, j := p[0], p[1]
		if i > j {
			i, j = j, i
		}
		routes[k] = o.Route(i, j)
	}
	return NewTree(o.Session().ID, pairs, routes)
}

// AllTrees materializes every overlay tree of the oracle's session (fixed
// routing). Intended for exact solving of small sessions only; maxN guards
// against accidental exponential blowups.
func AllTrees(o *FixedOracle, maxN int) ([]*Tree, error) {
	n := o.Session().Size()
	count := CayleyTreeCount(n)
	if count == 0 {
		return nil, fmt.Errorf("overlay: tree count overflow for n=%d", n)
	}
	trees := make([]*Tree, 0, count)
	err := EnumerateTrees(n, maxN, func(pairs [][2]int) error {
		cp := make([][2]int, len(pairs))
		copy(cp, pairs)
		trees = append(trees, TreeFromPairs(o, cp))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trees, nil
}
