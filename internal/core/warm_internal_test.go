package core

import (
	"testing"

	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// An external (non-self-inflicted) shrink of the ledger invalidates the bump
// attribution; the next refresh must re-anchor cold rather than trust the
// warm state. Internal test: it reaches into the unexported ledger to
// simulate the drift.
func TestWarmExternalShrinkForcesColdResolve(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(25), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	w, err := NewWarm(g, RoutingArbitrary, nil, WarmOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, members := range [][]int{{0, 5, 9}, {2, 11, 17}, {4, 20, 23}} {
		s, err := overlay.NewSession(i, members, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := overlay.NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Join(s, o); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if w.stats.ColdSolves != 1 {
		t.Fatalf("cold solves %d, want 1", w.stats.ColdSolves)
	}

	// Simulate external drift: shrink an edge behind the allocator's back,
	// then dirty the allocation so the next snapshot must refresh.
	w.d.Set(0, w.base[0])
	if err := w.Leave(2); err != nil {
		t.Fatal(err)
	}
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.ColdSolves != 2 || st.WarmRefreshes != 0 {
		t.Fatalf("stats %+v, want external shrink to force a cold re-anchor", st)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}
