package treepack

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/lp"
	"overcast/internal/overlay"
	"overcast/internal/rng"
)

// exactPackLP solves the fractional tree-packing LP exactly by enumerating
// all spanning trees (Prüfer) and running the simplex: the ground truth for
// both Strength (via Tutte/Nash-Williams) and PackFractional.
func exactPackLP(t *testing.T, ins *Instance) float64 {
	t.Helper()
	type edgeIdx struct{ i, j int }
	idx := map[edgeIdx]int{}
	var budgets []float64
	for i := 0; i < ins.N; i++ {
		for j := i + 1; j < ins.N; j++ {
			if ins.W[i][j] > 0 {
				idx[edgeIdx{i, j}] = len(budgets)
				budgets = append(budgets, ins.W[i][j])
			}
		}
	}
	var cols [][]float64 // one column (as row of A^T) per tree
	err := overlay.EnumerateTrees(ins.N, 7, func(pairs [][2]int) error {
		col := make([]float64, len(budgets))
		for _, p := range pairs {
			k, ok := idx[edgeIdx{p[0], p[1]}]
			if !ok {
				return nil // tree uses an absent edge; infeasible, skip
			}
			col[k] = 1
		}
		cols = append(cols, col)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) == 0 {
		return 0
	}
	nTrees := len(cols)
	p := lp.Problem{C: make([]float64, nTrees), A: make([][]float64, len(budgets)), B: budgets}
	for j := range p.C {
		p.C[j] = 1
	}
	for r := range p.A {
		row := make([]float64, nTrees)
		for c := 0; c < nTrees; c++ {
			row[c] = cols[c][r]
		}
		p.A[r] = row
	}
	res, err := lp.Solve(p)
	if err != nil {
		t.Fatalf("exact LP: %v", err)
	}
	return res.Value
}

func randomInstance(r *rng.RNG, n int, density float64) *Instance {
	ins, _ := NewInstance(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < density {
				_ = ins.SetWeight(i, j, 1+float64(r.Intn(8)))
			}
		}
	}
	return ins
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(1); err == nil {
		t.Error("n=1 accepted")
	}
	ins, _ := NewInstance(3)
	if err := ins.SetWeight(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := ins.SetWeight(0, 5, 1); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := ins.SetWeight(0, 1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if err := ins.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if ins.W[1][0] != 2 {
		t.Error("weight not symmetric")
	}
	if ins.TotalWeight() != 2 {
		t.Errorf("TotalWeight = %v", ins.TotalWeight())
	}
}

func TestStrengthTriangle(t *testing.T) {
	// Uniform triangle with weight w: the singleton partition gives
	// 3w/2, pairs give 2w/1; strength = 1.5w.
	ins, _ := NewInstance(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		_ = ins.SetWeight(e[0], e[1], 4)
	}
	s, part, err := ins.Strength(8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-6) > 1e-9 {
		t.Fatalf("triangle strength %v, want 6", s)
	}
	if len(part) != 3 {
		t.Fatalf("minimizing partition %v, want singletons", part)
	}
}

func TestStrengthBridge(t *testing.T) {
	// Two triangles joined by one light edge: the 2-block partition across
	// the bridge dominates.
	ins, _ := NewInstance(6)
	heavy := [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}
	for _, e := range heavy {
		_ = ins.SetWeight(e[0], e[1], 10)
	}
	_ = ins.SetWeight(2, 3, 1)
	s, part, err := ins.Strength(8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("bridge strength %v, want 1", s)
	}
	if len(part) != 2 {
		t.Fatalf("partition %v, want the bridge cut", part)
	}
}

func TestStrengthDisconnected(t *testing.T) {
	ins, _ := NewInstance(4)
	_ = ins.SetWeight(0, 1, 5)
	_ = ins.SetWeight(2, 3, 5)
	s, part, err := ins.Strength(8)
	if err != nil || s != 0 {
		t.Fatalf("disconnected strength = %v err=%v", s, err)
	}
	if len(part) != 2 {
		t.Fatalf("components %v", part)
	}
}

func TestStrengthGuard(t *testing.T) {
	ins, _ := NewInstance(12)
	if _, _, err := ins.Strength(10); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

// TestTutteNashWilliams is the central invariant: exact LP packing value ==
// exact partition minimum, on random connected instances.
func TestTutteNashWilliams(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(3) // 3..5
		ins := randomInstance(r.Split(uint64(trial)), n, 0.9)
		if !ins.connectedOnPositive() {
			continue
		}
		strength, _, err := ins.Strength(8)
		if err != nil {
			t.Fatal(err)
		}
		packed := exactPackLP(t, ins)
		if math.Abs(strength-packed) > 1e-6 {
			t.Fatalf("trial %d n=%d: strength %v != exact packing %v (W=%v)",
				trial, n, strength, packed, ins.W)
		}
	}
}

func TestPackFractionalApproximation(t *testing.T) {
	r := rng.New(101)
	const eps = 0.05
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(3)
		ins := randomInstance(r.Split(uint64(trial)), n, 1.0)
		strength, _, err := ins.Strength(8)
		if err != nil {
			t.Fatal(err)
		}
		trees, total, err := ins.PackFractional(eps)
		if err != nil {
			t.Fatal(err)
		}
		if total > strength+1e-6 {
			t.Fatalf("trial %d: packed %v exceeds optimum %v", trial, total, strength)
		}
		if total < (1-2*eps)*strength-1e-9 {
			t.Fatalf("trial %d: packed %v below (1-2eps) bound of %v", trial, total, strength)
		}
		// Feasibility: per-edge usage within budget.
		use := map[[2]int]float64{}
		for _, tr := range trees {
			for _, p := range tr.Pairs {
				use[p] += tr.Rate
			}
		}
		for p, u := range use {
			if u > ins.W[p[0]][p[1]]+1e-6 {
				t.Fatalf("trial %d: edge %v overused %v > %v", trial, p, u, ins.W[p[0]][p[1]])
			}
		}
	}
}

func TestPackFractionalBadEps(t *testing.T) {
	ins, _ := NewInstance(3)
	_ = ins.SetWeight(0, 1, 1)
	if _, _, err := ins.PackFractional(0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, _, err := ins.PackFractional(1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestPackFractionalDisconnected(t *testing.T) {
	ins, _ := NewInstance(4)
	_ = ins.SetWeight(0, 1, 5)
	trees, total, err := ins.PackFractional(0.1)
	if err != nil || total != 0 || len(trees) != 0 {
		t.Fatalf("disconnected pack = %v/%v/%v", trees, total, err)
	}
}

func TestPackGreedyFeasibleAndPositive(t *testing.T) {
	// Figure-1 style K4 decomposition: uniform K4 with weight 3. Strength =
	// 6*3/3 = 6 (singletons).
	ins, _ := NewInstance(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = ins.SetWeight(i, j, 3)
		}
	}
	trees, total := ins.PackGreedy()
	if len(trees) == 0 || total <= 0 {
		t.Fatal("greedy packed nothing")
	}
	use := map[[2]int]float64{}
	for _, tr := range trees {
		if len(tr.Pairs) != 3 {
			t.Fatalf("non-spanning greedy tree %v", tr.Pairs)
		}
		for _, p := range tr.Pairs {
			use[p] += tr.Rate
		}
	}
	for p, u := range use {
		if u > ins.W[p[0]][p[1]]+1e-9 {
			t.Fatalf("edge %v overused: %v > %v", p, u, ins.W[p[0]][p[1]])
		}
	}
	strength, _, _ := ins.Strength(8)
	if total > strength+1e-9 {
		t.Fatalf("greedy %v exceeds strength %v", total, strength)
	}
	// Greedy on uniform K4 should get at least half the optimum.
	if total < strength/2 {
		t.Fatalf("greedy %v below half of strength %v", total, strength)
	}
}

func TestFigure1Packing(t *testing.T) {
	// A Fig. 1 analogue: 4-node session where greedy decomposes the overlay
	// graph into multiple trees whose aggregate rate matches the exact
	// optimum. Weights form two strong edges and four weak ones.
	ins, _ := NewInstance(4)
	_ = ins.SetWeight(0, 1, 3)
	_ = ins.SetWeight(0, 2, 3)
	_ = ins.SetWeight(0, 3, 3)
	_ = ins.SetWeight(1, 2, 5)
	_ = ins.SetWeight(1, 3, 2)
	_ = ins.SetWeight(2, 3, 1)
	strength, _, err := ins.Strength(8)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactPackLP(t, ins)
	if math.Abs(strength-exact) > 1e-6 {
		t.Fatalf("min-max violated: %v vs %v", strength, exact)
	}
	_, greedyTotal := ins.PackGreedy()
	if greedyTotal > exact+1e-9 {
		t.Fatalf("greedy %v exceeds exact %v", greedyTotal, exact)
	}
	trees, fptasTotal, err := ins.PackFractional(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if fptasTotal < 0.9*exact {
		t.Fatalf("FPTAS %v too far below exact %v", fptasTotal, exact)
	}
	if len(trees) < 2 {
		t.Fatalf("expected a multi-tree decomposition, got %d trees", len(trees))
	}
}

// TestGreedyNeverExceedsStrength property-tests feasibility and the min-max
// upper bound for the greedy packer.
func TestGreedyNeverExceedsStrength(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(4)
		ins := randomInstance(r, n, 0.8)
		strength, _, err := ins.Strength(9)
		if err != nil {
			return false
		}
		_, total := ins.PackGreedy()
		return total <= strength+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStrengthN7(b *testing.B) {
	ins := randomInstance(rng.New(3), 7, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ins.Strength(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackFractionalN10(b *testing.B) {
	ins := randomInstance(rng.New(4), 10, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ins.PackFractional(0.1); err != nil {
			b.Fatal(err)
		}
	}
}
