package experiments

import (
	"strings"
	"testing"
)

// TestChurnRunDeterministicAcrossWorkers replays the same scenario trace
// with 1 and 8 prefabrication workers: the sequential replay's outputs must
// be bit-identical (the worker pool only builds static route tables).
func TestChurnRunDeterministicAcrossWorkers(t *testing.T) {
	var base *ChurnReport
	for _, workers := range []int{1, 8} {
		rep, err := ChurnRun(41, ChurnConfig{Nodes: 200, Scenario: "cdn", Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sessions == 0 || rep.PeakConcurrency == 0 {
			t.Fatalf("empty trace: %+v", rep)
		}
		if rep.MSTOps != rep.Sessions {
			t.Fatalf("joins must run one oracle call each: %d ops for %d sessions", rep.MSTOps, rep.Sessions)
		}
		if rep.PeakCongestion <= 0 {
			t.Fatalf("peak congestion %v", rep.PeakCongestion)
		}
		if rep.FinalActive == 0 || rep.Throughput <= 0 {
			t.Fatalf("no surviving allocation: %+v", rep)
		}
		if base == nil {
			base = rep
			continue
		}
		if rep.PeakCongestion != base.PeakCongestion || rep.Throughput != base.Throughput ||
			rep.MinRate != base.MinRate || rep.FinalActive != base.FinalActive {
			t.Fatalf("worker count changed replay outputs:\n%+v\nvs\n%+v", base, rep)
		}
	}
}

// TestChurnRunScenarioShapes checks the workload mixes actually reach the
// trace: conferencing sessions stay small, livestream grows heavy tails.
func TestChurnRunScenarioShapes(t *testing.T) {
	conf, err := ChurnRun(7, ChurnConfig{Nodes: 250, Scenario: "conferencing"})
	if err != nil {
		t.Fatal(err)
	}
	live, err := ChurnRun(7, ChurnConfig{Nodes: 250, Scenario: "livestream"})
	if err != nil {
		t.Fatal(err)
	}
	// Same arrival process, same seed: livestream's Pareto sizes and higher
	// demands must produce strictly heavier peak congestion than small
	// conference rooms.
	if live.PeakCongestion <= conf.PeakCongestion {
		t.Fatalf("livestream congestion %v not above conferencing %v", live.PeakCongestion, conf.PeakCongestion)
	}
}

func TestChurnSuite(t *testing.T) {
	reports, err := ChurnSuite(11, 150, 0, false, []string{"uniform", "heavytail"})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports, want 2", len(reports))
	}
	for _, rep := range reports {
		if rep.Sessions == 0 {
			t.Fatalf("%s: empty trace", rep.Config.Scenario)
		}
		if !strings.Contains(rep.String(), rep.Config.Scenario) {
			t.Fatalf("report render missing scenario: %s", rep.String())
		}
	}
	if _, err := ChurnSuite(11, 150, 0, false, []string{"bogus"}); err == nil {
		t.Fatal("bogus scenario accepted")
	}
	if _, err := ChurnRun(1, ChurnConfig{Nodes: 2}); err == nil {
		t.Fatal("tiny topology accepted")
	}
}

// TestChurnRunPlaneToggleBitIdentical replays the same trace with the
// prefabrication plane on and off, across worker counts: the shared SSSP
// rows must hand every session exactly the route tables it would have built
// itself, so the sequential replay's outputs are bit-identical. With the
// plane on, the report must show the dedup actually happened (PlaneSources
// strictly below PlaneRequests on a Zipf-hot scenario).
func TestChurnRunPlaneToggleBitIdentical(t *testing.T) {
	var base *ChurnReport
	for _, disable := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			rep, err := ChurnRun(43, ChurnConfig{Nodes: 200, Scenario: "livestream", Workers: workers, DisablePlane: disable})
			if err != nil {
				t.Fatal(err)
			}
			if disable {
				if rep.Plane.PlaneRounds != 0 {
					t.Fatalf("plane disabled but counters %+v", rep.Plane)
				}
			} else if rep.Plane.PlaneSources == 0 || rep.Plane.PlaneSources >= rep.Plane.PlaneRequests {
				t.Fatalf("prefab plane did not dedup: %+v", rep.Plane)
			}
			if base == nil {
				base = rep
				continue
			}
			if rep.PeakCongestion != base.PeakCongestion || rep.Throughput != base.Throughput ||
				rep.MinRate != base.MinRate || rep.FinalActive != base.FinalActive || rep.MSTOps != base.MSTOps {
				t.Fatalf("plane toggle changed replay outputs (disable=%v workers=%d):\n%+v\nvs\n%+v", disable, workers, base, rep)
			}
		}
	}
}
