package core_test

import (
	"math"
	"testing"

	"overcast/internal/core"
	"overcast/internal/exact"
	"overcast/internal/graph"
	"overcast/internal/maxflow"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

// buildProblem is a test helper assembling a Problem from member lists.
func buildProblem(t testing.TB, g *graph.Graph, memberSets [][]graph.NodeID, demands []float64, mode core.RoutingMode) *core.Problem {
	t.Helper()
	var sessions []*overlay.Session
	for i, members := range memberSets {
		d := 1.0
		if demands != nil {
			d = demands[i]
		}
		s, err := overlay.NewSession(i, members, d)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
	}
	p, err := core.NewProblem(g, sessions, mode)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func exactOracles(t testing.TB, p *core.Problem) []*overlay.FixedOracle {
	t.Helper()
	var members []graph.NodeID
	for _, s := range p.Sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(p.G, members)
	var oracles []*overlay.FixedOracle
	for _, s := range p.Sessions {
		o, err := overlay.NewFixedOracle(p.G, rt, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	return oracles
}

func TestNewProblemValidation(t *testing.T) {
	net, _ := topology.Ring(5, 10)
	g := net.Graph
	s0, _ := overlay.NewSession(0, []graph.NodeID{0, 2}, 1)
	if _, err := core.NewProblem(nil, []*overlay.Session{s0}, core.RoutingIP); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := core.NewProblem(g, nil, core.RoutingIP); err == nil {
		t.Error("no sessions accepted")
	}
	sBad, _ := overlay.NewSession(5, []graph.NodeID{0, 2}, 1)
	if _, err := core.NewProblem(g, []*overlay.Session{sBad}, core.RoutingIP); err == nil {
		t.Error("non-dense session ID accepted")
	}
	sOut, _ := overlay.NewSession(0, []graph.NodeID{0, 99}, 1)
	if _, err := core.NewProblem(g, []*overlay.Session{sOut}, core.RoutingIP); err == nil {
		t.Error("out-of-graph member accepted")
	}
	p, err := core.NewProblem(g, []*overlay.Session{s0}, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 1 || p.MaxReceivers != 1 || p.U < 1 {
		t.Fatalf("problem fields wrong: %+v", p)
	}
	if p.Weight(0) != 1 {
		t.Fatalf("weight %v", p.Weight(0))
	}
}

func TestRoutingModeString(t *testing.T) {
	if core.RoutingIP.String() != "ip" || core.RoutingArbitrary.String() != "arbitrary" {
		t.Fatal("mode strings wrong")
	}
	if core.RoutingMode(9).String() == "" {
		t.Fatal("unknown mode should still print")
	}
}

func TestMaxFlowOptionsValidation(t *testing.T) {
	net, _ := topology.Ring(5, 10)
	p := buildProblem(t, net.Graph, [][]graph.NodeID{{0, 2}}, nil, core.RoutingIP)
	if _, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.9}); err == nil {
		t.Error("eps=0.9 accepted")
	}
}

func TestMaxFlowTwoMemberEqualsSTMaxFlowArbitraryRouting(t *testing.T) {
	// With a single 2-member session and arbitrary routing, M1 *is* the
	// undirected s-t maximum flow; Dinic provides the exact value.
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	src, dst := 0, 29
	p := buildProblem(t, g, [][]graph.NodeID{{src, dst}}, nil, core.RoutingArbitrary)
	const eps = 0.05
	sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	din := maxflow.NewNetwork(g.NumNodes())
	for _, e := range g.Edges {
		din.AddEdge(e.U, e.V, e.Capacity)
	}
	opt := din.MaxFlow(src, dst)
	got := sol.SessionRate(0)
	if got > opt+1e-6 {
		t.Fatalf("FPTAS %v exceeds max flow %v", got, opt)
	}
	if got < (1-eps)*(1-eps)*opt-1e-9 {
		t.Fatalf("FPTAS %v below (1-eps)^2 * %v", got, opt)
	}
}

func TestMaxFlowMatchesExactM1SmallInstances(t *testing.T) {
	const eps = 0.05
	for trial := 0; trial < 6; trial++ {
		r := rng.New(uint64(100 + trial))
		net, err := topology.Waxman(topology.DefaultWaxman(25), r)
		if err != nil {
			t.Fatal(err)
		}
		g := net.Graph
		perm := r.Perm(25)
		memberSets := [][]graph.NodeID{
			{perm[0], perm[1], perm[2], perm[3]},
			{perm[4], perm[5], perm[6]},
		}
		p := buildProblem(t, g, memberSets, nil, core.RoutingIP)
		sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: eps, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := sol.CheckFeasible(1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex, err := exact.MaxMulticommodityFlow(g, exactOracles(t, p), 6)
		if err != nil {
			t.Fatal(err)
		}
		got := core.WeightedObjective(p, sol)
		if got > ex.Value+1e-6 {
			t.Fatalf("trial %d: FPTAS objective %v exceeds optimum %v", trial, got, ex.Value)
		}
		if got < (1-2*eps)*ex.Value-1e-9 {
			t.Fatalf("trial %d: FPTAS objective %v below (1-2eps)*%v", trial, got, ex.Value)
		}
	}
}

func TestMaxFlowImprovesWithTighterEpsilon(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(40), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, net.Graph, [][]graph.NodeID{
		{1, 8, 15, 22, 29}, {3, 12, 21},
	}, nil, core.RoutingIP)
	loose, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	lo := core.WeightedObjective(p, loose)
	hi := core.WeightedObjective(p, tight)
	// The guarantee only promises hi >= (1-2*0.03)OPT >= (1-0.06)/(1)*lo...
	// empirically the tight run must not be significantly worse.
	if hi < lo*0.97 {
		t.Fatalf("tighter epsilon got worse: %v -> %v", lo, hi)
	}
	if tight.MSTOps <= loose.MSTOps {
		t.Fatalf("tighter epsilon should cost more MST ops: %d vs %d", tight.MSTOps, loose.MSTOps)
	}
}

func TestMaxFlowParallelMatchesSerial(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(40), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, net.Graph, [][]graph.NodeID{
		{0, 10, 20, 30}, {5, 15, 25, 35}, {2, 22},
	}, nil, core.RoutingIP)
	serial, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.1, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Sessions {
		if math.Abs(serial.SessionRate(i)-parallel.SessionRate(i)) > 1e-9 {
			t.Fatalf("session %d: serial %v != parallel %v", i, serial.SessionRate(i), parallel.SessionRate(i))
		}
	}
	if serial.MSTOps != parallel.MSTOps {
		t.Fatalf("MST op counts differ: %d vs %d", serial.MSTOps, parallel.MSTOps)
	}
}

func TestMaxFlowArbitraryAtLeastIP(t *testing.T) {
	// Dynamic routing can only widen the feasible set; values must satisfy
	// arbitrary >= ip - small tolerance.
	net, err := topology.Waxman(topology.DefaultWaxman(35), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]graph.NodeID{{0, 9, 18, 27}, {4, 14, 24}}
	pIP := buildProblem(t, net.Graph, sets, nil, core.RoutingIP)
	pArb := buildProblem(t, net.Graph, sets, nil, core.RoutingArbitrary)
	const eps = 0.08
	ip, err := core.MaxFlow(pIP, core.MaxFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	arb, err := core.MaxFlow(pArb, core.MaxFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	vIP := core.WeightedObjective(pIP, ip)
	vArb := core.WeightedObjective(pArb, arb)
	// Both are (1-2eps)-approximations of their optima with OPT_arb >=
	// OPT_ip; allow the approximation slack.
	if vArb < (1-2*eps)*vIP-1e-9 {
		t.Fatalf("arbitrary routing value %v too far below IP value %v", vArb, vIP)
	}
	if err := arb.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionAccessors(t *testing.T) {
	net, _ := topology.Dumbbell(3, 100, 10)
	p := buildProblem(t, net.Graph, [][]graph.NodeID{{0, 3}, {1, 4}}, []float64{1, 2}, core.RoutingIP)
	sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i, s := range p.Sessions {
		total += float64(s.Receivers()) * sol.SessionRate(i)
	}
	if math.Abs(total-sol.OverallThroughput()) > 1e-9 {
		t.Fatal("OverallThroughput mismatch")
	}
	if sol.MinSessionRate() > sol.SessionRate(0)+1e-12 || sol.MinSessionRate() > sol.SessionRate(1)+1e-12 {
		t.Fatal("MinSessionRate not minimal")
	}
	if sol.MaxCongestion() > 1+1e-9 {
		t.Fatal("solution overloaded")
	}
	utils := sol.Utilizations()
	for i := 1; i < len(utils); i++ {
		if utils[i] > utils[i-1] {
			t.Fatal("Utilizations not sorted descending")
		}
	}
	for i := range p.Sessions {
		rd := sol.RateDistribution(i)
		if len(rd) != sol.TreeCount(i) {
			t.Fatal("RateDistribution length mismatch")
		}
		sum := 0.0
		for _, v := range rd {
			sum += v
		}
		if math.Abs(sum-sol.SessionRate(i)) > 1e-9 {
			t.Fatal("RateDistribution does not sum to session rate")
		}
	}
}
