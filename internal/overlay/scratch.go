package overlay

import (
	"sort"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// Scratch is reusable per-worker state for MinTree computations: the Dijkstra
// scratch, Prim's buffers, the overlay weight matrix, and per-member
// shortest-path trees. The Garg–Könemann solvers call MinTree thousands of
// times per run; without a scratch every call re-allocates all of this state.
// A Scratch is bound to one graph and is not safe for concurrent use — pool
// one per worker (see core's MOST runner).
type Scratch struct {
	g  *graph.Graph
	sp *routing.DijkstraScratch

	// Prim buffers over the overlay complete graph, sized to the largest
	// session seen so far.
	inTree   []bool
	best     []float64
	bestFrom []int
	pairs    [][2]int

	// Flat s x s pairwise weight matrix for the fixed oracle.
	w []float64

	// Per-member shortest-path trees for the arbitrary oracle.
	dists   [][]float64
	parents [][]graph.EdgeID

	// Header-only variants of dists/parents whose entries point at borrowed
	// Plane rows (never at owned storage, so the owned buffers above are
	// never lost to an overwrite).
	rowDists   [][]float64
	rowParents [][]graph.EdgeID

	// Edge-id buffer for Use computation (sort + run-length encode).
	edgeIDs []int
}

// NewScratch returns a scratch bound to g. Buffers grow lazily with use, so
// creation is cheap.
func NewScratch(g *graph.Graph) *Scratch {
	return &Scratch{g: g}
}

// dijkstra lazily creates the shortest-path scratch.
func (sc *Scratch) dijkstra() *routing.DijkstraScratch {
	if sc.sp == nil {
		sc.sp = routing.NewDijkstraScratch(sc.g)
	}
	return sc.sp
}

// primBuffers returns Prim state sized for an n-vertex overlay.
func (sc *Scratch) primBuffers(n int) (inTree []bool, best []float64, bestFrom []int, pairs [][2]int) {
	if cap(sc.inTree) < n {
		sc.inTree = make([]bool, n)
		sc.best = make([]float64, n)
		sc.bestFrom = make([]int, n)
		sc.pairs = make([][2]int, n)
	}
	return sc.inTree[:n], sc.best[:n], sc.bestFrom[:n], sc.pairs[:0]
}

// weights returns a flat n x n matrix (zeroing is the caller's concern: the
// oracles overwrite every cell they read).
func (sc *Scratch) weights(n int) []float64 {
	if cap(sc.w) < n*n {
		sc.w = make([]float64, n*n)
	}
	return sc.w[:n*n]
}

// memberTrees returns k distance and parent arrays over the graph's nodes,
// for the arbitrary oracle's per-member Dijkstra results.
func (sc *Scratch) memberTrees(k int) ([][]float64, [][]graph.EdgeID) {
	n := sc.g.NumNodes()
	for len(sc.dists) < k {
		sc.dists = append(sc.dists, make([]float64, n))
		sc.parents = append(sc.parents, make([]graph.EdgeID, n))
	}
	return sc.dists[:k], sc.parents[:k]
}

// memberRows returns k slice-header slots for borrowed per-member SSSP rows
// (Plane reads). Entries are stale from previous calls; the caller overwrites
// all k before use.
func (sc *Scratch) memberRows(k int) ([][]float64, [][]graph.EdgeID) {
	for len(sc.rowDists) < k {
		sc.rowDists = append(sc.rowDists, nil)
		sc.rowParents = append(sc.rowParents, nil)
	}
	return sc.rowDists[:k], sc.rowParents[:k]
}

// primInto runs Prim's algorithm over the complete graph on n vertices using
// the scratch's buffers, returning scratch-owned vertex pairs (valid until
// the next primInto call). Semantics match primComplete exactly.
func primInto(sc *Scratch, n int, weight func(i, j int) float64) [][2]int {
	const inf = 1e308
	inTree, best, bestFrom, pairs := sc.primBuffers(n)
	for i := 0; i < n; i++ {
		inTree[i] = false
		best[i] = inf
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = weight(0, j)
		bestFrom[j] = 0
	}
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick < 0 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		pairs = append(pairs, [2]int{bestFrom[pick], pick})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := weight(pick, j); w < best[j] {
					best[j] = w
					bestFrom[j] = pick
				}
			}
		}
	}
	sc.pairs = pairs[:cap(pairs)] // retain any growth for reuse
	return pairs
}

// newSortedTree builds a Tree from pairs already normalized to i<j with
// routes oriented member[i] -> member[j]. It sorts pairs and routes together
// (the canonical order NewTree produces) and precomputes the edge-use
// multiset with scratch buffers instead of a per-tree map. pairs and routes
// must be fresh slices — the tree takes ownership.
func newSortedTree(sc *Scratch, sessionID int, pairs [][2]int, routes []routing.Path) *Tree {
	sort.Sort(&pairRouteSort{pairs: pairs, routes: routes})
	t := &Tree{SessionID: sessionID, Pairs: pairs, Routes: routes}
	t.use = computeUse(sc, routes)
	return t
}

// pairRouteSort sorts overlay pairs lexicographically, carrying routes along.
type pairRouteSort struct {
	pairs  [][2]int
	routes []routing.Path
}

func (s *pairRouteSort) Len() int { return len(s.pairs) }
func (s *pairRouteSort) Less(a, b int) bool {
	pa, pb := s.pairs[a], s.pairs[b]
	if pa[0] != pb[0] {
		return pa[0] < pb[0]
	}
	return pa[1] < pb[1]
}
func (s *pairRouteSort) Swap(a, b int) {
	s.pairs[a], s.pairs[b] = s.pairs[b], s.pairs[a]
	s.routes[a], s.routes[b] = s.routes[b], s.routes[a]
}

// computeUse produces the sorted n_e(t) multiplicities of routes with a
// single allocation (the result), using the scratch's id buffer for the
// sort + run-length encoding. Output is identical to Tree.Use's lazy path.
func computeUse(sc *Scratch, routes []routing.Path) []EdgeUse {
	ids := sc.edgeIDs[:0]
	for _, r := range routes {
		ids = append(ids, r.Edges...)
	}
	sc.edgeIDs = ids
	if len(ids) == 0 {
		return []EdgeUse{}
	}
	sort.Ints(ids)
	distinct := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			distinct++
		}
	}
	use := make([]EdgeUse, 0, distinct)
	run := 1
	for i := 1; i <= len(ids); i++ {
		if i < len(ids) && ids[i] == ids[i-1] {
			run++
			continue
		}
		use = append(use, EdgeUse{Edge: ids[i-1], Count: run})
		run = 1
	}
	return use
}
