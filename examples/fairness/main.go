// Fairness: when several sessions compete, maximizing raw throughput
// (MaxFlow) favors large sessions and can starve small ones. This example
// reproduces the paper's central fairness comparison (Tables II vs IV): the
// maximum concurrent flow allocation guarantees every session lambda times
// its demand, at a modest aggregate cost, and the surplus pass then
// back-fills leftover capacity.
//
// Run with: go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"overcast"
)

func main() {
	net, err := overcast.WaxmanNetwork(80, 100, 7)
	if err != nil {
		log.Fatal(err)
	}

	// A large 6-member session and a small 4-member session with equal
	// demands, sharing bottleneck links (the Sec. III setup). On this
	// instance MaxFlow starves the small session almost completely.
	sys, err := overcast.NewSystem(net, []overcast.Session{
		{Members: []int{2, 18, 33, 47, 61, 79}, Demand: 100},
		{Members: []int{9, 26, 54, 70}, Demand: 100},
	}, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}

	const ratio = 0.95

	mf, err := sys.MaxFlow(ratio)
	if err != nil {
		log.Fatal(err)
	}
	fair, err := sys.MaxConcurrentFlow(ratio, false)
	if err != nil {
		log.Fatal(err)
	}
	surplus, err := sys.MaxConcurrentFlow(ratio, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("allocation            session1    session2   throughput    min-rate")
	show := func(name string, a *overcast.Allocation) {
		fmt.Printf("%-20s%10.2f  %10.2f  %11.2f  %10.2f\n",
			name, a.SessionRate(0), a.SessionRate(1), a.OverallThroughput(), a.MinSessionRate())
	}
	show("MaxFlow", mf)
	show("MaxConcurrentFlow", fair.Allocation)
	show("MCF + surplus", surplus.Allocation)

	fmt.Printf("\nfair share guarantee: every session gets >= lambda x demand = %.2f\n",
		fair.Lambda*100)
	fmt.Printf("throughput retained under fairness: %.1f%%\n",
		100*surplus.OverallThroughput()/mf.OverallThroughput())

	// The paper's finding: enforcing max-min fairness and maximizing
	// throughput are largely compatible — the ratio typically stays
	// above 80-90%.
	if fair.MinSessionRate() < mf.MinSessionRate() {
		fmt.Println("unexpected: fairness did not raise the minimum rate on this instance")
	} else {
		fmt.Printf("minimum session rate raised from %.2f to %.2f\n",
			mf.MinSessionRate(), fair.MinSessionRate())
	}
}
