// Package routing supplies the two unicast routing models of the paper.
//
// Fixed IP routing (Sec. II): every node pair communicates over a
// pre-determined shortest path (hop count, deterministic tie-breaks), exactly
// once, regardless of congestion. Route tables are computed with BFS per
// source and are symmetric: route(u,v) is the reverse of route(v,u).
//
// Arbitrary dynamic routing (Sec. V): a pair may use any unicast path, and
// the algorithms choose the shortest path under the *current* edge-length
// function d_e; this package provides the Dijkstra primitive those
// algorithms call each iteration.
package routing

import (
	"fmt"

	"overcast/internal/graph"
)

// Path is a unicast route through the physical network. Nodes has one more
// element than Edges; Edges[i] joins Nodes[i] and Nodes[i+1]. An empty path
// (single node, no edges) represents a route from a node to itself.
type Path struct {
	Nodes []graph.NodeID
	Edges []graph.EdgeID
}

// Hops returns the number of physical links on the path.
func (p Path) Hops() int { return len(p.Edges) }

// Src returns the first node of the path.
func (p Path) Src() graph.NodeID { return p.Nodes[0] }

// Dst returns the last node of the path.
func (p Path) Dst() graph.NodeID { return p.Nodes[len(p.Nodes)-1] }

// Reverse returns the same route traversed in the opposite direction.
func (p Path) Reverse() Path {
	rn := make([]graph.NodeID, len(p.Nodes))
	for i, v := range p.Nodes {
		rn[len(p.Nodes)-1-i] = v
	}
	re := make([]graph.EdgeID, len(p.Edges))
	for i, e := range p.Edges {
		re[len(p.Edges)-1-i] = e
	}
	return Path{Nodes: rn, Edges: re}
}

// Validate checks internal consistency of the path against g.
func (p Path) Validate(g *graph.Graph) error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if len(p.Edges) != len(p.Nodes)-1 {
		return fmt.Errorf("routing: %d edges for %d nodes", len(p.Edges), len(p.Nodes))
	}
	for i, id := range p.Edges {
		if id < 0 || id >= g.NumEdges() {
			return fmt.Errorf("routing: edge id %d out of range", id)
		}
		e := g.Edges[id]
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !(e.U == u && e.V == v) && !(e.U == v && e.V == u) {
			return fmt.Errorf("routing: edge %d does not join %d-%d", id, u, v)
		}
	}
	return nil
}

// IPRoutes is a fixed shortest-path (hop count) routing table over a set of
// endpoints. BFS trees are stored per endpoint; routes between two endpoints
// are read from the tree rooted at the smaller node id so that routing is
// symmetric.
type IPRoutes struct {
	g *graph.Graph
	// parentEdge[s][v] is the edge toward the BFS root s on v's shortest
	// path, or -1 for v==s / unreachable.
	parentEdge map[graph.NodeID][]graph.EdgeID
	hops       map[graph.NodeID][]int
}

// NewIPRoutes computes BFS shortest-path trees from every node in sources.
// Only routes whose both endpoints are in sources can be queried.
func NewIPRoutes(g *graph.Graph, sources []graph.NodeID) *IPRoutes {
	t := &IPRoutes{
		g:          g,
		parentEdge: make(map[graph.NodeID][]graph.EdgeID, len(sources)),
		hops:       make(map[graph.NodeID][]int, len(sources)),
	}
	for _, s := range sources {
		if _, done := t.parentEdge[s]; done {
			continue
		}
		parent, hops := bfs(g, s)
		t.parentEdge[s] = parent
		t.hops[s] = hops
	}
	return t
}

// NewWeightedIPRoutes computes fixed shortest-path routes under static edge
// weights (e.g. BRITE's propagation delays — Euclidean link lengths) instead
// of hop count. This matches "shortest-path routing" over a topology whose
// links carry metric costs: routes are still fixed (independent of traffic),
// but geometrically spread rather than tie-broken arbitrarily. Symmetry is
// preserved by reading routes from the smaller endpoint's tree.
func NewWeightedIPRoutes(g *graph.Graph, sources []graph.NodeID, w graph.Lengths) *IPRoutes {
	if len(w) != g.NumEdges() {
		panic("routing: weight vector size mismatch")
	}
	t := &IPRoutes{
		g:          g,
		parentEdge: make(map[graph.NodeID][]graph.EdgeID, len(sources)),
		hops:       make(map[graph.NodeID][]int, len(sources)),
	}
	for _, s := range sources {
		if _, done := t.parentEdge[s]; done {
			continue
		}
		_, parent := ShortestPaths(g, s, w)
		t.parentEdge[s] = parent
		t.hops[s] = depthsFromParents(g, parent, s)
	}
	return t
}

// NewWeightedIPRoutesFromTrees builds a fixed route table from precomputed
// weighted shortest-path trees: parents(s) must return the parent-edge array
// of a Dijkstra tree rooted at s under the intended static weights, exactly
// as ShortestPaths would compute it (e.g. a filled overlay SSSP plane row).
// The table borrows the arrays — they must stay valid and unmutated for the
// table's lifetime. Routes and hop counts are then identical to
// NewWeightedIPRoutes over the same sources and weights, without re-running
// any Dijkstra, which is what lets many member-restricted tables over one
// static weight snapshot share a single set of trees.
func NewWeightedIPRoutesFromTrees(g *graph.Graph, sources []graph.NodeID, parents func(graph.NodeID) []graph.EdgeID) *IPRoutes {
	t := &IPRoutes{
		g:          g,
		parentEdge: make(map[graph.NodeID][]graph.EdgeID, len(sources)),
		hops:       make(map[graph.NodeID][]int, len(sources)),
	}
	for _, s := range sources {
		if _, done := t.parentEdge[s]; done {
			continue
		}
		par := parents(s)
		t.parentEdge[s] = par
		t.hops[s] = depthsFromParents(g, par, s)
	}
	return t
}

// depthsFromParents computes hop counts along a shortest-path tree given its
// parent edges; unreachable nodes get -1.
func depthsFromParents(g *graph.Graph, parent []graph.EdgeID, s graph.NodeID) []int {
	n := g.NumNodes()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -2 // unresolved
	}
	depth[s] = 0
	var stack []graph.NodeID
	for v := 0; v < n; v++ {
		if depth[v] != -2 {
			continue
		}
		if parent[v] < 0 {
			depth[v] = -1
			continue
		}
		stack = stack[:0]
		u := v
		for depth[u] == -2 {
			stack = append(stack, u)
			if parent[u] < 0 {
				break
			}
			u = g.Edges[parent[u]].Other(u)
		}
		base := depth[u]
		for i := len(stack) - 1; i >= 0; i-- {
			if base < 0 {
				depth[stack[i]] = -1
			} else {
				base++
				depth[stack[i]] = base
			}
		}
	}
	return depth
}

// bfs returns per-node parent edges and hop counts from s. Neighbour edges
// are scanned in EdgeID order, which yields deterministic tie-breaking.
func bfs(g *graph.Graph, s graph.NodeID) ([]graph.EdgeID, []int) {
	n := g.NumNodes()
	parent := make([]graph.EdgeID, n)
	hops := make([]int, n)
	for i := range parent {
		parent[i] = -1
		hops[i] = -1
	}
	hops[s] = 0
	queue := make([]graph.NodeID, 0, n)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		ids, tos := g.Neighbors(v)
		for k, id := range ids {
			w := tos[k]
			if hops[w] < 0 {
				hops[w] = hops[v] + 1
				parent[w] = id
				queue = append(queue, w)
			}
		}
	}
	return parent, hops
}

// Hops returns the hop distance between two endpoints, or -1 if unreachable.
// Both endpoints must have been passed to NewIPRoutes.
func (t *IPRoutes) Hops(u, v graph.NodeID) int {
	root, leaf := u, v
	if root > leaf {
		root, leaf = leaf, root
	}
	h, ok := t.hops[root]
	if !ok {
		// Fall back to the other endpoint's tree if only it was indexed.
		if h2, ok2 := t.hops[leaf]; ok2 {
			return h2[root]
		}
		panic(fmt.Sprintf("routing: no BFS tree for %d or %d", u, v))
	}
	return h[leaf]
}

// Route returns the fixed IP route from u to v. Routes are symmetric:
// Route(u,v) equals Route(v,u) reversed. It panics if neither endpoint was
// indexed and returns an error if v is unreachable from u.
func (t *IPRoutes) Route(u, v graph.NodeID) (Path, error) {
	if u == v {
		return Path{Nodes: []graph.NodeID{u}}, nil
	}
	root, leaf, flip := u, v, false
	if root > leaf {
		root, leaf, flip = leaf, root, true
	}
	parent, ok := t.parentEdge[root]
	if !ok {
		if parent2, ok2 := t.parentEdge[leaf]; ok2 {
			parent, root, leaf, flip = parent2, leaf, root, !flip
			ok = true
		}
	}
	if !ok {
		panic(fmt.Sprintf("routing: no BFS tree for %d or %d", u, v))
	}
	p, err := walkToRoot(t.g, parent, root, leaf)
	if err != nil {
		return Path{}, err
	}
	// walkToRoot returns leaf->root; we want root->leaf.
	p = p.Reverse()
	if flip {
		p = p.Reverse()
	}
	return p, nil
}

// walkToRoot follows parent edges from leaf up to root.
func walkToRoot(g *graph.Graph, parent []graph.EdgeID, root, leaf graph.NodeID) (Path, error) {
	nodes := []graph.NodeID{leaf}
	edges := []graph.EdgeID{}
	v := leaf
	for v != root {
		id := parent[v]
		if id < 0 {
			return Path{}, fmt.Errorf("routing: node %d unreachable from %d", leaf, root)
		}
		v = g.Edges[id].Other(v)
		nodes = append(nodes, v)
		edges = append(edges, id)
	}
	return Path{Nodes: nodes, Edges: edges}, nil
}

// MaxHops returns the largest hop distance among all indexed endpoint pairs;
// this is the U parameter (length of the longest unicast route) in the
// FPTAS's delta computation.
func (t *IPRoutes) MaxHops(endpoints []graph.NodeID) int {
	max := 0
	for i, u := range endpoints {
		for _, v := range endpoints[i+1:] {
			if h := t.Hops(u, v); h > max {
				max = h
			}
		}
	}
	return max
}

// DijkstraScratch is reusable Dijkstra state for one graph: the indexed heap
// plus default distance/parent arrays. A scratch eliminates the three O(n)
// allocations every ShortestPaths call would otherwise make — the hot-path
// cost of the arbitrary-routing oracles, which run one Dijkstra per session
// member per Garg–Könemann iteration. A scratch is not safe for concurrent
// use; pool one per worker.
type DijkstraScratch struct {
	heap   *graph.IndexedHeap
	dist   []float64
	parent []graph.EdgeID

	// OnPop, when non-nil, is called once per settled node in pop order by
	// ShortestPathsInto and RepairSubtreesInto. It exists so tests can record
	// and compare the deterministic (key, id) pop sequence — the property the
	// subtree-repair path must reproduce bit-exactly; leave it nil on hot
	// paths.
	OnPop func(graph.NodeID)

	// Subtree-repair scratch (see RepairSubtreesInto), lazily sized on first
	// use: a generation-stamped membership mark for the invalidated set S and
	// a matching stamp marking nodes whose parent is still their precomputed
	// frontier offer (the equal-key replacement rule needs to know).
	mark    []uint32
	pend    []uint32
	markGen uint32
}

// NewDijkstraScratch sizes a scratch for g.
func NewDijkstraScratch(g *graph.Graph) *DijkstraScratch {
	n := g.NumNodes()
	return &DijkstraScratch{
		heap:   graph.NewIndexedHeap(n),
		dist:   make([]float64, n),
		parent: make([]graph.EdgeID, n),
	}
}

// ShortestPaths runs Dijkstra from src under d, reusing the scratch's own
// arrays. The returned slices are valid until the next call on this scratch.
func (sc *DijkstraScratch) ShortestPaths(g *graph.Graph, src graph.NodeID, d graph.Lengths) (dist []float64, parent []graph.EdgeID) {
	sc.ShortestPathsInto(g, src, d, sc.dist, sc.parent)
	return sc.dist, sc.parent
}

// ShortestPathsInto runs Dijkstra from src under d, writing distances and
// parent edges into the caller-supplied slices (each of length g.NumNodes()).
// It allocates nothing: the heap is reused across calls and dist/parent are
// fully overwritten. Tie-breaking is identical to ShortestPaths.
func (sc *DijkstraScratch) ShortestPathsInto(g *graph.Graph, src graph.NodeID, d graph.Lengths, dist []float64, parent []graph.EdgeID) {
	n := g.NumNodes()
	if len(dist) != n || len(parent) != n {
		panic("routing: DijkstraScratch slice size mismatch")
	}
	const inf = 1e308
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	h := sc.heap
	h.Reset()
	h.Push(src, 0)
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > dist[v] {
			continue
		}
		if sc.OnPop != nil {
			sc.OnPop(v)
		}
		ids, tos := g.Neighbors(v)
		for k, id := range ids {
			w := tos[k]
			nd := dv + d[id]
			if nd < dist[w] {
				dist[w] = nd
				parent[w] = id
				h.PushOrDecrease(w, nd)
			}
		}
	}
}

// ShortestPaths runs Dijkstra from src under the length function d and
// returns, for every node, the distance and the parent edge on a shortest
// path tree (deterministic tie-breaks by heap order). Used by the
// arbitrary-routing variants (Sec. V-B). It allocates fresh state per call;
// iterative callers should hold a DijkstraScratch instead.
func ShortestPaths(g *graph.Graph, src graph.NodeID, d graph.Lengths) (dist []float64, parent []graph.EdgeID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	parent = make([]graph.EdgeID, n)
	sc := &DijkstraScratch{heap: graph.NewIndexedHeap(n)}
	sc.ShortestPathsInto(g, src, d, dist, parent)
	return dist, parent
}

// DijkstraRoute extracts the src->dst path from ShortestPaths output.
func DijkstraRoute(g *graph.Graph, src, dst graph.NodeID, parent []graph.EdgeID) (Path, error) {
	if src == dst {
		return Path{Nodes: []graph.NodeID{src}}, nil
	}
	p, err := walkToRoot(g, parent, src, dst)
	if err != nil {
		return Path{}, err
	}
	return p.Reverse(), nil
}
