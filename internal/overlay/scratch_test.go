package overlay

import (
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

// scratchEnv builds a Waxman instance with one session and both oracles.
func scratchEnv(t testing.TB, seed uint64, nodes, size int) (*graph.Graph, *FixedOracle, *ArbitraryOracle) {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Waxman(topology.DefaultWaxman(nodes), r.Split(0))
	if err != nil {
		t.Fatal(err)
	}
	members := r.Split(1).Sample(nodes, size)
	s, err := NewSession(0, members, 100)
	if err != nil {
		t.Fatal(err)
	}
	rt := routing.NewIPRoutes(net.Graph, members)
	fo, err := NewFixedOracle(net.Graph, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	ao, err := NewArbitraryOracle(net.Graph, s)
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, fo, ao
}

// TestMinTreeWithMatchesMinTree asserts the scratch path returns trees
// identical (by canonical key and dual length) to the allocating path, for
// both oracles, across varied length functions and repeated scratch reuse.
func TestMinTreeWithMatchesMinTree(t *testing.T) {
	g, fo, ao := scratchEnv(t, 5, 80, 7)
	sc := NewScratch(g)
	lr := rng.New(99)
	for trial := 0; trial < 25; trial++ {
		d := graph.NewLengths(g, 0)
		for e := range d {
			d[e] = 0.01 + lr.Float64()
		}
		for _, o := range []TreeOracle{fo, ao} {
			want, err := o.MinTree(d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := MinTreeWith(o, d, sc)
			if err != nil {
				t.Fatal(err)
			}
			if got.Key() != want.Key() {
				t.Fatalf("trial %d: scratch tree key %q != %q", trial, got.Key(), want.Key())
			}
			if got.LengthUnder(d) != want.LengthUnder(d) {
				t.Fatalf("trial %d: scratch tree length %v != %v", trial, got.LengthUnder(d), want.LengthUnder(d))
			}
			wu, gu := want.Use(), got.Use()
			if len(wu) != len(gu) {
				t.Fatalf("trial %d: use lengths differ: %d vs %d", trial, len(gu), len(wu))
			}
			for i := range wu {
				if wu[i] != gu[i] {
					t.Fatalf("trial %d: use[%d] = %+v, want %+v", trial, i, gu[i], wu[i])
				}
			}
		}
	}
}

// TestMinTreeWithAllocs is the allocation regression test for the MOST hot
// path: with a pooled scratch, a fixed-oracle MinTree call may only allocate
// the returned tree (struct, pairs, routes, use — a handful of allocations,
// where the pre-refactor path made dozens growing with session size and
// route length).
func TestMinTreeWithAllocs(t *testing.T) {
	g, fo, ao := scratchEnv(t, 6, 200, 8)
	sc := NewScratch(g)
	d := graph.NewLengths(g, 1)

	fixed := testing.AllocsPerRun(50, func() {
		if _, err := fo.MinTreeWith(d, sc); err != nil {
			t.Fatal(err)
		}
	})
	// Tree struct + pairs + routes + use = 4; allow one stray.
	if fixed > 5 {
		t.Fatalf("FixedOracle.MinTreeWith allocates %v per run, want <= 5", fixed)
	}

	arbitrary := testing.AllocsPerRun(50, func() {
		if _, err := ao.MinTreeWith(d, sc); err != nil {
			t.Fatal(err)
		}
	})
	// The arbitrary oracle additionally materializes one fresh Path (nodes +
	// edges slices, with append growth) per overlay edge.
	limit := float64(4 + 8*ao.Session().Receivers())
	if arbitrary > limit {
		t.Fatalf("ArbitraryOracle.MinTreeWith allocates %v per run, want <= %v", arbitrary, limit)
	}
}
