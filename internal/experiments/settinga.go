// Package experiments regenerates every table and figure of the paper's
// evaluation. Setting A (this file) is the Sec. III-B environment: a
// 100-node BRITE-style Waxman router topology with uniform capacity 100 and
// two multicast sessions (7 and 5 members, both with demand 100). Setting B
// (settingb.go) is the Sec. VI two-level AS/router grid sweep.
//
// Absolute numbers differ from the paper's (its BRITE seed was never
// published); the harness reproduces the *shapes*: monotonicity in the
// approximation ratio, tree-count growth, fairness shifts, asymmetric rate
// distributions, and the ~1% impact of IP routing.
package experiments

import (
	"fmt"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/stats"
	"overcast/internal/topology"
)

// PaperRatios are the approximation ratios swept by Tables II/IV/VII/VIII.
var PaperRatios = []float64{0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97, 0.98, 0.99}

// SettingA is the Sec. III-B experimental environment.
type SettingA struct {
	Seed     uint64
	Net      *topology.Network
	Sessions []*overlay.Session
	// ProblemIP and ProblemArb share the network and sessions but differ in
	// routing mode.
	ProblemIP  *core.Problem
	ProblemArb *core.Problem
	// SolverWorkers is the per-solve oracle worker-pool size (0 keeps the
	// solver sequential; the sweeps already parallelize across rows/trials).
	// Results are bit-identical for every value.
	SolverWorkers int
	// SolverDisableRepair turns off the plane's cross-round dirty-source
	// repair (see core.MaxFlowOptions.DisableRepair); results are
	// bit-identical either way.
	SolverDisableRepair bool
	// SolverDisableSubtreeRepair turns off repair's incremental subtree
	// path (see core.MaxFlowOptions.DisableSubtreeRepair); results are
	// bit-identical either way.
	SolverDisableSubtreeRepair bool
	// SolverDisablePlane turns off the solvers' shared SSSP plane (see
	// core.MaxFlowOptions.DisablePlane); results are bit-identical either
	// way.
	SolverDisablePlane bool
}

// SettingAConfig allows scaling the environment down for tests and benches.
type SettingAConfig struct {
	Nodes        int   // topology size (paper: 100)
	SessionSizes []int // paper: {7, 5}
	Demand       float64
	Capacity     float64
}

// DefaultSettingA returns the paper's Sec. III-B parameters.
func DefaultSettingA() SettingAConfig {
	return SettingAConfig{Nodes: 100, SessionSizes: []int{7, 5}, Demand: 100, Capacity: 100}
}

// NewSettingA builds the environment deterministically from a seed.
func NewSettingA(seed uint64, cfg SettingAConfig) (*SettingA, error) {
	if cfg.Nodes < 4 {
		return nil, fmt.Errorf("experiments: setting A needs >=4 nodes, got %d", cfg.Nodes)
	}
	r := rng.New(seed)
	wax := topology.DefaultWaxman(cfg.Nodes)
	if cfg.Capacity > 0 {
		wax.Capacity = cfg.Capacity
	}
	net, err := topology.Waxman(wax, r.Split(0))
	if err != nil {
		return nil, err
	}
	memberRNG := r.Split(1)
	total := 0
	for _, sz := range cfg.SessionSizes {
		total += sz
	}
	if total > cfg.Nodes {
		return nil, fmt.Errorf("experiments: %d session members exceed %d nodes", total, cfg.Nodes)
	}
	perm := memberRNG.Perm(cfg.Nodes)
	var sessions []*overlay.Session
	off := 0
	for i, sz := range cfg.SessionSizes {
		s, err := overlay.NewSession(i, perm[off:off+sz], cfg.Demand)
		if err != nil {
			return nil, err
		}
		sessions = append(sessions, s)
		off += sz
	}
	// Fixed IP routes follow BRITE's propagation-delay metric (Euclidean
	// link lengths), matching the paper's "shortest-path routing".
	delays := net.LinkDelays()
	pIP, err := core.NewProblemWeighted(net.Graph, sessions, core.RoutingIP, delays)
	if err != nil {
		return nil, err
	}
	pArb, err := core.NewProblemWeighted(net.Graph, sessions, core.RoutingArbitrary, delays)
	if err != nil {
		return nil, err
	}
	return &SettingA{Seed: seed, Net: net, Sessions: sessions, ProblemIP: pIP, ProblemArb: pArb}, nil
}

// FlowRow is one column of Table II/VII.
type FlowRow struct {
	Ratio        float64
	SessionRates []float64
	Throughput   float64
	TreeCounts   []int
	MSTOps       int
}

// MaxFlowSweep runs MaxFlow at each approximation ratio (Table II with IP
// routing, Table VII with arbitrary routing) and returns the rows plus the
// full solutions (inputs to Figs. 2/7 and 4a/9a). Ratios map to epsilon via
// ratio = (1-eps)^2. Rows are computed concurrently.
func (a *SettingA) MaxFlowSweep(ratios []float64, arbitrary bool) ([]FlowRow, []*core.Solution, error) {
	p := a.ProblemIP
	if arbitrary {
		p = a.ProblemArb
	}
	rows := make([]FlowRow, len(ratios))
	sols := make([]*core.Solution, len(ratios))
	errs := make([]error, len(ratios))
	parallelFor(len(ratios), func(i int) {
		sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: core.RatioToEpsilon(ratios[i]), Workers: a.SolverWorkers, DisablePlane: a.SolverDisablePlane, DisableRepair: a.SolverDisableRepair, DisableSubtreeRepair: a.SolverDisableSubtreeRepair})
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = flowRow(p, sol, ratios[i])
		sols[i] = sol
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, sols, nil
}

func flowRow(p *core.Problem, sol *core.Solution, ratio float64) FlowRow {
	row := FlowRow{Ratio: ratio, MSTOps: sol.MSTOps, Throughput: sol.OverallThroughput()}
	for i := range p.Sessions {
		row.SessionRates = append(row.SessionRates, sol.SessionRate(i))
		row.TreeCounts = append(row.TreeCounts, sol.TreeCount(i))
	}
	return row
}

// MCFRow is one column of Table IV/VIII.
type MCFRow struct {
	FlowRow
	Lambda     float64
	PrestepOps int // second running-time component (beta computation)
}

// MCFSweep runs MaxConcurrentFlow at each ratio (Table IV with IP routing,
// Table VIII with arbitrary routing), with the surplus pass enabled as the
// paper's reported per-session rates imply (they exceed lambda·dem for the
// large session). Ratio maps to epsilon via ratio = (1-eps)^3.
func (a *SettingA) MCFSweep(ratios []float64, arbitrary bool) ([]MCFRow, []*core.Solution, error) {
	p := a.ProblemIP
	if arbitrary {
		p = a.ProblemArb
	}
	rows := make([]MCFRow, len(ratios))
	sols := make([]*core.Solution, len(ratios))
	errs := make([]error, len(ratios))
	parallelFor(len(ratios), func(i int) {
		res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
			Epsilon:              core.MCFRatioToEpsilon(ratios[i]),
			SurplusPass:          true,
			Workers:              a.SolverWorkers,
			DisablePlane:         a.SolverDisablePlane,
			DisableRepair:        a.SolverDisableRepair,
			DisableSubtreeRepair: a.SolverDisableSubtreeRepair,
		})
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = MCFRow{FlowRow: flowRow(p, res.Solution, ratios[i]), Lambda: res.Lambda, PrestepOps: res.PrestepMSTOps}
		rows[i].MSTOps = res.MSTOps - res.PrestepMSTOps
		sols[i] = res.Solution
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return rows, sols, nil
}

// RateCDFs extracts the per-session accumulative tree-rate distributions of
// a solution (Figs. 2, 3, 7, 8).
func RateCDFs(sol *core.Solution) [][]stats.Point {
	out := make([][]stats.Point, len(sol.Sessions))
	for i := range sol.Sessions {
		out[i] = stats.AccumulativeRateCDF(sol.RateDistribution(i))
	}
	return out
}

// LinkUtilizationCDF extracts the link-utilization distribution of a
// solution over covered links (Figs. 4, 9, 14).
func LinkUtilizationCDF(sol *core.Solution) []stats.Point {
	return stats.UtilizationCDF(sol.Utilizations())
}

// TreeLimitPoint is one averaged measurement of the Fig. 5/6 sweeps.
type TreeLimitPoint struct {
	Throughput float64
	// SessionRates[i] is the average aggregate rate of base session i.
	SessionRates []float64
	// TreesUsed[i] is the average number of distinct trees of base session i.
	TreesUsed []float64
}

// TreeLimitResult bundles the Fig. 5/6 (or 10/11) sweeps.
type TreeLimitResult struct {
	MaxTrees []int
	// Random[j] is the random-selection algorithm at limit MaxTrees[j].
	Random []TreeLimitPoint
	// Online[mu][j] is the online algorithm with step size mu.
	Online map[float64][]TreeLimitPoint
}

// TreeLimitConfig configures the Fig. 5/6 protocol.
type TreeLimitConfig struct {
	MaxTrees  []int     // paper: 1..20
	Mus       []float64 // paper: 10,20,30,40,100,200
	Trials    int       // paper: 100
	BaseRatio float64   // fractional base for the random algorithm (paper: 0.95)
	Arbitrary bool      // Figs. 10/11 variant
}

// DefaultTreeLimit returns the paper's Fig. 5/6 protocol parameters.
func DefaultTreeLimit() TreeLimitConfig {
	return TreeLimitConfig{
		MaxTrees:  []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20},
		Mus:       []float64{10, 20, 30, 40, 100, 200},
		Trials:    100,
		BaseRatio: 0.95,
	}
}

// TreeLimitSweep implements the Sec. IV-D protocol. Random algorithm: run
// MaxConcurrentFlow once at BaseRatio, then per trial draw n trees per
// session proportional to rate and keep their fractional rates. Online
// algorithm: replicate each base session n times with demand 1, admit them
// in a random order, and finalize; a base session's rate is the sum over its
// replicas. Results are averaged over Trials random draws/orders; trials run
// concurrently with per-trial split RNGs, so results are independent of
// scheduling.
func (a *SettingA) TreeLimitSweep(cfg TreeLimitConfig) (*TreeLimitResult, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: Trials must be >=1")
	}
	p := a.ProblemIP
	if cfg.Arbitrary {
		p = a.ProblemArb
	}
	base, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
		Epsilon: core.MCFRatioToEpsilon(cfg.BaseRatio), SurplusPass: true,
		Workers: a.SolverWorkers, DisablePlane: a.SolverDisablePlane, DisableRepair: a.SolverDisableRepair,
		DisableSubtreeRepair: a.SolverDisableSubtreeRepair,
	})
	if err != nil {
		return nil, err
	}
	res := &TreeLimitResult{
		MaxTrees: cfg.MaxTrees,
		Random:   make([]TreeLimitPoint, len(cfg.MaxTrees)),
		Online:   make(map[float64][]TreeLimitPoint, len(cfg.Mus)),
	}
	root := rng.New(a.Seed ^ 0x5eed)

	// Random-selection sweep.
	for j, n := range cfg.MaxTrees {
		pt, err := a.randomPoint(p, base.Solution, n, cfg.Trials, root.Split(uint64(j)))
		if err != nil {
			return nil, err
		}
		res.Random[j] = pt
	}
	// Online sweep per mu.
	for mi, mu := range cfg.Mus {
		pts := make([]TreeLimitPoint, len(cfg.MaxTrees))
		for j, n := range cfg.MaxTrees {
			pt, err := a.onlinePoint(p, mu, n, cfg.Trials, root.Split(uint64(1000+mi*100+j)))
			if err != nil {
				return nil, err
			}
			pts[j] = pt
		}
		res.Online[mu] = pts
	}
	return res, nil
}

// randomPoint averages the random-selection algorithm at tree limit n.
func (a *SettingA) randomPoint(p *core.Problem, base *core.Solution, n, trials int, r *rng.RNG) (TreeLimitPoint, error) {
	k := p.K()
	sums := make([]TreeLimitPoint, trials)
	errs := make([]error, trials)
	parallelFor(trials, func(t int) {
		sol, err := core.SelectTrees(p, base, n, r.Split(uint64(t)))
		if err != nil {
			errs[t] = err
			return
		}
		pt := TreeLimitPoint{Throughput: sol.OverallThroughput(), SessionRates: make([]float64, k), TreesUsed: make([]float64, k)}
		for i := 0; i < k; i++ {
			pt.SessionRates[i] = sol.SessionRate(i)
			pt.TreesUsed[i] = float64(sol.TreeCount(i))
		}
		sums[t] = pt
	})
	for _, err := range errs {
		if err != nil {
			return TreeLimitPoint{}, err
		}
	}
	return averagePoints(sums, k), nil
}

// onlinePoint averages the online algorithm with n replicas of each base
// session over random arrival orders.
func (a *SettingA) onlinePoint(p *core.Problem, mu float64, n, trials int, r *rng.RNG) (TreeLimitPoint, error) {
	k := p.K()
	var rt *routing.IPRoutes
	if p.Mode != core.RoutingArbitrary {
		var members []graph.NodeID
		for _, s := range p.Sessions {
			members = append(members, s.Members...)
		}
		rt = ipRoutesFor(p, members)
	}
	sums := make([]TreeLimitPoint, trials)
	errs := make([]error, trials)
	parallelFor(trials, func(t int) {
		tr := r.Split(uint64(t))
		// Arrival sequence: n replicas of each base session, shuffled.
		arrivals := make([]int, 0, n*k)
		for rep := 0; rep < n; rep++ {
			for i := 0; i < k; i++ {
				arrivals = append(arrivals, i)
			}
		}
		tr.Shuffle(arrivals)
		on, err := core.NewOnline(p.G, mu)
		if err != nil {
			errs[t] = err
			return
		}
		owners := make([]int, 0, len(arrivals))
		for idx, baseIdx := range arrivals {
			s, err := overlay.NewSession(idx, p.Sessions[baseIdx].Members, 1)
			if err != nil {
				errs[t] = err
				return
			}
			oracle, err := makeOracle(p, rt, s)
			if err != nil {
				errs[t] = err
				return
			}
			if _, err := on.Join(oracle); err != nil {
				errs[t] = err
				return
			}
			owners = append(owners, baseIdx)
		}
		sol, err := on.Finalize()
		if err != nil {
			errs[t] = err
			return
		}
		pt := TreeLimitPoint{SessionRates: make([]float64, k), TreesUsed: make([]float64, k)}
		distinct := make([]map[string]bool, k)
		for i := range distinct {
			distinct[i] = make(map[string]bool)
		}
		for idx, baseIdx := range owners {
			rate := sol.SessionRate(idx)
			pt.SessionRates[baseIdx] += rate
			pt.Throughput += float64(p.Sessions[baseIdx].Receivers()) * rate
			// Distinct physical trees: strip the session id from the key by
			// reusing pair/route identity via a re-stamped tree.
			tcopy := overlay.NewTree(baseIdx, sol.Flows[idx][0].Tree.Pairs, sol.Flows[idx][0].Tree.Routes)
			distinct[baseIdx][tcopy.Key()] = true
		}
		for i := 0; i < k; i++ {
			pt.TreesUsed[i] = float64(len(distinct[i]))
		}
		sums[t] = pt
	})
	for _, err := range errs {
		if err != nil {
			return TreeLimitPoint{}, err
		}
	}
	return averagePoints(sums, k), nil
}

// makeOracle instantiates the oracle matching p's routing mode for a
// (possibly re-indexed) session. rt may be nil in arbitrary mode, which
// needs no fixed route table.
func makeOracle(p *core.Problem, rt *routing.IPRoutes, s *overlay.Session) (overlay.TreeOracle, error) {
	if p.Mode == core.RoutingArbitrary {
		return overlay.NewArbitraryOracle(p.G, s)
	}
	return overlay.NewFixedOracle(p.G, rt, s)
}

// ipRoutesFor builds fixed route tables consistent with p's routing weights.
func ipRoutesFor(p *core.Problem, members []graph.NodeID) *routing.IPRoutes {
	if p.RouteWeights != nil {
		return routing.NewWeightedIPRoutes(p.G, members, p.RouteWeights)
	}
	return routing.NewIPRoutes(p.G, members)
}

func averagePoints(pts []TreeLimitPoint, k int) TreeLimitPoint {
	avg := TreeLimitPoint{SessionRates: make([]float64, k), TreesUsed: make([]float64, k)}
	n := float64(len(pts))
	for _, pt := range pts {
		avg.Throughput += pt.Throughput / n
		for i := 0; i < k; i++ {
			avg.SessionRates[i] += pt.SessionRates[i] / n
			avg.TreesUsed[i] += pt.TreesUsed[i] / n
		}
	}
	return avg
}
