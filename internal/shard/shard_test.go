package shard_test

import (
	"testing"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/shard"
	"overcast/internal/topology"
)

// TestPartitionEveryEdgeOwnedOrCut is the partition-sanity property test:
// over a real two-level topology, for several shard counts, every node lands
// in exactly one shard and every edge is either owned by exactly one shard
// (both endpoints inside it) or appears exactly once in the cut set, with a
// boundary stub on each side.
func TestPartitionEveryEdgeOwnedOrCut(t *testing.T) {
	net, err := topology.TwoLevel(topology.DefaultTwoLevel(6, 12), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	for _, shards := range []int{1, 2, 4, 6} {
		part := shard.ByLabels(net.ASOf, shards)
		if part.Shards != shards || len(part.Of) != g.NumNodes() {
			t.Fatalf("shards=%d: partition shape %d/%d", shards, part.Shards, len(part.Of))
		}
		for v, s := range part.Of {
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: node %d in shard %d", shards, v, s)
			}
		}
		// Whole-label grouping: two nodes of one AS never split.
		asShard := make(map[int]int)
		for v, a := range net.ASOf {
			if prev, ok := asShard[a]; ok && prev != part.Of[v] {
				t.Fatalf("shards=%d: AS %d split across shards %d and %d", shards, a, prev, part.Of[v])
			}
			asShard[a] = part.Of[v]
		}
		l := shard.NewLayout(g, part)
		inCut := make(map[graph.EdgeID]bool)
		for i, e := range l.Cut {
			if i > 0 && l.Cut[i-1] >= e {
				t.Fatalf("shards=%d: cut set not ascending at %d", shards, i)
			}
			inCut[e] = true
		}
		for e, edge := range g.Edges {
			su, sv := part.Of[edge.U], part.Of[edge.V]
			switch owner := l.Owner[e]; {
			case owner >= 0:
				if inCut[e] || su != owner || sv != owner {
					t.Fatalf("shards=%d: edge %d owner %d but endpoint shards %d/%d (cut=%v)", shards, e, owner, su, sv, inCut[e])
				}
			default:
				if !inCut[e] || su == sv {
					t.Fatalf("shards=%d: edge %d cut-marked but endpoint shards %d/%d (in cut set: %v)", shards, e, su, sv, inCut[e])
				}
			}
		}
		// Each cut edge contributes exactly one stub per side.
		stubCount := make(map[graph.EdgeID]int)
		for s, stubs := range l.Stubs {
			for _, st := range stubs {
				stubCount[st.Edge]++
				if part.Of[st.Local] != s || part.Of[st.Remote] != st.RemoteShard || st.RemoteShard == s {
					t.Fatalf("shards=%d: inconsistent stub %+v in shard %d", shards, st, s)
				}
			}
		}
		if len(stubCount) != len(l.Cut) {
			t.Fatalf("shards=%d: %d stubbed edges vs %d cut edges", shards, len(stubCount), len(l.Cut))
		}
		for e, n := range stubCount {
			if n != 2 {
				t.Fatalf("shards=%d: cut edge %d has %d stubs, want 2", shards, e, n)
			}
		}
	}
	// ByRange covers the label-free fallback with the same ownership
	// property.
	part := shard.ByRange(g.NumNodes(), 3)
	l := shard.NewLayout(g, part)
	for e, edge := range g.Edges {
		su, sv := part.Of[edge.U], part.Of[edge.V]
		if owner := l.Owner[e]; owner >= 0 != (su == sv) {
			t.Fatalf("ByRange: edge %d owner %d with endpoint shards %d/%d", e, owner, su, sv)
		}
	}
}

// boundaryFixture is a hand-built 2-shard graph whose cut set is known by
// construction: a triangle per shard plus two cross links.
//
//	shard 0: 0-1, 1-2, 0-2      shard 1: 3-4, 4-5, 3-5
//	cut:     2-3, 0-5
func boundaryFixture(t *testing.T) (g *graph.Graph, labels []int, eid func(u, v graph.NodeID) graph.EdgeID) {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, uv := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}, {0, 5}} {
		if err := b.AddEdge(uv[0], uv[1], 10); err != nil {
			t.Fatal(err)
		}
	}
	g = b.Build()
	eid = func(u, v graph.NodeID) graph.EdgeID {
		for e, edge := range g.Edges {
			if (edge.U == u && edge.V == v) || (edge.U == v && edge.V == u) {
				return e
			}
		}
		t.Fatalf("no edge %d-%d", u, v)
		return -1
	}
	return g, []int{0, 0, 0, 1, 1, 1}, eid
}

func fixtureOracles(t *testing.T, g *graph.Graph) []overlay.TreeOracle {
	t.Helper()
	var oracles []overlay.TreeOracle
	for i, members := range [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}, {1, 4}} {
		s, err := overlay.NewSession(i, members, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := overlay.NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	return oracles
}

// TestPriceExchangeGoldenSequence pins the cut-edge message sequence for a
// fixed script of ledger mutations: messages carry the authoritative
// last-touch epoch and the absolute length, deduplicated to final values in
// first-touch order, and only boundary-crossing edges reach the trace. The
// fixture's lengths are exactly representable, so the expectations are exact
// float64 bits, not tolerances.
func TestPriceExchangeGoldenSequence(t *testing.T) {
	g, labels, eid := boundaryFixture(t)
	oracles := fixtureOracles(t, g)
	var trace []shard.PriceMsg
	gp := shard.NewGroup(g, oracles, shard.Options{
		Shards: 2, Labels: labels, Workers: 1, SharedPlane: true,
		Trace: func(m shard.PriceMsg) { trace = append(trace, m) },
	})
	defer gp.Close()
	e01, e23, e05 := eid(0, 1), eid(2, 3), eid(0, 5)
	ls := graph.NewLengthStore(g, 1)

	// Round 1 is a full snapshot resync: nothing crosses as messages.
	gp.MinTreesLen(ls, nil)
	if len(trace) != 0 {
		t.Fatalf("round 1: expected snapshot resync, traced %v", trace)
	}
	if st := gp.Stats(); st.Resyncs != 2 || st.ExchangeRounds != 1 {
		t.Fatalf("round 1 stats: %+v", st)
	}

	// Scripted mutations: e23 touched twice (must dedupe to its final value
	// and last epoch), e01 is shard-0-interior (never traced), e05 once.
	ls.Bump(e23, 1.5)  // epoch 1
	ls.Bump(e01, 2)    // epoch 2
	ls.Bump(e05, 1.25) // epoch 3
	ls.Bump(e23, 2)    // epoch 4: e23 = 3.0
	gp.MinTrees(ls, nil)
	want := []shard.PriceMsg{
		{Epoch: 4, CutEdge: e23, Length: 3.0},
		{Epoch: 3, CutEdge: e05, Length: 1.25},
	}
	if len(trace) != len(want) {
		t.Fatalf("round 2: traced %v, want %v", trace, want)
	}
	for i, m := range want {
		if trace[i] != m {
			t.Fatalf("round 2 msg %d: got %+v, want %+v", i, trace[i], m)
		}
	}

	// A shrink crosses as its absolute value too (replicas detect the
	// shrink themselves via Raise).
	trace = trace[:0]
	ls.Set(e05, 0.5) // epoch 5
	gp.MinTrees(ls, nil)
	if len(trace) != 1 || trace[0] != (shard.PriceMsg{Epoch: 5, CutEdge: e05, Length: 0.5}) {
		t.Fatalf("round 3: traced %v", trace)
	}

	st := gp.Stats()
	if st.Shards != 2 || len(st.Rounds) != 2 {
		t.Fatalf("stats shape: %+v", st)
	}
	// Rounds 1–3 all evaluate both shards' oracles.
	if st.Rounds[0] != 3 || st.Rounds[1] != 3 {
		t.Fatalf("per-shard rounds: %+v", st.Rounds)
	}
	// Round 2 delivered 3 msgs (2 cut) to each of 2 replicas; round 3 one
	// cut msg to each.
	if st.Msgs != 8 || st.CutMsgs != 6 || st.ExchangeBytes != 6*24 {
		t.Fatalf("exchange counters: %+v", st)
	}
}

// TestGroupMatchesBatchRunner drives the same mutation/evaluation script
// through a sharded Group and a plain BatchRunner and requires bitwise equal
// results — trees and raw lengths — every round, including after a
// non-monotone mutation and a partial-batch round.
func TestGroupMatchesBatchRunner(t *testing.T) {
	net, err := topology.TwoLevel(topology.DefaultTwoLevel(4, 8), rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	r := rng.New(5)
	perm := r.Perm(g.NumNodes())
	var oracles []overlay.TreeOracle
	for i, span := range [][2]int{{0, 4}, {4, 7}, {7, 12}, {12, 14}, {14, 18}} {
		s, err := overlay.NewSession(i, perm[span[0]:span[1]], 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := overlay.NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	for _, shards := range []int{1, 2, 4} {
		gp := shard.NewGroup(g, oracles, shard.Options{
			Shards: shards, Labels: net.ASOf, Workers: 2, SharedPlane: true,
		})
		ref := overlay.NewBatchRunnerOpts(g, oracles, overlay.BatchOptions{Workers: 1, SharedPlane: true})
		ls := graph.NewLengthStore(g, 1)
		mut := rng.New(101)
		for round := 0; round < 12; round++ {
			var ids []int
			if round%3 == 2 {
				ids = []int{0, 2, 4}
			}
			got := gp.MinTreesLen(ls, ids)
			wantRes := ref.MinTreesLen(ls, ids)
			if len(got) != len(wantRes) {
				t.Fatalf("shards=%d round %d: %d results vs %d", shards, round, len(got), len(wantRes))
			}
			for pos := range got {
				if got[pos].Err != nil || wantRes[pos].Err != nil {
					t.Fatalf("shards=%d round %d pos %d: errs %v / %v", shards, round, pos, got[pos].Err, wantRes[pos].Err)
				}
				if got[pos].Tree.Key() != wantRes[pos].Tree.Key() {
					t.Fatalf("shards=%d round %d pos %d: trees differ", shards, round, pos)
				}
				if got[pos].Len != wantRes[pos].Len {
					t.Fatalf("shards=%d round %d pos %d: len %.17g != %.17g", shards, round, pos, got[pos].Len, wantRes[pos].Len)
				}
			}
			// Mutate a few random edges; round 7 injects a shrink so the
			// replicas must survive a non-monotone window.
			for j := 0; j < 5; j++ {
				e := mut.Intn(g.NumEdges())
				ls.Bump(e, 1+0.25*mut.Float64())
			}
			if round == 7 {
				ls.Set(mut.Intn(g.NumEdges()), 0.75)
			}
		}
		st := gp.Stats()
		if st.ExchangeRounds != 12 || st.Msgs == 0 {
			t.Fatalf("shards=%d: exchange stats %+v", shards, st)
		}
		gp.Close()
		ref.Close()
	}
}

// TestGroupFaultBurstResync pins the journal-window-loss resync path: a
// mutation burst larger than graph.JournalWindow between two exchange rounds
// makes the authoritative diff unreplayable, so the group must fall back to a
// full-snapshot resync (counted in FaultResyncs, a subset of Resyncs) and
// still produce results bitwise equal to an unsharded runner.
func TestGroupFaultBurstResync(t *testing.T) {
	g, labels, _ := boundaryFixture(t)
	oracles := fixtureOracles(t, g)
	gp := shard.NewGroup(g, oracles, shard.Options{
		Shards: 2, Labels: labels, Workers: 1, SharedPlane: true,
	})
	defer gp.Close()
	ref := overlay.NewBatchRunnerOpts(g, oracles, overlay.BatchOptions{Workers: 1, SharedPlane: true})
	defer ref.Close()
	ls := graph.NewLengthStore(g, 1)

	check := func(round int) {
		t.Helper()
		got, wantRes := gp.MinTreesLen(ls, nil), ref.MinTreesLen(ls, nil)
		for pos := range got {
			if got[pos].Tree.Key() != wantRes[pos].Tree.Key() || got[pos].Len != wantRes[pos].Len {
				t.Fatalf("round %d pos %d: sharded result diverged", round, pos)
			}
		}
	}
	check(0)
	if st := gp.Stats(); st.FaultResyncs != 0 {
		t.Fatalf("initial snapshot round must not count as a fault resync: %+v", st)
	}

	// Fault burst: overflow the journal window with alternating down/up
	// mutations (a net non-monotone sweep), so the next sync cannot replay
	// the diff.
	// Alternate the factor per sweep so lengths stay bounded (each edge's
	// cumulative factor is 2 or 1, never a runaway power).
	m := g.NumEdges()
	for i := 0; i < graph.JournalWindow+m; i++ {
		if (i/m)%2 == 0 {
			ls.Bump(i%m, 2)
		} else {
			ls.Bump(i%m, 0.5)
		}
	}
	check(1)
	st := gp.Stats()
	if st.FaultResyncs != 2 {
		t.Fatalf("FaultResyncs = %d after a window-overflow burst, want 2 (one per shard)", st.FaultResyncs)
	}
	if st.Resyncs < st.FaultResyncs {
		t.Fatalf("FaultResyncs (%d) must be a subset of Resyncs (%d)", st.FaultResyncs, st.Resyncs)
	}

	// A small follow-up round goes back to the diff path: no new fault
	// resyncs, and still bit-identical.
	ls.Bump(0, 1.5)
	check(2)
	if st2 := gp.Stats(); st2.FaultResyncs != 2 {
		t.Fatalf("diff-path round must not add fault resyncs: %d", st2.FaultResyncs)
	}

	// Merge folds the counter.
	var merged shard.Stats
	merged.Merge(st)
	merged.Merge(st)
	if merged.FaultResyncs != 2*st.FaultResyncs {
		t.Fatalf("Merge dropped FaultResyncs: %d", merged.FaultResyncs)
	}
}

// TestGroupDynamicAddOracle covers the warm-allocator path: a Dynamic group
// that grows its oracle set between batches must keep matching the plain
// runner.
func TestGroupDynamicAddOracle(t *testing.T) {
	g, labels, _ := boundaryFixture(t)
	oracles := fixtureOracles(t, g)
	gp := shard.NewGroup(g, oracles[:1], shard.Options{
		Shards: 2, Labels: labels, Workers: 2, SharedPlane: true, Dynamic: true,
	})
	defer gp.Close()
	ref := overlay.NewBatchRunnerOpts(g, oracles[:1], overlay.BatchOptions{Workers: 1, SharedPlane: true, Dynamic: true})
	defer ref.Close()
	ls := graph.NewLengthStore(g, 1)
	check := func(round int) {
		t.Helper()
		got, wantRes := gp.MinTreesLen(ls, nil), ref.MinTreesLen(ls, nil)
		if len(got) != len(wantRes) {
			t.Fatalf("round %d: %d vs %d results", round, len(got), len(wantRes))
		}
		for pos := range got {
			if got[pos].Tree.Key() != wantRes[pos].Tree.Key() || got[pos].Len != wantRes[pos].Len {
				t.Fatalf("round %d pos %d: mismatch", round, pos)
			}
		}
	}
	check(0)
	if id := gp.AddOracle(oracles[1]); id != 1 {
		t.Fatalf("AddOracle id %d, want 1", id)
	}
	ref.AddOracle(oracles[1])
	ls.Bump(0, 1.5)
	check(1)
	if id := gp.AddOracle(oracles[2]); id != 2 {
		t.Fatalf("AddOracle id %d, want 2", id)
	}
	ref.AddOracle(oracles[2])
	check(2)
}
