// Quickstart: generate a BRITE-style topology, declare two competing
// multicast sessions, compute the multi-tree maximum-throughput allocation,
// inspect the trees, and verify deliverability on the fluid simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"overcast"
)

func main() {
	// A 100-node router-level Waxman topology with uniform capacity 100 —
	// the environment of the paper's Sec. III experiments.
	net, err := overcast.WaxmanNetwork(100, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s: %d nodes, %d links\n", net.Name(), net.Nodes(), net.Links())

	// Two sessions compete for the same links. Members[0] is the source.
	sys, err := overcast.NewSystem(net, []overcast.Session{
		{Members: []int{3, 17, 29, 41, 53, 67, 88}, Demand: 100},
		{Members: []int{5, 25, 55, 75, 95}, Demand: 100},
	}, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}

	// MaxFlow splits each session's traffic across many overlay trees and
	// provably reaches 95% of the optimal aggregate throughput.
	alloc, err := sys.MaxFlow(0.95)
	if err != nil {
		log.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < sys.NumSessions(); i++ {
		fmt.Printf("session %d: rate %.2f across %d trees\n",
			i, alloc.SessionRate(i), alloc.TreeCount(i))
		// The rate distribution is heavily skewed: a few trees carry most
		// of the traffic (the paper's "asymmetric rate distribution").
		rates := alloc.RateDistribution(i)
		top := rates[0]
		fmt.Printf("  top tree carries %.1f%% of the session's rate\n",
			100*top/alloc.SessionRate(i))
	}
	fmt.Printf("overall throughput: %.2f (sum over receivers)\n", alloc.OverallThroughput())

	// Compare against the classic single-tree overlay multicast.
	single, err := sys.SingleTreeBaseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-tree baseline: %.2f (multi-tree gain: %.2fx)\n",
		single.OverallThroughput(), alloc.OverallThroughput()/single.OverallThroughput())

	// Replay the allocation on the concurrent fluid simulator: a feasible
	// allocation is delivered loss-free.
	rep, err := alloc.Simulate(200, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated delivery: %.2f of %.2f offered (peak link utilization %.2f)\n",
		rep.OverallDelivered, alloc.OverallThroughput(), rep.PeakLinkUtilization)

	// When membership churns, the v2 Allocator admits and removes sessions
	// by opaque handle and re-solves the fair allocation incrementally
	// (see examples/churn for the full warm-start workflow).
	a, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	p, err := a.Join(overcast.Session{Members: []int{3, 17, 29, 41}, Demand: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online join: %v placed at rate %.2f on a %d-edge tree\n",
		p.Session, p.Rate, len(p.Tree.Pairs()))
	snap, err := a.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair allocation after join: throughput %.2f\n", snap.OverallThroughput())
}
