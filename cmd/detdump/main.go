// Command detdump prints a full-precision fingerprint of solver outputs on
// deterministic instances, used to verify that refactors keep solutions
// bit-identical for fixed seeds. The CI determinism gate runs it at worker
// counts 1, 2, and 8, at solver shard counts 1, 2, and 4 (-shards), with
// the shared SSSP plane enabled and disabled (-plane=false) and the plane's
// cross-round dirty-source repair enabled and disabled (-repair=false), and
// repair's incremental subtree path enabled and disabled (-subtree=false), and
// diffs the outputs: solver results must be a function of the seed only,
// never of the worker-pool size, goroutine scheduling, how oracle rounds
// were partitioned across price-exchanging shards, whether per-member
// Dijkstras were batched on the plane, or whether ledger-clean plane rows
// were repaired instead of recomputed. Perf refactors additionally diff it
// against the dump from the pre-change tree.
//
// The fingerprint covers the paper's Setting-A instances under both routing
// modes, grid-Waxman workload-scenario instances (heterogeneous
// capacities/demands, Zipf membership), a scenario-driven online/churn
// replay, a Zipf-hot arbitrary-routing instance where the plane serves
// most per-member Dijkstra reads, the v2 Allocator's warm-start churn
// path (anchor / warm-join / warm-leave snapshots, a rebalance, the
// deprecated v1 wrapper, and an end-to-end churn replay), and a seeded
// underlay fault-trace replay whose non-monotone capacity shrinks force
// the plane's full-refill degradation and the shard group's snapshot
// resyncs — the degraded paths must stay bit-identical too.
package main

import (
	"flag"
	"fmt"

	"overcast"
	"overcast/internal/core"
	"overcast/internal/experiments"
)

func main() {
	workers := flag.Int("workers", 0, "oracle worker-pool size (0 = GOMAXPROCS); output must not depend on it")
	shards := flag.Int("shards", 0, "solver shard count behind the price-exchange boundary (0 = unsharded); output must not depend on it")
	plane := flag.Bool("plane", true, "enable the solve-scoped shared SSSP plane; output must not depend on it")
	repair := flag.Bool("repair", true, "enable the plane's cross-round dirty-source repair; output must not depend on it")
	subtree := flag.Bool("subtree", true, "enable repair's incremental subtree path; output must not depend on it")
	flag.Parse()
	disablePlane := !*plane
	disableRepair := !*repair
	disableSubtree := !*subtree

	for _, arb := range []bool{false, true} {
		a, err := experiments.NewSettingA(7, experiments.SettingAConfig{
			Nodes: 120, SessionSizes: []int{7, 5, 4}, Demand: 100, Capacity: 100,
		})
		if err != nil {
			panic(err)
		}
		a.SolverWorkers = *workers
		a.SolverDisablePlane = disablePlane
		a.SolverDisableRepair = disableRepair
		a.SolverDisableSubtreeRepair = disableSubtree
		p := a.ProblemIP
		if arb {
			p = a.ProblemArb
		}
		mf, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.08, Parallel: true, Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair, DisableSubtreeRepair: disableSubtree, Shards: *shards})
		if err != nil {
			panic(err)
		}
		fmt.Printf("arb=%v maxflow mstops=%d\n", arb, mf.MSTOps)
		for i := range p.Sessions {
			fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, mf.SessionRate(i), mf.TreeCount(i))
		}
		for e, u := range mf.Utilizations() {
			if e%37 == 0 {
				fmt.Printf("  util[%d]=%.17g\n", e, u)
			}
		}
		mcf, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
			Epsilon: 0.1, Parallel: true, SurplusPass: true, Workers: *workers,
			DisablePlane: disablePlane, DisableRepair: disableRepair,
			DisableSubtreeRepair: disableSubtree, Shards: *shards,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("arb=%v mcf lambda=%.17g mstops=%d prestep=%d\n", arb, mcf.Lambda, mcf.MSTOps, mcf.PrestepMSTOps)
		for i := range p.Sessions {
			fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, mcf.SessionRate(i), mcf.TreeCount(i))
		}
		tl, err := a.TreeLimitSweep(experiments.TreeLimitConfig{
			MaxTrees: []int{1, 5}, Mus: []float64{30}, Trials: 4, BaseRatio: 0.92, Arbitrary: arb,
		})
		if err != nil {
			panic(err)
		}
		for j := range tl.MaxTrees {
			fmt.Printf("arb=%v treelimit[%d] rnd=%.17g online=%.17g\n",
				arb, j, tl.Random[j].Throughput, tl.Online[30][j].Throughput)
		}
	}

	for _, scenario := range []string{"heavytail", "cdn"} {
		si, err := experiments.NewScaleInstance(2026, experiments.ScaleConfig{
			Nodes: 300, Sessions: 10, Scenario: scenario,
			Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair,
			DisableSubtreeRepair: disableSubtree, Shards: *shards,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("scenario=%s edges=%d caps=%.17g\n",
			scenario, si.Net.Graph.NumEdges(), si.Net.Graph.TotalCapacity())
		mcf, err := si.MCF(0.3, true)
		if err != nil {
			panic(err)
		}
		fmt.Printf("scenario=%s mcf lambda=%.17g mstops=%d\n", scenario, mcf.Lambda, mcf.MSTOps)
		for i := range si.Sessions {
			fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, mcf.SessionRate(i), mcf.TreeCount(i))
		}
		mf, err := si.MaxFlow(0.3, true)
		if err != nil {
			panic(err)
		}
		fmt.Printf("scenario=%s maxflow thpt=%.17g mstops=%d\n", scenario, mf.OverallThroughput(), mf.MSTOps)
		for e, u := range mf.Utilizations() {
			if e%37 == 0 {
				fmt.Printf("  util[%d]=%.17g\n", e, u)
			}
		}
	}

	// Online/churn replay: the oracle-prefabrication worker count must not
	// leak into the sequential replay's outputs.
	for _, scenario := range []string{"conferencing", "livestream"} {
		rep, err := experiments.ChurnRun(2027, experiments.ChurnConfig{
			Nodes: 300, Scenario: scenario, Workers: *workers, DisablePlane: disablePlane,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("churn=%s sessions=%d peak=%d maxcong=%.17g active=%d thpt=%.17g minrate=%.17g mstops=%d\n",
			scenario, rep.Sessions, rep.PeakConcurrency, rep.PeakCongestion,
			rep.FinalActive, rep.Throughput, rep.MinRate, rep.MSTOps)
	}

	// Arbitrary routing under Zipf-hot membership: many sessions sharing hot
	// member nodes is exactly the regime the shared SSSP plane rebatches, so
	// pin a fingerprint where the plane serves most per-member Dijkstras.
	si, err := experiments.NewScaleInstance(2028, experiments.ScaleConfig{
		Nodes: 150, Sessions: 12, Scenario: "cdn", Arbitrary: true,
		Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair,
		DisableSubtreeRepair: disableSubtree, Shards: *shards,
	})
	if err != nil {
		panic(err)
	}
	zmf, err := si.MaxFlow(0.3, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("zipfarb=cdn maxflow thpt=%.17g mstops=%d\n", zmf.OverallThroughput(), zmf.MSTOps)
	for i := range si.Sessions {
		fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, zmf.SessionRate(i), zmf.TreeCount(i))
	}
	for e, u := range zmf.Utilizations() {
		if e%37 == 0 {
			fmt.Printf("  util[%d]=%.17g\n", e, u)
		}
	}

	// Two-level AS topology with the AS partition as the shard labels: the
	// sections above shard flat Waxman graphs by contiguous node ranges, so
	// pin one fingerprint where -shards exercises the per-AS partition (cut
	// edges = inter-AS links) the sharded solver is designed around.
	tli, err := experiments.NewScaleInstance(2031, experiments.ScaleConfig{
		Nodes: 240, Sessions: 8, SessionSize: 6, TwoLevelASes: 6,
		Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair,
		DisableSubtreeRepair: disableSubtree, Shards: *shards,
	})
	if err != nil {
		panic(err)
	}
	tmcf, err := tli.MCF(0.3, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("twolevel=%s mcf lambda=%.17g mstops=%d\n", tli.Config.Name(), tmcf.Lambda, tmcf.MSTOps)
	for i := range tli.Sessions {
		fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, tmcf.SessionRate(i), tmcf.TreeCount(i))
	}
	tmf, err := tli.MaxFlow(0.3, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("twolevel=%s maxflow thpt=%.17g mstops=%d\n", tli.Config.Name(), tmf.OverallThroughput(), tmf.MSTOps)
	for e, u := range tmf.Utilizations() {
		if e%37 == 0 {
			fmt.Printf("  util[%d]=%.17g\n", e, u)
		}
	}

	// MF-vs-MCF report fingerprint (small tier only, all scenarios): the
	// "which allocation wins where" table must be a pure function of the
	// seed, like everything above it.
	rows, err := experiments.MFvsMCFReport(2029, 0.3,
		experiments.ReportSolverOptions{Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair, DisableSubtreeRepair: disableSubtree, Shards: *shards},
		nil, []experiments.ReportTier{{Name: "small", Nodes: 300, Sessions: 12}})
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		fmt.Printf("report %s %s %s edges=%d thpt=%.17g minratio=%.17g meanutil=%.17g fairness=%.17g\n",
			row.Scenario, row.Tier, row.Solver, row.Edges, row.Throughput, row.MinRatio, row.MeanUtil, row.Fairness)
	}

	// Warm-start churn path (Allocator v2): the warm repair phases run on the
	// same BatchRunner machinery as the cold solves, so every snapshot —
	// anchor, warm-join catch-up, warm-leave re-grow — must be bit-identical
	// across worker counts and plane/repair toggles, and the warm/cold
	// refresh split itself must be deterministic.
	warmNet, err := overcast.WaxmanNetwork(60, 100, 41)
	if err != nil {
		panic(err)
	}
	wa, err := overcast.NewAllocator(warmNet, overcast.AllocatorOptions{
		Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair,
		DisableSubtreeRepair: disableSubtree, Shards: *shards,
	})
	if err != nil {
		panic(err)
	}
	defer wa.Close()
	warmSessions := []overcast.Session{
		{Members: []int{0, 11, 23, 37}, Demand: 100},
		{Members: []int{4, 18, 42}, Demand: 100},
		{Members: []int{7, 29, 51, 58}, Demand: 100},
		{Members: []int{2, 33, 49}, Demand: 100},
	}
	var warmIDs []overcast.SessionID
	for _, s := range warmSessions[:3] {
		p, err := wa.Join(s)
		if err != nil {
			panic(err)
		}
		warmIDs = append(warmIDs, p.Session)
	}
	dumpWarm := func(stage string) {
		snap, err := wa.Snapshot()
		if err != nil {
			panic(err)
		}
		st := wa.Stats()
		fmt.Printf("warmchurn %s active=%d cold=%d warm=%d repair=%d\n",
			stage, wa.Active(), st.ColdSolves, st.WarmRefreshes, st.RepairPhases)
		for i := 0; i < wa.Active(); i++ {
			fmt.Printf("  rate[%d]=%.17g trees=%d\n", i, snap.SessionRate(i), snap.TreeCount(i))
		}
	}
	dumpWarm("anchor")
	p, err := wa.Join(warmSessions[3])
	if err != nil {
		panic(err)
	}
	warmIDs = append(warmIDs, p.Session)
	dumpWarm("join")
	if err := wa.Leave(warmIDs[1]); err != nil {
		panic(err)
	}
	dumpWarm("leave")
	placements, err := wa.Rebalance()
	if err != nil {
		panic(err)
	}
	for _, pl := range placements {
		fmt.Printf("warmchurn placement %v rate=%.17g trees=%d\n", pl.Session, pl.Rate, len(pl.Trees))
	}

	// The deprecated v1 wrapper must stay bit-identical to driving the v2
	// surface directly (same seed, same joins).
	on, err := overcast.NewOnlineAllocator(warmNet, 30, overcast.RoutingIP)
	if err != nil {
		panic(err)
	}
	for i, s := range warmSessions[:3] {
		if _, err := on.Join(s); err != nil {
			panic(err)
		}
		rate, err := on.SessionRate(i)
		if err != nil {
			panic(err)
		}
		fmt.Printf("wrapper rate[%d]=%.17g\n", i, rate)
	}
	fin, err := on.Finalize()
	if err != nil {
		panic(err)
	}
	fmt.Printf("wrapper maxcong=%.17g thpt=%.17g\n", on.MaxCongestion(), fin.OverallThroughput())

	// End-to-end warm churn replay fingerprint (counters and final
	// allocation only — the per-event trace is huge).
	wrep, err := experiments.WarmChurnRun(2030, experiments.WarmChurnConfig{
		Nodes: 80, Workers: *workers, DisablePlane: disablePlane, DisableRepair: disableRepair,
		DisableSubtreeRepair: disableSubtree, Shards: *shards,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("warmchurn replay sessions=%d peak=%d snaps=%d warm=%d cold=%d repair=%d mstops=%d active=%d thpt=%.17g minrate=%.17g\n",
		wrep.Sessions, wrep.PeakConcurrency, wrep.Snapshots, wrep.WarmRefreshes, wrep.ColdSolves,
		wrep.RepairPhases, wrep.MSTOps, wrep.FinalActive, wrep.Throughput, wrep.MinRate)

	// Fault-trace replay: a seeded underlay fault scenario (link-down growth,
	// recovery shrink, capacity drift, and a journal-flooding fault storm)
	// replayed through the persistent-ledger runner path. The non-monotone
	// shrinks degrade plane rows to full refills and the storm forces sharded
	// replicas onto snapshot resyncs, and those degradation paths must stay
	// bit-identical to the never-degraded code shape. The fingerprint hashes
	// tree identities, lengths, and the final ledger only — the robustness
	// counters are toggle-dependent by design and excluded.
	for _, fc := range []experiments.FaultSolveConfig{
		{Nodes: 48, Sessions: 4, SessionSize: 4, TwoLevelASes: 4,
			Rounds: 8, FailRound: 2, RecoverRound: 4, DriftRound: 5, FaultStorm: true},
		{Nodes: 72, Sessions: 5, Rounds: 9, DriftFactor: 0.4},
	} {
		fc.Workers = *workers
		fc.Shards = *shards
		fc.DisablePlane = disablePlane
		fc.DisableRepair = disableRepair
		fc.DisableSubtreeRepair = disableSubtree
		frep, err := experiments.FaultSolveRun(2032, fc)
		if err != nil {
			panic(err)
		}
		fmt.Printf("fault nodes=%d ases=%d edges=%d rounds=%d events=%d fp=%s\n",
			fc.Nodes, fc.TwoLevelASes, frep.Edges, frep.Rounds, frep.UnderlayEvents, frep.Fingerprint)
	}
}
