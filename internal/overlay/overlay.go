// Package overlay models multicast sessions and the overlay spanning trees
// that carry their traffic.
//
// A session S_i is a set of end hosts (members), the first being the data
// source. Data is disseminated along overlay trees: spanning trees of the
// complete graph on the members, where each overlay edge is realized by a
// unicast route through the physical network. A physical edge e may be
// traversed by several overlay edges of the same tree; n_e(t) counts that
// multiplicity, and it is n_e(t) — not 1 — that multiplies the tree's rate in
// every capacity constraint (the paper's "link correlation").
package overlay

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// Session is one data dissemination session (a commodity in the
// multicommodity-flow formulation).
type Session struct {
	ID      int            // dense session index, 0-based
	Members []graph.NodeID // Members[0] is the source
	Demand  float64        // dem(i) > 0
}

// NewSession validates and constructs a session. Members must be distinct
// and at least two (a source and one receiver).
func NewSession(id int, members []graph.NodeID, demand float64) (*Session, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("overlay: session %d needs >=2 members, got %d", id, len(members))
	}
	if demand <= 0 {
		return nil, fmt.Errorf("overlay: session %d has non-positive demand %v", id, demand)
	}
	seen := make(map[graph.NodeID]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return nil, fmt.Errorf("overlay: session %d repeats member %d", id, m)
		}
		seen[m] = true
	}
	return &Session{ID: id, Members: append([]graph.NodeID(nil), members...), Demand: demand}, nil
}

// Source returns the data source of the session.
func (s *Session) Source() graph.NodeID { return s.Members[0] }

// Size returns |S_i|, the number of members.
func (s *Session) Size() int { return len(s.Members) }

// Receivers returns |S_i| - 1.
func (s *Session) Receivers() int { return len(s.Members) - 1 }

// EdgeUse records how many times a tree traverses one physical edge.
type EdgeUse struct {
	Edge  graph.EdgeID
	Count int
}

// Tree is one overlay spanning tree of a session, with its physical
// realization.
type Tree struct {
	SessionID int
	// Pairs are the overlay edges as (i,j) member-index pairs with i<j,
	// sorted lexicographically; exactly Size-1 of them, forming a spanning
	// tree over the member indices.
	Pairs [][2]int
	// Routes[k] is the physical unicast route realizing Pairs[k], oriented
	// from member Pairs[k][0] to member Pairs[k][1].
	Routes []routing.Path

	use        []EdgeUse // lazily computed, sorted by Edge
	key        string    // lazily computed canonical key
	keyHash    uint64    // lazily computed canonical key digest
	hasKeyHash bool
}

// NewTree builds a tree from overlay pairs and their routes, canonicalizing
// pair order. len(pairs) must equal len(routes).
func NewTree(sessionID int, pairs [][2]int, routes []routing.Path) *Tree {
	if len(pairs) != len(routes) {
		panic("overlay: pairs/routes length mismatch")
	}
	t := &Tree{SessionID: sessionID, Pairs: make([][2]int, len(pairs)), Routes: make([]routing.Path, len(routes))}
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	norm := make([][2]int, len(pairs))
	normRoutes := make([]routing.Path, len(pairs))
	for i, p := range pairs {
		if p[0] > p[1] {
			norm[i] = [2]int{p[1], p[0]}
			normRoutes[i] = routes[i].Reverse()
		} else {
			norm[i] = p
			normRoutes[i] = routes[i]
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := norm[idx[a]], norm[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	for out, in := range idx {
		t.Pairs[out] = norm[in]
		t.Routes[out] = normRoutes[in]
	}
	return t
}

// Use returns the physical-edge multiplicities n_e(t), sorted by edge id.
// The returned slice must not be modified.
func (t *Tree) Use() []EdgeUse {
	if t.use == nil {
		counts := make(map[graph.EdgeID]int)
		for _, r := range t.Routes {
			for _, id := range r.Edges {
				counts[id]++
			}
		}
		use := make([]EdgeUse, 0, len(counts))
		for id, c := range counts {
			use = append(use, EdgeUse{Edge: id, Count: c})
		}
		sort.Slice(use, func(a, b int) bool { return use[a].Edge < use[b].Edge })
		t.use = use
	}
	return t.use
}

// Key returns a canonical identity for the tree: the overlay pairs plus the
// physical edges of each route. Two trees with identical keys route
// identical traffic, under fixed or arbitrary routing alike.
func (t *Tree) Key() string {
	if t.key == "" {
		var sb strings.Builder
		sb.WriteString("s")
		sb.WriteString(strconv.Itoa(t.SessionID))
		for k, p := range t.Pairs {
			sb.WriteByte('|')
			sb.WriteString(strconv.Itoa(p[0]))
			sb.WriteByte('-')
			sb.WriteString(strconv.Itoa(p[1]))
			sb.WriteByte(':')
			for _, e := range t.Routes[k].Edges {
				sb.WriteString(strconv.Itoa(e))
				sb.WriteByte(',')
			}
		}
		t.key = sb.String()
	}
	return t.key
}

// FNV-1a, processing one uint64 as eight little-endian bytes.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// KeyHash returns a 64-bit FNV-1a digest of the same canonical identity
// that Key renders: session id, then per overlay pair its member indices,
// route hop count, and route edge ids. The integer sequence decodes
// uniquely (hop counts delimit the variable-length routes), so two trees
// share a KeyHash only on a genuine 2^-64 hash collision. Unlike Key it
// allocates nothing, which is why the solver flow accumulators — the
// per-iteration hot path — index trees by KeyHash.
func (t *Tree) KeyHash() uint64 {
	if !t.hasKeyHash {
		h := fnvUint64(fnvOffset64, uint64(t.SessionID))
		for k, p := range t.Pairs {
			h = fnvUint64(h, uint64(p[0]))
			h = fnvUint64(h, uint64(p[1]))
			h = fnvUint64(h, uint64(len(t.Routes[k].Edges)))
			for _, e := range t.Routes[k].Edges {
				h = fnvUint64(h, uint64(e))
			}
		}
		t.keyHash = h
		t.hasKeyHash = true
	}
	return t.keyHash
}

// LengthUnder returns Σ_e n_e(t)·d_e, the (unnormalized) dual length of the
// tree.
func (t *Tree) LengthUnder(d graph.Lengths) float64 {
	total := 0.0
	for _, u := range t.Use() {
		total += float64(u.Count) * d[u.Edge]
	}
	return total
}

// Bottleneck returns min_e c_e/n_e(t): the largest rate the tree can carry
// alone on an idle network.
func (t *Tree) Bottleneck(g *graph.Graph) float64 {
	min := -1.0
	for _, u := range t.Use() {
		v := g.Edges[u.Edge].Capacity / float64(u.Count)
		if min < 0 || v < min {
			min = v
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// TotalHops returns the total number of physical hops across all routes
// (Σ_e n_e(t)); a cost measure of the tree.
func (t *Tree) TotalHops() int {
	total := 0
	for _, u := range t.Use() {
		total += u.Count
	}
	return total
}

// Validate checks that the tree is a spanning tree over the session's
// members and that every route joins the right physical endpoints.
func (t *Tree) Validate(g *graph.Graph, s *Session) error {
	if t.SessionID != s.ID {
		return fmt.Errorf("overlay: tree session %d != %d", t.SessionID, s.ID)
	}
	n := s.Size()
	if len(t.Pairs) != n-1 {
		return fmt.Errorf("overlay: tree has %d overlay edges for %d members", len(t.Pairs), n)
	}
	uf := graph.NewUnionFind(n)
	for k, p := range t.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n || p[0] == p[1] {
			return fmt.Errorf("overlay: bad pair %v", p)
		}
		if !uf.Union(p[0], p[1]) {
			return fmt.Errorf("overlay: pairs contain a cycle at %v", p)
		}
		r := t.Routes[k]
		if err := r.Validate(g); err != nil {
			return fmt.Errorf("overlay: route %d: %w", k, err)
		}
		if r.Src() != s.Members[p[0]] || r.Dst() != s.Members[p[1]] {
			return fmt.Errorf("overlay: route %d joins %d-%d, want members %d-%d",
				k, r.Src(), r.Dst(), s.Members[p[0]], s.Members[p[1]])
		}
		if r.Hops() == 0 {
			return fmt.Errorf("overlay: route %d is empty (members %v coincide?)", k, p)
		}
	}
	if uf.Count() != 1 {
		return fmt.Errorf("overlay: pairs do not span the session")
	}
	return nil
}
