package core

import (
	"fmt"
	"sort"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// TreeFlow is one overlay tree carrying a nonnegative rate.
type TreeFlow struct {
	Tree *overlay.Tree
	Rate float64
}

// Solution is a (fractional) multicommodity tree flow: per session, a set of
// distinct trees with rates.
type Solution struct {
	G        *graph.Graph
	Sessions []*overlay.Session
	// Flows[i] lists the trees of session i with positive rate, in the
	// order they were first used.
	Flows [][]TreeFlow

	// MSTOps counts minimum-overlay-spanning-tree computations performed to
	// produce the solution — the running-time unit the paper reports.
	MSTOps int
	// Phases counts outer phases for phase-structured algorithms.
	Phases int
	// Plane aggregates the shared-SSSP-plane counters of the multi-session
	// batch runners that contributed to the solution (the phase/iteration
	// loop and, for MCF, the surplus pass — NOT the beta prestep, whose
	// single-session planes dedup 1.0 by construction and are reported on
	// MCFResult.PrestepPlane instead). Zero when the plane was disabled or
	// the oracles are fixed-routing; diagnostic only — never affects rates.
	Plane overlay.Metrics
}

// newSolution allocates an empty solution shell for p.
func newSolution(p *Problem) *Solution {
	return &Solution{G: p.G, Sessions: p.Sessions, Flows: make([][]TreeFlow, len(p.Sessions))}
}

// flowAccumulator indexes trees by their canonical key digest (KeyHash) so
// repeated selections of one tree accumulate into a single TreeFlow. The
// hashed key keeps the per-iteration accumulate step allocation-free, where
// the string Key built ~O(|members| * route length) bytes per call.
type flowAccumulator struct {
	sol   *Solution
	index []map[uint64]int // per session: tree key hash -> position in Flows[i]
}

func newFlowAccumulator(p *Problem) *flowAccumulator {
	acc := &flowAccumulator{sol: newSolution(p), index: make([]map[uint64]int, len(p.Sessions))}
	for i := range acc.index {
		acc.index[i] = make(map[uint64]int)
	}
	return acc
}

// add accrues rate onto tree t of session i.
func (a *flowAccumulator) add(i int, t *overlay.Tree, rate float64) {
	key := t.KeyHash()
	if pos, ok := a.index[i][key]; ok {
		a.sol.Flows[i][pos].Rate += rate
		return
	}
	a.index[i][key] = len(a.sol.Flows[i])
	a.sol.Flows[i] = append(a.sol.Flows[i], TreeFlow{Tree: t, Rate: rate})
}

// SessionRate returns the total rate of session i (Σ_j f^i_j).
func (s *Solution) SessionRate(i int) float64 {
	total := 0.0
	for _, tf := range s.Flows[i] {
		total += tf.Rate
	}
	return total
}

// OverallThroughput returns Σ_i (|S_i|-1)·rate_i, the aggregate receiving
// rate over all session members — the quantity the paper's tables report.
func (s *Solution) OverallThroughput() float64 {
	total := 0.0
	for i, sess := range s.Sessions {
		total += float64(sess.Receivers()) * s.SessionRate(i)
	}
	return total
}

// MinSessionRate returns the smallest session rate (the max-min objective
// when demands are uniform).
func (s *Solution) MinSessionRate() float64 {
	min := -1.0
	for i := range s.Sessions {
		if r := s.SessionRate(i); min < 0 || r < min {
			min = r
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// ConcurrentRatio returns min_i rate_i/dem(i), the M2 objective value
// lambda of the solution.
func (s *Solution) ConcurrentRatio() float64 {
	min := -1.0
	for i, sess := range s.Sessions {
		if r := s.SessionRate(i) / sess.Demand; min < 0 || r < min {
			min = r
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// TreeCount returns the number of distinct trees with positive rate in
// session i.
func (s *Solution) TreeCount(i int) int {
	count := 0
	for _, tf := range s.Flows[i] {
		if tf.Rate > 0 {
			count++
		}
	}
	return count
}

// LinkFlows returns the per-physical-edge load Σ_{i,j} n_e(t^i_j)·f^i_j.
func (s *Solution) LinkFlows() []float64 {
	load := make([]float64, s.G.NumEdges())
	for _, flows := range s.Flows {
		for _, tf := range flows {
			for _, u := range tf.Tree.Use() {
				load[u.Edge] += float64(u.Count) * tf.Rate
			}
		}
	}
	return load
}

// MaxCongestion returns max_e load_e/c_e.
func (s *Solution) MaxCongestion() float64 {
	max := 0.0
	for e, l := range s.LinkFlows() {
		if c := l / s.G.Edges[e].Capacity; c > max {
			max = c
		}
	}
	return max
}

// Utilizations returns the per-edge utilization ratio load_e/c_e restricted
// to edges actually touched by at least one session route (the paper's
// link-utilization plots count only covered links), sorted descending.
func (s *Solution) Utilizations() []float64 {
	load := s.LinkFlows()
	out := make([]float64, 0, len(load))
	for e, l := range load {
		if l > 0 {
			out = append(out, l/s.G.Edges[e].Capacity)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// CheckFeasible verifies every capacity constraint within tol and validates
// every tree against its session.
func (s *Solution) CheckFeasible(tol float64) error {
	for i, flows := range s.Flows {
		for j, tf := range flows {
			if tf.Rate < -tol {
				return fmt.Errorf("core: negative rate %v on tree %d of session %d", tf.Rate, j, i)
			}
			if err := tf.Tree.Validate(s.G, s.Sessions[i]); err != nil {
				return fmt.Errorf("core: session %d tree %d: %w", i, j, err)
			}
		}
	}
	for e, l := range s.LinkFlows() {
		if cap := s.G.Edges[e].Capacity; l > cap*(1+tol) {
			return fmt.Errorf("core: edge %d overloaded: %v > %v", e, l, cap)
		}
	}
	return nil
}

// Scale multiplies every rate by factor.
func (s *Solution) Scale(factor float64) {
	for i := range s.Flows {
		for j := range s.Flows[i] {
			s.Flows[i][j].Rate *= factor
		}
	}
}

// ScaleToFeasible divides all rates by the maximum congestion (if above 1),
// returning the factor applied. Scaling is uniform across sessions so that
// fairness ratios are preserved.
func (s *Solution) ScaleToFeasible() float64 {
	cong := s.MaxCongestion()
	if cong <= 1 {
		return 1
	}
	factor := 1 / cong
	s.Scale(factor)
	return factor
}

// RateDistribution returns the rates of session i sorted descending — the
// input to the paper's "accumulative rate distribution" plots (Figs. 2/3).
func (s *Solution) RateDistribution(i int) []float64 {
	rates := make([]float64, 0, len(s.Flows[i]))
	for _, tf := range s.Flows[i] {
		if tf.Rate > 0 {
			rates = append(rates, tf.Rate)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rates)))
	return rates
}
