package core

import (
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// MaxFlowOptions configures the MaxFlow FPTAS.
type MaxFlowOptions struct {
	// Epsilon is the error parameter; the returned flow is within (1-eps)^2
	// of the M1 optimum (paper reports this as approximation ratio 1-2eps).
	// Must be in (0, 0.5].
	Epsilon float64
	// Parallel fans the per-iteration k spanning-tree computations across
	// CPUs.
	Parallel bool
	// Workers sets the oracle worker-pool size explicitly: 0 defers to
	// Parallel (GOMAXPROCS when set, 1 otherwise); any positive value is
	// used as given, so Workers=1 forces the sequential path. Outputs are
	// bit-identical for every worker count.
	Workers int
	// DisablePlane turns off the solve-scoped shared SSSP plane that
	// deduplicates per-member Dijkstra work across arbitrary-routing
	// sessions within each oracle batch (see overlay.BatchRunner). Outputs
	// are bit-identical with the plane on or off; the toggle exists for the
	// determinism gate and perf comparisons. Irrelevant under fixed routing.
	DisablePlane bool
	// DisableRepair turns off the plane's cross-round dirty-source repair
	// (see overlay.BatchOptions.DisableRepair): with repair on, plane rows
	// persist across iterations and only sources whose SSSP trees intersect
	// the edges the length ledger reports as touched are recomputed.
	// Outputs are bit-identical with repair on or off. Irrelevant when the
	// plane is off.
	DisableRepair bool
	// DisableSubtreeRepair turns off the plane's incremental subtree repair
	// (see overlay.BatchOptions.DisableSubtreeRepair): with it on, a row
	// whose stored SSSP tree took touched edges is repaired by resuming
	// Dijkstra over just the affected subtrees instead of a full refill,
	// whenever the bit-identity certificate holds. Outputs are bit-identical
	// with the toggle on or off. Irrelevant when repair is off.
	DisableSubtreeRepair bool
	// Shards splits each oracle round across per-AS shard goroutines behind
	// an explicit price-message boundary (see internal/shard): every shard
	// owns a length-ledger replica and its own SSSP plane, synchronized once
	// per round by cut-edge price messages diffed from the authoritative
	// journal. 0 disables sharding (the single-runner path); outputs are
	// bit-identical for every shard count. Workers then sizes each shard's
	// pool. Ignored by the seeded beta-prestep subsolves (single-session —
	// nothing to partition).
	Shards int
	// ShardLabels optionally assigns every node a partition label (e.g.
	// topology.Network.ASOf); shards group whole labels. Nil falls back to
	// contiguous node ranges. Ignored when Shards == 0.
	ShardLabels []int
	// MaxIterations overrides the default safety bound (0 = automatic).
	MaxIterations int

	// seedPlane optionally carries a prestep seed plane whose rows were
	// computed under this solve's exact initial lengths; see
	// overlay.BatchOptions.Seed. Package-internal: only the MCF beta
	// prestep sets it.
	seedPlane *overlay.Plane
}

// RatioToEpsilon converts a target approximation ratio r (e.g. 0.95) to the
// MaxFlow epsilon with ratio = (1-eps)^2.
func RatioToEpsilon(ratio float64) float64 {
	return 1 - math.Sqrt(ratio)
}

// deltaFloor bounds the Garg–Könemann initial length from below: the
// theoretical delta of both FPTAS variants underflows float64 for epsilon
// below roughly 0.01 on realistic instances, so it is clamped here. The
// clamp trades the *worst-case* guarantee at extreme accuracy targets for
// numerical sanity; all outputs remain exactly feasible.
const deltaFloor = 1e-280

// MaxFlow runs the Table I FPTAS on p and returns a feasible solution whose
// weighted objective is within (1-eps)^2 of the M1 optimum.
//
// Mechanics (Garg–Könemann): start with uniform small lengths d_e = delta;
// each iteration take the session tree minimizing the normalized length
// len(t)·(|Smax|-1)/(|S_i|-1), stop when that minimum reaches 1, otherwise
// saturate the tree's bottleneck min_e c_e/n_e(t) and inflate its edge
// lengths by (1 + eps·n_e·c/c_e). Finally rescale the accumulated raw flow
// to feasibility.
func MaxFlow(p *Problem, opts MaxFlowOptions) (*Solution, error) {
	eps := opts.Epsilon
	if eps <= 0 || eps > 0.5 {
		return nil, fmt.Errorf("core: MaxFlow epsilon %v outside (0, 0.5]", eps)
	}
	delta := maxFlowDelta(eps, p.MaxReceivers, p.U)

	d := graph.NewLengthStore(p.G, delta)
	acc := newFlowAccumulator(p)
	// One worker pool plus per-worker scratch for the whole run: the oracle
	// fan-out below executes every iteration, and rebuilding goroutines and
	// buffers each time used to dominate the solver's allocation profile.
	runner := newOracleRunner(p.G, p.Oracles, overlay.BatchOptions{
		Workers:              resolveWorkers(opts.Parallel, opts.Workers),
		SharedPlane:          !opts.DisablePlane,
		DisableRepair:        opts.DisableRepair,
		DisableSubtreeRepair: opts.DisableSubtreeRepair,
		Seed:                 opts.seedPlane,
	}, opts.Shards, opts.ShardLabels)
	defer runner.Close()

	maxIter := opts.MaxIterations
	if maxIter == 0 {
		// Lemma 1: at most |E|·log_{1+eps}((1+eps)/delta) augmentations.
		bound := float64(p.G.NumEdges()) * math.Log((1+eps)/delta) / math.Log(1+eps)
		maxIter = int(bound) + 16
	}

	iter := 0
	for ; iter < maxIter; iter++ {
		results := runner.MinTreesLen(d, nil)
		acc.sol.MSTOps += p.K()
		best := -1
		bestNorm := math.Inf(1)
		for i, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("core: MaxFlow oracle %d: %w", i, r.Err)
			}
			norm := r.Len / p.Weight(i)
			if norm < bestNorm {
				bestNorm = norm
				best = i
			}
		}
		if bestNorm >= 1 {
			break
		}
		t := results[best].Tree
		// Bottleneck capacity c = min_e c_e/n_e(t).
		c := math.Inf(1)
		for _, use := range t.Use() {
			if v := p.G.Edges[use.Edge].Capacity / float64(use.Count); v < c {
				c = v
			}
		}
		acc.add(best, t, c)
		for _, use := range t.Use() {
			d.Bump(use.Edge, 1+eps*float64(use.Count)*c/p.G.Edges[use.Edge].Capacity)
		}
	}
	if iter >= maxIter {
		return nil, fmt.Errorf("core: MaxFlow did not converge within %d iterations", maxIter)
	}

	sol := acc.sol
	sol.Plane = runner.Metrics()
	// Lemma 2 scaling: dividing by log_{1+eps}((1+eps)/delta) is feasible;
	// dividing by the measured congestion is never worse and is exactly
	// feasible, so use it (it is upper-bounded by the lemma's factor).
	if cong := sol.MaxCongestion(); cong > 0 {
		sol.Scale(1 / cong)
	}
	return sol, nil
}

// maxFlowDelta returns the Garg–Könemann initial length for the M1 FPTAS:
// delta = (1+eps)^(1-1/eps) / ((|Smax|-1)·U)^(1/eps) (Lemma 3). For extreme
// accuracy targets the formula underflows float64 (e.g. 48^-200 at
// eps=0.005); it is floored at deltaFloor. A larger delta only stops the
// length-update loop earlier — the returned flow is still exactly feasible
// via the measured-congestion rescale, and the empirical gap is far below
// the requested eps (validated against the exact LP in tests). Exposed as a
// helper so the MCF beta prestep can group subproblems that share an initial
// length function (same |Smax| and U => same delta, bit for bit).
func maxFlowDelta(eps float64, maxReceivers, u int) float64 {
	delta := math.Pow(1+eps, 1-1/eps) / math.Pow(float64(maxReceivers)*float64(u), 1/eps)
	if delta < deltaFloor {
		delta = deltaFloor
	}
	return delta
}

// WeightedObjective returns the M1 objective Σ_i w_i·rate_i of a solution
// under problem p.
func WeightedObjective(p *Problem, s *Solution) float64 {
	total := 0.0
	for i := range p.Sessions {
		total += p.Weight(i) * s.SessionRate(i)
	}
	return total
}
