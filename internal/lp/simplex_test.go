package lp

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/rng"
)

func solveOK(t *testing.T, p Problem) *Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestTrivial1D(t *testing.T) {
	// max 3x s.t. x <= 4.
	res := solveOK(t, Problem{C: []float64{3}, A: [][]float64{{1}}, B: []float64{4}})
	if math.Abs(res.Value-12) > tol || math.Abs(res.X[0]-4) > tol {
		t.Fatalf("got %v at %v", res.Value, res.X)
	}
}

func TestClassicTwoVar(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2,6).
	res := solveOK(t, Problem{
		C: []float64{3, 5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if math.Abs(res.Value-36) > 1e-6 {
		t.Fatalf("value %v, want 36", res.Value)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-6) > 1e-6 {
		t.Fatalf("x = %v, want (2,6)", res.X)
	}
}

func TestDegenerateZeroRHS(t *testing.T) {
	// max x s.t. x - y <= 0, y <= 5: optimum 5 with x=y=5. The first row is
	// degenerate at the initial basis.
	res := solveOK(t, Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, -1}, {0, 1}},
		B: []float64{0, 5},
	})
	if math.Abs(res.Value-5) > 1e-6 {
		t.Fatalf("value %v, want 5", res.Value)
	}
}

func TestUnbounded(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{1}}); err == nil {
		t.Fatal("unbounded problem not detected")
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("row/bound mismatch accepted")
	}
	if _, err := Solve(Problem{C: []float64{1, 2}, A: [][]float64{{1}}, B: []float64{1}}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}}); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestEmptyObjective(t *testing.T) {
	res := solveOK(t, Problem{})
	if res.Value != 0 {
		t.Fatal("empty problem should have value 0")
	}
}

func TestZeroObjectiveStaysAtOrigin(t *testing.T) {
	res := solveOK(t, Problem{C: []float64{0, 0}, A: [][]float64{{1, 1}}, B: []float64{3}})
	if res.Value != 0 {
		t.Fatalf("value %v", res.Value)
	}
}

// TestFeasibilityAndOptimalityRandom property-tests that the returned point
// is feasible and no better than simple certified upper bounds.
func TestFeasibilityAndOptimalityRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = r.Float64() * 5
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = r.Float64() * 3 // nonnegative => bounded
			}
			p.B[i] = r.Float64() * 10
		}
		// Ensure boundedness: every variable gets a box row.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 20)
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		// Feasibility.
		for i, row := range p.A {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * res.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for _, x := range res.X {
			if x < -1e-9 {
				return false
			}
		}
		// The optimum dominates every single-variable feasible point.
		for j := 0; j < n; j++ {
			xj := math.Inf(1)
			for i, row := range p.A {
				if row[j] > tol {
					if v := p.B[i] / row[j]; v < xj {
						xj = v
					}
				}
			}
			if !math.IsInf(xj, 1) && p.C[j]*xj > res.Value+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLPDualityRandom verifies strong duality: we solve the dual with the
// same solver (dual of max cx, Ax<=b is min yb, yA>=c, y>=0; we negate to fit
// the max form when possible) on instances with strictly positive data.
func TestLPDualityRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(4)
		m := 1 + r.Intn(4)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = 0.5 + r.Float64()*5
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = 0.2 + r.Float64()*3
			}
			p.B[i] = 0.5 + r.Float64()*10
		}
		primal, err := Solve(p)
		if err != nil {
			return false
		}
		// Dual: min b·y s.t. A^T y >= c, y >= 0. With all-positive data we
		// can bound y by a big box and solve max (-b)·y s.t. -A^T y <= -c is
		// not in our form (negative RHS). Instead check weak duality with a
		// greedy dual point and complementary slackness on the primal:
		// verify the primal is optimal by testing that no single pivot
		// improves it — here simply that value matches solving again with
		// permuted rows/cols.
		perm := r.Perm(n)
		pc := make([]float64, n)
		pa := make([][]float64, m)
		for i := range pa {
			pa[i] = make([]float64, n)
		}
		for newJ, oldJ := range perm {
			pc[newJ] = p.C[oldJ]
			for i := 0; i < m; i++ {
				pa[i][newJ] = p.A[i][oldJ]
			}
		}
		permuted, err := Solve(Problem{C: pc, A: pa, B: p.B})
		if err != nil {
			return false
		}
		return math.Abs(primal.Value-permuted.Value) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	r := rng.New(5)
	const n, m = 60, 40
	p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	for j := range p.C {
		p.C[j] = r.Float64()
	}
	for i := range p.A {
		p.A[i] = make([]float64, n)
		for j := range p.A[i] {
			p.A[i][j] = r.Float64()
		}
		p.B[i] = 1 + r.Float64()*5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
