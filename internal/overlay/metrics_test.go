package overlay

import (
	"math"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func TestStressOnStarPhysical(t *testing.T) {
	// Star topology: members 1,2,3 with center 0; a path overlay tree
	// (1-2, 2-3) crosses spoke (0,2) twice -> max stress 2.
	net, _ := topology.Star(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	tree := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}})
	maxS, meanS := tree.Stress()
	if maxS != 2 {
		t.Fatalf("max stress %d, want 2", maxS)
	}
	if meanS <= 1 || meanS > 2 {
		t.Fatalf("mean stress %v out of (1,2]", meanS)
	}
}

func TestDepths(t *testing.T) {
	net, _ := topology.Complete(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	chain := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d, err := chain.Depths(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("depths %v, want %v", d, want)
		}
	}
	star := TreeFromPairs(o, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	d2, _ := star.Depths(s)
	for i := 1; i < 4; i++ {
		if d2[i] != 1 {
			t.Fatalf("star depths %v", d2)
		}
	}
}

func TestDepthsUnreachable(t *testing.T) {
	net, _ := topology.Complete(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	// Non-spanning pair set (a cycle among 0,1,2 leaves member 3 out).
	broken := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}})
	if _, err := broken.Depths(s); err == nil {
		t.Fatal("unreachable member not detected")
	}
}

func TestStretchDirectTreeIsOne(t *testing.T) {
	// Star overlay tree on a complete graph: every receiver is one direct
	// hop from the source -> stretch exactly 1.
	net, _ := topology.Complete(5, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3, 4}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	star := TreeFromPairs(o, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	ratios, max, err := star.Stretch(s, rt)
	if err != nil {
		t.Fatal(err)
	}
	if max != 1 {
		t.Fatalf("star stretch %v, want 1", max)
	}
	for _, r := range ratios {
		if r != 1 {
			t.Fatalf("ratios %v", ratios)
		}
	}
	// Chain overlay tree: member at overlay depth 3 takes 3 hops for a
	// 1-hop direct distance -> stretch 3.
	chain := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	_, cmax, err := chain.Stretch(s, rt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmax-4) > 1e-12 {
		t.Fatalf("chain stretch %v, want 4", cmax)
	}
}

func TestStretchOnRandomTopology(t *testing.T) {
	// Stretch is always >= 1: the tree path cannot be shorter than the
	// direct shortest route.
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	r := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		members := r.Sample(30, 4+r.Intn(3))
		s, _ := NewSession(0, members, 1)
		rt := routing.NewIPRoutes(g, s.Members)
		o, err := NewFixedOracle(g, rt, s)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := o.MinTree(graph.NewLengths(g, 1))
		if err != nil {
			t.Fatal(err)
		}
		ratios, max, err := tree.Stretch(s, rt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ratios) != s.Receivers() {
			t.Fatalf("ratio count %d", len(ratios))
		}
		for _, ratio := range ratios {
			if ratio < 1-1e-12 {
				t.Fatalf("stretch %v < 1", ratio)
			}
			if ratio > max+1e-12 {
				t.Fatalf("ratio %v exceeds reported max %v", ratio, max)
			}
		}
		ms, mean := tree.Stress()
		if ms < 1 || mean < 1 {
			t.Fatalf("stress (%d, %v) below 1 for a non-empty tree", ms, mean)
		}
	}
}
