// Package sim is a concurrent fluid-flow dissemination simulator. The paper
// evaluates its algorithms purely computationally; this package closes the
// loop a real deployment would close: it takes a tree/rate allocation
// (core.Solution) and actually pushes traffic through the physical network
// step by step, with links enforcing their capacities, verifying that the
// allocated session rates are deliverable (and measuring the collapse when
// an allocation is infeasible).
//
// Model: time advances in steps of dt. In each step every tree offers
// rate·dt units on all of its physical edges (n_e(t) times on edge e). Each
// edge that is over-subscribed throttles proportionally; a tree's achieved
// fraction for the step is the minimum factor over its edges (its pipeline
// is only as fast as its slowest link — the same bottleneck rule the
// algorithms use). Per-session offered and delivered volumes accumulate.
//
// Concurrency: per-step, tree demands and achieved fractions are computed
// by a goroutine pool over sessions with per-worker partial link sums merged
// deterministically — scheduling never changes results (tested).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"overcast/internal/core"
)

// Config controls a simulation run.
type Config struct {
	Steps int     // number of time steps (>=1)
	DT    float64 // step length in seconds (>0)
	// Workers caps the goroutine pool (0 = GOMAXPROCS).
	Workers int
}

// Report summarizes a run.
type Report struct {
	// OfferedRate[i] is session i's configured aggregate sending rate
	// (sum of its tree rates).
	OfferedRate []float64
	// DeliveredRate[i] is the measured aggregate delivery rate of session i
	// after link contention.
	DeliveredRate []float64
	// OverallDelivered is sum_i (|S_i|-1)·DeliveredRate[i], comparable to
	// Solution.OverallThroughput().
	OverallDelivered float64
	// PeakLinkUtilization is the maximum over steps and edges of
	// offered-load/capacity (may exceed 1 for infeasible inputs).
	PeakLinkUtilization float64
	Steps               int
}

// treeRef indexes one (session, tree) pair for the scheduler.
type treeRef struct {
	session int
	rate    float64
	use     []useEntry
}

type useEntry struct {
	edge  int
	count float64
}

// Run simulates sol under cfg.
func Run(sol *core.Solution, cfg Config) (*Report, error) {
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("sim: Steps must be >=1, got %d", cfg.Steps)
	}
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("sim: DT must be positive, got %v", cfg.DT)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	g := sol.G
	var trees []treeRef
	offered := make([]float64, len(sol.Sessions))
	for i, flows := range sol.Flows {
		for _, tf := range flows {
			if tf.Rate <= 0 {
				continue
			}
			ref := treeRef{session: i, rate: tf.Rate}
			for _, u := range tf.Tree.Use() {
				ref.use = append(ref.use, useEntry{edge: u.Edge, count: float64(u.Count)})
			}
			trees = append(trees, ref)
			offered[i] += tf.Rate
		}
	}

	numEdges := g.NumEdges()
	capPerStep := make([]float64, numEdges)
	for e := range capPerStep {
		capPerStep[e] = g.Edges[e].Capacity * cfg.DT
	}

	// Per-worker partial sums avoid a mutex on the hot loop; merging in
	// worker order keeps the result deterministic.
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers < 1 {
		workers = 1
	}
	partial := make([][]float64, workers)
	for w := range partial {
		partial[w] = make([]float64, numEdges)
	}
	load := make([]float64, numEdges)
	factor := make([]float64, numEdges)
	delivered := make([]float64, len(sol.Sessions))
	peak := 0.0

	chunk := func(w int) (lo, hi int) {
		per := (len(trees) + workers - 1) / workers
		lo = w * per
		hi = lo + per
		if hi > len(trees) {
			hi = len(trees)
		}
		if lo > hi {
			lo = hi
		}
		return
	}

	var wg sync.WaitGroup
	for step := 0; step < cfg.Steps; step++ {
		// Phase 1: accumulate offered load per edge.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := partial[w]
				for e := range buf {
					buf[e] = 0
				}
				lo, hi := chunk(w)
				for _, tr := range trees[lo:hi] {
					vol := tr.rate * cfg.DT
					for _, u := range tr.use {
						buf[u.edge] += u.count * vol
					}
				}
			}(w)
		}
		wg.Wait()
		for e := range load {
			load[e] = 0
		}
		for w := 0; w < workers; w++ {
			buf := partial[w]
			for e := range load {
				load[e] += buf[e]
			}
		}
		// Phase 2: per-edge throttle factors.
		for e := range factor {
			if load[e] <= capPerStep[e] || load[e] == 0 {
				factor[e] = 1
			} else {
				factor[e] = capPerStep[e] / load[e]
			}
			if capPerStep[e] > 0 {
				if util := load[e] / capPerStep[e]; util > peak {
					peak = util
				}
			}
		}
		// Phase 3: per-tree achieved volume (bottleneck factor), reduced
		// into per-session delivery. Parallel with per-worker partials.
		deliv := make([][]float64, workers)
		for w := 0; w < workers; w++ {
			deliv[w] = make([]float64, len(sol.Sessions))
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo, hi := chunk(w)
				for _, tr := range trees[lo:hi] {
					f := 1.0
					for _, u := range tr.use {
						if factor[u.edge] < f {
							f = factor[u.edge]
						}
					}
					deliv[w][tr.session] += tr.rate * cfg.DT * f
				}
			}(w)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			for i, v := range deliv[w] {
				delivered[i] += v
			}
		}
	}

	rep := &Report{
		OfferedRate:         offered,
		DeliveredRate:       make([]float64, len(sol.Sessions)),
		PeakLinkUtilization: peak,
		Steps:               cfg.Steps,
	}
	total := float64(cfg.Steps) * cfg.DT
	for i := range delivered {
		rep.DeliveredRate[i] = delivered[i] / total
		rep.OverallDelivered += float64(sol.Sessions[i].Receivers()) * rep.DeliveredRate[i]
	}
	return rep, nil
}
