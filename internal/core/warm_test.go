package core_test

import (
	"fmt"
	"testing"

	"overcast/internal/core"
	"overcast/internal/exact"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

// warmOracle builds a per-session oracle matching mode, the way a caller of
// Warm.Join would (per-session fixed route tables are identical to the dense
// problem's shared table: a pair's route depends only on the graph and the
// Dijkstra source, not on which other members share the table).
func warmOracle(t testing.TB, g *graph.Graph, s *overlay.Session, mode core.RoutingMode) overlay.TreeOracle {
	t.Helper()
	var o overlay.TreeOracle
	var err error
	if mode == core.RoutingArbitrary {
		o, err = overlay.NewArbitraryOracle(g, s)
	} else {
		rt := routing.NewIPRoutes(g, s.Members)
		o, err = overlay.NewFixedOracle(g, rt, s)
	}
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func warmJoin(t testing.TB, w *core.Warm, g *graph.Graph, id int, members []graph.NodeID, demand float64, mode core.RoutingMode) {
	t.Helper()
	s, err := overlay.NewSession(id, members, demand)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Join(s, warmOracle(t, g, s, mode)); err != nil {
		t.Fatal(err)
	}
}

// solutionFingerprint renders every session's tree rates bitwise.
func solutionFingerprint(sol *core.Solution) string {
	out := ""
	for i := range sol.Sessions {
		out += fmt.Sprintf("s%d:", i)
		for _, tf := range sol.Flows[i] {
			out += fmt.Sprintf(" %x@%.17g", tf.Tree.KeyHash(), tf.Rate)
		}
		out += "\n"
	}
	return out
}

func warmTestInstance(t testing.TB, seed uint64) (*graph.Graph, [][]graph.NodeID) {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Waxman(topology.DefaultWaxman(25), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(25)
	memberSets := [][]graph.NodeID{
		{perm[0], perm[1], perm[2], perm[3]},
		{perm[4], perm[5], perm[6]},
		{perm[7], perm[8], perm[9]},
	}
	return net.Graph, memberSets
}

// A snapshot taken right after the anchor must be bit-identical to the cold
// MaxConcurrentFlow solution over the same sessions.
func TestWarmSnapshotMatchesColdAnchorBitwise(t *testing.T) {
	const eps = 0.1
	g, memberSets := warmTestInstance(t, 71)
	p := buildProblem(t, g, memberSets, nil, core.RoutingIP)
	res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}

	w, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, members := range memberSets {
		warmJoin(t, w, g, i, members, 1, core.RoutingIP)
	}
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := solutionFingerprint(sol), solutionFingerprint(res.Solution); got != want {
		t.Fatalf("anchor snapshot differs from cold solve:\n%s\nvs\n%s", got, want)
	}
	if st := w.Stats(); st.ColdSolves != 1 || st.WarmRefreshes != 0 {
		t.Fatalf("stats %+v, want exactly one cold solve", st)
	}
}

// Warm catch-up after a join must stay exactly feasible and within the same
// empirical (1-3eps) band of the exact LP optimum that the cold solver is
// held to.
func TestWarmJoinQualityVsExact(t *testing.T) {
	const eps = 0.05
	g, memberSets := warmTestInstance(t, 72)
	w, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Anchor over the first two sessions, then warm-join the third.
	for i := 0; i < 2; i++ {
		warmJoin(t, w, g, i, memberSets[i], 1, core.RoutingIP)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	warmJoin(t, w, g, 2, memberSets[2], 1, core.RoutingIP)
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.ColdSolves != 1 || st.WarmRefreshes != 1 {
		t.Fatalf("stats %+v, want 1 cold + 1 warm", st)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, g, memberSets, nil, core.RoutingIP)
	ex, err := exact.MaxConcurrentFlow(g, exactOracles(t, p), 6)
	if err != nil {
		t.Fatal(err)
	}
	lambda := sol.ConcurrentRatio()
	if lambda > ex.Value+1e-6 {
		t.Fatalf("warm lambda %v exceeds optimum %v", lambda, ex.Value)
	}
	if lambda < (1-3*eps)*ex.Value-1e-9 {
		t.Fatalf("warm lambda %v below (1-3eps)*%v", lambda, ex.Value)
	}
	// The headline warm-quality contract: within (1+eps) of the cold solve
	// over the same population.
	cold, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if lambda < cold.Lambda/(1+eps)-1e-9 {
		t.Fatalf("warm lambda %v below cold %v / (1+eps)", lambda, cold.Lambda)
	}
}

// After a departure the rollback + re-grow phases must restore the stop
// criterion and keep the allocation within the quality band for the
// surviving sessions.
func TestWarmLeaveRegrowQualityVsExact(t *testing.T) {
	const eps = 0.05
	g, memberSets := warmTestInstance(t, 73)
	w, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, members := range memberSets {
		warmJoin(t, w, g, i, members, 1, core.RoutingIP)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Leave(1); err != nil {
		t.Fatal(err)
	}
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.ColdSolves != 1 || st.WarmRefreshes != 1 {
		t.Fatalf("stats %+v, want 1 cold + 1 warm", st)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	if len(sol.Sessions) != 2 {
		t.Fatalf("snapshot has %d sessions, want 2", len(sol.Sessions))
	}
	p := buildProblem(t, g, [][]graph.NodeID{memberSets[0], memberSets[2]}, nil, core.RoutingIP)
	ex, err := exact.MaxConcurrentFlow(g, exactOracles(t, p), 6)
	if err != nil {
		t.Fatal(err)
	}
	lambda := sol.ConcurrentRatio()
	if lambda > ex.Value+1e-6 {
		t.Fatalf("warm lambda %v exceeds optimum %v", lambda, ex.Value)
	}
	if lambda < (1-3*eps)*ex.Value-1e-9 {
		t.Fatalf("warm lambda %v below (1-3eps)*%v", lambda, ex.Value)
	}
	cold, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if lambda < cold.Lambda/(1+eps)-1e-9 {
		t.Fatalf("warm lambda %v below cold %v / (1+eps)", lambda, cold.Lambda)
	}
}

// The warm path must be a bit-identical function of the event sequence for
// every worker count and with the plane/repair on or off.
func TestWarmDeterministicAcrossWorkersAndPlane(t *testing.T) {
	const eps = 0.1
	g, memberSets := warmTestInstance(t, 74)
	run := func(workers int, disablePlane, disableRepair bool) string {
		w, err := core.NewWarm(g, core.RoutingArbitrary, nil, core.WarmOptions{
			Epsilon: eps, Workers: workers,
			DisablePlane: disablePlane, DisableRepair: disableRepair,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		fp := ""
		snap := func() {
			sol, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			fp += solutionFingerprint(sol) + "--\n"
		}
		warmJoin(t, w, g, 0, memberSets[0], 1, core.RoutingArbitrary)
		warmJoin(t, w, g, 1, memberSets[1], 2, core.RoutingArbitrary)
		snap()
		warmJoin(t, w, g, 2, memberSets[2], 1, core.RoutingArbitrary)
		snap()
		if err := w.Leave(0); err != nil {
			t.Fatal(err)
		}
		snap()
		return fp
	}
	want := run(1, false, false)
	for _, cfg := range []struct {
		workers                     int
		disablePlane, disableRepair bool
	}{{2, false, false}, {8, false, false}, {1, true, false}, {2, false, true}, {2, true, true}} {
		if got := run(cfg.workers, cfg.disablePlane, cfg.disableRepair); got != want {
			t.Fatalf("workers=%d plane=%v repair=%v diverged:\n%s\nvs\n%s",
				cfg.workers, !cfg.disablePlane, !cfg.disableRepair, got, want)
		}
	}
}

// An exhausted repair budget must fall back to a cold anchor, and a negative
// budget must force cold on every refresh.
func TestWarmBudgetFallsBackToCold(t *testing.T) {
	const eps = 0.1
	g, memberSets := warmTestInstance(t, 75)
	w, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: eps, RepairPhaseBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 2; i++ {
		warmJoin(t, w, g, i, memberSets[i], 1, core.RoutingIP)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	warmJoin(t, w, g, 2, memberSets[2], 1, core.RoutingIP)
	sol, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.ColdSolves != 2 || st.WarmRefreshes != 0 {
		t.Fatalf("stats %+v, want budget exhaustion to re-anchor cold", st)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}

	wc, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: eps, RepairPhaseBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	for i, members := range memberSets {
		warmJoin(t, wc, g, i, members, 1, core.RoutingIP)
		if _, err := wc.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if st := wc.Stats(); st.ColdSolves != 3 || st.WarmRefreshes != 0 {
		t.Fatalf("stats %+v, want every refresh cold under negative budget", st)
	}
}

// Slot bookkeeping: double-leave and out-of-range errors, Active accounting,
// and a join+leave between refreshes leaving no trace.
func TestWarmSlotContract(t *testing.T) {
	g, memberSets := warmTestInstance(t, 76)
	w, err := core.NewWarm(g, core.RoutingIP, nil, core.WarmOptions{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Leave(0); err == nil {
		t.Fatal("leave on empty allocator accepted")
	}
	for i, members := range memberSets {
		warmJoin(t, w, g, i, members, 1, core.RoutingIP)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Leave(1); err != nil {
		t.Fatal(err)
	}
	if err := w.Leave(1); err == nil {
		t.Fatal("double leave accepted")
	}
	if err := w.Leave(7); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
	if w.Active(1) || !w.Active(0) || w.ActiveSessions() != 2 {
		t.Fatal("active bookkeeping wrong after leave")
	}
	// Join + immediate leave between refreshes: the next snapshot must not
	// know the session ever existed.
	before, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warmJoin(t, w, g, 3, memberSets[1], 1, core.RoutingIP)
	if err := w.Leave(3); err != nil {
		t.Fatal(err)
	}
	after, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if solutionFingerprint(before) != solutionFingerprint(after) {
		t.Fatal("join+leave between refreshes left a trace in the allocation")
	}
}
