package overcast

import (
	"fmt"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/routing"
)

// OnlineAllocator admits sessions one at a time, assigning each a single
// overlay tree immediately and permanently (the paper's Table VI online
// algorithm). The step size mu controls how aggressively loaded links are
// avoided; values around the expected per-session rate work well, and the
// congestion stays within O(log links) of the offline optimum.
type OnlineAllocator struct {
	net     *Network
	routing Routing
	weights graph.Lengths
	inner   *core.Online
	nextID  int
	demands []float64
}

// NewOnlineAllocator creates an allocator over net with step size mu.
func NewOnlineAllocator(net *Network, mu float64, routing Routing) (*OnlineAllocator, error) {
	if net == nil {
		return nil, fmt.Errorf("overcast: nil network")
	}
	inner, err := core.NewOnline(net.inner.Graph, mu)
	if err != nil {
		return nil, err
	}
	var weights graph.Lengths
	if len(net.inner.Pos) == net.inner.Graph.NumNodes() && len(net.inner.Pos) > 0 {
		weights = net.inner.LinkDelays()
	}
	return &OnlineAllocator{net: net, routing: routing, weights: weights, inner: inner}, nil
}

// Join admits a session and returns the overlay tree it was assigned (as
// member-index pairs). The session keeps this tree for its lifetime.
func (o *OnlineAllocator) Join(s Session) ([][2]int, error) {
	os, err := overlay.NewSession(o.nextID, s.Members, s.Demand)
	if err != nil {
		return nil, err
	}
	g := o.net.inner.Graph
	var oracle overlay.TreeOracle
	if o.routing == RoutingArbitrary {
		// The dynamic oracle routes under the allocator's lengths; building a
		// fixed route table for it would be wasted Dijkstra work per join.
		oracle, err = overlay.NewArbitraryOracle(g, os)
	} else {
		var rt *routing.IPRoutes
		if o.weights != nil {
			rt = routing.NewWeightedIPRoutes(g, os.Members, o.weights)
		} else {
			rt = routing.NewIPRoutes(g, os.Members)
		}
		oracle, err = overlay.NewFixedOracle(g, rt, os)
	}
	if err != nil {
		return nil, err
	}
	tree, err := o.inner.Join(oracle)
	if err != nil {
		return nil, err
	}
	o.nextID++
	o.demands = append(o.demands, s.Demand)
	pairs := make([][2]int, len(tree.Pairs))
	copy(pairs, tree.Pairs)
	return pairs, nil
}

// Leave removes a previously admitted session by its arrival index: its
// tree is torn down and its length inflation rolled back exactly, so the
// links it used become attractive to future arrivals again. Later sessions
// are never rerouted.
func (o *OnlineAllocator) Leave(idx int) error { return o.inner.Leave(idx) }

// Sessions returns the number of admitted sessions (including departed
// ones; see ActiveSessions).
func (o *OnlineAllocator) Sessions() int { return o.inner.NumSessions() }

// ActiveSessions returns the number of admitted sessions that have not
// left.
func (o *OnlineAllocator) ActiveSessions() int { return o.inner.ActiveSessions() }

// MaxCongestion returns the current maximum link congestion if every
// admitted session sent at its full demand.
func (o *OnlineAllocator) MaxCongestion() float64 { return o.inner.MaxCongestion() }

// SessionRate returns the feasible rate of the idx-th admitted session
// under the current population: demand divided by the session's maximum
// link congestion. Rates shrink as competing sessions join and recover when
// they leave. Only meaningful for sessions that have not left.
func (o *OnlineAllocator) SessionRate(idx int) float64 {
	if l := o.inner.SessionMaxCongestion(idx); l > 0 {
		return o.demands[idx] / l
	}
	return o.demands[idx]
}

// Finalize produces the exactly feasible allocation for all admitted
// sessions (each scaled by its own maximum congestion).
func (o *OnlineAllocator) Finalize() (*Allocation, error) {
	sol, err := o.inner.Finalize()
	if err != nil {
		return nil, err
	}
	return &Allocation{sol: sol}, nil
}
