package core_test

import (
	"testing"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// workerCounts is the sweep the CI determinism gate runs detdump at; the
// in-process test pins the same invariant without shelling out.
var workerCounts = []int{1, 2, 8}

// sameSolution asserts two solutions are bit-identical: same op counts, same
// trees in the same order, and exactly equal (not merely close) rates.
func sameSolution(t *testing.T, label string, a, b *core.Solution) {
	t.Helper()
	if a.MSTOps != b.MSTOps || a.Phases != b.Phases {
		t.Fatalf("%s: ops/phases differ: %d/%d vs %d/%d", label, a.MSTOps, a.Phases, b.MSTOps, b.Phases)
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("%s: session count differs: %d vs %d", label, len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		if len(a.Flows[i]) != len(b.Flows[i]) {
			t.Fatalf("%s: session %d tree count differs: %d vs %d", label, i, len(a.Flows[i]), len(b.Flows[i]))
		}
		for j := range a.Flows[i] {
			fa, fb := a.Flows[i][j], b.Flows[i][j]
			if fa.Tree.Key() != fb.Tree.Key() {
				t.Fatalf("%s: session %d tree %d differs:\n%s\nvs\n%s", label, i, j, fa.Tree.Key(), fb.Tree.Key())
			}
			if fa.Rate != fb.Rate {
				t.Fatalf("%s: session %d tree %d rate %.17g != %.17g", label, i, j, fa.Rate, fb.Rate)
			}
		}
	}
}

// workerSweepProblem builds a moderately contended instance: enough sessions
// that phase rounds stay multi-session, with shared core links so trees
// collide and tie-breaks matter.
func workerSweepProblem(t *testing.T, mode core.RoutingMode) *core.Problem {
	t.Helper()
	r := rng.New(77)
	net, err := topology.Waxman(topology.DefaultWaxman(60), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(60)
	sets := [][]graph.NodeID{perm[0:6], perm[6:10], perm[10:15], perm[15:18], perm[18:22]}
	return buildProblem(t, net.Graph, sets, []float64{100, 50, 80, 120, 60}, mode)
}

// TestMaxFlowBitIdenticalAcrossWorkerCounts pins the tentpole invariant for
// M1: the worker-pool size moves wall-clock only, never output bits.
func TestMaxFlowBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p := workerSweepProblem(t, mode)
		var base *core.Solution
		for _, w := range workerCounts {
			sol, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.1, Parallel: true, Workers: w})
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, w, err)
			}
			if base == nil {
				base = sol
				continue
			}
			sameSolution(t, mode.String(), base, sol)
		}
	}
}

// TestMCFBitIdenticalAcrossWorkerCounts pins the same invariant for M2,
// covering the batched phase loop, the parallel beta prestep, and the
// surplus pass.
func TestMCFBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p := workerSweepProblem(t, mode)
		var base *core.MCFResult
		for _, w := range workerCounts {
			res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
				Epsilon: 0.12, Parallel: true, Workers: w, SurplusPass: true,
			})
			if err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, w, err)
			}
			if err := res.CheckFeasible(1e-9); err != nil {
				t.Fatalf("mode=%v workers=%d: %v", mode, w, err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.Lambda != base.Lambda {
				t.Fatalf("mode=%v workers=%d: lambda %.17g != %.17g", mode, w, res.Lambda, base.Lambda)
			}
			if res.PrestepMSTOps != base.PrestepMSTOps {
				t.Fatalf("mode=%v workers=%d: prestep ops %d != %d", mode, w, res.PrestepMSTOps, base.PrestepMSTOps)
			}
			for i := range res.Betas {
				if res.Betas[i] != base.Betas[i] {
					t.Fatalf("mode=%v workers=%d: beta[%d] %.17g != %.17g", mode, w, i, res.Betas[i], base.Betas[i])
				}
			}
			sameSolution(t, mode.String(), base.Solution, res.Solution)
		}
	}
}

// TestPlaneToggleBitIdentical pins the shared-SSSP-plane invariant: for both
// routing modes and every worker count, disabling the plane must reproduce
// the enabled run bit for bit (distances from an identical Dijkstra over an
// identical snapshot are bitwise equal regardless of which stage computes
// them). Under arbitrary routing the enabled run must actually have used the
// plane, so the test cannot pass vacuously.
func TestPlaneToggleBitIdentical(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p := workerSweepProblem(t, mode)
		var base *core.MCFResult
		for _, w := range workerCounts {
			for _, disable := range []bool{false, true} {
				res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
					Epsilon: 0.12, Parallel: true, Workers: w, SurplusPass: true, DisablePlane: disable,
				})
				if err != nil {
					t.Fatalf("mode=%v workers=%d disable=%v: %v", mode, w, disable, err)
				}
				if mode == core.RoutingArbitrary && !disable && res.Plane.PlaneSources == 0 {
					t.Fatalf("workers=%d: arbitrary-mode MCF never used the plane", w)
				}
				if disable && res.Plane != (overlay.Metrics{}) {
					t.Fatalf("workers=%d: plane disabled but counters %+v", w, res.Plane)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Lambda != base.Lambda {
					t.Fatalf("mode=%v workers=%d disable=%v: lambda %.17g != %.17g", mode, w, disable, res.Lambda, base.Lambda)
				}
				sameSolution(t, mode.String(), base.Solution, res.Solution)
			}
		}
	}
}

// TestWorkersKnobForcesSequential checks the option contract: Workers=1 with
// Parallel set must match Parallel=false exactly (it is the same code path).
func TestWorkersKnobForcesSequential(t *testing.T) {
	p := workerSweepProblem(t, core.RoutingIP)
	seq, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	forced, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.15, Parallel: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "forced-sequential", seq, forced)
}
