package overcast

import (
	"fmt"

	"overcast/internal/routing"
	"overcast/internal/sim"
)

// TreeQuality summarizes the classic overlay-multicast quality metrics of
// one session's tree set. The paper's related work (Narada, Delaunay
// overlays) optimizes these directly; throughput-optimal tree selection
// trades them off, and this accessor quantifies by how much.
type TreeQuality struct {
	// MaxStress is the largest number of identical copies any physical link
	// carries for this session, over all its trees.
	MaxStress int
	// MeanStress is the rate-weighted mean stress over trees (mean over
	// used links within each tree).
	MeanStress float64
	// MaxStretch is the worst ratio of tree-path length to direct unicast
	// route length over all receivers and trees.
	MaxStretch float64
	// MeanStretch is the rate-weighted mean receiver stretch.
	MeanStretch float64
	// MaxDepth is the deepest overlay pipeline over trees — the session's
	// relay start-up latency in overlay hops.
	MaxDepth int
}

// QualityMetrics computes stress/stretch/depth statistics for session i's
// trees. Stretch compares against hop-count shortest routes.
func (a *Allocation) QualityMetrics(i int) (*TreeQuality, error) {
	if i < 0 || i >= len(a.sol.Sessions) {
		return nil, fmt.Errorf("overcast: session %d out of range", i)
	}
	s := a.sol.Sessions[i]
	rt := routing.NewIPRoutes(a.sol.G, s.Members)
	q := &TreeQuality{}
	totalRate := 0.0
	for _, tf := range a.sol.Flows[i] {
		if tf.Rate <= 0 {
			continue
		}
		totalRate += tf.Rate
		maxS, meanS := tf.Tree.Stress()
		if maxS > q.MaxStress {
			q.MaxStress = maxS
		}
		q.MeanStress += meanS * tf.Rate
		ratios, maxR, err := tf.Tree.Stretch(s, rt)
		if err != nil {
			return nil, err
		}
		if maxR > q.MaxStretch {
			q.MaxStretch = maxR
		}
		mean := 0.0
		for _, r := range ratios {
			mean += r
		}
		if len(ratios) > 0 {
			mean /= float64(len(ratios))
		}
		q.MeanStretch += mean * tf.Rate
		depths, err := tf.Tree.Depths(s)
		if err != nil {
			return nil, err
		}
		for _, d := range depths {
			if d > q.MaxDepth {
				q.MaxDepth = d
			}
		}
	}
	if totalRate > 0 {
		q.MeanStress /= totalRate
		q.MeanStretch /= totalRate
	}
	return q, nil
}

// SimulateChunks replays the allocation on the chunk-level store-and-forward
// simulator, reporting pipeline depths and stream lags in addition to
// goodput. See Allocation.Simulate for the fluid variant.
func (a *Allocation) SimulateChunks(steps int, dt float64) (*ChunkReport, error) {
	rep, err := sim.RunChunks(a.sol, sim.ChunkConfig{Steps: steps, DT: dt})
	if err != nil {
		return nil, err
	}
	return &ChunkReport{
		ReceiverRate: rep.ReceiverRate,
		MaxDepth:     rep.MaxDepth,
		MaxLag:       rep.MaxLagUnits,
	}, nil
}

// ChunkReport is the outcome of a chunk-level simulation.
type ChunkReport struct {
	// ReceiverRate[i] is session i's aggregate receiver goodput.
	ReceiverRate []float64
	// MaxDepth[i] is the session's deepest overlay pipeline in hops.
	MaxDepth []int
	// MaxLag[i] is the largest end-of-run stream lag over the session's
	// receivers, in data units.
	MaxLag []float64
}
