package overlay

import (
	"testing"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// batchFixture builds a small ring-of-cliques graph with several overlapping
// sessions and one fixed oracle per session.
func batchFixture(t testing.TB, k int) (*graph.Graph, []TreeOracle) {
	t.Helper()
	const n = 24
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n, 10); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(i, (i+5)%n, 7); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	var members []graph.NodeID
	for i := 0; i < n; i++ {
		members = append(members, i)
	}
	rt := routing.NewIPRoutes(g, members)
	oracles := make([]TreeOracle, k)
	for i := 0; i < k; i++ {
		s, err := NewSession(i, []graph.NodeID{i % n, (i + 7) % n, (i + 13) % n, (i + 18) % n}, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := NewFixedOracle(g, rt, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = o
	}
	return g, oracles
}

// lengthsFor varies edge lengths deterministically so different batches see
// different length functions.
func lengthsFor(g *graph.Graph, round int) graph.Lengths {
	d := graph.NewLengths(g, 1)
	for e := range d {
		d[e] = 1 + float64((e*7+round*3)%11)/10
	}
	return d
}

// TestBatchMatchesDirectMinTree checks every slot of a full batch against a
// direct MinTree call, for several worker counts and length functions.
func TestBatchMatchesDirectMinTree(t *testing.T) {
	g, oracles := batchFixture(t, 6)
	for _, workers := range []int{1, 2, 8} {
		r := NewBatchRunner(g, oracles, workers)
		for round := 0; round < 3; round++ {
			d := lengthsFor(g, round)
			ls := graph.NewLengthStoreFrom(d)
			results := r.MinTreesLen(ls, nil)
			if len(results) != len(oracles) {
				t.Fatalf("workers=%d: %d results for %d oracles", workers, len(results), len(oracles))
			}
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("workers=%d oracle %d: %v", workers, i, res.Err)
				}
				want, err := oracles[i].MinTree(d)
				if err != nil {
					t.Fatal(err)
				}
				if res.Tree.Key() != want.Key() {
					t.Fatalf("workers=%d oracle %d: tree differs from direct call", workers, i)
				}
				if res.Len != want.LengthUnder(d) {
					t.Fatalf("workers=%d oracle %d: len %v != %v", workers, i, res.Len, want.LengthUnder(d))
				}
			}
			// The length-oblivious variant must return the same trees with
			// Len left zero.
			for i, res := range r.MinTrees(ls, nil) {
				if res.Len != 0 {
					t.Fatalf("workers=%d oracle %d: MinTrees filled Len %v", workers, i, res.Len)
				}
				want, err := oracles[i].MinTree(d)
				if err != nil {
					t.Fatal(err)
				}
				if res.Tree.Key() != want.Key() {
					t.Fatalf("workers=%d oracle %d: MinTrees tree differs", workers, i)
				}
			}
		}
		r.Close()
		r.Close() // idempotent
	}
}

// TestBatchSubsetEvaluation checks id-list batches: slots must align with the
// id list, not the oracle indices, and shrinking pending sets (the MCF round
// pattern) must keep working.
func TestBatchSubsetEvaluation(t *testing.T) {
	g, oracles := batchFixture(t, 8)
	for _, workers := range []int{1, 3} {
		r := NewBatchRunner(g, oracles, workers)
		d := lengthsFor(g, 1)
		ls := graph.NewLengthStoreFrom(d)
		for _, ids := range [][]int{{5, 1, 6}, {7}, {0, 2, 3, 4, 5, 6, 7, 1}} {
			results := r.MinTrees(ls, ids)
			if len(results) != len(ids) {
				t.Fatalf("workers=%d: %d results for ids %v", workers, len(results), ids)
			}
			for pos, i := range ids {
				if results[pos].Err != nil {
					t.Fatal(results[pos].Err)
				}
				want, err := oracles[i].MinTree(d)
				if err != nil {
					t.Fatal(err)
				}
				if results[pos].Tree.Key() != want.Key() {
					t.Fatalf("workers=%d ids=%v slot %d: wrong oracle's tree", workers, ids, pos)
				}
				if results[pos].Tree.SessionID != i {
					t.Fatalf("workers=%d: slot %d carries session %d, want %d", workers, pos, results[pos].Tree.SessionID, i)
				}
			}
		}
		r.Close()
	}
}

// TestBatchAddOracleGrowsDynamicRunner pins the Dynamic/AddOracle contract
// the warm-start allocator relies on: a runner that starts (possibly empty)
// and grows between batches must return, for every batch over the grown set,
// exactly what a runner built with the full set up front returns — with the
// plane on and off, across worker counts, and with batches interleaved
// between the AddOracle calls so stored plane rows and cached trees survive
// the growth.
func TestBatchAddOracleGrowsDynamicRunner(t *testing.T) {
	g, fixed := batchFixture(t, 6)
	// A couple of plane-aware (arbitrary) oracles exercise the plane-target
	// merge in AddOracle; the fixed ones the plane-oblivious path.
	oracles := append([]TreeOracle(nil), fixed[:4]...)
	for i := 4; i < 6; i++ {
		s, err := NewSession(i, []graph.NodeID{i, (i + 7) % 24, (i + 13) % 24, (i + 18) % 24}, 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	for _, plane := range []bool{true, false} {
		for _, workers := range []int{1, 3} {
			static := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: plane})
			dyn := NewBatchRunnerOpts(g, nil, BatchOptions{Workers: workers, SharedPlane: plane, Dynamic: true})
			if dyn.Workers() != workers {
				t.Fatalf("dynamic runner clamped its pool to %d before any oracle arrived", dyn.Workers())
			}
			for i, o := range oracles {
				if id := dyn.AddOracle(o); id != i {
					t.Fatalf("AddOracle returned id %d, want %d", id, i)
				}
				// Batch over the grown prefix between arrivals, under fresh
				// lengths, and compare slot by slot.
				d := lengthsFor(g, i)
				got := dyn.MinTreesLen(graph.NewLengthStoreFrom(d), nil)
				want := static.MinTreesLen(graph.NewLengthStoreFrom(d), intRange(i+1))
				if len(got) != i+1 {
					t.Fatalf("plane=%v workers=%d: %d results after %d adds", plane, workers, len(got), i+1)
				}
				for j := range got {
					if got[j].Err != nil || want[j].Err != nil {
						t.Fatalf("slot %d: %v / %v", j, got[j].Err, want[j].Err)
					}
					if got[j].Tree.Key() != want[j].Tree.Key() || got[j].Len != want[j].Len {
						t.Fatalf("plane=%v workers=%d adds=%d slot %d: grown runner diverged from static",
							plane, workers, i+1, j)
					}
				}
			}
			dyn.Close()
			static.Close()
		}
	}
}

func intRange(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestBatchWorkersResolved pins the pool-size contract: <=0 means GOMAXPROCS
// and the pool never exceeds the oracle count.
func TestBatchWorkersResolved(t *testing.T) {
	g, oracles := batchFixture(t, 3)
	if w := NewBatchRunner(g, oracles, 0).Workers(); w < 1 || w > 3 {
		t.Fatalf("auto workers = %d, want within [1,3]", w)
	}
	if w := NewBatchRunner(g, oracles, 64).Workers(); w != 3 {
		t.Fatalf("oversized pool = %d, want clamp to 3 oracles", w)
	}
	r := NewBatchRunner(g, oracles, 1)
	if r.Workers() != 1 {
		t.Fatalf("workers=1 resolved to %d", r.Workers())
	}
	r.Close() // sequential runner: Close must be a no-op
}

// TestBatchResultSliceReusedAcrossCalls pins the BatchResult aliasing
// contract from both sides, so the consume-then-rebatch misuse pattern is
// caught the day either half changes silently. (1) The runner reuses the
// result slice: holding it across a rebatch observes the next batch's slots,
// so a caller that stores the slice and reads it later gets wrong sessions.
// (2) The trees themselves are never recycled: anything extracted from a
// batch before rebatching stays valid and bitwise intact.
func TestBatchResultSliceReusedAcrossCalls(t *testing.T) {
	g, oracles := batchFixture(t, 8)
	r := NewBatchRunner(g, oracles, 1)
	defer r.Close()
	d := lengthsFor(g, 0)
	ls := graph.NewLengthStoreFrom(d)

	first := r.MinTrees(ls, []int{0, 1})
	// Consume properly: copy the tree pointers and their canonical keys out.
	firstTrees := []*Tree{first[0].Tree, first[1].Tree}
	firstKeys := []string{first[0].Tree.Key(), first[1].Tree.Key()}

	second := r.MinTrees(ls, []int{2, 3})
	if &first[0] != &second[0] {
		t.Fatal("result slices no longer alias — the BatchResult reuse contract changed; update its docs and this test")
	}
	// The held slice now describes batch two, not batch one: exactly the
	// misuse this test exists to catch.
	if first[0].Tree.SessionID != 2 || first[1].Tree.SessionID != 3 {
		t.Fatalf("stale slice reads sessions %d,%d — expected it to be overwritten with 2,3",
			first[0].Tree.SessionID, first[1].Tree.SessionID)
	}
	// But trees extracted before the rebatch are untouched.
	for i, tree := range firstTrees {
		if tree.SessionID != i {
			t.Fatalf("extracted tree %d re-stamped to session %d", i, tree.SessionID)
		}
		if tree.Key() != firstKeys[i] {
			t.Fatalf("extracted tree %d mutated by rebatch", i)
		}
		want, err := oracles[i].MinTree(d)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Key() != want.Key() {
			t.Fatalf("extracted tree %d differs from a fresh direct call", i)
		}
	}
}

// TestBatchOracleAllocs is the allocation regression gate for the batch
// oracle hot path: a sequential full-batch evaluation may allocate only the
// returned trees (pairs, routes, struct, use — a handful of allocations per
// oracle), never per-call scratch.
func TestBatchOracleAllocs(t *testing.T) {
	g, oracles := batchFixture(t, 6)
	r := NewBatchRunner(g, oracles, 1)
	defer r.Close()
	d := lengthsFor(g, 0)
	ls := graph.NewLengthStoreFrom(d)
	ids := []int{0, 1, 2, 3, 4, 5}
	r.MinTrees(ls, ids) // warm up scratch growth
	avg := testing.AllocsPerRun(50, func() {
		res := r.MinTrees(ls, ids)
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
	})
	perOracle := avg / float64(len(ids))
	if perOracle > 8 {
		t.Fatalf("batch oracle path allocates %.1f allocs/oracle (avg %.1f/batch), want <= 8", perOracle, avg)
	}
}

// BenchmarkBatchMinTrees measures one full sequential batch over the
// fixture, for the bench-smoke tier.
func BenchmarkBatchMinTrees(b *testing.B) {
	g, oracles := batchFixture(b, 6)
	r := NewBatchRunner(g, oracles, 1)
	defer r.Close()
	d := lengthsFor(g, 0)
	ls := graph.NewLengthStoreFrom(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.MinTrees(ls, nil)
		if res[0].Err != nil {
			b.Fatal(res[0].Err)
		}
	}
}
