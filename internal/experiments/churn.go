package experiments

// The churn tier drives the paper's online allocator (Table VI) with dynamic
// arrival/departure traces whose session sizes, demands, and member
// popularity come from the internal/workload scenario registry — the same
// mixes the static scale tier sweeps — instead of a fixed uniform size
// range. Joins are inherently sequential (each arrival routes under lengths
// the previous arrivals inflated), but everything an arrival needs that does
// not depend on allocator state — its member-restricted IP route tables and
// tree oracle — is prefabricated across the worker pool before the replay,
// so the sequential section is just the Table VI length updates.

import (
	"fmt"
	"runtime"
	"time"

	"overcast/internal/churn"
	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
	"overcast/internal/workload"
)

// ChurnConfig describes one scenario-driven online/churn run.
type ChurnConfig struct {
	Nodes    int    // topology size (grid-accelerated Waxman)
	Scenario string // workload scenario name (default "uniform")
	// Arrival process (sessions per time unit, exponential mean lifetime,
	// trace length).
	ArrivalRate  float64
	MeanLifetime float64
	Horizon      float64
	Mu           float64 // online step size (default 30)
	Arbitrary    bool    // arbitrary dynamic routing instead of fixed IP
	// Workers bounds the oracle-prefabrication pool (0 = GOMAXPROCS). The
	// replay itself is sequential by construction, so results are
	// bit-identical for every worker count.
	Workers int
	// DisablePlane turns off the shared SSSP plane during fixed-routing
	// oracle prefabrication (one weighted Dijkstra per *distinct* member
	// instead of per session-member pair). Outputs are bit-identical either
	// way; the toggle exists for the determinism gate and perf comparisons.
	DisablePlane bool
}

func (c *ChurnConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: churn run needs >=8 nodes, got %d", c.Nodes)
	}
	if c.Scenario == "" {
		c.Scenario = "uniform"
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 2
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 5
	}
	if c.Horizon <= 0 {
		c.Horizon = 25
	}
	if c.Mu <= 0 {
		c.Mu = 30
	}
	return nil
}

// ChurnReport summarizes a replayed trace.
type ChurnReport struct {
	Config          ChurnConfig
	Edges           int
	Sessions        int // sessions in the trace
	PeakConcurrency int
	// PeakCongestion is the maximum over events of the full-demand link
	// congestion max_e l_e.
	PeakCongestion float64
	// FinalActive counts the sessions alive when the trace ends (their
	// departures were clipped to the horizon).
	FinalActive int
	MSTOps      int
	// Plane reports the prefabrication plane's dedup counters: one round,
	// PlaneSources distinct member Dijkstras serving PlaneRequests
	// session-member route-table slots. Zero when disabled or in arbitrary
	// mode (which prefabricates no route tables at all).
	Plane overlay.Metrics
	// Throughput and MinRate describe the feasible allocation of the
	// sessions still active at the horizon (zero when none survive).
	Throughput float64
	MinRate    float64
	BuildTime  time.Duration
	ReplayTime time.Duration
}

// String renders the report for cmd/experiments output.
func (r ChurnReport) String() string {
	plane := ""
	if r.Plane.PlaneRounds > 0 {
		plane = fmt.Sprintf(" dedup=%.2fx", r.Plane.PlaneDedup())
	}
	return fmt.Sprintf("%-13s n=%-6d |E|=%-6d sessions=%-5d peak=%-4d maxcong=%-10.3f active=%-4d thpt=%-12.2f minrate=%-10.4f mstops=%-5d%s build=%-10v replay=%v",
		r.Config.Scenario, r.Config.Nodes, r.Edges, r.Sessions, r.PeakConcurrency,
		r.PeakCongestion, r.FinalActive, r.Throughput, r.MinRate, r.MSTOps, plane,
		r.BuildTime.Round(time.Millisecond), r.ReplayTime.Round(time.Millisecond))
}

// ChurnRun generates a deterministic scenario-driven churn trace over a
// grid-Waxman topology and replays it through the online allocator: joins
// pick the minimum overlay spanning tree under the current lengths, leaves
// roll their length inflation back exactly. Oracles for every trace session
// are prefabricated across the worker pool (their fixed routes depend only
// on the static topology), so the sequential replay performs no route
// resolution.
func ChurnRun(seed uint64, cfg ChurnConfig) (*ChurnReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	sc, err := workload.Get(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	r := rng.New(seed)
	wax := topology.DefaultWaxman(cfg.Nodes)
	net, err := topology.WaxmanGrid(wax, r.Split(0))
	if err != nil {
		return nil, err
	}
	sc.Capacities(net.Graph, r.Split(2))
	trace, err := churn.GenerateScenario(churn.Config{
		Nodes:        cfg.Nodes,
		ArrivalRate:  cfg.ArrivalRate,
		MeanLifetime: cfg.MeanLifetime,
		Horizon:      cfg.Horizon,
	}, sc, r.Split(1))
	if err != nil {
		return nil, err
	}

	// Prefabricate the per-session route tables and oracles: independent of
	// allocator state, so they batch across the worker pool with i-indexed
	// result slots (scheduling cannot change the replay's inputs).
	//
	// Every fixed-routing table derives from the same static delay snapshot,
	// so the trace-wide member union's weighted Dijkstra trees are computed
	// once on a shared SSSP plane and each session's table is assembled from
	// plane rows — sessions sharing Zipf-hot members stop recomputing each
	// other's trees. Plane rows are read-only after Fill, so the assembly
	// fan-out below may read them concurrently. Arbitrary mode prefabricates
	// no route tables at all (the dynamic oracle routes under the
	// allocator's lengths).
	delays := net.LinkDelays()
	oracles := make([]overlay.TreeOracle, len(trace.Sessions))
	oracleErrs := make([]error, len(trace.Sessions))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var plane *overlay.Plane
	var planeMetrics overlay.Metrics
	if !cfg.Arbitrary && !cfg.DisablePlane {
		plane = overlay.NewPlane(net.Graph)
		requests := 0
		for _, spec := range trace.Sessions {
			requests += len(spec.Members)
			for _, m := range spec.Members {
				plane.Stage(m)
			}
		}
		plane.Fill(delays, workers)
		planeMetrics = overlay.Metrics{PlaneRounds: 1, PlaneSources: plane.NumSources(), PlaneRequests: requests}
	}
	parallelWorkers(workers, len(trace.Sessions), func(i int) {
		spec := trace.Sessions[i]
		s, err := overlay.NewSession(i, spec.Members, spec.Demand)
		if err != nil {
			oracleErrs[i] = err
			return
		}
		if cfg.Arbitrary {
			oracles[i], oracleErrs[i] = overlay.NewArbitraryOracle(net.Graph, s)
			return
		}
		var rt *routing.IPRoutes
		if plane != nil {
			rt = routing.NewWeightedIPRoutesFromTrees(net.Graph, s.Members, func(src graph.NodeID) []graph.EdgeID {
				_, parent, ok := plane.Lookup(src)
				if !ok {
					// Every trace member was staged above; reaching this
					// means the trace and plane disagree.
					panic(fmt.Sprintf("experiments: churn member %d missing from prefab plane", src))
				}
				return parent
			})
		} else {
			rt = routing.NewWeightedIPRoutes(net.Graph, s.Members, delays)
		}
		oracles[i], oracleErrs[i] = overlay.NewFixedOracle(net.Graph, rt, s)
	})
	for i, err := range oracleErrs {
		if err != nil {
			return nil, fmt.Errorf("experiments: churn session %d: %w", i, err)
		}
	}
	build := time.Since(start)

	start = time.Now()
	on, err := core.NewOnline(net.Graph, cfg.Mu)
	if err != nil {
		return nil, err
	}
	rep := &ChurnReport{
		Config: cfg, Edges: net.Graph.NumEdges(),
		Sessions: len(trace.Sessions), PeakConcurrency: trace.PeakConcurrency(),
		Plane:     planeMetrics,
		BuildTime: build,
	}
	arrivalIdx := make(map[int]int, len(trace.Sessions))
	for _, ev := range trace.Events {
		switch ev.Kind {
		case churn.Join:
			if _, err := on.Join(oracles[ev.Session]); err != nil {
				return nil, fmt.Errorf("experiments: churn join %d: %w", ev.Session, err)
			}
			arrivalIdx[ev.Session] = on.NumSessions() - 1
		case churn.Leave:
			// Departures the generator clipped to the horizon are sessions
			// still alive when the trace ends; keep them admitted so the
			// final allocation describes the surviving population.
			if trace.Sessions[ev.Session].Depart >= cfg.Horizon {
				continue
			}
			if err := on.Leave(arrivalIdx[ev.Session]); err != nil {
				return nil, fmt.Errorf("experiments: churn leave %d: %w", ev.Session, err)
			}
		}
		if c := on.MaxCongestion(); c > rep.PeakCongestion {
			rep.PeakCongestion = c
		}
	}
	rep.FinalActive = on.ActiveSessions()
	rep.MSTOps = on.MSTOps()
	if rep.FinalActive > 0 {
		sol, err := on.Finalize()
		if err != nil {
			return nil, err
		}
		rep.Throughput = sol.OverallThroughput()
		rep.MinRate = sol.MinSessionRate()
	}
	rep.ReplayTime = time.Since(start)
	return rep, nil
}

// ChurnSuite replays one trace per requested scenario (all registered
// scenarios when the list is empty) with shared arrival parameters. Seeds
// derive from the base seed and the scenario index, so the suite is fully
// deterministic.
func ChurnSuite(seed uint64, nodes int, workers int, disablePlane bool, scenarios []string) ([]ChurnReport, error) {
	if len(scenarios) == 0 {
		scenarios = workload.Names()
	}
	reports := make([]ChurnReport, 0, len(scenarios))
	for si, name := range scenarios {
		if _, err := workload.Get(name); err != nil {
			return nil, err
		}
		rep, err := ChurnRun(seed+uint64(si), ChurnConfig{Nodes: nodes, Scenario: name, Workers: workers, DisablePlane: disablePlane})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn %s: %w", name, err)
		}
		reports = append(reports, *rep)
	}
	return reports, nil
}
