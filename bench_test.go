package overcast_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its experiment on a scaled-down deterministic instance so the
// full suite stays tractable; `cmd/experiments -scale paper` runs the
// full-size versions and prints the same rows/series the paper reports.

import (
	"fmt"
	"sync"
	"testing"

	"overcast/internal/core"
	"overcast/internal/experiments"
	"overcast/internal/graph"
	"overcast/internal/routing"
	"overcast/internal/stats"
)

// benchSettingA is the scaled Sec. III-B environment shared by the
// Table II/IV and Fig. 2-11 benches.
func benchSettingA(b *testing.B) *experiments.SettingA {
	b.Helper()
	a, err := experiments.NewSettingA(7, experiments.SettingAConfig{
		Nodes: 60, SessionSizes: []int{6, 4}, Demand: 100, Capacity: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

var benchRatios = []float64{0.90, 0.95}

func BenchmarkTable2MaxFlow(b *testing.B) {
	a := benchSettingA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.MaxFlowSweep(benchRatios, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2TreeRateCDF(b *testing.B) {
	a := benchSettingA(b)
	_, sols, err := a.MaxFlowSweep(benchRatios, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sol := range sols {
			curves := experiments.RateCDFs(sol)
			if len(curves) == 0 {
				b.Fatal("no curves")
			}
		}
	}
}

func BenchmarkTable4MaxConcurrentFlow(b *testing.B) {
	a := benchSettingA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.MCFSweep([]float64{0.90}, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3MCFTreeRateCDF(b *testing.B) {
	a := benchSettingA(b)
	_, sols, err := a.MCFSweep([]float64{0.90}, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves := experiments.RateCDFs(sols[0])
		if len(curves) == 0 {
			b.Fatal("no curves")
		}
	}
}

func BenchmarkFig4LinkUtilization(b *testing.B) {
	a := benchSettingA(b)
	_, mfSols, err := a.MaxFlowSweep([]float64{0.95}, false)
	if err != nil {
		b.Fatal(err)
	}
	_, mcfSols, err := a.MCFSweep([]float64{0.90}, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.LinkUtilizationCDF(mfSols[0])) == 0 ||
			len(experiments.LinkUtilizationCDF(mcfSols[0])) == 0 {
			b.Fatal("no curves")
		}
	}
}

func benchTreeLimitCfg(arbitrary bool) experiments.TreeLimitConfig {
	return experiments.TreeLimitConfig{
		MaxTrees:  []int{1, 5, 10},
		Mus:       []float64{30},
		Trials:    4,
		BaseRatio: 0.92,
		Arbitrary: arbitrary,
	}
}

func BenchmarkFig5RandomAndOnlineThroughput(b *testing.B) {
	a := benchSettingA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.TreeLimitSweep(benchTreeLimitCfg(false)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TreesUsed(b *testing.B) {
	a := benchSettingA(b)
	res, err := a.TreeLimitSweep(benchTreeLimitCfg(false))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.RenderTreeLimit(res)
		if len(out) == 0 {
			b.Fatal("no render")
		}
	}
}

func BenchmarkTable7ArbitraryRouting(b *testing.B) {
	a := benchSettingA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.MaxFlowSweep([]float64{0.90}, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8MCFArbitraryRouting(b *testing.B) {
	a := benchSettingA(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.MCFSweep([]float64{0.90}, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7to9ArbitraryCDFs(b *testing.B) {
	a := benchSettingA(b)
	_, sols, err := a.MaxFlowSweep([]float64{0.90}, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.RateCDFs(sols[0])) == 0 ||
			len(experiments.LinkUtilizationCDF(sols[0])) == 0 {
			b.Fatal("no curves")
		}
	}
}

func BenchmarkFig10to11OnlineArbitrary(b *testing.B) {
	a := benchSettingA(b)
	cfg := benchTreeLimitCfg(true)
	cfg.MaxTrees = []int{1, 5}
	cfg.Trials = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.TreeLimitSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSettingB is the scaled Sec. VI environment shared by the Fig. 12-19
// benches.
func benchSettingB(b *testing.B) *experiments.SettingB {
	b.Helper()
	sb, err := experiments.NewSettingB(11, experiments.SettingBConfig{ASes: 3, RoutersPerAS: 10, Capacity: 100})
	if err != nil {
		b.Fatal(err)
	}
	return sb
}

func benchGridCfg() experiments.GridConfig {
	return experiments.GridConfig{
		SessionCounts: []int{1, 3},
		SessionSizes:  []int{4, 8},
		Ratio:         0.92,
		Demand:        1,
	}
}

func gridFor(b *testing.B) *experiments.GridResult {
	b.Helper()
	sb := benchSettingB(b)
	res, err := sb.Grid(benchGridCfg())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkFig12ThroughputSurface(b *testing.B) {
	sb := benchSettingB(b)
	cfg := benchGridCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sb.Grid(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Throughput.At(1, 4) <= 0 {
			b.Fatal("empty surface")
		}
	}
}

func BenchmarkFig13EdgesPerNode(b *testing.B) {
	res := gridFor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.EdgesPerNode.Render() == "" {
			b.Fatal("no surface")
		}
	}
}

func BenchmarkFig14UtilizationPanels(b *testing.B) {
	res := gridFor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range res.Cells {
			if stats.RenderCurve(cell.MFUtilCDF, 16) == "" || stats.RenderCurve(cell.MCFUtilCDF, 16) == "" {
				b.Fatal("missing panel")
			}
		}
	}
}

func BenchmarkFig15MinRateSurface(b *testing.B) {
	res := gridFor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.MinRate.Render() == "" {
			b.Fatal("no surface")
		}
	}
}

func BenchmarkFig16ThroughputRatioSurface(b *testing.B) {
	res := gridFor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.ThroughputRatio.Render() == "" {
			b.Fatal("no surface")
		}
	}
}

func BenchmarkFig17AsymmetryVsSize(b *testing.B) {
	res := gridFor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cell := range res.Cells {
			if cell.Sessions == 1 && len(cell.MFTreeRateCDF) == 0 {
				b.Fatal("missing CDF")
			}
		}
	}
}

func BenchmarkFig18OnlineThroughputRatio(b *testing.B) {
	sb := benchSettingB(b)
	cfg := benchGridCfg()
	cfg.SessionCounts = []int{2}
	cfg.SessionSizes = []int{4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sb.OnlineGrid(cfg, []int{2, 6}, 10, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.ThroughputRatio[6].At(2, 4) <= 0 {
			b.Fatal("empty ratio")
		}
	}
}

func BenchmarkFig19OnlineMinRateRatio(b *testing.B) {
	sb := benchSettingB(b)
	cfg := benchGridCfg()
	cfg.SessionCounts = []int{2}
	cfg.SessionSizes = []int{4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sb.OnlineGrid(cfg, []int{4}, 10, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.MinRateRatio[4].At(2, 4) <= 0 {
			b.Fatal("empty ratio")
		}
	}
}

// --- Scale tier -------------------------------------------------------------
//
// The BenchmarkScale* benchmarks measure the regime the ROADMAP north-star
// cares about: Waxman topologies at 1,000-10,000 nodes with 64-256 competing
// sessions, i.e. the repeated shortest-path / minimum-overlay-spanning-tree
// oracle calls that dominate solver time at scale. Instances are cached per
// configuration so b.N iterations (and sibling benchmarks) share setup. The
// heaviest instances skip under -short so the CI bench smoke (-benchtime 1x
// -short) stays fast.

var (
	scaleMu    sync.Mutex
	scaleCache = map[string]*experiments.ScaleInstance{}
)

func scaleInstance(b *testing.B, cfg experiments.ScaleConfig) *experiments.ScaleInstance {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	key := cfg.Name()
	if si, ok := scaleCache[key]; ok {
		return si
	}
	si, err := experiments.NewScaleInstance(9000, cfg)
	if err != nil {
		b.Fatal(err)
	}
	scaleCache[key] = si
	return si
}

// BenchmarkScaleMCFFixed is the acceptance benchmark of the CSR+scratch
// refactor: MaxConcurrentFlow on a 1,000-node Waxman topology with 64
// competing sessions under fixed IP routing.
func BenchmarkScaleMCFFixed(b *testing.B) {
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 1000, Sessions: 64, SessionSize: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := si.MCF(0.25, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Lambda <= 0 {
			b.Fatalf("lambda %v", res.Lambda)
		}
	}
}

// BenchmarkScaleMaxFlowFixed runs the M1 FPTAS on the same 1,000x64 instance.
func BenchmarkScaleMaxFlowFixed(b *testing.B) {
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 1000, Sessions: 64, SessionSize: 5})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := si.MaxFlow(0.25, true)
		if err != nil {
			b.Fatal(err)
		}
		if sol.OverallThroughput() <= 0 {
			b.Fatal("zero throughput")
		}
	}
}

// BenchmarkScaleMCFArbitrary exercises the dynamic-routing oracle (one
// Dijkstra per member per MinTree call) at 1,000 nodes and 64 sessions.
func BenchmarkScaleMCFArbitrary(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scale benchmark skipped in -short mode")
	}
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 1000, Sessions: 64, SessionSize: 5, Arbitrary: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := si.MCF(0.3, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Lambda <= 0 {
			b.Fatalf("lambda %v", res.Lambda)
		}
	}
}

// BenchmarkScaleMaxFlowFixedLarge pushes the fixed-routing solver to 2,000
// nodes and 128 sessions.
func BenchmarkScaleMaxFlowFixedLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scale benchmark skipped in -short mode")
	}
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 2000, Sessions: 128, SessionSize: 6})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := si.MaxFlow(0.3, true)
		if err != nil {
			b.Fatal(err)
		}
		if sol.OverallThroughput() <= 0 {
			b.Fatal("zero throughput")
		}
	}
}

// BenchmarkScaleMOSTFixed isolates one fixed-routing oracle call (the MCF
// inner loop body) on a 2,000-node, 64-member-pool instance.
func BenchmarkScaleMOSTFixed(b *testing.B) {
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 2000, Sessions: 64, SessionSize: 8})
	d := graph.NewLengths(si.Net.Graph, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := si.Problem.Oracles[i%len(si.Problem.Oracles)].MinTree(d)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Pairs) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkScaleMOSTArbitrary isolates one dynamic-routing oracle call
// (session-size Dijkstras plus Prim) on the same 2,000-node instance.
func BenchmarkScaleMOSTArbitrary(b *testing.B) {
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 2000, Sessions: 64, SessionSize: 8, Arbitrary: true})
	d := graph.NewLengths(si.Net.Graph, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := si.Problem.Oracles[i%len(si.Problem.Oracles)].MinTree(d)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Pairs) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// benchScaleScenario solves MCF on a 1,000-node grid-Waxman instance of one
// named workload scenario (heterogeneous capacities/demands, session-size
// mixes; see internal/workload).
func benchScaleScenario(b *testing.B, scenario string) {
	b.Helper()
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 1000, Sessions: 32, Scenario: scenario})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := si.MCF(0.3, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Lambda <= 0 {
			b.Fatalf("lambda %v", res.Lambda)
		}
	}
}

// BenchmarkScaleScenarioUniform is the scenario-tier baseline: same
// distributions as the paper (uniform capacity 100), but generated via the
// grid Waxman sampler.
func BenchmarkScaleScenarioUniform(b *testing.B) { benchScaleScenario(b, "uniform") }

// BenchmarkScaleScenarioHeavytail stresses heterogeneous capacity: Pareto
// link capacities and lognormal demands.
func BenchmarkScaleScenarioHeavytail(b *testing.B) { benchScaleScenario(b, "heavytail") }

// BenchmarkScaleScenarioCDN is the session-mix scenario: bimodal session
// sizes with Zipf node popularity over a very heavy capacity tail.
func BenchmarkScaleScenarioCDN(b *testing.B) { benchScaleScenario(b, "cdn") }

// BenchmarkScaleScenarioLivestream has few huge multicast groups — the
// heaviest oracle regime — so it skips under -short.
func BenchmarkScaleScenarioLivestream(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scale benchmark skipped in -short mode")
	}
	benchScaleScenario(b, "livestream")
}

// BenchmarkScaleDijkstra isolates the shortest-path primitive on a
// 10,000-node topology (the largest tier instance).
func BenchmarkScaleDijkstra(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scale benchmark skipped in -short mode")
	}
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: 10000, Sessions: 1, SessionSize: 4})
	d := si.Net.LinkDelays()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist, _ := routing.ShortestPaths(si.Net.Graph, i%si.Net.Graph.NumNodes(), d)
		if len(dist) != si.Net.Graph.NumNodes() {
			b.Fatal("bad dist")
		}
	}
}

// BenchmarkTreePacking covers the Fig. 1 packing-spanning-trees subproblem
// via the public MaxFlow path on a complete session (the K4 strength-2
// instance).
func BenchmarkTreePacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := newK4()
		if err != nil {
			b.Fatal(err)
		}
		sys, err := newK4System(net)
		if err != nil {
			b.Fatal(err)
		}
		alloc, err := sys.MaxFlow(0.95)
		if err != nil {
			b.Fatal(err)
		}
		if alloc.SessionRate(0) < 18 {
			b.Fatalf("K4 packing rate %v", alloc.SessionRate(0))
		}
	}
}

// --- Parallel phase-loop sweeps ---------------------------------------------
//
// The BenchmarkScaleParallel* benches sweep the solver worker-pool size over
// fixed instances, measuring how the batched MCF phase loop scales with
// workers. Outputs are bit-identical across the sweep (the determinism gate
// pins this), so the ns/op trajectory in BENCH_scale.json is a pure
// wall-clock comparison: workers=1 is the batched loop run on a single
// worker (the round structure is identical, only the fan-out width changes;
// it is NOT the pre-batching strictly sequential algorithm, whose outputs
// differ — see MaxConcurrentFlow's doc), workers=8 the fan-out. Real
// scaling needs real cores — on a single-CPU runner (GOMAXPROCS=1) all
// worker counts collapse to roughly the single-worker time, which the
// README "Parallel solver" section documents.

var benchWorkerCounts = []int{1, 2, 8}

func benchScaleParallelMCF(b *testing.B, scenario string, nodes, sessions, workers int) {
	b.Helper()
	si := scaleInstance(b, experiments.ScaleConfig{Nodes: nodes, Sessions: sessions, Scenario: scenario})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.MaxConcurrentFlow(si.Problem, core.MaxConcurrentFlowOptions{
			Epsilon: 0.3, Parallel: true, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Lambda <= 0 {
			b.Fatalf("lambda %v", res.Lambda)
		}
	}
}

// BenchmarkScaleParallelMCFUniform sweeps workers over the 2,000-node
// uniform scenario (64 sessions).
func BenchmarkScaleParallelMCFUniform(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchScaleParallelMCF(b, "uniform", 2000, 64, w)
		})
	}
}

// BenchmarkScaleParallelMCFHeavytail10k sweeps workers over the 10,000-node
// heavytail scenario with 256 competing sessions — the acceptance instance
// for the batched phase loop (the largest tier configuration).
func BenchmarkScaleParallelMCFHeavytail10k(b *testing.B) {
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchScaleParallelMCF(b, "heavytail", 10000, 256, w)
		})
	}
}

// BenchmarkScaleShardedMCF sweeps the AS-shard count over the two-level
// 10,000-node tier: 100 ASes of 100 routers each (the paper's two-level
// construction at the largest tier size) with 256 competing sessions,
// sessions homed to shards by the topology's AS labels. Outputs are
// bit-identical across the sweep (the determinism gate diffs detdump over
// -shards 1/2/4), so the ns/op trajectory is pure wall-clock: it prices the
// distribution boundary — per-round price-message diffing, replica Raise
// application, and per-shard plane fills — against the fan-out win. shards=1
// still crosses the message boundary (one shard goroutine + replica), so the
// 1-vs-2-vs-4 trajectory separates boundary overhead from parallel speedup;
// like the worker sweeps, real speedup needs real cores.
func BenchmarkScaleShardedMCF(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			si := scaleInstance(b, experiments.ScaleConfig{
				Nodes: 10000, Sessions: 256, SessionSize: 6, TwoLevelASes: 100,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.MaxConcurrentFlow(si.Problem, core.MaxConcurrentFlowOptions{
					Epsilon: 0.3, Parallel: true, Workers: 2,
					Shards: shards, ShardLabels: si.Net.ASOf,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Lambda <= 0 {
					b.Fatalf("lambda %v", res.Lambda)
				}
			}
		})
	}
}

// BenchmarkScaleZipfHotPlane measures the round-level shared SSSP plane on
// the workloads it was built for: Zipf-hot arbitrary-routing scenarios where
// many sessions share popular member nodes, so a MaxFlow iteration's batch
// re-runs the same per-member Dijkstras once per session without the plane
// and once per *distinct* member with it. The plane on/off pairs solve the
// identical instance to bit-identical outputs (the determinism gate pins
// this), so the ns/op ratio is a pure measure of the dedup win — the
// acceptance threshold for this tier is plane-off >= 1.5x plane-on on both
// scenarios, and the effect is algorithmic (fewer Dijkstras), so it shows on
// any core count. MaxFlow is benchmarked rather than MCF because its batch
// evaluates every session each iteration — the maximal-sharing regime; the
// instance is sized (200 nodes, 48 sessions) so the four sub-benchmarks stay
// affordable for CI's 1-iteration trajectory run, which is why this tier
// does NOT skip under -short.
func BenchmarkScaleZipfHotPlane(b *testing.B) {
	for _, scenario := range []string{"cdn", "livestream"} {
		for _, plane := range []bool{true, false} {
			b.Run(fmt.Sprintf("%s/plane=%v", scenario, plane), func(b *testing.B) {
				si := scaleInstance(b, experiments.ScaleConfig{Nodes: 200, Sessions: 48, Scenario: scenario, Arbitrary: true})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sol, err := core.MaxFlow(si.Problem, core.MaxFlowOptions{
						Epsilon: 0.35, Parallel: true, DisablePlane: !plane,
					})
					if err != nil {
						b.Fatal(err)
					}
					if sol.OverallThroughput() <= 0 {
						b.Fatal("zero throughput")
					}
					if plane && sol.Plane.PlaneSources == 0 {
						b.Fatal("plane never fired")
					}
				}
			})
		}
	}
}

// BenchmarkScaleChurnReplay measures the scenario-driven online/churn
// harness end to end (trace generation, parallel oracle prefabrication,
// sequential replay) on a 2,000-node cdn instance.
func BenchmarkScaleChurnReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ChurnRun(9000, experiments.ChurnConfig{Nodes: 2000, Scenario: "cdn"})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Sessions == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkChurnWarmStart is the acceptance benchmark of the Allocator v2
// warm-start incremental re-solve: the same churn trace replayed with a
// per-event Snapshot cadence, once warm-started and once with every refresh
// forced cold (RepairPhaseBudget=-1 via ColdBaseline). Both replays produce
// the same number of ε-feasible allocations from the same trace, so the
// cold/warm ns/op ratio in BENCH_scale.json IS the steady-state
// allocations/sec speedup — the acceptance threshold is warm >= 2x cold
// (measured 2.5-3.1x), with the mean per-snapshot throughput inside the
// (1+ε) FPTAS band of the cold baseline's (cmd/experiments warmchurn prints
// both numbers). The effect is algorithmic (a refresh repairs only the
// churned demand share instead of re-solving for the whole population), so
// it shows on any core count.
func BenchmarkChurnWarmStart(b *testing.B) {
	for _, mode := range []string{"warm", "cold"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := experiments.WarmChurnRun(2004, experiments.WarmChurnConfig{
					Nodes: 120, ColdBaseline: mode == "cold",
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Snapshots == 0 {
					b.Fatal("no snapshots")
				}
				if mode == "warm" && rep.WarmRefreshes == 0 {
					b.Fatal("warm path never fired")
				}
				if mode == "cold" && rep.WarmRefreshes != 0 {
					b.Fatal("cold baseline took the warm path")
				}
			}
		})
	}
}

// BenchmarkDaemonChurn measures the overcastd admin path end to end: an
// in-process admin server on a unix socket, a 4-connection synthetic client
// fleet replaying a churn trace through the wire protocol (joins, leaves,
// cached and refreshing snapshot reads), then a graceful drain. The metric
// that matters is the sustained admin ops/sec reported as ops/s — the
// daemon's serialized-mutation lock plus JSON codec plus socket round-trip
// on top of the warm allocator path BenchmarkChurnWarmStart isolates.
func BenchmarkDaemonChurn(b *testing.B) {
	b.ReportAllocs()
	var ops float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.DaemonChurnRun(2004, experiments.DaemonChurnConfig{Nodes: 120})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Joins == 0 || rep.Leaves == 0 {
			b.Fatalf("degenerate replay: %+v", rep)
		}
		ops += rep.OpsPerSec
	}
	b.ReportMetric(ops/float64(b.N), "ops/s")
}

// BenchmarkFaultChurn is the robustness acceptance pair: the same churn
// trace interleaved with a hard-oscillating link flap trace, replayed
// through the public Fault surface raw and through the route-flap damper.
// Each effective fault latches the next refresh onto the cold path, so the
// coldsolves metric is the repair bill the flaps extract — the damped row
// must pay no more of it than the undamped row (the suppression bound the
// README documents), and the suppressed metric shows the damper actually
// held recoveries rather than passing the trace through.
func BenchmarkFaultChurn(b *testing.B) {
	cfg := experiments.FaultChurnConfig{
		Nodes: 64, ArrivalRate: 1.5, MeanLifetime: 5, Horizon: 10,
		FaultEdges: 6, FailRate: 3, MeanRepair: 0.2,
	}
	for _, mode := range []string{"undamped", "damped"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			var cold, suppressed, events float64
			for i := 0; i < b.N; i++ {
				run := cfg
				run.Damped = mode == "damped"
				rep, err := experiments.FaultChurnRun(2004, run)
				if err != nil {
					b.Fatal(err)
				}
				if rep.TraceFaults == 0 || rep.Snapshots == 0 || rep.Throughput <= 0 {
					b.Fatalf("degenerate replay: %+v", rep)
				}
				if mode == "undamped" && rep.UnderlayEvents == 0 {
					b.Fatal("undamped replay applied no effective fault events")
				}
				if mode == "damped" && rep.Suppressed == 0 {
					b.Fatal("damper suppressed nothing under a hard oscillation")
				}
				cold += float64(rep.ColdSolves)
				suppressed += float64(rep.Suppressed)
				events += float64(rep.UnderlayEvents)
			}
			b.ReportMetric(cold/float64(b.N), "coldsolves")
			b.ReportMetric(suppressed/float64(b.N), "suppressed")
			b.ReportMetric(events/float64(b.N), "events")
		})
	}
}

// --- Cross-round repair sweeps ----------------------------------------------
//
// The BenchmarkScalePlaneRepair* benches measure the length-ledger-driven
// cross-round dirty-source repair: the solve-scoped plane keeps its SSSP
// rows alive between batches and refills only sources whose read paths
// intersect the edges the ledger journaled since the row was filled. The
// repair on/off pairs solve identical instances to bit-identical outputs
// (the determinism gate pins this), so the ns/op ratio is a pure measure of
// the Dijkstras (and cached whole trees) the repair avoids; the effect is
// algorithmic, so it shows on any core count.
//
// The cdn instance is the acceptance configuration (>= 1.5x: ~1.6x measured
// — small Zipf-hot sessions whose read paths cover little of the denser
// degree-3 fabric, so most rows survive the one routed tree per iteration).
// The livestream instance pins the adversarial floor the README documents:
// its sessions are so large that every row reads a constant fraction of the
// graph, the skip rate sits in the low percent, and the ratio hovers near
// 1.0x — repair must never *cost* measurably even when it cannot win.

// benchPlaneRepair runs one scenario at one repair mode: "off" (every row
// refills every round), "full" (dirty rows refill whole, the pre-subtree
// shape), or "subtree" (dirty rows resume Dijkstra over the dirty subtrees
// when the exactness + scale-separation certificate holds). The three modes
// solve bit-identical outputs, so the ns/op ratios isolate the avoided work.
func benchPlaneRepair(b *testing.B, scenario string, degree int, mode string) {
	b.Helper()
	si := scaleInstance(b, experiments.ScaleConfig{
		Nodes: 200, Sessions: 48, Degree: degree, Scenario: scenario, Arbitrary: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.MaxFlow(si.Problem, core.MaxFlowOptions{
			Epsilon: 0.35, Parallel: true,
			DisableRepair:        mode == "off",
			DisableSubtreeRepair: mode != "subtree",
		})
		if err != nil {
			b.Fatal(err)
		}
		if sol.OverallThroughput() <= 0 {
			b.Fatal("zero throughput")
		}
		switch mode {
		case "off":
			if sol.Plane.PlaneSkipped != 0 || sol.Plane.PlaneRepaired != 0 {
				b.Fatalf("repair disabled but counters fired: %+v", sol.Plane)
			}
		case "full":
			if sol.Plane.PlaneSkipped == 0 {
				b.Fatal("repair never skipped a refill")
			}
			if sol.Plane.PlaneSubtreeRepaired != 0 {
				b.Fatalf("subtree disabled but fired: %+v", sol.Plane)
			}
		case "subtree":
			if sol.Plane.PlaneSkipped == 0 {
				b.Fatal("repair never skipped a refill")
			}
			if sol.Plane.PlaneSubtreeRepaired == 0 {
				b.Fatal("subtree repair never fired on the benchmark instance")
			}
		}
	}
}

// BenchmarkScalePlaneRepairCDN sweeps repair on/off over the Zipf-hot cdn
// mix (48 arbitrary-routing sessions, degree-4 fabric) — the acceptance
// instance for dirty-source repair. Degree 4 because the skip probability
// decays like exp(-touched x read-path edges / |E|): the denser fabric
// shortens member paths and grows |E|, which is exactly the regime
// row-granular repair targets (measured ~1.6-1.7x repair-off/on).
func BenchmarkScalePlaneRepairCDN(b *testing.B) {
	for _, mode := range []string{"subtree", "full", "off"} {
		b.Run("repair="+mode, func(b *testing.B) {
			benchPlaneRepair(b, "cdn", 4, mode)
		})
	}
}

// BenchmarkScalePlaneRepairLivestream sweeps all three repair modes over the
// livestream mix: huge sessions whose member paths blanket the topology, the
// documented worst case for *row-granular* repair — nearly every row has a
// dirty read path, so mode "full" refills almost everything and its ratio
// over "off" hovers near 1.0x. Subtree repair is built to break exactly this
// floor: a dirty read path usually means a few touched tree edges whose
// subtrees cover a small fraction of the row, so "subtree" resettles that
// fraction instead of the whole row (measured ~1.5x off/subtree on this
// instance, vs ~1.0x off/full).
func BenchmarkScalePlaneRepairLivestream(b *testing.B) {
	for _, mode := range []string{"subtree", "full", "off"} {
		b.Run("repair="+mode, func(b *testing.B) {
			benchPlaneRepair(b, "livestream", 3, mode)
		})
	}
}

// BenchmarkScalePlaneRepairMCF10k runs the 10,000-node arbitrary-routing
// MCF with repair on and off: the batched beta prestep shares one seed
// plane across its same-delta subproblems (PrestepPlane.PlaneSeeded rows
// copied instead of Dijkstra'd) and every subproblem plus the phase loop
// repairs across rounds (PlaneSkipped). The heaviest tier configuration, so
// it skips under -short like the other 10k benches; run it via
// `make bench-scale` without BENCHFLAGS overrides.
func BenchmarkScalePlaneRepairMCF10k(b *testing.B) {
	if testing.Short() {
		b.Skip("heavy scale benchmark skipped in -short mode")
	}
	for _, repair := range []bool{true, false} {
		b.Run(fmt.Sprintf("repair=%v", repair), func(b *testing.B) {
			si := scaleInstance(b, experiments.ScaleConfig{
				Nodes: 10000, Sessions: 8, Degree: 3, Scenario: "cdn", Arbitrary: true,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.MaxConcurrentFlow(si.Problem, core.MaxConcurrentFlowOptions{
					Epsilon: 0.5, Parallel: true, DisableRepair: !repair,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Lambda <= 0 {
					b.Fatalf("lambda %v", res.Lambda)
				}
				if repair && (res.PrestepPlane.PlaneSeeded == 0 || res.PrestepPlane.PlaneSkipped == 0) {
					b.Fatalf("prestep seeding/repair never fired: %+v", res.PrestepPlane)
				}
			}
		})
	}
}
