package overlay

import (
	"testing"
	"testing/quick"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func TestCayleyTreeCount(t *testing.T) {
	cases := map[int]int64{1: 1, 2: 1, 3: 3, 4: 16, 5: 125, 6: 1296, 7: 16807}
	for n, want := range cases {
		if got := CayleyTreeCount(n); got != want {
			t.Errorf("CayleyTreeCount(%d) = %d, want %d", n, got, want)
		}
	}
	if CayleyTreeCount(0) != 0 {
		t.Error("CayleyTreeCount(0) should be 0")
	}
	if CayleyTreeCount(100) != 0 {
		t.Error("overflowing count should return 0")
	}
}

func TestPruferDecodeKnown(t *testing.T) {
	// Sequence [3,3] on n=4: classic example, tree edges {0-3, 1-3, 2-3}.
	pairs, err := PruferDecode([]int{3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]bool{{0, 3}: true, {1, 3}: true, {2, 3}: true}
	if len(pairs) != 3 {
		t.Fatalf("got %d edges", len(pairs))
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected edge %v in %v", p, pairs)
		}
	}
}

func TestPruferDecodeN2(t *testing.T) {
	pairs, err := PruferDecode(nil, 2)
	if err != nil || len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("n=2 decode wrong: %v %v", pairs, err)
	}
}

func TestPruferDecodeErrors(t *testing.T) {
	if _, err := PruferDecode(nil, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := PruferDecode([]int{0}, 4); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := PruferDecode([]int{9, 0}, 4); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestPruferRoundTrip(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%6) + 3 // 3..8
		r := rng.New(seed)
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = r.Intn(n)
		}
		pairs, err := PruferDecode(seq, n)
		if err != nil {
			return false
		}
		// Decoded edges must form a spanning tree.
		uf := graph.NewUnionFind(n)
		for _, p := range pairs {
			if !uf.Union(p[0], p[1]) {
				return false
			}
		}
		if uf.Count() != 1 {
			return false
		}
		back, err := PruferEncode(pairs, n)
		if err != nil {
			return false
		}
		if len(back) != len(seq) {
			return false
		}
		for i := range back {
			if back[i] != seq[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPruferEncodeRejectsNonTree(t *testing.T) {
	if _, err := PruferEncode([][2]int{{0, 1}, {0, 1}, {2, 3}}, 4); err == nil {
		t.Error("multigraph accepted")
	}
	if _, err := PruferEncode([][2]int{{0, 1}}, 4); err == nil {
		t.Error("wrong edge count accepted")
	}
}

func TestEnumerateTreesCountsAndDistinct(t *testing.T) {
	for n := 2; n <= 5; n++ {
		seen := map[string]bool{}
		count := 0
		err := EnumerateTrees(n, 6, func(pairs [][2]int) error {
			count++
			key := ""
			sorted := append([][2]int(nil), pairs...)
			// Pairs from PruferDecode are already oriented; build a key.
			for _, p := range sorted {
				key += string(rune('a'+p[0])) + string(rune('a'+p[1]))
			}
			seen[key] = true
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := CayleyTreeCount(n)
		if int64(count) != want {
			t.Fatalf("n=%d enumerated %d trees, want %d", n, count, want)
		}
		// Note: different Prüfer sequences give different trees, but the
		// naive key above is order-sensitive; just check count of the set
		// is plausible.
		if int64(len(seen)) < want/2 {
			t.Fatalf("n=%d produced too many duplicate keys: %d distinct", n, len(seen))
		}
	}
}

func TestEnumerateTreesGuard(t *testing.T) {
	if err := EnumerateTrees(9, 8, func([][2]int) error { return nil }); err == nil {
		t.Error("oversized enumeration accepted")
	}
	if err := EnumerateTrees(1, 8, func([][2]int) error { return nil }); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestAllTreesValidAndDistinct(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(20), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{2, 5, 11, 17}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := AllTrees(o, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 16 {
		t.Fatalf("got %d trees, want 16", len(trees))
	}
	keys := map[string]bool{}
	for _, tr := range trees {
		if err := tr.Validate(g, s); err != nil {
			t.Fatalf("invalid enumerated tree: %v", err)
		}
		keys[tr.Key()] = true
	}
	if len(keys) != 16 {
		t.Fatalf("enumerated trees not distinct: %d keys", len(keys))
	}
}

func TestMinTreeIsActuallyMinimumByEnumeration(t *testing.T) {
	// The oracle's Prim result must match brute force over all trees, under
	// several random length functions.
	net, err := topology.Waxman(topology.DefaultWaxman(25), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{1, 6, 12, 18, 23}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := AllTrees(o, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	for trial := 0; trial < 10; trial++ {
		d := graph.NewLengths(g, 0)
		for i := range d {
			d[i] = 0.01 + r.Float64()
		}
		best := -1.0
		for _, tr := range trees {
			if l := tr.LengthUnder(d); best < 0 || l < best {
				best = l
			}
		}
		got, err := o.MinTree(d)
		if err != nil {
			t.Fatal(err)
		}
		if gl := got.LengthUnder(d); gl > best+1e-9 {
			t.Fatalf("trial %d: Prim tree length %v > brute-force best %v", trial, gl, best)
		}
	}
}

func BenchmarkMinTreeFixed(b *testing.B) {
	net, err := topology.Waxman(topology.DefaultWaxman(100), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph
	members := []graph.NodeID{3, 17, 29, 41, 53, 67, 88}
	s, _ := NewSession(0, members, 1)
	rt := routing.NewIPRoutes(g, members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewLengths(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.MinTree(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinTreeArbitrary(b *testing.B) {
	net, err := topology.Waxman(topology.DefaultWaxman(100), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph
	members := []graph.NodeID{3, 17, 29, 41, 53, 67, 88}
	s, _ := NewSession(0, members, 1)
	o, err := NewArbitraryOracle(g, s)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewLengths(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.MinTree(d); err != nil {
			b.Fatal(err)
		}
	}
}
