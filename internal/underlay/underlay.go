// Package underlay generates and applies seeded underlay fault workloads:
// link failure/recovery traces, capacity drift walks, and correlated AS-level
// outages. Every scenario elsewhere in the library mutates sessions; this
// package mutates the *network* — the paper's setting is an overlay competing
// for underlay capacity, and real underlays fail, recover, and drift.
//
// The bridge to the solvers is the length ledger: Garg–Könemann lengths are
// dual prices d_e ∝ 1/c_e, so a capacity change by factor f mirrors onto a
// live graph.LengthStore as Bump(e, 1/f). A link failure (capacity collapses)
// is a monotone length growth — exactly the mutation shape the plane's
// dirty-source repair already tolerates — while a recovery or an upward drift
// *shrinks* a length, which is precisely what LengthStore.MonotoneSince was
// built to detect: repair-capable consumers must degrade to full refills, the
// warm engine must fall back cold, and shard replicas must resync. State
// computes those factors; the consumers' hardening lives with the consumers.
//
// A Damper implements BGP-style route-flap damping over an event stream:
// every recovery charges a per-link penalty that decays exponentially in
// trace time; a link whose penalty crosses the suppress threshold has its
// recoveries held (the link stays down, generating no churn at all) until the
// penalty decays below the reuse threshold. Under a fail/recover oscillation
// this bounds repair work to O(1) mutations per suppression cycle instead of
// O(flaps).
package underlay

import (
	"fmt"
	"math"
	"sort"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// EventKind discriminates underlay fault events.
type EventKind int

const (
	// LinkDown fails a link: its capacity collapses to base·DownFactor.
	LinkDown EventKind = iota
	// LinkUp recovers a failed link to its (drift-adjusted) capacity.
	LinkUp
	// Drift multiplies a link's capacity by Event.Factor (a seeded
	// multiplicative walk models slow congestion/provisioning drift).
	Drift
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Drift:
		return "drift"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one underlay fault event.
type Event struct {
	// Time orders the event within a trace (same clock as churn workloads).
	Time float64
	// Kind is the event type.
	Kind EventKind
	// Edge is the physical link the event hits.
	Edge graph.EdgeID
	// Factor is the multiplicative capacity factor of a Drift event (> 0);
	// ignored for LinkDown/LinkUp.
	Factor float64
}

// Trace is a time-sorted underlay fault workload.
type Trace struct {
	Events []Event
}

// Validate checks the trace against g: events sorted by time, edges in
// range, drift factors positive.
func (t *Trace) Validate(g *graph.Graph) error {
	prev := math.Inf(-1)
	for i, ev := range t.Events {
		if ev.Time < prev {
			return fmt.Errorf("underlay: event %d out of order at t=%v", i, ev.Time)
		}
		prev = ev.Time
		if ev.Edge < 0 || ev.Edge >= g.NumEdges() {
			return fmt.Errorf("underlay: event %d references edge %d outside graph", i, ev.Edge)
		}
		if ev.Kind == Drift && !(ev.Factor > 0) {
			return fmt.Errorf("underlay: drift event %d has non-positive factor %v", i, ev.Factor)
		}
	}
	return nil
}

// sortEvents orders events canonically: by time, then edge, then kind, so a
// trace assembled from per-edge streams is deterministic regardless of
// assembly order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(a, b int) bool {
		ea, eb := evs[a], evs[b]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		if ea.Edge != eb.Edge {
			return ea.Edge < eb.Edge
		}
		return ea.Kind < eb.Kind
	})
}

// Merge combines traces into one canonically sorted trace.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		if t != nil {
			out.Events = append(out.Events, t.Events...)
		}
	}
	sortEvents(out.Events)
	return out
}

// FailureConfig parametrizes an independent per-link fail/repair process.
type FailureConfig struct {
	// Edges restricts the process to these links (nil = every edge of g).
	Edges []graph.EdgeID
	// FailRate is the Poisson failure intensity of an up link (failures per
	// time unit); MeanRepair the exponential mean downtime.
	FailRate   float64
	MeanRepair float64
	// Horizon is the trace length; a link still down at the horizon stays
	// down (no clipped recovery is emitted).
	Horizon float64
}

// GenerateFailures materializes an alternating fail/recover trace per link,
// deterministically from r. Each link draws from its own Split(edge) child
// stream, so the trace is independent of edge iteration order.
func GenerateFailures(g *graph.Graph, cfg FailureConfig, r *rng.RNG) (*Trace, error) {
	if cfg.FailRate <= 0 || cfg.MeanRepair <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("underlay: failure rate, repair time, and horizon must be positive")
	}
	edges := cfg.Edges
	if edges == nil {
		edges = make([]graph.EdgeID, g.NumEdges())
		for e := range edges {
			edges[e] = e
		}
	}
	tr := &Trace{}
	for _, e := range edges {
		if e < 0 || e >= g.NumEdges() {
			return nil, fmt.Errorf("underlay: failure edge %d outside graph", e)
		}
		cr := r.Split(uint64(e))
		t := 0.0
		for {
			t += cr.ExpFloat64() / cfg.FailRate
			if t >= cfg.Horizon {
				break
			}
			tr.Events = append(tr.Events, Event{Time: t, Kind: LinkDown, Edge: e})
			t += cr.ExpFloat64() * cfg.MeanRepair
			if t >= cfg.Horizon {
				break
			}
			tr.Events = append(tr.Events, Event{Time: t, Kind: LinkUp, Edge: e})
		}
	}
	sortEvents(tr.Events)
	return tr, nil
}

// DriftConfig parametrizes a multiplicative capacity drift walk.
type DriftConfig struct {
	// Edges restricts the walk to these links (nil = every edge of g).
	Edges []graph.EdgeID
	// Steps is the number of sweeps; each sweep emits one Drift event per
	// edge. Interval is the time between sweeps (the first sweep lands at
	// Interval).
	Steps    int
	Interval float64
	// Sigma is the per-step lognormal volatility: each step multiplies the
	// capacity by exp(Sigma·N(0,1)).
	Sigma float64
	// Min/Max clamp the cumulative drift factor relative to the base
	// capacity (defaults 0.25 and 4).
	Min, Max float64
}

// GenerateDrift materializes a seeded multiplicative capacity walk: Steps
// sweeps over the edge set, each edge stepping by an independent lognormal
// factor clamped so the cumulative drift stays within [Min, Max] of base.
func GenerateDrift(g *graph.Graph, cfg DriftConfig, r *rng.RNG) (*Trace, error) {
	if cfg.Steps <= 0 || cfg.Interval <= 0 || cfg.Sigma <= 0 {
		return nil, fmt.Errorf("underlay: drift steps, interval, and sigma must be positive")
	}
	if cfg.Min <= 0 {
		cfg.Min = 0.25
	}
	if cfg.Max <= cfg.Min {
		cfg.Max = 4
	}
	edges := cfg.Edges
	if edges == nil {
		edges = make([]graph.EdgeID, g.NumEdges())
		for e := range edges {
			edges[e] = e
		}
	}
	cum := make(map[graph.EdgeID]float64, len(edges))
	tr := &Trace{}
	for s := 0; s < cfg.Steps; s++ {
		t := float64(s+1) * cfg.Interval
		for _, e := range edges {
			if e < 0 || e >= g.NumEdges() {
				return nil, fmt.Errorf("underlay: drift edge %d outside graph", e)
			}
			c := cum[e]
			if c == 0 {
				c = 1
			}
			// Per-(edge, step) child stream keeps the walk independent of
			// sweep iteration order.
			f := math.Exp(cfg.Sigma * r.Split(uint64(e)).Split(uint64(s)).NormFloat64())
			if c*f > cfg.Max {
				f = cfg.Max / c
			} else if c*f < cfg.Min {
				f = cfg.Min / c
			}
			cum[e] = c * f
			tr.Events = append(tr.Events, Event{Time: t, Kind: Drift, Edge: e, Factor: f})
		}
	}
	sortEvents(tr.Events)
	return tr, nil
}

// OutageConfig parametrizes correlated AS-level outages on a two-level
// topology: a whole AS (every link with an endpoint inside it, inter-AS
// border links included) fails and recovers together.
type OutageConfig struct {
	// Rate is the Poisson intensity of AS outages (outages per time unit,
	// across the whole network); MeanRepair the exponential mean outage
	// duration; Horizon the trace length.
	Rate       float64
	MeanRepair float64
	Horizon    float64
}

// GenerateASOutages materializes a correlated outage trace on net, which must
// carry an AS partition (topology.TwoLevel's Network.ASOf). Overlapping
// outages of one AS are legal: State counts down events per link, so a link
// recovers only when every outage covering it has recovered.
func GenerateASOutages(net *topology.Network, cfg OutageConfig, r *rng.RNG) (*Trace, error) {
	if cfg.Rate <= 0 || cfg.MeanRepair <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("underlay: outage rate, repair time, and horizon must be positive")
	}
	if len(net.ASOf) != net.Graph.NumNodes() {
		return nil, fmt.Errorf("underlay: AS outages need an AS-labeled network (topology.TwoLevel)")
	}
	ases := 0
	for _, a := range net.ASOf {
		if a+1 > ases {
			ases = a + 1
		}
	}
	// asEdges[a] lists the links with at least one endpoint in AS a.
	asEdges := make([][]graph.EdgeID, ases)
	for e, edge := range net.Graph.Edges {
		au, av := net.ASOf[edge.U], net.ASOf[edge.V]
		asEdges[au] = append(asEdges[au], e)
		if av != au {
			asEdges[av] = append(asEdges[av], e)
		}
	}
	tr := &Trace{}
	t := 0.0
	for {
		t += r.ExpFloat64() / cfg.Rate
		if t >= cfg.Horizon {
			break
		}
		a := r.Intn(ases)
		d := r.ExpFloat64() * cfg.MeanRepair
		for _, e := range asEdges[a] {
			tr.Events = append(tr.Events, Event{Time: t, Kind: LinkDown, Edge: e})
			if t+d < cfg.Horizon {
				tr.Events = append(tr.Events, Event{Time: t + d, Kind: LinkUp, Edge: e})
			}
		}
	}
	sortEvents(tr.Events)
	return tr, nil
}

// DefaultDownFactor is the capacity multiplier of a failed link. A failed
// link keeps a vanishing capacity instead of zero so the Garg–Könemann
// initial lengths delta/c_e stay finite; the solvers then price it out of
// every tree on their own.
const DefaultDownFactor = 1e-6

// State applies a fault trace to a graph: it remembers base capacities,
// tracks per-link down counts and cumulative drift, and rewrites
// graph.Edge.Capacity in place. Capacity is the ground truth; the returned
// length factor (old/new capacity) is what a caller mirrors into a live
// LengthStore via Bump so repair-capable consumers observe the mutation.
type State struct {
	g     *graph.Graph
	base  []float64
	down  []int
	drift []float64
	// DownFactor is the capacity multiplier while a link is down
	// (DefaultDownFactor unless overridden before the first Apply).
	DownFactor float64

	// Applied counts capacity-changing events; Downs/Ups/Drifts split the
	// applied events by kind. A no-op event (LinkUp on an up link, a second
	// overlapping LinkDown) counts in none of them.
	Applied            int
	Downs, Ups, Drifts int
}

// NewState captures g's current capacities as the base state.
func NewState(g *graph.Graph) *State {
	s := &State{
		g:          g,
		base:       make([]float64, g.NumEdges()),
		down:       make([]int, g.NumEdges()),
		drift:      make([]float64, g.NumEdges()),
		DownFactor: DefaultDownFactor,
	}
	for e := range s.base {
		s.base[e] = g.Edges[e].Capacity
		s.drift[e] = 1
	}
	return s
}

// capacity returns the link's current target capacity under the state.
func (s *State) capacity(e graph.EdgeID) float64 {
	c := s.base[e] * s.drift[e]
	if s.down[e] > 0 {
		c *= s.DownFactor
	}
	return c
}

// Down reports whether the link is currently failed.
func (s *State) Down(e graph.EdgeID) bool { return s.down[e] > 0 }

// Apply executes one event: it updates the down/drift state, rewrites the
// link's capacity, and returns the length factor old/new (the Bump factor
// mirroring the change onto a ledger: d_e ∝ 1/c_e). changed=false means the
// event was a no-op (capacity unchanged — e.g. a LinkUp on an up link) and
// the factor is 1.
func (s *State) Apply(ev Event) (lengthFactor float64, changed bool) {
	e := ev.Edge
	old := s.g.Edges[e].Capacity
	switch ev.Kind {
	case LinkDown:
		s.down[e]++
	case LinkUp:
		if s.down[e] > 0 {
			s.down[e]--
		}
	case Drift:
		if ev.Factor > 0 {
			s.drift[e] *= ev.Factor
		}
	}
	c := s.capacity(e)
	if c == old {
		return 1, false
	}
	s.g.Edges[e].Capacity = c
	s.Applied++
	switch ev.Kind {
	case LinkDown:
		s.Downs++
	case LinkUp:
		s.Ups++
	case Drift:
		s.Drifts++
	}
	return old / c, true
}

// Restore resets every link to its base capacity and clears down/drift
// state.
func (s *State) Restore() {
	for e := range s.base {
		s.g.Edges[e].Capacity = s.base[e]
		s.down[e] = 0
		s.drift[e] = 1
	}
}
