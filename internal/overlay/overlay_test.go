package overlay

import (
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(0, []graph.NodeID{1}, 1); err == nil {
		t.Error("single-member session accepted")
	}
	if _, err := NewSession(0, []graph.NodeID{1, 2}, 0); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := NewSession(0, []graph.NodeID{1, 2, 1}, 1); err == nil {
		t.Error("duplicate member accepted")
	}
	s, err := NewSession(3, []graph.NodeID{5, 7, 9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source() != 5 || s.Size() != 3 || s.Receivers() != 2 {
		t.Fatalf("session accessors wrong: %+v", s)
	}
}

func TestTreeUseCountsMultiplicity(t *testing.T) {
	// Star physical network: members 1,2,3 all route through center 0.
	net, _ := topology.Star(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	tree := TreeFromPairs(o, [][2]int{{0, 1}, {0, 2}})
	// Overlay edges 1-2 and 1-3 both cross physical edge (0,1).
	e01, _ := g.EdgeBetween(0, 1)
	found := false
	for _, u := range tree.Use() {
		if u.Edge == e01 {
			found = true
			if u.Count != 2 {
				t.Fatalf("n_e for shared edge = %d, want 2", u.Count)
			}
		}
	}
	if !found {
		t.Fatal("shared edge not in Use()")
	}
	// Bottleneck = min c_e/n_e = 10/2 = 5.
	if b := tree.Bottleneck(g); b != 5 {
		t.Fatalf("Bottleneck = %v, want 5", b)
	}
	if h := tree.TotalHops(); h != 4 {
		t.Fatalf("TotalHops = %d, want 4", h)
	}
	if err := tree.Validate(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestTreeLengthUnder(t *testing.T) {
	net, _ := topology.Path(3, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 2}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	tree := TreeFromPairs(o, [][2]int{{0, 1}})
	d := graph.NewLengths(g, 0.5)
	if l := tree.LengthUnder(d); l != 1.0 {
		t.Fatalf("LengthUnder = %v, want 1.0", l)
	}
}

func TestTreeKeyCanonical(t *testing.T) {
	net, _ := topology.Complete(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	a := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	b := TreeFromPairs(o, [][2]int{{3, 2}, {1, 0}, {2, 1}})
	if a.Key() != b.Key() {
		t.Fatal("same tree in different pair order has different keys")
	}
	c := TreeFromPairs(o, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if a.Key() == c.Key() {
		t.Fatal("different trees share a key")
	}
}

// KeyHash must follow the same equivalence classes as the string Key: equal
// across pair orderings of one tree, distinct across trees (up to genuine
// 64-bit collisions, which these fixtures do not produce), and stable under
// session re-stamping rules.
func TestTreeKeyHash(t *testing.T) {
	net, _ := topology.Complete(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	a := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	b := TreeFromPairs(o, [][2]int{{3, 2}, {1, 0}, {2, 1}})
	if a.KeyHash() != b.KeyHash() {
		t.Fatal("same tree in different pair order has different key hashes")
	}
	c := TreeFromPairs(o, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if a.KeyHash() == c.KeyHash() {
		t.Fatal("different trees share a key hash")
	}
	// Same pairs/routes under another session id must hash differently,
	// mirroring the session prefix in Key.
	other := NewTree(1, a.Pairs, a.Routes)
	if a.KeyHash() == other.KeyHash() {
		t.Fatal("different sessions share a key hash")
	}
	// Memoization must return the same digest.
	if a.KeyHash() != a.KeyHash() {
		t.Fatal("KeyHash not stable")
	}
}

// TestTreeKeyHashAllocs is the regression test for the hashed flow
// accumulator key: computing a fresh KeyHash must not allocate, where the
// string Key materializes a fresh key string per uncached call (the old
// per-iteration cost in the solver accumulators).
func TestTreeKeyHashAllocs(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(64), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 7, 19, 33, 48, 61}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	tr, err := o.MinTree(graph.NewLengths(g, 1))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.hasKeyHash = false // force a full recompute each run
		if tr.KeyHash() == 0 {
			t.Fatal("implausible zero hash")
		}
	})
	if allocs != 0 {
		t.Fatalf("KeyHash allocates %v per fresh computation, want 0", allocs)
	}
}

func TestTreeValidateRejections(t *testing.T) {
	net, _ := topology.Complete(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2, 3}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	// Cycle instead of tree.
	cyc := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err := cyc.Validate(g, s); err == nil {
		t.Error("cyclic pair set accepted")
	}
	// Too few edges.
	short := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}})
	if err := short.Validate(g, s); err == nil {
		t.Error("non-spanning pair set accepted")
	}
	// Wrong session.
	other, _ := NewSession(1, []graph.NodeID{0, 1, 2, 3}, 1)
	good := TreeFromPairs(o, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := good.Validate(g, other); err == nil {
		t.Error("wrong session id accepted")
	}
}

func TestFixedOracleMinTreeOnKnownGraph(t *testing.T) {
	// Path 0-1-2-3-4, session {0,2,4}. With uniform lengths the MST on the
	// overlay complete graph must use overlay edges (0,2) and (2,4), not
	// (0,4) which costs 4 hops.
	net, _ := topology.Path(5, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 2, 4}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	if o.MaxRouteHops() != 4 {
		t.Fatalf("MaxRouteHops = %d, want 4", o.MaxRouteHops())
	}
	d := graph.NewLengths(g, 1)
	tree, err := o.MinTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {1, 2}} // member indices: (0,2)=(idx0,idx1), (2,4)=(idx1,idx2)
	if len(tree.Pairs) != 2 || tree.Pairs[0] != want[0] || tree.Pairs[1] != want[1] {
		t.Fatalf("MinTree pairs = %v, want %v", tree.Pairs, want)
	}
	if tree.LengthUnder(d) != 4 {
		t.Fatalf("tree length %v, want 4", tree.LengthUnder(d))
	}
}

func TestFixedOracleReactsToLengths(t *testing.T) {
	// Triangle of members on a complete graph; inflating the lengths of the
	// currently used edges must steer the MST elsewhere.
	net, _ := topology.Complete(3, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 1, 2}, 1)
	rt := routing.NewIPRoutes(g, s.Members)
	o, _ := NewFixedOracle(g, rt, s)
	d := graph.NewLengths(g, 1)
	t1, _ := o.MinTree(d)
	for _, u := range t1.Use() {
		d[u.Edge] = 100
	}
	t2, _ := o.MinTree(d)
	if t1.Key() == t2.Key() {
		t.Fatal("MinTree ignored the length update")
	}
}

func TestArbitraryOracleAvoidsCongestedRoute(t *testing.T) {
	// Square 0-1-2-3-0. Session {0,2}. IP route 0->2 (say via 1). If we make
	// the 0-1 edge very long, the arbitrary oracle must route via 3 while
	// the fixed oracle cannot.
	net, _ := topology.Ring(4, 10)
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{0, 2}, 1)
	rt := routing.NewIPRoutes(g, allNodes(g))
	fixed, _ := NewFixedOracle(g, rt, s)
	arb, err := NewArbitraryOracle(g, s)
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewLengths(g, 1)
	ft, _ := fixed.MinTree(d)
	// Penalize whichever intermediate the fixed route uses.
	inter := ft.Routes[0].Nodes[1]
	for _, id := range g.Adj(inter) {
		d[id] = 50
	}
	ft2, _ := fixed.MinTree(d)
	at, err := arb.MinTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := at.Validate(g, s); err != nil {
		t.Fatal(err)
	}
	if ft2.Routes[0].Nodes[1] != inter {
		t.Fatal("fixed oracle changed its route — should be impossible")
	}
	if at.Routes[0].Nodes[1] == inter {
		t.Fatal("arbitrary oracle did not avoid the congested intermediate")
	}
}

func TestArbitraryMatchesFixedOnUniformLengths(t *testing.T) {
	// Under uniform lengths the dynamic shortest routes are hop-shortest,
	// so both oracles must return trees of equal total length (tie-breaking
	// may differ, lengths may not).
	net, err := topology.Waxman(topology.DefaultWaxman(40), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	s, _ := NewSession(0, []graph.NodeID{3, 11, 19, 27, 35}, 1)
	rt := routing.NewIPRoutes(g, allNodes(g))
	fixed, err := NewFixedOracle(g, rt, s)
	if err != nil {
		t.Fatal(err)
	}
	arb, _ := NewArbitraryOracle(g, s)
	d := graph.NewLengths(g, 1)
	ft, _ := fixed.MinTree(d)
	at, _ := arb.MinTree(d)
	if ft.LengthUnder(d) != at.LengthUnder(d) {
		t.Fatalf("uniform-length MOST lengths differ: fixed %v vs arbitrary %v",
			ft.LengthUnder(d), at.LengthUnder(d))
	}
}

func TestPrimCompleteIsMinimal(t *testing.T) {
	// 4 vertices, weights chosen so the unique MST is {0-1, 1-2, 1-3} with
	// weight 6.
	w := [][]float64{
		{0, 1, 4, 5},
		{1, 0, 2, 3},
		{4, 2, 0, 9},
		{5, 3, 9, 0},
	}
	pairs := primComplete(4, func(i, j int) float64 { return w[i][j] })
	total := 0.0
	for _, p := range pairs {
		total += w[p[0]][p[1]]
	}
	if total != 6 {
		t.Fatalf("Prim weight %v, want 6 (pairs %v)", total, pairs)
	}
}
