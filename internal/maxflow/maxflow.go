// Package maxflow implements Dinic's maximum-flow algorithm on directed
// networks with float64 capacities. It is the substrate behind the graph
// strength / tree-packing separation oracle (Cunningham's and Barahona's
// reductions solve the Tutte/Nash-Williams minimization as a sequence of
// maximum-flow problems) and behind sanity bounds in tests.
package maxflow

import "fmt"

// arc is one directed residual arc; arcs are stored in pairs so that a^1 is
// the reverse arc of a.
type arc struct {
	to  int
	cap float64
}

// Network is a directed flow network under construction/solution. Nodes are
// 0..n-1.
type Network struct {
	n    int
	arcs []arc
	head [][]int // head[v] lists arc indices leaving v
	// iteration state
	level []int
	iter  []int
}

// NewNetwork creates an empty flow network on n nodes.
func NewNetwork(n int) *Network {
	if n < 1 {
		panic("maxflow: network needs at least one node")
	}
	return &Network{
		n:     n,
		head:  make([][]int, n),
		level: make([]int, n),
		iter:  make([]int, n),
	}
}

// NumNodes returns the node count.
func (f *Network) NumNodes() int { return f.n }

// AddArc adds a directed arc u->v with the given capacity and returns its
// id, usable with Flow after solving. A zero-capacity reverse arc is added
// automatically.
func (f *Network) AddArc(u, v int, capacity float64) int {
	if u < 0 || u >= f.n || v < 0 || v >= f.n {
		panic(fmt.Sprintf("maxflow: arc (%d,%d) out of range n=%d", u, v, f.n))
	}
	if capacity < 0 {
		panic("maxflow: negative capacity")
	}
	id := len(f.arcs)
	f.arcs = append(f.arcs, arc{to: v, cap: capacity})
	f.arcs = append(f.arcs, arc{to: u, cap: 0})
	f.head[u] = append(f.head[u], id)
	f.head[v] = append(f.head[v], id^1)
	return id
}

// AddEdge adds an undirected edge as two opposing arcs of equal capacity and
// returns the id of the u->v arc.
func (f *Network) AddEdge(u, v int, capacity float64) int {
	id := len(f.arcs)
	f.arcs = append(f.arcs, arc{to: v, cap: capacity})
	f.arcs = append(f.arcs, arc{to: u, cap: capacity})
	f.head[u] = append(f.head[u], id)
	f.head[v] = append(f.head[v], id^1)
	return id
}

// Flow returns the flow currently pushed through the arc returned by AddArc,
// i.e. the capacity consumed from it.
func (f *Network) Flow(arcID int, original float64) float64 {
	return original - f.arcs[arcID].cap
}

// Residual returns the remaining capacity of the given arc id.
func (f *Network) Residual(arcID int) float64 { return f.arcs[arcID].cap }

const eps = 1e-12

func (f *Network) bfs(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	queue := make([]int, 0, f.n)
	queue = append(queue, s)
	f.level[s] = 0
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, id := range f.head[v] {
			a := f.arcs[id]
			if a.cap > eps && f.level[a.to] < 0 {
				f.level[a.to] = f.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return f.level[t] >= 0
}

func (f *Network) dfs(v, t int, pushed float64) float64 {
	if v == t {
		return pushed
	}
	for ; f.iter[v] < len(f.head[v]); f.iter[v]++ {
		id := f.head[v][f.iter[v]]
		a := &f.arcs[id]
		if a.cap > eps && f.level[a.to] == f.level[v]+1 {
			amount := pushed
			if a.cap < amount {
				amount = a.cap
			}
			if got := f.dfs(a.to, t, amount); got > eps {
				a.cap -= got
				f.arcs[id^1].cap += got
				return got
			}
		}
	}
	return 0
}

// MaxFlow computes the maximum s-t flow, mutating the residual network.
// Calling it again continues from the current residual state (useful for
// incremental capacity probing). It panics if s == t.
func (f *Network) MaxFlow(s, t int) float64 {
	if s == t {
		panic("maxflow: source equals sink")
	}
	total := 0.0
	for f.bfs(s, t) {
		for i := range f.iter {
			f.iter[i] = 0
		}
		for {
			pushed := f.dfs(s, t, 1e308)
			if pushed <= eps {
				break
			}
			total += pushed
		}
	}
	return total
}

// MinCutSide returns the set of nodes reachable from s in the residual
// network after MaxFlow has been run; (side, complement) is a minimum cut.
func (f *Network) MinCutSide(s int) []bool {
	side := make([]bool, f.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range f.head[v] {
			a := f.arcs[id]
			if a.cap > eps && !side[a.to] {
				side[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return side
}
