package core

import (
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/shard"
)

// oracleRunner is the batched oracle-evaluation surface the phase loops
// consume, satisfied by both overlay.BatchRunner (single-machine worker
// pool) and shard.Group (per-AS shards behind a price-message boundary).
// Both honor the same contract: results in batch-slot order under the
// snapshot's lengths, a reused result slice, immutable trees, and bitwise
// identical output regardless of workers, shards, plane, or repair.
type oracleRunner interface {
	MinTrees(ls *graph.LengthStore, ids []int) []overlay.BatchResult
	MinTreesLen(ls *graph.LengthStore, ids []int) []overlay.BatchResult
	AddOracle(o overlay.TreeOracle) int
	Metrics() overlay.Metrics
	Close()
}

// newOracleRunner picks a solve's runner: a shard.Group when shards > 0, the
// plain BatchRunner otherwise. Seeded runs (the MCF beta prestep's
// subsolves) always stay unsharded: a prestep seed plane is keyed to one
// ledger, which has no meaning across shard replicas — and the prestep's
// subproblems are single-session, so there is nothing to partition anyway.
func newOracleRunner(g *graph.Graph, oracles []overlay.TreeOracle, opts overlay.BatchOptions, shards int, labels []int) oracleRunner {
	if shards > 0 && opts.Seed == nil {
		return shard.NewGroup(g, oracles, shard.Options{
			Shards:               shards,
			Labels:               labels,
			Workers:              opts.Workers,
			SharedPlane:          opts.SharedPlane,
			DisableRepair:        opts.DisableRepair,
			DisableSubtreeRepair: opts.DisableSubtreeRepair,
			Dynamic:              opts.Dynamic,
		})
	}
	return overlay.NewBatchRunnerOpts(g, oracles, opts)
}
