// Package graph implements the capacitated undirected physical network used
// throughout the library: nodes are routers/end hosts, edges carry a capacity
// c_e and a mutable length d_e (the dual variable of the Garg–Könemann
// framework). The representation is adjacency lists over a flat edge array so
// that edge state (capacity, length, flow) can be addressed by a stable
// integer EdgeID from every algorithm.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex of the physical network.
type NodeID = int

// EdgeID indexes into Graph.Edges. An undirected edge has a single EdgeID no
// matter which endpoint it is traversed from.
type EdgeID = int

// Edge is one undirected physical link.
type Edge struct {
	U, V     NodeID  // endpoints, U < V by construction
	Capacity float64 // c_e > 0
}

// Other returns the endpoint of e opposite to n. It panics if n is not an
// endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge (%d,%d)", n, e.U, e.V))
}

// Graph is a simple undirected graph with per-edge capacities. It is built
// once via NewBuilder/AddEdge/Build and is immutable afterwards; algorithms
// keep their own per-edge state (lengths, flows) in parallel slices indexed
// by EdgeID.
type Graph struct {
	n     int
	Edges []Edge
	// adj[v] lists the edges incident to v.
	adj [][]EdgeID
	// index maps an endpoint pair (min,max) to its EdgeID.
	index map[[2]NodeID]EdgeID
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Adj returns the edges incident to v. The returned slice must not be
// modified.
func (g *Graph) Adj(v NodeID) []EdgeID { return g.adj[v] }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// EdgeBetween returns the edge joining u and v, if one exists.
func (g *Graph) EdgeBetween(u, v NodeID) (EdgeID, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := g.index[[2]NodeID{u, v}]
	return id, ok
}

// MinCapacity returns the smallest edge capacity, or 0 for an edgeless graph.
func (g *Graph) MinCapacity() float64 {
	if len(g.Edges) == 0 {
		return 0
	}
	min := g.Edges[0].Capacity
	for _, e := range g.Edges[1:] {
		if e.Capacity < min {
			min = e.Capacity
		}
	}
	return min
}

// TotalCapacity returns Σ_e c_e.
func (g *Graph) TotalCapacity() float64 {
	total := 0.0
	for _, e := range g.Edges {
		total += e.Capacity
	}
	return total
}

// Connected reports whether the graph is connected (the empty graph and the
// single-node graph are connected).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.adj[v] {
			w := g.Edges[id].Other(v)
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == g.n
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are rejected at AddEdge time so that every downstream
// algorithm can assume a simple graph.
type Builder struct {
	n     int
	edges []Edge
	seen  map[[2]NodeID]bool
}

// NewBuilder creates a builder for a graph on n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, seen: make(map[[2]NodeID]bool)}
}

// AddEdge adds the undirected edge {u,v} with the given capacity. It returns
// an error for out-of-range endpoints, self-loops, duplicate edges, and
// non-positive capacities.
func (b *Builder) AddEdge(u, v NodeID, capacity float64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: endpoint out of range: (%d,%d) with n=%d", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if capacity <= 0 {
		return fmt.Errorf("graph: non-positive capacity %v on edge (%d,%d)", capacity, u, v)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]NodeID{u, v}
	if b.seen[key] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[key] = true
	b.edges = append(b.edges, Edge{U: u, V: v, Capacity: capacity})
	return nil
}

// HasEdge reports whether {u,v} has already been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	return b.seen[[2]NodeID{u, v}]
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph. Edges are sorted by endpoints so that EdgeIDs
// are a deterministic function of the edge set, independent of insertion
// order.
func (b *Builder) Build() *Graph {
	edges := append([]Edge(nil), b.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	g := &Graph{
		n:     b.n,
		Edges: edges,
		adj:   make([][]EdgeID, b.n),
		index: make(map[[2]NodeID]EdgeID, len(edges)),
	}
	for id, e := range edges {
		g.adj[e.U] = append(g.adj[e.U], id)
		g.adj[e.V] = append(g.adj[e.V], id)
		g.index[[2]NodeID{e.U, e.V}] = id
	}
	return g
}

// Lengths is a per-edge length assignment d_e, the dual variable of the
// Garg–Könemann scheme. It is kept separate from Graph so that concurrent
// solvers can own independent length functions over one shared graph.
type Lengths []float64

// NewLengths returns a length function over g initialized to init on every
// edge.
func NewLengths(g *Graph, init float64) Lengths {
	l := make(Lengths, g.NumEdges())
	for i := range l {
		l[i] = init
	}
	return l
}

// Clone returns an independent copy.
func (l Lengths) Clone() Lengths {
	return append(Lengths(nil), l...)
}

// PathLength returns Σ d_e over the given edge ids.
func (l Lengths) PathLength(edges []EdgeID) float64 {
	total := 0.0
	for _, id := range edges {
		total += l[id]
	}
	return total
}
