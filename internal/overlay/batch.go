package overlay

import (
	"runtime"
	"sync"

	"overcast/internal/graph"
)

// BatchResult is one oracle's minimum overlay spanning tree with its raw
// (unnormalized) length under the batch's length function. Len is filled by
// MinTreesLen only (MinTrees leaves it zero): the extra O(tree edges) pass
// is measurable in length-oblivious phase loops like MaxConcurrentFlow's.
//
// Aliasing contract: the []BatchResult slice a runner returns is reused — the
// next MinTrees/MinTreesLen call on the same runner overwrites every slot in
// place. Consume (or copy) the results before rebatching; holding the slice
// across calls observes the *next* batch's trees. The Tree pointers
// themselves are freshly allocated per evaluation, never recycled, so trees
// extracted from a batch stay valid indefinitely
// (TestBatchResultSliceReusedAcrossCalls pins both halves of this contract).
type BatchResult struct {
	Tree *Tree
	Len  float64
	Err  error
}

// BatchOptions configures a BatchRunner beyond the oracle set.
type BatchOptions struct {
	// Workers is the worker-pool size: <= 0 means GOMAXPROCS. The pool is
	// clamped to the oracle count unless the shared plane is active (plane
	// rows can outnumber oracles, so extra workers still help stage 1).
	Workers int
	// SharedPlane enables the round-level shared SSSP plane: each batch
	// first fills one Dijkstra row per *distinct* member source across the
	// worker pool, then assembles every plane-aware oracle's tree from those
	// rows. Outputs are bitwise identical with the plane on or off (identical
	// Dijkstras over the identical snapshot, whichever stage runs them); the
	// toggle exists for the determinism gate and perf comparisons. It is a
	// no-op for oracle sets without a PlaneOracle (e.g. all fixed-routing).
	SharedPlane bool
}

// BatchRunner evaluates many oracles' MinTree under a shared length function
// with a persistent worker pool and one Scratch per worker. The paper's phase
// loops query the same oracle set thousands of times; a runner amortizes both
// the goroutines and the scratch buffers across all of those batches instead
// of rebuilding them per call.
//
// The reduction is deterministic by construction: result slot j of a batch
// always holds oracle ids[j]'s tree, computed under the batch's immutable
// length snapshot, so neither the worker count nor goroutine scheduling can
// change what a caller observes. Oracles must be safe for concurrent reads
// (both built-in oracles are: MinTreeWith touches only the per-call Scratch).
//
// With the shared plane enabled (BatchOptions.SharedPlane; the default of
// NewBatchRunner) each batch runs as two stages. Stage 1 collects the
// distinct member sources of the batch's plane-aware oracles — in batch
// order, so row assignment is canonical — and fans the rows across the
// worker pool, each worker filling its assigned rows with pooled Dijkstra
// buffers. Stage 2 evaluates the batch slots as before, except plane-aware
// oracles assemble their overlay weights and routes from the plane rows
// instead of re-running per-member Dijkstras. The WaitGroup barrier between
// the stages orders all row writes before any stage-2 read.
type BatchRunner struct {
	g       *graph.Graph
	oracles []TreeOracle
	workers int

	// Inline scratch: the whole batch when workers == 1, single-slot batches
	// otherwise (lazily created; avoids channel round-trips for one job).
	seq *Scratch

	// Shared SSSP plane (nil when disabled or no oracle can use it).
	// planeLive marks that the current batch staged and filled rows, so
	// eval may read them; filling flips the meaning of a job from "evaluate
	// batch slot" to "fill plane row". Both fields are written by the batch
	// goroutine only, between the pool's channel/WaitGroup barriers.
	plane     *Plane
	planeLive bool
	filling   bool
	metrics   Metrics

	// Parallel mode: persistent workers fed per-batch via jobs. d, ids and
	// out describe the current batch; they are published before the job sends
	// and read by workers via the channel's happens-before edge, and the
	// WaitGroup barrier orders all slot writes before the caller's reads.
	jobs    chan int
	wg      sync.WaitGroup
	d       graph.Lengths
	ids     []int
	wantLen bool
	out     []BatchResult
}

// NewBatchRunner builds a runner over oracles with the requested worker-pool
// size and the shared SSSP plane enabled (a no-op for oracle sets that
// cannot use it); see NewBatchRunnerOpts for the full contract.
func NewBatchRunner(g *graph.Graph, oracles []TreeOracle, workers int) *BatchRunner {
	return NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: true})
}

// NewBatchRunnerOpts builds a runner over oracles. Workers <= 0 means
// GOMAXPROCS, and the pool is never larger than the oracle set unless the
// plane is active. With one worker the runner degrades to a single-scratch
// sequential path with zero goroutines; results are identical either way —
// and identical with the plane on or off.
func NewBatchRunnerOpts(g *graph.Graph, oracles []TreeOracle, opts BatchOptions) *BatchRunner {
	var plane *Plane
	if opts.SharedPlane {
		for _, o := range oracles {
			if _, ok := o.(PlaneOracle); ok {
				plane = NewPlane(g)
				break
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if plane == nil && workers > len(oracles) {
		workers = len(oracles)
	}
	if workers < 1 {
		workers = 1
	}
	r := &BatchRunner{g: g, oracles: oracles, workers: workers, plane: plane, out: make([]BatchResult, len(oracles))}
	if workers == 1 {
		r.seq = NewScratch(g)
		return r
	}
	r.jobs = make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			sc := NewScratch(g)
			for pos := range r.jobs {
				if r.filling {
					r.plane.FillRow(pos, r.d, sc.dijkstra())
				} else {
					r.eval(pos, sc)
				}
				r.wg.Done()
			}
		}()
	}
	return r
}

// Workers returns the resolved worker-pool size.
func (r *BatchRunner) Workers() int { return r.workers }

// Metrics returns a snapshot of the runner's shared-plane counters. Call it
// between batches (the counters are updated while a batch is staged).
func (r *BatchRunner) Metrics() Metrics { return r.metrics }

// eval computes the tree of the oracle in batch slot pos.
func (r *BatchRunner) eval(pos int, sc *Scratch) {
	i := pos
	if r.ids != nil {
		i = r.ids[pos]
	}
	var t *Tree
	var err error
	if r.planeLive {
		if po, ok := r.oracles[i].(PlaneOracle); ok {
			t, err = po.MinTreeFromPlane(r.d, r.plane, sc)
		}
	}
	if t == nil && err == nil {
		t, err = MinTreeWith(r.oracles[i], r.d, sc)
	}
	if err != nil {
		r.out[pos] = BatchResult{Err: err}
		return
	}
	res := BatchResult{Tree: t}
	if r.wantLen {
		res.Len = t.LengthUnder(r.d)
	}
	r.out[pos] = res
}

// stagePlane runs stage 1 of a batch: collect the distinct member sources of
// the batch's plane-aware oracles (in batch order — canonical row
// assignment) and fill one SSSP row per source under the batch's snapshot,
// fanned across the worker pool in parallel mode. No-op when the plane is
// disabled or the batch has no plane-aware oracle.
func (r *BatchRunner) stagePlane(n int) {
	r.planeLive = false
	if r.plane == nil {
		return
	}
	r.plane.Reset()
	requests := 0
	for pos := 0; pos < n; pos++ {
		i := pos
		if r.ids != nil {
			i = r.ids[pos]
		}
		po, ok := r.oracles[i].(PlaneOracle)
		if !ok {
			continue
		}
		srcs := po.PlaneSources()
		requests += len(srcs)
		for _, s := range srcs {
			r.plane.Stage(s)
		}
	}
	ns := r.plane.NumSources()
	if ns == 0 {
		return
	}
	r.planeLive = true
	r.metrics.PlaneRounds++
	r.metrics.PlaneSources += ns
	r.metrics.PlaneRequests += requests
	if r.workers == 1 || ns == 1 {
		if r.seq == nil {
			r.seq = NewScratch(r.g)
		}
		sp := r.seq.dijkstra()
		for row := 0; row < ns; row++ {
			r.plane.FillRow(row, r.d, sp)
		}
		return
	}
	r.filling = true
	r.wg.Add(ns)
	for row := 0; row < ns; row++ {
		r.jobs <- row
	}
	r.wg.Wait()
	r.filling = false
}

// MinTrees evaluates the oracles named by ids (nil = all oracles) under d and
// returns one result per id, in id-list order, with Len left zero. d must
// not be mutated until MinTrees returns. The returned slice is reused by the
// next call — consume it first. Trees in the results do not alias runner
// state and stay valid indefinitely.
func (r *BatchRunner) MinTrees(d graph.Lengths, ids []int) []BatchResult {
	return r.run(d, ids, false)
}

// MinTreesLen is MinTrees with each result's Len filled with the tree's raw
// length under d (computed on the workers, so the extra pass parallelizes).
func (r *BatchRunner) MinTreesLen(d graph.Lengths, ids []int) []BatchResult {
	return r.run(d, ids, true)
}

func (r *BatchRunner) run(d graph.Lengths, ids []int, wantLen bool) []BatchResult {
	n := len(r.oracles)
	if ids != nil {
		n = len(ids)
	}
	r.d, r.ids, r.wantLen = d, ids, wantLen
	r.stagePlane(n)
	if r.workers == 1 || n == 1 {
		// Single slot or single worker: evaluate inline. The parallel
		// variant's scratch lives in its workers, so the inline path keeps
		// its own; results are identical (Scratch state never leaks into
		// outputs).
		if r.seq == nil {
			r.seq = NewScratch(r.g)
		}
		for pos := 0; pos < n; pos++ {
			r.eval(pos, r.seq)
		}
		return r.out[:n]
	}
	r.wg.Add(n)
	for pos := 0; pos < n; pos++ {
		r.jobs <- pos
	}
	r.wg.Wait()
	return r.out[:n]
}

// Close releases the worker pool. The runner must not be used afterwards;
// Close is idempotent.
func (r *BatchRunner) Close() {
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
}
