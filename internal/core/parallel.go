package core

import (
	"runtime"
	"sync"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// mostResult is one session's minimum overlay spanning tree with its raw
// (unnormalized) dual length.
type mostResult struct {
	tree *overlay.Tree
	len  float64
	err  error
}

// computeMOSTs evaluates every oracle's MinTree under d, in parallel when
// parallel is set and there is more than one session. The reduction is
// deterministic: results land in a slice indexed by session, so scheduling
// order never affects output.
func computeMOSTs(oracles []overlay.TreeOracle, d graph.Lengths, parallel bool) []mostResult {
	k := len(oracles)
	out := make([]mostResult, k)
	if !parallel || k == 1 || runtime.GOMAXPROCS(0) == 1 {
		for i, o := range oracles {
			t, err := o.MinTree(d)
			if err != nil {
				out[i] = mostResult{err: err}
				continue
			}
			out[i] = mostResult{tree: t, len: t.LengthUnder(d)}
		}
		return out
	}
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t, err := oracles[i].MinTree(d)
				if err != nil {
					out[i] = mostResult{err: err}
					continue
				}
				out[i] = mostResult{tree: t, len: t.LengthUnder(d)}
			}
		}()
	}
	for i := 0; i < k; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// parallelFor runs fn(i) for i in [0,n) across GOMAXPROCS workers and blocks
// until all complete. fn must be safe to run concurrently for distinct i.
// Used by the experiment harness for trial fan-outs.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
