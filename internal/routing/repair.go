package routing

import "overcast/internal/graph"

// RepairSubtreesInto incrementally repairs a stored Dijkstra row in place —
// the Ramalingam–Reps-style subtree rebuild behind overlay.BatchRunner's
// third per-row classification outcome. dist/parent must hold the exact
// output of a previous ShortestPathsInto(g, src, dOld, ...) and roots the
// nodes whose stored parent edge has been mutated since (the children below
// the touched tree edges). The call invalidates only the union S of the
// stored subtrees rooted at those nodes and resettles S alone: each S node is
// seeded with the best offer its intact (non-S) neighbors would deliver in a
// fresh run, the heap holds only S nodes, and relaxations out of S pops are
// gated to unsettled S targets — so the whole repair costs
// O(|S| log |S| + Σ_{v∈S} deg(v)) instead of resuming over the frontier. It
// returns the nodes of S appended to out (for the caller's inverted-index
// maintenance and metrics) and ok=false when the repair bailed — S larger
// than half the graph (a full refill is cheaper and the caller must run
// one), or a defensive invariant miss — in which case dist/parent may be
// partially overwritten and MUST be refilled from scratch.
//
// Bit-identity contract: when (a) every mutation since the stored fill was a
// monotone growth (graph.LengthStore.MonotoneSince), (b) roots cover every
// touched stored-tree edge, and (c) every length is strictly positive
// (graph.LengthStore.AllPositive) and scale-separated from the row's
// distances (the caller's overlay certificate — see overlay's scaleSafe), the
// repaired dist/parent arrays are bitwise identical to a fresh
// ShortestPathsInto under d — including the deterministic (key, id) heap
// tie-breaks — and the pop sequence equals the full run's pop sequence
// restricted to S. The argument, in three steps:
//
//  1. Untouched rows outside S are already exact. For any w not in S, the
//     stored winning path to w avoids every touched edge, so its length is
//     unchanged and still optimal (growths never shorten a competitor). The
//     stored parent also re-wins the tie-break replay: in the fresh run every
//     competing offer arrives no earlier than before (its subpath length only
//     grew) with the same edge id, so the stored offer still arrives first at
//     an equal-or-better key. Offers from S pops into non-S targets are
//     discarded without scanning: dist[v] + d[e] >= dist[w] by the triangle
//     inequality over final distances, and the fresh run's strict `<`
//     relaxation discards exactly those offers too.
//  2. Per-node frontier precompute reproduces the intact side of the offer
//     race. In the fresh run, w's final parent is the first-arriving offer at
//     the final key; offers arrive ordered by the offerer's pop position
//     (dist, id), then by scan position within the offerer's adjacency list —
//     and scan position is ascending edge id, identically ordered in both
//     endpoints' CSR lists. Minimizing (key, offerer dist, offerer id, scan
//     position) over w's intact neighbors therefore selects exactly the
//     frontier offer that wins the fresh race among intact offerers. Offers
//     out of S pops replay live in true pop order; when such an offer ties
//     the pending precomputed offer at the final key, it wins iff its offerer
//     pops earlier in the fresh interleaving — (dist[v], v) < (dist[u*], u*)
//     — which the resume loop's replacement branch checks explicitly. Once
//     any S-origin offer lands, later equal offers arrive later in the fresh
//     order too and are discarded as usual.
//  3. Strictly positive, scale-separated lengths force equal-key
//     determinism. Every settled node's winning parent pops at a strictly
//     smaller key, so by the time the first key-k node pops, every key-k node
//     is already in-heap with its final key — in the full run and in the
//     resumed run alike — and the (key, id) heap order pops them in identical
//     ascending-id order; restricted to S the two sequences coincide. With a
//     zero-length (or sub-ulp) edge a key-k node could be discovered only
//     *by* another key-k pop, and the two runs could interleave those pops
//     differently, flipping tie-broken parents. The caller certifies
//     separation or falls back to a full refill.
func (sc *DijkstraScratch) RepairSubtreesInto(g *graph.Graph, src graph.NodeID, d graph.Lengths, dist []float64, parent []graph.EdgeID, roots []graph.NodeID, out []graph.NodeID) (repaired []graph.NodeID, ok bool) {
	n := g.NumNodes()
	if len(dist) != n || len(parent) != n {
		panic("routing: RepairSubtreesInto slice size mismatch")
	}
	const inf = 1e308
	out = out[:0]
	if len(roots) == 0 {
		return out, true
	}
	if cap(sc.mark) < n {
		sc.mark = make([]uint32, n)
		sc.pend = make([]uint32, n)
		sc.markGen = 0
	}
	sc.markGen++
	if sc.markGen == 0 { // wrapped: stale marks could alias the new generation
		for i := range sc.mark {
			sc.mark[i] = 0
			sc.pend[i] = 0
		}
		sc.markGen = 1
	}
	gen := sc.markGen
	mark, pend := sc.mark[:n], sc.pend[:n]
	// Collect S = the union of stored subtrees below the dirty roots, reading
	// the stored tree through the CSR: w is a child of v iff w's stored parent
	// edge leads back to v. out doubles as the BFS queue and the returned node
	// list; the walk costs O(Σ_{v∈S} deg(v)), never a full-graph pass.
	for _, root := range roots {
		if root == src || parent[root] < 0 || mark[root] == gen {
			continue
		}
		mark[root] = gen
		out = append(out, root)
	}
	// Size bail: past this the three S-edge passes below (walk, precompute,
	// relax) cost about a refill's single full-edge pass, and the caller's
	// refill is cheaper. Checked inside the walk so an oversized region stops
	// paying for its own discovery; deterministic either way (the threshold
	// depends only on the row content and the roots, never on scheduling).
	limit := 2 * n / 3
	for head := 0; head < len(out); head++ {
		if len(out) > limit {
			return out, false
		}
		v := out[head]
		ids, tos := g.Neighbors(v)
		for k, id := range ids {
			// w hangs below v exactly when w's stored parent edge is this
			// very slot's edge — an id compare, no edge-endpoint loads.
			if w := tos[k]; parent[w] == id && mark[w] != gen {
				mark[w] = gen
				out = append(out, w)
			}
		}
	}
	if len(out) > limit {
		return out, false
	}
	// Invalidate S, then seed each S node with the winning intact-frontier
	// offer — key, then offerer pop position (dist, id), then scan position
	// (ascending edge id, the order this loop visits w's parallel edges in).
	for _, v := range out {
		dist[v] = inf
		parent[v] = -1
	}
	h := sc.heap
	h.Reset()
	for _, w := range out {
		best := inf
		bestEdge := graph.EdgeID(-1)
		bestDu := 0.0
		bestU := graph.NodeID(0)
		ids, tos := g.Neighbors(w)
		for k, id := range ids {
			u := tos[k]
			if mark[u] == gen {
				continue
			}
			du := dist[u]
			if du >= inf {
				continue
			}
			nd := du + d[id]
			if nd < best || (bestEdge >= 0 && nd == best &&
				(du < bestDu || (du == bestDu && u < bestU))) {
				best, bestEdge, bestDu, bestU = nd, id, du, u
			}
		}
		if bestEdge >= 0 {
			dist[w] = best
			parent[w] = bestEdge
			pend[w] = gen
			h.Push(w, best)
		}
	}
	// Resume over S only. The relaxation body is ShortestPathsInto's with two
	// S-specific gates: non-S targets are skipped outright (step 1 above
	// proves those offers always lose), and an equal-key offer into a node
	// still carrying its pending precomputed offer replays the fresh run's
	// arrival race against that offer's frontier node (step 2).
	for h.Len() > 0 {
		v, dv := h.Pop()
		if dv > dist[v] {
			continue
		}
		// Unmark on settle: offers into settled S nodes lose exactly like
		// offers into non-S nodes (their distance is final), so dropping the
		// mark lets the gate below reject both without touching float state.
		mark[v] = 0
		pend[v] = 0
		if sc.OnPop != nil {
			sc.OnPop(v)
		}
		ids, tos := g.Neighbors(v)
		for k, id := range ids {
			w := tos[k]
			if mark[w] != gen {
				continue
			}
			nd := dv + d[id]
			if nd < dist[w] {
				dist[w] = nd
				parent[w] = id
				pend[w] = 0
				h.PushOrDecrease(w, nd)
			} else if nd == dist[w] && pend[w] == gen {
				u := g.Edges[parent[w]].Other(w)
				if dv < dist[u] || (dv == dist[u] && v < u) {
					parent[w] = id
					pend[w] = 0
				}
			}
		}
	}
	for _, v := range out {
		if dist[v] >= inf {
			// A subtree node ended unreachable: only possible when an input
			// precondition was violated (e.g. an infinite length). Hand the
			// row back for a full refill rather than serve it.
			return out, false
		}
	}
	return out, true
}
