package experiments

import (
	"fmt"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/stats"
	"overcast/internal/topology"
)

// SettingB is the Sec. VI environment: a two-level AS/router topology over
// which grids of (session count x average session size) are swept.
type SettingB struct {
	Seed uint64
	Net  *topology.Network
	// SolverWorkers is the per-solve oracle worker-pool size (0 keeps the
	// solvers sequential; the grid already parallelizes across cells).
	// Results are bit-identical for every value.
	SolverWorkers int
	// SolverDisableRepair turns off the plane's cross-round dirty-source
	// repair (see core.MaxFlowOptions.DisableRepair); results are
	// bit-identical either way.
	SolverDisableRepair bool
	// SolverDisableSubtreeRepair turns off repair's incremental subtree
	// path (see core.MaxFlowOptions.DisableSubtreeRepair); results are
	// bit-identical either way.
	SolverDisableSubtreeRepair bool
	// SolverDisablePlane turns off the solvers' shared SSSP plane (see
	// core.MaxFlowOptions.DisablePlane); results are bit-identical either
	// way.
	SolverDisablePlane bool
	// SolverShards runs each cell's solvers on per-AS shards behind the
	// price-exchange boundary (see core.MaxFlowOptions.Shards), partitioned
	// by the two-level topology's AS labels. 0 = unsharded; results are
	// bit-identical for every value.
	SolverShards int
}

// SettingBConfig scales the Sec. VI environment. The paper uses 10 ASes x
// 100 routers; tests and default benches use smaller values.
type SettingBConfig struct {
	ASes         int
	RoutersPerAS int
	Capacity     float64
}

// DefaultSettingB returns the paper's Sec. VI topology parameters.
func DefaultSettingB() SettingBConfig {
	return SettingBConfig{ASes: 10, RoutersPerAS: 100, Capacity: 100}
}

// NewSettingB builds the two-level network deterministically.
func NewSettingB(seed uint64, cfg SettingBConfig) (*SettingB, error) {
	tl := topology.DefaultTwoLevel(cfg.ASes, cfg.RoutersPerAS)
	if cfg.Capacity > 0 {
		tl.Capacity = cfg.Capacity
	}
	net, err := topology.TwoLevel(tl, rng.New(seed).Split(0))
	if err != nil {
		return nil, err
	}
	return &SettingB{Seed: seed, Net: net}, nil
}

// GridConfig configures the Sec. VI sweeps.
type GridConfig struct {
	SessionCounts []int   // paper: 1..9
	SessionSizes  []int   // paper: 10..90 (average session size)
	Ratio         float64 // approximation ratio (paper: 0.95)
	Demand        float64 // per-session demand (paper: 1)
}

// DefaultGrid returns the paper's Sec. VI sweep parameters.
func DefaultGrid() GridConfig {
	return GridConfig{
		SessionCounts: []int{1, 2, 3, 4, 5, 6, 7, 8, 9},
		SessionSizes:  []int{10, 20, 30, 40, 50, 60, 70, 80, 90},
		Ratio:         0.95,
		Demand:        1,
	}
}

// GridCell is the full measurement of one (sessions, size) grid point.
type GridCell struct {
	Sessions, Size int
	// MaxFlow metrics (Fig. 12).
	MFThroughput float64
	// MaxConcurrentFlow metrics (Figs. 15, 16).
	MCFThroughput float64
	MCFMinRate    float64
	// EdgesPerNode is the average number of distinct physical edges a
	// session member's routes traverse (Fig. 13).
	EdgesPerNode float64
	// Utilization curves over covered links (Fig. 14).
	MFUtilCDF  []stats.Point
	MCFUtilCDF []stats.Point
	// Tree-rate CDF of the first session under MaxFlow (Fig. 17).
	MFTreeRateCDF []stats.Point
}

// GridResult indexes cells and exposes the paper's surfaces.
type GridResult struct {
	Cells map[[2]int]*GridCell
	// Fig. 12: overall MaxFlow throughput.
	Throughput *stats.Surface
	// Fig. 13: physical edges per node.
	EdgesPerNode *stats.Surface
	// Fig. 15: minimum session rate under MaxConcurrentFlow.
	MinRate *stats.Surface
	// Fig. 16: MCF/MF throughput ratio.
	ThroughputRatio *stats.Surface
}

// buildSessions draws count sessions of the given size with distinct random
// members (sessions may overlap each other, as in the paper).
func (b *SettingB) buildSessions(count, size int, demand float64, r *rng.RNG) ([]*overlay.Session, error) {
	n := b.Net.Graph.NumNodes()
	if size > n {
		return nil, fmt.Errorf("experiments: session size %d exceeds %d nodes", size, n)
	}
	sessions := make([]*overlay.Session, count)
	for i := 0; i < count; i++ {
		s, err := overlay.NewSession(i, r.Split(uint64(i)).Sample(n, size), demand)
		if err != nil {
			return nil, err
		}
		sessions[i] = s
	}
	return sessions, nil
}

// Grid runs MaxFlow and MaxConcurrentFlow over the whole grid; cells are
// computed concurrently with per-cell split RNGs.
func (b *SettingB) Grid(cfg GridConfig) (*GridResult, error) {
	type cellJob struct{ count, size int }
	var jobs []cellJob
	for _, c := range cfg.SessionCounts {
		for _, s := range cfg.SessionSizes {
			jobs = append(jobs, cellJob{c, s})
		}
	}
	res := &GridResult{
		Cells:           make(map[[2]int]*GridCell, len(jobs)),
		Throughput:      stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes),
		EdgesPerNode:    stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes),
		MinRate:         stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes),
		ThroughputRatio: stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes),
	}
	cells := make([]*GridCell, len(jobs))
	errs := make([]error, len(jobs))
	root := rng.New(b.Seed ^ 0xb)
	parallelFor(len(jobs), func(j int) {
		job := jobs[j]
		cell, err := b.runCell(job.count, job.size, cfg, root.Split(uint64(j)))
		cells[j] = cell
		errs[j] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, cell := range cells {
		res.Cells[[2]int{cell.Sessions, cell.Size}] = cell
		res.Throughput.Set(cell.Sessions, cell.Size, cell.MFThroughput)
		res.EdgesPerNode.Set(cell.Sessions, cell.Size, cell.EdgesPerNode)
		res.MinRate.Set(cell.Sessions, cell.Size, cell.MCFMinRate)
		ratio := 0.0
		if cell.MFThroughput > 0 {
			ratio = cell.MCFThroughput / cell.MFThroughput
		}
		res.ThroughputRatio.Set(cell.Sessions, cell.Size, ratio)
	}
	return res, nil
}

func (b *SettingB) runCell(count, size int, cfg GridConfig, r *rng.RNG) (*GridCell, error) {
	sessions, err := b.buildSessions(count, size, cfg.Demand, r)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblemWeighted(b.Net.Graph, sessions, core.RoutingIP, b.Net.LinkDelays())
	if err != nil {
		return nil, err
	}
	eps := core.RatioToEpsilon(cfg.Ratio)
	mf, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: eps, Workers: b.SolverWorkers, DisablePlane: b.SolverDisablePlane, DisableRepair: b.SolverDisableRepair, DisableSubtreeRepair: b.SolverDisableSubtreeRepair, Shards: b.SolverShards, ShardLabels: b.Net.ASOf})
	if err != nil {
		return nil, fmt.Errorf("experiments: cell (%d,%d) MaxFlow: %w", count, size, err)
	}
	mcf, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: core.MCFRatioToEpsilon(cfg.Ratio), Workers: b.SolverWorkers, DisablePlane: b.SolverDisablePlane, DisableRepair: b.SolverDisableRepair, DisableSubtreeRepair: b.SolverDisableSubtreeRepair, Shards: b.SolverShards, ShardLabels: b.Net.ASOf})
	if err != nil {
		return nil, fmt.Errorf("experiments: cell (%d,%d) MCF: %w", count, size, err)
	}
	cell := &GridCell{
		Sessions:      count,
		Size:          size,
		MFThroughput:  mf.OverallThroughput(),
		MCFThroughput: mcf.OverallThroughput(),
		MCFMinRate:    mcf.MinSessionRate(),
		MFUtilCDF:     LinkUtilizationCDF(mf),
		MCFUtilCDF:    LinkUtilizationCDF(mcf.Solution),
		MFTreeRateCDF: stats.AccumulativeRateCDF(mf.RateDistribution(0)),
	}
	cell.EdgesPerNode = edgesPerNode(p)
	return cell, nil
}

// edgesPerNode measures Fig. 13's metric: for every session member, the
// number of distinct physical edges on its unicast routes to the other
// members of its session, averaged over all members of all sessions.
func edgesPerNode(p *core.Problem) float64 {
	var members []graph.NodeID
	for _, s := range p.Sessions {
		members = append(members, s.Members...)
	}
	rt := ipRoutesFor(p, members)
	total, nodes := 0, 0
	for _, s := range p.Sessions {
		for _, m := range s.Members {
			distinct := make(map[graph.EdgeID]bool)
			for _, o := range s.Members {
				if o == m {
					continue
				}
				path, err := rt.Route(m, o)
				if err != nil {
					continue
				}
				for _, e := range path.Edges {
					distinct[e] = true
				}
			}
			total += len(distinct)
			nodes++
		}
	}
	if nodes == 0 {
		return 0
	}
	return float64(total) / float64(nodes)
}

// OnlineGridResult holds the Fig. 18/19 ratio surfaces per tree limit.
type OnlineGridResult struct {
	// ThroughputRatio[limit] = online throughput / MaxFlow throughput.
	ThroughputRatio map[int]*stats.Surface
	// MinRateRatio[limit] = online min base-session rate / MCF min rate.
	MinRateRatio map[int]*stats.Surface
}

// OnlineGrid reproduces Figs. 18/19: for each grid cell, replicate every
// session `limit` times, admit in random order with the online algorithm
// (step size mu), and compare against the offline optima. Trials averages
// over arrival orders.
func (b *SettingB) OnlineGrid(cfg GridConfig, limits []int, mu float64, trials int) (*OnlineGridResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiments: trials must be >=1")
	}
	res := &OnlineGridResult{
		ThroughputRatio: make(map[int]*stats.Surface, len(limits)),
		MinRateRatio:    make(map[int]*stats.Surface, len(limits)),
	}
	for _, l := range limits {
		res.ThroughputRatio[l] = stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes)
		res.MinRateRatio[l] = stats.NewSurface("sessions", cfg.SessionCounts, "size", cfg.SessionSizes)
	}
	type job struct{ count, size int }
	var jobs []job
	for _, c := range cfg.SessionCounts {
		for _, s := range cfg.SessionSizes {
			jobs = append(jobs, job{c, s})
		}
	}
	type cellOut struct {
		tpRatio, mrRatio map[int]float64
	}
	outs := make([]cellOut, len(jobs))
	errs := make([]error, len(jobs))
	root := rng.New(b.Seed ^ 0x18)
	parallelFor(len(jobs), func(j int) {
		outs[j].tpRatio = make(map[int]float64, len(limits))
		outs[j].mrRatio = make(map[int]float64, len(limits))
		errs[j] = b.runOnlineCell(jobs[j].count, jobs[j].size, cfg, limits, mu, trials, root.Split(uint64(j)), &outs[j].tpRatio, &outs[j].mrRatio)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for j, jb := range jobs {
		for _, l := range limits {
			res.ThroughputRatio[l].Set(jb.count, jb.size, outs[j].tpRatio[l])
			res.MinRateRatio[l].Set(jb.count, jb.size, outs[j].mrRatio[l])
		}
	}
	return res, nil
}

func (b *SettingB) runOnlineCell(count, size int, cfg GridConfig, limits []int, mu float64, trials int, r *rng.RNG, tpOut, mrOut *map[int]float64) error {
	sessions, err := b.buildSessions(count, size, cfg.Demand, r.Split(0))
	if err != nil {
		return err
	}
	p, err := core.NewProblemWeighted(b.Net.Graph, sessions, core.RoutingIP, b.Net.LinkDelays())
	if err != nil {
		return err
	}
	mf, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: core.RatioToEpsilon(cfg.Ratio)})
	if err != nil {
		return err
	}
	mcf, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: core.MCFRatioToEpsilon(cfg.Ratio)})
	if err != nil {
		return err
	}
	var members []graph.NodeID
	for _, s := range sessions {
		members = append(members, s.Members...)
	}
	rt := ipRoutesFor(p, members)
	for li, limit := range limits {
		tpSum, mrSum := 0.0, 0.0
		for t := 0; t < trials; t++ {
			tr := r.Split(uint64(1 + li*10007 + t))
			arrivals := make([]int, 0, limit*count)
			for rep := 0; rep < limit; rep++ {
				for i := 0; i < count; i++ {
					arrivals = append(arrivals, i)
				}
			}
			tr.Shuffle(arrivals)
			on, err := core.NewOnline(p.G, mu)
			if err != nil {
				return err
			}
			for idx, baseIdx := range arrivals {
				s, err := overlay.NewSession(idx, sessions[baseIdx].Members, cfg.Demand/float64(limit))
				if err != nil {
					return err
				}
				oracle, err := overlay.NewFixedOracle(p.G, rt, s)
				if err != nil {
					return err
				}
				if _, err := on.Join(oracle); err != nil {
					return err
				}
			}
			sol, err := on.Finalize()
			if err != nil {
				return err
			}
			baseRate := make([]float64, count)
			tp := 0.0
			for idx, baseIdx := range arrivals {
				rate := sol.SessionRate(idx)
				baseRate[baseIdx] += rate
				tp += float64(sessions[baseIdx].Receivers()) * rate
			}
			minRate := baseRate[0]
			for _, v := range baseRate[1:] {
				if v < minRate {
					minRate = v
				}
			}
			tpSum += tp
			mrSum += minRate
		}
		tp := tpSum / float64(trials)
		mr := mrSum / float64(trials)
		if mft := mf.OverallThroughput(); mft > 0 {
			(*tpOut)[limit] = tp / mft
		}
		if mcfMin := mcf.MinSessionRate(); mcfMin > 0 {
			(*mrOut)[limit] = mr / mcfMin
		}
	}
	return nil
}
