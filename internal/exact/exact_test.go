package exact

import (
	"math"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func fixedOracles(t *testing.T, g *graph.Graph, sessions []*overlay.Session) []*overlay.FixedOracle {
	t.Helper()
	var members []graph.NodeID
	for _, s := range sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(g, members)
	var oracles []*overlay.FixedOracle
	for _, s := range sessions {
		o, err := overlay.NewFixedOracle(g, rt, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	return oracles
}

func TestM1SingleTwoMemberSessionOnPath(t *testing.T) {
	// Path 0-1-2 with capacity 10: the only tree of session {0,2} is the
	// two-hop path; optimum rate 10.
	net, _ := topology.Path(3, 10)
	s, _ := overlay.NewSession(0, []graph.NodeID{0, 2}, 1)
	res, err := MaxMulticommodityFlow(net.Graph, fixedOracles(t, net.Graph, []*overlay.Session{s}), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-10) > 1e-6 {
		t.Fatalf("M1 value %v, want 10", res.Value)
	}
	if math.Abs(res.SessionRates[0]-10) > 1e-6 {
		t.Fatalf("session rate %v", res.SessionRates[0])
	}
}

func TestM1StarSessionSharedBottleneck(t *testing.T) {
	// Star with center 0 and leaves 1..3, capacity 12. Session {1,2,3}:
	// every overlay tree pushes flow twice over at least one spoke. The
	// best trees are paths (e.g. 1-2, 2-3) using the middle member's spoke
	// twice: bottleneck 12/2 = 6. Mixing the three path trees cannot beat
	// capacity: each unit of session rate consumes 4 spoke-units total
	// (2 overlay edges x 2 hops) over 3 spokes of 12 -> upper bound 9, but
	// the doubled middle spoke binds per tree; LP optimum is 12*3/(4) = 9?
	// We don't hand-wave: we just check the LP beats the best single tree
	// and respects capacity.
	net, _ := topology.Star(4, 12)
	s, _ := overlay.NewSession(0, []graph.NodeID{1, 2, 3}, 1)
	oracles := fixedOracles(t, net.Graph, []*overlay.Session{s})
	res, err := MaxMulticommodityFlow(net.Graph, oracles, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 6-1e-9 {
		t.Fatalf("LP %v below best single tree 6", res.Value)
	}
	// Verify capacity feasibility of the reported rates.
	load := map[graph.EdgeID]float64{}
	for i, trees := range res.Trees {
		for j, tree := range trees {
			for _, u := range tree.Use() {
				load[u.Edge] += float64(u.Count) * res.Rates[i][j]
			}
		}
	}
	for e, l := range load {
		if l > net.Graph.Edges[e].Capacity+1e-6 {
			t.Fatalf("edge %d overloaded: %v", e, l)
		}
	}
}

func TestM1PrefersLargerSession(t *testing.T) {
	// Two sessions sharing a bottleneck; the larger session has objective
	// weight 1, the smaller less, so at the optimum the larger session
	// should receive at least as much rate.
	net, _ := topology.Dumbbell(4, 100, 10)
	g := net.Graph
	s1, _ := overlay.NewSession(0, []graph.NodeID{0, 1, 4, 5}, 1) // spans bottleneck
	s2, _ := overlay.NewSession(1, []graph.NodeID{2, 6}, 1)       // also spans bottleneck
	res, err := MaxMulticommodityFlow(g, fixedOracles(t, g, []*overlay.Session{s1, s2}), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.SessionRates[0] < res.SessionRates[1]-1e-6 {
		t.Fatalf("M1 gave larger session %v < smaller session %v",
			res.SessionRates[0], res.SessionRates[1])
	}
}

func TestM2EqualizesDemandRatio(t *testing.T) {
	// Two identical 2-member sessions across a shared bottleneck with equal
	// demands must each get half of it.
	net, _ := topology.Dumbbell(3, 100, 10)
	g := net.Graph
	s1, _ := overlay.NewSession(0, []graph.NodeID{0, 3}, 1)
	s2, _ := overlay.NewSession(1, []graph.NodeID{1, 4}, 1)
	res, err := MaxConcurrentFlow(g, fixedOracles(t, g, []*overlay.Session{s1, s2}), 6)
	if err != nil {
		t.Fatal(err)
	}
	// All routes cross the capacity-10 bridge once; lambda*1 per session,
	// two sessions -> lambda = 5.
	if math.Abs(res.Value-5) > 1e-6 {
		t.Fatalf("lambda %v, want 5", res.Value)
	}
	if math.Abs(res.SessionRates[0]-res.SessionRates[1]) > 1e-6 {
		t.Fatalf("unequal rates %v vs %v", res.SessionRates[0], res.SessionRates[1])
	}
}

func TestM2RespectsDemandWeights(t *testing.T) {
	// Same setting but session 2 demands twice as much: rates must be in
	// ratio 1:2 and saturate the bridge.
	net, _ := topology.Dumbbell(3, 100, 12)
	g := net.Graph
	s1, _ := overlay.NewSession(0, []graph.NodeID{0, 3}, 1)
	s2, _ := overlay.NewSession(1, []graph.NodeID{1, 4}, 2)
	res, err := MaxConcurrentFlow(g, fixedOracles(t, g, []*overlay.Session{s1, s2}), 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-4) > 1e-6 {
		t.Fatalf("lambda %v, want 4 (4*1 + 4*2 = 12)", res.Value)
	}
	if math.Abs(res.SessionRates[1]-2*res.SessionRates[0]) > 1e-6 {
		t.Fatalf("rates %v not in demand ratio", res.SessionRates)
	}
}

func TestM2LambdaIsMinRatio(t *testing.T) {
	// Property: reported lambda equals min_i rate_i/dem_i on a random small
	// instance.
	net, err := topology.Waxman(topology.DefaultWaxman(20), rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	s1, _ := overlay.NewSession(0, []graph.NodeID{0, 5, 9}, 3)
	s2, _ := overlay.NewSession(1, []graph.NodeID{2, 12, 17, 19}, 1)
	res, err := MaxConcurrentFlow(g, fixedOracles(t, g, []*overlay.Session{s1, s2}), 6)
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	dems := []float64{3, 1}
	for i, r := range res.SessionRates {
		if v := r / dems[i]; v < min {
			min = v
		}
	}
	if math.Abs(min-res.Value) > 1e-6 {
		t.Fatalf("lambda %v but min ratio %v", res.Value, min)
	}
}

func TestEnumerationGuard(t *testing.T) {
	net, _ := topology.Complete(9, 10)
	members := make([]graph.NodeID, 9)
	for i := range members {
		members[i] = i
	}
	s, _ := overlay.NewSession(0, members, 1)
	if _, err := MaxMulticommodityFlow(net.Graph, fixedOracles(t, net.Graph, []*overlay.Session{s}), 6); err == nil {
		t.Fatal("oversized enumeration accepted")
	}
}

func BenchmarkExactM1Size5(b *testing.B) {
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	g := net.Graph
	s1, _ := overlay.NewSession(0, []graph.NodeID{0, 7, 14, 21, 28}, 1)
	s2, _ := overlay.NewSession(1, []graph.NodeID{3, 11, 19}, 1)
	sessions := []*overlay.Session{s1, s2}
	var members []graph.NodeID
	for _, s := range sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(g, members)
	var oracles []*overlay.FixedOracle
	for _, s := range sessions {
		o, err := overlay.NewFixedOracle(g, rt, s)
		if err != nil {
			b.Fatal(err)
		}
		oracles = append(oracles, o)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMulticommodityFlow(g, oracles, 6); err != nil {
			b.Fatal(err)
		}
	}
}
