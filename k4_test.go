package overcast_test

import "overcast"

// newK4 builds the complete graph on 4 nodes with capacity 10 — the
// canonical tree-packing instance (Nash-Williams strength 2).
func newK4() (*overcast.Network, error) {
	return overcast.CustomNetwork(4, []overcast.Link{
		{From: 0, To: 1, Capacity: 10}, {From: 0, To: 2, Capacity: 10},
		{From: 0, To: 3, Capacity: 10}, {From: 1, To: 2, Capacity: 10},
		{From: 1, To: 3, Capacity: 10}, {From: 2, To: 3, Capacity: 10},
	})
}

func newK4System(net *overcast.Network) (*overcast.System, error) {
	return overcast.NewSystem(net, []overcast.Session{
		{Members: []int{0, 1, 2, 3}, Demand: 1},
	}, overcast.RoutingIP)
}
