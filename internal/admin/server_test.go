package admin

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"overcast"
)

// testHarness is one in-process daemon: allocator, server, serve goroutine.
type testHarness struct {
	t     *testing.T
	alloc *overcast.Allocator
	srv   *Server
	serve chan error
}

func startHarness(t *testing.T, dir string, opts Options, allocOpts overcast.AllocatorOptions) *testHarness {
	t.Helper()
	net, err := overcast.WaxmanNetwork(32, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := overcast.NewAllocator(net, allocOpts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.SocketPath == "" {
		opts.SocketPath = filepath.Join(dir, "admin.sock")
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	srv, err := NewServer(alloc, opts)
	if err != nil {
		alloc.Close()
		t.Fatal(err)
	}
	if _, err := srv.Restore(); err != nil {
		alloc.Close()
		t.Fatal(err)
	}
	if err := srv.Listen(); err != nil {
		alloc.Close()
		t.Fatal(err)
	}
	h := &testHarness{t: t, alloc: alloc, srv: srv, serve: make(chan error, 1)}
	go func() { h.serve <- srv.Serve() }()
	t.Cleanup(func() { alloc.Close() })
	return h
}

func (h *testHarness) dial() *Client {
	h.t.Helper()
	c, err := Dial(h.srv.opts.SocketPath, 2*time.Second)
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

// drainAndWait drains through the client and waits for Serve to return nil.
func (h *testHarness) drainAndWait(c *Client) {
	h.t.Helper()
	if _, err := c.Drain(); err != nil {
		h.t.Fatalf("drain: %v", err)
	}
	select {
	case err := <-h.serve:
		if err != nil {
			h.t.Fatalf("Serve after drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		h.t.Fatal("Serve did not return after drain")
	}
}

func mustJoin(t *testing.T, c *Client, members []int, demand float64) *WirePlacement {
	t.Helper()
	p, err := c.Join(members, demand)
	if err != nil {
		t.Fatalf("join %v: %v", members, err)
	}
	if p.Session == 0 {
		t.Fatal("join issued the invalid zero token")
	}
	return p
}

// TestDaemonLifecycle is the acceptance test of the tentpole: start a daemon,
// mutate it through the socket, drain it (persisting a final state snapshot),
// restart against the same state path, and require the restored daemon to
// serve the persisted allocation bit-identically to the on-disk bytes.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state.json")

	h := startHarness(t, dir, Options{StatePath: state}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()

	pong, err := c.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Protocol != ProtocolVersion || pong.Draining {
		t.Fatalf("ping = %+v", pong)
	}

	p1 := mustJoin(t, c, []int{0, 3, 9}, 1)
	p2 := mustJoin(t, c, []int{5, 12, 20, 27}, 2)
	p3 := mustJoin(t, c, []int{1, 8, 30}, 1)
	if p1.Session == p2.Session || p2.Session == p3.Session {
		t.Fatal("token reuse")
	}
	if p2.Epoch <= p1.Epoch {
		t.Fatalf("epochs not advancing: %d then %d", p1.Epoch, p2.Epoch)
	}

	left, err := c.Leave(p2.Session)
	if err != nil {
		t.Fatal(err)
	}
	if left.Session != p2.Session || left.Active != 2 {
		t.Fatalf("leave = %+v", left)
	}
	if _, err := c.Leave(p2.Session); err == nil {
		t.Fatal("double leave succeeded")
	} else if rpcErr := new(RPCError); !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeUnknownSession {
		t.Fatalf("double leave error = %v, want %s", err, ErrCodeUnknownSession)
	}

	reb, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(reb.Placements) != 2 {
		t.Fatalf("rebalance placed %d sessions, want 2", len(reb.Placements))
	}
	if reb.Placements[0].Session != p1.Session || reb.Placements[1].Session != p3.Session {
		t.Fatalf("rebalance order %d,%d, want %d,%d",
			reb.Placements[0].Session, reb.Placements[1].Session, p1.Session, p3.Session)
	}

	// The rebalance materialized an allocation; a cached read must serve it
	// and a refreshing read must agree on the population.
	cached, err := c.Snapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Sessions) != 2 || cached.Epoch != reb.Epoch {
		t.Fatalf("cached snapshot = epoch %d with %d sessions", cached.Epoch, len(cached.Sessions))
	}
	fresh, err := c.Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Sessions) != 2 {
		t.Fatalf("refreshed snapshot has %d sessions", len(fresh.Sessions))
	}
	if fresh.Sessions[0].Session != p1.Session || fresh.Sessions[1].Session != p3.Session {
		t.Fatal("refreshed snapshot token order != admission order")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 2 || st.Allocator.Joins != 3 || st.Allocator.Leaves != 1 {
		t.Fatalf("stats = active %d, joins %d, leaves %d", st.Active, st.Allocator.Joins, st.Allocator.Leaves)
	}
	if st.Daemon.Restored {
		t.Fatal("fresh daemon claims to be restored")
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"overcastd_active_sessions 2",
		"overcastd_joins_total 3",
		"overcastd_plane_subtree_repaired_total",
		"overcastd_plane_subtree_nodes_total",
		`overcastd_rpcs_total{op="join"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}

	h.drainAndWait(c)

	// The final state snapshot is on disk. Pull the raw persisted allocation
	// bytes for the bitwise comparison below.
	raw, err := os.ReadFile(state)
	if err != nil {
		t.Fatal(err)
	}
	var onDisk struct {
		V        int             `json:"v"`
		Sessions json.RawMessage `json:"sessions"`
		Snapshot json.RawMessage `json:"snapshot"`
	}
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.V != ProtocolVersion || len(onDisk.Snapshot) == 0 {
		t.Fatalf("state file: version %d, snapshot %d bytes", onDisk.V, len(onDisk.Snapshot))
	}

	// Restart: a fresh allocator restored from the same state path.
	h2 := startHarness(t, dir, Options{StatePath: state}, overcast.AllocatorOptions{})
	c2 := h2.dial()
	defer c2.Close()

	st2, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Active != 2 || !st2.Daemon.Restored {
		t.Fatalf("restored stats = active %d, restored %v", st2.Active, st2.Daemon.Restored)
	}

	// Acceptance: the restored daemon serves the pre-crash allocation
	// bit-identically to the on-disk snapshot until the next refresh.
	snap2, err := c2.Snapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.TrimSpace(onDisk.Snapshot)) {
		t.Fatalf("restored snapshot != persisted bytes:\n got  %s\n disk %s", got, onDisk.Snapshot)
	}

	// Tokens must not be reissued across the restart, and the restored
	// population must keep serving mutations.
	p4 := mustJoin(t, c2, []int{2, 14, 25}, 1)
	if p4.Session <= p3.Session {
		t.Fatalf("post-restart token %d reuses pre-crash token space (last was %d)", p4.Session, p3.Session)
	}
	if _, err := c2.Leave(p1.Session); err != nil {
		t.Fatalf("pre-crash token %d unusable after restore: %v", p1.Session, err)
	}
	h2.drainAndWait(c2)
}

// TestAdmissionMaxSessions: the population cap rejects the overflow join with
// the admission code and no allocator state change.
func TestAdmissionMaxSessions(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{MaxSessions: 2}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()

	mustJoin(t, c, []int{0, 3, 9}, 1)
	p2 := mustJoin(t, c, []int{5, 12, 20}, 1)
	_, err := c.Join([]int{1, 8, 30}, 1)
	rpcErr := new(RPCError)
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeAdmission {
		t.Fatalf("overflow join error = %v, want %s", err, ErrCodeAdmission)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 2 || st.Daemon.AdmissionRejected != 1 {
		t.Fatalf("after rejection: active %d, rejected %d", st.Active, st.Daemon.AdmissionRejected)
	}
	// Departures free capacity.
	if _, err := c.Leave(p2.Session); err != nil {
		t.Fatal(err)
	}
	mustJoin(t, c, []int{1, 8, 30}, 1)
	h.drainAndWait(c)
}

// TestAdmissionMaxCongestion: a congestion threshold below any feasible
// placement rejects the join and rolls the allocator back exactly.
func TestAdmissionMaxCongestion(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{MaxCongestion: 1e-9}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()

	_, err := c.Join([]int{0, 3, 9}, 1)
	rpcErr := new(RPCError)
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeAdmission {
		t.Fatalf("join error = %v, want %s", err, ErrCodeAdmission)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 0 {
		t.Fatalf("rolled-back join left %d active sessions", st.Active)
	}
	if st.Allocator.Joins != 1 || st.Allocator.Leaves != 1 {
		t.Fatalf("rollback counters: joins %d, leaves %d (want 1, 1)", st.Allocator.Joins, st.Allocator.Leaves)
	}
	h.drainAndWait(c)
}

// TestAdmissionStrict: with a repair budget too small for warm repair to
// absorb a join (RepairPhaseBudget=2 forces a fallback on the first
// post-anchor refresh — see the WarmFallbacks counter), a strict daemon
// rejects the join that could not be repaired within budget.
func TestAdmissionStrict(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{StrictAdmission: true},
		overcast.AllocatorOptions{RepairPhaseBudget: 2})
	c := h.dial()
	defer c.Close()

	// First join: no cold anchor yet, the probe is skipped.
	mustJoin(t, c, []int{0, 3, 9}, 1)
	if _, err := c.Snapshot(true); err != nil { // cold anchor
		t.Fatal(err)
	}
	_, err := c.Join([]int{5, 12, 20, 27}, 2)
	rpcErr := new(RPCError)
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeAdmission {
		t.Fatalf("strict join error = %v, want %s", err, ErrCodeAdmission)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 1 || st.Daemon.AdmissionRejected != 1 {
		t.Fatalf("after strict rejection: active %d, rejected %d", st.Active, st.Daemon.AdmissionRejected)
	}
	if st.Allocator.WarmFallbacks == 0 {
		t.Fatal("strict rejection fired without a recorded warm fallback")
	}
	h.drainAndWait(c)
}

// TestServerRejectsBadFrames: the server answers protocol violations with
// coded error responses on the live socket, without dropping the connection
// for recoverable ones.
func TestServerRejectsBadFrames(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()

	send := func(frame string) *Response {
		t.Helper()
		if _, err := c.conn.Write([]byte(frame + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(line[:len(line)-1])
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := send(`{"v":9,"id":4,"op":"ping"}`); resp.OK || resp.Code != ErrCodeBadVersion || resp.ID != 4 {
		t.Fatalf("future version: %+v", resp)
	}
	if resp := send(`this is not json`); resp.OK || resp.Code != ErrCodeBadFrame {
		t.Fatalf("malformed frame: %+v", resp)
	}
	if resp := send(`{"v":1,"id":5,"op":"warp"}`); resp.OK || resp.Code != ErrCodeUnknownOp {
		t.Fatalf("unknown op: %+v", resp)
	}
	if resp := send(`{"v":1,"id":6,"op":"join"}`); resp.OK || resp.Code != ErrCodeBadParams {
		t.Fatalf("missing params: %+v", resp)
	}
	// The connection survived all four rejections.
	if pong, err := c.Ping(); err != nil || pong.Protocol != ProtocolVersion {
		t.Fatalf("ping after rejections: %v %+v", err, pong)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Daemon.RPCs["invalid"] != 4 {
		t.Fatalf("invalid-frame counter = %d, want 4", st.Daemon.RPCs["invalid"])
	}
	h.drainAndWait(c)
}

// TestConcurrentReadsDuringMutation: cached snapshot reads on one connection
// proceed while another connection holds the mutation path busy; every read
// serves a coherent materialized allocation.
func TestConcurrentReadsDuringMutation(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{}, overcast.AllocatorOptions{})
	w := h.dial()
	defer w.Close()

	mustJoin(t, w, []int{0, 3, 9}, 1)
	if _, err := w.Snapshot(true); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			members := []int{1 + i%4, 8 + i%5, 20 + i%6}
			p, err := w.Join(members, 1)
			if err != nil {
				done <- err
				return
			}
			if _, err := w.Snapshot(true); err != nil {
				done <- err
				return
			}
			if _, err := w.Leave(p.Session); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	r := h.dial()
	defer r.Close()
	reads := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if reads == 0 {
				t.Fatal("reader never completed a snapshot")
			}
			h.drainAndWait(r)
			return
		default:
			snap, err := r.Snapshot(false)
			if err != nil {
				t.Fatal(err)
			}
			if len(snap.Sessions) == 0 {
				t.Fatal("cached snapshot with no sessions")
			}
			reads++
		}
	}
}

// TestRestoreMissingAndCorruptState: a missing state file restores zero
// sessions; a corrupt or future-versioned one fails loudly instead of
// silently starting empty.
func TestRestoreMissingAndCorruptState(t *testing.T) {
	dir := t.TempDir()
	net, err := overcast.WaxmanNetwork(16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer alloc.Close()

	newSrv := func(state string) *Server {
		t.Helper()
		srv, err := NewServer(alloc, Options{SocketPath: filepath.Join(dir, "s.sock"), StatePath: state})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	if n, err := newSrv(filepath.Join(dir, "absent.json")).Restore(); err != nil || n != 0 {
		t.Fatalf("missing state: restored %d, err %v", n, err)
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"v":1,"sessions":[{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newSrv(corrupt).Restore(); err == nil {
		t.Fatal("corrupt state restored silently")
	}

	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"v":2,"next_token":1,"sessions":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newSrv(future).Restore(); err == nil {
		t.Fatal("future-versioned state restored silently")
	}
}

// TestWatchStream is the acceptance test of the watch satellite: a subscribed
// client receives the initial snapshot frame and then exactly one event per
// epoch change, in order, with gapless per-stream sequence numbers — and a
// terminal draining frame (not a torn connection) when the daemon shuts down.
func TestWatchStream(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{}, overcast.AllocatorOptions{})
	wc := h.dial()
	defer wc.Close()
	w, err := wc.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Epoch != 0 || first.Heartbeat || first.Snapshot != nil {
		t.Fatalf("initial frame = %+v, want seq 1, epoch 0, no snapshot", first)
	}

	// Mutations on a second connection; each bumps the epoch exactly once.
	c := h.dial()
	defer c.Close()
	p1 := mustJoin(t, c, []int{0, 3, 9}, 1)
	mustJoin(t, c, []int{5, 12, 20}, 1)
	reb, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Leave(p1.Session); err != nil {
		t.Fatal(err)
	}

	wantEpochs := []uint64{1, 2, reb.Epoch, reb.Epoch + 1}
	for i, wantEpoch := range wantEpochs {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Seq != uint64(i+2) || ev.Epoch != wantEpoch || ev.Heartbeat {
			t.Fatalf("event %d = %+v, want seq %d epoch %d", i, ev, i+2, wantEpoch)
		}
		if ev.Epoch == reb.Epoch {
			// The rebalance materialized a fresh allocation; its event must
			// carry it at the matching epoch.
			if ev.Snapshot == nil || ev.Snapshot.Epoch != reb.Epoch || len(ev.Snapshot.Sessions) != 2 {
				t.Fatalf("rebalance event snapshot = %+v", ev.Snapshot)
			}
		}
	}

	// Drain: the stream ends with a terminal draining error frame.
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	_, err = w.Next()
	rpcErr := new(RPCError)
	if !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeDraining {
		t.Fatalf("post-drain Next = %v, want %s", err, ErrCodeDraining)
	}
	select {
	case err := <-h.serve:
		if err != nil {
			t.Fatalf("Serve after drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain with a live watcher")
	}
}

// TestFaultRPC drives the v1 fault op end to end: a link-down collapses the
// link and advances the epoch (one watch frame), the matching link-up
// restores it (another frame), and a redundant link-up is acknowledged as a
// no-op that notifies nobody. Draining daemons refuse faults.
func TestFaultRPC(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()
	mustJoin(t, c, []int{0, 3, 9}, 1)

	wc := h.dial()
	defer wc.Close()
	w, err := wc.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 1 {
		t.Fatalf("initial watch epoch = %d, want 1", first.Epoch)
	}

	// The incremental Waxman generator guarantees link (0,1).
	down, err := c.Fault(0, 1, FaultLinkDown, 0)
	if err != nil {
		t.Fatal(err)
	}
	if down.Kind != FaultLinkDown || down.Epoch != 2 || down.UnderlayEvents != 1 {
		t.Fatalf("link-down result = %+v", down)
	}
	up, err := c.Fault(1, 0, FaultLinkUp, 0) // order-insensitive endpoints
	if err != nil {
		t.Fatal(err)
	}
	if up.Epoch != 3 || up.UnderlayEvents != 2 {
		t.Fatalf("link-up result = %+v", up)
	}
	if up.Capacity <= down.Capacity*1000 {
		t.Fatalf("recovery capacity %g vs down capacity %g: link did not recover", up.Capacity, down.Capacity)
	}
	// Redundant recovery: acknowledged, but a no-op — same epoch, same count.
	noop, err := c.Fault(0, 1, FaultLinkUp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if noop.Epoch != up.Epoch || noop.UnderlayEvents != up.UnderlayEvents {
		t.Fatalf("redundant link-up result = %+v, want epoch %d events %d", noop, up.Epoch, up.UnderlayEvents)
	}

	// Exactly one watch frame per effective fault, none for the no-op: the
	// next two frames carry epochs 2 and 3, and a following join's frame
	// (epoch 4) arrives immediately after — no frame in between.
	for i, wantEpoch := range []uint64{2, 3} {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("fault event %d: %v", i, err)
		}
		if ev.Epoch != wantEpoch || ev.Heartbeat {
			t.Fatalf("fault event %d = %+v, want epoch %d", i, ev, wantEpoch)
		}
	}
	mustJoin(t, c, []int{5, 12, 20}, 1)
	ev, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Epoch != 4 {
		t.Fatalf("post-noop frame epoch = %d, want 4 (the no-op must not emit a frame)", ev.Epoch)
	}

	// Bad faults are coded rejections.
	rpcErr := new(RPCError)
	if _, err := c.Fault(0, 0, FaultLinkDown, 0); !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeBadParams {
		t.Fatalf("self-loop fault error = %v, want %s", err, ErrCodeBadParams)
	}
	if _, err := c.Fault(0, 1, "sever", 0); !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeBadParams {
		t.Fatalf("unknown kind error = %v, want %s", err, ErrCodeBadParams)
	}
	if _, err := c.Fault(0, 1, FaultDrift, -1); !errors.As(err, &rpcErr) || rpcErr.Code != ErrCodeBadParams {
		t.Fatalf("bad drift factor error = %v, want %s", err, ErrCodeBadParams)
	}

	// Prometheus text surfaces the robustness counters.
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"overcastd_underlay_events_total 2",
		"overcastd_plane_nonmonotone_refills_total",
		"overcastd_shard_fault_resyncs_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}

	// Pre-dial before draining: the listener closes once the drain starts,
	// but established connections are served until DrainTimeout.
	c2 := h.dial()
	defer c2.Close()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	// Faults are mutations: a draining daemon refuses them.
	if _, err := c2.Fault(0, 1, FaultLinkDown, 0); err == nil {
		t.Fatal("fault during drain succeeded")
	}
	select {
	case <-h.serve:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestWatchHeartbeat: an idle stream pushes heartbeat frames at the client's
// requested cadence, repeating the last epoch, and a subscription during a
// drain is rejected outright.
func TestWatchHeartbeat(t *testing.T) {
	h := startHarness(t, t.TempDir(), Options{}, overcast.AllocatorOptions{})
	c := h.dial()
	defer c.Close()
	mustJoin(t, c, []int{0, 3, 9}, 1)

	wc := h.dial()
	defer wc.Close()
	w, err := wc.Watch(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	first, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 1 {
		t.Fatalf("initial epoch = %d, want 1", first.Epoch)
	}
	hb, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Heartbeat || hb.Seq != 2 || hb.Epoch != first.Epoch {
		t.Fatalf("heartbeat frame = %+v", hb)
	}

	// Pre-dial before draining: the listener closes once the drain finishes,
	// but established connections are served until DrainTimeout.
	late := h.dial()
	defer late.Close()
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	lw, err := late.Watch(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lw.Next()
	rpcErr := new(RPCError)
	if err == nil || (errors.As(err, &rpcErr) && rpcErr.Code != ErrCodeDraining) {
		t.Fatalf("watch during drain = %v, want %s rejection or closed conn", err, ErrCodeDraining)
	}
	select {
	case <-h.serve:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestWatchSlowConsumer drives serveWatch over a synchronous in-memory pipe:
// with the stream's write side blocked on an unread event and the buffer
// full, further mutations must kill the watcher (never block the mutation
// path) and the stream must end with the slow-consumer error frame.
func TestWatchSlowConsumer(t *testing.T) {
	nw, err := overcast.WaxmanNetwork(16, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := overcast.NewAllocator(nw, overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer alloc.Close()
	srv, err := NewServer(alloc, Options{SocketPath: filepath.Join(t.TempDir(), "s.sock"), WatchBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	defer client.Close()
	done := make(chan struct{})
	go func() {
		srv.serveWatch(bufio.NewWriter(server), 7, nil)
		server.Close()
		close(done)
	}()

	r := bufio.NewReader(client)
	readFrame := func() *Response {
		t.Helper()
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("read watch frame: %v", err)
		}
		resp, err := DecodeResponse(line[:len(line)-1])
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := readFrame(); !resp.OK || resp.Watch == nil || resp.Watch.Seq != 1 {
		t.Fatalf("initial frame = %+v", resp)
	}

	// Three notifications with nothing read: the first blocks serveWatch on
	// the synchronous pipe, the second fills the one-slot buffer, the third
	// must overflow and kill the watcher rather than wait.
	for i := 0; i < 3; i++ {
		srv.mu.Lock()
		srv.notifyWatchersLocked()
		srv.mu.Unlock()
	}
	srv.watchMu.Lock()
	if len(srv.watchers) != 0 {
		srv.watchMu.Unlock()
		t.Fatal("overflowed watcher still registered")
	}
	srv.watchMu.Unlock()

	// Drain the stream: pending event frames, then the terminal error.
	sawSlowConsumer := false
	for !sawSlowConsumer {
		resp := readFrame()
		if !resp.OK {
			if resp.Code != ErrCodeSlowConsumer || resp.ID != 7 {
				t.Fatalf("terminal frame = %+v, want %s", resp, ErrCodeSlowConsumer)
			}
			sawSlowConsumer = true
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveWatch did not return after slow-consumer kill")
	}
}
