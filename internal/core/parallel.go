package core

import (
	"runtime"
	"sync"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// mostResult is one session's minimum overlay spanning tree with its raw
// (unnormalized) dual length.
type mostResult struct {
	tree *overlay.Tree
	len  float64
	err  error
}

// mostRunner evaluates every oracle's MinTree under successive length
// functions. It owns a persistent worker pool with one overlay.Scratch per
// worker, so a solver's thousands of iterations share goroutines and buffers
// instead of rebuilding both every iteration. The reduction is deterministic:
// results land in a slice indexed by session, so scheduling order never
// affects output. Create with newMOSTRunner and release with close (idempotent
// to leak-check: close is required only for the parallel variant's workers).
type mostRunner struct {
	oracles []overlay.TreeOracle
	out     []mostResult
	workers int

	// Sequential mode: one scratch, no goroutines.
	seq *overlay.Scratch

	// Parallel mode: persistent workers fed per-batch via jobs; d is the
	// batch's length function, published before the sends and therefore
	// visible to workers via the channel's happens-before edge.
	jobs chan int
	wg   sync.WaitGroup
	d    graph.Lengths
}

// newMOSTRunner builds a runner over the problem's oracles. parallel requests
// fan-out across GOMAXPROCS workers; with one oracle or one CPU it degrades
// to the sequential single-scratch path.
func newMOSTRunner(g *graph.Graph, oracles []overlay.TreeOracle, parallel bool) *mostRunner {
	k := len(oracles)
	r := &mostRunner{oracles: oracles, out: make([]mostResult, k), workers: 1}
	if parallel && k > 1 {
		if w := runtime.GOMAXPROCS(0); w > 1 {
			if w > k {
				w = k
			}
			r.workers = w
		}
	}
	if r.workers == 1 {
		r.seq = overlay.NewScratch(g)
		return r
	}
	r.jobs = make(chan int)
	for w := 0; w < r.workers; w++ {
		go func() {
			sc := overlay.NewScratch(g)
			for i := range r.jobs {
				r.eval(i, sc)
				r.wg.Done()
			}
		}()
	}
	return r
}

// eval computes oracle i's tree into the output slot.
func (r *mostRunner) eval(i int, sc *overlay.Scratch) {
	t, err := overlay.MinTreeWith(r.oracles[i], r.d, sc)
	if err != nil {
		r.out[i] = mostResult{err: err}
		return
	}
	r.out[i] = mostResult{tree: t, len: t.LengthUnder(r.d)}
}

// compute evaluates all oracles under d. The returned slice is reused across
// calls — consume it before the next compute.
func (r *mostRunner) compute(d graph.Lengths) []mostResult {
	r.d = d
	if r.workers == 1 {
		for i := range r.oracles {
			r.eval(i, r.seq)
		}
		return r.out
	}
	r.wg.Add(len(r.oracles))
	for i := range r.oracles {
		r.jobs <- i
	}
	r.wg.Wait()
	return r.out
}

// close releases the worker pool. The runner must not be used afterwards.
func (r *mostRunner) close() {
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
}

// parallelFor runs fn(i) for i in [0,n) across GOMAXPROCS workers and blocks
// until all complete. fn must be safe to run concurrently for distinct i.
// Used by the experiment harness for trial fan-outs.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
