package core_test

import (
	"math"
	"testing"

	"overcast/internal/core"
	"overcast/internal/exact"
	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func TestMCFOptionsValidation(t *testing.T) {
	net, _ := topology.Ring(5, 10)
	p := buildProblem(t, net.Graph, [][]graph.NodeID{{0, 2}}, nil, core.RoutingIP)
	if _, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: 0.7}); err == nil {
		t.Error("eps=0.7 accepted")
	}
}

func TestMCFMatchesExactM2SmallInstances(t *testing.T) {
	const eps = 0.05
	for trial := 0; trial < 5; trial++ {
		r := rng.New(uint64(300 + trial))
		net, err := topology.Waxman(topology.DefaultWaxman(25), r)
		if err != nil {
			t.Fatal(err)
		}
		g := net.Graph
		perm := r.Perm(25)
		memberSets := [][]graph.NodeID{
			{perm[0], perm[1], perm[2], perm[3]},
			{perm[4], perm[5], perm[6]},
		}
		demands := []float64{1 + float64(r.Intn(3)), 1 + float64(r.Intn(3))}
		p := buildProblem(t, g, memberSets, demands, core.RoutingIP)
		res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckFeasible(1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex, err := exact.MaxConcurrentFlow(g, exactOracles(t, p), 6)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lambda > ex.Value+1e-6 {
			t.Fatalf("trial %d: lambda %v exceeds optimum %v", trial, res.Lambda, ex.Value)
		}
		if res.Lambda < (1-3*eps)*ex.Value-1e-9 {
			t.Fatalf("trial %d: lambda %v below (1-3eps)*%v", trial, res.Lambda, ex.Value)
		}
	}
}

func TestMCFDumbbellFairSplit(t *testing.T) {
	// Two 2-member sessions across a capacity-10 bridge, equal demands:
	// lambda must approach 5 and the rates must be nearly equal.
	net, _ := topology.Dumbbell(3, 100, 10)
	p := buildProblem(t, net.Graph, [][]graph.NodeID{{0, 3}, {1, 4}}, nil, core.RoutingIP)
	res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 5*0.85 || res.Lambda > 5+1e-6 {
		t.Fatalf("lambda %v, want ~5", res.Lambda)
	}
	r0, r1 := res.SessionRate(0), res.SessionRate(1)
	if math.Abs(r0-r1) > 0.15*math.Max(r0, r1) {
		t.Fatalf("rates %v vs %v not near-equal", r0, r1)
	}
}

func TestMCFRaisesMinRateOverMaxFlow(t *testing.T) {
	// The central fairness claim: MaxConcurrentFlow's minimum session rate
	// is at least MaxFlow's, which may starve the small session.
	r := rng.New(42)
	net, err := topology.Waxman(topology.DefaultWaxman(50), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(50)
	sets := [][]graph.NodeID{perm[0:7], perm[7:12]}
	p := buildProblem(t, net.Graph, sets, []float64{100, 100}, core.RoutingIP)
	const eps = 0.05
	mf, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	mcf, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	if mcf.MinSessionRate() < mf.MinSessionRate()*(1-3*eps)-1e-9 {
		t.Fatalf("MCF min rate %v below MaxFlow min rate %v", mcf.MinSessionRate(), mf.MinSessionRate())
	}
	// And MaxFlow's throughput dominates MCF's (it maximizes it).
	if mf.OverallThroughput() < mcf.OverallThroughput()*(1-3*eps)-1e-9 {
		t.Fatalf("MaxFlow throughput %v below MCF %v", mf.OverallThroughput(), mcf.OverallThroughput())
	}
}

func TestMCFSurplusPassOnlyAdds(t *testing.T) {
	r := rng.New(21)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(40)
	sets := [][]graph.NodeID{perm[0:6], perm[6:10]}
	p := buildProblem(t, net.Graph, sets, []float64{100, 100}, core.RoutingIP)
	const eps = 0.07
	pure, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	withSurplus, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps, SurplusPass: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := withSurplus.CheckFeasible(1e-6); err != nil {
		t.Fatal(err)
	}
	if withSurplus.OverallThroughput() < pure.OverallThroughput()*0.999 {
		t.Fatalf("surplus pass reduced throughput: %v -> %v",
			pure.OverallThroughput(), withSurplus.OverallThroughput())
	}
	// Each session keeps (almost) its fair share.
	for i := range p.Sessions {
		if withSurplus.SessionRate(i) < pure.SessionRate(i)*0.95 {
			t.Fatalf("session %d lost its fair share: %v -> %v",
				i, pure.SessionRate(i), withSurplus.SessionRate(i))
		}
	}
}

func TestMCFBetasAreSingleSessionMaxFlows(t *testing.T) {
	// Beta values reported by the prestep must match running MaxFlow on
	// each session alone.
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]graph.NodeID{{0, 10, 20}, {5, 25}}
	p := buildProblem(t, net.Graph, sets, nil, core.RoutingIP)
	const eps = 0.1
	res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sets {
		solo := buildProblem(t, net.Graph, sets[i:i+1], nil, core.RoutingIP)
		mf, err := core.MaxFlow(solo, core.MaxFlowOptions{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Betas[i]-mf.SessionRate(0)) > 1e-9 {
			t.Fatalf("beta[%d] = %v, solo max flow %v", i, res.Betas[i], mf.SessionRate(0))
		}
	}
	if res.PrestepMSTOps <= 0 {
		t.Fatal("prestep ops not counted")
	}
}

func TestMCFLambdaIsMinDemandRatio(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	p := buildProblem(t, net.Graph, [][]graph.NodeID{{0, 15, 29}, {7, 21}}, []float64{2, 5}, core.RoutingIP)
	res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for i, s := range p.Sessions {
		if v := res.SessionRate(i) / s.Demand; v < min {
			min = v
		}
	}
	if math.Abs(min-res.Lambda) > 1e-9 {
		t.Fatalf("Lambda %v != min ratio %v", res.Lambda, min)
	}
}
