package routing

import (
	"testing"
	"testing/quick"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestIPRoutesOnPath(t *testing.T) {
	net, err := topology.Path(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewIPRoutes(net.Graph, allNodes(net.Graph))
	p, err := rt.Route(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hops() != 4 || p.Src() != 0 || p.Dst() != 4 {
		t.Fatalf("route 0->4 wrong: %+v", p)
	}
	if err := p.Validate(net.Graph); err != nil {
		t.Fatal(err)
	}
	if rt.Hops(0, 4) != 4 || rt.Hops(2, 3) != 1 {
		t.Fatal("hop counts wrong")
	}
}

func TestIPRoutesSelfRoute(t *testing.T) {
	net, _ := topology.Ring(4, 1)
	rt := NewIPRoutes(net.Graph, allNodes(net.Graph))
	p, err := rt.Route(2, 2)
	if err != nil || p.Hops() != 0 || p.Src() != 2 {
		t.Fatalf("self route wrong: %+v err=%v", p, err)
	}
}

func TestIPRoutesSymmetry(t *testing.T) {
	net, err := topology.Waxman(topology.DefaultWaxman(40), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rt := NewIPRoutes(net.Graph, allNodes(net.Graph))
	for u := 0; u < 40; u += 3 {
		for v := u + 1; v < 40; v += 5 {
			puv, err1 := rt.Route(u, v)
			pvu, err2 := rt.Route(v, u)
			if err1 != nil || err2 != nil {
				t.Fatalf("route error: %v %v", err1, err2)
			}
			rev := pvu.Reverse()
			if len(puv.Edges) != len(rev.Edges) {
				t.Fatalf("asymmetric lengths %d vs %d", len(puv.Edges), len(rev.Edges))
			}
			for i := range puv.Edges {
				if puv.Edges[i] != rev.Edges[i] {
					t.Fatalf("route(%d,%d) not the reverse of route(%d,%d)", u, v, v, u)
				}
			}
		}
	}
}

func TestIPRoutesShortest(t *testing.T) {
	// Routes must be hop-count shortest: compare against BFS hop counts on a
	// random graph.
	net, err := topology.Waxman(topology.DefaultWaxman(50), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	rt := NewIPRoutes(net.Graph, allNodes(net.Graph))
	unit := graph.NewLengths(net.Graph, 1)
	dist, _ := ShortestPaths(net.Graph, 0, unit)
	for v := 1; v < 50; v++ {
		p, err := rt.Route(0, v)
		if err != nil {
			t.Fatal(err)
		}
		if float64(p.Hops()) != dist[v] {
			t.Fatalf("route 0->%d has %d hops, shortest is %v", v, p.Hops(), dist[v])
		}
	}
}

func TestIPRoutesUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	rt := NewIPRoutes(g, []graph.NodeID{0, 2})
	if _, err := rt.Route(0, 2); err == nil {
		t.Fatal("route across components did not error")
	}
	if rt.Hops(0, 2) != -1 {
		t.Fatal("unreachable hops should be -1")
	}
}

func TestIPRoutesPanicsWithoutTree(t *testing.T) {
	net, _ := topology.Ring(5, 1)
	rt := NewIPRoutes(net.Graph, []graph.NodeID{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("querying unindexed endpoints did not panic")
		}
	}()
	rt.Route(3, 4)
}

func TestIPRoutesPartialIndex(t *testing.T) {
	// Route(u,v) must work when only one endpoint's tree exists.
	net, _ := topology.Ring(6, 1)
	rt := NewIPRoutes(net.Graph, []graph.NodeID{5})
	p, err := rt.Route(5, 2)
	if err != nil || p.Src() != 5 || p.Dst() != 2 {
		t.Fatalf("route via single tree failed: %+v %v", p, err)
	}
	p2, err := rt.Route(2, 5)
	if err != nil || p2.Src() != 2 || p2.Dst() != 5 {
		t.Fatalf("reverse route via single tree failed: %+v %v", p2, err)
	}
	if rt.Hops(2, 5) != p.Hops() {
		t.Fatal("hops via single tree wrong")
	}
}

func TestMaxHops(t *testing.T) {
	net, _ := topology.Path(6, 1)
	rt := NewIPRoutes(net.Graph, allNodes(net.Graph))
	if got := rt.MaxHops(allNodes(net.Graph)); got != 5 {
		t.Fatalf("MaxHops = %d, want 5", got)
	}
	if got := rt.MaxHops([]graph.NodeID{1, 3}); got != 2 {
		t.Fatalf("MaxHops subset = %d, want 2", got)
	}
}

func TestDijkstraMatchesBFSOnUnitLengths(t *testing.T) {
	check := func(seed uint64) bool {
		net, err := topology.Waxman(topology.DefaultWaxman(30), rng.New(seed))
		if err != nil {
			return false
		}
		g := net.Graph
		unit := graph.NewLengths(g, 1)
		dist, parent := ShortestPaths(g, 0, unit)
		rt := NewIPRoutes(g, []graph.NodeID{0})
		for v := 1; v < g.NumNodes(); v++ {
			p, err := DijkstraRoute(g, 0, v, parent)
			if err != nil {
				return false
			}
			if err := p.Validate(g); err != nil {
				return false
			}
			if float64(p.Hops()) != dist[v] {
				return false
			}
			if rt.Hops(0, v) != int(dist[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraRespectsWeights(t *testing.T) {
	// Triangle where the direct edge is expensive: 0-2 costs 10, 0-1-2
	// costs 2.
	b := graph.NewBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := b.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	d := graph.NewLengths(g, 1)
	id02, _ := g.EdgeBetween(0, 2)
	d[id02] = 10
	dist, parent := ShortestPaths(g, 0, d)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2", dist[2])
	}
	p, err := DijkstraRoute(g, 0, 2, parent)
	if err != nil || p.Hops() != 2 {
		t.Fatalf("route should detour: %+v %v", p, err)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	_, parent := ShortestPaths(g, 0, graph.NewLengths(g, 1))
	if _, err := DijkstraRoute(g, 0, 2, parent); err == nil {
		t.Fatal("unreachable route did not error")
	}
}

func TestPathReverse(t *testing.T) {
	p := Path{Nodes: []graph.NodeID{1, 2, 3}, Edges: []graph.EdgeID{10, 11}}
	r := p.Reverse()
	if r.Src() != 3 || r.Dst() != 1 || r.Edges[0] != 11 || r.Edges[1] != 10 {
		t.Fatalf("Reverse wrong: %+v", r)
	}
	// Reversing twice is the identity.
	rr := r.Reverse()
	for i := range p.Nodes {
		if rr.Nodes[i] != p.Nodes[i] {
			t.Fatal("double reverse not identity")
		}
	}
}

func TestPathValidate(t *testing.T) {
	net, _ := topology.Path(3, 1)
	g := net.Graph
	e01, _ := g.EdgeBetween(0, 1)
	e12, _ := g.EdgeBetween(1, 2)
	good := Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{e01, e12}}
	if err := good.Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := Path{Nodes: []graph.NodeID{0, 2}, Edges: []graph.EdgeID{e01}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("mismatched edge accepted")
	}
	if err := (Path{}).Validate(g); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := (Path{Nodes: []graph.NodeID{0, 1}}).Validate(g); err == nil {
		t.Fatal("edge/node count mismatch accepted")
	}
	if err := (Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{99}}).Validate(g); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func BenchmarkBFSRouteTable100(b *testing.B) {
	net, err := topology.Waxman(topology.DefaultWaxman(100), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	nodes := allNodes(net.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIPRoutes(net.Graph, nodes)
	}
}

func BenchmarkDijkstra100(b *testing.B) {
	net, err := topology.Waxman(topology.DefaultWaxman(100), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewLengths(net.Graph, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPaths(net.Graph, i%100, d)
	}
}
