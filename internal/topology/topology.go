// Package topology generates the physical networks the paper evaluates on.
//
// The paper uses the Boston BRITE generator: a flat 100-node router-level
// Waxman topology for the Sec. III/IV/V experiments and a two-level topology
// (10-node AS-level Waxman, each AS expanded to a 100-node router-level
// Waxman) for the Sec. VI evaluation, with uniform link capacity 100. BRITE
// itself is a closed external tool, so this package reimplements its models
// from the BRITE documentation: nodes are placed uniformly at random on an
// integer plane, and the graph grows incrementally, each new node attaching
// to m existing nodes chosen by the Waxman probability
//
//	P(u,v) = alpha * exp(-d(u,v) / (beta * L))
//
// where d is Euclidean distance and L is the maximum possible distance.
// Incremental growth with m >= 1 guarantees connectivity, matching BRITE's
// default "incremental" mode. A Barabási–Albert preferential-attachment
// model and several deterministic synthetic topologies (ring, grid, star,
// dumbbell, complete) are provided for baselines and tests.
package topology

import (
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/rng"
)

// Point is a node position on the generation plane, used by distance-aware
// models (Waxman) and kept around for visualization/export.
type Point struct{ X, Y float64 }

// Network couples a physical graph with generation metadata.
type Network struct {
	Graph *graph.Graph
	// Pos[v] is the plane position of node v (zero value for models that do
	// not place nodes).
	Pos []Point
	// ASOf[v] is the AS index of node v for two-level topologies, or nil for
	// flat ones.
	ASOf []int
	// Name describes the generating model, for logs and reports.
	Name string
}

// WaxmanConfig parametrizes the BRITE-style incremental Waxman model.
type WaxmanConfig struct {
	N        int     // number of nodes, >= 1
	M        int     // edges added per new node (BRITE default 2)
	Alpha    float64 // Waxman alpha (BRITE default 0.15)
	Beta     float64 // Waxman beta (BRITE default 0.2)
	Capacity float64 // uniform link capacity (paper uses 100)
	PlaneKM  float64 // side length of the placement plane (default 1000)
}

// DefaultWaxman returns the configuration used by the paper's Sec. III
// experiments: n nodes, m = 2, BRITE default alpha/beta, capacity 100.
func DefaultWaxman(n int) WaxmanConfig {
	return WaxmanConfig{N: n, M: 2, Alpha: 0.15, Beta: 0.2, Capacity: 100, PlaneKM: 1000}
}

func (c *WaxmanConfig) normalize() error {
	if c.N < 1 {
		return fmt.Errorf("topology: Waxman N=%d < 1", c.N)
	}
	if c.M < 1 {
		c.M = 2
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.15
	}
	if c.Beta <= 0 {
		c.Beta = 0.2
	}
	if c.Capacity <= 0 {
		c.Capacity = 100
	}
	if c.PlaneKM <= 0 {
		c.PlaneKM = 1000
	}
	return nil
}

// Waxman generates a connected BRITE-style incremental Waxman topology.
func Waxman(cfg WaxmanConfig, r *rng.RNG) (*Network, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pos := make([]Point, cfg.N)
	for i := range pos {
		pos[i] = Point{X: r.Float64() * cfg.PlaneKM, Y: r.Float64() * cfg.PlaneKM}
	}
	maxDist := cfg.PlaneKM * math.Sqrt2
	b := graph.NewBuilder(cfg.N)
	weights := make([]float64, 0, cfg.N)
	for v := 1; v < cfg.N; v++ {
		// Connect node v to up to M existing nodes, sampled by Waxman
		// probability, always at least one to preserve connectivity.
		degree := cfg.M
		if v < cfg.M {
			degree = v
		}
		for k := 0; k < degree; k++ {
			weights = weights[:0]
			for u := 0; u < v; u++ {
				if b.HasEdge(u, v) {
					weights = append(weights, 0)
					continue
				}
				d := dist(pos[u], pos[v])
				weights = append(weights, cfg.Alpha*math.Exp(-d/(cfg.Beta*maxDist)))
			}
			u := r.WeightedChoice(weights)
			if b.HasEdge(u, v) {
				// All candidates exhausted (weights all zero fell back to
				// uniform); skip the remaining stubs for this node.
				break
			}
			if err := b.AddEdge(u, v, cfg.Capacity); err != nil {
				return nil, err
			}
		}
	}
	g := b.Build()
	return &Network{Graph: g, Pos: pos, Name: fmt.Sprintf("waxman(n=%d,m=%d)", cfg.N, cfg.M)}, nil
}

// BarabasiAlbert generates a connected preferential-attachment topology with
// n nodes and m edges per new node, uniform capacity.
func BarabasiAlbert(n, m int, capacity float64, r *rng.RNG) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: BA n=%d < 1", n)
	}
	if m < 1 {
		m = 2
	}
	if capacity <= 0 {
		capacity = 100
	}
	b := graph.NewBuilder(n)
	deg := make([]float64, n)
	for v := 1; v < n; v++ {
		k := m
		if v < m {
			k = v
		}
		for added := 0; added < k; added++ {
			// Preferential attachment: weight = degree + 1 (the +1 lets
			// isolated early nodes be chosen).
			weights := make([]float64, v)
			for u := 0; u < v; u++ {
				if b.HasEdge(u, v) {
					weights[u] = 0
				} else {
					weights[u] = deg[u] + 1
				}
			}
			u := r.WeightedChoice(weights)
			if b.HasEdge(u, v) {
				break
			}
			if err := b.AddEdge(u, v, capacity); err != nil {
				return nil, err
			}
			deg[u]++
			deg[v]++
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("ba(n=%d,m=%d)", n, m)}, nil
}

// TwoLevelConfig parametrizes the Sec. VI evaluation topology: an AS-level
// Waxman graph whose every node is expanded into a router-level Waxman
// graph, with each AS-level edge realized as a link between random border
// routers of the two ASes.
type TwoLevelConfig struct {
	ASes          int // number of ASes (paper: 10)
	RoutersPerAS  int // routers per AS (paper: 100)
	MAS           int // AS-level edges per new AS
	MRouter       int // router-level edges per new router
	Capacity      float64
	InterASDegree int // number of physical links realizing each AS-level edge (default 1)
}

// DefaultTwoLevel returns the paper's Sec. VI setting scaled by the given
// per-AS router count (the paper uses 10 ASes x 100 routers).
func DefaultTwoLevel(ases, routersPerAS int) TwoLevelConfig {
	return TwoLevelConfig{
		ASes: ases, RoutersPerAS: routersPerAS,
		MAS: 2, MRouter: 2, Capacity: 100, InterASDegree: 1,
	}
}

// TwoLevel generates a connected two-level AS/router topology. Both the
// AS-level skeleton and every per-AS router graph use the grid-accelerated
// Waxman sampler (WaxmanGrid), so paper-scale and larger two-level
// topologies (10 AS x 100+ routers, or hundreds of ASes) build in
// milliseconds; edge sets for a fixed seed differ from the naive generator
// the pre-grid releases used, but the degree and connectivity statistics
// are identical (see TestWaxmanGridMatchesNaiveDistribution).
func TwoLevel(cfg TwoLevelConfig, r *rng.RNG) (*Network, error) {
	if cfg.ASes < 1 || cfg.RoutersPerAS < 1 {
		return nil, fmt.Errorf("topology: two-level needs >=1 AS and router, got %d/%d", cfg.ASes, cfg.RoutersPerAS)
	}
	if cfg.MAS < 1 {
		cfg.MAS = 2
	}
	if cfg.MRouter < 1 {
		cfg.MRouter = 2
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 100
	}
	if cfg.InterASDegree < 1 {
		cfg.InterASDegree = 1
	}

	// AS-level skeleton.
	asNet, err := WaxmanGrid(WaxmanConfig{
		N: cfg.ASes, M: cfg.MAS, Capacity: cfg.Capacity,
	}, r.Split(0))
	if err != nil {
		return nil, err
	}

	total := cfg.ASes * cfg.RoutersPerAS
	b := graph.NewBuilder(total)
	pos := make([]Point, total)
	asOf := make([]int, total)

	// Router-level graph inside each AS, offset into the global id space.
	for a := 0; a < cfg.ASes; a++ {
		sub, err := WaxmanGrid(WaxmanConfig{
			N: cfg.RoutersPerAS, M: cfg.MRouter, Capacity: cfg.Capacity,
		}, r.Split(uint64(a)+1))
		if err != nil {
			return nil, err
		}
		off := a * cfg.RoutersPerAS
		for v := 0; v < cfg.RoutersPerAS; v++ {
			// Shift each AS's plane so positions stay meaningful.
			pos[off+v] = Point{
				X: sub.Pos[v].X + asNet.Pos[a].X*float64(cfg.RoutersPerAS),
				Y: sub.Pos[v].Y + asNet.Pos[a].Y*float64(cfg.RoutersPerAS),
			}
			asOf[off+v] = a
		}
		for _, e := range sub.Graph.Edges {
			if err := b.AddEdge(off+e.U, off+e.V, e.Capacity); err != nil {
				return nil, err
			}
		}
	}

	// Realize each AS-level edge as InterASDegree border-router links.
	borderRNG := r.Split(1 << 32)
	for _, ase := range asNet.Graph.Edges {
		for k := 0; k < cfg.InterASDegree; k++ {
			for attempt := 0; ; attempt++ {
				u := ase.U*cfg.RoutersPerAS + borderRNG.Intn(cfg.RoutersPerAS)
				v := ase.V*cfg.RoutersPerAS + borderRNG.Intn(cfg.RoutersPerAS)
				if !b.HasEdge(u, v) {
					if err := b.AddEdge(u, v, cfg.Capacity); err != nil {
						return nil, err
					}
					break
				}
				if attempt > 100 {
					break // ASes too small to host more distinct links
				}
			}
		}
	}

	return &Network{
		Graph: b.Build(), Pos: pos, ASOf: asOf,
		Name: fmt.Sprintf("twolevel(as=%d,routers=%d)", cfg.ASes, cfg.RoutersPerAS),
	}, nil
}

func dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// LinkDelays returns per-edge Euclidean lengths — BRITE's propagation-delay
// metric — for use as static routing weights ("shortest-path routing" in the
// paper runs over these). Networks without positions (synthetic topologies)
// get unit weights. A tiny floor keeps coincident nodes from producing
// zero-weight edges.
func (n *Network) LinkDelays() graph.Lengths {
	w := graph.NewLengths(n.Graph, 1)
	if len(n.Pos) != n.Graph.NumNodes() {
		return w
	}
	for e, edge := range n.Graph.Edges {
		d := dist(n.Pos[edge.U], n.Pos[edge.V])
		if d < 1e-9 {
			d = 1e-9
		}
		w[e] = d
	}
	return w
}
