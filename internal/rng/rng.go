// Package rng provides a small, fast, deterministic, splittable
// pseudo-random number generator used by every stochastic component of the
// library (topology generation, randomized rounding, arrival sequences).
//
// Determinism matters here: every experiment in the paper reproduction must
// be re-runnable bit-for-bit from a seed, including experiments that fan out
// across goroutines. math/rand's global source is neither splittable nor
// stable across fan-out orders, so we implement xoshiro256** (public domain,
// Blackman & Vigna) with a SplitMix64 seeder. Each parallel task derives its
// own child generator via Split, which is order-independent: Split(i) depends
// only on the parent seed and i.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is invalid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via SplitMix64, as recommended by
// the xoshiro authors to avoid correlated low-entropy states.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1 // xoshiro must not be seeded with all zeros
	}
	return r
}

// Split derives the i-th child generator. Children with distinct i (or from
// parents with distinct seeds) are statistically independent streams, and the
// derivation is order-independent, so parallel tasks may split in any order.
func (r *RNG) Split(i uint64) *RNG {
	// Mix the parent state with the child index through SplitMix64.
	x := r.s0 ^ (r.s2 << 1) ^ (i * 0xd1342543de82ef95)
	return New(splitmix64(&x) ^ i)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inverse-transform sampling.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	if k*4 >= n {
		// Dense case: partial Fisher–Yates.
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return append([]int(nil), p[:k]...)
	}
	// Sparse case: rejection into a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// WeightedChoice returns an index i with probability weights[i]/Σweights.
// Non-positive total weight falls back to uniform choice. It panics on an
// empty slice.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice on empty slice")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
