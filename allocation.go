package overcast

import (
	"fmt"

	"overcast/internal/baseline"
	"overcast/internal/core"
	"overcast/internal/rng"
	"overcast/internal/sim"
)

// Tree summarizes one overlay tree of an allocation.
type Tree struct {
	// Pairs are the overlay edges as member-index pairs (indices into the
	// session's Members slice).
	Pairs [][2]int
	// Rate is the flow carried by this tree.
	Rate float64
	// PhysicalHops is the total number of physical link traversals
	// (Σ_e n_e(t)).
	PhysicalHops int
}

// Allocation is a feasible multi-tree flow for every session of a System.
type Allocation struct {
	sys *System
	sol *core.Solution
}

// SessionRate returns the total rate allocated to session i.
func (a *Allocation) SessionRate(i int) float64 { return a.sol.SessionRate(i) }

// OverallThroughput returns Σ_i (|S_i|-1)·rate_i, the aggregate receiving
// rate over all receivers.
func (a *Allocation) OverallThroughput() float64 { return a.sol.OverallThroughput() }

// MinSessionRate returns the smallest session rate.
func (a *Allocation) MinSessionRate() float64 { return a.sol.MinSessionRate() }

// TreeCount returns the number of distinct trees carrying flow for session i.
func (a *Allocation) TreeCount(i int) int { return a.sol.TreeCount(i) }

// Trees returns session i's trees with their rates, highest rate first not
// guaranteed — use RateDistribution for sorted rates.
func (a *Allocation) Trees(i int) []Tree {
	var out []Tree
	for _, tf := range a.sol.Flows[i] {
		if tf.Rate <= 0 {
			continue
		}
		pairs := make([][2]int, len(tf.Tree.Pairs))
		copy(pairs, tf.Tree.Pairs)
		out = append(out, Tree{Pairs: pairs, Rate: tf.Rate, PhysicalHops: tf.Tree.TotalHops()})
	}
	return out
}

// RateDistribution returns session i's tree rates sorted descending — the
// paper's "asymmetric rate distribution" data.
func (a *Allocation) RateDistribution(i int) []float64 { return a.sol.RateDistribution(i) }

// LinkUtilizations returns the utilization ratio of every physical link
// touched by the allocation, sorted descending.
func (a *Allocation) LinkUtilizations() []float64 { return a.sol.Utilizations() }

// MaxCongestion returns the maximum link load/capacity ratio (<= 1 for all
// allocations this library produces).
func (a *Allocation) MaxCongestion() float64 { return a.sol.MaxCongestion() }

// Verify re-checks every capacity constraint and tree invariant; it returns
// nil for every allocation produced by this library.
func (a *Allocation) Verify() error { return a.sol.CheckFeasible(1e-9) }

// SpanningTreeOps reports how many minimum-overlay-spanning-tree
// computations the producing algorithm performed (the paper's running-time
// unit).
func (a *Allocation) SpanningTreeOps() int { return a.sol.MSTOps }

// SimReport is the outcome of replaying an allocation on the concurrent
// fluid simulator.
type SimReport struct {
	// DeliveredRate[i] is the measured delivery rate of session i.
	DeliveredRate []float64
	// OfferedRate[i] is the configured sending rate of session i.
	OfferedRate []float64
	// OverallDelivered aggregates over receivers, comparable to
	// OverallThroughput.
	OverallDelivered float64
	// PeakLinkUtilization is the highest instantaneous link load observed.
	PeakLinkUtilization float64
}

// Simulate pushes the allocation's traffic through the network for the
// given number of steps of dt seconds each and reports what was actually
// delivered. Feasible allocations deliver their full offered rates.
func (a *Allocation) Simulate(steps int, dt float64) (*SimReport, error) {
	rep, err := sim.Run(a.sol, sim.Config{Steps: steps, DT: dt})
	if err != nil {
		return nil, err
	}
	return &SimReport{
		DeliveredRate:       rep.DeliveredRate,
		OfferedRate:         rep.OfferedRate,
		OverallDelivered:    rep.OverallDelivered,
		PeakLinkUtilization: rep.PeakLinkUtilization,
	}, nil
}

// MaxFlow computes a feasible multi-tree allocation whose weighted
// aggregate throughput is within `ratio` (e.g. 0.95) of the optimum — the
// paper's Table I FPTAS. Larger sessions are favored, as the objective
// weights sessions by receiver count.
func (s *System) MaxFlow(ratio float64) (*Allocation, error) {
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("overcast: ratio must be in (0,1), got %v", ratio)
	}
	sol, err := core.MaxFlow(s.problem, core.MaxFlowOptions{Epsilon: core.RatioToEpsilon(ratio), Parallel: true})
	if err != nil {
		return nil, err
	}
	return &Allocation{sys: s, sol: sol}, nil
}

// FairAllocation is a MaxConcurrentFlow result.
type FairAllocation struct {
	*Allocation
	// Lambda is min_i rate_i/dem(i): every session is guaranteed at least
	// Lambda times its demand.
	Lambda float64
}

// MaxConcurrentFlow computes a weighted max-min fair allocation within
// `ratio` of the optimal concurrent ratio — the paper's Table III FPTAS.
// With surplus set, leftover capacity is back-filled MaxFlow-style after
// every session has secured its fair share (the behaviour behind the
// paper's Table IV rates).
func (s *System) MaxConcurrentFlow(ratio float64, surplus bool) (*FairAllocation, error) {
	if ratio <= 0 || ratio >= 1 {
		return nil, fmt.Errorf("overcast: ratio must be in (0,1), got %v", ratio)
	}
	res, err := core.MaxConcurrentFlow(s.problem, core.MaxConcurrentFlowOptions{
		Epsilon:     core.MCFRatioToEpsilon(ratio),
		SurplusPass: surplus,
		Parallel:    true,
	})
	if err != nil {
		return nil, err
	}
	return &FairAllocation{Allocation: &Allocation{sys: s, sol: res.Solution}, Lambda: res.Lambda}, nil
}

// LimitTrees restricts a fractional allocation to at most n trees per
// session by rate-proportional sampling (Sec. IV-D's practical algorithm);
// the result keeps the sampled trees' original rates and stays feasible.
func (s *System) LimitTrees(a *Allocation, n int, seed uint64) (*Allocation, error) {
	sol, err := core.SelectTrees(s.problem, a.sol, n, rngFor(seed))
	if err != nil {
		return nil, err
	}
	return &Allocation{sys: s, sol: sol}, nil
}

// RoundToSingleTrees applies Random-MinCongestion (Table V): every session
// gets exactly one tree drawn with probability proportional to its
// fractional rate, scaled to feasibility. The returned congestion is the
// pre-scaling maximum link congestion at full demands (the quantity
// Theorem 3 bounds).
func (s *System) RoundToSingleTrees(a *Allocation, seed uint64) (*Allocation, float64, error) {
	res, err := core.RandomMinCongestion(s.problem, a.sol, rngFor(seed))
	if err != nil {
		return nil, 0, err
	}
	return &Allocation{sys: s, sol: res.Feasible}, res.MaxCongestion, nil
}

// SingleTreeBaseline allocates one minimum-hop tree per session (the
// single-tree overlay multicast the paper's multi-tree approach improves
// on).
func (s *System) SingleTreeBaseline() (*Allocation, error) {
	sol, err := baseline.SingleTree(s.problem)
	if err != nil {
		return nil, err
	}
	return &Allocation{sys: s, sol: sol}, nil
}

// SplitStreamBaseline allocates an interior-node-disjoint forest per
// session (SplitStream-style stripes).
func (s *System) SplitStreamBaseline() (*Allocation, error) {
	sol, err := baseline.SplitStream(s.problem)
	if err != nil {
		return nil, err
	}
	return &Allocation{sys: s, sol: sol}, nil
}

// RandomForestBaseline allocates m uniformly random trees per session.
func (s *System) RandomForestBaseline(m int, seed uint64) (*Allocation, error) {
	sol, err := baseline.RandomForest(s.problem, m, rngFor(seed))
	if err != nil {
		return nil, err
	}
	return &Allocation{sys: s, sol: sol}, nil
}

// rngFor derives a deterministic generator from a seed.
func rngFor(seed uint64) *rng.RNG { return rng.New(seed) }
