package experiments

// The scale tier measures the regime the ROADMAP north-star cares about:
// Waxman/BRITE-style topologies in the 1,000-10,000 node range with dozens to
// hundreds of competing sessions, far beyond the paper's 100-node Table/Figure
// instances. It is consumed by the BenchmarkScale* benchmarks in bench_test.go
// and by `cmd/experiments -scale large`.

import (
	"fmt"
	"time"

	"overcast/internal/core"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
	"overcast/internal/workload"
)

// ScaleConfig describes one large-instance scenario.
type ScaleConfig struct {
	Nodes       int     // topology size (2,000-10,000 for the real tier)
	Sessions    int     // number of competing sessions (64-256)
	SessionSize int     // members per session (source + receivers)
	Degree      int     // Waxman edges per new node (default 2)
	Capacity    float64 // uniform link capacity (default 100)
	Demand      float64 // per-session demand (default 100)
	Arbitrary   bool    // arbitrary dynamic routing instead of fixed IP
	// Scenario selects a named workload scenario (see internal/workload).
	// Empty keeps the legacy uniform construction — naive Waxman topology,
	// uniform Capacity/Demand, fixed SessionSize — bit-identical to earlier
	// releases for a given seed. Non-empty switches to the grid-accelerated
	// Waxman generator and the scenario's capacity/demand/size/popularity
	// distributions; SessionSize and Demand are then owned by the scenario.
	Scenario string
	// Workers is the solver oracle worker-pool size (0 = GOMAXPROCS when
	// the parallel solve path is requested). It affects wall-clock only:
	// solver outputs are bit-identical for every worker count, and the
	// instance itself (topology, sessions) never depends on it.
	Workers int
	// DisablePlane turns off the solvers' solve-scoped shared SSSP plane
	// (see core.MaxFlowOptions.DisablePlane). Like Workers, it affects
	// wall-clock only, never outputs or the instance.
	DisablePlane bool
	// DisableRepair turns off the plane's cross-round dirty-source repair
	// (see core.MaxFlowOptions.DisableRepair). Also wall-clock only.
	DisableRepair bool
	// DisableSubtreeRepair turns off repair's incremental subtree path (see
	// core.MaxFlowOptions.DisableSubtreeRepair). Also wall-clock only.
	DisableSubtreeRepair bool
	// Shards runs the solvers' oracle rounds on per-AS shards behind the
	// price-exchange boundary (see core.MaxFlowOptions.Shards), partitioned
	// by the instance's AS labels when the topology has them (TwoLevelASes)
	// and by contiguous node ranges otherwise. 0 = unsharded. Wall-clock
	// only: outputs are bit-identical for every shard count.
	Shards int
	// TwoLevelASes switches the topology to the paper's two-level AS/router
	// construction with this many ASes (Nodes/TwoLevelASes routers each) —
	// the natural partition for Shards. 0 keeps the flat Waxman topology.
	// Incompatible with Scenario (the workload distributions are calibrated
	// for the flat generator).
	TwoLevelASes int
}

func (c *ScaleConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: scale instance needs >=8 nodes, got %d", c.Nodes)
	}
	if c.Sessions < 1 {
		return fmt.Errorf("experiments: scale instance needs >=1 session, got %d", c.Sessions)
	}
	if c.SessionSize < 2 {
		c.SessionSize = 4
	}
	if c.SessionSize > c.Nodes {
		return fmt.Errorf("experiments: session size %d exceeds %d nodes", c.SessionSize, c.Nodes)
	}
	if c.Degree < 1 {
		c.Degree = 2
	}
	if c.Capacity <= 0 {
		c.Capacity = 100
	}
	if c.Demand <= 0 {
		c.Demand = 100
	}
	if c.TwoLevelASes > 0 {
		if c.Scenario != "" {
			return fmt.Errorf("experiments: TwoLevelASes is incompatible with scenario %q", c.Scenario)
		}
		if c.Nodes%c.TwoLevelASes != 0 || c.Nodes/c.TwoLevelASes < 2 {
			return fmt.Errorf("experiments: %d nodes do not divide into %d ASes of >=2 routers", c.Nodes, c.TwoLevelASes)
		}
	}
	return nil
}

// Name returns a compact scenario label for benchmark and report output. A
// non-default Degree is part of the identity (it changes the topology), so
// instance caches keyed on the name cannot conflate densities.
func (c ScaleConfig) Name() string {
	mode := "ip"
	if c.Arbitrary {
		mode = "arb"
	}
	deg := ""
	if c.Degree >= 1 && c.Degree != 2 {
		deg = fmt.Sprintf("_d%d", c.Degree)
	}
	if c.Scenario != "" {
		return fmt.Sprintf("%s_n%d_k%d%s_%s", c.Scenario, c.Nodes, c.Sessions, deg, mode)
	}
	tl := ""
	if c.TwoLevelASes > 0 {
		tl = fmt.Sprintf("_tl%d", c.TwoLevelASes)
	}
	return fmt.Sprintf("n%d_k%d_s%d%s%s_%s", c.Nodes, c.Sessions, c.SessionSize, deg, tl, mode)
}

// ScaleInstance is a constructed large scenario ready to solve.
type ScaleInstance struct {
	Seed     uint64
	Config   ScaleConfig
	Net      *topology.Network
	Sessions []*overlay.Session
	Problem  *core.Problem
}

// NewScaleInstance builds a deterministic large instance. With no Scenario,
// it is the legacy construction — a naive incremental Waxman topology and
// Sessions member sets sampled uniformly (sessions may share nodes, members
// within a session are distinct) — kept bit-identical for a given seed.
// With a Scenario, the topology comes from the grid-accelerated Waxman
// generator and the capacities, demands, session sizes, and member
// popularity follow the named workload distributions. Either way, fixed IP
// routes follow BRITE propagation delays, matching Setting A.
func NewScaleInstance(seed uint64, cfg ScaleConfig) (*ScaleInstance, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	wax := topology.DefaultWaxman(cfg.Nodes)
	wax.M = cfg.Degree
	wax.Capacity = cfg.Capacity
	var net *topology.Network
	var sessions []*overlay.Session
	if cfg.Scenario != "" {
		sc, err := workload.Get(cfg.Scenario)
		if err != nil {
			return nil, err
		}
		if net, err = topology.WaxmanGrid(wax, r.Split(0)); err != nil {
			return nil, err
		}
		sc.Capacities(net.Graph, r.Split(2))
		if sessions, err = sc.Sessions(cfg.Nodes, cfg.Sessions, r.Split(1)); err != nil {
			return nil, err
		}
	} else {
		var err error
		if cfg.TwoLevelASes > 0 {
			tl := topology.DefaultTwoLevel(cfg.TwoLevelASes, cfg.Nodes/cfg.TwoLevelASes)
			tl.MRouter = cfg.Degree
			tl.Capacity = cfg.Capacity
			net, err = topology.TwoLevel(tl, r.Split(0))
		} else {
			net, err = topology.Waxman(wax, r.Split(0))
		}
		if err != nil {
			return nil, err
		}
		memberRNG := r.Split(1)
		sessions = make([]*overlay.Session, cfg.Sessions)
		for i := range sessions {
			members := memberRNG.Split(uint64(i)).Sample(cfg.Nodes, cfg.SessionSize)
			s, err := overlay.NewSession(i, members, cfg.Demand)
			if err != nil {
				return nil, err
			}
			sessions[i] = s
		}
	}
	mode := core.RoutingIP
	if cfg.Arbitrary {
		mode = core.RoutingArbitrary
	}
	p, err := core.NewProblemWeighted(net.Graph, sessions, mode, net.LinkDelays())
	if err != nil {
		return nil, err
	}
	return &ScaleInstance{Seed: seed, Config: cfg, Net: net, Sessions: sessions, Problem: p}, nil
}

// MaxFlow solves the M1 FPTAS on the instance with the config's worker-pool
// size.
func (si *ScaleInstance) MaxFlow(eps float64, parallel bool) (*core.Solution, error) {
	return core.MaxFlow(si.Problem, core.MaxFlowOptions{
		Epsilon: eps, Parallel: parallel, Workers: si.Config.Workers,
		DisablePlane: si.Config.DisablePlane, DisableRepair: si.Config.DisableRepair,
		DisableSubtreeRepair: si.Config.DisableSubtreeRepair,
		Shards:               si.Config.Shards, ShardLabels: si.Net.ASOf,
	})
}

// MCF solves the M2 FPTAS on the instance (no surplus pass: the scale tier
// measures the core phase loop, not the back-fill heuristic) with the
// config's worker-pool size.
func (si *ScaleInstance) MCF(eps float64, parallel bool) (*core.MCFResult, error) {
	return core.MaxConcurrentFlow(si.Problem, core.MaxConcurrentFlowOptions{
		Epsilon: eps, Parallel: parallel, Workers: si.Config.Workers,
		DisablePlane: si.Config.DisablePlane, DisableRepair: si.Config.DisableRepair,
		DisableSubtreeRepair: si.Config.DisableSubtreeRepair,
		Shards:               si.Config.Shards, ShardLabels: si.Net.ASOf,
	})
}

// ScaleRow is one solved scenario of a scale suite run.
type ScaleRow struct {
	Config     ScaleConfig
	Edges      int
	Solver     string // "maxflow" or "mcf"
	Throughput float64
	Lambda     float64 // MCF only
	MSTOps     int
	// Plane carries the solver's shared-SSSP-plane counters (zero under
	// fixed routing or with the plane disabled).
	Plane     overlay.Metrics
	BuildTime time.Duration
	SolveTime time.Duration
}

// String renders the row for cmd/experiments output.
func (r ScaleRow) String() string {
	extra := ""
	if r.Solver == "mcf" {
		extra = fmt.Sprintf(" lambda=%.4f", r.Lambda)
	}
	if r.Plane.PlaneRounds > 0 {
		extra += fmt.Sprintf(" dedup=%.2fx", r.Plane.PlaneDedup())
		if r.Plane.PlaneSkipped+r.Plane.PlaneRepaired > 0 {
			extra += fmt.Sprintf(" repair=%.0f%%", 100*r.Plane.RepairRate())
		}
	}
	return fmt.Sprintf("%-22s |E|=%-6d %-7s thpt=%-12.2f%s mstops=%-7d build=%-10v solve=%v",
		r.Config.Name(), r.Edges, r.Solver, r.Throughput, extra, r.MSTOps,
		r.BuildTime.Round(time.Millisecond), r.SolveTime.Round(time.Millisecond))
}

// ScaleSuite builds and solves each configuration with both solvers at the
// given epsilon, returning one row per (config, solver). Seeds derive from
// the base seed and the config index, so the suite is fully deterministic.
func ScaleSuite(seed uint64, eps float64, parallel bool, cfgs []ScaleConfig) ([]ScaleRow, error) {
	var rows []ScaleRow
	for ci, cfg := range cfgs {
		start := time.Now()
		si, err := NewScaleInstance(seed+uint64(ci), cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %s: %w", cfg.Name(), err)
		}
		build := time.Since(start)

		start = time.Now()
		mf, err := si.MaxFlow(eps, parallel)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %s maxflow: %w", cfg.Name(), err)
		}
		rows = append(rows, ScaleRow{
			Config: si.Config, Edges: si.Net.Graph.NumEdges(), Solver: "maxflow",
			Throughput: mf.OverallThroughput(), MSTOps: mf.MSTOps, Plane: mf.Plane,
			BuildTime: build, SolveTime: time.Since(start),
		})

		start = time.Now()
		mcf, err := si.MCF(eps, parallel)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %s mcf: %w", cfg.Name(), err)
		}
		rows = append(rows, ScaleRow{
			Config: si.Config, Edges: si.Net.Graph.NumEdges(), Solver: "mcf",
			Throughput: mcf.OverallThroughput(), Lambda: mcf.Lambda, MSTOps: mcf.MSTOps,
			Plane: mcf.Plane, BuildTime: build, SolveTime: time.Since(start),
		})
	}
	return rows, nil
}

// DefaultScaleSuite returns the large-instance tier: 2,000-10,000 node
// topologies with 64-256 competing sessions under both routing models.
func DefaultScaleSuite() []ScaleConfig {
	return []ScaleConfig{
		{Nodes: 2000, Sessions: 64, SessionSize: 6},
		{Nodes: 2000, Sessions: 64, SessionSize: 6, Arbitrary: true},
		{Nodes: 5000, Sessions: 128, SessionSize: 6},
		{Nodes: 10000, Sessions: 256, SessionSize: 4},
	}
}

// SmallScaleSuite returns a reduced tier that finishes in seconds, used by
// `-scale small` smoke runs.
func SmallScaleSuite() []ScaleConfig {
	return []ScaleConfig{
		{Nodes: 300, Sessions: 16, SessionSize: 5},
		{Nodes: 300, Sessions: 16, SessionSize: 5, Arbitrary: true},
	}
}

// ScenarioScaleSuite sweeps the named workload scenarios over the large
// tier: every scenario at 2,000 x 64 under fixed routing, plus a 5,000 x 128
// fixed instance and a 2,000 x 64 arbitrary-routing instance per scenario.
// An empty scenario list means every registered scenario.
func ScenarioScaleSuite(scenarios []string) ([]ScaleConfig, error) {
	if len(scenarios) == 0 {
		scenarios = workload.Names()
	}
	var cfgs []ScaleConfig
	for _, name := range scenarios {
		if _, err := workload.Get(name); err != nil {
			return nil, err
		}
		cfgs = append(cfgs,
			ScaleConfig{Nodes: 2000, Sessions: 64, Scenario: name},
			ScaleConfig{Nodes: 2000, Sessions: 64, Scenario: name, Arbitrary: true},
			ScaleConfig{Nodes: 5000, Sessions: 128, Scenario: name},
		)
	}
	return cfgs, nil
}

// SmallScenarioSuite returns one quick fixed-routing instance per requested
// scenario (all registered scenarios when the list is empty), for smoke runs
// and the CI determinism gate.
func SmallScenarioSuite(scenarios []string) ([]ScaleConfig, error) {
	if len(scenarios) == 0 {
		scenarios = workload.Names()
	}
	var cfgs []ScaleConfig
	for _, name := range scenarios {
		if _, err := workload.Get(name); err != nil {
			return nil, err
		}
		cfgs = append(cfgs, ScaleConfig{Nodes: 300, Sessions: 12, Scenario: name})
	}
	return cfgs, nil
}
