package overcast_test

import (
	"testing"

	"overcast"
)

func TestQualityMetrics(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	alloc, err := sys.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumSessions(); i++ {
		q, err := alloc.QualityMetrics(i)
		if err != nil {
			t.Fatal(err)
		}
		if q.MaxStress < 1 {
			t.Fatalf("session %d max stress %d < 1", i, q.MaxStress)
		}
		if q.MeanStress < 1 || q.MeanStress > float64(q.MaxStress) {
			t.Fatalf("session %d mean stress %v outside [1, %d]", i, q.MeanStress, q.MaxStress)
		}
		if q.MaxStretch < 1 {
			t.Fatalf("session %d max stretch %v < 1", i, q.MaxStretch)
		}
		if q.MeanStretch < 1 || q.MeanStretch > q.MaxStretch+1e-9 {
			t.Fatalf("session %d mean stretch %v outside [1, %v]", i, q.MeanStretch, q.MaxStretch)
		}
		if q.MaxDepth < 1 {
			t.Fatalf("session %d depth %d < 1", i, q.MaxDepth)
		}
	}
	if _, err := alloc.QualityMetrics(99); err == nil {
		t.Fatal("out-of-range session accepted")
	}
}

func TestQualityStarBaselineDepthTwo(t *testing.T) {
	// SplitStream stripes are stars centered at each member: the stripe
	// hubbed at the source has depth 1, all others depth 2 (source -> hub
	// -> receivers). Max depth over stripes is therefore exactly 2.
	sys := demoSystem(t, overcast.RoutingIP)
	split, err := sys.SplitStreamBaseline()
	if err != nil {
		t.Fatal(err)
	}
	q, err := split.QualityMetrics(0)
	if err != nil {
		t.Fatal(err)
	}
	if q.MaxDepth != 2 {
		t.Fatalf("SplitStream stripe depth %d, want 2", q.MaxDepth)
	}
}

func TestSimulateChunksEndToEnd(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	alloc, err := sys.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := alloc.SimulateChunks(500, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumSessions(); i++ {
		want := alloc.SessionRate(i) * float64(len(alloc.Trees(i)[0].Pairs))
		_ = want
		q, err := alloc.QualityMetrics(i)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxDepth[i] != q.MaxDepth {
			t.Fatalf("session %d: simulator depth %d vs metrics depth %d", i, rep.MaxDepth[i], q.MaxDepth)
		}
		if rep.ReceiverRate[i] <= 0 {
			t.Fatalf("session %d: zero goodput", i)
		}
		if rep.MaxLag[i] < 0 {
			t.Fatalf("session %d: negative lag", i)
		}
	}
	if _, err := alloc.SimulateChunks(0, 1); err == nil {
		t.Fatal("Steps=0 accepted")
	}
}
