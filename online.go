package overcast

import "fmt"

// OnlineAllocator is the deprecated v1 surface over the online allocation
// algorithm (Table VI), kept as a thin wrapper around Allocator for
// compatibility. It addresses sessions by fragile arrival index instead of
// opaque handles and exposes only the online placement, not the warm-start
// Snapshot/Rebalance allocation.
//
// Deprecated: use NewAllocator / Allocator. The wrapper produces
// bit-identical trees, rates and allocations to the v2 surface.
type OnlineAllocator struct {
	a   *Allocator
	ids []SessionID
}

// NewOnlineAllocator creates an allocator over net with step size mu.
//
// Deprecated: use NewAllocator with AllocatorOptions{Mu: mu, Routing: r}.
func NewOnlineAllocator(net *Network, mu float64, routing Routing) (*OnlineAllocator, error) {
	if net == nil {
		return nil, fmt.Errorf("overcast: nil network")
	}
	if mu <= 0 {
		return nil, fmt.Errorf("overcast: online step size mu=%v must be positive", mu)
	}
	a, err := NewAllocator(net, AllocatorOptions{Mu: mu, Routing: routing})
	if err != nil {
		return nil, err
	}
	return &OnlineAllocator{a: a}, nil
}

// Join admits a session and returns the overlay tree it was assigned (as
// member-index pairs, caller-owned). The session keeps this tree for its
// lifetime.
//
// Deprecated: use Allocator.Join, which returns an opaque SessionID handle
// and an epoch-stamped Placement (see the README v1 -> v2 migration table).
func (o *OnlineAllocator) Join(s Session) ([][2]int, error) {
	p, err := o.a.Join(s)
	if err != nil {
		return nil, err
	}
	o.ids = append(o.ids, p.Session)
	pairs := make([][2]int, len(p.Tree.Pairs()))
	copy(pairs, p.Tree.Pairs())
	return pairs, nil
}

// Leave removes a previously admitted session by its arrival index: its
// tree is torn down and its length inflation rolled back exactly, so the
// links it used become attractive to future arrivals again. Later sessions
// are never rerouted.
//
// Deprecated: use Allocator.Leave with the SessionID handle from Join —
// handles keep failing cleanly after departure instead of shifting meaning.
func (o *OnlineAllocator) Leave(idx int) error {
	if idx < 0 || idx >= len(o.ids) {
		return fmt.Errorf("overcast: online leave: index %d out of range", idx)
	}
	return o.a.Leave(o.ids[idx])
}

// Sessions returns the number of admitted sessions (including departed
// ones; see ActiveSessions).
//
// Deprecated: use Allocator.Admitted.
func (o *OnlineAllocator) Sessions() int { return o.a.Admitted() }

// ActiveSessions returns the number of admitted sessions that have not
// left.
//
// Deprecated: use Allocator.Active.
func (o *OnlineAllocator) ActiveSessions() int { return o.a.Active() }

// MaxCongestion returns the current maximum link congestion if every
// admitted session sent at its full demand.
//
// Deprecated: use Allocator.MaxCongestion.
func (o *OnlineAllocator) MaxCongestion() float64 { return o.a.MaxCongestion() }

// SessionRate returns the feasible rate of the idx-th admitted session
// under the current population: demand divided by the session's maximum
// link congestion. Rates shrink as competing sessions join and recover when
// they leave. A departed or out-of-range index is an error (earlier
// releases silently returned a demand-derived value for departed sessions).
//
// Deprecated: use Allocator.SessionRate with the SessionID handle.
func (o *OnlineAllocator) SessionRate(idx int) (float64, error) {
	if idx < 0 || idx >= len(o.ids) {
		return 0, fmt.Errorf("overcast: session rate: index %d out of range", idx)
	}
	return o.a.SessionRate(o.ids[idx])
}

// Finalize produces the exactly feasible allocation for the active sessions
// (each scaled by its own maximum congestion).
//
// Deprecated: use Allocator.OnlineAllocation for this view, or
// Allocator.Snapshot for the re-solved eps-feasible fair allocation.
func (o *OnlineAllocator) Finalize() (*Allocation, error) {
	return o.a.OnlineAllocation()
}
