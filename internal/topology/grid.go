package topology

import (
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/rng"
)

// WaxmanGrid generates a connected BRITE-style incremental Waxman topology
// with the same model (and the same degree/connectivity statistics) as
// Waxman, using a spatial-grid rejection sampler that makes 10k-50k node
// topologies cheap enough for CI. Outputs are deterministic for a fixed
// seed but are not bit-identical to Waxman's, since the two consume the RNG
// differently; TestWaxmanGridMatchesNaiveDistribution pins the statistical
// equivalence instead.
func WaxmanGrid(cfg WaxmanConfig, r *rng.RNG) (*Network, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pos := make([]Point, cfg.N)
	for i := range pos {
		pos[i] = Point{X: r.Float64() * cfg.PlaneKM, Y: r.Float64() * cfg.PlaneKM}
	}
	maxDist := cfg.PlaneKM * math.Sqrt2
	decay := cfg.Beta * maxDist
	grid := newWaxmanGrid(cfg)
	if cfg.N > 0 {
		grid.insert(0, pos[0])
	}
	b := graph.NewBuilder(cfg.N)
	weights := make([]float64, 0, cfg.N)
	for v := 1; v < cfg.N; v++ {
		degree := cfg.M
		if v < cfg.M {
			degree = v
		}
		// Per-cell bounds depend only on v's position, so one scan serves
		// all of v's stubs; adjacency exclusion happens by re-drawing.
		total := 0.0
		grid.bounds = grid.bounds[:0]
		for _, c := range grid.filled {
			w := float64(len(grid.cells[c])) * math.Exp(-grid.minDist(pos[v], c)/decay)
			grid.bounds = append(grid.bounds, w)
			total += w
		}
		for k := 0; k < degree; k++ {
			u, ok := grid.sampleStub(b, pos, v, total, decay, r)
			if !ok {
				// Bounded rejection ran dry (pathological adjacency or
				// degenerate geometry): fall back to the naive exact scan
				// for this stub.
				u = naiveStub(b, pos, v, cfg, maxDist, r, &weights)
			}
			if b.HasEdge(u, v) {
				// All candidates exhausted; skip the remaining stubs, as the
				// naive generator does.
				break
			}
			if err := b.AddEdge(u, v, cfg.Capacity); err != nil {
				return nil, err
			}
		}
		grid.insert(v, pos[v])
	}
	g := b.Build()
	return &Network{Graph: g, Pos: pos, Name: fmt.Sprintf("waxman-grid(n=%d,m=%d)", cfg.N, cfg.M)}, nil
}

// sampleStub draws one non-adjacent prior node proportionally to the Waxman
// weight, or reports failure after a bounded number of rejections.
func (w *waxmanGrid) sampleStub(b *graph.Builder, pos []Point, v int, total, decay float64, r *rng.RNG) (int, bool) {
	if total <= 0 {
		return 0, false
	}
	const maxDraws = 96
	for draw := 0; draw < maxDraws; draw++ {
		// Weighted cell choice by linear scan of the nonempty cells.
		x := r.Float64() * total
		pick := len(w.filled) - 1
		for i, bound := range w.bounds {
			x -= bound
			if x < 0 {
				pick = i
				break
			}
		}
		c := w.filled[pick]
		members := w.cells[c]
		u := members[r.Intn(len(members))]
		if b.HasEdge(u, v) {
			continue
		}
		// Accept with probability exp(-d/decay) / exp(-dmin/decay); the
		// per-member bound is the cell bound divided by the cell count.
		bound := w.bounds[pick] / float64(len(members))
		if r.Float64()*bound < math.Exp(-dist(pos[u], pos[v])/decay) {
			return u, true
		}
	}
	return 0, false
}

// naiveStub reproduces one stub of the naive Waxman generator: an exact
// weight scan over all prior nodes with zeroed weights on existing edges.
func naiveStub(b *graph.Builder, pos []Point, v int, cfg WaxmanConfig, maxDist float64, r *rng.RNG, weights *[]float64) int {
	ws := (*weights)[:0]
	for u := 0; u < v; u++ {
		if b.HasEdge(u, v) {
			ws = append(ws, 0)
			continue
		}
		d := dist(pos[u], pos[v])
		ws = append(ws, cfg.Alpha*math.Exp(-d/(cfg.Beta*maxDist)))
	}
	*weights = ws
	return r.WeightedChoice(ws)
}

// Spatial-grid acceleration for the incremental Waxman model.
//
// The naive generator recomputes the Waxman weight alpha*exp(-d/(beta*L))
// for every prior node on every stub, an O(N^2 * M) scan with an exp() per
// pair that dominates topology build time from a few thousand nodes on.
// WaxmanGrid samples from exactly the same per-stub distribution with a
// bucketed rejection scheme:
//
//  1. prior nodes are bucketed into a G x G grid over the placement plane;
//  2. for a new node v, each nonempty cell gets the upper bound
//     count(cell) * exp(-dmin(v, cell)/(beta*L)), where dmin is the distance
//     from v to the nearest point of the cell rectangle;
//  3. a cell is drawn proportionally to its bound, a member uniformly within
//     it, and the member is accepted with probability
//     exp(-d(u,v)/(beta*L)) / exp(-dmin(v, cell)/(beta*L))  <= 1.
//
// Accepted samples are distributed exactly proportionally to the Waxman
// weight (the alpha factor cancels), and re-drawing on already-adjacent
// members reproduces the naive generator's zeroed weights, so degree and
// connectivity statistics match the naive model; only the stream of RNG
// draws — and hence the individual edges for a given seed — differs. The
// cell side is kept at or below beta*L/sqrt(2) whenever the grid is fine
// enough, which bounds the per-draw acceptance ratio below by
// exp(-sqrt(2)*side/(beta*L)) >= 1/e, so a stub needs O(1) expected draws
// and one node costs O(G^2 + M) exp() calls instead of O(N * M).
type waxmanGrid struct {
	g      int       // cells per axis
	side   float64   // cell side length
	cells  [][]int   // node ids per cell, index cy*g+cx
	filled []int     // indices of nonempty cells, in first-fill order
	bounds []float64 // scratch: per-filled-cell weight bound
}

func newWaxmanGrid(cfg WaxmanConfig) *waxmanGrid {
	// Fine enough that cells resolve the exp() decay length (side <~
	// beta*L/sqrt(2), i.e. g >= 1/beta) and that the per-node cell scan stays
	// far below the naive O(N) candidate scan.
	g := int(1/cfg.Beta) + 1
	if byN := isqrt(cfg.N) / 8; byN > g {
		g = byN
	}
	if g < 2 {
		g = 2
	}
	if g > 64 {
		g = 64
	}
	return &waxmanGrid{
		g:     g,
		side:  cfg.PlaneKM / float64(g),
		cells: make([][]int, g*g),
	}
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func (w *waxmanGrid) cellOf(p Point) int {
	cx := int(p.X / w.side)
	cy := int(p.Y / w.side)
	if cx >= w.g {
		cx = w.g - 1
	}
	if cy >= w.g {
		cy = w.g - 1
	}
	return cy*w.g + cx
}

func (w *waxmanGrid) insert(id int, p Point) {
	c := w.cellOf(p)
	if len(w.cells[c]) == 0 {
		w.filled = append(w.filled, c)
	}
	w.cells[c] = append(w.cells[c], id)
}

// minDist returns the distance from p to the nearest point of cell c's
// rectangle (zero when p lies inside the cell).
func (w *waxmanGrid) minDist(p Point, c int) float64 {
	cx, cy := c%w.g, c/w.g
	dx := rectAxisDist(p.X, float64(cx)*w.side, float64(cx+1)*w.side)
	dy := rectAxisDist(p.Y, float64(cy)*w.side, float64(cy+1)*w.side)
	return math.Sqrt(dx*dx + dy*dy)
}

func rectAxisDist(x, lo, hi float64) float64 {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}
