package overcast_test

import (
	"math"
	"testing"

	"overcast"
)

func demoSystem(t testing.TB, routing overcast.Routing) *overcast.System {
	t.Helper()
	net, err := overcast.WaxmanNetwork(50, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := overcast.NewSystem(net, []overcast.Session{
		{Members: []int{2, 11, 23, 31, 47}, Demand: 100},
		{Members: []int{5, 19, 37}, Demand: 100},
	}, routing)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNetworkConstructors(t *testing.T) {
	net, err := overcast.WaxmanNetwork(30, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.Nodes() != 30 || net.Links() < 29 || net.TotalCapacity() <= 0 || net.Name() == "" {
		t.Fatalf("network accessors wrong: %d/%d", net.Nodes(), net.Links())
	}
	tl, err := overcast.TwoLevelNetwork(3, 8, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Nodes() != 24 {
		t.Fatalf("two-level nodes %d", tl.Nodes())
	}
	custom, err := overcast.CustomNetwork(3, []overcast.Link{
		{From: 0, To: 1, Capacity: 5}, {From: 1, To: 2, Capacity: 5},
	})
	if err != nil || custom.Links() != 2 {
		t.Fatalf("custom network: %v", err)
	}
	if _, err := overcast.CustomNetwork(4, []overcast.Link{{From: 0, To: 1, Capacity: 5}}); err == nil {
		t.Fatal("disconnected custom network accepted")
	}
	if _, err := overcast.CustomNetwork(2, []overcast.Link{{From: 0, To: 0, Capacity: 5}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	net, _ := overcast.WaxmanNetwork(10, 100, 1)
	if _, err := overcast.NewSystem(nil, nil, overcast.RoutingIP); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := overcast.NewSystem(net, []overcast.Session{{Members: []int{1}, Demand: 1}}, overcast.RoutingIP); err == nil {
		t.Fatal("1-member session accepted")
	}
	sys, err := overcast.NewSystem(net, []overcast.Session{{Members: []int{0, 5}, Demand: 1}}, overcast.RoutingIP)
	if err != nil || sys.NumSessions() != 1 || sys.Network() != net {
		t.Fatalf("system wrong: %v", err)
	}
}

func TestMaxFlowEndToEnd(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	if _, err := sys.MaxFlow(0); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	if _, err := sys.MaxFlow(1); err == nil {
		t.Fatal("ratio 1 accepted")
	}
	alloc, err := sys.MaxFlow(0.93)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatal(err)
	}
	if alloc.OverallThroughput() <= 0 || alloc.SpanningTreeOps() <= 0 {
		t.Fatal("empty allocation")
	}
	for i := 0; i < sys.NumSessions(); i++ {
		trees := alloc.Trees(i)
		if len(trees) != alloc.TreeCount(i) || len(trees) == 0 {
			t.Fatalf("session %d trees inconsistent", i)
		}
		sum := 0.0
		for _, tr := range trees {
			if tr.Rate <= 0 || tr.PhysicalHops <= 0 || len(tr.Pairs) == 0 {
				t.Fatalf("bad tree %+v", tr)
			}
			sum += tr.Rate
		}
		if math.Abs(sum-alloc.SessionRate(i)) > 1e-9 {
			t.Fatalf("tree rates don't sum to session rate")
		}
		rd := alloc.RateDistribution(i)
		for j := 1; j < len(rd); j++ {
			if rd[j] > rd[j-1] {
				t.Fatal("rate distribution not sorted")
			}
		}
	}
	if alloc.MaxCongestion() > 1+1e-9 {
		t.Fatal("allocation overloads a link")
	}
	if u := alloc.LinkUtilizations(); len(u) == 0 {
		t.Fatal("no utilizations")
	}
}

func TestSimulateRoundTrip(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	alloc, err := sys.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := alloc.Simulate(30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.OfferedRate {
		if math.Abs(rep.DeliveredRate[i]-rep.OfferedRate[i]) > 1e-9 {
			t.Fatalf("session %d lost traffic in simulation", i)
		}
	}
	if rep.PeakLinkUtilization > 1+1e-9 {
		t.Fatal("simulation saw link overload for a feasible allocation")
	}
	if math.Abs(rep.OverallDelivered-alloc.OverallThroughput()) > 1e-6 {
		t.Fatal("delivered != allocated")
	}
}

func TestMaxConcurrentFlowEndToEnd(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	if _, err := sys.MaxConcurrentFlow(0, false); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	fair, err := sys.MaxConcurrentFlow(0.92, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fair.Verify(); err != nil {
		t.Fatal(err)
	}
	if fair.Lambda <= 0 {
		t.Fatal("lambda not positive")
	}
	for i := 0; i < sys.NumSessions(); i++ {
		if fair.SessionRate(i) < fair.Lambda*100-1e-6 {
			t.Fatalf("session %d below fair share", i)
		}
	}
	// Fairness vs throughput tradeoff against MaxFlow.
	mf, err := sys.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	if fair.MinSessionRate() < mf.MinSessionRate()*0.85 {
		t.Fatalf("fair min rate %v below MaxFlow min rate %v", fair.MinSessionRate(), mf.MinSessionRate())
	}
	withSurplus, err := sys.MaxConcurrentFlow(0.92, true)
	if err != nil {
		t.Fatal(err)
	}
	if withSurplus.OverallThroughput() < fair.OverallThroughput()*0.999 {
		t.Fatal("surplus pass lost throughput")
	}
}

func TestLimitTreesAndRounding(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	fair, err := sys.MaxConcurrentFlow(0.92, true)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := sys.LimitTrees(fair.Allocation, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := limited.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumSessions(); i++ {
		if limited.TreeCount(i) > 5 {
			t.Fatalf("limit violated: %d trees", limited.TreeCount(i))
		}
	}
	if limited.OverallThroughput() > fair.OverallThroughput()+1e-9 {
		t.Fatal("limited allocation exceeds base")
	}
	rounded, congestion, err := sys.RoundToSingleTrees(fair.Allocation, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := rounded.Verify(); err != nil {
		t.Fatal(err)
	}
	if congestion <= 0 {
		t.Fatal("no congestion reported")
	}
	for i := 0; i < sys.NumSessions(); i++ {
		if rounded.TreeCount(i) != 1 {
			t.Fatalf("rounding left %d trees", rounded.TreeCount(i))
		}
	}
}

func TestBaselinesEndToEnd(t *testing.T) {
	sys := demoSystem(t, overcast.RoutingIP)
	mf, err := sys.MaxFlow(0.93)
	if err != nil {
		t.Fatal(err)
	}
	single, err := sys.SingleTreeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	split, err := sys.SplitStreamBaseline()
	if err != nil {
		t.Fatal(err)
	}
	rf, err := sys.RandomForestBaseline(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range map[string]*overcast.Allocation{"single": single, "split": split, "rf": rf} {
		if err := a.Verify(); err != nil {
			t.Fatalf("%s infeasible: %v", name, err)
		}
		// Baselines are feasible, so they cannot exceed the optimum; allow
		// the FPTAS's approximation slack.
		if a.OverallThroughput() > mf.OverallThroughput()/0.93+1e-6 {
			t.Fatalf("%s beats the optimum", name)
		}
	}
}

func TestMultiTreeBeatsSingleTreeOnK4(t *testing.T) {
	// On K4 with uniform capacity c, a 4-member session's best single tree
	// carries c, but K4 packs two edge-disjoint spanning trees
	// (Nash-Williams strength 2), so the multi-tree optimum is 2c.
	net, err := overcast.CustomNetwork(4, []overcast.Link{
		{From: 0, To: 1, Capacity: 10}, {From: 0, To: 2, Capacity: 10},
		{From: 0, To: 3, Capacity: 10}, {From: 1, To: 2, Capacity: 10},
		{From: 1, To: 3, Capacity: 10}, {From: 2, To: 3, Capacity: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := overcast.NewSystem(net, []overcast.Session{
		{Members: []int{0, 1, 2, 3}, Demand: 1},
	}, overcast.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := sys.MaxFlow(0.95)
	if err != nil {
		t.Fatal(err)
	}
	single, err := sys.SingleTreeBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if got := single.SessionRate(0); math.Abs(got-10) > 1e-6 {
		t.Fatalf("single-tree rate %v, want 10", got)
	}
	if got := mf.SessionRate(0); got < 0.95*20-1e-6 || got > 20+1e-6 {
		t.Fatalf("multi-tree rate %v, want ~20", got)
	}
}

func TestOnlineAllocatorEndToEnd(t *testing.T) {
	net, err := overcast.WaxmanNetwork(50, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := overcast.NewOnlineAllocator(nil, 10, overcast.RoutingIP); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := overcast.NewOnlineAllocator(net, 0, overcast.RoutingIP); err == nil {
		t.Fatal("mu=0 accepted")
	}
	on, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []overcast.Session{
		{Members: []int{1, 12, 25, 38}, Demand: 1},
		{Members: []int{4, 20, 44}, Demand: 1},
		{Members: []int{7, 31}, Demand: 1},
	}
	for _, s := range sessions {
		pairs, err := on.Join(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) != len(s.Members)-1 {
			t.Fatalf("tree has %d pairs for %d members", len(pairs), len(s.Members))
		}
	}
	if on.Sessions() != 3 {
		t.Fatal("session count wrong")
	}
	if on.MaxCongestion() <= 0 {
		t.Fatal("no congestion tracked")
	}
	first, err := on.SessionRate(0)
	if err != nil {
		t.Fatal(err)
	}
	if first <= 0 {
		t.Fatal("rate not positive")
	}
	alloc, err := on.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := range sessions {
		if alloc.SessionRate(i) <= 0 {
			t.Fatalf("session %d finalized rate 0", i)
		}
	}
}

func TestArbitraryRoutingSystem(t *testing.T) {
	sysIP := demoSystem(t, overcast.RoutingIP)
	sysArb := demoSystem(t, overcast.RoutingArbitrary)
	ip, err := sysIP.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	arb, err := sysArb.MaxFlow(0.92)
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Verify(); err != nil {
		t.Fatal(err)
	}
	if arb.OverallThroughput() < ip.OverallThroughput()*0.9 {
		t.Fatal("arbitrary routing lost throughput vs IP")
	}
}
