package core

import (
	"errors"
	"fmt"
	"math"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/shard"
)

// This file implements the warm-start incremental re-solve under churn. A
// Warm allocator maintains an ε-feasible MaxConcurrentFlow allocation across
// a stream of session joins and leaves without re-running the FPTAS from
// cold on every event. The mechanism reuses the Garg–Könemann invariant that
// the phase loop already maintains:
//
//   - A cold anchor solve runs MaxConcurrentFlow once and captures, instead
//     of discarding, its terminal internal state: the length ledger d, the
//     pre-scale per-session raw flows, the per-session multiplicative bump
//     attribution, the final scaled demands, and the dual objective
//     D = Σ_e c_e·d_e (the loop stops exactly when D ≥ 1).
//   - A Join routes only the newcomer's fair share — demand_k times the
//     anchored raw-rate-per-demand ratio — under the live lengths, in
//     anchor-phase-sized chunks through the same BatchRunner (so the shared
//     SSSP plane and its dirty-source repair absorb most of the Dijkstra
//     work), applying the standard (1+ε·n_e·c/c_e) inflations.
//   - A Leave rolls the departed session's length inflation back exactly —
//     affected edges are Set to the anchor base and every surviving
//     session's recorded bumps are replayed in slot order — and decrements D
//     accordingly. The rollback typically drops D below 1, so the allocation
//     no longer satisfies the stop criterion; the next Refresh routes full
//     phases for all active sessions until D ≥ 1 again, which is precisely
//     the work a cold solve would have spent re-packing the freed capacity.
//   - Snapshot densifies the active slots and rescales the raw flows by
//     1/maxCongestion — the identical final step of the cold solve — so a
//     snapshot taken right after the anchor is bit-identical to the cold
//     solution, and later snapshots stay exactly feasible by construction.
//
// Falling back to cold is always sound (the warm state is simply discarded
// and re-anchored) and happens when the per-refresh repair budget is
// exhausted, when the ledger reports a shrink the allocator did not perform
// itself (LengthStore.MonotoneSince — external mutation invalidates the bump
// attribution), or when every anchored session has departed (the fair-share
// ratio is gone). Additionally, once the repair work accumulated since the
// anchor exceeds what a cold solve would cost (≈ phases·k session-phases),
// the next refresh re-anchors voluntarily: each warm refresh perturbs the
// anchor's primal/dual balance by its churned demand share, and re-anchoring
// on this amortized schedule bounds both the compounded drift (the ε-quality
// of snapshots between anchors) and the total work at a constant factor of
// the cold baseline's — while refreshes stay ~k/(churned sessions) times
// cheaper than re-solving.

// WarmOptions configures a Warm allocator.
type WarmOptions struct {
	// Epsilon is the FPTAS error parameter, in (0, 0.5].
	Epsilon float64
	// Workers sets the oracle worker-pool size (0 = GOMAXPROCS). Outputs are
	// bit-identical for every worker count.
	Workers int
	// DisablePlane / DisableRepair / DisableSubtreeRepair forward to the
	// anchor solves and the warm repair runner; see
	// MaxConcurrentFlowOptions. Bit-identical either way.
	DisablePlane         bool
	DisableRepair        bool
	DisableSubtreeRepair bool
	// Shards/ShardLabels forward to the anchor solves and the warm repair
	// runner: the repair phases then evaluate oracles on per-AS shards
	// behind the same price-message boundary as the cold phase loop (see
	// MaxConcurrentFlowOptions.Shards). 0 = unsharded; bit-identical either
	// way.
	Shards      int
	ShardLabels []int
	// RepairPhaseBudget bounds the warm repair work per Refresh, counted in
	// session-phases (one session's demand routed through one phase). 0
	// means unbounded — a warm refresh always completes; positive values cap
	// it, falling back to a cold solve when exceeded; negative values
	// disable the warm path entirely (every Refresh is a cold solve — the
	// baseline the warm speedup is measured against).
	RepairPhaseBudget int
}

// WarmStats counts a Warm allocator's work.
type WarmStats struct {
	Joins, Leaves int
	// ColdSolves counts full MaxConcurrentFlow anchor solves (the first
	// Refresh is always one).
	ColdSolves int
	// WarmRefreshes counts Refresh calls served by incremental repair.
	WarmRefreshes int
	// WarmFallbacks counts refreshes that attempted the warm path and fell
	// back to a cold solve mid-repair (budget exhausted, or the anchored
	// fair-share level gone) — scheduled re-anchors and external-drift colds
	// are not fallbacks. Admission control keys off this: a join whose probe
	// refresh could not be repaired within RepairPhaseBudget is rejectable.
	WarmFallbacks int
	// RepairPhases counts session-phases routed by warm repair.
	RepairPhases int
	// UnderlayEvents counts underlay fault mutations (link failure/recovery,
	// capacity drift) applied through Fault. Every one latches a cold
	// re-anchor: capacity changes invalidate the anchored dual objective
	// D = Σ_e c_e·d_e and the bump attribution regardless of whether the
	// mirrored length move was monotone.
	UnderlayEvents int
	// MSTOps counts spanning-tree computations across anchors and repair.
	MSTOps int
	// Plane aggregates the shared-SSSP-plane counters across the anchors'
	// phase loops and the warm repair runner.
	Plane overlay.Metrics
	// Shards aggregates the sharded solver's price-exchange and reduce
	// counters across the anchors' phase loops and the warm repair runner
	// (zero-valued when WarmOptions.Shards is 0).
	Shards shard.Stats
}

// errWarmFallback signals that the warm path cannot (or may not) complete
// this refresh and the caller should re-anchor cold.
var errWarmFallback = errors.New("core: warm repair fell back to cold")

// Warm maintains an ε-feasible concurrent-flow allocation under churn.
// Sessions are identified by their arrival slot (0-based, never reused).
// Mutations (Join/Leave) are cheap bookkeeping plus exact length-ledger
// updates; Refresh/Snapshot bring the allocation back to the Garg–Könemann
// stop criterion incrementally. Not safe for concurrent use.
type Warm struct {
	g            *graph.Graph
	mode         RoutingMode
	routeWeights graph.Lengths
	opts         WarmOptions
	eps          float64

	sessions []*overlay.Session
	oracles  []overlay.TreeOracle
	active   []bool
	nActive  int

	runner oracleRunner // lazily created; oracle id == slot

	// Anchored state (d == nil until the first cold solve).
	d        *graph.LengthStore
	base     graph.Lengths // anchor epoch-0 lengths delta/c_e
	raw      [][]TreeFlow  // per slot: pre-scale flows
	rawIndex []map[uint64]int
	bumps    [][]warmBump // per slot: length updates, in application order
	dem      []float64    // per slot: scaled per-phase demand
	demScale float64      // dem_i / demand_i at the anchor (uniform)
	bigD     float64      // dual objective D = Σ_e c_e·d_e
	phases   int          // anchor phase count (catch-up chunk granularity)
	shrinkOK graph.Epoch  // ledger epoch of the last self-inflicted shrink

	pendingJoins []int // slots joined since the last refresh, ascending
	// pendingLeaveDem accumulates the demand of sessions rolled back since
	// the last refresh: survivors owe rebalance phases in proportion, so the
	// capacity a departure frees is actually re-packed (see warmRepair).
	pendingLeaveDem float64
	dirty           bool // allocation state changed since the last refresh
	forceCold       bool // external ledger drift detected; next refresh re-anchors
	repairSpent     int  // session-phases of warm repair since the anchor (drift proxy)

	stats WarmStats

	// Reused scratch.
	rem          []float64
	pending      []int
	affected     []bool
	affectedList []graph.EdgeID
}

// NewWarm creates a warm allocator over g. Mode and routeWeights fix how
// cold-anchor oracles are built; joined sessions bring their own oracles
// (which must use the same routing discipline).
func NewWarm(g *graph.Graph, mode RoutingMode, routeWeights graph.Lengths, opts WarmOptions) (*Warm, error) {
	if g == nil || g.NumEdges() == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	if opts.Epsilon <= 0 || opts.Epsilon > 0.5 {
		return nil, fmt.Errorf("core: warm allocator epsilon %v outside (0, 0.5]", opts.Epsilon)
	}
	return &Warm{g: g, mode: mode, routeWeights: routeWeights, opts: opts, eps: opts.Epsilon}, nil
}

// Join admits a session under the next arrival slot. s.ID must equal the
// slot (NumSlots() before the call); the oracle must be built over s. The
// allocation is not repaired here — Refresh or Snapshot folds the newcomer
// in (warm when anchored, as part of the first cold solve otherwise).
func (w *Warm) Join(s *overlay.Session, oracle overlay.TreeOracle) error {
	if s == nil || oracle == nil {
		return fmt.Errorf("core: warm join: nil session or oracle")
	}
	if s.ID != len(w.sessions) {
		return fmt.Errorf("core: warm join: session ID %d, want next slot %d", s.ID, len(w.sessions))
	}
	w.sessions = append(w.sessions, s)
	w.oracles = append(w.oracles, oracle)
	w.active = append(w.active, true)
	w.nActive++
	if w.runner != nil {
		w.runner.AddOracle(oracle)
	}
	if w.d != nil {
		w.raw = append(w.raw, nil)
		w.rawIndex = append(w.rawIndex, nil)
		w.bumps = append(w.bumps, nil)
		w.dem = append(w.dem, 0)
		w.pendingJoins = append(w.pendingJoins, s.ID)
	}
	w.dirty = true
	w.stats.Joins++
	return nil
}

// Leave removes the session in the given slot. Its length inflation is
// rolled back exactly (affected edges reset to the anchor base, surviving
// sessions' bumps replayed in slot order — the same bit-exactness argument
// as Online.Leave), and the dual objective is decremented to match, so the
// next Refresh knows how much re-packing the departure freed up.
func (w *Warm) Leave(slot int) error {
	if slot < 0 || slot >= len(w.sessions) {
		return fmt.Errorf("core: warm leave: slot %d out of range", slot)
	}
	if !w.active[slot] {
		return fmt.Errorf("core: warm leave: session %d already left", slot)
	}
	w.active[slot] = false
	w.nActive--
	w.stats.Leaves++
	w.dirty = true
	if w.d == nil {
		return nil
	}
	// A slot that joined after the last refresh has no flow to roll back and
	// frees no packed capacity — its departure owes no repair at all.
	for i, p := range w.pendingJoins {
		if p == slot {
			w.pendingJoins = append(w.pendingJoins[:i], w.pendingJoins[i+1:]...)
			return nil
		}
	}
	// Rolling back Sets edges, which advances shrinkOK — it must not launder
	// an *earlier* external shrink past the monotonicity check. If the
	// ledger is already dirty — an external shrink, or a fault already
	// latched the cold re-anchor (capacities changed under the recorded
	// bumps) — skip the rollback (the bump attribution is untrustworthy
	// anyway) and keep the cold latch.
	if w.forceCold || !w.d.MonotoneSince(w.shrinkOK) {
		w.forceCold = true
		return nil
	}
	w.rollback(slot)
	w.pendingLeaveDem += w.sessions[slot].Demand
	return nil
}

// rollback undoes slot's length inflation exactly and releases its flows.
func (w *Warm) rollback(slot int) {
	if len(w.bumps[slot]) == 0 && len(w.raw[slot]) == 0 {
		return
	}
	if w.affected == nil {
		w.affected = make([]bool, w.g.NumEdges())
	}
	w.affectedList = w.affectedList[:0]
	for _, b := range w.bumps[slot] {
		if !w.affected[b.edge] {
			w.affected[b.edge] = true
			w.affectedList = append(w.affectedList, b.edge)
		}
	}
	for _, e := range w.affectedList {
		w.bigD -= w.g.Edges[e].Capacity * w.d.At(e)
		w.d.Set(e, w.base[e])
	}
	for j := range w.sessions {
		if !w.active[j] || w.bumps[j] == nil {
			continue
		}
		for _, b := range w.bumps[j] {
			if w.affected[b.edge] {
				w.d.Bump(b.edge, b.factor)
			}
		}
	}
	for _, e := range w.affectedList {
		w.bigD += w.g.Edges[e].Capacity * w.d.At(e)
		w.affected[e] = false
	}
	w.raw[slot] = nil
	w.rawIndex[slot] = nil
	w.bumps[slot] = nil
	w.dem[slot] = 0
	// The Sets above are self-inflicted shrinks: sanction them so the next
	// monotonicity check only trips on *external* ledger mutation. The plane
	// repair sees the shrink through the ledger journal regardless and
	// refills the affected rows.
	w.shrinkOK = w.d.Epoch()
}

// Fault records an underlay capacity mutation on edge e. The caller has
// already rewritten the graph's capacity (see internal/underlay.State);
// lengthFactor is the matching multiplicative length move old/new — > 1 for a
// failure or downward drift (capacity fell, the dual price 1/c_e rose), < 1
// for a recovery or upward drift.
//
// When anchored, the move is mirrored onto the live ledger with Bump so every
// ledger consumer sees it immediately and honestly: a shrink flips
// MonotoneSince for the plane's skip/repair rows (degrading them to full
// refill) and for the sharded replicas' journal-diff sync. Regardless of the
// move's direction the next Refresh is latched cold — the anchored dual
// objective D = Σ_e c_e·d_e and the per-session bump attribution were
// computed under the old capacities, so incremental repair arithmetic is no
// longer trustworthy even for a monotone move.
func (w *Warm) Fault(e graph.EdgeID, lengthFactor float64) error {
	if e < 0 || (w.d != nil && e >= graph.EdgeID(w.d.Len())) || e >= graph.EdgeID(w.g.NumEdges()) {
		return fmt.Errorf("core: warm fault: edge %d out of range", e)
	}
	if lengthFactor <= 0 {
		return fmt.Errorf("core: warm fault: length factor %v must be positive", lengthFactor)
	}
	w.stats.UnderlayEvents++
	if w.d != nil && lengthFactor != 1 {
		w.d.Bump(e, lengthFactor)
	}
	w.forceCold = true
	w.dirty = true
	return nil
}

// NumSlots returns the number of sessions ever admitted.
func (w *Warm) NumSlots() int { return len(w.sessions) }

// Active reports whether slot holds a session that has not left.
func (w *Warm) Active(slot int) bool {
	return slot >= 0 && slot < len(w.active) && w.active[slot]
}

// ActiveSessions returns the number of sessions that have not left.
func (w *Warm) ActiveSessions() int { return w.nActive }

// Anchored reports whether a cold anchor solve has run yet.
func (w *Warm) Anchored() bool { return w.d != nil }

// Stats returns a snapshot of the allocator's counters.
func (w *Warm) Stats() WarmStats {
	s := w.stats
	if w.runner != nil {
		s.Plane.Merge(w.runner.Metrics())
		if g, ok := w.runner.(*shard.Group); ok {
			s.Shards.Merge(g.Stats())
		}
	}
	return s
}

// Refresh brings the allocation up to date with all joins and leaves since
// the last refresh: warm catch-up plus re-grow phases when possible, a cold
// anchor solve otherwise. It is a no-op when nothing changed.
func (w *Warm) Refresh() error {
	if w.nActive == 0 {
		return fmt.Errorf("core: warm refresh with no active sessions")
	}
	if !w.dirty && w.d != nil {
		return nil
	}
	if w.d == nil || w.opts.RepairPhaseBudget < 0 || w.forceCold || !w.d.MonotoneSince(w.shrinkOK) {
		return w.cold()
	}
	// Amortized re-anchor: once warm repair has cost a couple of cold solves'
	// worth of session-phases (a cold solve costs ≈ phases·k), spend the next
	// refresh re-anchoring — this bounds compounded drift from successive
	// incremental repairs while keeping total work within a constant factor
	// of the cold baseline.
	if w.repairSpent > warmReanchorFactor*w.phases*w.nActive {
		return w.cold()
	}
	if err := w.warmRepair(); err != nil {
		if errors.Is(err, errWarmFallback) {
			w.stats.WarmFallbacks++
			return w.cold()
		}
		return err
	}
	w.stats.WarmRefreshes++
	w.dirty = false
	return nil
}

func (w *Warm) ensureRunner() {
	if w.runner == nil {
		w.runner = newOracleRunner(w.g, append([]overlay.TreeOracle(nil), w.oracles...), overlay.BatchOptions{
			Workers:              resolveWorkers(true, w.opts.Workers),
			SharedPlane:          !w.opts.DisablePlane,
			DisableRepair:        w.opts.DisableRepair,
			DisableSubtreeRepair: w.opts.DisableSubtreeRepair,
			Dynamic:              true,
		}, w.opts.Shards, w.opts.ShardLabels)
	}
}

// rawRatio returns the anchored raw-rate-per-unit-demand level: the target a
// joining session must be routed up to for the allocation to stay fair.
func (w *Warm) rawRatio() float64 {
	ratio := 0.0
	for slot, fs := range w.raw {
		if !w.active[slot] || len(fs) == 0 {
			continue
		}
		tot := 0.0
		for _, tf := range fs {
			tot += tf.Rate
		}
		if r := tot / w.sessions[slot].Demand; r > ratio {
			ratio = r
		}
	}
	return ratio
}

// addRaw accrues raw flow onto tree t of slot, deduplicating by tree key.
func (w *Warm) addRaw(slot int, t *overlay.Tree, rate float64) {
	if w.rawIndex[slot] == nil {
		w.rawIndex[slot] = make(map[uint64]int, len(w.raw[slot]))
		for pos, tf := range w.raw[slot] {
			w.rawIndex[slot][tf.Tree.KeyHash()] = pos
		}
	}
	key := t.KeyHash()
	if pos, ok := w.rawIndex[slot][key]; ok {
		w.raw[slot][pos].Rate += rate
		return
	}
	w.rawIndex[slot][key] = len(w.raw[slot])
	w.raw[slot] = append(w.raw[slot], TreeFlow{Tree: t, Rate: rate})
}

// routePhase routes amounts[slot] for every listed slot through one phase of
// batched oracle rounds against the live ledger — the identical round
// structure (and length updates) of the cold phase loop. When stopAtBigD is
// set the phase stops early once the dual objective reaches 1, mirroring the
// cold loop's mid-phase stop.
func (w *Warm) routePhase(slots []int, amounts []float64, stopAtBigD bool) error {
	if len(w.rem) < len(w.sessions) {
		w.rem = append(w.rem, make([]float64, len(w.sessions)-len(w.rem))...)
	}
	w.pending = w.pending[:0]
	for i, slot := range slots {
		w.rem[slot] = amounts[i]
		w.pending = append(w.pending, slot)
	}
	pending := w.pending
	for len(pending) > 0 && (!stopAtBigD || w.bigD < 1) {
		results := w.runner.MinTrees(w.d, pending)
		w.stats.MSTOps += len(pending)
		next := pending[:0]
		for pos := 0; pos < len(pending) && (!stopAtBigD || w.bigD < 1); pos++ {
			slot := pending[pos]
			if results[pos].Err != nil {
				return fmt.Errorf("core: warm repair oracle %d: %w", slot, results[pos].Err)
			}
			t := results[pos].Tree
			c := w.rem[slot]
			for _, use := range t.Use() {
				if v := w.g.Edges[use.Edge].Capacity / float64(use.Count); v < c {
					c = v
				}
			}
			w.addRaw(slot, t, c)
			w.rem[slot] -= c
			for _, use := range t.Use() {
				ce := w.g.Edges[use.Edge].Capacity
				grow := 1 + w.eps*float64(use.Count)*c/ce
				w.bigD += ce * w.d.At(use.Edge) * (grow - 1)
				w.d.Bump(use.Edge, grow)
				w.bumps[slot] = append(w.bumps[slot], warmBump{edge: use.Edge, factor: grow})
			}
			if w.rem[slot] > 1e-15 {
				next = append(next, slot)
			}
		}
		pending = next
	}
	return nil
}

// warmRepair restores the allocation invariants incrementally: catch-up
// routing for pending joins, then full re-grow phases until the dual
// objective is back at the Garg–Könemann stop criterion. Returns
// errWarmFallback when the budget runs out or the anchored fair-share level
// is gone.
func (w *Warm) warmRepair() error {
	w.ensureRunner()
	budget := w.opts.RepairPhaseBudget
	used := 0
	charge := func(n int) bool {
		used += n
		return budget <= 0 || used <= budget
	}

	// Rebalance phases owed to the churn processed below, in proportion to
	// the churned demand share. Joins: a newcomer's catch-up alone leaves
	// the incumbents' tree mix frozen in the pre-join regime (cold GK
	// re-routes everyone every phase), so extra full phases let them shift
	// flow off the newly contended links. Leaves: the rollback frees the
	// departed session's capacity, and the survivors' extra phases — routed
	// under lengths where the rolled-back edges are attractive again — are
	// what actually re-packs it. Per-phase gains are demand-proportional, so
	// fairness ratios are preserved either way.
	// Leaves owe proportionally fewer phases than joins: survivors grow into
	// freed capacity (their existing trees just get cheaper), while a join
	// actively contends with incumbents' placed flow, which takes several
	// dilution rounds to shift (see warmRebalanceFactor).
	churnDem, totDem := w.pendingLeaveDem*(warmLeaveRebalanceFactor/warmRebalanceFactor), 0.0
	for slot, s := range w.sessions {
		if w.active[slot] {
			totDem += s.Demand
		}
	}

	if len(w.pendingJoins) > 0 {
		ratio := w.rawRatio()
		if ratio <= 0 {
			// Every anchored session departed; there is no fair-share level
			// to catch newcomers up to.
			return errWarmFallback
		}
		slots := append([]int(nil), w.pendingJoins...)
		chunks := make([]float64, len(slots))
		for i, slot := range slots {
			s := w.sessions[slot]
			w.dem[slot] = s.Demand * w.demScale
			chunks[i] = s.Demand * ratio / float64(w.phases)
			churnDem += s.Demand
		}
		for ph := 0; ph < w.phases; ph++ {
			if !charge(len(slots)) {
				return errWarmFallback
			}
			if err := w.routePhase(slots, chunks, false); err != nil {
				return err
			}
		}
		w.pendingJoins = w.pendingJoins[:0]
	}
	w.pendingLeaveDem = 0
	rebalance := 0
	if churnDem > 0 {
		rebalance = int(math.Ceil(warmRebalanceFactor * float64(w.phases) * churnDem / totDem))
	}

	if rebalance > 0 || w.bigD < 1 {
		slots := make([]int, 0, w.nActive)
		amounts := make([]float64, 0, w.nActive)
		for slot := range w.sessions {
			if w.active[slot] {
				slots = append(slots, slot)
				amounts = append(amounts, w.dem[slot])
			}
		}
		for ph := 0; ph < rebalance; ph++ {
			if !charge(len(slots)) {
				return errWarmFallback
			}
			if err := w.routePhase(slots, amounts, false); err != nil {
				return err
			}
		}
		// Safety bound, mirroring the cold loop's per-doubling phase budget
		// (Lemma 6): re-growing from a rollback needs strictly fewer phases
		// than the anchor's own doubling round did, so tripping this means
		// drift — re-anchor cold rather than loop.
		m := float64(w.g.NumEdges())
		safety := int(2.5*math.Log(m/(1-w.eps))/math.Log(1+w.eps)/w.eps) + 2
		for ph := 0; w.bigD < 1; ph++ {
			if ph >= safety || !charge(len(slots)) {
				return errWarmFallback
			}
			if err := w.routePhase(slots, amounts, true); err != nil {
				return err
			}
		}
	}
	w.stats.RepairPhases += used
	w.repairSpent += used
	return nil
}

// cold re-anchors: a full MaxConcurrentFlow solve over the active sessions,
// whose terminal state is captured and mapped back onto the slots. All warm
// state (including any partially applied repair) is discarded — the anchor
// builds its own problem, oracles, and ledger from scratch.
func (w *Warm) cold() error {
	denseSessions := make([]*overlay.Session, 0, w.nActive)
	denseToSlot := make([]int, 0, w.nActive)
	for slot, s := range w.sessions {
		if !w.active[slot] {
			continue
		}
		denseSessions = append(denseSessions, &overlay.Session{ID: len(denseSessions), Members: s.Members, Demand: s.Demand})
		denseToSlot = append(denseToSlot, slot)
	}
	p, err := NewProblemWeighted(w.g, denseSessions, w.mode, w.routeWeights)
	if err != nil {
		return fmt.Errorf("core: warm cold anchor: %w", err)
	}
	cap := &warmCapture{}
	res, err := MaxConcurrentFlow(p, MaxConcurrentFlowOptions{
		Epsilon: w.eps, Parallel: true, Workers: w.opts.Workers,
		DisablePlane: w.opts.DisablePlane, DisableRepair: w.opts.DisableRepair,
		DisableSubtreeRepair: w.opts.DisableSubtreeRepair,
		Shards:               w.opts.Shards, ShardLabels: w.opts.ShardLabels,
		capture: cap,
	})
	if err != nil {
		return fmt.Errorf("core: warm cold anchor: %w", err)
	}
	n := len(w.sessions)
	w.d, w.base, w.bigD, w.phases = cap.ledger, cap.base, cap.bigD, cap.phases
	if w.phases < 1 {
		w.phases = 1
	}
	w.demScale = cap.dem[0] / denseSessions[0].Demand
	w.raw = make([][]TreeFlow, n)
	w.rawIndex = make([]map[uint64]int, n)
	w.bumps = make([][]warmBump, n)
	w.dem = make([]float64, n)
	for dense, slot := range denseToSlot {
		w.raw[slot] = cap.raw[dense]
		w.bumps[slot] = cap.bumps[dense]
		w.dem[slot] = cap.dem[dense]
	}
	w.shrinkOK = w.d.Epoch()
	w.pendingJoins = w.pendingJoins[:0]
	w.pendingLeaveDem = 0
	w.dirty = false
	w.forceCold = false
	w.repairSpent = 0
	w.stats.ColdSolves++
	w.stats.MSTOps += res.MSTOps + res.PrestepMSTOps
	w.stats.Plane.Merge(res.Solution.Plane)
	w.stats.Shards.Merge(res.Shards)
	return nil
}

// Snapshot refreshes and returns the current exactly feasible allocation
// over the active sessions, reindexed densely in arrival order. A snapshot
// taken right after a cold anchor is bit-identical to that cold solve's
// Solution; after warm repair it stays exactly feasible by the same final
// rescale. The returned Solution owns its trees (rebuilt under the dense
// ids) and does not alias warm state.
func (w *Warm) Snapshot() (*Solution, error) {
	if err := w.Refresh(); err != nil {
		return nil, err
	}
	sessions := make([]*overlay.Session, 0, w.nActive)
	flows := make([][]TreeFlow, 0, w.nActive)
	for slot, s := range w.sessions {
		if !w.active[slot] {
			continue
		}
		newID := len(sessions)
		rs := &overlay.Session{ID: newID, Members: s.Members, Demand: s.Demand}
		fs := make([]TreeFlow, 0, len(w.raw[slot]))
		for _, tf := range w.raw[slot] {
			if tf.Rate > 0 {
				fs = append(fs, TreeFlow{Tree: overlay.NewTree(newID, tf.Tree.Pairs, tf.Tree.Routes), Rate: tf.Rate})
			}
		}
		sessions = append(sessions, rs)
		flows = append(flows, fs)
	}
	sol := &Solution{G: w.g, Sessions: sessions, Flows: flows, MSTOps: w.stats.MSTOps, Phases: w.phases}
	sol.Plane = w.Stats().Plane
	if cong := sol.MaxCongestion(); cong > 0 {
		sol.Scale(1 / cong)
	}
	return sol, nil
}

// Close releases the repair runner's worker pool. The allocator must not be
// used afterwards; Close is idempotent.
func (w *Warm) Close() {
	if w.runner != nil {
		w.runner.Close()
		w.runner = nil
	}
}

// warmRebalanceFactor scales the rebalance phases owed per unit of joining
// demand share (see warmRepair). Higher factors converge the warm mix toward
// the cold solution at proportionally higher repair cost; 4 is the smallest
// integer factor that empirically keeps post-join snapshots within the
// (1+eps) band of a cold solve (TestWarmJoinQualityVsExact) while a refresh
// still costs O(phases·(1+factor·k·share)) session-phases versus the cold
// loop's O(phases·k).
const warmRebalanceFactor = 4.0

// warmReanchorFactor sets the amortized re-anchor schedule: the warm path
// re-anchors cold once the repair session-phases accumulated since the last
// anchor exceed this many cold solves' worth (phases·k each). Smaller values
// bound compounded drift tighter; larger values re-anchor less often and push
// steady-state refresh throughput closer to the pure-warm ceiling. 1 keeps
// the replayed churn allocations' mean snapshot throughput inside the ε band
// of the cold baseline's (0.93–0.96 of cold across seeds) while sustaining
// the ≥2× steady-state speedup the warm path exists for (measured 2.5–2.9×).
const warmReanchorFactor = 1

// warmLeaveRebalanceFactor is the per-unit-demand-share rebalance owed for a
// departure. Re-packing freed capacity converges faster than shifting flow
// away from a newcomer's contention (the survivors' marginal trees improve
// monotonically once the rollback deflates the freed edges), so departures
// owe fewer phases than joins.
const warmLeaveRebalanceFactor = 1.0
