package overlay

import "overcast/internal/graph"

// This file implements the plane's inverted edge->rows index and the per-row
// pending-dirt state it feeds — the classification side of subtree repair.
// With the index enabled, the batch driver replays the ledger journal ONCE
// per batch (BatchRunner.stagePlane) and fans each touched edge to exactly
// the rows whose stored parent tree uses it, in O(touched x affected rows),
// instead of replaying the journal per referenced row. What accumulates per
// row is not just a dirty bit but the dirty subtree *roots* (the child
// endpoints of touched tree edges), which is precisely the input
// routing.RepairSubtreesInto needs.
//
// Entries are self-validating: a (row, child) entry under edge e is live iff
// parents[row][child] == e right now. That makes the index append-only —
// fills and subtree repairs append entries for the parent edges they write
// and never hunt down the entries they obsolete (a row-version scheme would
// wrongly kill still-live entries on a partial subtree update). Dead and
// duplicate entries are skipped lazily by MarkTouched and garbage-collected
// wholesale by an amortized rebuild once the appended volume outgrows twice
// the live bound.

// maxDirtyRoots caps a row's pending dirty-root list. A batch that touches
// more stored subtrees than this in one row usually means the subtree walk
// will bail on size anyway; past the cap the row latches dirtyLost and
// classifies by the conservative target-walk path until its next content
// write. The cap only bounds scratch memory (nested roots dedup in the walk),
// so it sits well above typical root counts — on the livestream workload,
// where one routed tree bump dirties most rows, the old cap of 64 forced a
// fifth of all revalidations straight to refill.
const maxDirtyRoots = 256

// planeIdxRef is one inverted-index entry: row's stored parent tree reaches
// child through the edge this entry is filed under.
type planeIdxRef struct {
	row   int32
	child int32
}

type planeIndex struct {
	// edgeRows[e] lists the (row, child) pairs whose stored parent edge is —
	// or once was — e; see the self-validation contract above.
	edgeRows [][]planeIdxRef
	// appends counts entries appended since the last rebuild, the GC trigger.
	appends int
}

// EnableIndex allocates the inverted edge->rows index (idempotent). The batch
// driver enables it together with repair; one-shot plane consumers never pay
// for it.
func (p *Plane) EnableIndex() {
	if p.idx == nil {
		p.idx = &planeIndex{edgeRows: make([][]planeIdxRef, p.g.NumEdges())}
	}
}

// MarkTouched fans one ledger touch of edge e to every row whose stored
// parent tree currently uses e, recording the child endpoint as a pending
// dirty subtree root. Dead entries (the stored parent moved on) are skipped
// by the self-validation probe. No-op when the index is disabled.
func (p *Plane) MarkTouched(e graph.EdgeID) {
	if p.idx == nil {
		return
	}
	for _, ref := range p.idx.edgeRows[e] {
		row, child := int(ref.row), int(ref.child)
		if p.parents[row][child] != e {
			continue
		}
		p.addDirty(row, graph.NodeID(child))
	}
}

func (p *Plane) addDirty(row int, child graph.NodeID) {
	if p.dirtyLost[row] {
		return
	}
	roots := p.dirtyRoots[row]
	if len(roots) >= maxDirtyRoots {
		p.dirtyLost[row] = true
		return
	}
	// Duplicates (the same edge touched twice in the window, or a duplicate
	// index entry) are tolerated: the repair's subtree walk deduplicates via
	// its visited marks, and dupes only consume cap headroom.
	p.dirtyRoots[row] = append(roots, child)
}

// dirtyNew reports whether row has pending dirt — dirty roots recorded since
// the last time its dirt was consumed, or an unknowable window (dirtyLost).
// False means no touched edge has entered the row's stored tree since the
// row's dirt was last consumed, the O(1) skip certificate.
func (p *Plane) dirtyNew(row int) bool {
	return p.dirtyLost[row] || len(p.dirtyRoots[row]) > 0
}

// clearDirty resets row's dirt state after it was consumed: by a content
// write (fill, seed copy, or subtree repair) that made the stored content
// exact again, or by a successful target-walk validation (which verifies
// every read path clean up to the walk epoch — and read paths are a subset
// of the stored tree the index watches, so pending dirt carries no further
// information for a serviceable row).
func (p *Plane) clearDirty(row int) {
	p.dirtyRoots[row] = p.dirtyRoots[row][:0]
	p.dirtyLost[row] = false
}

// loseAllDirty latches every staged row onto the conservative classification
// path: the journal window no longer covers the driver's walk position, so
// per-row pending dirt is unknowable until the row's next content write.
func (p *Plane) loseAllDirty() {
	for row := range p.sources {
		p.dirtyLost[row] = true
	}
}

// rowExact reports whether row's stored content is exactly what a fresh fill
// would produce (true after every content write, false once a target-walk
// skip left unread parts of the row stale). Subtree repair seeds its resumed
// heap from the row's frontier distances, so it is only sound on exact rows.
func (p *Plane) rowExact(row int) bool { return p.exact[row] }

func (p *Plane) setExact(row int, v bool) { p.exact[row] = v }

// indexRow appends index entries for every parent edge of row's stored tree
// (after a full fill or seed copy).
func (p *Plane) indexRow(row int) {
	if p.idx == nil {
		return
	}
	for v, e := range p.parents[row] {
		if e >= 0 {
			p.idx.add(e, row, v)
		}
	}
	p.maybeRebuildIndex()
}

// indexNodes appends index entries for the given nodes' parent edges (after a
// subtree repair rewrote exactly those nodes).
func (p *Plane) indexNodes(row int, nodes []graph.NodeID) {
	if p.idx == nil {
		return
	}
	parents := p.parents[row]
	for _, v := range nodes {
		if e := parents[v]; e >= 0 {
			p.idx.add(e, row, v)
		}
	}
	p.maybeRebuildIndex()
}

func (ix *planeIndex) add(e graph.EdgeID, row, child int) {
	ix.edgeRows[e] = append(ix.edgeRows[e], planeIdxRef{row: int32(row), child: int32(child)})
	ix.appends++
}

func (ix *planeIndex) clear() {
	for i := range ix.edgeRows {
		ix.edgeRows[i] = ix.edgeRows[i][:0]
	}
	ix.appends = 0
}

// maybeRebuildIndex garbage-collects dead and duplicate entries by rebuilding
// the index from the stored parent trees once the appended volume outgrows
// twice the live bound (sources x (n-1) live entries at most). Amortized: a
// rebuild costs one pass over the rows that were appended to get here.
func (p *Plane) maybeRebuildIndex() {
	if p.idx.appends <= 2*len(p.sources)*p.g.NumNodes()+1024 {
		return
	}
	p.rebuildIndex()
}

// rebuildIndex reconstructs the index from scratch: exactly one entry per
// live (row, child) pair. Pending dirt state is untouched — it tracks ledger
// history, not index shape. The append counter restarts at zero so the next
// GC triggers only after post-rebuild appends outgrow the live bound again —
// counting the rebuild's own (all-live) entries would re-trigger at half the
// intended garbage ratio.
func (p *Plane) rebuildIndex() {
	p.idx.clear()
	for row := range p.sources {
		for v, e := range p.parents[row] {
			if e >= 0 {
				p.idx.add(e, row, v)
			}
		}
	}
	p.idx.appends = 0
}
