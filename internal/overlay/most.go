package overlay

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// TreeOracle produces the "minimum overlay spanning tree" of one session
// under a given physical edge-length function d_e — the separation oracle at
// the heart of every algorithm in the paper (MaxFlow line 5,
// MaxConcurrentFlow line 7, Online-MinCongestion line 4).
type TreeOracle interface {
	// Session returns the session the oracle serves.
	Session() *Session
	// MinTree returns a minimum-total-length overlay spanning tree under d.
	MinTree(d graph.Lengths) (*Tree, error)
	// MaxRouteHops returns U, an upper bound on the length (in hops) of any
	// unicast route the oracle may use; it parametrizes the FPTAS's delta.
	MaxRouteHops() int
}

// ScratchOracle is implemented by oracles that can run MinTree against
// caller-pooled scratch state, avoiding per-call allocation. Both built-in
// oracles implement it; the solvers thread one Scratch per worker through
// their iteration loops.
type ScratchOracle interface {
	TreeOracle
	// MinTreeWith is MinTree reusing sc's buffers. The returned tree does
	// not alias sc and stays valid across further calls.
	MinTreeWith(d graph.Lengths, sc *Scratch) (*Tree, error)
}

// MinTreeWith evaluates o's minimum tree under d, reusing sc when the oracle
// supports scratch state (falling back to plain MinTree otherwise). sc may
// serve many oracles over the same graph, one call at a time.
func MinTreeWith(o TreeOracle, d graph.Lengths, sc *Scratch) (*Tree, error) {
	if so, ok := o.(ScratchOracle); ok && sc != nil {
		return so.MinTreeWith(d, sc)
	}
	return o.MinTree(d)
}

// PlaneOracle is implemented by oracles whose per-call SSSP work can be
// served from a shared Plane: the oracle names the Dijkstra sources MinTree
// would run, and can assemble its tree from plane rows computed elsewhere.
// ArbitraryOracle implements it (its entire per-call Dijkstra cost is
// shareable); FixedOracle does not (its routes are resolved at construction,
// so there is nothing to share per call).
type PlaneOracle interface {
	ScratchOracle
	// PlaneSources returns the Dijkstra source nodes a MinTree call runs —
	// the session's members. The slice is oracle-owned; do not mutate.
	PlaneSources() []graph.NodeID
	// MinTreeFromPlane is MinTreeWith reading each member's SSSP row from pl
	// instead of computing it. Every source from PlaneSources must be staged
	// and filled on pl under the same d; the result is then bitwise identical
	// to MinTreeWith's (identical Dijkstras, identical assembly).
	MinTreeFromPlane(d graph.Lengths, pl *Plane, sc *Scratch) (*Tree, error)
}

// primComplete runs Prim's algorithm over the complete graph on n vertices
// with the given symmetric weight function, rooted at vertex 0, returning
// the tree's vertex-pair edges. O(n^2), which is optimal for dense graphs.
// Ties break toward smaller vertex ids for determinism.
func primComplete(n int, weight func(i, j int) float64) [][2]int {
	const inf = 1e308
	inTree := make([]bool, n)
	best := make([]float64, n)
	bestFrom := make([]int, n)
	for i := range best {
		best[i] = inf
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		best[j] = weight(0, j)
		bestFrom[j] = 0
	}
	pairs := make([][2]int, 0, n-1)
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (pick < 0 || best[j] < best[pick]) {
				pick = j
			}
		}
		inTree[pick] = true
		pairs = append(pairs, [2]int{bestFrom[pick], pick})
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := weight(pick, j); w < best[j] {
					best[j] = w
					bestFrom[j] = pick
				}
			}
		}
	}
	return pairs
}

// FixedOracle is the Sec. II oracle: every member pair communicates over its
// fixed IP route. Routes are resolved once at construction; per-iteration
// work is only the re-weighting of the overlay complete graph under the
// current d_e.
type FixedOracle struct {
	g       *graph.Graph
	session *Session
	// routes[i][j] is the fixed route between members i and j (i < j).
	routes  [][]routing.Path
	maxHops int
}

// NewFixedOracle resolves all pairwise IP routes of the session from rt.
func NewFixedOracle(g *graph.Graph, rt *routing.IPRoutes, s *Session) (*FixedOracle, error) {
	n := s.Size()
	o := &FixedOracle{g: g, session: s, routes: make([][]routing.Path, n)}
	for i := 0; i < n; i++ {
		o.routes[i] = make([]routing.Path, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p, err := rt.Route(s.Members[i], s.Members[j])
			if err != nil {
				return nil, fmt.Errorf("overlay: session %d members %d,%d: %w", s.ID, s.Members[i], s.Members[j], err)
			}
			o.routes[i][j] = p
			o.routes[j][i] = p.Reverse()
			if p.Hops() > o.maxHops {
				o.maxHops = p.Hops()
			}
		}
	}
	return o, nil
}

// Session implements TreeOracle.
func (o *FixedOracle) Session() *Session { return o.session }

// MaxRouteHops implements TreeOracle.
func (o *FixedOracle) MaxRouteHops() int { return o.maxHops }

// Route returns the fixed route between member indices i and j.
func (o *FixedOracle) Route(i, j int) routing.Path { return o.routes[i][j] }

// MinTree implements TreeOracle: Prim over the overlay complete graph where
// the weight of overlay edge (i,j) is the d-length of the fixed route.
func (o *FixedOracle) MinTree(d graph.Lengths) (*Tree, error) {
	return o.MinTreeWith(d, NewScratch(o.g))
}

// MinTreeWith implements ScratchOracle.
func (o *FixedOracle) MinTreeWith(d graph.Lengths, sc *Scratch) (*Tree, error) {
	n := o.session.Size()
	// Precompute pairwise route lengths under d.
	w := sc.weights(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l := d.PathLength(o.routes[i][j].Edges)
			w[i*n+j], w[j*n+i] = l, l
		}
	}
	raw := primInto(sc, n, func(i, j int) float64 { return w[i*n+j] })
	// Normalize pairs to i<j up front: o.routes[i][j] is already oriented
	// i -> j, so no route reversal is needed.
	pairs := make([][2]int, len(raw))
	routes := make([]routing.Path, len(raw))
	for k, p := range raw {
		i, j := p[0], p[1]
		if i > j {
			i, j = j, i
		}
		pairs[k] = [2]int{i, j}
		routes[k] = o.routes[i][j]
	}
	return newSortedTree(sc, o.session.ID, pairs, routes), nil
}

// ArbitraryOracle is the Sec. V oracle: overlay edges follow the *shortest*
// unicast path under the current d_e, recomputed every call with one
// Dijkstra per member (Sec. V-B).
type ArbitraryOracle struct {
	g       *graph.Graph
	session *Session
	maxHops int
}

// NewArbitraryOracle builds the dynamic-routing oracle for s over g. maxHops
// (U) is |V|-1: a shortest path under positive lengths is simple, and no
// tighter static bound is sound — the hop diameter of the *fixed* IP routes
// does not bound shortest paths under the solver's adversarially inflated
// length functions, which can legitimately take long detours around loaded
// links. (Earlier revisions accepted an IPRoutes table here and silently
// discarded it; the oracle needs no route table at all.)
func NewArbitraryOracle(g *graph.Graph, s *Session) (*ArbitraryOracle, error) {
	return &ArbitraryOracle{g: g, session: s, maxHops: g.NumNodes() - 1}, nil
}

// Session implements TreeOracle.
func (o *ArbitraryOracle) Session() *Session { return o.session }

// MaxRouteHops implements TreeOracle.
func (o *ArbitraryOracle) MaxRouteHops() int { return o.maxHops }

// MinTree implements TreeOracle: one Dijkstra per member under d gives all
// overlay edge weights and routes; Prim then picks the tree. The route for
// overlay pair (i,j) is read from the Dijkstra tree rooted at the
// smaller-indexed member, so the choice is deterministic.
func (o *ArbitraryOracle) MinTree(d graph.Lengths) (*Tree, error) {
	return o.MinTreeWith(d, NewScratch(o.g))
}

// MinTreeWith implements ScratchOracle.
func (o *ArbitraryOracle) MinTreeWith(d graph.Lengths, sc *Scratch) (*Tree, error) {
	n := o.session.Size()
	dists, parents := sc.memberTrees(n)
	sp := sc.dijkstra()
	for i := 0; i < n; i++ {
		sp.ShortestPathsInto(o.g, o.session.Members[i], d, dists[i], parents[i])
	}
	return o.treeFromMemberRows(sc, dists, parents)
}

// PlaneSources implements PlaneOracle: the Dijkstra sources are the members.
func (o *ArbitraryOracle) PlaneSources() []graph.NodeID { return o.session.Members }

// MinTreeFromPlane implements PlaneOracle: per-member SSSP rows are read from
// pl (falling back to MinTreeWith if a member was not staged, which a correct
// batch driver never triggers). Identical rows make the result bitwise
// identical to MinTreeWith under the same d.
func (o *ArbitraryOracle) MinTreeFromPlane(d graph.Lengths, pl *Plane, sc *Scratch) (*Tree, error) {
	n := o.session.Size()
	dists, parents := sc.memberRows(n)
	for i, m := range o.session.Members {
		dd, pp, ok := pl.Lookup(m)
		if !ok {
			return o.MinTreeWith(d, sc)
		}
		dists[i], parents[i] = dd, pp
	}
	return o.treeFromMemberRows(sc, dists, parents)
}

// treeFromMemberRows assembles the minimum overlay tree from per-member SSSP
// rows (dists[i]/parents[i] rooted at Members[i]), whether scratch-computed
// or plane-borrowed: Prim over the overlay complete graph, then route
// extraction from the smaller member's Dijkstra tree.
func (o *ArbitraryOracle) treeFromMemberRows(sc *Scratch, dists [][]float64, parents [][]graph.EdgeID) (*Tree, error) {
	n := o.session.Size()
	weight := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return dists[i][o.session.Members[j]]
	}
	raw := primInto(sc, n, weight)
	// Normalize pairs to i<j up front; the route is extracted from the
	// smaller member's Dijkstra tree, already oriented i -> j.
	pairs := make([][2]int, len(raw))
	routes := make([]routing.Path, len(raw))
	for k, p := range raw {
		i, j := p[0], p[1]
		if i > j {
			i, j = j, i
		}
		r, err := routing.DijkstraRoute(o.g, o.session.Members[i], o.session.Members[j], parents[i])
		if err != nil {
			return nil, fmt.Errorf("overlay: session %d dynamic route %d-%d: %w", o.session.ID, i, j, err)
		}
		pairs[k] = [2]int{i, j}
		routes[k] = r
	}
	return newSortedTree(sc, o.session.ID, pairs, routes), nil
}
