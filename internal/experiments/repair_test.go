package experiments

import (
	"testing"

	"overcast/internal/core"
	"overcast/internal/workload"
)

// TestRepairToggleBitIdenticalScenarios sweeps the dirty-source-repair and
// subtree-repair toggles against every registered workload scenario at
// workers 1/2/8: the arbitrary-routing MaxFlow outputs (rates, tree counts,
// op counts) must be bitwise independent of all three knobs, repair must
// have skipped at least one refill somewhere in the sweep, and the subtree
// path must have fired somewhere too — neither invariant may be pinned
// vacuously.
func TestRepairToggleBitIdenticalScenarios(t *testing.T) {
	totalSkipped, totalSubtree := 0, 0
	for _, scenario := range workload.Names() {
		si, err := NewScaleInstance(5151, ScaleConfig{
			Nodes: 150, Sessions: 8, Scenario: scenario, Arbitrary: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		type fp struct {
			mstOps int
			rates  [8]float64
			trees  [8]int
		}
		var base *fp
		for _, workers := range []int{1, 2, 8} {
			for _, mode := range []struct {
				disableRepair, disableSubtree bool
			}{{false, false}, {false, true}, {true, true}} {
				sol, err := core.MaxFlow(si.Problem, core.MaxFlowOptions{
					Epsilon: 0.35, Parallel: true, Workers: workers,
					DisableRepair: mode.disableRepair, DisableSubtreeRepair: mode.disableSubtree,
				})
				if err != nil {
					t.Fatalf("%s workers=%d repair=%v subtree=%v: %v",
						scenario, workers, !mode.disableRepair, !mode.disableSubtree, err)
				}
				totalSkipped += sol.Plane.PlaneSkipped
				totalSubtree += sol.Plane.PlaneSubtreeRepaired
				if mode.disableSubtree && sol.Plane.PlaneSubtreeRepaired != 0 {
					t.Fatalf("%s workers=%d: subtree disabled but PlaneSubtreeRepaired=%d",
						scenario, workers, sol.Plane.PlaneSubtreeRepaired)
				}
				got := fp{mstOps: sol.MSTOps}
				for i := range si.Sessions {
					got.rates[i] = sol.SessionRate(i)
					got.trees[i] = sol.TreeCount(i)
				}
				if base == nil {
					base = &got
					continue
				}
				if got != *base {
					t.Fatalf("%s workers=%d repair=%v subtree=%v: fingerprint differs:\n%+v\nvs\n%+v",
						scenario, workers, !mode.disableRepair, !mode.disableSubtree, got, *base)
				}
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("repair never skipped a refill across any scenario — the toggle test is vacuous")
	}
	if totalSubtree == 0 {
		t.Fatal("subtree repair never fired across any scenario — the toggle test is vacuous")
	}
}

// TestReportDeterministicAndSane pins the MF-vs-MCF report: rows must be a
// pure function of the seed (they are detdump-fingerprinted), and the
// directional story must hold — MCF equalizes demand-satisfaction ratios
// (Jain fairness near 1, and never below MaxFlow's), which is the entire
// point of the M2 objective.
func TestReportDeterministicAndSane(t *testing.T) {
	tiers := []ReportTier{{Name: "small", Nodes: 300, Sessions: 12}}
	rows, err := MFvsMCFReport(2029, 0.3, ReportSolverOptions{}, nil, tiers)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(workload.Names()) {
		t.Fatalf("%d rows for %d scenarios", len(rows), len(workload.Names()))
	}
	for i := 0; i < len(rows); i += 2 {
		mf, mcf := rows[i], rows[i+1]
		if mf.Solver != "maxflow" || mcf.Solver != "mcf" || mf.Scenario != mcf.Scenario {
			t.Fatalf("row pairing broken at %d: %+v / %+v", i, mf, mcf)
		}
		if mcf.Fairness < 0.99 {
			t.Errorf("%s: MCF fairness %.4f, want ~1 (max-min equalizes ratios)", mcf.Scenario, mcf.Fairness)
		}
		if mcf.Fairness < mf.Fairness {
			t.Errorf("%s: MCF fairness %.4f below MaxFlow's %.4f", mcf.Scenario, mcf.Fairness, mf.Fairness)
		}
		if mcf.MinRatio < mf.MinRatio {
			t.Errorf("%s: MCF min satisfaction %.4f below MaxFlow's %.4f — M2 lost its own objective", mcf.Scenario, mcf.MinRatio, mf.MinRatio)
		}
	}
	again, err := MFvsMCFReport(2029, 0.3,
		ReportSolverOptions{Workers: 2, DisablePlane: true, DisableRepair: true, Shards: 2},
		[]string{"cdn"}, tiers)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Scenario != "cdn" {
			continue
		}
		found := false
		for _, b := range again {
			if b.Solver == row.Solver && b == row {
				found = true
			}
		}
		if !found {
			t.Fatalf("cdn %s row not reproduced across workers/plane/repair settings: %+v vs %+v", row.Solver, row, again)
		}
	}
}
