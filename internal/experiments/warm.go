package experiments

// The warm-churn tier drives the v2 Allocator surface (session handles +
// warm-start incremental re-solve) with an arrival/departure trace and a
// periodic Snapshot cadence: the steady-state question is how many fresh
// ε-feasible fair allocations per second the allocator sustains while the
// population churns underneath it. The cold baseline answers the same
// question with warm-start disabled (every refresh is a full re-solve), so
// the pair of rows is the tentpole speedup measurement.

import (
	"fmt"
	"time"

	"overcast"
	"overcast/internal/churn"
	"overcast/internal/rng"
)

// WarmChurnConfig describes one warm-start churn replay.
type WarmChurnConfig struct {
	Nodes int // Waxman topology size
	// Arrival process (sessions per time unit, exponential mean lifetime,
	// trace length) and uniform session-size range.
	ArrivalRate      float64
	MeanLifetime     float64
	Horizon          float64
	SizeMin, SizeMax int
	Demand           float64
	Mu               float64 // online step size (default 30)
	Epsilon          float64 // FPTAS error for the fair allocation (default 0.1)
	Arbitrary        bool    // arbitrary dynamic routing instead of fixed IP
	Workers          int     // solver worker pool (0 = GOMAXPROCS); outputs are worker-count independent
	DisablePlane     bool
	DisableRepair    bool
	// DisableSubtreeRepair turns off the plane's incremental subtree repair
	// (see overcast.AllocatorOptions); outputs are toggle-independent.
	DisableSubtreeRepair bool
	// Shards runs the allocator's refreshes on price-exchanging shards (see
	// overcast.AllocatorOptions.Shards). 0 = unsharded; outputs are
	// shard-count independent.
	Shards int
	// SnapshotEvery refreshes the fair allocation every N churn events
	// (default 4) — the consumer polling cadence.
	SnapshotEvery int
	// ColdBaseline disables warm-start (every refresh re-solves from
	// scratch); the warm row's speedup is measured against this.
	ColdBaseline bool
}

func (c *WarmChurnConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: warm churn run needs >=8 nodes, got %d", c.Nodes)
	}
	// Defaults model the steady-state regime warm-start targets: a sizable
	// long-lived population (mean concurrency ≈ ArrivalRate·MeanLifetime ≈
	// 24) with one or two churn events between consecutive snapshots, so a
	// refresh repairs a small demand share instead of re-solving for everyone.
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 2
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 12
	}
	if c.Horizon <= 0 {
		c.Horizon = 25
	}
	if c.SizeMin < 2 {
		c.SizeMin = 3
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = c.SizeMin + 3
	}
	if c.Demand <= 0 {
		c.Demand = 1
	}
	if c.Mu <= 0 {
		c.Mu = 30
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1
	}
	return nil
}

// WarmChurnReport summarizes one replay.
type WarmChurnReport struct {
	Config          WarmChurnConfig
	Sessions        int // sessions in the trace
	PeakConcurrency int
	// Snapshots counts the ε-feasible fair allocations produced during the
	// replay; AllocationsPerSec is the steady-state rate they were sustained
	// at (Snapshots / ReplayTime).
	Snapshots         int
	AllocationsPerSec float64
	// WarmRefreshes / ColdSolves split the snapshots' refreshes by path;
	// RepairPhases counts warm session-phases and MSTOps the spanning-tree
	// computations across the whole replay (joins included).
	WarmRefreshes, ColdSolves int
	RepairPhases, MSTOps      int
	FinalActive               int
	// Throughput and MinRate describe the last snapshot's allocation (zero
	// when no session survives to the horizon); Throughputs records every
	// snapshot's overall throughput in event order, so two replays of the
	// same trace can be compared snapshot-by-snapshot.
	Throughput  float64
	MinRate     float64
	Throughputs []float64
	ReplayTime  time.Duration
}

// String renders the report for cmd/experiments output.
func (r WarmChurnReport) String() string {
	mode := "warm"
	if r.Config.ColdBaseline {
		mode = "cold"
	}
	return fmt.Sprintf("%-5s n=%-6d sessions=%-5d peak=%-4d snaps=%-5d warm=%-5d cold=%-5d repair=%-6d mstops=%-6d thpt=%-12.2f minrate=%-10.4f alloc/s=%-10.1f replay=%v",
		mode, r.Config.Nodes, r.Sessions, r.PeakConcurrency, r.Snapshots,
		r.WarmRefreshes, r.ColdSolves, r.RepairPhases, r.MSTOps,
		r.Throughput, r.MinRate, r.AllocationsPerSec,
		r.ReplayTime.Round(time.Millisecond))
}

// WarmChurnRun generates a deterministic churn trace and replays it through
// the v2 Allocator: every arrival is admitted online (and caught up to the
// anchored fair share at the next refresh), every departure rolled back
// exactly, and every SnapshotEvery events a fresh ε-feasible fair allocation
// is produced — incrementally warm-started unless cfg.ColdBaseline forces
// the cold path.
func WarmChurnRun(seed uint64, cfg WarmChurnConfig) (*WarmChurnReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	net, err := overcast.WaxmanNetwork(cfg.Nodes, 0, seed)
	if err != nil {
		return nil, err
	}
	trace, err := churn.Generate(churn.Config{
		Nodes:        cfg.Nodes,
		ArrivalRate:  cfg.ArrivalRate,
		MeanLifetime: cfg.MeanLifetime,
		Horizon:      cfg.Horizon,
		SizeMin:      cfg.SizeMin,
		SizeMax:      cfg.SizeMax,
		Demand:       cfg.Demand,
	}, rng.New(seed+1))
	if err != nil {
		return nil, err
	}
	routing := overcast.RoutingIP
	if cfg.Arbitrary {
		routing = overcast.RoutingArbitrary
	}
	opts := overcast.AllocatorOptions{
		Mu: cfg.Mu, Epsilon: cfg.Epsilon, Routing: routing,
		Workers: cfg.Workers, DisablePlane: cfg.DisablePlane, DisableRepair: cfg.DisableRepair,
		DisableSubtreeRepair: cfg.DisableSubtreeRepair,
		Shards:               cfg.Shards,
	}
	if cfg.ColdBaseline {
		opts.RepairPhaseBudget = -1
	}
	alloc, err := overcast.NewAllocator(net, opts)
	if err != nil {
		return nil, err
	}
	defer alloc.Close()

	rep := &WarmChurnReport{
		Config:   cfg,
		Sessions: len(trace.Sessions), PeakConcurrency: trace.PeakConcurrency(),
	}
	start := time.Now()
	ids := make(map[int]overcast.SessionID, len(trace.Sessions))
	var last *overcast.Allocation
	for ei, ev := range trace.Events {
		spec := trace.Sessions[ev.Session]
		switch ev.Kind {
		case churn.Join:
			p, err := alloc.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand})
			if err != nil {
				return nil, fmt.Errorf("experiments: warm churn join %d: %w", ev.Session, err)
			}
			ids[ev.Session] = p.Session
		case churn.Leave:
			// Departures clipped to the horizon are sessions still alive at
			// trace end; keep them admitted so the final allocation describes
			// the surviving population (mirrors ChurnRun).
			if spec.Depart >= cfg.Horizon {
				continue
			}
			if err := alloc.Leave(ids[ev.Session]); err != nil {
				return nil, fmt.Errorf("experiments: warm churn leave %d: %w", ev.Session, err)
			}
		}
		if (ei+1)%cfg.SnapshotEvery == 0 && alloc.Active() > 0 {
			if last, err = alloc.Snapshot(); err != nil {
				return nil, fmt.Errorf("experiments: warm churn snapshot at event %d: %w", ei, err)
			}
			rep.Snapshots++
			rep.Throughputs = append(rep.Throughputs, last.OverallThroughput())
		}
	}
	if alloc.Active() > 0 {
		if last, err = alloc.Snapshot(); err != nil {
			return nil, err
		}
		rep.Snapshots++
		rep.Throughputs = append(rep.Throughputs, last.OverallThroughput())
	}
	rep.ReplayTime = time.Since(start)
	if s := rep.ReplayTime.Seconds(); s > 0 {
		rep.AllocationsPerSec = float64(rep.Snapshots) / s
	}
	st := alloc.Stats()
	rep.WarmRefreshes, rep.ColdSolves = st.WarmRefreshes, st.ColdSolves
	rep.RepairPhases, rep.MSTOps = st.RepairPhases, st.MSTOps
	rep.FinalActive = alloc.Active()
	if last != nil {
		if err := last.Verify(); err != nil {
			return nil, fmt.Errorf("experiments: warm churn final allocation: %w", err)
		}
		rep.Throughput = last.OverallThroughput()
		rep.MinRate = last.MinSessionRate()
	}
	return rep, nil
}

// WarmQuality compares two replays of the same trace snapshot-by-snapshot
// and returns the mean warm/cold overall-throughput ratio (1.0 = warm-start
// matches the cold baseline exactly; the FPTAS target band is ≥ 1/(1+ε)).
// Averaging over every snapshot, rather than inspecting only the final one,
// removes the noise from where the last re-anchor happened to fall.
func WarmQuality(warm, cold *WarmChurnReport) float64 {
	n := len(warm.Throughputs)
	if len(cold.Throughputs) < n {
		n = len(cold.Throughputs)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		if cold.Throughputs[i] > 0 {
			sum += warm.Throughputs[i] / cold.Throughputs[i]
		}
	}
	return sum / float64(n)
}

// WarmChurnPair replays the same trace twice — warm-start on, then the cold
// baseline — and returns both reports. The warm row's AllocationsPerSec over
// the cold row's is the steady-state speedup the incremental re-solve buys.
func WarmChurnPair(seed uint64, cfg WarmChurnConfig) (warm, cold *WarmChurnReport, err error) {
	cfg.ColdBaseline = false
	if warm, err = WarmChurnRun(seed, cfg); err != nil {
		return nil, nil, err
	}
	cfg.ColdBaseline = true
	if cold, err = WarmChurnRun(seed, cfg); err != nil {
		return nil, nil, err
	}
	return warm, cold, nil
}
