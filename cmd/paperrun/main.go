// Command paperrun executes the paper-scale Setting A/B sweeps used to fill
// EXPERIMENTS.md, printing every table and the summary statistics of every
// figure. It is separated from cmd/experiments so the long-running
// record-keeping pass has a stable, minimal surface.
package main

import (
	"flag"
	"fmt"
	"time"

	"overcast/internal/experiments"
	"overcast/internal/stats"
)

func main() {
	part := flag.String("part", "a", "a = Setting A sweeps, b = Setting B grid")
	seed := flag.Uint64("seed", 2004, "seed")
	workers := flag.Int("workers", 0, "solver oracle worker-pool size (0 = sequential solves; the sweeps parallelize across rows/cells); outputs are worker-count independent")
	flag.Parse()
	switch *part {
	case "a":
		runA(*seed, *workers)
	case "b":
		runB(*seed, *workers)
	}
}

func runA(seed uint64, workers int) {
	start := time.Now()
	a, err := experiments.NewSettingA(seed, experiments.DefaultSettingA())
	if err != nil {
		panic(err)
	}
	a.SolverWorkers = workers
	fmt.Printf("# Setting A: %s, sessions %d+%d members, seed %d\n",
		a.Net.Name, a.Sessions[0].Size(), a.Sessions[1].Size(), seed)

	rows, sols, err := a.MaxFlowSweep(experiments.PaperRatios, false)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderFlowTable("Table II: MaxFlow (fixed IP routing)", rows))
	fig2(sols[5], "Fig 2 (ratio 0.95)")

	mrows, msols, err := a.MCFSweep(experiments.PaperRatios, false)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderMCFTable("Table IV: MaxConcurrentFlow (fixed IP routing)", mrows))
	fig2(msols[5], "Fig 3 (ratio 0.95)")
	util(sols[5], msols[5], "Fig 4 (ratio 0.95)")

	arows, asols, err := a.MaxFlowSweep(experiments.PaperRatios, true)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderFlowTable("Table VII: MaxFlow (arbitrary routing)", arows))
	fig2(asols[5], "Fig 7 (ratio 0.95)")

	abrows, absols, err := a.MCFSweep(experiments.PaperRatios, true)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderMCFTable("Table VIII: MaxConcurrentFlow (arbitrary routing)", abrows))
	fig2(absols[5], "Fig 8 (ratio 0.95)")
	util(asols[5], absols[5], "Fig 9 (ratio 0.95)")

	cfg := experiments.DefaultTreeLimit()
	cfg.Trials = 100
	res, err := a.TreeLimitSweep(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderTreeLimit(res))
	fmt.Printf("# Setting A done in %v\n", time.Since(start).Round(time.Second))
}

func fig2(sol interface {
	RateDistribution(i int) []float64
}, label string) {
	for i := 0; i < 2; i++ {
		rates := sol.RateDistribution(i)
		fmt.Printf("%s session %d: %d trees, top-90%% share in top %.1f%% of trees, Gini %.3f\n",
			label, i+1, len(rates), 100*stats.TopShareFraction(rates, 0.9), stats.Gini(rates))
	}
}

func util(mf, mcf interface{ Utilizations() []float64 }, label string) {
	um, uc := mf.Utilizations(), mcf.Utilizations()
	fmt.Printf("%s: MF %d covered links, mean util %.3f, median %.3f | MCF %d links, mean %.3f, median %.3f\n",
		label, len(um), stats.Mean(um), stats.Quantile(um, 0.5),
		len(uc), stats.Mean(uc), stats.Quantile(uc, 0.5))
}

func runB(seed uint64, workers int) {
	start := time.Now()
	b, err := experiments.NewSettingB(seed, experiments.SettingBConfig{ASes: 5, RoutersPerAS: 20, Capacity: 100})
	if err != nil {
		panic(err)
	}
	b.SolverWorkers = workers
	fmt.Printf("# Setting B: %s (scaled: 5 AS x 20 routers; paper: 10x100), seed %d\n", b.Net.Name, seed)
	cfg := experiments.GridConfig{
		SessionCounts: []int{1, 3, 5, 7, 9},
		SessionSizes:  []int{10, 20, 30, 40},
		Ratio:         0.95,
		Demand:        1,
	}
	grid, err := b.Grid(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("Fig 12: overall throughput (MaxFlow)")
	fmt.Print(grid.Throughput.Render())
	fmt.Println("Fig 13: physical edges per node")
	fmt.Print(grid.EdgesPerNode.Render())
	fmt.Println("Fig 15: min session rate (MCF)")
	fmt.Print(grid.MinRate.Render())
	fmt.Println("Fig 16: throughput ratio MCF/MF")
	fmt.Print(grid.ThroughputRatio.Render())
	fmt.Println("Fig 14: mean/median link utilization by cell")
	for _, n := range cfg.SessionCounts {
		for _, s := range cfg.SessionSizes {
			cell := grid.Cells[[2]int{n, s}]
			um := pointsY(cell.MFUtilCDF)
			uc := pointsY(cell.MCFUtilCDF)
			fmt.Printf("  sessions=%d size=%d: MF mean %.3f median %.3f | MCF mean %.3f median %.3f\n",
				n, s, stats.Mean(um), stats.Quantile(um, 0.5), stats.Mean(uc), stats.Quantile(uc, 0.5))
		}
	}
	fmt.Println("Fig 17: top-90% tree share (single session, MaxFlow)")
	for _, s := range cfg.SessionSizes {
		cell := grid.Cells[[2]int{1, s}]
		n := len(cell.MFTreeRateCDF)
		frac := 1.0
		for _, p := range cell.MFTreeRateCDF {
			if p.Y >= 0.9 {
				frac = p.X
				break
			}
		}
		fmt.Printf("  size %d: %d trees, top-90%% share in top %.1f%% of trees\n", s, n, 100*frac)
	}
	on, err := b.OnlineGrid(cfg, []int{5, 30}, 10, 10)
	if err != nil {
		panic(err)
	}
	for _, l := range []int{5, 30} {
		fmt.Printf("Fig 18: online/MF throughput ratio, %d trees\n", l)
		fmt.Print(on.ThroughputRatio[l].Render())
		fmt.Printf("Fig 19: online/MCF min-rate ratio, %d trees\n", l)
		fmt.Print(on.MinRateRatio[l].Render())
	}
	fmt.Printf("# Setting B done in %v\n", time.Since(start).Round(time.Second))
}

func pointsY(ps []stats.Point) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.Y
	}
	return out
}
