package experiments

import (
	"runtime"
	"sync"
)

// parallelFor fans fn over [0,n) with a GOMAXPROCS-bounded worker pool.
func parallelFor(n int, fn func(i int)) {
	parallelWorkers(runtime.GOMAXPROCS(0), n, fn)
}

// parallelWorkers fans fn over [0,n) with at most workers goroutines and
// blocks until all complete. fn must be safe to run concurrently for
// distinct i and must write only to i-indexed slots, so results never depend
// on scheduling. workers <= 1 degrades to an inline loop.
func parallelWorkers(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
