package underlay

import (
	"math"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// ring builds an n-node ring with a few chords, capacity 100.
func ring(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.AddEdge(v, (v+1)%n, 100); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v+n/2 < n; v += 3 {
		if err := b.AddEdge(v, v+n/2, 100); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestGenerateFailuresDeterministicAndValid(t *testing.T) {
	g := ring(t, 16)
	cfg := FailureConfig{FailRate: 0.5, MeanRepair: 1.5, Horizon: 20}
	a, err := GenerateFailures(g, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFailures(g, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("failure trace is empty")
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("non-deterministic trace: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	// Per-link alternation: a link can only recover after failing.
	down := make([]bool, g.NumEdges())
	for i, ev := range a.Events {
		switch ev.Kind {
		case LinkDown:
			if down[ev.Edge] {
				t.Fatalf("event %d: edge %d fails while down", i, ev.Edge)
			}
			down[ev.Edge] = true
		case LinkUp:
			if !down[ev.Edge] {
				t.Fatalf("event %d: edge %d recovers while up", i, ev.Edge)
			}
			down[ev.Edge] = false
		}
	}
}

func TestGenerateDriftClampsAndIsDeterministic(t *testing.T) {
	g := ring(t, 12)
	cfg := DriftConfig{Steps: 50, Interval: 0.5, Sigma: 0.4, Min: 0.5, Max: 2}
	a, err := GenerateDrift(g, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(g); err != nil {
		t.Fatal(err)
	}
	if want := 50 * g.NumEdges(); len(a.Events) != want {
		t.Fatalf("drift trace has %d events, want %d", len(a.Events), want)
	}
	cum := make([]float64, g.NumEdges())
	for e := range cum {
		cum[e] = 1
	}
	for _, ev := range a.Events {
		cum[ev.Edge] *= ev.Factor
		if cum[ev.Edge] < cfg.Min-1e-12 || cum[ev.Edge] > cfg.Max+1e-12 {
			t.Fatalf("cumulative drift %v of edge %d escapes [%v,%v]", cum[ev.Edge], ev.Edge, cfg.Min, cfg.Max)
		}
	}
	b, _ := GenerateDrift(g, cfg, rng.New(11))
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("drift trace not deterministic at event %d", i)
		}
	}
}

func TestGenerateASOutagesCorrelated(t *testing.T) {
	net, err := topology.TwoLevel(topology.DefaultTwoLevel(4, 8), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateASOutages(net, OutageConfig{Rate: 0.5, MeanRepair: 2, Horizon: 30}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("outage trace is empty")
	}
	if err := tr.Validate(net.Graph); err != nil {
		t.Fatal(err)
	}
	// Every LinkDown burst at one timestamp must cover exactly the edge set
	// incident to a single AS.
	byTime := map[float64][]graph.EdgeID{}
	for _, ev := range tr.Events {
		if ev.Kind == LinkDown {
			byTime[ev.Time] = append(byTime[ev.Time], ev.Edge)
		}
	}
	for tm, edges := range byTime {
		ases := map[int]bool{}
		for _, e := range edges {
			edge := net.Graph.Edges[e]
			ases[net.ASOf[edge.U]] = true
		}
		// All failed edges of one burst touch a common AS: intersect the
		// candidate AS sets of every edge.
		common := map[int]bool{}
		first := net.Graph.Edges[edges[0]]
		common[net.ASOf[first.U]] = true
		common[net.ASOf[first.V]] = true
		for _, e := range edges[1:] {
			edge := net.Graph.Edges[e]
			next := map[int]bool{}
			for _, a := range []int{net.ASOf[edge.U], net.ASOf[edge.V]} {
				if common[a] {
					next[a] = true
				}
			}
			common = next
		}
		if len(common) == 0 {
			t.Fatalf("outage burst at t=%v is not AS-correlated", tm)
		}
	}
	// Unlabeled networks are rejected.
	flat, err := topology.Waxman(topology.DefaultWaxman(16), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateASOutages(flat, OutageConfig{Rate: 1, MeanRepair: 1, Horizon: 1}, rng.New(1)); err == nil {
		t.Fatal("AS outages on an unlabeled network should fail")
	}
}

func TestStateApplyMirrorsCapacityIntoLengthFactor(t *testing.T) {
	g := ring(t, 8)
	st := NewState(g)
	ls := graph.NewLengthStore(g, 1)

	apply := func(ev Event) (float64, bool) {
		f, changed := st.Apply(ev)
		if changed {
			ls.Bump(ev.Edge, f)
		}
		return f, changed
	}

	// Down: capacity collapses, length explodes monotonically.
	before := ls.Epoch()
	if _, changed := apply(Event{Kind: LinkDown, Edge: 2}); !changed {
		t.Fatal("link-down was a no-op")
	}
	if math.Abs(g.Edges[2].Capacity/(100*DefaultDownFactor)-1) > 1e-12 {
		t.Fatalf("down capacity %v, want %v", g.Edges[2].Capacity, 100*DefaultDownFactor)
	}
	if !ls.MonotoneSince(before) {
		t.Fatal("link-down must mirror as monotone length growth")
	}
	// Second overlapping down is a no-op.
	if _, changed := apply(Event{Kind: LinkDown, Edge: 2}); changed {
		t.Fatal("second link-down should be a no-op")
	}
	// First up only decrements the overlap counter's second down... the
	// counter is 2, so one up keeps it down.
	if _, changed := apply(Event{Kind: LinkUp, Edge: 2}); changed {
		t.Fatal("link-up under an outstanding overlapping down should be a no-op")
	}
	// Final up restores, shrinking the length — non-monotone by definition.
	before = ls.Epoch()
	if _, changed := apply(Event{Kind: LinkUp, Edge: 2}); !changed {
		t.Fatal("final link-up was a no-op")
	}
	if g.Edges[2].Capacity != 100 {
		t.Fatalf("recovered capacity %v, want 100", g.Edges[2].Capacity)
	}
	if ls.MonotoneSince(before) {
		t.Fatal("recovery must mirror as a non-monotone length shrink")
	}
	if math.Abs(ls.At(2)-1) > 1e-12 {
		t.Fatalf("recovered length %v, want 1", ls.At(2))
	}

	// Drift composes with down/up.
	apply(Event{Kind: Drift, Edge: 5, Factor: 0.5})
	if g.Edges[5].Capacity != 50 {
		t.Fatalf("drifted capacity %v, want 50", g.Edges[5].Capacity)
	}
	apply(Event{Kind: LinkDown, Edge: 5})
	apply(Event{Kind: Drift, Edge: 5, Factor: 4})
	apply(Event{Kind: LinkUp, Edge: 5})
	if g.Edges[5].Capacity != 200 {
		t.Fatalf("post-recovery drifted capacity %v, want 200", g.Edges[5].Capacity)
	}
	if st.Downs != 2 || st.Ups != 2 || st.Drifts != 2 {
		t.Fatalf("counters downs=%d ups=%d drifts=%d, want 2/2/2", st.Downs, st.Ups, st.Drifts)
	}

	st.Restore()
	for e := range g.Edges {
		if g.Edges[e].Capacity != 100 {
			t.Fatalf("Restore left edge %d at %v", e, g.Edges[e].Capacity)
		}
	}
}

func TestDamperSuppressesOscillation(t *testing.T) {
	g := ring(t, 8)
	d := NewDamper(g, DamperConfig{Penalty: 1000, HalfLife: 10, Suppress: 2500, Reuse: 800})

	// A fast fail/recover oscillation on edge 0: period 0.5, 40 flaps.
	applied := 0
	var downAt bool
	for i := 0; i < 40; i++ {
		t0 := float64(i) * 0.5
		for _, ev := range d.Process(Event{Time: t0, Kind: LinkDown, Edge: 0}) {
			applied++
			if ev.Kind == LinkDown {
				downAt = true
			} else if ev.Kind == LinkUp {
				downAt = false
			}
		}
		for _, ev := range d.Process(Event{Time: t0 + 0.25, Kind: LinkUp, Edge: 0}) {
			applied++
			if ev.Kind == LinkUp {
				downAt = false
			} else if ev.Kind == LinkDown {
				downAt = true
			}
		}
	}
	if d.Suppressed == 0 {
		t.Fatal("oscillation never hit the suppress threshold")
	}
	// Undamped, 80 events would apply; damping must block most recoveries.
	if applied > 50 {
		t.Fatalf("damper passed %d of 80 oscillation events; suppression is not bounding churn", applied)
	}
	if !downAt {
		t.Fatal("link must be held down while suppressed")
	}
	if d.Held() != 1 {
		t.Fatalf("Held()=%d, want 1", d.Held())
	}

	// After enough quiet time the penalty decays below reuse and the held
	// recovery is released exactly once.
	rel := d.Flush(200)
	if len(rel) != 1 || rel[0].Kind != LinkUp || rel[0].Edge != 0 {
		t.Fatalf("Flush released %+v, want one LinkUp on edge 0", rel)
	}
	if d.Held() != 0 || d.Released != 1 {
		t.Fatalf("post-flush held=%d released=%d, want 0/1", d.Held(), d.Released)
	}
	// Determinism: an identical replay produces identical decisions.
	d2 := NewDamper(g, DamperConfig{Penalty: 1000, HalfLife: 10, Suppress: 2500, Reuse: 800})
	applied2 := 0
	for i := 0; i < 40; i++ {
		t0 := float64(i) * 0.5
		applied2 += len(d2.Process(Event{Time: t0, Kind: LinkDown, Edge: 0}))
		applied2 += len(d2.Process(Event{Time: t0 + 0.25, Kind: LinkUp, Edge: 0}))
	}
	if applied2 != applied || d2.Suppressed != d.Suppressed {
		t.Fatalf("damper not deterministic: applied %d vs %d, suppressed %d vs %d",
			applied2, applied, d2.Suppressed, d.Suppressed)
	}
}

func TestMergeCanonicalOrder(t *testing.T) {
	a := &Trace{Events: []Event{{Time: 2, Kind: LinkDown, Edge: 1}, {Time: 5, Kind: LinkUp, Edge: 1}}}
	b := &Trace{Events: []Event{{Time: 2, Kind: LinkDown, Edge: 0}, {Time: 3, Kind: Drift, Edge: 2, Factor: 0.5}}}
	m := Merge(a, b)
	n := Merge(b, a)
	if len(m.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(m.Events))
	}
	for i := range m.Events {
		if m.Events[i] != n.Events[i] {
			t.Fatalf("Merge is order-dependent at event %d", i)
		}
	}
	if m.Events[0].Edge != 0 || m.Events[1].Edge != 1 {
		t.Fatal("equal-time events must sort by edge")
	}
}
