GO ?= go

.PHONY: all build test race fmt fmt-check vet bench bench-smoke bench-scale clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/sim/...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full benchmark suite (paper tables/figures + scale tier).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration per benchmark, heaviest scale instances skipped — what CI runs.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# Large-instance scale tier only (1,000-10,000 nodes; takes minutes).
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScale' -benchmem -timeout 3600s .

clean:
	$(GO) clean ./...
	rm -f *.test *.prof *.out bench-smoke.txt
