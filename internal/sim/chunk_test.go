package sim

import (
	"math"
	"testing"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/topology"
)

// pathSolution builds a single-tree session along a path with the given
// rate.
func pathSolution(t testing.TB, hops int, capacity, rate float64) *core.Solution {
	t.Helper()
	net, err := topology.Path(hops+1, capacity)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	// Session: source 0, receivers at every node (so overlay depth = hops).
	members := make([]graph.NodeID, hops+1)
	for i := range members {
		members[i] = i
	}
	s, err := overlay.NewSession(0, members, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewProblem(g, []*overlay.Session{s}, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	unit := graph.NewLengths(g, 1)
	tree, err := p.Oracles[0].MinTree(unit)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Solution{G: g, Sessions: p.Sessions, Flows: [][]core.TreeFlow{{{Tree: tree, Rate: rate}}}}
}

func TestChunkConfigValidation(t *testing.T) {
	sol := pathSolution(t, 2, 10, 5)
	if _, err := RunChunks(sol, ChunkConfig{Steps: 0, DT: 1}); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, err := RunChunks(sol, ChunkConfig{Steps: 1, DT: 0}); err == nil {
		t.Error("DT=0 accepted")
	}
}

func TestChunkPipelineDepthAndLag(t *testing.T) {
	// 4-hop chain at rate 5, dt 0.1: steady-state lag of the deepest
	// receiver is (depth-1)·rate·dt = 3·0.5 = 1.5 units; goodput matches
	// the rate.
	sol := pathSolution(t, 4, 10, 5)
	rep, err := RunChunks(sol, ChunkConfig{Steps: 400, DT: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDepth[0] != 4 {
		t.Fatalf("depth %d, want 4", rep.MaxDepth[0])
	}
	wantLag := (4 - 1) * 5 * 0.1
	if math.Abs(rep.MaxLagUnits[0]-wantLag) > 1e-6 {
		t.Fatalf("lag %v, want %v", rep.MaxLagUnits[0], wantLag)
	}
	// Receiver goodput: 4 receivers each tracking rate 5, minus the
	// pipeline fill (bounded warmup), so per-receiver >= 4.9 at 400 steps.
	if rep.ReceiverRate[0] < 4*4.9 {
		t.Fatalf("aggregate receiver rate %v too low", rep.ReceiverRate[0])
	}
	if rep.SourcePosition[0] != 5*400*0.1 {
		t.Fatalf("source emitted %v", rep.SourcePosition[0])
	}
}

func TestChunkOverloadThrottles(t *testing.T) {
	// Rate 20 on a capacity-10 chain: receivers must advance at ~10.
	sol := pathSolution(t, 3, 10, 20)
	rep, err := RunChunks(sol, ChunkConfig{Steps: 300, DT: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	perReceiver := rep.ReceiverRate[0] / 3
	if perReceiver > 10+1e-6 {
		t.Fatalf("receiver rate %v exceeds link capacity", perReceiver)
	}
	if perReceiver < 9 {
		t.Fatalf("receiver rate %v far below capacity 10", perReceiver)
	}
	// The lag keeps growing under overload.
	if rep.MaxLagUnits[0] < 100 {
		t.Fatalf("overload lag %v should accumulate", rep.MaxLagUnits[0])
	}
}

func TestChunkMatchesFluidOnFeasibleAllocation(t *testing.T) {
	// A feasible MaxFlow allocation must reach receiver goodput equal to
	// the allocated rates (up to the pipeline warmup).
	_, sol := solved(t, 6, []int{5, 4})
	steps := 2000
	rep, err := RunChunks(sol, ChunkConfig{Steps: steps, DT: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i, sess := range sol.Sessions {
		want := sol.SessionRate(i) * float64(sess.Receivers())
		if rep.ReceiverRate[i] > want+1e-6 {
			t.Fatalf("session %d goodput %v exceeds allocation %v", i, rep.ReceiverRate[i], want)
		}
		if rep.ReceiverRate[i] < want*0.95 {
			t.Fatalf("session %d goodput %v below allocation %v", i, rep.ReceiverRate[i], want)
		}
	}
}

func TestChunkDeterministicAcrossWorkers(t *testing.T) {
	_, sol := solved(t, 7, []int{5, 3})
	var base *ChunkReport
	for _, workers := range []int{1, 2, 4, 7} {
		rep, err := RunChunks(sol, ChunkConfig{Steps: 120, DT: 0.1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			continue
		}
		for i := range rep.ReceiverRate {
			if math.Abs(rep.ReceiverRate[i]-base.ReceiverRate[i]) > 1e-9 {
				t.Fatalf("workers=%d changed session %d goodput", workers, i)
			}
			if math.Abs(rep.MaxLagUnits[i]-base.MaxLagUnits[i]) > 1e-9 {
				t.Fatalf("workers=%d changed session %d lag", workers, i)
			}
		}
	}
}

func TestChunkStarTreeDepthOne(t *testing.T) {
	// A star overlay (SplitStream stripe) has depth 1 for every receiver.
	net, _ := topology.Complete(5, 10)
	g := net.Graph
	members := []graph.NodeID{0, 1, 2, 3, 4}
	s, _ := overlay.NewSession(0, members, 1)
	p, err := core.NewProblem(g, []*overlay.Session{s}, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	fixed := p.Oracles[0].(*overlay.FixedOracle)
	tree := overlay.TreeFromPairs(fixed, pairs)
	sol := &core.Solution{G: g, Sessions: p.Sessions, Flows: [][]core.TreeFlow{{{Tree: tree, Rate: 2}}}}
	rep, err := RunChunks(sol, ChunkConfig{Steps: 100, DT: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDepth[0] != 1 {
		t.Fatalf("star depth %d, want 1", rep.MaxDepth[0])
	}
	// Depth-1 receivers track the source within the same step: zero lag at
	// step boundaries.
	if rep.MaxLagUnits[0] > 1e-9 {
		t.Fatalf("star lag %v, want 0", rep.MaxLagUnits[0])
	}
}

func BenchmarkChunkSimulate(b *testing.B) {
	_, sol := solved(b, 8, []int{6, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunChunks(sol, ChunkConfig{Steps: 50, DT: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
