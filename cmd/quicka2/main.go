// Command quicka2 records the arbitrary-routing tables and the Fig. 5/6
// tree-limit sweep at a reduced ratio set (see EXPERIMENTS.md for why the
// 0.98/0.99 arbitrary columns are out of wall-clock budget).
package main

import (
	"fmt"
	"time"

	"overcast/internal/experiments"
	"overcast/internal/stats"
)

func main() {
	start := time.Now()
	a, err := experiments.NewSettingA(2004, experiments.DefaultSettingA())
	if err != nil {
		panic(err)
	}
	ratios := []float64{0.90, 0.95}
	arows, asols, err := a.MaxFlowSweep(ratios, true)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderFlowTable("Table VII: MaxFlow (arbitrary routing; ratios 0.90/0.95)", arows))
	for i := 0; i < 2; i++ {
		rates := asols[1].RateDistribution(i)
		fmt.Printf("Fig 7 (0.95) session %d: %d trees, top-90%% in top %.1f%%, Gini %.3f\n",
			i+1, len(rates), 100*stats.TopShareFraction(rates, 0.9), stats.Gini(rates))
	}
	abrows, absols, err := a.MCFSweep(ratios, true)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderMCFTable("Table VIII: MaxConcurrentFlow (arbitrary routing; ratios 0.90/0.95)", abrows))
	um, uc := asols[1].Utilizations(), absols[1].Utilizations()
	fmt.Printf("Fig 9 (0.95): MF %d links mean %.3f median %.3f | MCF %d links mean %.3f median %.3f\n",
		len(um), stats.Mean(um), stats.Quantile(um, 0.5), len(uc), stats.Mean(uc), stats.Quantile(uc, 0.5))

	cfg := experiments.TreeLimitConfig{
		MaxTrees:  []int{1, 2, 4, 8, 12, 16, 20},
		Mus:       []float64{10, 30, 100, 200},
		Trials:    50,
		BaseRatio: 0.95,
	}
	res, err := a.TreeLimitSweep(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.RenderTreeLimit(res))
	mf, _, err := a.MaxFlowSweep([]float64{0.95}, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("(reference: MaxFlow IP throughput at 0.95 = %.2f)\n", mf[0].Throughput)
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Second))
}
