package routing

import (
	"math"
	"math/rand"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

// repairFixture builds a random Waxman graph plus a deterministic local RNG.
func repairFixture(t *testing.T, n int, seed int64) (*graph.Graph, *rand.Rand) {
	t.Helper()
	net, err := topology.Waxman(topology.DefaultWaxman(n), rng.New(uint64(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return net.Graph, rand.New(rand.NewSource(seed))
}

// dirtyRootsOf returns the children under every edge of the stored tree whose
// length differs between dOld and dNew — the exact root set the batch
// driver's inverted index accumulates.
func dirtyRootsOf(g *graph.Graph, parent []graph.EdgeID, dOld, dNew graph.Lengths) []graph.NodeID {
	var roots []graph.NodeID
	for v, e := range parent {
		if e >= 0 && dOld[e] != dNew[e] {
			roots = append(roots, graph.NodeID(v))
		}
	}
	return roots
}

// TestRepairSubtreesBitIdentical is the kernel-level property test: after
// randomized monotone growth sequences, a subtree repair of a stored row must
// be byte-equal to a fresh ShortestPathsInto — distances (bitwise), parent
// edges, and the recorded pop order restricted to the repaired set.
func TestRepairSubtreesBitIdentical(t *testing.T) {
	g, rnd := repairFixture(t, 48, 11)
	n := g.NumNodes()
	sp := NewDijkstraScratch(g)
	fresh := NewDijkstraScratch(g)

	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	wantDist := make([]float64, n)
	wantParent := make([]graph.EdgeID, n)
	dOld := graph.NewLengths(g, 0)
	d := graph.NewLengths(g, 0)
	for e := range d {
		d[e] = 0.5 + rnd.Float64()
	}

	repairs := 0
	for trial := 0; trial < 200; trial++ {
		src := graph.NodeID(rnd.Intn(n))
		sp.ShortestPathsInto(g, src, d, dist, parent)
		copy(dOld, d)
		// Monotone growth on a random edge subset, GK-style factors.
		for j := 0; j < 1+rnd.Intn(6); j++ {
			d[rnd.Intn(len(d))] *= 1 + rnd.Float64()*0.4
		}
		roots := dirtyRootsOf(g, parent, dOld, d)

		var freshPops []graph.NodeID
		fresh.OnPop = func(v graph.NodeID) { freshPops = append(freshPops, v) }
		fresh.ShortestPathsInto(g, src, d, wantDist, wantParent)
		fresh.OnPop = nil

		var repairPops []graph.NodeID
		sp.OnPop = func(v graph.NodeID) { repairPops = append(repairPops, v) }
		repaired, ok := sp.RepairSubtreesInto(g, src, d, dist, parent, roots, nil)
		sp.OnPop = nil
		if !ok {
			// The bail contract: dist/parent may be garbage, refill required.
			sp.ShortestPathsInto(g, src, d, dist, parent)
			continue
		}
		if len(roots) > 0 {
			repairs++
		}
		for v := 0; v < n; v++ {
			if math.Float64bits(dist[v]) != math.Float64bits(wantDist[v]) {
				t.Fatalf("trial %d src %d: dist[%d] = %.17g, fresh %.17g", trial, src, v, dist[v], wantDist[v])
			}
			if parent[v] != wantParent[v] {
				t.Fatalf("trial %d src %d: parent[%d] = %d, fresh %d", trial, src, v, parent[v], wantParent[v])
			}
		}
		// The resumed pop order must be the fresh run's pop order restricted
		// to the popped set (frontier re-pops included in both).
		popped := make(map[graph.NodeID]bool, len(repairPops))
		for _, v := range repairPops {
			popped[v] = true
		}
		var restricted []graph.NodeID
		for _, v := range freshPops {
			if popped[v] {
				restricted = append(restricted, v)
			}
		}
		if len(restricted) != len(repairPops) {
			t.Fatalf("trial %d src %d: repair popped %d nodes, fresh restriction has %d", trial, src, len(repairPops), len(restricted))
		}
		for i := range repairPops {
			if repairPops[i] != restricted[i] {
				t.Fatalf("trial %d src %d: pop %d is node %d, fresh restriction pops %d", trial, src, i, repairPops[i], restricted[i])
			}
		}
		_ = repaired
	}
	if repairs == 0 {
		t.Fatal("no trial exercised a non-empty subtree repair")
	}
}

// TestRepairSubtreesAdversarialTies forces equal-key (key, id) tie-breaks: a
// grid of unit-length edges has many bitwise-equal shortest distances, so any
// divergence between the resumed and fresh heap orders flips a parent. Bumps
// use power-of-two factors to keep plenty of exact ties alive after growth.
func TestRepairSubtreesAdversarialTies(t *testing.T) {
	const side = 7
	b := graph.NewBuilder(side * side)
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				if err := b.AddEdge(at(r, c), at(r, c+1), 1); err != nil {
					t.Fatal(err)
				}
			}
			if r+1 < side {
				if err := b.AddEdge(at(r, c), at(r+1, c), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	g := b.Build()
	n := g.NumNodes()
	rnd := rand.New(rand.NewSource(23))
	sp := NewDijkstraScratch(g)
	fresh := NewDijkstraScratch(g)

	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	wantDist := make([]float64, n)
	wantParent := make([]graph.EdgeID, n)
	d := graph.NewLengths(g, 1)
	dOld := graph.NewLengths(g, 1)

	repairs := 0
	for trial := 0; trial < 300; trial++ {
		src := graph.NodeID(rnd.Intn(n))
		sp.ShortestPathsInto(g, src, d, dist, parent)
		copy(dOld, d)
		for j := 0; j < 1+rnd.Intn(4); j++ {
			d[rnd.Intn(len(d))] *= 2 // exact in floats: ties survive and new ones form
		}
		roots := dirtyRootsOf(g, parent, dOld, d)
		fresh.ShortestPathsInto(g, src, d, wantDist, wantParent)
		_, ok := sp.RepairSubtreesInto(g, src, d, dist, parent, roots, nil)
		if !ok {
			sp.ShortestPathsInto(g, src, d, dist, parent)
			continue
		}
		if len(roots) > 0 {
			repairs++
		}
		for v := 0; v < n; v++ {
			if math.Float64bits(dist[v]) != math.Float64bits(wantDist[v]) || parent[v] != wantParent[v] {
				t.Fatalf("trial %d src %d node %d: repaired (%.17g, %d) vs fresh (%.17g, %d)",
					trial, src, v, dist[v], parent[v], wantDist[v], wantParent[v])
			}
		}
		// Keep lengths from growing without bound so ties keep happening.
		if trial%20 == 19 {
			for e := range d {
				d[e] = 1
			}
		}
	}
	if repairs == 0 {
		t.Fatal("no trial exercised a non-empty subtree repair")
	}
}

// TestRepairSubtreesUnderflowBails pins the scale-separation hazard the
// overlay certificate exists for: with an edge length far below one ulp of
// the accumulated distances, dist+len == dist bitwise and equal-key pop
// interleavings may differ between a resumed and a fresh run. The kernel
// itself does not verify the certificate (the caller does); this test only
// documents that such inputs genuinely diverge OR repair them correctly —
// i.e. it asserts the repaired row either bails or matches fresh, never
// silently serves a mismatch that the caller-side certificate would have
// allowed. The overlay-level gate (Plane maxDist x LengthStore.MinLengthLB)
// keeps these inputs off the subtree path entirely.
func TestRepairSubtreesUnderflowBails(t *testing.T) {
	// Build the underflow shape directly: src with two equal-distance hubs
	// and sub-ulp edges into a contested node.
	b := graph.NewBuilder(6)
	mustAdd := func(u, v int) {
		if err := b.AddEdge(u, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1) // e0
	mustAdd(0, 2) // e1
	mustAdd(1, 3) // e2: sub-ulp
	mustAdd(2, 3) // e3: sub-ulp
	mustAdd(3, 4) // e4
	mustAdd(0, 5) // e5: will be bumped (in tree when shorter)
	mustAdd(5, 4) // e6
	g := b.Build()
	n := g.NumNodes()
	d := graph.Lengths{1e-4, 1e-4, 8e-21, 9e-21, 1e-4, 1e-5, 1e-5}
	sp := NewDijkstraScratch(g)
	fresh := NewDijkstraScratch(g)
	dist := make([]float64, n)
	parent := make([]graph.EdgeID, n)
	wantDist := make([]float64, n)
	wantParent := make([]graph.EdgeID, n)
	sp.ShortestPathsInto(g, 0, d, dist, parent)
	dOld := append(graph.Lengths(nil), d...)
	d[5] *= 64 // grow the tree edge under node 5 (and 4 through it)
	roots := dirtyRootsOf(g, parent, dOld, d)
	fresh.ShortestPathsInto(g, 0, d, wantDist, wantParent)
	_, ok := sp.RepairSubtreesInto(g, 0, d, dist, parent, roots, nil)
	if ok {
		for v := 0; v < n; v++ {
			if math.Float64bits(dist[v]) != math.Float64bits(wantDist[v]) || parent[v] != wantParent[v] {
				t.Fatalf("underflow row served with a mismatch at node %d: (%.17g, %d) vs fresh (%.17g, %d)",
					v, dist[v], parent[v], wantDist[v], wantParent[v])
			}
		}
	}
}
