package overlay

import (
	"math"
	"math/rand"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/routing"
)

// TestSubtreeRepairRowsBitIdentical drives a persistent runner through
// randomized monotone bump sequences and, after every batch, compares every
// exact validated plane row bitwise (dist bits, parent edges) against a fresh
// ShortestPathsInto under the current lengths, and every batch result against
// a direct MinTree call. Non-vacuity: the run must take the subtree path.
func TestSubtreeRepairRowsBitIdentical(t *testing.T) {
	g, oracles := arbBatchFixture(t, 7)
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(42))
		r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: true})
		ls := graph.NewLengthStore(g, 1)
		sp := routing.NewDijkstraScratch(g)
		dist := make([]float64, g.NumNodes())
		parent := make([]graph.EdgeID, g.NumNodes())
		for round := 0; round < 40; round++ {
			results := r.MinTreesLen(ls, nil)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("workers=%d round %d oracle %d: %v", workers, round, i, res.Err)
				}
				want, err := oracles[i].MinTree(ls.Values())
				if err != nil {
					t.Fatal(err)
				}
				if res.Tree.Key() != want.Key() {
					t.Fatalf("workers=%d round %d oracle %d: tree differs from direct call", workers, round, i)
				}
			}
			pl := r.plane
			for row := 0; row < pl.NumSources(); row++ {
				if pl.valid[row] != pl.stamp || !pl.rowExact(row) {
					continue
				}
				sp.ShortestPathsInto(g, pl.Source(row), ls.Values(), dist, parent)
				for v := range dist {
					if math.Float64bits(dist[v]) != math.Float64bits(pl.dists[row][v]) {
						t.Fatalf("workers=%d round %d row %d (src %d): dist[%d] %.17g != fresh %.17g",
							workers, round, row, pl.Source(row), v, pl.dists[row][v], dist[v])
					}
					if parent[v] != pl.parents[row][v] {
						t.Fatalf("workers=%d round %d row %d (src %d): parent[%d] %d != fresh %d",
							workers, round, row, pl.Source(row), v, pl.parents[row][v], parent[v])
					}
				}
			}
			// Mutate like a solver iteration: usually inflate one routed tree,
			// sometimes a few random edges, so touched sets vary in shape.
			if rng.Intn(4) > 0 {
				bumpTreeEdges(ls, results[rng.Intn(len(results))].Tree)
			} else {
				for j := 0; j < 1+rng.Intn(5); j++ {
					ls.Bump(rng.Intn(g.NumEdges()), 1+rng.Float64()*0.3)
				}
			}
		}
		m := r.Metrics()
		if m.PlaneSubtreeRepaired == 0 {
			t.Fatalf("workers=%d: subtree repair never fired (%+v)", workers, m)
		}
		r.Close()
	}
}

// TestSubtreeToggleDecisionIdentical runs the same bump sequence through a
// subtree-enabled and a subtree-disabled runner and requires identical
// batch results plus identical skip/refill decisions on the legacy counters —
// the decision-identity that keeps detdump byte-stable when the toggle flips.
func TestSubtreeToggleDecisionIdentical(t *testing.T) {
	g, oracles := arbBatchFixture(t, 6)
	on := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 2, SharedPlane: true})
	defer on.Close()
	off := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 2, SharedPlane: true, DisableSubtreeRepair: true})
	defer off.Close()
	lsA, lsB := graph.NewLengthStore(g, 1), graph.NewLengthStore(g, 1)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 30; round++ {
		got := on.MinTreesLen(lsA, nil)
		want := off.MinTreesLen(lsB, nil)
		for i := range got {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("round %d oracle %d: %v / %v", round, i, got[i].Err, want[i].Err)
			}
			if got[i].Tree.Key() != want[i].Tree.Key() || got[i].Len != want[i].Len {
				t.Fatalf("round %d oracle %d: subtree-on result differs from subtree-off", round, i)
			}
		}
		tree := got[rng.Intn(len(got))].Tree
		bumpTreeEdges(lsA, tree)
		bumpTreeEdges(lsB, tree)
	}
	mOn, mOff := on.Metrics(), off.Metrics()
	if mOn.PlaneSubtreeRepaired == 0 {
		t.Fatalf("subtree runner never took the subtree path (%+v)", mOn)
	}
	if mOff.PlaneSubtreeRepaired != 0 {
		t.Fatalf("disabled runner took the subtree path (%+v)", mOff)
	}
	// With subtree off, every row the subtree runner repaired is instead
	// walk-skipped or refilled; all other classifications must agree.
	if mOn.PlaneSkipped+mOn.PlaneSubtreeRepaired+mOn.PlaneRepaired !=
		mOff.PlaneSkipped+mOff.PlaneRepaired {
		t.Fatalf("classification totals diverge: on=%+v off=%+v", mOn, mOff)
	}
}
