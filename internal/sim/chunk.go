package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"overcast/internal/core"
)

// This file adds a chunk-level store-and-forward simulator on top of the
// fluid model in sim.go. Where the fluid simulator answers "are the
// allocated rates deliverable", the chunk simulator answers the questions a
// streaming deployment asks: how deep is the relay pipeline (start-up
// latency), and how does the stream position at each receiver track the
// source over time.
//
// Model: each tree is a store-and-forward pipeline over its overlay edges.
// Every step of dt seconds the source appends rate·dt units to its stream;
// an overlay edge forwards backlog from its parent's position to its
// child's, limited by the physical link budgets along its route (shared
// with all other trees, proportionally throttled — same rule as the fluid
// model). Positions update Jacobi-style within a step (all children move
// toward their parent's position as of the start of the advance phase), so
// data crosses one overlay hop per step. Measured at step boundaries the
// steady-state lag of a receiver at overlay depth d is (d-1)·rate·dt, and
// its goodput matches the tree rate exactly when the allocation is
// feasible.

// ChunkConfig controls a chunk-level run.
type ChunkConfig struct {
	Steps   int     // simulation steps (>= 1)
	DT      float64 // step length in seconds (> 0)
	Workers int     // goroutine pool size (0 = GOMAXPROCS)
}

// ChunkReport summarizes a chunk-level run.
type ChunkReport struct {
	// SourcePosition[i] is the total stream volume session i's sources
	// emitted.
	SourcePosition []float64
	// ReceiverRate[i] is the session's aggregate receiver goodput
	// (sum over trees and receivers of position advance / duration).
	ReceiverRate []float64
	// MaxDepth[i] is the deepest overlay pipeline (in overlay hops) of
	// session i — its start-up latency in steps.
	MaxDepth []int
	// MaxLagUnits[i] is the largest end-of-run stream lag (source position
	// minus receiver position) over session i's receivers, in data units.
	MaxLagUnits []float64
	Steps       int
}

// chunkEdge is one overlay hop of one tree's pipeline.
type chunkEdge struct {
	tree   int
	parent int // member index
	child  int
	use    []useEntry // physical edges of this overlay hop's route
}

// chunkTree is one tree's pipeline state.
type chunkTree struct {
	session int
	rate    float64
	// pos[m] is member m's stream position.
	pos, next []float64
	depth     []int
	order     []chunkEdge // BFS order from the source (member 0)
}

// RunChunks simulates sol chunk-by-chunk under cfg.
func RunChunks(sol *core.Solution, cfg ChunkConfig) (*ChunkReport, error) {
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("sim: Steps must be >=1, got %d", cfg.Steps)
	}
	if cfg.DT <= 0 {
		return nil, fmt.Errorf("sim: DT must be positive, got %v", cfg.DT)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	g := sol.G
	trees, err := buildPipelines(sol)
	if err != nil {
		return nil, err
	}
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers < 1 {
		workers = 1
	}

	numEdges := g.NumEdges()
	capPerStep := make([]float64, numEdges)
	for e := range capPerStep {
		capPerStep[e] = g.Edges[e].Capacity * cfg.DT
	}
	load := make([]float64, numEdges)
	factor := make([]float64, numEdges)
	partial := make([][]float64, workers)
	for w := range partial {
		partial[w] = make([]float64, numEdges)
	}

	chunkRange := func(w int) (int, int) {
		per := (len(trees) + workers - 1) / workers
		lo := w * per
		hi := lo + per
		if hi > len(trees) {
			hi = len(trees)
		}
		if lo > hi {
			lo = hi
		}
		return lo, hi
	}

	var wg sync.WaitGroup
	for step := 0; step < cfg.Steps; step++ {
		// Phase 1: sources emit; per-worker link demand from backlogs.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := partial[w]
				for e := range buf {
					buf[e] = 0
				}
				lo, hi := chunkRange(w)
				for ti := lo; ti < hi; ti++ {
					t := trees[ti]
					t.pos[0] += t.rate * cfg.DT
					for _, oe := range t.order {
						backlog := t.pos[oe.parent] - t.pos[oe.child]
						if backlog <= 0 {
							continue
						}
						for _, u := range oe.use {
							buf[u.edge] += u.count * backlog
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for e := range load {
			load[e] = 0
		}
		for w := 0; w < workers; w++ {
			buf := partial[w]
			for e := range load {
				load[e] += buf[e]
			}
		}
		for e := range factor {
			if load[e] <= capPerStep[e] || load[e] == 0 {
				factor[e] = 1
			} else {
				factor[e] = capPerStep[e] / load[e]
			}
		}
		// Phase 2: Jacobi advance — children move toward the parent's
		// position of the *previous* phase, throttled by the bottleneck
		// factor of their overlay hop's route.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo, hi := chunkRange(w)
				for ti := lo; ti < hi; ti++ {
					t := trees[ti]
					copy(t.next, t.pos)
					for _, oe := range t.order {
						backlog := t.pos[oe.parent] - t.pos[oe.child]
						if backlog <= 0 {
							continue
						}
						f := 1.0
						for _, u := range oe.use {
							if factor[u.edge] < f {
								f = factor[u.edge]
							}
						}
						t.next[oe.child] = t.pos[oe.child] + backlog*f
					}
					t.pos, t.next = t.next, t.pos
				}
			}(w)
		}
		wg.Wait()
	}

	return report(sol, trees, cfg), nil
}

// buildPipelines converts the solution's trees into pipeline states with
// BFS-ordered overlay edges and member depths.
func buildPipelines(sol *core.Solution) ([]*chunkTree, error) {
	var trees []*chunkTree
	for i, flows := range sol.Flows {
		n := sol.Sessions[i].Size()
		for _, tf := range flows {
			if tf.Rate <= 0 {
				continue
			}
			adj := make([][]int, n) // adjacency over member indices
			routeOf := make(map[[2]int][]useEntry, len(tf.Tree.Pairs))
			for k, p := range tf.Tree.Pairs {
				adj[p[0]] = append(adj[p[0]], p[1])
				adj[p[1]] = append(adj[p[1]], p[0])
				var use []useEntry
				for _, e := range tf.Tree.Routes[k].Edges {
					use = append(use, useEntry{edge: e, count: 1})
				}
				routeOf[p] = use
			}
			ct := &chunkTree{
				session: i,
				rate:    tf.Rate,
				pos:     make([]float64, n),
				next:    make([]float64, n),
				depth:   make([]int, n),
			}
			// BFS from the source (member 0) orients the tree.
			seen := make([]bool, n)
			seen[0] = true
			queue := []int{0}
			for head := 0; head < len(queue); head++ {
				p := queue[head]
				for _, c := range adj[p] {
					if seen[c] {
						continue
					}
					seen[c] = true
					ct.depth[c] = ct.depth[p] + 1
					key := [2]int{p, c}
					if p > c {
						key = [2]int{c, p}
					}
					ct.order = append(ct.order, chunkEdge{parent: p, child: c, use: routeOf[key]})
					queue = append(queue, c)
				}
			}
			if len(queue) != n {
				return nil, fmt.Errorf("sim: tree of session %d does not span its members", i)
			}
			trees = append(trees, ct)
		}
	}
	return trees, nil
}

func report(sol *core.Solution, trees []*chunkTree, cfg ChunkConfig) *ChunkReport {
	k := len(sol.Sessions)
	rep := &ChunkReport{
		SourcePosition: make([]float64, k),
		ReceiverRate:   make([]float64, k),
		MaxDepth:       make([]int, k),
		MaxLagUnits:    make([]float64, k),
		Steps:          cfg.Steps,
	}
	duration := float64(cfg.Steps) * cfg.DT
	for _, t := range trees {
		rep.SourcePosition[t.session] += t.pos[0]
		for m := 1; m < len(t.pos); m++ {
			rep.ReceiverRate[t.session] += t.pos[m] / duration
			if lag := t.pos[0] - t.pos[m]; lag > rep.MaxLagUnits[t.session] {
				rep.MaxLagUnits[t.session] = lag
			}
			if t.depth[m] > rep.MaxDepth[t.session] {
				rep.MaxDepth[t.session] = t.depth[m]
			}
		}
	}
	// Clip -0 noise.
	for i := range rep.MaxLagUnits {
		rep.MaxLagUnits[i] = math.Max(rep.MaxLagUnits[i], 0)
	}
	return rep
}
