package overcast_test

// Tests for the v2 Allocator surface: session-handle contracts, the
// SessionRate error contract on both API generations, OverlayTree
// immutability, wrapper bit-identity, and the warm-start churn replay
// (quality vs the cold baseline and determinism across worker counts).
// The engine-level warm-start properties — catch-up/re-grow quality
// cross-checked against the internal/exact LP, budget fallback, and
// non-monotone (external shrink) fallback — are pinned by the
// internal/core warm tests; these stay at the public-surface level.

import (
	"math"
	"testing"

	"overcast"
	"overcast/internal/experiments"
)

func testAllocNet(t *testing.T, seed uint64) *overcast.Network {
	t.Helper()
	net, err := overcast.WaxmanNetwork(60, 100, seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

var allocTestSessions = []overcast.Session{
	{Members: []int{0, 11, 23, 37}, Demand: 100},
	{Members: []int{4, 18, 42}, Demand: 100},
	{Members: []int{7, 29, 51, 58}, Demand: 100},
}

func TestAllocatorHandleContract(t *testing.T) {
	a, err := overcast.NewAllocator(testAllocNet(t, 3), overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var zero overcast.SessionID
	if zero.Valid() {
		t.Fatal("zero SessionID must be invalid")
	}
	if err := a.Leave(zero); err == nil {
		t.Fatal("Leave(zero handle) must fail")
	}
	if _, err := a.SessionRate(zero); err == nil {
		t.Fatal("SessionRate(zero handle) must fail")
	}

	var ids []overcast.SessionID
	epochs := []uint64{a.Epoch()}
	for _, s := range allocTestSessions {
		p, err := a.Join(s)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Session.Valid() {
			t.Fatalf("Join returned invalid handle %v", p.Session)
		}
		if p.Epoch <= epochs[len(epochs)-1] {
			t.Fatalf("Join epoch %d did not advance past %d", p.Epoch, epochs[len(epochs)-1])
		}
		if p.Rate <= 0 || len(p.Tree.Pairs()) == 0 || len(p.Trees) != 1 {
			t.Fatalf("Join placement malformed: rate=%v pairs=%d trees=%d", p.Rate, len(p.Tree.Pairs()), len(p.Trees))
		}
		epochs = append(epochs, p.Epoch)
		ids = append(ids, p.Session)
	}
	if a.Admitted() != 3 || a.Active() != 3 {
		t.Fatalf("admitted=%d active=%d, want 3/3", a.Admitted(), a.Active())
	}

	// A handle from a different allocator with more arrivals must be
	// rejected, not silently resolved to some other session.
	b, err := overcast.NewAllocator(testAllocNet(t, 3), overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Join(allocTestSessions[0]); err != nil {
		t.Fatal(err)
	}
	if err := b.Leave(ids[2]); err == nil {
		t.Fatal("Leave(foreign handle beyond arrivals) must fail")
	}

	if !a.IsActive(ids[1]) {
		t.Fatal("admitted session reported inactive")
	}
	if err := a.Leave(ids[1]); err != nil {
		t.Fatal(err)
	}
	if a.IsActive(ids[1]) {
		t.Fatal("departed session reported active")
	}
	if a.Active() != 2 || a.Admitted() != 3 {
		t.Fatalf("after leave: admitted=%d active=%d, want 3/2", a.Admitted(), a.Active())
	}
	// Handles are never reused: the departed handle keeps failing cleanly.
	if err := a.Leave(ids[1]); err == nil {
		t.Fatal("double Leave must fail")
	}
	p, err := a.Join(allocTestSessions[1])
	if err != nil {
		t.Fatal(err)
	}
	if p.Session == ids[1] {
		t.Fatal("handle was reused for a later arrival")
	}
	if err := a.Leave(ids[1]); err == nil {
		t.Fatal("departed handle must keep failing after a new arrival")
	}

	a.Close() // idempotent
	if _, err := a.Join(allocTestSessions[0]); err == nil {
		t.Fatal("Join after Close must fail")
	}
	if _, err := a.Snapshot(); err == nil {
		t.Fatal("Snapshot after Close must fail")
	}
}

func TestSessionRateErrorContractBothSurfaces(t *testing.T) {
	net := testAllocNet(t, 5)

	// v2 surface: departed handles are errors, not garbage.
	a, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p0, err := a.Join(allocTestSessions[0])
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.Join(allocTestSessions[1])
	if err != nil {
		t.Fatal(err)
	}
	if r, err := a.SessionRate(p0.Session); err != nil || r <= 0 {
		t.Fatalf("active SessionRate = %v, %v", r, err)
	}
	if err := a.Leave(p0.Session); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SessionRate(p0.Session); err == nil {
		t.Fatal("SessionRate on departed session must fail")
	}
	if r, err := a.SessionRate(p1.Session); err != nil || r <= 0 {
		t.Fatalf("surviving SessionRate = %v, %v", r, err)
	}

	// Deprecated index surface: same contract through arrival indices.
	on, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allocTestSessions[:2] {
		if _, err := on.Join(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := on.SessionRate(2); err == nil {
		t.Fatal("out-of-range SessionRate must fail")
	}
	if _, err := on.SessionRate(-1); err == nil {
		t.Fatal("negative SessionRate index must fail")
	}
	if err := on.Leave(0); err != nil {
		t.Fatal(err)
	}
	if _, err := on.SessionRate(0); err == nil {
		t.Fatal("wrapper SessionRate on departed session must fail")
	}
	if r, err := on.SessionRate(1); err != nil || r <= 0 {
		t.Fatalf("wrapper surviving SessionRate = %v, %v", r, err)
	}
	if err := on.Leave(5); err == nil {
		t.Fatal("out-of-range Leave must fail")
	}
}

// TestOnlineAllocatorWrapperBitIdentical pins the deprecation contract: the
// v1 wrapper is a veneer over Allocator, so driving both with the same
// arrivals on the same network must produce bit-identical rates, congestion,
// and finalized allocations.
func TestOnlineAllocatorWrapperBitIdentical(t *testing.T) {
	net := testAllocNet(t, 7)
	a, err := overcast.NewAllocator(net, overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	on, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	var ids []overcast.SessionID
	for i, s := range allocTestSessions {
		p, err := a.Join(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.Session)
		if _, err := on.Join(s); err != nil {
			t.Fatal(err)
		}
		vr, err := a.SessionRate(p.Session)
		if err != nil {
			t.Fatal(err)
		}
		wr, err := on.SessionRate(i)
		if err != nil {
			t.Fatal(err)
		}
		if vr != wr {
			t.Fatalf("session %d rate: v2 %.17g != wrapper %.17g", i, vr, wr)
		}
	}
	if a.MaxCongestion() != on.MaxCongestion() {
		t.Fatalf("max congestion: v2 %.17g != wrapper %.17g", a.MaxCongestion(), on.MaxCongestion())
	}
	va, err := a.OnlineAllocation()
	if err != nil {
		t.Fatal(err)
	}
	wa, err := on.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range allocTestSessions {
		if va.SessionRate(i) != wa.SessionRate(i) {
			t.Fatalf("finalized rate %d: v2 %.17g != wrapper %.17g", i, va.SessionRate(i), wa.SessionRate(i))
		}
	}
	if err := a.Leave(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := on.Leave(1); err != nil {
		t.Fatal(err)
	}
	if a.MaxCongestion() != on.MaxCongestion() {
		t.Fatalf("post-leave congestion: v2 %.17g != wrapper %.17g", a.MaxCongestion(), on.MaxCongestion())
	}
}

// TestOverlayTreeStaysIntact pins the OverlayTree aliasing contract's
// guarantee side: a placement's trees are private copies, so they stay
// bitwise intact through any amount of later allocator activity.
func TestOverlayTreeStaysIntact(t *testing.T) {
	a, err := overcast.NewAllocator(testAllocNet(t, 9), overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	p, err := a.Join(allocTestSessions[0])
	if err != nil {
		t.Fatal(err)
	}
	pairs := append([][2]int(nil), p.Tree.Pairs()...)
	members := append([]int(nil), p.Tree.Members()...)
	rate, hops := p.Tree.Rate(), p.Tree.PhysicalHops()

	for _, s := range allocTestSessions[1:] {
		if _, err := a.Join(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rebalance(); err != nil {
		t.Fatal(err)
	}

	if p.Tree.Rate() != rate || p.Tree.PhysicalHops() != hops {
		t.Fatal("OverlayTree scalars changed after later allocator activity")
	}
	got := p.Tree.Pairs()
	if len(got) != len(pairs) {
		t.Fatal("OverlayTree pairs changed length")
	}
	for i := range pairs {
		if got[i] != pairs[i] {
			t.Fatalf("OverlayTree pair %d changed: %v != %v", i, got[i], pairs[i])
		}
	}
	gotM := p.Tree.Members()
	for i := range members {
		if gotM[i] != members[i] {
			t.Fatalf("OverlayTree member %d changed", i)
		}
	}
}

// TestWarmChurnReplayQualityAndDeterminism replays a small churn trace
// through the v2 Allocator and pins the two tentpole properties at the
// public surface: every warm snapshot's throughput stays within the FPTAS
// band of the cold baseline's for the same trace position (mean ratio >=
// 1/(1+eps) with measurement slack), and the whole warm replay — every
// snapshot throughput and the warm/cold refresh split — is bit-identical
// across worker counts 1, 2, and 8.
func TestWarmChurnReplayQualityAndDeterminism(t *testing.T) {
	cfg := experiments.WarmChurnConfig{Nodes: 60, Horizon: 12}
	warm, cold, err := experiments.WarmChurnPair(2004, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmRefreshes == 0 {
		t.Fatal("warm replay never took the warm path")
	}
	if cold.WarmRefreshes != 0 {
		t.Fatal("cold baseline took the warm path")
	}
	if warm.Snapshots != cold.Snapshots {
		t.Fatalf("snapshot counts diverged: warm %d cold %d", warm.Snapshots, cold.Snapshots)
	}
	q := experiments.WarmQuality(warm, cold)
	eps := warm.Config.Epsilon
	if band := 1 / (1 + eps); q < band-0.02 {
		t.Fatalf("mean warm/cold snapshot quality %.4f below FPTAS band %.4f", q, band)
	}
	for i, wt := range warm.Throughputs {
		if math.IsNaN(wt) || wt <= 0 {
			t.Fatalf("warm snapshot %d throughput %v", i, wt)
		}
	}

	base := warm
	for _, workers := range []int{2, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		rep, err := experiments.WarmChurnRun(2004, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WarmRefreshes != base.WarmRefreshes || rep.ColdSolves != base.ColdSolves ||
			rep.RepairPhases != base.RepairPhases || rep.MSTOps != base.MSTOps {
			t.Fatalf("workers=%d refresh split diverged: %+v vs %+v", workers, rep, base)
		}
		if len(rep.Throughputs) != len(base.Throughputs) {
			t.Fatalf("workers=%d snapshot count diverged", workers)
		}
		for i := range base.Throughputs {
			if rep.Throughputs[i] != base.Throughputs[i] {
				t.Fatalf("workers=%d snapshot %d: %.17g != %.17g",
					workers, i, rep.Throughputs[i], base.Throughputs[i])
			}
		}
	}
}

// TestAllocatorFaultSurface covers the public underlay-fault entry point:
// fail → capacity collapse and cold re-solve, recover → exact restore, drift
// composition, no-op and error contracts, and the new stats counters.
func TestAllocatorFaultSurface(t *testing.T) {
	a, err := overcast.NewAllocator(testAllocNet(t, 3), overcast.AllocatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, s := range allocTestSessions {
		if _, err := a.Join(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.ColdSolves != 1 || st.UnderlayEvents != 0 {
		t.Fatalf("pre-fault stats: %+v", st)
	}

	// The incremental Waxman generator always connects node 1 to node 0, so
	// link (0,1) exists in every network.
	healthy, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultLinkUp})
	if err != nil {
		t.Fatal(err)
	}
	if healthy <= 0 {
		t.Fatalf("healthy capacity %v", healthy)
	}
	// Recovering a healthy link is a no-op: no event counted, no epoch bump.
	if st := a.Stats(); st.UnderlayEvents != 0 {
		t.Fatalf("no-op recovery counted an underlay event: %+v", st)
	}

	epoch := a.Epoch()
	downCap, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultLinkDown})
	if err != nil {
		t.Fatal(err)
	}
	if downCap >= healthy/1000 {
		t.Fatalf("failed link capacity %v did not collapse from %v", downCap, healthy)
	}
	if a.Epoch() != epoch+1 {
		t.Fatalf("fault must advance the allocator epoch: %d -> %d", epoch, a.Epoch())
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.UnderlayEvents != 1 {
		t.Fatalf("UnderlayEvents = %d, want 1", st.UnderlayEvents)
	}
	if st.ColdSolves != 2 || st.WarmRefreshes != 0 {
		t.Fatalf("post-fault snapshot must re-solve cold: %+v", st)
	}

	// Drift composes with the failure, and recovery restores base*drift
	// exactly.
	if _, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultDrift, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	recovered, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultLinkUp})
	if err != nil {
		t.Fatal(err)
	}
	if want := healthy * 0.5; math.Abs(recovered/want-1) > 1e-12 {
		t.Fatalf("recovered capacity %v, want %v (healthy %v x drift 0.5)", recovered, want, healthy)
	}
	if _, err := a.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.UnderlayEvents != 3 || st.ColdSolves != 3 {
		t.Fatalf("post-recovery stats: %+v", st)
	}

	// Error contracts: unknown link, bad drift factor, closed allocator.
	if _, err := a.Fault(overcast.LinkFault{From: 0, To: 0, Kind: overcast.FaultLinkDown}); err == nil {
		t.Fatal("fault on a nonexistent link must fail")
	}
	if _, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultDrift, Factor: -1}); err == nil {
		t.Fatal("non-positive drift factor must fail")
	}
	if _, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultKind(99)}); err == nil {
		t.Fatal("unknown fault kind must fail")
	}
	a.Close()
	if _, err := a.Fault(overcast.LinkFault{From: 0, To: 1, Kind: overcast.FaultLinkDown}); err == nil {
		t.Fatal("fault on a closed allocator must fail")
	}
}
