package underlay

import (
	"math"
	"sort"

	"overcast/internal/graph"
)

// DamperConfig holds the route-flap damping constants. The shape follows the
// BGP damping design (and the yggdrasil treesim notes): flaps charge a
// penalty, the penalty decays exponentially in trace time, and a link whose
// penalty crossed the suppress threshold stays administratively down until
// the penalty decays below the reuse threshold.
type DamperConfig struct {
	// Penalty is charged to a link on every recovery (the completed flap).
	// Default 1000.
	Penalty float64
	// HalfLife is the exponential decay half-life of the penalty, in trace
	// time. Default 10.
	HalfLife float64
	// Suppress is the threshold at or above which recoveries are held.
	// Default 2500: a third flap inside a half-life suppresses.
	Suppress float64
	// Reuse is the threshold below which a held recovery is released.
	// Default 800.
	Reuse float64
}

func (c *DamperConfig) normalize() {
	if c.Penalty <= 0 {
		c.Penalty = 1000
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 10
	}
	if c.Suppress <= 0 {
		c.Suppress = 2500
	}
	if c.Reuse <= 0 || c.Reuse >= c.Suppress {
		c.Reuse = c.Suppress * 0.32
	}
}

// Damper filters an underlay event stream through per-link flap damping.
// Feed events in time order through Process and apply what it returns; call
// Flush at the trace horizon to release any still-held recoveries whose
// penalty has decayed. The damper is purely event-time driven and therefore
// deterministic: two replays of one trace produce bitwise-identical filtered
// streams.
type Damper struct {
	cfg     DamperConfig
	penalty []float64
	lastT   []float64
	// held marks links whose recovery was suppressed: physically repaired,
	// administratively kept down until the penalty decays to Reuse.
	held []bool

	// Suppressed counts recoveries held at the suppress threshold; Released
	// counts held recoveries later emitted by decay.
	Suppressed, Released int
}

// NewDamper builds a damper over a graph's edge space.
func NewDamper(g *graph.Graph, cfg DamperConfig) *Damper {
	cfg.normalize()
	return &Damper{
		cfg:     cfg,
		penalty: make([]float64, g.NumEdges()),
		lastT:   make([]float64, g.NumEdges()),
		held:    make([]bool, g.NumEdges()),
	}
}

// Config returns the damper's normalized constants.
func (d *Damper) Config() DamperConfig { return d.cfg }

// decay advances e's penalty to time t.
func (d *Damper) decay(e graph.EdgeID, t float64) {
	if dt := t - d.lastT[e]; dt > 0 {
		d.penalty[e] *= math.Exp2(-dt / d.cfg.HalfLife)
		d.lastT[e] = t
	}
}

// Penalty returns e's penalty decayed to time t.
func (d *Damper) Penalty(e graph.EdgeID, t float64) float64 {
	d.decay(e, t)
	return d.penalty[e]
}

// releaseDue emits LinkUp events (stamped t) for every held link whose
// penalty has decayed below the reuse threshold, in ascending edge order.
func (d *Damper) releaseDue(t float64, out []Event) []Event {
	var due []graph.EdgeID
	for e, h := range d.held {
		if !h {
			continue
		}
		d.decay(e, t)
		if d.penalty[e] < d.cfg.Reuse {
			due = append(due, e)
		}
	}
	sort.Ints(due)
	for _, e := range due {
		d.held[e] = false
		d.Released++
		out = append(out, Event{Time: t, Kind: LinkUp, Edge: e})
	}
	return out
}

// Process filters one event. It returns the events to apply now, in order:
// any held recoveries that decayed due before ev.Time, then ev itself unless
// damping suppressed it. LinkDown and Drift always pass through (a dead link
// must never be routed over; drift is not a flap); a LinkUp on a link at or
// above the suppress threshold is held and the link stays down.
func (d *Damper) Process(ev Event) []Event {
	out := d.releaseDue(ev.Time, nil)
	switch ev.Kind {
	case LinkDown:
		// The link failed again; a pending held recovery is obsolete.
		if d.held[ev.Edge] {
			d.held[ev.Edge] = false
		}
		out = append(out, ev)
	case LinkUp:
		d.decay(ev.Edge, ev.Time)
		d.penalty[ev.Edge] += d.cfg.Penalty
		if d.penalty[ev.Edge] >= d.cfg.Suppress {
			d.held[ev.Edge] = true
			d.Suppressed++
		} else {
			out = append(out, ev)
		}
	default:
		out = append(out, ev)
	}
	return out
}

// Flush releases every held recovery whose penalty has decayed below the
// reuse threshold by time t. Links still above it remain suppressed (Held
// reports how many).
func (d *Damper) Flush(t float64) []Event {
	return d.releaseDue(t, nil)
}

// Held returns the number of links with a suppressed recovery outstanding.
func (d *Damper) Held() int {
	n := 0
	for _, h := range d.held {
		if h {
			n++
		}
	}
	return n
}
