// Package shard partitions a solve across per-AS shards that exchange dual
// prices over an explicit message boundary.
//
// The Garg–Könemann loops in internal/core are price-update loops: the only
// state an oracle evaluation needs is the current length (dual price) of
// every edge. That makes prices exactly the thing that can cross a partition
// boundary — "A Distributed Algorithm for Throughput Optimal Routing in
// Overlay Networks" (PAPERS.md) uses the same decomposition. A Group runs
// per-AS oracle evaluation on independent shard goroutines, each owning its
// own graph.LengthStore replica and overlay.BatchRunner (so the shared SSSP
// plane and its dirty-source repair stay shard-local), synchronized once per
// round by a batch of PriceMsg updates diffed from the coordinator's
// authoritative ledger journal. The reduce back onto the solver's state is
// performed by the coordinator in canonical (shard, session-id) order — the
// same trick that made BatchRunner bit-identical at any worker count — so
// outputs are bitwise identical for any shard count, including zero.
//
// The message boundary is deliberately narrow: shards receive only
// ([]PriceMsg | full-resync snapshot) and return only their oracles'
// BatchResults. A later RPC backend is a transport swap, not a rewrite.
// First-cut honesty: the in-process transport broadcasts every touched edge
// to every replica (cheap through shared memory); Stats counts the cut-edge
// subset separately, since that is what a remote transport would have to
// send to a shard that owns its interior edges authoritatively.
package shard

import "overcast/internal/graph"

// Partition assigns every node of a graph to exactly one of Shards shards.
type Partition struct {
	Shards int
	// Of[v] is node v's shard, in [0, Shards).
	Of []int
}

// ByLabels partitions by grouping whole node labels (e.g. the AS ids of
// topology.Network.ASOf): label a maps to shard a·shards/numLabels, so every
// label's nodes land in one shard and shards hold contiguous label blocks.
// With shards > distinct labels some shards stay empty (they idle); with
// shards <= 0 or an empty label slice it falls back to ByRange semantics via
// the caller. numLabels is max(labels)+1.
func ByLabels(labels []int, shards int) Partition {
	numLabels := 0
	for _, a := range labels {
		if a+1 > numLabels {
			numLabels = a + 1
		}
	}
	of := make([]int, len(labels))
	for v, a := range labels {
		of[v] = a * shards / numLabels
	}
	return Partition{Shards: shards, Of: of}
}

// ByRange partitions n nodes into contiguous near-equal ranges: node v maps
// to shard v·shards/n. The fallback when no AS labels exist (flat Waxman
// topologies).
func ByRange(n, shards int) Partition {
	of := make([]int, n)
	for v := range of {
		of[v] = v * shards / n
	}
	return Partition{Shards: shards, Of: of}
}

// Stub is one side of a cut edge as seen from a shard: the boundary
// attachment point a remote price update applies to.
type Stub struct {
	Edge        graph.EdgeID
	Local       graph.NodeID // endpoint inside this shard
	Remote      graph.NodeID // endpoint inside RemoteShard
	RemoteShard int
}

// Layout is a partition projected onto a concrete graph: every edge is owned
// by exactly one shard (both endpoints inside it) or is a cut edge (Owner[e]
// = -1) with one boundary stub per side.
type Layout struct {
	Part Partition
	// Owner[e] is the shard owning edge e, or -1 for cut edges.
	Owner []int
	// Cut lists the cut edges in ascending EdgeID order.
	Cut []graph.EdgeID
	// Stubs[s] lists shard s's boundary stubs, in ascending EdgeID order.
	Stubs [][]Stub
}

// NewLayout projects part onto g.
func NewLayout(g *graph.Graph, part Partition) *Layout {
	l := &Layout{
		Part:  part,
		Owner: make([]int, len(g.Edges)),
		Stubs: make([][]Stub, part.Shards),
	}
	for e, edge := range g.Edges {
		su, sv := part.Of[edge.U], part.Of[edge.V]
		if su == sv {
			l.Owner[e] = su
			continue
		}
		l.Owner[e] = -1
		l.Cut = append(l.Cut, e)
		l.Stubs[su] = append(l.Stubs[su], Stub{Edge: e, Local: edge.U, Remote: edge.V, RemoteShard: sv})
		l.Stubs[sv] = append(l.Stubs[sv], Stub{Edge: e, Local: edge.V, Remote: edge.U, RemoteShard: su})
	}
	return l
}

// PriceMsg is one dual-price update crossing the shard boundary: at ledger
// epoch Epoch, edge CutEdge's length became Length. Absolute values (not
// multiplicative deltas) make delivery idempotent and let a late joiner
// resync from any snapshot; the epoch stamp orders messages and lets a
// remote replica detect gaps. This struct is the whole wire contract of the
// price exchange.
type PriceMsg struct {
	Epoch   graph.Epoch
	CutEdge graph.EdgeID
	Length  float64
}

// priceMsgWireBytes is the estimated encoded size of one PriceMsg (epoch +
// edge id + length, 8 bytes each) used for the ExchangeBytes counter.
const priceMsgWireBytes = 24

// Stats aggregates a Group's price-exchange and reduce counters.
type Stats struct {
	// Shards is the configured shard count.
	Shards int
	// Rounds[s] counts the oracle-evaluation rounds shard s actually ran
	// (rounds where at least one of its homed oracles was in the batch).
	Rounds []int
	// ExchangeRounds counts synchronization rounds (one per oracle batch).
	ExchangeRounds int
	// Msgs counts price messages applied to shard replicas; CutMsgs is the
	// subset concerning partition-cut edges — the messages a remote
	// transport would actually have to ship.
	Msgs, CutMsgs int
	// ExchangeBytes estimates the encoded size of the cut-edge traffic.
	ExchangeBytes int64
	// Resyncs counts full-snapshot replica rebuilds (ledger swap or journal
	// window loss).
	Resyncs int
	// FaultResyncs is the subset of Resyncs forced by journal window loss:
	// the authoritative ledger mutated past its journal bound between
	// exchange rounds (e.g. an underlay fault burst touching more edges than
	// the window holds), so the diff could not be replayed and every replica
	// was rebuilt from a full snapshot.
	FaultResyncs int
	// ReduceNanos is the time spent merging shard results back into the
	// batch-order result slice in canonical (shard, session-id) order.
	ReduceNanos int64
}

// Merge folds o into s (per-shard rounds add elementwise; the slice grows to
// the larger shard count).
func (s *Stats) Merge(o Stats) {
	if o.Shards > s.Shards {
		s.Shards = o.Shards
	}
	for len(s.Rounds) < len(o.Rounds) {
		s.Rounds = append(s.Rounds, 0)
	}
	for i, r := range o.Rounds {
		s.Rounds[i] += r
	}
	s.ExchangeRounds += o.ExchangeRounds
	s.Msgs += o.Msgs
	s.CutMsgs += o.CutMsgs
	s.ExchangeBytes += o.ExchangeBytes
	s.Resyncs += o.Resyncs
	s.FaultResyncs += o.FaultResyncs
	s.ReduceNanos += o.ReduceNanos
}
