package overlay

import (
	"fmt"

	"overcast/internal/routing"
)

// This file computes the classic overlay-multicast quality metrics (link
// stress and stretch) for trees. The paper's related work (Narada et al.)
// optimizes these directly; here they quantify the side effects of
// throughput-optimal tree selection.

// Stress returns the maximum and mean multiplicity with which the tree
// traverses any physical link (n_e(t)): the redundant-copies metric. Mean
// is over links the tree actually uses; an empty tree returns zeros.
func (t *Tree) Stress() (max int, mean float64) {
	use := t.Use()
	if len(use) == 0 {
		return 0, 0
	}
	total := 0
	for _, u := range use {
		total += u.Count
		if u.Count > max {
			max = u.Count
		}
	}
	return max, float64(total) / float64(len(use))
}

// Depths returns each member's overlay depth (hops from the source, member
// 0, through the tree's overlay edges). It errors if the pairs do not span
// the members.
func (t *Tree) Depths(s *Session) ([]int, error) {
	n := s.Size()
	adj := make([][]int, n)
	for _, p := range t.Pairs {
		adj[p[0]] = append(adj[p[0]], p[1])
		adj[p[1]] = append(adj[p[1]], p[0])
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	queue := []int{0}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range adj[v] {
			if depth[w] < 0 {
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for m, d := range depth {
		if d < 0 {
			return nil, fmt.Errorf("overlay: member %d unreachable in tree", m)
		}
	}
	return depth, nil
}

// Stretch returns, for every receiver (members 1..n-1), the ratio of its
// tree path length (physical hops from the source through the overlay tree)
// to its direct unicast route length, and the maximum of those ratios.
// Direct routes are read from rt.
func (t *Tree) Stretch(s *Session, rt *routing.IPRoutes) ([]float64, float64, error) {
	n := s.Size()
	// Hop distance from the source through the tree: BFS over overlay
	// edges accumulating each route's physical hop count.
	adj := make([][]struct{ to, hops int }, n)
	for k, p := range t.Pairs {
		h := t.Routes[k].Hops()
		adj[p[0]] = append(adj[p[0]], struct{ to, hops int }{p[1], h})
		adj[p[1]] = append(adj[p[1]], struct{ to, hops int }{p[0], h})
	}
	treeHops := make([]int, n)
	for i := range treeHops {
		treeHops[i] = -1
	}
	treeHops[0] = 0
	queue := []int{0}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range adj[v] {
			if treeHops[e.to] < 0 {
				treeHops[e.to] = treeHops[v] + e.hops
				queue = append(queue, e.to)
			}
		}
	}
	ratios := make([]float64, 0, n-1)
	maxRatio := 0.0
	for m := 1; m < n; m++ {
		if treeHops[m] < 0 {
			return nil, 0, fmt.Errorf("overlay: member %d unreachable in tree", m)
		}
		direct := rt.Hops(s.Members[0], s.Members[m])
		if direct <= 0 {
			return nil, 0, fmt.Errorf("overlay: no direct route source->%d", s.Members[m])
		}
		ratio := float64(treeHops[m]) / float64(direct)
		ratios = append(ratios, ratio)
		if ratio > maxRatio {
			maxRatio = ratio
		}
	}
	return ratios, maxRatio, nil
}
