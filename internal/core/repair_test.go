package core_test

import (
	"testing"

	"overcast/internal/core"
)

// TestRepairToggleBitIdentical pins the dirty-source-repair invariant: for
// both routing modes and every worker count, disabling the plane's
// cross-round repair must reproduce the enabled run bit for bit — a skipped
// refill serves exactly the bits a recompute would have produced, and the
// prestep's seed-plane copies are bitwise the Dijkstras they replace. Under
// arbitrary routing the enabled run must actually have skipped refills and
// seeded prestep rows, so the test cannot pass vacuously.
func TestRepairToggleBitIdentical(t *testing.T) {
	for _, mode := range []core.RoutingMode{core.RoutingIP, core.RoutingArbitrary} {
		p := workerSweepProblem(t, mode)
		var base *core.MCFResult
		for _, w := range workerCounts {
			for _, disable := range []bool{false, true} {
				res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{
					Epsilon: 0.12, Parallel: true, Workers: w, SurplusPass: true, DisableRepair: disable,
				})
				if err != nil {
					t.Fatalf("mode=%v workers=%d disable=%v: %v", mode, w, disable, err)
				}
				if mode == core.RoutingArbitrary && !disable {
					if res.Plane.PlaneSkipped+res.PrestepPlane.PlaneSkipped == 0 {
						t.Fatalf("workers=%d: repair enabled but no refill was ever skipped", w)
					}
					if res.PrestepPlane.PlaneSeeded == 0 {
						t.Fatalf("workers=%d: prestep seed plane never fired (metrics %+v)", w, res.PrestepPlane)
					}
				}
				if disable && res.Plane.PlaneSkipped+res.Plane.PlaneRepaired+res.Plane.PlaneSeeded != 0 {
					t.Fatalf("workers=%d: repair disabled but counters %+v", w, res.Plane)
				}
				if base == nil {
					base = res
					continue
				}
				if res.Lambda != base.Lambda {
					t.Fatalf("mode=%v workers=%d disable=%v: lambda %.17g != %.17g", mode, w, disable, res.Lambda, base.Lambda)
				}
				for i := range res.Betas {
					if res.Betas[i] != base.Betas[i] {
						t.Fatalf("mode=%v workers=%d disable=%v: beta[%d] %.17g != %.17g", mode, w, disable, i, res.Betas[i], base.Betas[i])
					}
				}
				sameSolution(t, mode.String(), base.Solution, res.Solution)
			}
		}
	}
}

// TestRepairToggleBitIdenticalMaxFlow covers the M1 iteration loop, where
// repair has the most room (one routed tree per iteration, every other
// session's sources untouched).
func TestRepairToggleBitIdenticalMaxFlow(t *testing.T) {
	p := workerSweepProblem(t, core.RoutingArbitrary)
	var base *core.Solution
	for _, w := range workerCounts {
		for _, disable := range []bool{false, true} {
			sol, err := core.MaxFlow(p, core.MaxFlowOptions{
				Epsilon: 0.1, Parallel: true, Workers: w, DisableRepair: disable,
			})
			if err != nil {
				t.Fatalf("workers=%d disable=%v: %v", w, disable, err)
			}
			if !disable && sol.Plane.PlaneSkipped == 0 {
				t.Fatalf("workers=%d: MaxFlow repair never skipped a refill", w)
			}
			if base == nil {
				base = sol
				continue
			}
			sameSolution(t, "maxflow-repair", base, sol)
		}
	}
}
