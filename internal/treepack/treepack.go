// Package treepack solves the "packing spanning trees" problem of Sec. II-C:
// given a session's overlay graph G_i with a traffic budget f(v_m,v_n) on
// every overlay edge, decompose it into spanning trees whose aggregate rate
// is maximal subject to the per-edge budgets.
//
// The Tutte (1961) / Nash-Williams (1961) min-max theorem states that the
// maximum fractional packing value equals
//
//	min over partitions P of V:  f(P) / (|P| - 1)
//
// where f(P) is the total weight of edges crossing the partition. This
// package provides
//
//   - Strength: the exact minimum, by enumerating set partitions (practical
//     for n <= 10; the paper's sessions in the Sec. III experiments have at
//     most 7 members, i.e. Bell(7) = 877 partitions);
//   - PackFractional: a Garg–Könemann-style FPTAS whose oracle is a minimum
//     spanning tree, usable at any n;
//   - PackGreedy: a simple integral water-filling baseline that repeatedly
//     saturates the maximum-bottleneck spanning tree (the Fig. 1 style
//     decomposition).
package treepack

import (
	"fmt"
	"math"
	"sort"
)

// Instance is a weighted complete-graph packing instance on n vertices.
// W[i][j] is the traffic budget of overlay edge (i,j); 0 means the edge is
// absent.
type Instance struct {
	N int
	W [][]float64
}

// NewInstance creates an instance with all weights zero.
func NewInstance(n int) (*Instance, error) {
	if n < 2 {
		return nil, fmt.Errorf("treepack: need n>=2, got %d", n)
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Instance{N: n, W: w}, nil
}

// SetWeight sets the budget of edge (i,j) symmetrically.
func (ins *Instance) SetWeight(i, j int, w float64) error {
	if i < 0 || i >= ins.N || j < 0 || j >= ins.N || i == j {
		return fmt.Errorf("treepack: bad edge (%d,%d)", i, j)
	}
	if w < 0 {
		return fmt.Errorf("treepack: negative weight %v", w)
	}
	ins.W[i][j] = w
	ins.W[j][i] = w
	return nil
}

// TotalWeight returns the sum of all edge budgets.
func (ins *Instance) TotalWeight() float64 {
	total := 0.0
	for i := 0; i < ins.N; i++ {
		for j := i + 1; j < ins.N; j++ {
			total += ins.W[i][j]
		}
	}
	return total
}

// connectedOnPositive reports whether the positive-weight edges connect all
// vertices.
func (ins *Instance) connectedOnPositive() bool {
	seen := make([]bool, ins.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := 0; u < ins.N; u++ {
			if !seen[u] && ins.W[v][u] > 0 {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == ins.N
}

// Strength returns the exact Tutte/Nash-Williams value
// min_P f(P)/(|P|-1) together with a minimizing partition (as vertex-index
// blocks). Partitions are enumerated via restricted-growth strings, so the
// call is limited to n <= maxN (Bell numbers grow fast: Bell(10) = 115975).
func (ins *Instance) Strength(maxN int) (float64, [][]int, error) {
	if ins.N > maxN {
		return 0, nil, fmt.Errorf("treepack: n=%d exceeds partition-enumeration limit %d", ins.N, maxN)
	}
	if !ins.connectedOnPositive() {
		return 0, ins.components(), nil
	}
	n := ins.N
	rgs := make([]int, n) // restricted growth string; rgs[0] = 0 always
	best := math.Inf(1)
	var bestRGS []int
	for {
		blocks := 0
		for _, b := range rgs {
			if b+1 > blocks {
				blocks = b + 1
			}
		}
		if blocks >= 2 {
			cross := 0.0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rgs[i] != rgs[j] {
						cross += ins.W[i][j]
					}
				}
			}
			if ratio := cross / float64(blocks-1); ratio < best {
				best = ratio
				bestRGS = append([]int(nil), rgs...)
			}
		}
		if !nextRGS(rgs) {
			break
		}
	}
	return best, blocksFromRGS(bestRGS), nil
}

// nextRGS advances a restricted-growth string in place, returning false after
// the last one. RGS invariant: rgs[i] <= max(rgs[0..i-1]) + 1.
func nextRGS(rgs []int) bool {
	n := len(rgs)
	for i := n - 1; i >= 1; i-- {
		maxPrefix := 0
		for j := 0; j < i; j++ {
			if rgs[j] > maxPrefix {
				maxPrefix = rgs[j]
			}
		}
		if rgs[i] <= maxPrefix {
			rgs[i]++
			for j := i + 1; j < n; j++ {
				rgs[j] = 0
			}
			return true
		}
	}
	return false
}

func blocksFromRGS(rgs []int) [][]int {
	if rgs == nil {
		return nil
	}
	maxBlock := 0
	for _, b := range rgs {
		if b > maxBlock {
			maxBlock = b
		}
	}
	blocks := make([][]int, maxBlock+1)
	for v, b := range rgs {
		blocks[b] = append(blocks[b], v)
	}
	return blocks
}

// components returns the connected components over positive-weight edges.
func (ins *Instance) components() [][]int {
	comp := make([]int, ins.N)
	for i := range comp {
		comp[i] = -1
	}
	var blocks [][]int
	for s := 0; s < ins.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(blocks)
		stack := []int{s}
		comp[s] = id
		block := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for u := 0; u < ins.N; u++ {
				if comp[u] < 0 && ins.W[v][u] > 0 {
					comp[u] = id
					block = append(block, u)
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(block)
		blocks = append(blocks, block)
	}
	return blocks
}

// PackedTree is one spanning tree of the decomposition with its rate.
type PackedTree struct {
	Pairs [][2]int
	Rate  float64
}

// mst returns a minimum spanning tree of the instance under the given edge
// lengths (math.Inf(1) marks unusable edges) or nil if the usable edges do
// not connect the graph.
func (ins *Instance) mst(length func(i, j int) float64) [][2]int {
	n := ins.N
	const inf = math.MaxFloat64
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = inf
		from[i] = -1
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		if l := length(0, j); l < inf {
			best[j] = l
			from[j] = 0
		}
	}
	pairs := make([][2]int, 0, n-1)
	for added := 1; added < n; added++ {
		pick := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < inf && (pick < 0 || best[j] < best[pick]) {
				pick = j
			}
		}
		if pick < 0 {
			return nil // disconnected
		}
		inTree[pick] = true
		pairs = append(pairs, orient(from[pick], pick))
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if l := length(pick, j); l < best[j] {
					best[j] = l
					from[j] = pick
				}
			}
		}
	}
	return pairs
}

func orient(a, b int) [2]int {
	if a > b {
		return [2]int{b, a}
	}
	return [2]int{a, b}
}

// PackFractional runs the Garg–Könemann FPTAS for the fractional
// tree-packing LP. It returns the decomposition, the total packed value
// (already rescaled to feasibility), and an error for bad eps. The value is
// at least (1-eps)^2 times the Tutte/Nash-Williams optimum.
func (ins *Instance) PackFractional(eps float64) ([]PackedTree, float64, error) {
	if eps <= 0 || eps >= 1 {
		return nil, 0, fmt.Errorf("treepack: eps must be in (0,1), got %v", eps)
	}
	if !ins.connectedOnPositive() {
		return nil, 0, nil
	}
	n := ins.N
	L := float64(n - 1) // max edges per tree
	delta := (1 + eps) / math.Pow((1+eps)*L, 1/eps)

	// Dual lengths per edge (constant initialization, as in Garg–Könemann's
	// maximum-flow variant: the stopping rule is on tree length, so every
	// c_e of flow through an edge multiplies its length by >= 1+eps and the
	// final length is < (1+eps); hence raw flow <= u_e·log_{1+eps}((1+eps)/delta)
	// uniformly over edges).
	y := make(map[[2]int]float64)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ins.W[i][j] > 0 {
				y[[2]int{i, j}] = delta
			}
		}
	}
	length := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		if l, ok := y[[2]int{i, j}]; ok {
			return l
		}
		return math.MaxFloat64
	}

	raw := make(map[string]*PackedTree)
	var order []string
	for {
		pairs := ins.mst(length)
		if pairs == nil {
			break
		}
		treeLen := 0.0
		for _, p := range pairs {
			treeLen += y[p]
		}
		if treeLen >= 1 {
			break
		}
		// Bottleneck budget along the tree.
		c := math.Inf(1)
		for _, p := range pairs {
			if w := ins.W[p[0]][p[1]]; w < c {
				c = w
			}
		}
		key := pairsKey(pairs)
		pt, ok := raw[key]
		if !ok {
			pt = &PackedTree{Pairs: clonePairs(pairs)}
			raw[key] = pt
			order = append(order, key)
		}
		pt.Rate += c
		for _, p := range pairs {
			y[p] *= 1 + eps*c/ins.W[p[0]][p[1]]
		}
	}

	// Rescale to exact feasibility by the measured maximum congestion. The
	// theoretical scale log_{1+eps}((1+eps)/delta) upper-bounds the measured
	// congestion, so this division is never worse than the textbook scaling
	// and keeps the (1-eps)^2 guarantee.
	use := make(map[[2]int]float64)
	for _, key := range order {
		pt := raw[key]
		for _, p := range pt.Pairs {
			use[p] += pt.Rate
		}
	}
	maxCong := 0.0
	for p, u := range use {
		if c := u / ins.W[p[0]][p[1]]; c > maxCong {
			maxCong = c
		}
	}
	trees := make([]PackedTree, 0, len(order))
	total := 0.0
	if maxCong > 0 {
		scale := 1 / maxCong
		for _, key := range order {
			pt := raw[key]
			pt.Rate *= scale
			total += pt.Rate
			trees = append(trees, *pt)
		}
	}
	return trees, total, nil
}

// PackGreedy water-fills integral trees: it repeatedly takes the spanning
// tree maximizing the minimum residual budget along it (max-bottleneck tree,
// computed by a Kruskal sweep over descending residuals), routes that
// bottleneck, and stops when the residual graph disconnects. It is the
// natural "Fig. 1" decomposition and a lower bound on the optimum.
func (ins *Instance) PackGreedy() ([]PackedTree, float64) {
	n := ins.N
	residual := make([][]float64, n)
	for i := range residual {
		residual[i] = append([]float64(nil), ins.W[i]...)
	}
	var trees []PackedTree
	total := 0.0
	for {
		pairs, bottleneck := maxBottleneckTree(n, residual)
		if pairs == nil || bottleneck <= 0 {
			break
		}
		for _, p := range pairs {
			residual[p[0]][p[1]] -= bottleneck
			residual[p[1]][p[0]] -= bottleneck
		}
		trees = append(trees, PackedTree{Pairs: clonePairs(pairs), Rate: bottleneck})
		total += bottleneck
	}
	return trees, total
}

// maxBottleneckTree returns a spanning tree maximizing its minimum residual
// edge, via Kruskal over edges sorted by descending residual.
func maxBottleneckTree(n int, residual [][]float64) ([][2]int, float64) {
	type we struct {
		i, j int
		w    float64
	}
	edges := make([]we, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if residual[i][j] > 0 {
				edges = append(edges, we{i, j, residual[i][j]})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	pairs := make([][2]int, 0, n-1)
	bottleneck := math.Inf(1)
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri == rj {
			continue
		}
		parent[ri] = rj
		pairs = append(pairs, orient(e.i, e.j))
		if e.w < bottleneck {
			bottleneck = e.w
		}
		if len(pairs) == n-1 {
			return pairs, bottleneck
		}
	}
	return nil, 0
}

func pairsKey(pairs [][2]int) string {
	sorted := clonePairs(pairs)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a][0] != sorted[b][0] {
			return sorted[a][0] < sorted[b][0]
		}
		return sorted[a][1] < sorted[b][1]
	})
	key := make([]byte, 0, len(sorted)*4)
	for _, p := range sorted {
		key = append(key, byte(p[0]), byte(p[0]>>8), byte(p[1]), byte(p[1]>>8))
	}
	return string(key)
}

func clonePairs(pairs [][2]int) [][2]int {
	out := make([][2]int, len(pairs))
	copy(out, pairs)
	return out
}
