package core

import (
	"fmt"

	"overcast/internal/overlay"
	"overcast/internal/rng"
)

// RoundingResult is the outcome of Random-MinCongestion (Table V): one tree
// per session, with congestion diagnostics.
type RoundingResult struct {
	// Chosen[i] is the single tree selected for session i.
	Chosen []*overlay.Tree
	// SessionMaxCongestion[i] is l^i_max, the maximum congestion over the
	// edges of session i's tree when every session routes its full demand.
	SessionMaxCongestion []float64
	// MaxCongestion is l_max = max_i l^i_max.
	MaxCongestion float64
	// Feasible is the exactly feasible solution obtained by scaling each
	// session's demand by its l^i_max (the paper's feasibility recipe).
	Feasible *Solution
}

// RandomMinCongestion implements Table V: given a fractional solution base
// (from MaxConcurrentFlow), pick one tree per session with probability
// proportional to its fractional rate, route the full demand along it, and
// report the congestion. Theorem 3 bounds MaxCongestion by
// O(OPT + sqrt(OPT·ln(|E|/p))) with probability 1-p.
func RandomMinCongestion(p *Problem, base *Solution, r *rng.RNG) (*RoundingResult, error) {
	if len(base.Flows) != p.K() {
		return nil, fmt.Errorf("core: base solution has %d sessions, problem has %d", len(base.Flows), p.K())
	}
	res := &RoundingResult{
		Chosen:               make([]*overlay.Tree, p.K()),
		SessionMaxCongestion: make([]float64, p.K()),
	}
	load := make([]float64, p.G.NumEdges())
	for i, flows := range base.Flows {
		if len(flows) == 0 {
			return nil, fmt.Errorf("core: session %d has no trees in base solution", i)
		}
		weights := make([]float64, len(flows))
		for j, tf := range flows {
			weights[j] = tf.Rate
		}
		t := flows[r.WeightedChoice(weights)].Tree
		res.Chosen[i] = t
		for _, use := range t.Use() {
			load[use.Edge] += float64(use.Count) * p.Sessions[i].Demand / p.G.Edges[use.Edge].Capacity
		}
	}
	for i, t := range res.Chosen {
		for _, use := range t.Use() {
			if l := load[use.Edge]; l > res.SessionMaxCongestion[i] {
				res.SessionMaxCongestion[i] = l
			}
		}
		if res.SessionMaxCongestion[i] > res.MaxCongestion {
			res.MaxCongestion = res.SessionMaxCongestion[i]
		}
	}
	// Feasible solution: session i carries dem(i)/l^i_max along its tree.
	// Scaled congestion on any edge e is sum_i contrib_i(e)/l^i_max
	// <= sum_i contrib_i(e)/l_e = 1.
	sol := newSolution(p)
	for i, t := range res.Chosen {
		rate := p.Sessions[i].Demand
		if res.SessionMaxCongestion[i] > 0 {
			rate /= res.SessionMaxCongestion[i]
		}
		sol.Flows[i] = append(sol.Flows[i], TreeFlow{Tree: t, Rate: rate})
	}
	res.Feasible = sol
	return res, nil
}

// SelectTrees implements the Sec. IV-D "random algorithm": draw n trees per
// session from the fractional solution base with probability proportional
// to rate (with replacement), keep the distinct draws with their original
// fractional rates. A subset of a feasible flow remains feasible, so no
// rescaling is needed. Returns the truncated solution.
func SelectTrees(p *Problem, base *Solution, n int, r *rng.RNG) (*Solution, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: SelectTrees needs n>=1, got %d", n)
	}
	if len(base.Flows) != p.K() {
		return nil, fmt.Errorf("core: base solution has %d sessions, problem has %d", len(base.Flows), p.K())
	}
	sol := newSolution(p)
	for i, flows := range base.Flows {
		if len(flows) == 0 {
			continue
		}
		weights := make([]float64, len(flows))
		for j, tf := range flows {
			weights[j] = tf.Rate
		}
		picked := make(map[int]bool, n)
		for draw := 0; draw < n; draw++ {
			picked[r.WeightedChoice(weights)] = true
		}
		// Preserve base order for determinism.
		for j, tf := range flows {
			if picked[j] {
				sol.Flows[i] = append(sol.Flows[i], tf)
			}
		}
	}
	return sol, nil
}
