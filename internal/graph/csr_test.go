package graph

import (
	"testing"

	"overcast/internal/rng"
)

// buildRandom constructs a random simple graph on n nodes with ~density
// probability per pair, via the Builder (exercising the CSR build path).
func buildRandom(t *testing.T, r *rng.RNG, n int, density float64) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				if err := b.AddEdge(u, v, 1+r.Float64()*99); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.Build()
}

// referenceAdj recomputes adjacency, degree, and the edge index directly from
// the Edges slice — the pre-CSR representation — for equivalence checking.
func referenceAdj(g *Graph) (adj [][]EdgeID, index map[[2]NodeID]EdgeID) {
	adj = make([][]EdgeID, g.NumNodes())
	index = make(map[[2]NodeID]EdgeID, g.NumEdges())
	for id, e := range g.Edges {
		adj[e.U] = append(adj[e.U], id)
		adj[e.V] = append(adj[e.V], id)
		index[[2]NodeID{e.U, e.V}] = id
	}
	return adj, index
}

// TestCSREquivalence asserts that the CSR accessors (Adj, Neighbors, Degree,
// EdgeBetween) agree with a straightforward adjacency-list + map layout on
// random graphs of varied size and density, including edgeless and isolated
// nodes.
func TestCSREquivalence(t *testing.T) {
	r := rng.New(42)
	cases := []struct {
		n       int
		density float64
	}{
		{1, 0}, {2, 0}, {2, 1}, {5, 0.3}, {16, 0.1}, {16, 0.9}, {40, 0.05}, {40, 0.5}, {80, 0.02},
	}
	for ci, tc := range cases {
		g := buildRandom(t, r.Split(uint64(ci)), tc.n, tc.density)
		adj, index := referenceAdj(g)
		for v := 0; v < tc.n; v++ {
			if got, want := g.Degree(v), len(adj[v]); got != want {
				t.Fatalf("case %d: Degree(%d) = %d, want %d", ci, v, got, want)
			}
			got := g.Adj(v)
			if len(got) != len(adj[v]) {
				t.Fatalf("case %d: Adj(%d) = %v, want %v", ci, v, got, adj[v])
			}
			ids, tos := g.Neighbors(v)
			for k := range adj[v] {
				if got[k] != adj[v][k] {
					t.Fatalf("case %d: Adj(%d)[%d] = %d, want %d", ci, v, k, got[k], adj[v][k])
				}
				if ids[k] != adj[v][k] {
					t.Fatalf("case %d: Neighbors(%d) ids[%d] = %d, want %d", ci, v, k, ids[k], adj[v][k])
				}
				if want := g.Edges[adj[v][k]].Other(v); tos[k] != want {
					t.Fatalf("case %d: Neighbors(%d) tos[%d] = %d, want %d", ci, v, k, tos[k], want)
				}
			}
		}
		for u := 0; u < tc.n; u++ {
			for v := 0; v < tc.n; v++ {
				if u == v {
					continue
				}
				key := [2]NodeID{u, v}
				if u > v {
					key = [2]NodeID{v, u}
				}
				wantID, wantOK := index[key]
				gotID, gotOK := g.EdgeBetween(u, v)
				if gotOK != wantOK || (gotOK && gotID != wantID) {
					t.Fatalf("case %d: EdgeBetween(%d,%d) = %d,%v want %d,%v", ci, u, v, gotID, gotOK, wantID, wantOK)
				}
			}
		}
	}
}

// TestCSRAdjOrderIsEdgeIDOrder pins the deterministic neighbour scan order
// every algorithm's tie-breaking relies on: incident edges appear in
// ascending EdgeID order.
func TestCSRAdjOrderIsEdgeIDOrder(t *testing.T) {
	g := buildRandom(t, rng.New(7), 30, 0.3)
	for v := 0; v < g.NumNodes(); v++ {
		adj := g.Adj(v)
		for k := 1; k < len(adj); k++ {
			if adj[k-1] >= adj[k] {
				t.Fatalf("Adj(%d) not in ascending EdgeID order: %v", v, adj)
			}
		}
	}
}

// TestEdgeBetweenAllocs pins the edge lookup as allocation-free (it was a
// map probe before the CSR refactor; now a binary search).
func TestEdgeBetweenAllocs(t *testing.T) {
	g := buildRandom(t, rng.New(9), 50, 0.2)
	if g.NumEdges() == 0 {
		t.Skip("no edges")
	}
	e := g.Edges[g.NumEdges()/2]
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := g.EdgeBetween(e.U, e.V); !ok {
			t.Fatal("edge vanished")
		}
		if _, ok := g.EdgeBetween(e.V, e.U); !ok {
			t.Fatal("edge vanished reversed")
		}
	})
	if allocs != 0 {
		t.Fatalf("EdgeBetween allocates %v per run, want 0", allocs)
	}
}
