package core_test

import (
	"testing"
	"testing/quick"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func mcfBase(t testing.TB, seed uint64, sizes []int) (*core.Problem, *core.Solution) {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(40)
	var sets [][]graph.NodeID
	off := 0
	for _, sz := range sizes {
		sets = append(sets, perm[off:off+sz])
		off += sz
	}
	p := buildProblem(t, net.Graph, sets, nil, core.RoutingIP)
	res, err := core.MaxConcurrentFlow(p, core.MaxConcurrentFlowOptions{Epsilon: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	return p, res.Solution
}

func TestRandomMinCongestionProducesFeasibleScaledSolution(t *testing.T) {
	p, base := mcfBase(t, 51, []int{5, 4})
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		res, err := core.RandomMinCongestion(p, base, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Chosen) != p.K() {
			t.Fatal("wrong number of chosen trees")
		}
		if res.MaxCongestion <= 0 {
			t.Fatal("no congestion recorded")
		}
		for i, l := range res.SessionMaxCongestion {
			if l <= 0 || l > res.MaxCongestion+1e-12 {
				t.Fatalf("session %d congestion %v vs max %v", i, l, res.MaxCongestion)
			}
		}
		if err := res.Feasible.CheckFeasible(1e-9); err != nil {
			t.Fatalf("trial %d scaled solution infeasible: %v", trial, err)
		}
		// Each chosen tree must come from the base solution.
		for i, tr := range res.Chosen {
			found := false
			for _, tf := range base.Flows[i] {
				if tf.Tree.Key() == tr.Key() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("chosen tree for session %d not in base", i)
			}
		}
	}
}

func TestRandomMinCongestionPrefersHighRateTrees(t *testing.T) {
	p, base := mcfBase(t, 53, []int{5, 4})
	// Count how often the top-rate tree of session 0 is picked; with the
	// asymmetric rate distribution it should dominate a uniform pick.
	flows := base.Flows[0]
	bestIdx, bestRate, total := 0, 0.0, 0.0
	for j, tf := range flows {
		total += tf.Rate
		if tf.Rate > bestRate {
			bestRate = tf.Rate
			bestIdx = j
		}
	}
	r := rng.New(7)
	hits := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		res, err := core.RandomMinCongestion(p, base, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Chosen[0].Key() == flows[bestIdx].Tree.Key() {
			hits++
		}
	}
	wantFrac := bestRate / total
	got := float64(hits) / trials
	if got < wantFrac*0.6 || got > wantFrac*1.4+0.05 {
		t.Fatalf("top tree picked %.3f of the time, expected about %.3f", got, wantFrac)
	}
}

func TestRandomMinCongestionErrors(t *testing.T) {
	p, base := mcfBase(t, 55, []int{4, 3})
	short := &core.Solution{G: base.G, Sessions: base.Sessions[:1], Flows: base.Flows[:1]}
	if _, err := core.RandomMinCongestion(p, short, rng.New(1)); err == nil {
		t.Error("mismatched base accepted")
	}
}

func TestSelectTreesSubsetIsFeasibleAndMonotone(t *testing.T) {
	p, base := mcfBase(t, 57, []int{6, 4})
	r := rng.New(3)
	prev := 0.0
	for _, n := range []int{1, 2, 5, 10, 50} {
		sol, err := core.SelectTrees(p, base, n, r.Split(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sol.CheckFeasible(1e-9); err != nil {
			t.Fatalf("n=%d infeasible: %v", n, err)
		}
		for i := range p.Sessions {
			if sol.TreeCount(i) > n {
				t.Fatalf("n=%d session %d has %d trees", n, i, sol.TreeCount(i))
			}
			if sol.SessionRate(i) > base.SessionRate(i)+1e-9 {
				t.Fatalf("subset rate exceeds base rate")
			}
		}
		// Average throughput should not collapse as n grows (monotone in
		// expectation; we use one sample per n but allow slack via >= 0.5x).
		tp := sol.OverallThroughput()
		if tp < prev*0.5 {
			t.Fatalf("throughput dropped sharply at n=%d: %v -> %v", n, prev, tp)
		}
		if tp > prev {
			prev = tp
		}
	}
	// With many draws we should recover most of the base throughput.
	sol, err := core.SelectTrees(p, base, 200, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if sol.OverallThroughput() < 0.9*base.OverallThroughput() {
		t.Fatalf("200 draws recovered only %v of %v", sol.OverallThroughput(), base.OverallThroughput())
	}
}

func TestSelectTreesErrors(t *testing.T) {
	p, base := mcfBase(t, 59, []int{4, 3})
	if _, err := core.SelectTrees(p, base, 0, rng.New(1)); err == nil {
		t.Error("n=0 accepted")
	}
	short := &core.Solution{G: base.G, Sessions: base.Sessions[:1], Flows: base.Flows[:1]}
	if _, err := core.SelectTrees(p, short, 3, rng.New(1)); err == nil {
		t.Error("mismatched base accepted")
	}
}

// TestRoundingFeasibilityProperty: the per-session congestion scaling of
// Random-MinCongestion yields a feasible solution for any base solution and
// seed — the invariant behind the paper's feasibility recipe.
func TestRoundingFeasibilityProperty(t *testing.T) {
	p, base := mcfBase(t, 61, []int{5, 3})
	check := func(seed uint64) bool {
		res, err := core.RandomMinCongestion(p, base, rng.New(seed))
		if err != nil {
			return false
		}
		return res.Feasible.CheckFeasible(1e-9) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
