// Package baseline implements the dissemination strategies the paper's
// introduction argues against, for quantitative comparison with the
// multi-tree optimum:
//
//   - SingleTree: the classic one-tree-per-session overlay multicast (leaf
//     bandwidth goes unused);
//   - SplitStream: an interior-node-disjoint forest in the spirit of
//     SplitStream [2] — one stripe per member, each member the sole interior
//     node of its stripe;
//   - RandomForest: a given number of uniformly random spanning trees per
//     session (Prüfer sampling), a strawman for tree selection quality.
//
// All baselines produce exactly feasible core.Solutions via the same
// per-session congestion scaling used by the online algorithm (rate_i =
// dem(i)/l^i_max), so comparisons against MaxFlow/MaxConcurrentFlow are
// apples-to-apples.
package baseline

import (
	"fmt"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
)

// fixedOracles rebuilds fixed-routing oracles for p's sessions (baselines
// always route over fixed IP paths; that is what the systems they model do).
func fixedOracles(p *core.Problem) ([]*overlay.FixedOracle, error) {
	var members []graph.NodeID
	for _, s := range p.Sessions {
		members = append(members, s.Members...)
	}
	rt := routing.NewIPRoutes(p.G, members)
	oracles := make([]*overlay.FixedOracle, len(p.Sessions))
	for i, s := range p.Sessions {
		o, err := overlay.NewFixedOracle(p.G, rt, s)
		if err != nil {
			return nil, err
		}
		oracles[i] = o
	}
	return oracles, nil
}

// finalize turns per-session tree sets (with per-tree demand shares) into an
// exactly feasible solution by scaling each session's rate by its maximum
// congestion at full demand, mirroring Online-MinCongestion's recipe.
func finalize(p *core.Problem, trees [][]*overlay.Tree, shares [][]float64) (*core.Solution, error) {
	load := make([]float64, p.G.NumEdges())
	for i, ts := range trees {
		for j, t := range ts {
			for _, u := range t.Use() {
				load[u.Edge] += float64(u.Count) * shares[i][j] * p.Sessions[i].Demand / p.G.Edges[u.Edge].Capacity
			}
		}
	}
	sol := &core.Solution{G: p.G, Sessions: p.Sessions, Flows: make([][]core.TreeFlow, p.K())}
	for i, ts := range trees {
		limax := 0.0
		for _, t := range ts {
			for _, u := range t.Use() {
				if l := load[u.Edge]; l > limax {
					limax = l
				}
			}
		}
		scale := 1.0
		if limax > 0 {
			scale = 1 / limax
		}
		for j, t := range ts {
			rate := shares[i][j] * p.Sessions[i].Demand * scale
			if rate > 0 {
				sol.Flows[i] = append(sol.Flows[i], core.TreeFlow{Tree: t, Rate: rate})
			}
		}
	}
	return sol, nil
}

// SingleTree assigns every session one minimum-total-hop overlay tree (the
// MOST under uniform lengths) and scales to feasibility.
func SingleTree(p *core.Problem) (*core.Solution, error) {
	oracles, err := fixedOracles(p)
	if err != nil {
		return nil, err
	}
	unit := graph.NewLengths(p.G, 1)
	trees := make([][]*overlay.Tree, p.K())
	shares := make([][]float64, p.K())
	for i, o := range oracles {
		t, err := o.MinTree(unit)
		if err != nil {
			return nil, fmt.Errorf("baseline: single tree session %d: %w", i, err)
		}
		trees[i] = []*overlay.Tree{t}
		shares[i] = []float64{1}
	}
	return finalize(p, trees, shares)
}

// SplitStream builds, for every session of size n, n interior-node-disjoint
// stripes: stripe h is the overlay star centered at member h (member h is
// its only interior node). The session demand is split equally across
// stripes. Sessions of size 2 degenerate to a single direct tree.
func SplitStream(p *core.Problem) (*core.Solution, error) {
	oracles, err := fixedOracles(p)
	if err != nil {
		return nil, err
	}
	trees := make([][]*overlay.Tree, p.K())
	shares := make([][]float64, p.K())
	for i, o := range oracles {
		n := p.Sessions[i].Size()
		stripes := n
		if n == 2 {
			stripes = 1
		}
		for h := 0; h < stripes; h++ {
			pairs := make([][2]int, 0, n-1)
			for v := 0; v < n; v++ {
				if v != h {
					pairs = append(pairs, [2]int{min(h, v), max(h, v)})
				}
			}
			trees[i] = append(trees[i], overlay.TreeFromPairs(o, pairs))
			shares[i] = append(shares[i], 1/float64(stripes))
		}
	}
	return finalize(p, trees, shares)
}

// RandomForest assigns every session m uniformly random labeled spanning
// trees (independent Prüfer samples, deduplicated) with equal demand shares.
func RandomForest(p *core.Problem, m int, r *rng.RNG) (*core.Solution, error) {
	if m < 1 {
		return nil, fmt.Errorf("baseline: RandomForest needs m>=1, got %d", m)
	}
	oracles, err := fixedOracles(p)
	if err != nil {
		return nil, err
	}
	trees := make([][]*overlay.Tree, p.K())
	shares := make([][]float64, p.K())
	for i, o := range oracles {
		n := p.Sessions[i].Size()
		seen := map[string]bool{}
		var picked []*overlay.Tree
		for draw := 0; draw < m; draw++ {
			seq := make([]int, n-2)
			for j := range seq {
				seq[j] = r.Intn(n)
			}
			pairs, err := overlay.PruferDecode(seq, n)
			if err != nil {
				return nil, err
			}
			t := overlay.TreeFromPairs(o, pairs)
			if !seen[t.Key()] {
				seen[t.Key()] = true
				picked = append(picked, t)
			}
		}
		trees[i] = picked
		shares[i] = make([]float64, len(picked))
		for j := range picked {
			shares[i][j] = 1 / float64(len(picked))
		}
	}
	return finalize(p, trees, shares)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
