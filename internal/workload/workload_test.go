package workload

import (
	"math"
	"sort"
	"testing"

	"overcast/internal/rng"
	"overcast/internal/topology"
)

func close17(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s: got %.17g, want %.17g", what, got, want)
	}
}

// TestGoldenStreams pins the exact fixed-seed sample streams, so any change
// to sampler math or RNG consumption order shows up as a test failure, not a
// silent reshuffle of every scenario instance.
func TestGoldenStreams(t *testing.T) {
	r := rng.New(7)
	p := Pareto{Shape: 1.5, Scale: 40}
	wantP := []float64{50.709534259733182, 93.737952614417082, 44.943708132012105, 40.512136337002417}
	for i, w := range wantP {
		close17(t, "pareto", p.Sample(r), w)
		_ = i
	}
	l := LognormalMedian(80, 0.7)
	wantL := []float64{64.668585844846262, 99.02602412128833, 24.320346015992722, 24.851238955141856}
	for _, w := range wantL {
		close17(t, "lognormal", l.Sample(r), w)
	}
	z := NewZipf(100, 1.1)
	wantZ := []int{0, 0, 0, 11, 12, 1, 20, 0}
	for i, w := range wantZ {
		if got := z.Sample(r); got != w {
			t.Fatalf("zipf draw %d: got %d, want %d", i, got, w)
		}
	}
}

func TestGoldenCDNSessions(t *testing.T) {
	sc, err := Get("cdn")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sc.Sessions(500, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{6, 3, 4}
	wantDemands := []float64{171.5281161330505, 20.319051392690678, 50.250369606357069}
	wantFirst := []int{53, 390, 69}
	for i, s := range sess {
		if s.Size() != wantSizes[i] {
			t.Errorf("session %d size %d, want %d", i, s.Size(), wantSizes[i])
		}
		close17(t, "demand", s.Demand, wantDemands[i])
		if s.Members[0] != wantFirst[i] {
			t.Errorf("session %d source %d, want %d", i, s.Members[0], wantFirst[i])
		}
	}
}

// TestParetoTail checks the tail index against closed-form Pareto facts:
// median xm*2^(1/a), q90 = xm*10^(1/a), mean a*xm/(a-1).
func TestParetoTail(t *testing.T) {
	const n = 40000
	p := Pareto{Shape: 1.5, Scale: 40}
	r := rng.New(99)
	xs := make([]float64, n)
	sum := 0.0
	for i := range xs {
		xs[i] = p.Sample(r)
		if xs[i] < p.Scale {
			t.Fatalf("pareto sample %v below scale %v", xs[i], p.Scale)
		}
		sum += xs[i]
	}
	sort.Float64s(xs)
	median, q90 := xs[n/2], xs[n*9/10]
	if want := p.Scale * math.Pow(2, 1/p.Shape); math.Abs(median-want)/want > 0.03 {
		t.Errorf("median %v, want ~%v", median, want)
	}
	if want := p.Scale * math.Pow(10, 1/p.Shape); math.Abs(q90-want)/want > 0.05 {
		t.Errorf("q90 %v, want ~%v", q90, want)
	}
	// Infinite-variance regime: the mean converges slowly, so the tolerance
	// is wide — this still catches a wrong tail index (a=1.5 vs 2 moves the
	// mean by 33%).
	if want := p.Shape * p.Scale / (p.Shape - 1); math.Abs(sum/n-want)/want > 0.25 {
		t.Errorf("mean %v, want ~%v", sum/n, want)
	}
}

func TestLognormalShape(t *testing.T) {
	const n = 40000
	l := LognormalMedian(80, 0.7)
	r := rng.New(4)
	logs := make([]float64, n)
	logSum := 0.0
	for i := range logs {
		v := l.Sample(r)
		if v <= 0 {
			t.Fatal("non-positive lognormal sample")
		}
		logs[i] = math.Log(v)
		logSum += logs[i]
	}
	if mu := logSum / n; math.Abs(mu-l.Mu) > 0.02*math.Abs(l.Mu) {
		t.Errorf("mean log %v, want ~%v", mu, l.Mu)
	}
	varSum := 0.0
	for _, x := range logs {
		varSum += (x - l.Mu) * (x - l.Mu)
	}
	if sd := math.Sqrt(varSum / n); math.Abs(sd-l.Sigma) > 0.05*l.Sigma {
		t.Errorf("log stddev %v, want ~%v", sd, l.Sigma)
	}
}

func TestZipfHead(t *testing.T) {
	const n, draws = 1000, 200000
	s := 1.1
	z := NewZipf(n, s)
	r := rng.New(21)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	// P(0)/P(1) = 2^s; the head has plenty of mass, so the estimate is tight.
	ratio := float64(counts[0]) / float64(counts[1])
	if want := math.Pow(2, s); math.Abs(ratio-want)/want > 0.1 {
		t.Errorf("rank0/rank1 ratio %v, want ~%v", ratio, want)
	}
	if !(counts[0] > counts[2] && counts[2] > counts[10] && counts[10] > counts[200]) {
		t.Errorf("head frequencies not decreasing: %d %d %d %d",
			counts[0], counts[2], counts[10], counts[200])
	}
}

func TestClamp(t *testing.T) {
	c := Clamp{S: Pareto{Shape: 1.05, Scale: 10}, Lo: 12, Hi: 50}
	r := rng.New(3)
	sawLo, sawHi := false, false
	for i := 0; i < 5000; i++ {
		v := c.Sample(r)
		if v < c.Lo || v > c.Hi {
			t.Fatalf("clamped sample %v outside [%v,%v]", v, c.Lo, c.Hi)
		}
		sawLo = sawLo || v == c.Lo
		sawHi = sawHi || v == c.Hi
	}
	if !sawLo || !sawHi {
		t.Errorf("clamp never hit a bound (lo=%v hi=%v)", sawLo, sawHi)
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d scenarios, want >= 5", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	for _, name := range names {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Name != name || sc.Description == "" || sc.Regime == "" {
			t.Fatalf("scenario %q has incomplete metadata: %+v", name, sc)
		}
		if sc.Capacity == nil || sc.Demand == nil || sc.Size == nil {
			t.Fatalf("scenario %q missing a distribution", name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) did not fail")
	}
}

// Every scenario must yield valid sessions (distinct members, positive
// demand) and positive capacities, deterministically per seed.
func TestScenarioInstancesValid(t *testing.T) {
	net, err := topology.WaxmanGrid(topology.DefaultWaxman(300), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		sc, _ := Get(name)
		sc.Capacities(net.Graph, rng.New(2))
		minCap := math.Inf(1)
		for _, e := range net.Graph.Edges {
			if e.Capacity < minCap {
				minCap = e.Capacity
			}
		}
		if minCap <= 0 {
			t.Fatalf("%s: non-positive capacity %v", name, minCap)
		}
		sess, err := sc.Sessions(net.Graph.NumNodes(), 12, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		again, err := sc.Sessions(net.Graph.NumNodes(), 12, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sess {
			if s.Demand <= 0 {
				t.Fatalf("%s session %d: demand %v", name, i, s.Demand)
			}
			if s.Size() < 2 || s.Size() > net.Graph.NumNodes() {
				t.Fatalf("%s session %d: size %d", name, i, s.Size())
			}
			if got, want := again[i].Members, s.Members; len(got) != len(want) {
				t.Fatalf("%s session %d: nondeterministic size", name, i)
			} else {
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%s session %d member %d: nondeterministic (%d vs %d)",
							name, i, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// Zipf-skewed membership must concentrate on a small set of hot nodes
// compared to uniform membership — but NOT on low node ids specifically,
// since ranks go through a random permutation (low ids are the
// best-connected core nodes of incremental Waxman topologies, and welding
// popularity to them would bias every heavy-popularity scenario).
func TestPopularitySkew(t *testing.T) {
	live, _ := Get("livestream")
	uni, _ := Get("uniform")
	const n = 1000
	topShare := func(sc *Scenario) (share, lowIDShare float64) {
		sess, err := sc.Sessions(n, 60, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		total := 0
		lowID := 0
		for _, s := range sess {
			for _, m := range s.Members {
				counts[m]++
				total++
				if m < n/10 {
					lowID++
				}
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for _, c := range counts[:n/10] {
			top += c
		}
		return float64(top) / float64(total), float64(lowID) / float64(total)
	}
	// Isolate the popularity effect: same size/demand distributions as
	// livestream, popularity switched off.
	flat := *live
	flat.PopularityExp = 0
	liveTop, liveLow := topShare(live)
	flatTop, _ := topShare(&flat)
	uniTop, _ := topShare(uni)
	if liveTop < 1.5*flatTop {
		t.Errorf("livestream top-decile share %.3f not concentrated vs flat %.3f (uniform %.3f)",
			liveTop, flatTop, uniTop)
	}
	// The hot set must not coincide with the low-id topology core: its mass
	// on the first decile of ids should stay near the uniform 10%.
	if liveLow > 0.25 {
		t.Errorf("livestream low-id share %.3f: popularity is welded to node ids", liveLow)
	}
}

// TestMemberSamplerUniformFallback pins the fallback rule documented on
// MemberSampler: sessions spanning more than an eighth of the topology skip
// Zipf rejection (which would stall on the tail) and must consume the caller
// RNG exactly like a plain uniform distinct-sample — the same draw a
// popularity-free scenario makes. Small sessions must keep the Zipf path.
func TestMemberSamplerUniformFallback(t *testing.T) {
	sc, err := Get("cdn") // PopularityExp = 1.0
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	ms := sc.NewMemberSampler(n, rng.New(42))

	// size > n/8: bitwise-equal to the uniform sampler on an identically
	// seeded stream, for several seeds and sizes.
	for _, size := range []int{n/8 + 1, 16, 33} {
		for seed := uint64(0); seed < 8; seed++ {
			got := ms.Sample(rng.New(seed), size)
			want := rng.New(seed).Sample(n, size)
			if len(got) != len(want) {
				t.Fatalf("size=%d seed=%d: %d members, want %d", size, seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("size=%d seed=%d member %d: %d != %d (fallback not uniform)", size, seed, i, got[i], want[i])
				}
			}
			seen := map[int]bool{}
			for _, m := range got {
				if m < 0 || m >= n || seen[m] {
					t.Fatalf("size=%d seed=%d: invalid or duplicate member %d", size, seed, m)
				}
				seen[m] = true
			}
		}
	}

	// size = n/8 exactly stays on the Zipf path (the rule is strict
	// inequality): across seeds, at least one draw must differ from the
	// uniform stream, or the skew has silently vanished.
	zipfDiffers := false
	for seed := uint64(0); seed < 16 && !zipfDiffers; seed++ {
		got := ms.Sample(rng.New(seed), n/8)
		want := rng.New(seed).Sample(n, n/8)
		for i := range got {
			if got[i] != want[i] {
				zipfDiffers = true
				break
			}
		}
	}
	if !zipfDiffers {
		t.Fatal("size <= n/8 draws matched the uniform stream on every seed — Zipf path lost")
	}

	// A scenario without popularity skew must take the uniform path at every
	// size (zipf == nil).
	uni, err := Get("uniform")
	if err != nil {
		t.Fatal(err)
	}
	ums := uni.NewMemberSampler(n, rng.New(42))
	for _, size := range []int{3, 8, 20} {
		got := ums.Sample(rng.New(5), size)
		want := rng.New(5).Sample(n, size)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("uniform scenario size=%d diverged from plain sampling", size)
			}
		}
	}
}
