package baseline

import (
	"testing"

	"overcast/internal/core"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/topology"
)

func testProblem(t testing.TB, seed uint64, sizes []int) *core.Problem {
	t.Helper()
	r := rng.New(seed)
	net, err := topology.Waxman(topology.DefaultWaxman(40), r)
	if err != nil {
		t.Fatal(err)
	}
	perm := r.Perm(40)
	var sessions []*overlay.Session
	off := 0
	for i, sz := range sizes {
		s, err := overlay.NewSession(i, perm[off:off+sz], 100)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		off += sz
	}
	p, err := core.NewProblem(net.Graph, sessions, core.RoutingIP)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleTreeFeasibleOneTreePerSession(t *testing.T) {
	p := testProblem(t, 1, []int{6, 4})
	sol, err := SingleTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	for i := range p.Sessions {
		if sol.TreeCount(i) != 1 {
			t.Fatalf("session %d has %d trees", i, sol.TreeCount(i))
		}
		if sol.SessionRate(i) <= 0 {
			t.Fatalf("session %d rate %v", i, sol.SessionRate(i))
		}
	}
}

func TestSplitStreamInteriorNodeDisjoint(t *testing.T) {
	p := testProblem(t, 2, []int{5})
	sol, err := SplitStream(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	flows := sol.Flows[0]
	if len(flows) != 5 {
		t.Fatalf("expected 5 stripes, got %d", len(flows))
	}
	// Stripe h must be the star on member h: every overlay pair touches h.
	for _, tf := range flows {
		counts := map[int]int{}
		for _, pr := range tf.Tree.Pairs {
			counts[pr[0]]++
			counts[pr[1]]++
		}
		hubs := 0
		for _, c := range counts {
			if c > 1 {
				hubs++
			}
		}
		if hubs > 1 {
			t.Fatalf("stripe has %d interior members, want <=1 (pairs %v)", hubs, tf.Tree.Pairs)
		}
	}
}

func TestSplitStreamTwoMemberSession(t *testing.T) {
	p := testProblem(t, 3, []int{2})
	sol, err := SplitStream(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.TreeCount(0) != 1 {
		t.Fatalf("2-member session should have 1 stripe, got %d", sol.TreeCount(0))
	}
}

func TestRandomForestFeasibleAndBounded(t *testing.T) {
	p := testProblem(t, 4, []int{5, 3})
	sol, err := RandomForest(p, 8, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.CheckFeasible(1e-9); err != nil {
		t.Fatal(err)
	}
	for i := range p.Sessions {
		if c := sol.TreeCount(i); c < 1 || c > 8 {
			t.Fatalf("session %d tree count %d", i, c)
		}
	}
	if _, err := RandomForest(p, 0, rng.New(1)); err == nil {
		t.Fatal("m=0 accepted")
	}
}

func TestMultiTreeOptimumBeatsBaselines(t *testing.T) {
	// The paper's core motivation: the MaxFlow multi-tree optimum dominates
	// the single-tree and SplitStream baselines in overall throughput.
	p := testProblem(t, 5, []int{6, 4})
	opt, err := core.MaxFlow(p, core.MaxFlowOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	single, err := SingleTree(p)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitStream(p)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RandomForest(p, 5, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ot := opt.OverallThroughput()
	for name, sol := range map[string]*core.Solution{
		"single": single, "splitstream": split, "randomforest": rf,
	} {
		if bt := sol.OverallThroughput(); bt > ot*1.01 {
			t.Fatalf("%s throughput %v exceeds optimum %v", name, bt, ot)
		}
	}
	if single.OverallThroughput() >= ot {
		t.Fatalf("single tree should not reach the multi-tree optimum: %v vs %v",
			single.OverallThroughput(), ot)
	}
}

func TestBaselinesDeterministicPerSeed(t *testing.T) {
	p := testProblem(t, 6, []int{4, 3})
	a, err := RandomForest(p, 6, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomForest(p, 6, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Sessions {
		if a.SessionRate(i) != b.SessionRate(i) || a.TreeCount(i) != b.TreeCount(i) {
			t.Fatalf("RandomForest not deterministic for session %d", i)
		}
	}
}
