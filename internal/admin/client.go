package admin

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// RPCError is a failed admin RPC: the server rejected the request with a
// machine-readable code (the ErrCode* constants) and a message.
type RPCError struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *RPCError) Error() string { return fmt.Sprintf("admin: %s: %s", e.Code, e.Msg) }

// Client speaks the admin protocol over one connection. Safe for concurrent
// use: calls are serialized on the connection (the protocol is strictly
// request/response per frame).
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	nextID uint64
}

// Dial connects to an overcastd admin socket, retrying for up to wait so
// callers can race a just-started daemon (wait <= 0 tries exactly once).
func Dial(socketPath string, wait time.Duration) (*Client, error) {
	deadline := time.Now().Add(wait)
	for {
		conn, err := net.Dial("unix", socketPath)
		if err == nil {
			return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64<<10)}, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("admin: dial %s: %w", socketPath, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do sends one request frame and reads its response, matching correlation
// ids. A failed RPC returns *RPCError; transport failures return the
// underlying error.
func (c *Client) do(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.V = ProtocolVersion
	req.ID = c.nextID
	frame, err := EncodeFrame(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("admin: write %s request: %w", req.Op, err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("admin: read %s response: %w", req.Op, err)
	}
	resp, err := DecodeResponse(line[:len(line)-1])
	if err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("admin: response id %d for request id %d", resp.ID, req.ID)
	}
	if !resp.OK {
		return nil, &RPCError{Code: resp.Code, Msg: resp.Error}
	}
	return resp, nil
}

// missing flags a success response without its op's result body — a server
// bug, but the client must not nil-panic over the wire.
func missing(op string) error { return fmt.Errorf("admin: %s response missing result body", op) }

// Ping checks liveness and protocol agreement.
func (c *Client) Ping() (*PingResult, error) {
	resp, err := c.do(&Request{Op: OpPing})
	if err != nil {
		return nil, err
	}
	if resp.Ping == nil {
		return nil, missing(OpPing)
	}
	return resp.Ping, nil
}

// Join admits a session and returns its epoch-stamped placement; the token
// in Placement.Session names the session in later calls.
func (c *Client) Join(members []int, demand float64) (*WirePlacement, error) {
	resp, err := c.do(&Request{Op: OpJoin, Join: &JoinParams{Members: members, Demand: demand}})
	if err != nil {
		return nil, err
	}
	if resp.Join == nil {
		return nil, missing(OpJoin)
	}
	return &resp.Join.Placement, nil
}

// Leave removes the session with the given token.
func (c *Client) Leave(session uint64) (*LeaveResult, error) {
	resp, err := c.do(&Request{Op: OpLeave, Leave: &LeaveParams{Session: session}})
	if err != nil {
		return nil, err
	}
	if resp.Leave == nil {
		return nil, missing(OpLeave)
	}
	return resp.Leave, nil
}

// Rebalance refreshes the fair allocation and returns every active
// session's placement.
func (c *Client) Rebalance() (*RebalanceResult, error) {
	resp, err := c.do(&Request{Op: OpRebalance})
	if err != nil {
		return nil, err
	}
	if resp.Rebalance == nil {
		return nil, missing(OpRebalance)
	}
	return resp.Rebalance, nil
}

// Snapshot reads the current allocation. With refresh it re-solves
// incrementally first; otherwise it serves the daemon's last materialized
// allocation without blocking behind mutations.
func (c *Client) Snapshot(refresh bool) (*SnapshotResult, error) {
	req := &Request{Op: OpSnapshot}
	if refresh {
		req.Snapshot = &SnapshotParams{Refresh: true}
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.Snapshot == nil {
		return nil, missing(OpSnapshot)
	}
	return resp.Snapshot, nil
}

// Fault injects one underlay fault event: kind is one of the Fault* wire
// constants ("link-down", "link-up", "drift"); factor is the capacity
// multiplier and only meaningful for drifts. An effective fault advances the
// allocator epoch (watch streams see one frame); redundant events (link-up on
// a healthy link) are acknowledged no-ops.
func (c *Client) Fault(from, to int, kind string, factor float64) (*FaultResult, error) {
	resp, err := c.do(&Request{Op: OpFault, Fault: &FaultParams{From: from, To: to, Kind: kind, Factor: factor}})
	if err != nil {
		return nil, err
	}
	if resp.Fault == nil {
		return nil, missing(OpFault)
	}
	return resp.Fault, nil
}

// Stats reads the allocator and daemon counters.
func (c *Client) Stats() (*StatsResult, error) {
	resp, err := c.do(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, missing(OpStats)
	}
	return resp.Stats, nil
}

// Metrics reads the counters as Prometheus text exposition format.
func (c *Client) Metrics() (string, error) {
	resp, err := c.do(&Request{Op: OpMetrics})
	if err != nil {
		return "", err
	}
	if resp.Metrics == nil {
		return "", missing(OpMetrics)
	}
	return resp.Metrics.Text, nil
}

// Watcher is a subscribed watch stream. Next blocks for the stream's frames;
// the underlying Client connection belongs to the stream once Watch returns
// and must not be used for other RPCs.
type Watcher struct {
	c  *Client
	id uint64
}

// Watch converts the connection into a one-way event stream: the server
// immediately pushes the current epoch and materialized allocation, then one
// event per allocator-epoch change, plus a heartbeat frame whenever the
// stream is idle for the given interval (0 = the server's default, 30s).
// After Watch succeeds the connection carries only watch frames — use a
// dedicated Client for it and read with Next.
func (c *Client) Watch(heartbeat time.Duration) (*Watcher, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req := &Request{V: ProtocolVersion, ID: c.nextID, Op: OpWatch}
	if heartbeat > 0 {
		req.Watch = &WatchParams{HeartbeatSeconds: heartbeat.Seconds()}
	}
	frame, err := EncodeFrame(req)
	if err != nil {
		return nil, err
	}
	if _, err := c.conn.Write(frame); err != nil {
		return nil, fmt.Errorf("admin: write %s request: %w", OpWatch, err)
	}
	return &Watcher{c: c, id: req.ID}, nil
}

// Next blocks for the stream's next event (the first call returns the
// initial snapshot frame). The stream's terminal frames surface as *RPCError:
// ErrCodeDraining when the daemon shuts down, ErrCodeSlowConsumer when this
// client fell too far behind; the server closes the connection after either,
// so a subsequent Next reports the transport error.
func (w *Watcher) Next() (*WatchEvent, error) {
	line, err := w.c.r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("admin: read %s event: %w", OpWatch, err)
	}
	resp, err := DecodeResponse(line[:len(line)-1])
	if err != nil {
		return nil, err
	}
	if resp.ID != w.id {
		return nil, fmt.Errorf("admin: watch frame id %d, want %d", resp.ID, w.id)
	}
	if !resp.OK {
		return nil, &RPCError{Code: resp.Code, Msg: resp.Error}
	}
	if resp.Watch == nil {
		return nil, missing(OpWatch)
	}
	return resp.Watch, nil
}

// Drain asks the daemon to shut down gracefully: it stops accepting work,
// persists a final state snapshot, and exits. The daemon closes this
// connection after acknowledging.
func (c *Client) Drain() (*DrainResult, error) {
	resp, err := c.do(&Request{Op: OpDrain})
	if err != nil {
		return nil, err
	}
	if resp.Drain == nil {
		return nil, missing(OpDrain)
	}
	return resp.Drain, nil
}
