// Package churn generates dynamic session workloads: sessions arrive as a
// Poisson process, live for exponentially distributed durations, and leave.
// The paper highlights "topological variability — new sessions may join and
// existing sessions may terminate over time" as a defining property of
// overlay networks; this package supplies the deterministic, seedable
// workloads under which the online allocator's behaviour is evaluated.
package churn

import (
	"fmt"
	"sort"

	"overcast/internal/rng"
	"overcast/internal/workload"
)

// SessionSpec describes one session of a workload.
type SessionSpec struct {
	Members []int
	Demand  float64
	// Arrive and Depart are the session's lifetime endpoints.
	Arrive, Depart float64
}

// EventKind discriminates workload events.
type EventKind int

const (
	// Join admits the session.
	Join EventKind = iota
	// Leave removes it.
	Leave
)

// Event is one workload event; Session indexes Workload.Sessions.
type Event struct {
	Time    float64
	Kind    EventKind
	Session int
}

// Workload is a fully materialized churn trace.
type Workload struct {
	Sessions []SessionSpec
	// Events are sorted by time (joins before leaves at equal times).
	Events []Event
}

// Config parametrizes workload generation.
type Config struct {
	// Nodes is the host population sessions draw members from.
	Nodes int
	// ArrivalRate is the Poisson arrival intensity (sessions per time unit).
	ArrivalRate float64
	// MeanLifetime is the exponential mean session duration.
	MeanLifetime float64
	// Horizon is the trace length; arrivals stop at Horizon (departures may
	// be clipped to it).
	Horizon float64
	// SizeMin/SizeMax bound the (uniform) session size, source included.
	SizeMin, SizeMax int
	// Demand per session.
	Demand float64
}

func (c *Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("churn: need >=2 nodes, got %d", c.Nodes)
	}
	if c.ArrivalRate <= 0 || c.MeanLifetime <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("churn: rates and horizon must be positive")
	}
	if c.SizeMin < 2 {
		return fmt.Errorf("churn: SizeMin must be >=2, got %d", c.SizeMin)
	}
	if c.SizeMax < c.SizeMin {
		return fmt.Errorf("churn: SizeMax %d < SizeMin %d", c.SizeMax, c.SizeMin)
	}
	if c.SizeMax > c.Nodes {
		return fmt.Errorf("churn: SizeMax %d exceeds %d nodes", c.SizeMax, c.Nodes)
	}
	if c.Demand <= 0 {
		return fmt.Errorf("churn: Demand must be positive")
	}
	return nil
}

// Generate materializes a workload deterministically from r.
func Generate(cfg Config, r *rng.RNG) (*Workload, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return generate(cfg, nil, r)
}

// GenerateScenario materializes a workload whose session sizes, demands, and
// member popularity follow the named workload scenario (internal/workload)
// instead of Config's uniform knobs: sizes come from the scenario's session
// mix, demands from its demand distribution, and members are Zipf-skewed
// toward the scenario's hot nodes. Only Config's arrival-process fields
// (Nodes, ArrivalRate, MeanLifetime, Horizon) apply; SizeMin/SizeMax/Demand
// are owned by the scenario and ignored.
func GenerateScenario(cfg Config, sc *workload.Scenario, r *rng.RNG) (*Workload, error) {
	if sc == nil {
		return Generate(cfg, r)
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("churn: need >=2 nodes, got %d", cfg.Nodes)
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanLifetime <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("churn: rates and horizon must be positive")
	}
	return generate(cfg, sc, r)
}

// generate is the shared trace builder: sc == nil draws sizes, demands, and
// members from Config's uniform knobs, otherwise from the scenario's
// distributions. The arrival process is identical either way.
func generate(cfg Config, sc *workload.Scenario, r *rng.RNG) (*Workload, error) {
	var members *workload.MemberSampler
	if sc != nil {
		members = sc.NewMemberSampler(cfg.Nodes, r)
	}
	w := &Workload{}
	t := 0.0
	for {
		t += r.ExpFloat64() / cfg.ArrivalRate
		if t >= cfg.Horizon {
			break
		}
		// Draw order (size, demand, lifetime, members) keeps the legacy
		// uniform path's RNG stream bit-identical to earlier releases.
		spec := SessionSpec{Demand: cfg.Demand, Arrive: t}
		var size int
		if sc != nil {
			size = sc.Size.SampleSize(r, cfg.Nodes)
			spec.Demand = sc.Demand.Sample(r)
		} else {
			size = cfg.SizeMin + r.Intn(cfg.SizeMax-cfg.SizeMin+1)
		}
		spec.Depart = t + r.ExpFloat64()*cfg.MeanLifetime
		if spec.Depart > cfg.Horizon {
			spec.Depart = cfg.Horizon
		}
		if sc != nil {
			spec.Members = members.Sample(r, size)
		} else {
			spec.Members = r.Sample(cfg.Nodes, size)
		}
		idx := len(w.Sessions)
		w.Sessions = append(w.Sessions, spec)
		w.Events = append(w.Events,
			Event{Time: t, Kind: Join, Session: idx},
			Event{Time: spec.Depart, Kind: Leave, Session: idx},
		)
	}
	sort.SliceStable(w.Events, func(a, b int) bool {
		ea, eb := w.Events[a], w.Events[b]
		if ea.Time != eb.Time {
			return ea.Time < eb.Time
		}
		// Joins sort before leaves at equal timestamps so an instantaneous
		// session still materializes.
		return ea.Kind < eb.Kind
	})
	return w, nil
}

// PeakConcurrency returns the maximum number of simultaneously active
// sessions over the trace.
func (w *Workload) PeakConcurrency() int {
	active, peak := 0, 0
	for _, e := range w.Events {
		if e.Kind == Join {
			active++
			if active > peak {
				peak = active
			}
		} else {
			active--
		}
	}
	return peak
}

// Validate checks event/lifetime consistency (used by tests and as a guard
// for hand-written traces).
func (w *Workload) Validate() error {
	joins := make([]bool, len(w.Sessions))
	leaves := make([]bool, len(w.Sessions))
	prev := -1.0
	for _, e := range w.Events {
		if e.Time < prev {
			return fmt.Errorf("churn: events out of order at t=%v", e.Time)
		}
		prev = e.Time
		if e.Session < 0 || e.Session >= len(w.Sessions) {
			return fmt.Errorf("churn: event references session %d", e.Session)
		}
		switch e.Kind {
		case Join:
			if joins[e.Session] {
				return fmt.Errorf("churn: session %d joins twice", e.Session)
			}
			joins[e.Session] = true
		case Leave:
			if !joins[e.Session] {
				return fmt.Errorf("churn: session %d leaves before joining", e.Session)
			}
			if leaves[e.Session] {
				return fmt.Errorf("churn: session %d leaves twice", e.Session)
			}
			leaves[e.Session] = true
		}
	}
	for i := range w.Sessions {
		if !joins[i] || !leaves[i] {
			return fmt.Errorf("churn: session %d has incomplete lifecycle", i)
		}
	}
	return nil
}
