module overcast

go 1.24
