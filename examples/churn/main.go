// Churn: overlay sessions are not static — they join, live for a while, and
// leave ("topological variability" in the paper). This example drives the
// online allocator with a Poisson-arrival / exponential-lifetime workload,
// exercising exact departure rollback: capacity released by a leaving
// session immediately becomes attractive to the next arrival.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"overcast"
	"overcast/internal/churn"
	"overcast/internal/rng"
)

func main() {
	net, err := overcast.WaxmanNetwork(100, 100, 5)
	if err != nil {
		log.Fatal(err)
	}

	workload, err := churn.Generate(churn.Config{
		Nodes:        net.Nodes(),
		ArrivalRate:  1.5, // sessions per time unit
		MeanLifetime: 4,
		Horizon:      30,
		SizeMin:      3,
		SizeMax:      8,
		Demand:       1,
	}, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d sessions over %d events, peak concurrency %d\n",
		len(workload.Sessions), len(workload.Events), workload.PeakConcurrency())

	on, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the trace. Workload session index -> allocator arrival index.
	arrivalIdx := make(map[int]int, len(workload.Sessions))
	peakCongestion := 0.0
	for _, ev := range workload.Events {
		spec := workload.Sessions[ev.Session]
		switch ev.Kind {
		case churn.Join:
			if _, err := on.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand}); err != nil {
				log.Fatal(err)
			}
			arrivalIdx[ev.Session] = on.Sessions() - 1
		case churn.Leave:
			if err := on.Leave(arrivalIdx[ev.Session]); err != nil {
				log.Fatal(err)
			}
		}
		if c := on.MaxCongestion(); c > peakCongestion {
			peakCongestion = c
		}
	}
	fmt.Printf("replayed trace: peak link congestion at full demands %.3f\n", peakCongestion)
	fmt.Printf("sessions still active at the horizon: %d\n", on.ActiveSessions())

	// A second run that never processes departures shows what exact
	// rollback buys: congestion keeps piling up.
	noLeave, err := overcast.NewOnlineAllocator(net, 30, overcast.RoutingIP)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range workload.Events {
		if ev.Kind != churn.Join {
			continue
		}
		spec := workload.Sessions[ev.Session]
		if _, err := noLeave.Join(overcast.Session{Members: spec.Members, Demand: spec.Demand}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("without departures the same trace ends at congestion %.3f (%.1fx the churn run's peak)\n",
		noLeave.MaxCongestion(), noLeave.MaxCongestion()/peakCongestion)
}
