package churn

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/rng"
	"overcast/internal/workload"
)

func defaultCfg() Config {
	return Config{
		Nodes:        50,
		ArrivalRate:  2,
		MeanLifetime: 3,
		Horizon:      20,
		SizeMin:      2,
		SizeMax:      6,
		Demand:       1,
	}
}

func TestGenerateValidWorkload(t *testing.T) {
	w, err := Generate(defaultCfg(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Sessions) == 0 {
		t.Fatal("no sessions generated")
	}
	for i, s := range w.Sessions {
		if len(s.Members) < 2 || len(s.Members) > 6 {
			t.Fatalf("session %d size %d out of bounds", i, len(s.Members))
		}
		if s.Depart < s.Arrive {
			t.Fatalf("session %d departs before arriving", i)
		}
		if s.Depart > 20 || s.Arrive >= 20 {
			t.Fatalf("session %d outside horizon: %v-%v", i, s.Arrive, s.Depart)
		}
	}
	if w.PeakConcurrency() < 1 {
		t.Fatal("no concurrency")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(defaultCfg(), rng.New(9))
	b, _ := Generate(defaultCfg(), rng.New(9))
	if len(a.Sessions) != len(b.Sessions) || len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different workloads")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestArrivalRateCalibration(t *testing.T) {
	// Expected arrivals = rate x horizon; check within 4 sigma over a long
	// trace.
	cfg := defaultCfg()
	cfg.Horizon = 500
	w, err := Generate(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ArrivalRate * cfg.Horizon
	got := float64(len(w.Sessions))
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("arrivals %v far from expected %v", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 1 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.MeanLifetime = -1 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.SizeMin = 1 },
		func(c *Config) { c.SizeMax = 1 },
		func(c *Config) { c.SizeMax = 100 },
		func(c *Config) { c.Demand = 0 },
	}
	for i, mutate := range cases {
		cfg := defaultCfg()
		mutate(&cfg)
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestWorkloadValidateCatchesCorruption(t *testing.T) {
	w, _ := Generate(defaultCfg(), rng.New(3))
	// Remove a leave event.
	var truncated []Event
	removed := false
	for _, e := range w.Events {
		if !removed && e.Kind == Leave {
			removed = true
			continue
		}
		truncated = append(truncated, e)
	}
	bad := &Workload{Sessions: w.Sessions, Events: truncated}
	if err := bad.Validate(); err == nil {
		t.Fatal("missing leave not detected")
	}
	// Out-of-order events.
	if len(w.Events) >= 2 {
		swapped := append([]Event(nil), w.Events...)
		swapped[0], swapped[len(swapped)-1] = swapped[len(swapped)-1], swapped[0]
		bad2 := &Workload{Sessions: w.Sessions, Events: swapped}
		if err := bad2.Validate(); err == nil {
			t.Fatal("out-of-order events not detected")
		}
	}
}

func TestWorkloadProperty(t *testing.T) {
	check := func(seed uint64) bool {
		w, err := Generate(defaultCfg(), rng.New(seed))
		if err != nil {
			return false
		}
		if err := w.Validate(); err != nil {
			return false
		}
		// Event count is exactly 2 per session.
		return len(w.Events) == 2*len(w.Sessions)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateScenarioWorkload(t *testing.T) {
	cfg := Config{Nodes: 200, ArrivalRate: 3, MeanLifetime: 4, Horizon: 15}
	for _, name := range workload.Names() {
		sc, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		w, err := GenerateScenario(cfg, sc, rng.New(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Sessions) == 0 {
			t.Fatalf("%s: no sessions", name)
		}
		for i, s := range w.Sessions {
			if len(s.Members) < 2 || len(s.Members) > cfg.Nodes {
				t.Fatalf("%s: session %d size %d out of bounds", name, i, len(s.Members))
			}
			seen := map[int]bool{}
			for _, m := range s.Members {
				if m < 0 || m >= cfg.Nodes || seen[m] {
					t.Fatalf("%s: session %d has bad/duplicate member %d", name, i, m)
				}
				seen[m] = true
			}
			if s.Demand <= 0 {
				t.Fatalf("%s: session %d demand %v", name, i, s.Demand)
			}
		}
		// Deterministic: same seed, same trace.
		again, err := GenerateScenario(cfg, sc, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Sessions) != len(w.Sessions) {
			t.Fatalf("%s: nondeterministic session count", name)
		}
		for i := range w.Sessions {
			if w.Sessions[i].Demand != again.Sessions[i].Demand || w.Sessions[i].Arrive != again.Sessions[i].Arrive {
				t.Fatalf("%s: session %d differs across rebuilds", name, i)
			}
			for j, m := range w.Sessions[i].Members {
				if again.Sessions[i].Members[j] != m {
					t.Fatalf("%s: session %d member %d differs across rebuilds", name, i, j)
				}
			}
		}
	}
}

// TestGenerateScenarioSizesFollowMix checks the point of the scenario hook:
// conferencing stays within its 3..8 mix while livestream's Pareto tail
// produces sessions far beyond any uniform SizeMax.
func TestGenerateScenarioSizesFollowMix(t *testing.T) {
	cfg := Config{Nodes: 400, ArrivalRate: 6, MeanLifetime: 3, Horizon: 40}
	conf, err := workload.Get("conferencing")
	if err != nil {
		t.Fatal(err)
	}
	w, err := GenerateScenario(cfg, conf, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range w.Sessions {
		if len(s.Members) < 3 || len(s.Members) > 8 {
			t.Fatalf("conferencing session %d size %d outside 3..8", i, len(s.Members))
		}
	}
	live, err := workload.Get("livestream")
	if err != nil {
		t.Fatal(err)
	}
	lw, err := GenerateScenario(cfg, live, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, s := range lw.Sessions {
		if len(s.Members) > max {
			max = len(s.Members)
		}
	}
	if max <= 8 {
		t.Fatalf("livestream max session size %d, want heavy-tailed (> 8)", max)
	}
}

// TestGenerateScenarioNilFallsBack pins GenerateScenario(nil) to the legacy
// uniform generator, bit for bit.
func TestGenerateScenarioNilFallsBack(t *testing.T) {
	a, err := Generate(defaultCfg(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScenario(defaultCfg(), nil, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sessions) != len(b.Sessions) || len(a.Events) != len(b.Events) {
		t.Fatal("nil scenario diverges from Generate")
	}
	for i := range a.Sessions {
		if a.Sessions[i].Arrive != b.Sessions[i].Arrive || a.Sessions[i].Depart != b.Sessions[i].Depart {
			t.Fatalf("session %d lifetime differs", i)
		}
		for j, m := range a.Sessions[i].Members {
			if b.Sessions[i].Members[j] != m {
				t.Fatalf("session %d member %d differs", i, j)
			}
		}
	}
}

func TestGenerateScenarioRejectsBadConfig(t *testing.T) {
	sc, err := workload.Get("uniform")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateScenario(Config{Nodes: 1, ArrivalRate: 1, MeanLifetime: 1, Horizon: 1}, sc, rng.New(1)); err == nil {
		t.Fatal("1-node scenario config accepted")
	}
	if _, err := GenerateScenario(Config{Nodes: 10, ArrivalRate: 0, MeanLifetime: 1, Horizon: 1}, sc, rng.New(1)); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
}
