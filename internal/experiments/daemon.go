package experiments

// The daemon-churn tier drives a live overcastd admin server with the churn
// replay harness as a synthetic client fleet: N client connections partition
// a deterministic arrival/departure trace, replay their sessions' events
// concurrently over the unix socket (joins, leaves, cached snapshot reads,
// and periodic refreshing snapshots), and the sustained admin ops/sec the
// daemon serves is the headline number recorded into the bench trajectory
// (BenchmarkDaemonChurn). Unlike the in-process warm-churn tier this
// measures the whole production path: wire codec, socket round-trips, the
// daemon's serialized-mutation lock, and the allocator behind it.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"overcast"
	"overcast/internal/admin"
	"overcast/internal/churn"
	"overcast/internal/rng"
)

// DaemonChurnConfig describes one daemon churn replay.
type DaemonChurnConfig struct {
	Nodes int // Waxman topology size
	// Arrival process, as in WarmChurnConfig.
	ArrivalRate      float64
	MeanLifetime     float64
	Horizon          float64
	SizeMin, SizeMax int
	Demand           float64
	// Clients is the synthetic client-fleet size; sessions are partitioned
	// across connections and replayed concurrently (default 4).
	Clients int
	// SnapshotEvery issues a cached snapshot read every N of a client's
	// events (default 4); RefreshEvery issues a refreshing snapshot every
	// N events (default 8) — the consumer polling mix.
	SnapshotEvery, RefreshEvery int
	// Workers, RepairPhaseBudget and MaxSessions forward to the allocator
	// and the daemon's admission policy.
	Workers           int
	RepairPhaseBudget int
	MaxSessions       int
}

func (c *DaemonChurnConfig) normalize() error {
	if c.Nodes < 8 {
		return fmt.Errorf("experiments: daemon churn run needs >=8 nodes, got %d", c.Nodes)
	}
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 2
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = 12
	}
	if c.Horizon <= 0 {
		c.Horizon = 25
	}
	if c.SizeMin < 2 {
		c.SizeMin = 3
	}
	if c.SizeMax < c.SizeMin {
		c.SizeMax = c.SizeMin + 3
	}
	if c.Demand <= 0 {
		c.Demand = 1
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4
	}
	if c.RefreshEvery <= 0 {
		c.RefreshEvery = 8
	}
	return nil
}

// DaemonChurnReport summarizes one replay.
type DaemonChurnReport struct {
	Config   DaemonChurnConfig
	Sessions int // sessions in the trace
	// Ops counts every admin RPC the fleet issued (joins, leaves, snapshot
	// reads, refreshes, and the final stats/drain); OpsPerSec is the
	// sustained daemon throughput over the replay.
	Ops       int
	OpsPerSec float64
	// Per-op splits. Rejected counts admission rejections (only nonzero
	// when the config sets an admission policy).
	Joins, Leaves, Snapshots, Refreshes, Rejected int
	FinalActive                                   int
	ReplayTime                                    time.Duration
}

// String renders the report for cmd/experiments output.
func (r DaemonChurnReport) String() string {
	return fmt.Sprintf("daemon n=%-6d clients=%-3d sessions=%-5d ops=%-6d joins=%-5d leaves=%-5d snaps=%-5d refresh=%-5d rejected=%-4d active=%-4d ops/s=%-10.1f replay=%v",
		r.Config.Nodes, r.Config.Clients, r.Sessions, r.Ops,
		r.Joins, r.Leaves, r.Snapshots, r.Refreshes, r.Rejected, r.FinalActive,
		r.OpsPerSec, r.ReplayTime.Round(time.Millisecond))
}

// clientWork is one connection's share of the trace: its sessions' events in
// trace order.
type clientWork struct {
	events []churn.Event
}

// DaemonChurnRun boots an overcastd admin server on a temp-dir unix socket,
// replays a deterministic churn trace through a concurrent synthetic client
// fleet, drains the daemon, and reports the sustained admin ops/sec. The
// trace partition is deterministic (session index modulo fleet size); event
// interleaving across connections is scheduler-dependent, which is the point
// — the daemon's serialized-mutation path is what is being measured.
func DaemonChurnRun(seed uint64, cfg DaemonChurnConfig) (*DaemonChurnReport, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	net, err := overcast.WaxmanNetwork(cfg.Nodes, 0, seed)
	if err != nil {
		return nil, err
	}
	trace, err := churn.Generate(churn.Config{
		Nodes:        cfg.Nodes,
		ArrivalRate:  cfg.ArrivalRate,
		MeanLifetime: cfg.MeanLifetime,
		Horizon:      cfg.Horizon,
		SizeMin:      cfg.SizeMin,
		SizeMax:      cfg.SizeMax,
		Demand:       cfg.Demand,
	}, rng.New(seed+1))
	if err != nil {
		return nil, err
	}

	alloc, err := overcast.NewAllocator(net, overcast.AllocatorOptions{
		Workers: cfg.Workers, RepairPhaseBudget: cfg.RepairPhaseBudget,
	})
	if err != nil {
		return nil, err
	}
	defer alloc.Close()

	dir, err := os.MkdirTemp("", "overcastd-churn-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := admin.NewServer(alloc, admin.Options{
		SocketPath:  filepath.Join(dir, "admin.sock"),
		MaxSessions: cfg.MaxSessions,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	// Partition sessions across the fleet; each connection replays its own
	// sessions' events in trace order, so a session's leave always follows
	// its join even though connections interleave freely.
	work := make([]clientWork, cfg.Clients)
	for _, ev := range trace.Events {
		w := &work[ev.Session%cfg.Clients]
		w.events = append(w.events, ev)
	}

	rep := &DaemonChurnReport{Config: cfg, Sessions: len(trace.Sessions)}
	var (
		mu       sync.Mutex
		fleetErr error
		wg       sync.WaitGroup
	)
	count := func(dst *int, n int) {
		mu.Lock()
		*dst += n
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		if fleetErr == nil {
			fleetErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	for ci := range work {
		wg.Add(1)
		go func(w clientWork) {
			defer wg.Done()
			c, err := admin.Dial(filepath.Join(dir, "admin.sock"), 2*time.Second)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			tokens := make(map[int]uint64)
			ops, joins, leaves, snaps, refreshes, rejected := 0, 0, 0, 0, 0, 0
			for ei, ev := range w.events {
				spec := trace.Sessions[ev.Session]
				switch ev.Kind {
				case churn.Join:
					p, err := c.Join(spec.Members, spec.Demand)
					ops++
					if err != nil {
						if rpcErr, ok := err.(*admin.RPCError); ok && rpcErr.Code == admin.ErrCodeAdmission {
							rejected++
							continue
						}
						fail(fmt.Errorf("daemon churn join %d: %w", ev.Session, err))
						return
					}
					tokens[ev.Session] = p.Session
					joins++
				case churn.Leave:
					tok, ok := tokens[ev.Session]
					if !ok || spec.Depart >= cfg.Horizon {
						continue // rejected at join, or clipped to the horizon
					}
					if _, err := c.Leave(tok); err != nil {
						fail(fmt.Errorf("daemon churn leave %d: %w", ev.Session, err))
						return
					}
					ops++
					leaves++
				}
				if (ei+1)%cfg.RefreshEvery == 0 {
					if _, err := c.Snapshot(true); err != nil {
						// A refresh can race the last leave of the whole
						// trace (no active sessions) — tolerate only that.
						if rpcErr, ok := err.(*admin.RPCError); !ok || rpcErr.Code != admin.ErrCodeInternal {
							fail(fmt.Errorf("daemon churn refresh: %w", err))
							return
						}
					}
					ops++
					refreshes++
				} else if (ei+1)%cfg.SnapshotEvery == 0 {
					if _, err := c.Snapshot(false); err != nil {
						if rpcErr, ok := err.(*admin.RPCError); !ok || rpcErr.Code != admin.ErrCodeInternal {
							fail(fmt.Errorf("daemon churn snapshot: %w", err))
							return
						}
					}
					ops++
					snaps++
				}
			}
			count(&rep.Ops, ops)
			count(&rep.Joins, joins)
			count(&rep.Leaves, leaves)
			count(&rep.Snapshots, snaps)
			count(&rep.Refreshes, refreshes)
			count(&rep.Rejected, rejected)
		}(work[ci])
	}
	wg.Wait()
	if fleetErr != nil {
		srv.Drain()
		<-serveErr
		return nil, fleetErr
	}

	// One more client reads the final counters and drains the daemon.
	c, err := admin.Dial(filepath.Join(dir, "admin.sock"), 2*time.Second)
	if err != nil {
		return nil, err
	}
	st, err := c.Stats()
	if err != nil {
		c.Close()
		return nil, err
	}
	rep.FinalActive = st.Active
	if _, err := c.Drain(); err != nil {
		c.Close()
		return nil, err
	}
	c.Close()
	rep.Ops += 2
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("daemon churn serve: %w", err)
	}
	rep.ReplayTime = time.Since(start)
	if s := rep.ReplayTime.Seconds(); s > 0 {
		rep.OpsPerSec = float64(rep.Ops) / s
	}
	return rep, nil
}
