// Package overcast is a library for optimizing capacity utilization in
// application-layer overlay networks with multiple competing multicast
// sessions. It reproduces the algorithms of Cui, Li and Nahrstedt, "On
// Achieving Optimized Capacity Utilization in Application Overlay Networks
// with Multiple Competing Sessions" (SPAA 2004):
//
//   - MaxFlow — an FPTAS for the overlay maximum multicommodity flow
//     problem: split each session's traffic across many overlay trees to
//     maximize aggregate throughput.
//   - MaxConcurrentFlow — an FPTAS for the overlay maximum concurrent flow
//     problem: weighted max-min fairness across competing sessions.
//   - RoundToSingleTrees — randomized rounding of a fractional solution to
//     one tree per session with provably bounded congestion.
//   - LimitTrees — the practical "few trees" selection that exploits the
//     asymmetric rate distribution of the fractional optimum.
//   - OnlineAllocator — the online tree-construction algorithm: sessions
//     join one at a time, each gets one tree immediately, congestion stays
//     within O(log |E|) of optimal.
//
// Both fixed IP routing and arbitrary (dynamic shortest-path) routing are
// supported, as are BRITE-style topology generation, baselines (single
// tree, SplitStream-style forests, random forests), an exact LP reference
// solver for small instances, and a concurrent fluid simulator to verify
// that allocations are actually deliverable.
//
// Quick start:
//
//	net, _ := overcast.WaxmanNetwork(100, 100, 42)
//	sys, _ := overcast.NewSystem(net, []overcast.Session{
//	    {Members: []int{3, 17, 29, 41}, Demand: 100},
//	    {Members: []int{5, 55, 95}, Demand: 100},
//	}, overcast.RoutingIP)
//	alloc, _ := sys.MaxFlow(0.95)
//	fmt.Println(alloc.OverallThroughput())
package overcast

import (
	"fmt"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/topology"
)

// Routing selects how overlay edges are realized as unicast routes.
type Routing int

const (
	// RoutingIP pins every node pair to its fixed shortest-path IP route.
	RoutingIP Routing = iota
	// RoutingArbitrary lets the algorithms re-route pairs over dynamic
	// shortest paths under their internal length functions (Sec. V of the
	// paper).
	RoutingArbitrary
)

// Link is one undirected physical link of a custom topology.
type Link struct {
	From, To int
	Capacity float64
}

// Network is a physical network topology with link capacities.
type Network struct {
	inner *topology.Network
}

// WaxmanNetwork generates a BRITE-style incremental Waxman topology with n
// nodes and uniform link capacity, deterministically from seed. This is the
// router-level model of the paper's Sec. III experiments (n=100,
// capacity=100).
func WaxmanNetwork(n int, capacity float64, seed uint64) (*Network, error) {
	cfg := topology.DefaultWaxman(n)
	if capacity > 0 {
		cfg.Capacity = capacity
	}
	net, err := topology.Waxman(cfg, rngFor(seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// TwoLevelNetwork generates the paper's Sec. VI evaluation topology: an
// AS-level Waxman graph whose nodes expand into router-level Waxman graphs
// (the paper uses 10 ASes of 100 routers, capacity 100).
func TwoLevelNetwork(ases, routersPerAS int, capacity float64, seed uint64) (*Network, error) {
	cfg := topology.DefaultTwoLevel(ases, routersPerAS)
	if capacity > 0 {
		cfg.Capacity = capacity
	}
	net, err := topology.TwoLevel(cfg, rngFor(seed))
	if err != nil {
		return nil, err
	}
	return &Network{inner: net}, nil
}

// CustomNetwork builds a network from an explicit link list. Node ids must
// be in [0, nodes).
func CustomNetwork(nodes int, links []Link) (*Network, error) {
	b := graph.NewBuilder(nodes)
	for _, l := range links {
		if err := b.AddEdge(l.From, l.To, l.Capacity); err != nil {
			return nil, err
		}
	}
	g := b.Build()
	if !g.Connected() {
		return nil, fmt.Errorf("overcast: custom network is not connected")
	}
	return &Network{inner: &topology.Network{Graph: g, Name: "custom"}}, nil
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.inner.Graph.NumNodes() }

// Links returns the number of physical links.
func (n *Network) Links() int { return n.inner.Graph.NumEdges() }

// TotalCapacity returns the sum of all link capacities.
func (n *Network) TotalCapacity() float64 { return n.inner.Graph.TotalCapacity() }

// Name describes the generating model.
func (n *Network) Name() string { return n.inner.Name }

// Session declares one data dissemination session: Members[0] is the
// source, the rest are receivers; Demand is the desired rate (the absolute
// scale only matters relative to other sessions under fairness objectives).
type Session struct {
	Members []int
	Demand  float64
}

// System couples a network with a set of competing sessions under a routing
// mode; it is the entry point for all solvers.
type System struct {
	net      *Network
	problem  *core.Problem
	sessions []*overlay.Session
}

// NewSystem validates the sessions and prepares route tables and oracles.
// When the network was generated with node positions (Waxman/two-level),
// fixed IP routes follow BRITE's propagation-delay metric; custom networks
// route by hop count.
func NewSystem(net *Network, sessions []Session, routing Routing) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("overcast: nil network")
	}
	var ss []*overlay.Session
	for i, s := range sessions {
		os, err := overlay.NewSession(i, s.Members, s.Demand)
		if err != nil {
			return nil, err
		}
		ss = append(ss, os)
	}
	mode := core.RoutingIP
	if routing == RoutingArbitrary {
		mode = core.RoutingArbitrary
	}
	var weights graph.Lengths
	if len(net.inner.Pos) == net.inner.Graph.NumNodes() && len(net.inner.Pos) > 0 {
		weights = net.inner.LinkDelays()
	}
	p, err := core.NewProblemWeighted(net.inner.Graph, ss, mode, weights)
	if err != nil {
		return nil, err
	}
	return &System{net: net, problem: p, sessions: ss}, nil
}

// Network returns the system's network.
func (s *System) Network() *Network { return s.net }

// NumSessions returns the number of sessions.
func (s *System) NumSessions() int { return len(s.sessions) }
