package core

import (
	"fmt"

	"overcast/internal/graph"
	"overcast/internal/overlay"
)

// Online implements Online-MinCongestion (Table VI): sessions arrive one at
// a time; each is assigned a single overlay tree — the minimum overlay
// spanning tree under the current length function — immediately and
// permanently. Lengths grow multiplicatively with step size mu, steering
// later arrivals away from loaded links. Theorem 4 bounds the resulting
// congestion by O(log|E|)·OPT.
//
// Existing sessions are never rerouted; on Finalize, each session's rate is
// scaled by its own maximum congestion l^i_max (measured after all
// arrivals), which yields an exactly feasible solution.
type Online struct {
	g  *graph.Graph
	mu float64
	// d is the versioned length ledger: joins Bump the used edges, leaves
	// Set the affected edges back to base and replay the surviving factors,
	// so the journal records exactly the length movement of every event.
	d  *graph.LengthStore
	le []float64 // congestion per edge at full demands

	sessions []*overlay.Session
	trees    []*overlay.Tree
	active   []bool
	// factors[idx] records the multiplicative length updates session idx
	// applied, so Leave can roll them back exactly.
	factors [][]edgeFactor
	mstOps  int
	nActive int
	scratch *overlay.Scratch // reused across Join calls

	// Leave scratch: edge membership bitmap plus the affected-edge list,
	// reused across calls so departures allocate nothing and the rebuild
	// iterates edges in a deterministic order (the map this replaces had
	// randomized iteration order — harmless for values, since the rebuild
	// is order-independent, but needless work per call).
	affected     []bool
	affectedList []graph.EdgeID
}

// edgeFactor is one multiplicative length update applied at join time.
type edgeFactor struct {
	edge   graph.EdgeID
	factor float64
	frac   float64 // congestion contribution n_e·dem/c_e
}

// NewOnline creates an online allocator over g with step size mu (the
// paper sweeps mu in 10..200; values near the optimal concurrent rate work
// best).
func NewOnline(g *graph.Graph, mu float64) (*Online, error) {
	if mu <= 0 {
		return nil, fmt.Errorf("core: online step size mu=%v must be positive", mu)
	}
	vals := make(graph.Lengths, g.NumEdges())
	for e := range vals {
		vals[e] = 1 / g.Edges[e].Capacity
	}
	return &Online{g: g, mu: mu, d: graph.NewLengthStoreFrom(vals), le: make([]float64, g.NumEdges()), scratch: overlay.NewScratch(g)}, nil
}

// Join admits a new session: its tree is chosen by the oracle under the
// current lengths, the session's full demand is routed, and edge lengths and
// congestions are updated (Table VI lines 4-7). The session keeps this tree
// forever.
func (o *Online) Join(oracle overlay.TreeOracle) (*overlay.Tree, error) {
	s := oracle.Session()
	t, err := overlay.MinTreeWith(oracle, o.d.Values(), o.scratch)
	if err != nil {
		return nil, fmt.Errorf("core: online join session %d: %w", s.ID, err)
	}
	o.mstOps++
	var fs []edgeFactor
	for _, use := range t.Use() {
		ce := o.g.Edges[use.Edge].Capacity
		frac := float64(use.Count) * s.Demand / ce
		factor := 1 + o.mu*frac
		o.d.Bump(use.Edge, factor)
		o.le[use.Edge] += frac
		fs = append(fs, edgeFactor{edge: use.Edge, factor: factor, frac: frac})
	}
	o.sessions = append(o.sessions, s)
	o.trees = append(o.trees, t)
	o.active = append(o.active, true)
	o.factors = append(o.factors, fs)
	o.nActive++
	return t, nil
}

// Leave removes the idx-th admitted session (by arrival order): its tree is
// torn down, its congestion contributions are released, and its length
// inflation is rolled back exactly, so links it used become attractive to
// future arrivals again. Leaving twice or with a bad index is an error.
// Sessions admitted afterwards are unaffected (no rerouting — the online
// model never reroutes).
func (o *Online) Leave(idx int) error {
	if idx < 0 || idx >= len(o.sessions) {
		return fmt.Errorf("core: online leave: index %d out of range", idx)
	}
	if !o.active[idx] {
		return fmt.Errorf("core: online leave: session %d already left", idx)
	}
	o.active[idx] = false
	o.nActive--
	// Rebuild the affected edges' length and congestion from the surviving
	// sessions' recorded factors. Recomputing (instead of dividing the
	// factor back out) makes Leave bit-exact: the state equals what
	// replaying the remaining updates in arrival order would produce, so
	// deterministic tie-breaks in later MinTree calls are preserved.
	if o.affected == nil {
		o.affected = make([]bool, o.g.NumEdges())
	}
	o.affectedList = o.affectedList[:0]
	for _, f := range o.factors[idx] {
		if !o.affected[f.edge] {
			o.affected[f.edge] = true
			o.affectedList = append(o.affectedList, f.edge)
		}
	}
	for _, e := range o.affectedList {
		o.d.Set(e, 1/o.g.Edges[e].Capacity)
		o.le[e] = 0
	}
	for j, fs := range o.factors {
		if !o.active[j] {
			continue
		}
		for _, f := range fs {
			if o.affected[f.edge] {
				o.d.Bump(f.edge, f.factor)
				o.le[f.edge] += f.frac
			}
		}
	}
	for _, e := range o.affectedList {
		o.affected[e] = false
	}
	return nil
}

// ActiveSessions returns the number of admitted sessions that have not
// left.
func (o *Online) ActiveSessions() int { return o.nActive }

// NumSessions returns the number of admitted sessions.
func (o *Online) NumSessions() int { return len(o.sessions) }

// MaxCongestion returns l_max at full demands over all admitted sessions.
func (o *Online) MaxCongestion() float64 {
	max := 0.0
	for _, l := range o.le {
		if l > max {
			max = l
		}
	}
	return max
}

// SessionMaxCongestion returns l^i_max for the idx-th admitted session: the
// maximum current congestion over the physical edges of its tree.
func (o *Online) SessionMaxCongestion(idx int) float64 {
	max := 0.0
	for _, use := range o.trees[idx].Use() {
		if l := o.le[use.Edge]; l > max {
			max = l
		}
	}
	return max
}

// MSTOps returns the number of spanning-tree computations performed.
func (o *Online) MSTOps() int { return o.mstOps }

// Tree returns the tree assigned to the idx-th admitted session.
func (o *Online) Tree(idx int) *overlay.Tree { return o.trees[idx] }

// Finalize produces the exactly feasible solution over the *active*
// sessions: session i carries dem(i)/l^i_max along its tree. Feasibility:
// the scaled congestion of edge e is sum_i contrib_i(e)/l^i_max
// <= sum_i contrib_i(e)/l_e = 1. Active sessions are reindexed densely in
// arrival order so the result is a standard Solution.
func (o *Online) Finalize() (*Solution, error) {
	if o.nActive == 0 {
		return nil, fmt.Errorf("core: online finalize with no active sessions")
	}
	sessions := make([]*overlay.Session, 0, o.nActive)
	flows := make([][]TreeFlow, 0, o.nActive)
	for idx, s := range o.sessions {
		if !o.active[idx] {
			continue
		}
		newID := len(sessions)
		rs := &overlay.Session{ID: newID, Members: s.Members, Demand: s.Demand}
		t := o.trees[idx]
		rt := overlay.NewTree(newID, t.Pairs, t.Routes)
		rate := s.Demand
		if l := o.SessionMaxCongestion(idx); l > 0 {
			rate /= l
		}
		sessions = append(sessions, rs)
		flows = append(flows, []TreeFlow{{Tree: rt, Rate: rate}})
	}
	sol := &Solution{G: o.g, Sessions: sessions, Flows: flows, MSTOps: o.mstOps}
	return sol, nil
}
