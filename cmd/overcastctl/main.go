// Command overcastctl is the admin client for overcastd, speaking the same
// newline-delimited JSON protocol (v1) over the daemon's unix socket.
//
// Usage:
//
//	overcastctl [-socket PATH] [-wait DUR] <command> [args]
//
// Commands:
//
//	ping                           liveness + protocol check
//	join -members 3,17,29 [-demand D]   admit a session (prints its token)
//	leave -session TOKEN           remove a session
//	rebalance                      refresh + print per-session placements
//	snapshot [-refresh]            print the current allocation
//	stats                          print allocator + daemon counters (JSON)
//	metrics                        print Prometheus text exposition
//	watch [-heartbeat DUR] [-events N]   stream allocation events per epoch change
//	fault link-down|link-up|drift -u A -v B [-factor F]   inject an underlay fault
//	drain                          graceful daemon shutdown
//
// Exit status is 0 on success, 1 on an RPC rejection or transport error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"overcast/internal/admin"
)

func main() {
	socket := flag.String("socket", "overcastd.sock", "overcastd admin socket path")
	wait := flag.Duration("wait", 0, "retry the initial connect for this long (for racing daemon startup)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "overcastctl: no command (ping|join|leave|rebalance|snapshot|stats|metrics|watch|fault|drain)")
		os.Exit(2)
	}
	if err := run(*socket, *wait, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "overcastctl:", err)
		os.Exit(1)
	}
}

func run(socket string, wait time.Duration, args []string) error {
	c, err := admin.Dial(socket, wait)
	if err != nil {
		return err
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ping":
		pong, err := c.Ping()
		if err != nil {
			return err
		}
		fmt.Printf("ok: protocol v%d", pong.Protocol)
		if pong.Draining {
			fmt.Printf(" (draining)")
		}
		fmt.Println()
	case "join":
		fs := flag.NewFlagSet("join", flag.ExitOnError)
		members := fs.String("members", "", "comma-separated member node ids (first is the source)")
		demand := fs.Float64("demand", 1, "session demand")
		fs.Parse(rest)
		m, err := parseMembers(*members)
		if err != nil {
			return err
		}
		p, err := c.Join(m, *demand)
		if err != nil {
			return err
		}
		fmt.Printf("session %d admitted at epoch %d: rate %.4f over a %d-hop tree\n",
			p.Session, p.Epoch, p.Rate, p.Tree.Hops)
	case "leave":
		fs := flag.NewFlagSet("leave", flag.ExitOnError)
		session := fs.Uint64("session", 0, "session token from join")
		fs.Parse(rest)
		res, err := c.Leave(*session)
		if err != nil {
			return err
		}
		fmt.Printf("session %d left, %d active\n", res.Session, res.Active)
	case "rebalance":
		res, err := c.Rebalance()
		if err != nil {
			return err
		}
		fmt.Printf("rebalanced at epoch %d:\n", res.Epoch)
		for _, p := range res.Placements {
			fmt.Printf("  session %d: rate %.4f over %d trees\n", p.Session, p.Rate, len(p.Trees))
		}
	case "snapshot":
		fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
		refresh := fs.Bool("refresh", false, "re-solve incrementally before reading")
		fs.Parse(rest)
		snap, err := c.Snapshot(*refresh)
		if err != nil {
			return err
		}
		kind := "cached"
		if *refresh {
			kind = "refreshed"
		}
		fmt.Printf("%s allocation at epoch %d: throughput %.2f, min rate %.4f, max congestion %.4f\n",
			kind, snap.Epoch, snap.Throughput, snap.MinRate, snap.MaxCongestion)
		for _, sa := range snap.Sessions {
			fmt.Printf("  session %d: rate %.4f / demand %.2f over %d trees\n",
				sa.Session, sa.Rate, sa.Demand, len(sa.Trees))
		}
	case "stats":
		st, err := c.Stats()
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	case "metrics":
		text, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		heartbeat := fs.Duration("heartbeat", 0, "idle heartbeat interval (0 = server default, 30s)")
		events := fs.Int("events", 0, "exit after N non-heartbeat events (0 = stream until the daemon drains)")
		fs.Parse(rest)
		w, err := c.Watch(*heartbeat)
		if err != nil {
			return err
		}
		seen := 0
		for {
			ev, err := w.Next()
			if err != nil {
				var rpc *admin.RPCError
				if errors.As(err, &rpc) && rpc.Code == admin.ErrCodeDraining {
					fmt.Println("stream closed: daemon is draining")
					return nil
				}
				return err
			}
			if ev.Heartbeat {
				fmt.Printf("heartbeat seq=%d epoch=%d\n", ev.Seq, ev.Epoch)
				continue
			}
			sessions := 0
			if ev.Snapshot != nil {
				sessions = len(ev.Snapshot.Sessions)
			}
			fmt.Printf("event seq=%d epoch=%d sessions=%d\n", ev.Seq, ev.Epoch, sessions)
			if seen++; *events > 0 && seen >= *events {
				return nil
			}
		}
	case "fault":
		if len(rest) == 0 {
			return fmt.Errorf("fault needs a kind (link-down|link-up|drift)")
		}
		var kind string
		switch rest[0] {
		case "link-down":
			kind = admin.FaultLinkDown
		case "link-up":
			kind = admin.FaultLinkUp
		case "drift":
			kind = admin.FaultDrift
		default:
			return fmt.Errorf("unknown fault kind %q (link-down|link-up|drift)", rest[0])
		}
		fs := flag.NewFlagSet("fault", flag.ExitOnError)
		u := fs.Int("u", -1, "one endpoint node of the physical link")
		v := fs.Int("v", -1, "the other endpoint node")
		factor := fs.Float64("factor", 0, "capacity multiplier (drift only, > 0)")
		fs.Parse(rest[1:])
		if *u < 0 || *v < 0 {
			return fmt.Errorf("fault needs -u and -v link endpoints")
		}
		res, err := c.Fault(*u, *v, kind, *factor)
		if err != nil {
			return err
		}
		fmt.Printf("fault %s link %d-%d: capacity %.6g, epoch %d, %d underlay events\n",
			res.Kind, res.From, res.To, res.Capacity, res.Epoch, res.UnderlayEvents)
	case "drain":
		res, err := c.Drain()
		if err != nil {
			return err
		}
		fmt.Printf("draining, %d active sessions will be persisted\n", res.Active)
	default:
		return fmt.Errorf("unknown command %q (ping|join|leave|rebalance|snapshot|stats|metrics|watch|fault|drain)", cmd)
	}
	return nil
}

func parseMembers(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("join needs -members (comma-separated node ids, first is the source)")
	}
	var members []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad member %q: %v", part, err)
		}
		members = append(members, v)
	}
	return members, nil
}
