package overlay

import (
	"runtime"
	"sync"

	"overcast/internal/graph"
)

// BatchResult is one oracle's minimum overlay spanning tree with its raw
// (unnormalized) length under the batch's length function. Len is filled by
// MinTreesLen only (MinTrees leaves it zero): the extra O(tree edges) pass
// is measurable in length-oblivious phase loops like MaxConcurrentFlow's.
type BatchResult struct {
	Tree *Tree
	Len  float64
	Err  error
}

// BatchRunner evaluates many oracles' MinTree under a shared length function
// with a persistent worker pool and one Scratch per worker. The paper's phase
// loops query the same oracle set thousands of times; a runner amortizes both
// the goroutines and the scratch buffers across all of those batches instead
// of rebuilding them per call.
//
// The reduction is deterministic by construction: result slot j of a batch
// always holds oracle ids[j]'s tree, computed under the batch's immutable
// length snapshot, so neither the worker count nor goroutine scheduling can
// change what a caller observes. Oracles must be safe for concurrent reads
// (both built-in oracles are: MinTreeWith touches only the per-call Scratch).
type BatchRunner struct {
	g       *graph.Graph
	oracles []TreeOracle
	workers int

	// Inline scratch: the whole batch when workers == 1, single-slot batches
	// otherwise (lazily created; avoids channel round-trips for one job).
	seq *Scratch

	// Parallel mode: persistent workers fed per-batch via jobs. d, ids and
	// out describe the current batch; they are published before the job sends
	// and read by workers via the channel's happens-before edge, and the
	// WaitGroup barrier orders all slot writes before the caller's reads.
	jobs    chan int
	wg      sync.WaitGroup
	d       graph.Lengths
	ids     []int
	wantLen bool
	out     []BatchResult
}

// NewBatchRunner builds a runner over oracles with the requested worker-pool
// size: workers <= 0 means GOMAXPROCS, and the pool is never larger than the
// oracle set. With one worker the runner degrades to a single-scratch
// sequential path with zero goroutines; results are identical either way.
func NewBatchRunner(g *graph.Graph, oracles []TreeOracle, workers int) *BatchRunner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(oracles) {
		workers = len(oracles)
	}
	if workers < 1 {
		workers = 1
	}
	r := &BatchRunner{g: g, oracles: oracles, workers: workers, out: make([]BatchResult, len(oracles))}
	if workers == 1 {
		r.seq = NewScratch(g)
		return r
	}
	r.jobs = make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			sc := NewScratch(g)
			for pos := range r.jobs {
				r.eval(pos, sc)
				r.wg.Done()
			}
		}()
	}
	return r
}

// Workers returns the resolved worker-pool size.
func (r *BatchRunner) Workers() int { return r.workers }

// eval computes the tree of the oracle in batch slot pos.
func (r *BatchRunner) eval(pos int, sc *Scratch) {
	i := pos
	if r.ids != nil {
		i = r.ids[pos]
	}
	t, err := MinTreeWith(r.oracles[i], r.d, sc)
	if err != nil {
		r.out[pos] = BatchResult{Err: err}
		return
	}
	res := BatchResult{Tree: t}
	if r.wantLen {
		res.Len = t.LengthUnder(r.d)
	}
	r.out[pos] = res
}

// MinTrees evaluates the oracles named by ids (nil = all oracles) under d and
// returns one result per id, in id-list order, with Len left zero. d must
// not be mutated until MinTrees returns. The returned slice is reused by the
// next call — consume it first. Trees in the results do not alias runner
// state and stay valid indefinitely.
func (r *BatchRunner) MinTrees(d graph.Lengths, ids []int) []BatchResult {
	return r.run(d, ids, false)
}

// MinTreesLen is MinTrees with each result's Len filled with the tree's raw
// length under d (computed on the workers, so the extra pass parallelizes).
func (r *BatchRunner) MinTreesLen(d graph.Lengths, ids []int) []BatchResult {
	return r.run(d, ids, true)
}

func (r *BatchRunner) run(d graph.Lengths, ids []int, wantLen bool) []BatchResult {
	n := len(r.oracles)
	if ids != nil {
		n = len(ids)
	}
	r.d, r.ids, r.wantLen = d, ids, wantLen
	if r.workers == 1 || n == 1 {
		// Single slot or single worker: evaluate inline. The parallel
		// variant's scratch lives in its workers, so the inline path keeps
		// its own; results are identical (Scratch state never leaks into
		// outputs).
		if r.seq == nil {
			r.seq = NewScratch(r.g)
		}
		for pos := 0; pos < n; pos++ {
			r.eval(pos, r.seq)
		}
		return r.out[:n]
	}
	r.wg.Add(n)
	for pos := 0; pos < n; pos++ {
		r.jobs <- pos
	}
	r.wg.Wait()
	return r.out[:n]
}

// Close releases the worker pool. The runner must not be used afterwards;
// Close is idempotent.
func (r *BatchRunner) Close() {
	if r.jobs != nil {
		close(r.jobs)
		r.jobs = nil
	}
}
