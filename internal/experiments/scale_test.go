package experiments

import (
	"strings"
	"testing"

	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/workload"
)

// TestScaleInstanceLegacyGolden pins the legacy (scenario-less) construction
// to fixed-seed golden values: scenario support must not perturb the RNG
// consumption of existing scale instances, which the detdump determinism
// gate and the BENCH trajectory both assume.
func TestScaleInstanceLegacyGolden(t *testing.T) {
	si, err := NewScaleInstance(5, ScaleConfig{Nodes: 300, Sessions: 8, SessionSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := si.Net.Graph.NumEdges(); got != 597 {
		t.Errorf("legacy instance edges = %d, want 597", got)
	}
	want := []int{96, 241, 256, 269, 179}
	for i, m := range si.Sessions[0].Members {
		if m != want[i] {
			t.Fatalf("legacy session 0 members = %v, want %v", si.Sessions[0].Members, want)
		}
	}
	if si.Net.Name != "waxman(n=300,m=2)" {
		t.Errorf("legacy instance topology %q, want naive waxman", si.Net.Name)
	}
}

func TestScaleInstanceScenarios(t *testing.T) {
	for _, name := range workload.Names() {
		cfg := ScaleConfig{Nodes: 300, Sessions: 8, Scenario: name}
		si, err := NewScaleInstance(5, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(si.Net.Name, "waxman-grid(") {
			t.Errorf("%s: topology %q, want grid waxman", name, si.Net.Name)
		}
		if len(si.Sessions) != 8 {
			t.Fatalf("%s: %d sessions", name, len(si.Sessions))
		}
		if got, want := cfg.Name(), name+"_n300_k8_ip"; got != want {
			t.Errorf("config name %q, want %q", got, want)
		}
		// Rebuilding with the same seed must reproduce the instance exactly.
		again, err := NewScaleInstance(5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := si.Net.Graph.NumEdges(), again.Net.Graph.NumEdges(); a != b {
			t.Fatalf("%s: nondeterministic edge count %d vs %d", name, a, b)
		}
		for e := range si.Net.Graph.Edges {
			if si.Net.Graph.Edges[e] != again.Net.Graph.Edges[e] {
				t.Fatalf("%s: edge %d differs across rebuilds", name, e)
			}
		}
		for i := range si.Sessions {
			if si.Sessions[i].Demand != again.Sessions[i].Demand {
				t.Fatalf("%s: session %d demand differs across rebuilds", name, i)
			}
			for j, m := range si.Sessions[i].Members {
				if again.Sessions[i].Members[j] != m {
					t.Fatalf("%s: session %d member %d differs across rebuilds", name, i, j)
				}
			}
		}
	}
	// Heterogeneous scenarios must actually vary capacities.
	si, err := NewScaleInstance(5, ScaleConfig{Nodes: 300, Sessions: 8, Scenario: "heavytail"})
	if err != nil {
		t.Fatal(err)
	}
	min, max := si.Net.Graph.Edges[0].Capacity, si.Net.Graph.Edges[0].Capacity
	for _, e := range si.Net.Graph.Edges {
		if e.Capacity < min {
			min = e.Capacity
		}
		if e.Capacity > max {
			max = e.Capacity
		}
	}
	if max <= min*1.5 {
		t.Errorf("heavytail capacities not heterogeneous: min %v max %v", min, max)
	}
	if _, err := NewScaleInstance(5, ScaleConfig{Nodes: 300, Sessions: 8, Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario did not error")
	}
}

func TestScenarioSuites(t *testing.T) {
	all, err := ScenarioScaleSuite(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(workload.Names()); len(all) != want {
		t.Fatalf("full scenario suite has %d configs, want %d", len(all), want)
	}
	some, err := ScenarioScaleSuite([]string{"cdn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 3 || some[0].Scenario != "cdn" {
		t.Fatalf("cdn suite = %+v", some)
	}
	if _, err := ScenarioScaleSuite([]string{"bogus"}); err == nil {
		t.Fatal("bogus scenario did not error")
	}
	small, err := SmallScenarioSuite([]string{"uniform", "heavytail"})
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 2 || small[1].Scenario != "heavytail" || small[1].Nodes != 300 {
		t.Fatalf("small suite = %+v", small)
	}
	if _, err := SmallScenarioSuite([]string{"bogus"}); err == nil {
		t.Fatal("bogus small scenario did not error")
	}
}

// TestScaleSuiteScenarioRows solves one tiny scenario end to end through
// ScaleSuite, checking that rows carry the scenario label and a positive
// objective for both solvers.
func TestScaleSuiteScenarioRows(t *testing.T) {
	rows, err := ScaleSuite(7, 0.5, false, []ScaleConfig{
		{Nodes: 120, Sessions: 4, Scenario: "conferencing"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if !strings.HasPrefix(row.Config.Name(), "conferencing_") {
			t.Errorf("row name %q missing scenario prefix", row.Config.Name())
		}
		if row.Throughput <= 0 {
			t.Errorf("row %s: throughput %v", row.Config.Name(), row.Throughput)
		}
	}
	if rows[1].Solver != "mcf" || rows[1].Lambda <= 0 {
		t.Errorf("mcf row: %+v", rows[1])
	}
}

// TestPlaneDedupZipfHotScenarios pins the whole point of the shared SSSP
// plane: on Zipf-hot scenarios (cdn, livestream) at 64+ arbitrary-routing
// sessions, one batch round must serve at least twice as many per-member
// SSSP reads as it computes Dijkstra rows (>= 2x source dedup), and the
// dedup factor must not shrink as the session count grows — more sessions
// over the same hot nodes can only increase sharing.
func TestPlaneDedupZipfHotScenarios(t *testing.T) {
	dedupAt := func(scenario string, sessions int) float64 {
		t.Helper()
		si, err := NewScaleInstance(4242, ScaleConfig{
			Nodes: 256, Sessions: sessions, Scenario: scenario, Arbitrary: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := overlay.NewBatchRunnerOpts(si.Problem.G, si.Problem.Oracles, overlay.BatchOptions{Workers: 1, SharedPlane: true})
		defer r.Close()
		d := graph.NewLengthStore(si.Problem.G, 1)
		for _, res := range r.MinTrees(d, nil) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		m := r.Metrics()
		if m.PlaneRounds != 1 || m.PlaneSources == 0 {
			t.Fatalf("%s k=%d: implausible plane metrics %+v", scenario, sessions, m)
		}
		return m.PlaneDedup()
	}
	for _, scenario := range []string{"cdn", "livestream"} {
		small := dedupAt(scenario, 16)
		large := dedupAt(scenario, 64)
		if large < 2 {
			t.Errorf("%s at 64 sessions: dedup %.2fx, want >= 2x", scenario, large)
		}
		if large < small {
			t.Errorf("%s: dedup fell from %.2fx (16 sessions) to %.2fx (64)", scenario, small, large)
		}
		t.Logf("%s: dedup %.2fx at 16 sessions, %.2fx at 64", scenario, small, large)
	}
}
