package topology

import (
	"fmt"

	"overcast/internal/graph"
)

// The deterministic topologies below are used by unit tests, baselines and
// examples where an analytically understood network is more useful than a
// random one.

// Ring returns an n-cycle with uniform capacity.
func Ring(n int, capacity float64) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs n>=3, got %d", n)
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if err := b.AddEdge(v, (v+1)%n, capacity); err != nil {
			return nil, err
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("ring(%d)", n)}, nil
}

// Star returns a star with node 0 at the center and n-1 leaves.
func Star(n int, capacity float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs n>=2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, v, capacity); err != nil {
			return nil, err
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("star(%d)", n)}, nil
}

// Grid returns a rows x cols 4-neighbour mesh.
func Grid(rows, cols int, capacity float64) (*Network, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid needs positive dims, got %dx%d", rows, cols)
	}
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := b.AddEdge(id(r, c), id(r, c+1), capacity); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := b.AddEdge(id(r, c), id(r+1, c), capacity); err != nil {
					return nil, err
				}
			}
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("grid(%dx%d)", rows, cols)}, nil
}

// Complete returns the complete graph K_n with uniform capacity.
func Complete(n int, capacity float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: complete needs n>=2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(u, v, capacity); err != nil {
				return nil, err
			}
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("k(%d)", n)}, nil
}

// Dumbbell returns two complete clusters of size k joined by a single
// bottleneck link of capacity bottleneck; intra-cluster links have capacity
// capacity. It is the canonical topology for exercising link correlation:
// every overlay path between the clusters shares the bottleneck.
func Dumbbell(k int, capacity, bottleneck float64) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: dumbbell needs cluster size >=2, got %d", k)
	}
	b := graph.NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if err := b.AddEdge(u, v, capacity); err != nil {
				return nil, err
			}
			if err := b.AddEdge(k+u, k+v, capacity); err != nil {
				return nil, err
			}
		}
	}
	if err := b.AddEdge(0, k, bottleneck); err != nil {
		return nil, err
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("dumbbell(%d)", k)}, nil
}

// Path returns a path graph on n nodes.
func Path(n int, capacity float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: path needs n>=2, got %d", n)
	}
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		if err := b.AddEdge(v, v+1, capacity); err != nil {
			return nil, err
		}
	}
	return &Network{Graph: b.Build(), Name: fmt.Sprintf("path(%d)", n)}, nil
}
