package admin

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestRequestGoldenFrames pins the exact wire bytes of every request op: the
// frames ARE the protocol, so an accidental field rename or tag change must
// fail here, not in a cross-version daemon pairing.
func TestRequestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"ping", Request{V: 1, ID: 1, Op: OpPing},
			`{"v":1,"id":1,"op":"ping"}`},
		{"join", Request{V: 1, ID: 2, Op: OpJoin, Join: &JoinParams{Members: []int{0, 3, 9}, Demand: 2.5}},
			`{"v":1,"id":2,"op":"join","join":{"members":[0,3,9],"demand":2.5}}`},
		{"leave", Request{V: 1, ID: 3, Op: OpLeave, Leave: &LeaveParams{Session: 7}},
			`{"v":1,"id":3,"op":"leave","leave":{"session":7}}`},
		{"rebalance", Request{V: 1, ID: 4, Op: OpRebalance},
			`{"v":1,"id":4,"op":"rebalance"}`},
		{"snapshot", Request{V: 1, ID: 5, Op: OpSnapshot, Snapshot: &SnapshotParams{Refresh: true}},
			`{"v":1,"id":5,"op":"snapshot","snapshot":{"refresh":true}}`},
		{"snapshot-cached", Request{V: 1, ID: 6, Op: OpSnapshot},
			`{"v":1,"id":6,"op":"snapshot"}`},
		{"stats", Request{V: 1, ID: 7, Op: OpStats},
			`{"v":1,"id":7,"op":"stats"}`},
		{"metrics", Request{V: 1, ID: 8, Op: OpMetrics},
			`{"v":1,"id":8,"op":"metrics"}`},
		{"drain", Request{V: 1, ID: 9, Op: OpDrain},
			`{"v":1,"id":9,"op":"drain"}`},
		{"fault-down", Request{V: 1, ID: 12, Op: OpFault, Fault: &FaultParams{From: 0, To: 1, Kind: FaultLinkDown}},
			`{"v":1,"id":12,"op":"fault","fault":{"from":0,"to":1,"kind":"link-down"}}`},
		{"fault-drift", Request{V: 1, ID: 13, Op: OpFault, Fault: &FaultParams{From: 4, To: 7, Kind: FaultDrift, Factor: 0.5}},
			`{"v":1,"id":13,"op":"fault","fault":{"from":4,"to":7,"kind":"drift","factor":0.5}}`},
		{"watch", Request{V: 1, ID: 10, Op: OpWatch, Watch: &WatchParams{HeartbeatSeconds: 2.5}},
			`{"v":1,"id":10,"op":"watch","watch":{"heartbeat_seconds":2.5}}`},
		{"watch-defaults", Request{V: 1, ID: 11, Op: OpWatch},
			`{"v":1,"id":11,"op":"watch"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := EncodeFrame(&tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimSuffix(string(frame), "\n"); got != tc.want {
				t.Fatalf("frame mismatch:\n got  %s\n want %s", got, tc.want)
			}
			if !bytes.HasSuffix(frame, []byte("\n")) {
				t.Fatal("frame not newline-terminated")
			}
			back, err := DecodeRequest([]byte(tc.want))
			if err != nil {
				t.Fatalf("decode golden frame: %v", err)
			}
			if !reflect.DeepEqual(back, &tc.req) {
				t.Fatalf("round-trip mismatch:\n got  %+v\n want %+v", back, &tc.req)
			}
		})
	}
}

// TestResponseGoldenFrames pins the wire bytes of every response result type.
func TestResponseGoldenFrames(t *testing.T) {
	tree := WireTree{Pairs: [][2]int{{0, 1}, {1, 2}}, Rate: 1.25, Hops: 3}
	placement := WirePlacement{Session: 7, Epoch: 9, Rate: 1.25, Members: []int{0, 3, 9}, Tree: tree}
	cases := []struct {
		name string
		resp Response
		want string
	}{
		{"error", Response{V: 1, ID: 1, Code: ErrCodeUnknownSession, Error: "no live session with token 9"},
			`{"v":1,"id":1,"ok":false,"code":"unknown-session","error":"no live session with token 9"}`},
		{"ping", Response{V: 1, ID: 2, OK: true, Ping: &PingResult{Protocol: 1, Draining: true}},
			`{"v":1,"id":2,"ok":true,"ping":{"protocol":1,"draining":true}}`},
		{"join", Response{V: 1, ID: 3, OK: true, Join: &JoinResult{Placement: placement}},
			`{"v":1,"id":3,"ok":true,"join":{"placement":{"session":7,"epoch":9,"rate":1.25,"members":[0,3,9],"tree":{"pairs":[[0,1],[1,2]],"rate":1.25,"hops":3}}}}`},
		{"leave", Response{V: 1, ID: 4, OK: true, Leave: &LeaveResult{Session: 7, Active: 2}},
			`{"v":1,"id":4,"ok":true,"leave":{"session":7,"active":2}}`},
		{"rebalance", Response{V: 1, ID: 5, OK: true, Rebalance: &RebalanceResult{Epoch: 11, Placements: []WirePlacement{placement}}},
			`{"v":1,"id":5,"ok":true,"rebalance":{"epoch":11,"placements":[{"session":7,"epoch":9,"rate":1.25,"members":[0,3,9],"tree":{"pairs":[[0,1],[1,2]],"rate":1.25,"hops":3}}]}}`},
		{"snapshot", Response{V: 1, ID: 6, OK: true, Snapshot: &SnapshotResult{
			Epoch:      9,
			Sessions:   []WireAllocation{{Session: 7, Demand: 2, Rate: 1.25, Members: []int{0, 3, 9}, Trees: []WireTree{tree}}},
			Throughput: 2.5, MinRate: 1.25, MaxCongestion: 0.5}},
			`{"v":1,"id":6,"ok":true,"snapshot":{"epoch":9,"sessions":[{"session":7,"demand":2,"rate":1.25,"members":[0,3,9],"trees":[{"pairs":[[0,1],[1,2]],"rate":1.25,"hops":3}]}],"throughput":2.5,"min_rate":1.25,"max_congestion":0.5}}`},
		{"metrics", Response{V: 1, ID: 7, OK: true, Metrics: &MetricsResult{Text: "overcastd_active_sessions 1\n"}},
			`{"v":1,"id":7,"ok":true,"metrics":{"text":"overcastd_active_sessions 1\n"}}`},
		{"drain", Response{V: 1, ID: 8, OK: true, Drain: &DrainResult{Active: 3}},
			`{"v":1,"id":8,"ok":true,"drain":{"active":3}}`},
		{"fault", Response{V: 1, ID: 12, OK: true, Fault: &FaultResult{From: 0, To: 1, Kind: FaultLinkDown, Capacity: 1e-4, Epoch: 5, UnderlayEvents: 2}},
			`{"v":1,"id":12,"ok":true,"fault":{"from":0,"to":1,"kind":"link-down","capacity":0.0001,"epoch":5,"underlay_events":2}}`},
		{"watch-initial", Response{V: 1, ID: 9, OK: true, Watch: &WatchEvent{Seq: 1, Epoch: 9, Snapshot: &SnapshotResult{
			Epoch:      9,
			Sessions:   []WireAllocation{{Session: 7, Demand: 2, Rate: 1.25, Members: []int{0, 3, 9}, Trees: []WireTree{tree}}},
			Throughput: 2.5, MinRate: 1.25, MaxCongestion: 0.5}}},
			`{"v":1,"id":9,"ok":true,"watch":{"seq":1,"epoch":9,"snapshot":{"epoch":9,"sessions":[{"session":7,"demand":2,"rate":1.25,"members":[0,3,9],"trees":[{"pairs":[[0,1],[1,2]],"rate":1.25,"hops":3}]}],"throughput":2.5,"min_rate":1.25,"max_congestion":0.5}}}`},
		{"watch-heartbeat", Response{V: 1, ID: 10, OK: true, Watch: &WatchEvent{Seq: 4, Epoch: 9, Heartbeat: true}},
			`{"v":1,"id":10,"ok":true,"watch":{"seq":4,"epoch":9,"heartbeat":true}}`},
		{"watch-slow-consumer", Response{V: 1, ID: 11, Code: ErrCodeSlowConsumer, Error: "watch stream fell more than 64 events behind; reconnect and resync"},
			`{"v":1,"id":11,"ok":false,"code":"slow-consumer","error":"watch stream fell more than 64 events behind; reconnect and resync"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := EncodeFrame(&tc.resp)
			if err != nil {
				t.Fatal(err)
			}
			if got := strings.TrimSuffix(string(frame), "\n"); got != tc.want {
				t.Fatalf("frame mismatch:\n got  %s\n want %s", got, tc.want)
			}
			back, err := DecodeResponse([]byte(tc.want))
			if err != nil {
				t.Fatalf("decode golden frame: %v", err)
			}
			if !reflect.DeepEqual(back, &tc.resp) {
				t.Fatalf("round-trip mismatch:\n got  %+v\n want %+v", back, &tc.resp)
			}
		})
	}
}

// TestStatsResponseRoundTrip covers the one response body with nested library
// types (overcast.AllocatorStats): a full marshal/unmarshal must preserve
// every counter, including the plane block satellite-exported on the root
// API.
func TestStatsResponseRoundTrip(t *testing.T) {
	in := Response{V: 1, ID: 12, OK: true, Stats: &StatsResult{
		Active: 2, Admitted: 5, Epoch: 17, MaxCongestion: 0.75,
		Daemon: DaemonStats{
			RPCs:              map[string]int{"join": 5, "leave": 3, "invalid": 1},
			AdmissionRejected: 1, SnapshotsSaved: 2, Restored: true,
			UptimeSeconds: 12.5, Draining: false,
		},
	}}
	in.Stats.Allocator.Joins = 5
	in.Stats.Allocator.WarmRefreshes = 4
	in.Stats.Allocator.WarmFallbacks = 1
	in.Stats.Allocator.Plane.Sources = 40
	in.Stats.Allocator.Plane.Requests = 200
	frame, err := EncodeFrame(&in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeResponse(bytes.TrimSuffix(frame, []byte("\n")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, &in) {
		t.Fatalf("round-trip mismatch:\n got  %+v\n want %+v", back, &in)
	}
	if got := back.Stats.Allocator.Plane.Dedup(); got != 5 {
		t.Fatalf("plane dedup through the wire = %v, want 5", got)
	}
}

// TestDecodeRequestRejections covers every rejection class with its code.
func TestDecodeRequestRejections(t *testing.T) {
	cases := []struct {
		name     string
		frame    string
		wantCode string
		wantID   uint64
	}{
		{"malformed-json", `{"v":1,"op":`, ErrCodeBadFrame, 0},
		{"not-json", `ping please`, ErrCodeBadFrame, 0},
		{"wrong-type", `{"v":"one","op":"ping"}`, ErrCodeBadFrame, 0},
		{"version-zero", `{"op":"ping","id":4}`, ErrCodeBadVersion, 4},
		{"version-future", `{"v":2,"id":9,"op":"ping"}`, ErrCodeBadVersion, 9},
		{"unknown-op", `{"v":1,"id":5,"op":"explode"}`, ErrCodeUnknownOp, 5},
		{"join-missing-params", `{"v":1,"id":6,"op":"join"}`, ErrCodeBadParams, 6},
		{"leave-missing-params", `{"v":1,"id":7,"op":"leave"}`, ErrCodeBadParams, 7},
		{"watch-negative-heartbeat", `{"v":1,"id":8,"op":"watch","watch":{"heartbeat_seconds":-1}}`, ErrCodeBadParams, 8},
		{"fault-missing-params", `{"v":1,"id":9,"op":"fault"}`, ErrCodeBadParams, 9},
		{"fault-unknown-kind", `{"v":1,"id":10,"op":"fault","fault":{"from":0,"to":1,"kind":"sever"}}`, ErrCodeBadParams, 10},
		{"fault-bad-drift-factor", `{"v":1,"id":11,"op":"fault","fault":{"from":0,"to":1,"kind":"drift","factor":-2}}`, ErrCodeBadParams, 11},
		{"fault-zero-drift-factor", `{"v":1,"id":12,"op":"fault","fault":{"from":0,"to":1,"kind":"drift"}}`, ErrCodeBadParams, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.frame))
			if err == nil {
				t.Fatalf("decode %q succeeded, want %s", tc.frame, tc.wantCode)
			}
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FrameError", err)
			}
			if fe.Code != tc.wantCode {
				t.Fatalf("code = %s, want %s (%v)", fe.Code, tc.wantCode, err)
			}
			if fe.ID != tc.wantID {
				t.Fatalf("recovered id = %d, want %d", fe.ID, tc.wantID)
			}
		})
	}
}

// TestDecodeResponseVersionCheck: responses version-gate like requests.
func TestDecodeResponseVersionCheck(t *testing.T) {
	if _, err := DecodeResponse([]byte(`{"v":3,"id":1,"ok":true}`)); err == nil {
		t.Fatal("future-version response decoded")
	}
	if _, err := DecodeResponse([]byte(`{"ok":`)); err == nil {
		t.Fatal("malformed response decoded")
	}
}

// TestEncodeFrameTooLarge: oversized frames are refused at encode time.
func TestEncodeFrameTooLarge(t *testing.T) {
	huge := &MetricsResult{Text: strings.Repeat("x", MaxFrameBytes)}
	if _, err := EncodeFrame(&Response{V: 1, OK: true, Metrics: huge}); err == nil {
		t.Fatal("oversized frame encoded")
	}
}

// TestDecodeRequestTooLarge: oversized request frames are bad frames.
func TestDecodeRequestTooLarge(t *testing.T) {
	line := []byte(fmt.Sprintf(`{"v":1,"op":"ping","pad":%q}`, strings.Repeat("x", MaxFrameBytes)))
	_, err := DecodeRequest(line)
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Code != ErrCodeBadFrame {
		t.Fatalf("oversized request: got %v, want %s", err, ErrCodeBadFrame)
	}
}

// TestUnknownFieldsIgnored: a v1 decoder must tolerate unknown fields so v1.x
// servers can add optional result fields without breaking older clients.
func TestUnknownFieldsIgnored(t *testing.T) {
	req, err := DecodeRequest([]byte(`{"v":1,"id":3,"op":"ping","future":{"x":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpPing || req.ID != 3 {
		t.Fatalf("decoded %+v", req)
	}
}

// TestPersistedStateVersioned: the crash-recovery state file shares the
// protocol's versioning discipline.
func TestPersistedStateVersioned(t *testing.T) {
	raw, err := json.Marshal(&persistedState{V: ProtocolVersion, NextToken: 3,
		Sessions: []persistedSession{{Token: 1, Members: []int{0, 1}, Demand: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"v":1,"next_token":3,"sessions":[{"token":1,"members":[0,1],"demand":1}]}`
	if string(raw) != want {
		t.Fatalf("state file format drifted:\n got  %s\n want %s", raw, want)
	}
}
