// Command topogen generates BRITE-style topologies and prints them as an
// edge list (TSV: u, v, capacity, delay) plus summary statistics, for use
// by external tools or for inspecting the networks the experiments run on.
//
// Usage:
//
//	topogen [-model waxman|gridwaxman|ba|twolevel] [-nodes N] [-ases A]
//	        [-routers R] [-capacity C] [-scenario name] [-seed S] [-stats]
//
// -model gridwaxman uses the spatial-grid Waxman sampler, which generates
// 10k-50k node topologies in seconds; -scenario overwrites the uniform
// capacities with a named workload scenario's capacity distribution (see
// `experiments -scenario list`).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"overcast/internal/rng"
	"overcast/internal/topology"
	"overcast/internal/workload"
)

func main() {
	model := flag.String("model", "waxman", "waxman | gridwaxman | ba | twolevel")
	nodes := flag.Int("nodes", 100, "node count (waxman/gridwaxman/ba)")
	ases := flag.Int("ases", 10, "AS count (twolevel)")
	routers := flag.Int("routers", 100, "routers per AS (twolevel)")
	capacity := flag.Float64("capacity", 100, "uniform link capacity")
	scenario := flag.String("scenario", "", "sample link capacities from a named workload scenario")
	seed := flag.Uint64("seed", 1, "generation seed")
	statsOnly := flag.Bool("stats", false, "print summary statistics only")
	flag.Parse()

	net, err := generate(*model, *nodes, *ases, *routers, *capacity, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if *scenario != "" {
		sc, err := workload.Get(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		sc.Capacities(net.Graph, rng.New(*seed).Split(1<<20))
	}

	if *statsOnly {
		printStats(net)
		return
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	delays := net.LinkDelays()
	fmt.Fprintf(w, "# %s: %d nodes, %d edges\n", net.Name, net.Graph.NumNodes(), net.Graph.NumEdges())
	fmt.Fprintln(w, "# u\tv\tcapacity\tdelay")
	for e, edge := range net.Graph.Edges {
		fmt.Fprintf(w, "%d\t%d\t%g\t%.3f\n", edge.U, edge.V, edge.Capacity, delays[e])
	}
}

func generate(model string, nodes, ases, routers int, capacity float64, seed uint64) (*topology.Network, error) {
	r := rng.New(seed)
	switch model {
	case "waxman":
		cfg := topology.DefaultWaxman(nodes)
		cfg.Capacity = capacity
		return topology.Waxman(cfg, r)
	case "gridwaxman":
		cfg := topology.DefaultWaxman(nodes)
		cfg.Capacity = capacity
		return topology.WaxmanGrid(cfg, r)
	case "ba":
		return topology.BarabasiAlbert(nodes, 2, capacity, r)
	case "twolevel":
		cfg := topology.DefaultTwoLevel(ases, routers)
		cfg.Capacity = capacity
		return topology.TwoLevel(cfg, r)
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func printStats(net *topology.Network) {
	g := net.Graph
	degrees := make([]int, g.NumNodes())
	for v := range degrees {
		degrees[v] = g.Degree(v)
	}
	sort.Ints(degrees)
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	fmt.Printf("model:      %s\n", net.Name)
	fmt.Printf("nodes:      %d\n", g.NumNodes())
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("connected:  %v\n", g.Connected())
	if g.NumEdges() > 0 {
		maxCap := 0.0
		for _, e := range g.Edges {
			if e.Capacity > maxCap {
				maxCap = e.Capacity
			}
		}
		fmt.Printf("capacity:   total %.0f, min %.0f, max %.0f, mean %.1f\n",
			g.TotalCapacity(), g.MinCapacity(), maxCap, g.TotalCapacity()/float64(g.NumEdges()))
	}
	if len(degrees) > 0 {
		fmt.Printf("degree:     min %d, median %d, max %d, mean %.2f\n",
			degrees[0], degrees[len(degrees)/2], degrees[len(degrees)-1],
			float64(sum)/float64(len(degrees)))
	}
	if net.ASOf != nil {
		inter := 0
		for _, e := range g.Edges {
			if net.ASOf[e.U] != net.ASOf[e.V] {
				inter++
			}
		}
		fmt.Printf("inter-AS:   %d links\n", inter)
	}
}
