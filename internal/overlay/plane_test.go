package overlay

import (
	"testing"

	"overcast/internal/graph"
)

// arbBatchFixture builds arbitrary-routing oracles over the ring-of-cliques
// graph with deliberately overlapping member sets (nodes 0..5 appear in many
// sessions), the regime the shared SSSP plane deduplicates.
func arbBatchFixture(t testing.TB, k int) (*graph.Graph, []TreeOracle) {
	t.Helper()
	const n = 24
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if err := b.AddEdge(i, (i+1)%n, 10); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(i, (i+5)%n, 7); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	oracles := make([]TreeOracle, k)
	for i := 0; i < k; i++ {
		// Hot members i%3 and (i%3)+1 recur across sessions; the tail member
		// varies so sessions are not identical.
		members := []graph.NodeID{i % 3, (i % 3) + 1, (i + 11) % n, (i + 17) % n}
		s, err := NewSession(i, dedupNodes(members), 1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := NewArbitraryOracle(g, s)
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = o
	}
	return g, oracles
}

// dedupNodes drops duplicate node ids while keeping first-appearance order
// (session members must be distinct).
func dedupNodes(in []graph.NodeID) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestPlaneBatchMatchesDirectMinTree pins the tentpole invariant at the
// overlay layer: for every worker count, with the plane on or off, each batch
// slot must be bitwise identical to a direct MinTree call on the same
// lengths.
func TestPlaneBatchMatchesDirectMinTree(t *testing.T) {
	g, oracles := arbBatchFixture(t, 7)
	for _, sharedPlane := range []bool{true, false} {
		for _, workers := range []int{1, 2, 8} {
			r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: workers, SharedPlane: sharedPlane})
			for round := 0; round < 3; round++ {
				d := lengthsFor(g, round)
				ls := graph.NewLengthStoreFrom(d)
				results := r.MinTreesLen(ls, nil)
				for i, res := range results {
					if res.Err != nil {
						t.Fatalf("plane=%v workers=%d oracle %d: %v", sharedPlane, workers, i, res.Err)
					}
					want, err := oracles[i].MinTree(d)
					if err != nil {
						t.Fatal(err)
					}
					if res.Tree.Key() != want.Key() {
						t.Fatalf("plane=%v workers=%d oracle %d: tree differs from direct call", sharedPlane, workers, i)
					}
					if res.Len != want.LengthUnder(d) {
						t.Fatalf("plane=%v workers=%d oracle %d: len %v != %v", sharedPlane, workers, i, res.Len, want.LengthUnder(d))
					}
				}
			}
			m := r.Metrics()
			if sharedPlane {
				if m.PlaneRounds != 3 || m.PlaneSources == 0 || m.PlaneRequests <= m.PlaneSources {
					t.Fatalf("plane=%v workers=%d: implausible metrics %+v", sharedPlane, workers, m)
				}
			} else if m != (Metrics{}) {
				t.Fatalf("plane disabled but metrics nonzero: %+v", m)
			}
			r.Close()
		}
	}
}

// TestMinTreeFromPlaneMatchesMinTreeWith drives the plane read path directly:
// a fully staged and filled plane must reproduce MinTreeWith bit for bit, and
// an unstaged member must fall back to the scratch path, not corrupt output.
func TestMinTreeFromPlaneMatchesMinTreeWith(t *testing.T) {
	g, oracles := arbBatchFixture(t, 4)
	d := lengthsFor(g, 1)
	pl := NewPlane(g)
	for _, o := range oracles {
		for _, m := range o.(*ArbitraryOracle).PlaneSources() {
			pl.Stage(m)
		}
	}
	pl.Fill(d, 2)
	sc := NewScratch(g)
	for i, o := range oracles {
		ao := o.(*ArbitraryOracle)
		want, err := ao.MinTreeWith(d, sc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ao.MinTreeFromPlane(d, pl, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key() != want.Key() {
			t.Fatalf("oracle %d: plane tree differs from scratch tree", i)
		}
	}
	// After Reset nothing is staged: MinTreeFromPlane must still answer
	// correctly via its fallback.
	pl.Reset()
	ao := oracles[0].(*ArbitraryOracle)
	want, err := ao.MinTreeWith(d, sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ao.MinTreeFromPlane(d, pl, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != want.Key() {
		t.Fatal("fallback after Reset differs from scratch tree")
	}
}

// TestPlaneMixedOracleBatch checks a batch mixing fixed and arbitrary
// oracles: plane metrics must count only the plane-aware oracles' members,
// and the fixed slots must stay correct.
func TestPlaneMixedOracleBatch(t *testing.T) {
	g, fixedOracles := batchFixture(t, 3)
	_, arbOracles := arbBatchFixture(t, 3)
	mixed := append(append([]TreeOracle{}, fixedOracles...), arbOracles...)
	r := NewBatchRunnerOpts(g, mixed, BatchOptions{Workers: 2, SharedPlane: true})
	defer r.Close()
	d := lengthsFor(g, 2)
	ls := graph.NewLengthStoreFrom(d)
	results := r.MinTrees(ls, nil)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("oracle %d: %v", i, res.Err)
		}
		want, err := mixed[i].MinTree(d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tree.Key() != want.Key() {
			t.Fatalf("oracle %d: tree differs from direct call", i)
		}
	}
	wantRequests := 0
	for _, o := range arbOracles {
		wantRequests += len(o.(*ArbitraryOracle).PlaneSources())
	}
	m := r.Metrics()
	if m.PlaneRequests != wantRequests {
		t.Fatalf("plane requests %d, want %d (arbitrary members only)", m.PlaneRequests, wantRequests)
	}
	if m.PlaneSources == 0 || m.PlaneSources > wantRequests {
		t.Fatalf("plane sources %d outside (0, %d]", m.PlaneSources, wantRequests)
	}
}

// TestPlaneOracleAllocs extends the batch allocation gate to the plane path:
// the arbitrary oracle's returned trees inherently allocate (route
// extraction builds fresh paths), but once row storage has grown, steady
// plane rounds must allocate no *more* than the plane-off path — per-round
// plane state (row staging, lookups, header slices) stays pooled.
func TestPlaneOracleAllocs(t *testing.T) {
	g, oracles := arbBatchFixture(t, 6)
	d := lengthsFor(g, 0)
	ls := graph.NewLengthStoreFrom(d)
	ids := []int{0, 1, 2, 3, 4, 5}
	measure := func(sharedPlane bool) float64 {
		r := NewBatchRunnerOpts(g, oracles, BatchOptions{Workers: 1, SharedPlane: sharedPlane})
		defer r.Close()
		r.MinTrees(ls, ids) // warm up scratch + plane row growth
		return testing.AllocsPerRun(50, func() {
			res := r.MinTrees(ls, ids)
			if res[0].Err != nil {
				t.Fatal(res[0].Err)
			}
		})
	}
	withPlane, without := measure(true), measure(false)
	if withPlane > without {
		t.Fatalf("plane rounds allocate %.1f/batch vs %.1f/batch without — per-round plane state is not pooled", withPlane, without)
	}
}

// TestPlaneMetricsRatios pins the derived-ratio semantics, including the
// never-fired edge cases.
func TestPlaneMetricsRatios(t *testing.T) {
	var zero Metrics
	if zero.PlaneDedup() != 1 || zero.PlaneHitRate() != 0 {
		t.Fatalf("zero metrics: dedup %v hit %v", zero.PlaneDedup(), zero.PlaneHitRate())
	}
	m := Metrics{PlaneRounds: 2, PlaneSources: 50, PlaneRequests: 200}
	if m.PlaneDedup() != 4 {
		t.Fatalf("dedup %v, want 4", m.PlaneDedup())
	}
	if m.PlaneHitRate() != 0.75 {
		t.Fatalf("hit rate %v, want 0.75", m.PlaneHitRate())
	}
	if (Metrics{}).RepairRate() != 0 {
		t.Fatalf("zero metrics: repair rate %v", (Metrics{}).RepairRate())
	}
	if r := (Metrics{PlaneSkipped: 30, PlaneRepaired: 10}).RepairRate(); r != 0.75 {
		t.Fatalf("repair rate %v, want 0.75", r)
	}
	var sum Metrics
	sum.Merge(m)
	sum.Merge(Metrics{PlaneRounds: 1, PlaneSources: 10, PlaneRequests: 10, PlaneSkipped: 4, PlaneRepaired: 3, PlaneSeeded: 2, PlaneTreeHits: 1})
	if sum != (Metrics{PlaneRounds: 3, PlaneSources: 60, PlaneRequests: 210, PlaneSkipped: 4, PlaneRepaired: 3, PlaneSeeded: 2, PlaneTreeHits: 1}) {
		t.Fatalf("merge produced %+v", sum)
	}
}
