package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"overcast/internal/core"
	"overcast/internal/graph"
	"overcast/internal/overlay"
	"overcast/internal/rng"
	"overcast/internal/routing"
	"overcast/internal/topology"
)

func ringOracle(t testing.TB, g *graph.Graph, rt *routing.IPRoutes, id int, members []graph.NodeID) overlay.TreeOracle {
	t.Helper()
	s, err := overlay.NewSession(id, members, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := overlay.NewArbitraryOracle(g, s)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestLeaveRestoresState(t *testing.T) {
	// After join+leave, the allocator must behave exactly like a fresh one:
	// congestion zero and the next arrival picks the same tree it would
	// have picked on an idle network.
	net, _ := topology.Ring(6, 10)
	g := net.Graph
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = i
	}
	rt := routing.NewIPRoutes(g, all)

	fresh, _ := core.NewOnline(g, 25)
	freshTree, err := fresh.Join(ringOracle(t, g, rt, 0, []graph.NodeID{0, 3}))
	if err != nil {
		t.Fatal(err)
	}

	churned, _ := core.NewOnline(g, 25)
	if _, err := churned.Join(ringOracle(t, g, rt, 0, []graph.NodeID{0, 3})); err != nil {
		t.Fatal(err)
	}
	if churned.MaxCongestion() <= 0 {
		t.Fatal("no congestion after join")
	}
	if err := churned.Leave(0); err != nil {
		t.Fatal(err)
	}
	if churned.MaxCongestion() > 1e-12 {
		t.Fatalf("congestion %v after leave, want 0", churned.MaxCongestion())
	}
	if churned.ActiveSessions() != 0 {
		t.Fatal("active count wrong")
	}
	nextTree, err := churned.Join(ringOracle(t, g, rt, 1, []graph.NodeID{0, 3}))
	if err != nil {
		t.Fatal(err)
	}
	// Same physical tree as the fresh allocator's first arrival.
	fu, nu := freshTree.Use(), nextTree.Use()
	if len(fu) != len(nu) {
		t.Fatalf("post-leave tree differs: %d vs %d edges", len(fu), len(nu))
	}
	for i := range fu {
		if fu[i] != nu[i] {
			t.Fatalf("post-leave tree differs at edge %d", i)
		}
	}
}

func TestLeaveFreesCapacityForLaterArrivals(t *testing.T) {
	// Ring of 4: session A takes one side; after A leaves, session B should
	// take that (shortest) side again rather than detour.
	net, _ := topology.Ring(4, 10)
	g := net.Graph
	all := []graph.NodeID{0, 1, 2, 3}
	rt := routing.NewIPRoutes(g, all)
	on, _ := core.NewOnline(g, 50)
	ta, err := on.Join(ringOracle(t, g, rt, 0, []graph.NodeID{0, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := on.Leave(0); err != nil {
		t.Fatal(err)
	}
	tb, err := on.Join(ringOracle(t, g, rt, 1, []graph.NodeID{0, 2}))
	if err != nil {
		t.Fatal(err)
	}
	au, bu := ta.Use(), tb.Use()
	if len(au) != len(bu) {
		t.Fatalf("B should reuse A's side")
	}
	for i := range au {
		if au[i].Edge != bu[i].Edge {
			t.Fatalf("B detoured although A left")
		}
	}
}

func TestLeaveErrors(t *testing.T) {
	net, _ := topology.Ring(4, 10)
	on, _ := core.NewOnline(net.Graph, 10)
	if err := on.Leave(0); err == nil {
		t.Fatal("leave with no sessions accepted")
	}
	rt := routing.NewIPRoutes(net.Graph, []graph.NodeID{0, 1, 2, 3})
	if _, err := on.Join(ringOracle(t, net.Graph, rt, 0, []graph.NodeID{0, 2})); err != nil {
		t.Fatal(err)
	}
	if err := on.Leave(1); err == nil {
		t.Fatal("out-of-range leave accepted")
	}
	if err := on.Leave(0); err != nil {
		t.Fatal(err)
	}
	if err := on.Leave(0); err == nil {
		t.Fatal("double leave accepted")
	}
	if _, err := on.Finalize(); err == nil {
		t.Fatal("finalize with zero active sessions accepted")
	}
}

func TestChurnFeasibilityProperty(t *testing.T) {
	// Any interleaving of joins and leaves must keep the finalized
	// solution feasible and the congestion bookkeeping nonnegative.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		net, err := topology.Waxman(topology.DefaultWaxman(25), r)
		if err != nil {
			return false
		}
		g := net.Graph
		all := make([]graph.NodeID, g.NumNodes())
		for i := range all {
			all[i] = i
		}
		rt := routing.NewIPRoutes(g, all)
		on, err := core.NewOnline(g, 20)
		if err != nil {
			return false
		}
		var alive []int
		nextID := 0
		for step := 0; step < 25; step++ {
			if len(alive) > 0 && r.Float64() < 0.4 {
				pick := r.Intn(len(alive))
				if err := on.Leave(alive[pick]); err != nil {
					return false
				}
				alive = append(alive[:pick], alive[pick+1:]...)
				continue
			}
			members := r.Sample(g.NumNodes(), 2+r.Intn(4))
			s, err := overlay.NewSession(nextID, members, 1)
			if err != nil {
				return false
			}
			oracle, err := overlay.NewFixedOracle(g, rt, s)
			if err != nil {
				return false
			}
			if _, err := on.Join(oracle); err != nil {
				return false
			}
			alive = append(alive, nextID)
			nextID++
		}
		if on.ActiveSessions() != len(alive) {
			return false
		}
		if on.MaxCongestion() < 0 {
			return false
		}
		if len(alive) == 0 {
			return true
		}
		sol, err := on.Finalize()
		if err != nil {
			return false
		}
		if len(sol.Sessions) != len(alive) {
			return false
		}
		return sol.CheckFeasible(1e-9) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveRollbackIsNumericallyExact(t *testing.T) {
	// Join/leave the same session many times: lengths must not drift.
	net, _ := topology.Ring(5, 10)
	g := net.Graph
	rt := routing.NewIPRoutes(g, []graph.NodeID{0, 1, 2, 3, 4})
	on, _ := core.NewOnline(g, 100)
	for cycle := 0; cycle < 200; cycle++ {
		if _, err := on.Join(ringOracle(t, g, rt, cycle, []graph.NodeID{0, 2})); err != nil {
			t.Fatal(err)
		}
		if err := on.Leave(cycle); err != nil {
			t.Fatal(err)
		}
	}
	if c := on.MaxCongestion(); math.Abs(c) > 1e-9 {
		t.Fatalf("congestion drifted to %v after 200 join/leave cycles", c)
	}
}
