GO ?= go

# Extra flags for bench-scale (e.g. BENCHFLAGS="-short -benchtime 1x" for the
# CI trajectory run).
BENCHFLAGS ?=

# Free-form annotation recorded in BENCH_scale.json by bench-scale-json
# (benchjson also auto-records the core count; use the note for anything the
# number alone doesn't say, e.g. "1-core container, worker sweeps collapse").
BENCHNOTE ?=

.PHONY: all build test race fmt fmt-check vet api-check api-write bench bench-smoke bench-scale bench-scale-json clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 1800s ./internal/core/... ./internal/overlay/... ./internal/sim/...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Exported-surface gates: the root package's API inventory must match the
# committed API_SURFACE.txt, and the admin wire-protocol surface must match
# ADMIN_SURFACE.txt. Any surface change (including additions) fails
# api-check until api-write refreshes the inventories in the same commit.
api-check:
	$(GO) run ./cmd/apisurface -check
	$(GO) run ./cmd/apisurface -dir internal/admin -file ADMIN_SURFACE.txt -check

api-write:
	$(GO) run ./cmd/apisurface -write
	$(GO) run ./cmd/apisurface -dir internal/admin -file ADMIN_SURFACE.txt -write

# Full benchmark suite (paper tables/figures + scale tier).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# One iteration per benchmark, heaviest scale instances skipped — what CI runs.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# Large-instance scale tier: solver benches (1,000-10,000 nodes, per-scenario
# instances), the Waxman topology-generation benches, the Allocator v2
# warm-start churn acceptance pair, the overcastd admin-socket churn
# replay, and the fault-churn damping pair (flap suppression vs the raw
# trace). Takes minutes at default -benchtime; CI passes
# BENCHFLAGS="-short -benchtime 1x".
bench-scale:
	$(GO) test -run '^$$' -bench 'BenchmarkScale|BenchmarkWaxman|BenchmarkChurnWarmStart|BenchmarkDaemonChurn|BenchmarkFaultChurn' -benchmem -timeout 3600s $(BENCHFLAGS) . ./internal/topology/

# Refresh the committed perf-trajectory baseline: run the scale tier the way
# CI does, rewrite BENCH_scale.json, and print the old-vs-new comparison.
# The bench run writes to a file (no tee pipe) so a failing benchmark aborts
# the recipe instead of overwriting the baseline with partial results.
bench-scale-json:
	$(MAKE) bench-scale BENCHFLAGS="-short -benchtime 1x" > bench-scale.txt || { cat bench-scale.txt; exit 1; }
	cat bench-scale.txt
	$(GO) run ./cmd/benchjson -in bench-scale.txt -out BENCH_scale.json -compare BENCH_scale.json -note "$(BENCHNOTE)"

clean:
	$(GO) clean ./...
	rm -f *.test *.prof *.out bench-smoke.txt bench-scale.txt
